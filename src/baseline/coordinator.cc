#include "baseline/coordinator.h"

#include "algebra/plan_xml.h"
#include "engine/operator.h"
#include "ns/urn.h"
#include "peer/peer.h"
#include "wire/body_codec.h"
#include "wire/envelope.h"
#include "xml/token_writer.h"

namespace mqp::baseline {

using algebra::OpType;
using algebra::PlanNode;
using algebra::PlanNodePtr;

Coordinator::Coordinator(net::Transport* sim, Mode mode,
                         double timeout_seconds)
    : sim_(sim), mode_(mode), timeout_seconds_(timeout_seconds) {
  id_ = sim_->Register(this);
}

void Coordinator::AddCatalogEntry(const ns::InterestArea& area,
                                  const std::string& server,
                                  const std::string& xpath) {
  entries_.push_back({area, server, xpath});
}

namespace {

// Finds the first URN leaf and, if its direct parent is a select, the
// predicate guarding it.
struct UrnSite {
  PlanNode* urn = nullptr;
  algebra::ExprPtr predicate;
};

void FindUrnSite(PlanNode* node, UrnSite* site) {
  if (site->urn != nullptr) return;
  if (node->type() == OpType::kSelect && !node->children().empty() &&
      node->child(0)->type() == OpType::kUrn) {
    site->urn = node->child(0).get();
    site->predicate = node->expr();
    return;
  }
  if (node->type() == OpType::kUrn) {
    site->urn = node;
    return;
  }
  for (const auto& c : node->children()) {
    FindUrnSite(c.get(), site);
    if (site->urn != nullptr) return;
  }
}

}  // namespace

void Coordinator::Run(algebra::Plan plan, Callback cb) {
  plan_ = std::move(plan);
  callback_ = std::move(cb);
  outcome_ = Outcome{};
  outcome_.started_at = sim_->now();
  gathered_.clear();
  outstanding_ = 0;
  req_ = "co" + std::to_string(next_req_++);

  UrnSite site;
  if (plan_.root() != nullptr) FindUrnSite(plan_.root().get(), &site);
  ns::InterestArea area;
  if (site.urn != nullptr) {
    auto urn = ns::Urn::Parse(site.urn->urn());
    if (urn.ok() && urn->IsInterestArea()) {
      auto a = urn->ToInterestArea();
      if (a.ok()) area = *a;
    }
  }

  // Dispatch one sub-query per matching source, in parallel.
  for (const auto& e : entries_) {
    if (!area.empty() && !e.area.Overlaps(area)) continue;
    auto pid = sim_->Lookup(e.server);
    if (!pid.ok()) continue;
    ++outcome_.sources_contacted;
    ++outstanding_;
    if (mode_ == Mode::kShipAll) {
      std::string body;
      xml::TokenWriter w(&body);
      w.Start("fetch");
      w.Attr("xpath", e.xpath);
      w.End();
      wire::Send(sim_, id_, *pid,
                 {wire::kFetchKind, req_, 0,
                  net::MakePayload(std::move(body))});
    } else {
      // Push the selection to the source. The body is the sub-plan's
      // <mqp> document itself — the old <subquery> wrapper carried
      // nothing (correlation rides in the envelope header).
      PlanNodePtr sub = PlanNode::Url(e.server, e.xpath);
      if (site.predicate != nullptr) {
        sub = PlanNode::Select(site.predicate, std::move(sub));
      }
      algebra::Plan subplan(std::move(sub));
      wire::Send(sim_, id_, *pid,
                 {wire::kSubqueryKind, req_, 0,
                  net::MakePayload(algebra::SerializePlan(subplan))});
    }
  }
  if (outstanding_ == 0) {
    Finish();
    return;
  }
  // Failure handling: a timeout bounds the wait for dead sources.
  const std::string this_req = req_;
  sim_->ScheduleFor(id_, sim_->now() + timeout_seconds_, [this, this_req]() {
    if (callback_ && req_ == this_req && outstanding_ > 0) {
      outcome_.sources_failed = outstanding_;
      outstanding_ = 0;
      Finish();
    }
  });
}

void Coordinator::HandleMessage(const net::Message& msg) {
  auto decoded = wire::DecodeEnvelope(msg);
  if (!decoded.ok()) return;
  const wire::Envelope env = std::move(decoded).value();
  if (env.kind != wire::kFetchReplyKind &&
      env.kind != wire::kSubqueryReplyKind) {
    return;
  }
  // Stale replies (from a previous Run) are rejected on the header alone.
  if (env.query_id != req_) return;
  if (outstanding_ == 0) return;  // already timed out
  auto items = wire::DecodeItemBody(env.body());
  if (!items.ok()) return;
  for (auto& item : *items) {
    gathered_.push_back(std::move(item));
  }
  --outstanding_;
  if (outstanding_ == 0) Finish();
}

void Coordinator::Finish() {
  if (!callback_) return;
  if (plan_.root() != nullptr) {
    // Bind every URN leaf to the gathered data, then run the remainder of
    // the plan here at the coordinator.
    UrnSite site;
    FindUrnSite(plan_.root().get(), &site);
    if (site.urn != nullptr) site.urn->MorphToData(gathered_);
    auto items = engine::Evaluate(*plan_.root(), nullptr);
    if (items.ok()) {
      outcome_.items = std::move(items).value();
      outcome_.complete = outcome_.sources_failed == 0;
    }
  }
  outcome_.finished_at = sim_->now();
  Callback cb = std::move(callback_);
  callback_ = nullptr;
  cb(outcome_);
}

}  // namespace mqp::baseline
