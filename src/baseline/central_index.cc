#include "baseline/central_index.h"

#include "engine/operator.h"
#include "peer/peer.h"
#include "wire/envelope.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace mqp::baseline {

using algebra::PlanNode;

CentralIndexServer::CentralIndexServer(net::Simulator* sim) : sim_(sim) {
  id_ = sim_->Register(this);
}

void CentralIndexServer::AddEntry(const ns::InterestArea& area,
                                  const std::string& server,
                                  const std::string& xpath) {
  entries_.push_back({area, server, xpath});
}

void CentralIndexServer::HandleMessage(const net::Message& msg) {
  auto decoded = wire::DecodeEnvelope(msg);
  if (!decoded.ok()) return;
  const wire::Envelope env = std::move(decoded).value();
  if (env.kind != wire::kLookupKind) return;
  auto doc = xml::Parse(env.body());
  if (!doc.ok()) return;
  auto area = ns::InterestArea::Parse((*doc)->AttrOr("area", ""));
  auto reply = xml::Node::Element("lookup-reply");
  if (area.ok()) {
    for (const auto& e : entries_) {
      if (!e.area.Overlaps(*area)) continue;
      xml::Node* hit = reply->AddElement("hit");
      hit->SetAttr("server", e.server);
      hit->SetAttr("xpath", e.xpath);
    }
  }
  wire::Send(sim_, id_, msg.from,
             {wire::kLookupReplyKind, env.query_id, 0,
              net::MakePayload(xml::Serialize(*reply))});
}

CentralIndexClient::CentralIndexClient(net::Simulator* sim,
                                       std::string index_address)
    : sim_(sim), index_address_(std::move(index_address)) {
  id_ = sim_->Register(this);
}

void CentralIndexClient::Run(algebra::Plan plan,
                             const ns::InterestArea& area, Callback cb) {
  plan_ = std::move(plan);
  callback_ = std::move(cb);
  outcome_ = Outcome{};
  outcome_.started_at = sim_->now();
  fetched_.clear();
  outstanding_ = 0;
  lookup_req_ = "lk" + std::to_string(next_req_++);
  auto q = xml::Node::Element("lookup");
  q->SetAttr("area", area.ToString());
  auto pid = sim_->Lookup(index_address_);
  if (!pid.ok()) return;
  wire::Send(sim_, id_, *pid,
             {wire::kLookupKind, lookup_req_, 0,
              net::MakePayload(xml::Serialize(*q))});
}

void CentralIndexClient::HandleMessage(const net::Message& msg) {
  auto decoded = wire::DecodeEnvelope(msg);
  if (!decoded.ok()) return;
  const wire::Envelope env = std::move(decoded).value();
  // Request correlation rides in the wire header; no XML parse needed to
  // reject stale replies.
  if (env.query_id != lookup_req_) return;
  if (env.kind == wire::kLookupReplyKind) {
    auto doc = xml::Parse(env.body());
    if (!doc.ok()) return;
    const auto hits = (*doc)->Children("hit");
    outcome_.servers_contacted = hits.size();
    if (hits.empty()) {
      FinishIfDone();
      return;
    }
    for (const xml::Node* hit : hits) {
      auto pid = sim_->Lookup(hit->AttrOr("server", ""));
      if (!pid.ok()) continue;
      auto fetch = xml::Node::Element("fetch");
      fetch->SetAttr("xpath", hit->AttrOr("xpath", ""));
      ++outstanding_;
      wire::Send(sim_, id_, *pid,
                 {wire::kFetchKind, lookup_req_, 0,
                  net::MakePayload(xml::Serialize(*fetch))});
    }
    FinishIfDone();
  } else if (env.kind == wire::kFetchReplyKind) {
    auto doc = xml::Parse(env.body());
    if (!doc.ok()) return;
    for (const xml::Node* item : (*doc)->Children("*")) {
      fetched_.push_back(algebra::MakeItem(*item));
    }
    if (outstanding_ > 0) --outstanding_;
    FinishIfDone();
  }
}

void CentralIndexClient::FinishIfDone() {
  if (outstanding_ > 0 || !callback_) return;
  // Bind the plan's URN leaf to the fetched data and evaluate locally.
  if (plan_.root() != nullptr) {
    for (const PlanNode* urn : plan_.root()->UrnLeaves()) {
      const_cast<PlanNode*>(urn)->MorphToData(fetched_);
    }
    auto items = engine::Evaluate(*plan_.root(), nullptr);
    if (items.ok()) {
      outcome_.items = std::move(items).value();
      outcome_.complete = true;
    }
  }
  outcome_.finished_at = sim_->now();
  Callback cb = std::move(callback_);
  callback_ = nullptr;
  cb(outcome_);
}

}  // namespace mqp::baseline
