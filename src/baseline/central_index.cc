#include "baseline/central_index.h"

#include "engine/operator.h"
#include "peer/peer.h"
#include "wire/body_codec.h"
#include "wire/envelope.h"
#include "xml/token_reader.h"
#include "xml/token_writer.h"

namespace mqp::baseline {

using algebra::PlanNode;

CentralIndexServer::CentralIndexServer(net::Transport* sim) : sim_(sim) {
  id_ = sim_->Register(this);
}

void CentralIndexServer::AddEntry(const ns::InterestArea& area,
                                  const std::string& server,
                                  const std::string& xpath) {
  entries_.push_back({area, server, xpath});
}

void CentralIndexServer::HandleMessage(const net::Message& msg) {
  auto decoded = wire::DecodeEnvelope(msg);
  if (!decoded.ok()) return;
  const wire::Envelope env = std::move(decoded).value();
  if (env.kind != wire::kLookupKind) return;
  xml::AttrList attrs;
  if (!wire::DecodeAttrBody(env.body(), &attrs).ok()) return;
  auto area = ns::InterestArea::Parse(attrs.Get("area"));
  std::string reply;
  xml::TokenWriter w(&reply);
  w.Start("lookup-reply");
  if (area.ok()) {
    for (const auto& e : entries_) {
      if (!e.area.Overlaps(*area)) continue;
      w.Start("hit");
      w.Attr("server", e.server);
      w.Attr("xpath", e.xpath);
      w.End();
    }
  }
  w.End();
  wire::Send(sim_, id_, msg.from,
             {wire::kLookupReplyKind, env.query_id, 0,
              net::MakePayload(std::move(reply))});
}

CentralIndexClient::CentralIndexClient(net::Transport* sim,
                                       std::string index_address)
    : sim_(sim), index_address_(std::move(index_address)) {
  id_ = sim_->Register(this);
}

void CentralIndexClient::Run(algebra::Plan plan,
                             const ns::InterestArea& area, Callback cb) {
  plan_ = std::move(plan);
  callback_ = std::move(cb);
  outcome_ = Outcome{};
  outcome_.started_at = sim_->now();
  fetched_.clear();
  outstanding_ = 0;
  lookup_req_ = "lk" + std::to_string(next_req_++);
  std::string body;
  xml::TokenWriter w(&body);
  w.Start("lookup");
  w.Attr("area", area.ToString());
  w.End();
  auto pid = sim_->Lookup(index_address_);
  if (!pid.ok()) return;
  wire::Send(sim_, id_, *pid,
             {wire::kLookupKind, lookup_req_, 0,
              net::MakePayload(std::move(body))});
}

void CentralIndexClient::HandleMessage(const net::Message& msg) {
  auto decoded = wire::DecodeEnvelope(msg);
  if (!decoded.ok()) return;
  const wire::Envelope env = std::move(decoded).value();
  // Request correlation rides in the wire header; no XML parse needed to
  // reject stale replies.
  if (env.query_id != lookup_req_) return;
  if (env.kind == wire::kLookupReplyKind) {
    // Token-decode the hit list: (server, xpath) pairs, no DOM.
    std::vector<std::pair<std::string, std::string>> hits;
    {
      xml::TokenReader r(env.body());
      auto t = r.Next();
      if (!t.ok() || t->type != xml::TokenType::kStartElement) return;
      xml::AttrList root_attrs;
      t = r.ReadAttrs(&root_attrs);
      while (t.ok() && t->type != xml::TokenType::kEndElement) {
        if (t->type == xml::TokenType::kStartElement) {
          if (t->name == "hit") {
            xml::AttrList attrs;
            auto ht = r.ReadAttrs(&attrs);
            if (!ht.ok()) return;
            hits.emplace_back(attrs.Get("server"), attrs.Get("xpath"));
            if (ht->type != xml::TokenType::kEndElement &&
                !r.SkipToElementEnd().ok()) {
              return;
            }
          } else if (!r.SkipToElementEnd().ok()) {
            return;
          }
        }
        t = r.Next();
      }
      if (!t.ok()) return;
    }
    outcome_.servers_contacted = hits.size();
    if (hits.empty()) {
      FinishIfDone();
      return;
    }
    for (const auto& [server, xpath] : hits) {
      auto pid = sim_->Lookup(server);
      if (!pid.ok()) continue;
      std::string fetch;
      xml::TokenWriter w(&fetch);
      w.Start("fetch");
      w.Attr("xpath", xpath);
      w.End();
      ++outstanding_;
      wire::Send(sim_, id_, *pid,
                 {wire::kFetchKind, lookup_req_, 0,
                  net::MakePayload(std::move(fetch))});
    }
    FinishIfDone();
  } else if (env.kind == wire::kFetchReplyKind) {
    auto items = wire::DecodeItemBody(env.body());
    if (!items.ok()) return;
    for (auto& item : *items) {
      fetched_.push_back(std::move(item));
    }
    if (outstanding_ > 0) --outstanding_;
    FinishIfDone();
  }
}

void CentralIndexClient::FinishIfDone() {
  if (outstanding_ > 0 || !callback_) return;
  // Bind the plan's URN leaf to the fetched data and evaluate locally.
  if (plan_.root() != nullptr) {
    for (const PlanNode* urn : plan_.root()->UrnLeaves()) {
      const_cast<PlanNode*>(urn)->MorphToData(fetched_);
    }
    auto items = engine::Evaluate(*plan_.root(), nullptr);
    if (items.ok()) {
      outcome_.items = std::move(items).value();
      outcome_.complete = true;
    }
  }
  outcome_.finished_at = sim_->now();
  Callback cb = std::move(callback_);
  callback_ = nullptr;
  cb(outcome_);
}

}  // namespace mqp::baseline
