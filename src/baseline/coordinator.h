// Traditional coordinator-based distributed query processing (paper §2:
// "Traditional distributed query processing depends on coordinators,
// servers that must know all about data replication and statistics").
//
// The coordinator holds an omniscient catalog, dispatches per-source
// sub-queries in parallel, gathers the results, and finishes the join
// locally. Contrast with MQPs: here a single site must know everything
// and all data flows through it, but sources are contacted in parallel.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "net/simulator.h"
#include "ns/interest.h"

namespace mqp::baseline {

/// \brief A coordinator with perfect global knowledge.
class Coordinator : public net::PeerNode {
 public:
  /// How much work is pushed to the sources.
  enum class Mode {
    kShipAll,         ///< fetch raw collections; all filtering at the coordinator
    kPushSelections,  ///< send select sub-queries; sources filter locally
  };

  struct Outcome {
    bool complete = false;     ///< all sources answered before the timeout
    algebra::ItemSet items;
    double started_at = 0;
    double finished_at = 0;
    size_t sources_contacted = 0;
    size_t sources_failed = 0;
  };
  using Callback = std::function<void(const Outcome&)>;

  Coordinator(net::Transport* sim, Mode mode, double timeout_seconds = 30);

  net::PeerId id() const { return id_; }
  const std::string& address() const { return sim_->Address(id_); }

  /// Registers a source in the global catalog.
  void AddCatalogEntry(const ns::InterestArea& area,
                       const std::string& server, const std::string& xpath);

  /// Executes `plan`: its (single) interest-area URN is resolved against
  /// the global catalog, sub-queries are dispatched in parallel, and the
  /// rest of the plan runs at the coordinator once data arrives.
  void Run(algebra::Plan plan, Callback cb);

  void HandleMessage(const net::Message& msg) override;

 private:
  struct Entry {
    ns::InterestArea area;
    std::string server;
    std::string xpath;
  };

  void Finish();

  net::Transport* sim_;
  net::PeerId id_;
  Mode mode_;
  double timeout_seconds_;
  std::vector<Entry> entries_;

  algebra::Plan plan_;
  Callback callback_;
  Outcome outcome_;
  std::string req_;
  size_t outstanding_ = 0;
  algebra::ItemSet gathered_;
  uint64_t next_req_ = 0;
};

}  // namespace mqp::baseline
