// The "Gnutella" baseline (paper §1): no indices; queries are broadcast to
// a node's neighbors, which re-broadcast up to a fixed number of steps
// (the *horizon*). Matching peers reply straight to the querying node.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "common/rng.h"
#include "net/simulator.h"
#include "ns/interest.h"

namespace mqp::baseline {

/// \brief One peer in the unstructured overlay.
class FloodingPeer : public net::PeerNode {
 public:
  FloodingPeer(net::Transport* sim, ns::InterestArea area,
               algebra::ItemSet items);

  net::PeerId id() const { return id_; }
  const ns::InterestArea& area() const { return area_; }

  void AddNeighbor(net::PeerId neighbor);
  const std::vector<net::PeerId>& neighbors() const { return neighbors_; }

  /// Starts a flood from this node: asks all neighbors for items in
  /// `area`, up to `horizon` hops. Replies go to `reply_to`.
  void StartFlood(const std::string& flood_id, const ns::InterestArea& area,
                  int horizon, net::PeerId reply_to);

  void HandleMessage(const net::Message& msg) override;

 protected:
  net::Transport* sim_;
  net::PeerId id_;

 private:
  /// Re-broadcasts a flood body. The flood id and remaining horizon ride
  /// in the wire header; `body` (area + reply-to) is shared, never copied
  /// or re-serialized while it fans out.
  void Forward(const std::string& flood_id, const net::Payload& body,
               int horizon, net::PeerId except);

  ns::InterestArea area_;
  algebra::ItemSet items_;
  std::vector<net::PeerId> neighbors_;
  std::set<std::string> seen_;  // flood ids already processed
};

/// \brief The querying node: floods, then collects hits.
class FloodingClient : public FloodingPeer {
 public:
  explicit FloodingClient(net::Transport* sim);

  /// Issues a flood query. Collect results with CollectedItems() after the
  /// simulator drains.
  void Query(const ns::InterestArea& area, int horizon);

  const algebra::ItemSet& CollectedItems() const { return collected_; }
  size_t hits_received() const { return hits_; }
  void Reset();

  void HandleMessage(const net::Message& msg) override;

 private:
  algebra::ItemSet collected_;
  size_t hits_ = 0;
  uint64_t next_flood_ = 0;
};

/// \brief Wires peers into a random connected overlay with average degree
/// `degree` (a ring for connectivity plus random chords).
void BuildRandomOverlay(const std::vector<FloodingPeer*>& peers,
                        size_t degree, Rng* rng);

}  // namespace mqp::baseline
