#include "baseline/flooding.h"

#include "common/strings.h"
#include "workload/garage_sale.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace mqp::baseline {

FloodingPeer::FloodingPeer(net::Simulator* sim, ns::InterestArea area,
                           algebra::ItemSet items)
    : sim_(sim), area_(std::move(area)), items_(std::move(items)) {
  id_ = sim_->Register(this);
}

void FloodingPeer::AddNeighbor(net::PeerId neighbor) {
  if (neighbor == id_) return;
  for (net::PeerId n : neighbors_) {
    if (n == neighbor) return;
  }
  neighbors_.push_back(neighbor);
}

void FloodingPeer::StartFlood(const std::string& flood_id,
                              const ns::InterestArea& area, int horizon,
                              net::PeerId reply_to) {
  seen_.insert(flood_id);
  Forward(flood_id, area, horizon, reply_to, net::kNoPeer);
}

void FloodingPeer::Forward(const std::string& flood_id,
                           const ns::InterestArea& area, int horizon,
                           net::PeerId reply_to, net::PeerId except) {
  if (horizon <= 0) return;
  auto q = xml::Node::Element("flood");
  q->SetAttr("id", flood_id);
  q->SetAttr("area", area.ToString());
  q->SetAttr("horizon", std::to_string(horizon));
  q->SetAttr("reply-to", std::to_string(reply_to));
  const std::string payload = xml::Serialize(*q);
  for (net::PeerId n : neighbors_) {
    if (n == except) continue;
    sim_->Send({id_, n, "flood", payload, 0});
  }
}

void FloodingPeer::HandleMessage(const net::Message& msg) {
  if (msg.kind != "flood") return;
  auto doc = xml::Parse(msg.payload);
  if (!doc.ok()) return;
  const std::string flood_id = (*doc)->AttrOr("id", "");
  if (!seen_.insert(flood_id).second) return;  // duplicate: drop
  auto area = ns::InterestArea::Parse((*doc)->AttrOr("area", ""));
  if (!area.ok()) return;
  int64_t horizon = 0;
  (void)mqp::ParseInt64((*doc)->AttrOr("horizon", "0"), &horizon);
  int64_t reply_to = 0;
  (void)mqp::ParseInt64((*doc)->AttrOr("reply-to", "-1"), &reply_to);

  // Local match: send items that fall inside the queried area.
  if (area_.Overlaps(*area) && reply_to >= 0) {
    auto hit = xml::Node::Element("flood-hit");
    hit->SetAttr("id", flood_id);
    for (const auto& item : items_) {
      if (workload::GarageSaleGenerator::ItemInArea(*item, *area)) {
        hit->AddChild(item->Clone());
      }
    }
    if (hit->ElementCount() > 0) {
      sim_->Send({id_, static_cast<net::PeerId>(reply_to), "flood-hit",
                  xml::Serialize(*hit), 0});
    }
  }
  Forward(flood_id, *area, static_cast<int>(horizon) - 1,
          static_cast<net::PeerId>(reply_to), msg.from);
}

FloodingClient::FloodingClient(net::Simulator* sim)
    : FloodingPeer(sim, ns::InterestArea(), {}) {}

void FloodingClient::Query(const ns::InterestArea& area, int horizon) {
  const std::string flood_id =
      "f" + std::to_string(id()) + "-" + std::to_string(next_flood_++);
  StartFlood(flood_id, area, horizon, id());
}

void FloodingClient::Reset() {
  collected_.clear();
  hits_ = 0;
}

void FloodingClient::HandleMessage(const net::Message& msg) {
  if (msg.kind == "flood-hit") {
    auto doc = xml::Parse(msg.payload);
    if (!doc.ok()) return;
    ++hits_;
    for (const xml::Node* item : (*doc)->Children("*")) {
      collected_.push_back(algebra::MakeItem(*item));
    }
    return;
  }
  FloodingPeer::HandleMessage(msg);
}

void BuildRandomOverlay(const std::vector<FloodingPeer*>& peers,
                        size_t degree, Rng* rng) {
  const size_t n = peers.size();
  if (n < 2) return;
  // Ring for connectivity.
  for (size_t i = 0; i < n; ++i) {
    peers[i]->AddNeighbor(peers[(i + 1) % n]->id());
    peers[(i + 1) % n]->AddNeighbor(peers[i]->id());
  }
  // Random chords until the average degree target is met.
  const size_t target_edges = n * degree / 2;
  size_t edges = n;
  size_t attempts = 0;
  while (edges < target_edges && attempts < 20 * target_edges) {
    ++attempts;
    const size_t a = rng->NextBelow(n);
    const size_t b = rng->NextBelow(n);
    if (a == b) continue;
    peers[a]->AddNeighbor(peers[b]->id());
    peers[b]->AddNeighbor(peers[a]->id());
    ++edges;
  }
}

}  // namespace mqp::baseline
