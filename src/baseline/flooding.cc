#include "baseline/flooding.h"

#include "common/strings.h"
#include "wire/body_codec.h"
#include "wire/envelope.h"
#include "workload/garage_sale.h"
#include "xml/token_writer.h"

namespace mqp::baseline {

FloodingPeer::FloodingPeer(net::Transport* sim, ns::InterestArea area,
                           algebra::ItemSet items)
    : sim_(sim), area_(std::move(area)), items_(std::move(items)) {
  id_ = sim_->Register(this);
}

void FloodingPeer::AddNeighbor(net::PeerId neighbor) {
  if (neighbor == id_) return;
  for (net::PeerId n : neighbors_) {
    if (n == neighbor) return;
  }
  neighbors_.push_back(neighbor);
}

void FloodingPeer::StartFlood(const std::string& flood_id,
                              const ns::InterestArea& area, int horizon,
                              net::PeerId reply_to) {
  seen_.insert(flood_id);
  // The body is immutable for the flood's whole lifetime: id and horizon
  // travel in the wire header, so every re-broadcast shares this buffer.
  std::string body;
  xml::TokenWriter w(&body);
  w.Start("flood");
  w.Attr("area", area.ToString());
  w.Attr("reply-to", std::to_string(reply_to));
  w.End();
  Forward(flood_id, net::MakePayload(std::move(body)), horizon, net::kNoPeer);
}

void FloodingPeer::Forward(const std::string& flood_id,
                           const net::Payload& body, int horizon,
                           net::PeerId except) {
  if (horizon <= 0) return;
  for (net::PeerId n : neighbors_) {
    if (n == except) continue;
    wire::Send(sim_, id_, n,
               {wire::kFloodKind, flood_id,
                static_cast<uint32_t>(horizon), body});
  }
}

void FloodingPeer::HandleMessage(const net::Message& msg) {
  auto decoded = wire::DecodeEnvelope(msg);
  if (!decoded.ok()) return;
  const wire::Envelope env = std::move(decoded).value();
  if (env.kind != wire::kFloodKind) return;
  const std::string& flood_id = env.query_id;
  if (!seen_.insert(flood_id).second) return;  // duplicate: drop
  xml::AttrList attrs;
  if (!wire::DecodeAttrBody(env.body(), &attrs).ok()) return;
  auto area = ns::InterestArea::Parse(attrs.Get("area"));
  if (!area.ok()) return;
  int64_t reply_to = 0;
  (void)mqp::ParseInt64(attrs.Get("reply-to", "-1"), &reply_to);

  // Local match: send items that fall inside the queried area.
  if (area_.Overlaps(*area) && reply_to >= 0) {
    std::string hit;
    xml::TokenWriter w(&hit);
    w.Start("flood-hit");
    size_t matched = 0;
    for (const auto& item : items_) {
      if (workload::GarageSaleGenerator::ItemInArea(*item, *area)) {
        w.Write(*item);
        ++matched;
      }
    }
    w.End();
    if (matched > 0) {
      wire::Send(sim_, id_, static_cast<net::PeerId>(reply_to),
                 {wire::kFloodHitKind, flood_id, 0,
                  net::MakePayload(std::move(hit))});
    }
  }
  // Decrementing the horizon touches only the header; the body is
  // forwarded as the very buffer it arrived in.
  Forward(flood_id, env.payload, static_cast<int>(env.hops) - 1, msg.from);
}

FloodingClient::FloodingClient(net::Transport* sim)
    : FloodingPeer(sim, ns::InterestArea(), {}) {}

void FloodingClient::Query(const ns::InterestArea& area, int horizon) {
  std::string flood_id = "f";
  flood_id += std::to_string(id());
  flood_id += '-';
  flood_id += std::to_string(next_flood_++);
  StartFlood(flood_id, area, horizon, id());
}

void FloodingClient::Reset() {
  collected_.clear();
  hits_ = 0;
}

void FloodingClient::HandleMessage(const net::Message& msg) {
  if (msg.kind == wire::kFloodHitKind) {
    auto items = wire::DecodeItemBody(msg.body());
    if (!items.ok()) return;
    ++hits_;
    for (auto& item : *items) {
      collected_.push_back(std::move(item));
    }
    return;
  }
  FloodingPeer::HandleMessage(msg);
}

void BuildRandomOverlay(const std::vector<FloodingPeer*>& peers,
                        size_t degree, Rng* rng) {
  const size_t n = peers.size();
  if (n < 2) return;
  // Ring for connectivity.
  for (size_t i = 0; i < n; ++i) {
    peers[i]->AddNeighbor(peers[(i + 1) % n]->id());
    peers[(i + 1) % n]->AddNeighbor(peers[i]->id());
  }
  // Random chords until the average degree target is met.
  const size_t target_edges = n * degree / 2;
  size_t edges = n;
  size_t attempts = 0;
  while (edges < target_edges && attempts < 20 * target_edges) {
    ++attempts;
    const size_t a = rng->NextBelow(n);
    const size_t b = rng->NextBelow(n);
    if (a == b) continue;
    peers[a]->AddNeighbor(peers[b]->id());
    peers[b]->AddNeighbor(peers[a]->id());
    ++edges;
  }
}

}  // namespace mqp::baseline
