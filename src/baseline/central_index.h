// The "Napster" baseline (paper §1): a centralized index server that all
// queries must go through. Clients look up the index, then fetch matching
// collections from base servers and evaluate locally.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "net/simulator.h"
#include "ns/interest.h"

namespace mqp::baseline {

/// \brief The central index: global (area → server, xpath) knowledge.
/// Populated directly by the harness — in the Napster model registration
/// is mandatory and omniscient.
class CentralIndexServer : public net::PeerNode {
 public:
  explicit CentralIndexServer(net::Transport* sim);

  net::PeerId id() const { return id_; }
  const std::string& address() const { return sim_->Address(id_); }

  void AddEntry(const ns::InterestArea& area, const std::string& server,
                const std::string& xpath);
  size_t entry_count() const { return entries_.size(); }

  void HandleMessage(const net::Message& msg) override;

 private:
  struct Entry {
    ns::InterestArea area;
    std::string server;
    std::string xpath;
  };
  net::Transport* sim_;
  net::PeerId id_;
  std::vector<Entry> entries_;
};

/// \brief A client of the central index. Fetches collection data from the
/// base peers named by the index and evaluates the plan locally.
class CentralIndexClient : public net::PeerNode {
 public:
  struct Outcome {
    bool complete = false;
    algebra::ItemSet items;
    double started_at = 0;
    double finished_at = 0;
    size_t servers_contacted = 0;
  };
  using Callback = std::function<void(const Outcome&)>;

  CentralIndexClient(net::Transport* sim, std::string index_address);

  net::PeerId id() const { return id_; }
  const std::string& address() const { return sim_->Address(id_); }

  /// Runs `plan` (whose single URN leaf must be an interest-area URN
  /// matching `area`); `cb` fires when all fetches return.
  void Run(algebra::Plan plan, const ns::InterestArea& area, Callback cb);

  void HandleMessage(const net::Message& msg) override;

 private:
  void FinishIfDone();

  net::Transport* sim_;
  net::PeerId id_;
  std::string index_address_;

  algebra::Plan plan_;
  Callback callback_;
  Outcome outcome_;
  size_t outstanding_ = 0;
  algebra::ItemSet fetched_;
  uint64_t next_req_ = 0;
  std::string lookup_req_;
};

}  // namespace mqp::baseline
