// TcpTransport: the same peers over real loopback sockets.
//
// The third net::Transport backend (DESIGN.md §8): every registered peer
// gets its own listening socket on 127.0.0.1 (port chosen by the
// kernel), messages travel as length-prefixed wire frames over cached
// outbound connections, and the clock is the wall clock. The peer stack
// runs unmodified — addresses ("127.0.0.1:<port>") flow through catalog
// entries and Lookup exactly like the simulator's virtual ones.
//
// Threading model. One accept thread per peer; one reader thread per
// accepted connection; one writer thread per outbound connection; one
// timer thread for Schedule/ScheduleFor. The Transport contract
// (handlers single-threaded per peer) is enforced with a per-peer
// delivery mutex: readers and timer callbacks lock the destination
// peer's mutex around HandleMessage / the callback, so concurrent
// connections to one peer serialize while distinct peers proceed in
// parallel. Stats are sharded per thread and merged on read, as in
// ThreadedRuntime.
//
// Outbound backpressure (DESIGN.md §11, parity with ThreadedRuntime's
// mailboxes). Send enqueues the framed message on the connection's
// bounded queue and returns; the writer thread drains it to the socket.
// When the queue is full, an *external* sender blocks until the writer
// frees space (counted in NetStats::tcp_send_queue_waits), while a
// transport-internal thread — a reader mid-delivery or the timer thread
// — never blocks: it over-admits past the cap and counts
// tcp_send_soft_overflows, because parking the thread that drains peer
// A's inbox until peer B's outbox drains is how distributed deadlocks
// are built.
//
// Frame format (all integers little-endian uint32):
//   [rest-length][from][to][kind-len][kind][header-len][header]
//   [body-len][body]
//
// Run(max_time) has no event loop to drive: the work happens on the
// background threads. It blocks until the transport has been quiet (no
// delivery or timer fired) for a settle window and no timer is due
// before `max_time`, then reports how many events were processed while
// it watched. That is enough for the build-and-query workloads the
// loopback smoke test drives; long virtual-time scenarios (gossip
// horizons) belong on the simulator or the threaded runtime, where time
// is free.
//
// Shutdown is graceful and bounded: stop accepting, wait up to the
// drain timeout for quiet, then shut down every socket (unblocking the
// reader threads) and join them all. The destructor calls Shutdown.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"
#include "net/message.h"
#include "net/transport.h"

namespace mqp::runtime {

struct TcpOptions {
  /// Run() declares quiescence after this long without any delivery or
  /// timer firing (wall-clock seconds).
  double settle_seconds = 0.15;
  /// Shutdown() waits at most this long for in-flight work to drain
  /// before closing sockets out from under the readers.
  double drain_timeout_seconds = 5.0;
  /// Per-connection outbound queue bound, in frames (0 = unbounded, the
  /// pre-§11 behavior). External senders block at the cap; transport
  /// threads soft-overflow past it (see the header notes).
  size_t send_queue_cap = 1024;
};

/// \brief Loopback-TCP transport: per-peer listening sockets, framed
/// messages, wall-clock time.
class TcpTransport : public net::Transport {
 public:
  explicit TcpTransport(TcpOptions options = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// False when socket setup failed (no loopback in the environment);
  /// callers should skip TCP-dependent work. Sticky once any Register
  /// fails.
  bool ok() const { return ok_.load(std::memory_order_relaxed); }

  // --- net::Transport -------------------------------------------------------

  net::PeerId Register(net::PeerNode* node) override;
  size_t size() const override;
  const std::string& Address(net::PeerId id) const override;
  Result<net::PeerId> Lookup(std::string_view address) const override;

  /// Wall-clock seconds since construction.
  double now() const override;

  void Send(net::Message msg) override;
  void Schedule(double when, std::function<void()> fn) override;
  void ScheduleFor(net::PeerId owner, double when,
                   std::function<void()> fn) override;

  void Fail(net::PeerId id) override;
  void Recover(net::PeerId id) override;
  bool IsFailed(net::PeerId id) const override;

  /// Blocks until quiet (see header notes) or `max_time` on the wall
  /// clock; returns events processed while waiting.
  size_t Run(double max_time = 1e9) override;

  bool Idle() const override;

  net::NetStats& stats() override;
  const net::NetStats& stats() const override;

  // --- runtime-specific -----------------------------------------------------

  /// Graceful stop: drain (bounded), close sockets, join every thread.
  /// Idempotent; Send/Schedule become no-ops afterwards.
  void Shutdown();

 private:
  struct PeerSlot {
    net::PeerNode* node = nullptr;
    int listen_fd = -1;
    uint16_t port = 0;
    std::thread accept_thread;
    /// Serializes HandleMessage and ScheduleFor callbacks for this peer.
    std::mutex deliver_mu;
  };

  struct Connection {
    int fd = -1;
    std::mutex mu;  ///< guards queue/closed/write_failed
    std::condition_variable has_data;   ///< frame queued, or closing
    std::condition_variable can_write;  ///< space freed, or closing
    std::deque<std::string> queue;      ///< framed messages, FIFO
    bool closed = false;        ///< shutdown: writer exits when drained
    bool write_failed = false;  ///< peer hung up: enqueues become drops
    std::thread writer;
  };

  struct Timer {
    double when;
    uint64_t seq;
    net::PeerId owner;
    std::function<void()> fn;
    bool operator>(const Timer& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  void AcceptLoop(net::PeerId id);
  void ReaderLoop(net::PeerId id, int fd);
  void WriterLoop(Connection* conn);
  void TimerLoop();

  /// The cached (or freshly connected) outbound connection to `to`;
  /// null when connecting failed.
  Connection* ConnectionTo(net::PeerId to);

  /// Delivers a decoded frame to its destination under the peer's
  /// delivery mutex. Counts into the calling (reader) thread's shard.
  void Deliver(net::Message msg);

  net::NetStats& ShardForThisThread();
  void NoteEvent();  ///< bumps the activity counter Run() watches

  /// Release/acquire edge pairing finished shard writes with a future
  /// merged stats() read (an empty stats_mu_ critical section).
  void PublishShard();

  const TcpOptions options_;
  const uint64_t transport_uid_;
  const std::chrono::steady_clock::time_point epoch_;

  std::atomic<bool> ok_{true};
  std::atomic<bool> stopping_{false};

  mutable std::mutex mu_;  ///< registry: slots, addresses, failed, conns
  std::deque<PeerSlot> slots_;  ///< deque: stable addresses
  std::vector<std::string> addresses_;
  std::map<std::string, net::PeerId, std::less<>> by_address_;
  std::vector<bool> failed_;
  std::map<net::PeerId, std::unique_ptr<Connection>> outbound_;
  std::vector<std::thread> reader_threads_;

  // Timer machinery.
  mutable std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::vector<Timer> timer_heap_;  ///< min-heap via std::greater
  uint64_t timer_seq_ = 0;
  std::thread timer_thread_;

  // Activity accounting for Run()'s settle detection.
  std::atomic<uint64_t> events_{0};

  // Stats shards (same scheme as ThreadedRuntime, keyed by thread id).
  mutable std::mutex stats_mu_;
  std::map<std::thread::id, std::unique_ptr<net::NetStats>> shards_;
  mutable net::NetStats merged_;
};

}  // namespace mqp::runtime
