#include "runtime/threaded_runtime.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>

#include "net/simulator.h"

namespace mqp::runtime {

namespace {

// Thread-local shard cache. Keyed by a process-unique runtime id (never
// a pointer): a cache left behind by a destroyed runtime at a reused
// address can never validate against a new instance.
struct TlsShard {
  uint64_t runtime_uid = 0;
  net::NetStats* shard = nullptr;
  bool is_worker = false;
};
thread_local TlsShard t_shard;

uint64_t NextRuntimeUid() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

ThreadedRuntime::ThreadedRuntime(RuntimeOptions options)
    : options_(options), runtime_uid_(NextRuntimeUid()) {
  num_threads_ = options_.num_threads != 0
                     ? options_.num_threads
                     : std::max(1u, std::thread::hardware_concurrency());
}

ThreadedRuntime::~ThreadedRuntime() {
  // Fast stop: pending mail is discarded (Shutdown() first for a drain).
  std::unique_lock<std::mutex> lk(sched_mu_);
  stopping_ = true;
  work_cv_.notify_all();
  space_cv_.notify_all();
  lk.unlock();
  for (std::thread& t : workers_) t.join();
}

net::PeerId ThreadedRuntime::Register(net::PeerNode* node) {
  std::lock_guard<std::mutex> lk(sched_mu_);
  const net::PeerId id = static_cast<net::PeerId>(nodes_.size());
  nodes_.push_back(node);
  failed_.push_back(false);
  // The same address scheme as the simulator, so catalog entries (which
  // embed owner/server addresses) compare equal across backends.
  addresses_.push_back(net::Simulator::AddressOf(id));
  mailboxes_.emplace_back();
  return id;
}

size_t ThreadedRuntime::size() const {
  std::lock_guard<std::mutex> lk(sched_mu_);
  return nodes_.size();
}

const std::string& ThreadedRuntime::Address(net::PeerId id) const {
  std::lock_guard<std::mutex> lk(sched_mu_);
  if (id < addresses_.size()) return addresses_[id];  // deque: stable ref
  thread_local std::string scratch;  // same contract as Simulator::Address
  scratch = net::Simulator::AddressOf(id);
  return scratch;
}

Result<net::PeerId> ThreadedRuntime::Lookup(std::string_view address) const {
  std::string_view s = address;
  const std::string_view prefix = "10.0.0.";
  if (s.substr(0, prefix.size()) != prefix) {
    return Status::NotFound("unknown address '" + std::string(address) + "'");
  }
  s.remove_prefix(prefix.size());
  const size_t colon = s.find(':');
  if (colon == std::string_view::npos) {
    return Status::NotFound("address missing port: '" + std::string(address) +
                            "'");
  }
  uint64_t id = 0;
  for (char c : s.substr(0, colon)) {
    if (c < '0' || c > '9') {
      return Status::NotFound("no peer at '" + std::string(address) + "'");
    }
    id = id * 10 + static_cast<uint64_t>(c - '0');
  }
  std::lock_guard<std::mutex> lk(sched_mu_);
  if (id >= nodes_.size()) {
    return Status::NotFound("no peer at '" + std::string(address) + "'");
  }
  return static_cast<net::PeerId>(id);
}

double ThreadedRuntime::now() const {
  return now_.load(std::memory_order_relaxed);
}

net::NetStats& ThreadedRuntime::ShardForThisThread() {
  if (t_shard.runtime_uid == runtime_uid_ && t_shard.shard != nullptr) {
    return *t_shard.shard;
  }
  std::lock_guard<std::mutex> lk(sched_mu_);
  std::unique_ptr<net::NetStats>& slot =
      extra_shards_[std::this_thread::get_id()];
  if (!slot) slot = std::make_unique<net::NetStats>();
  t_shard = TlsShard{runtime_uid_, slot.get(), false};
  return *slot;
}

net::NetStats& ThreadedRuntime::stats() { return ShardForThisThread(); }

const net::NetStats& ThreadedRuntime::stats() const {
  std::lock_guard<std::mutex> lk(sched_mu_);
  merged_.Clear();
  for (const net::NetStats& shard : worker_shards_) merged_.MergeFrom(shard);
  for (const auto& [tid, shard] : extra_shards_) {
    (void)tid;
    merged_.MergeFrom(*shard);
  }
  return merged_;
}

void ThreadedRuntime::ClearStats() {
  std::lock_guard<std::mutex> lk(sched_mu_);
  for (net::NetStats& shard : worker_shards_) shard.Clear();
  for (auto& [tid, shard] : extra_shards_) {
    (void)tid;
    shard->Clear();
  }
  merged_.Clear();
}

bool ThreadedRuntime::AccountSend(net::Message& msg, net::NetStats& shard) {
  // Mirrors Simulator::Send's accounting exactly (net/simulator.cc): wire
  // size defaulted once, kind interned once, drops tallied but never
  // delivered.
  if (msg.size_bytes == 0) {
    msg.size_bytes = msg.header.size() + msg.body().size();
  }
  if (msg.kind_id == net::kNoKind) msg.kind_id = net::InternKind(msg.kind);
  shard.messages++;
  shard.bytes += msg.size_bytes;
  shard.messages_by_kind.Slot(msg.kind_id)++;
  shard.bytes_by_kind.Slot(msg.kind_id) += msg.size_bytes;
  if (msg.from < failed_.size() && failed_[msg.from]) {
    shard.drops_from_failed++;
    return false;
  }
  if (msg.to >= nodes_.size() || failed_[msg.to]) {
    shard.drops_to_failed++;
    return false;
  }
  return true;
}

void ThreadedRuntime::MarkReadyLocked(net::PeerId id) {
  Mailbox& mb = mailboxes_[id];
  if (!mb.active && !mb.ready && !mb.queue.empty()) {
    mb.ready = true;
    ready_.push_back(id);
  }
}

void ThreadedRuntime::Send(net::Message msg) {
  net::NetStats& shard = ShardForThisThread();
  std::unique_lock<std::mutex> lk(sched_mu_);
  if (stopping_) return;
  if (!AccountSend(msg, shard)) return;
  const net::PeerId to = msg.to;
  Mailbox& mb = mailboxes_[to];
  if (mb.queue.size() >= options_.mailbox_capacity) {
    const bool worker = t_shard.is_worker && t_shard.runtime_uid == runtime_uid_;
    if (worker || !workers_started_ || timers_firing_) {
      // A worker must never block on a full mailbox (two full peers
      // sending to each other would deadlock); before the pool is live
      // there is nobody to make space; and while a barrier's timers
      // fire the pool is deliberately held back (see Run), so blocking
      // here would deadlock the driving thread. All three overflow.
      shard.mailbox_soft_overflows++;
    } else {
      shard.mailbox_backpressure_waits++;
      space_cv_.wait(lk, [&] {
        return mb.queue.size() < options_.mailbox_capacity || stopping_;
      });
      if (stopping_) return;
    }
  }
  mb.queue.push_back(std::move(msg));
  ++queued_messages_;
  MarkReadyLocked(to);
  work_cv_.notify_one();
}

void ThreadedRuntime::Schedule(double when, std::function<void()> fn) {
  ScheduleFor(net::kNoPeer, when, std::move(fn));
}

void ThreadedRuntime::ScheduleFor(net::PeerId owner, double when,
                                  std::function<void()> fn) {
  net::NetStats& shard = ShardForThisThread();
  std::lock_guard<std::mutex> lk(sched_mu_);
  if (stopping_) return;
  const double now = now_.load(std::memory_order_relaxed);
  timer_heap_.push_back(
      Timer{when < now ? now : when, timer_seq_++, owner, std::move(fn)});
  std::push_heap(timer_heap_.begin(), timer_heap_.end(), std::greater<>());
  shard.events_scheduled++;
}

void ThreadedRuntime::Fail(net::PeerId id) {
  std::lock_guard<std::mutex> lk(sched_mu_);
  if (id < failed_.size()) failed_[id] = true;
}

void ThreadedRuntime::Recover(net::PeerId id) {
  std::lock_guard<std::mutex> lk(sched_mu_);
  if (id < failed_.size()) failed_[id] = false;
}

bool ThreadedRuntime::IsFailed(net::PeerId id) const {
  std::lock_guard<std::mutex> lk(sched_mu_);
  return id < failed_.size() && failed_[id];
}

bool ThreadedRuntime::Idle() const {
  std::lock_guard<std::mutex> lk(sched_mu_);
  return queued_messages_ == 0 && busy_workers_ == 0 && timer_heap_.empty();
}

void ThreadedRuntime::StartWorkersLocked() {
  if (workers_started_ || stopping_) return;
  workers_started_ = true;
  for (size_t i = 0; i < num_threads_; ++i) worker_shards_.emplace_back();
  workers_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void ThreadedRuntime::WorkerLoop(size_t worker_index) {
  std::unique_lock<std::mutex> lk(sched_mu_);
  t_shard = TlsShard{runtime_uid_, &worker_shards_[worker_index], true};
  net::NetStats& shard = worker_shards_[worker_index];
  std::deque<net::Message> batch;
  for (;;) {
    // The pool holds back while a barrier's timers fire (timers_firing_):
    // a delivery racing a same-time timer callback of the same peer would
    // put two threads in one peer's handler state. Run() reopens the gate
    // after the last timer of the batch.
    work_cv_.wait(lk,
                  [&] { return stopping_ || (!timers_firing_ && !ready_.empty()); });
    if (stopping_) return;
    const net::PeerId id = ready_.front();
    ready_.pop_front();
    Mailbox& mb = mailboxes_[id];
    mb.ready = false;
    if (mb.active || mb.queue.empty()) continue;
    mb.active = true;
    ++busy_workers_;
    while (!mb.queue.empty() && !stopping_) {
      batch.clear();
      batch.swap(mb.queue);
      queued_messages_ -= batch.size();
      space_cv_.notify_all();
      const bool down = failed_[id];  // re-check at delivery time
      net::PeerNode* node = nodes_[id];
      lk.unlock();
      if (down) {
        // The peer failed after these were queued: the simulator's
        // in-transit drop, surfaced in the receiver-side tally.
        shard.drops_to_failed += batch.size();
      } else {
        for (const net::Message& m : batch) node->HandleMessage(m);
      }
      lk.lock();
      processed_ += batch.size();
    }
    mb.active = false;
    --busy_workers_;
    if (busy_workers_ == 0 && queued_messages_ == 0) idle_cv_.notify_all();
  }
}

size_t ThreadedRuntime::Run(double max_time) {
  std::unique_lock<std::mutex> lk(sched_mu_);
  StartWorkersLocked();
  const uint64_t delivered_before = processed_;
  size_t timers_fired = 0;
  for (;;) {
    // Quiescent barrier: every mailbox drained, every worker parked.
    idle_cv_.wait(lk, [&] {
      return (queued_messages_ == 0 && busy_workers_ == 0) || stopping_;
    });
    if (stopping_) break;
    if (timer_heap_.empty() || timer_heap_.front().when > max_time) break;
    // Advance the virtual clock to the earliest deadline and fire every
    // timer stamped with it, in schedule order — the simulator dispatches
    // equal-time events the same way, before any of the (strictly later)
    // deliveries they cause.
    const double t = timer_heap_.front().when;
    if (t > now_.load(std::memory_order_relaxed)) {
      now_.store(t, std::memory_order_relaxed);
    }
    // Hold the pool back for the whole batch: a callback's Send must not
    // wake a worker into delivering against a peer whose own time-t
    // callback has not run yet (the simulator likewise dispatches every
    // time-t event before any delivery they cause).
    timers_firing_ = true;
    while (!timer_heap_.empty() && timer_heap_.front().when <= t) {
      std::pop_heap(timer_heap_.begin(), timer_heap_.end(), std::greater<>());
      Timer timer = std::move(timer_heap_.back());
      timer_heap_.pop_back();
      lk.unlock();
      timer.fn();  // may Send / Schedule / Register
      lk.lock();
      ++timers_fired;
    }
    timers_firing_ = false;
    work_cv_.notify_all();
  }
  return static_cast<size_t>(processed_ - delivered_before) + timers_fired;
}

void ThreadedRuntime::Shutdown() {
  using namespace std::chrono_literals;
  std::unique_lock<std::mutex> lk(sched_mu_);
  if (!stopping_ && workers_started_) {
    // Graceful: give in-flight handler chains a bounded window to drain
    // before stopping the pool (a wedged handler must not hang teardown).
    idle_cv_.wait_for(lk, 30s, [&] {
      return queued_messages_ == 0 && busy_workers_ == 0;
    });
  }
  stopping_ = true;
  work_cv_.notify_all();
  space_cv_.notify_all();
  idle_cv_.notify_all();
  lk.unlock();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

}  // namespace mqp::runtime
