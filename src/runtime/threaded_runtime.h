// ThreadedRuntime: the same peers, all cores.
//
// A net::Transport implementation that dispatches peer handlers on a
// thread pool instead of a single event loop (DESIGN.md §8). Each peer
// owns a bounded mailbox; a worker drains one peer's mailbox at a time,
// so handlers stay single-threaded *per peer* (the Transport contract)
// while different peers run concurrently.
//
// Time is virtual and advances only at quiescent barriers: Run() lets
// the pool drain every mailbox, then — with all workers parked — pops
// the earliest-deadline timers on the driving thread, advances now(),
// and releases the pool again. The pool stays parked for the *whole*
// timer batch: a callback's Send must not wake a worker into a peer
// whose own time-t callback has not fired yet (two threads in one
// peer's handler state), and the simulator likewise runs every time-t
// event before any delivery it causes. Messages deliver at the virtual
// time of their send (no latency model), so a burst of cross-peer
// traffic is one parallel drain rather than a serialized event
// sequence. The workload
// stack (garage-sale builder, gossip horizon, churn driver) runs on this
// backend unmodified; equivalence with the simulator is tested over a
// 1000-seed suite (tests/runtime_test.cc).
//
// Backpressure: mailboxes are bounded. An *external* sender (a thread
// that is not one of the pool's workers — e.g. a client thread feeding
// queries) blocks until space frees, counted in
// NetStats::mailbox_backpressure_waits. A *worker* never blocks on a
// full mailbox — two full peers sending to each other would deadlock —
// it overflows the bound and counts mailbox_soft_overflows instead.
//
// Stats are sharded per thread (workers and the driving thread each own
// a NetStats) and merged on read; merges happen under the scheduler
// mutex the workers park on, so a merged read at quiescence is exact and
// race-free.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"
#include "net/message.h"
#include "net/transport.h"

namespace mqp::runtime {

struct RuntimeOptions {
  /// Worker threads in the pool. 0 means hardware_concurrency().
  size_t num_threads = 0;
  /// Mailbox bound per peer; senders outside the pool block when a
  /// mailbox is full (workers overflow instead — see header notes).
  size_t mailbox_capacity = 4096;
};

/// \brief Thread-pool transport: per-peer mailboxes, barrier-stepped
/// virtual time, per-thread stats shards.
class ThreadedRuntime : public net::Transport {
 public:
  explicit ThreadedRuntime(RuntimeOptions options = {});
  ~ThreadedRuntime() override;

  ThreadedRuntime(const ThreadedRuntime&) = delete;
  ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

  // --- net::Transport -------------------------------------------------------

  /// Must be called from the driving thread while quiescent (before Run,
  /// or from a timer callback — churn joiners do the latter).
  net::PeerId Register(net::PeerNode* node) override;

  size_t size() const override;
  const std::string& Address(net::PeerId id) const override;
  Result<net::PeerId> Lookup(std::string_view address) const override;

  /// Virtual time: advances only at Run()'s quiescent barriers.
  double now() const override;

  void Send(net::Message msg) override;
  void Schedule(double when, std::function<void()> fn) override;
  void ScheduleFor(net::PeerId owner, double when,
                   std::function<void()> fn) override;

  void Fail(net::PeerId id) override;
  void Recover(net::PeerId id) override;
  bool IsFailed(net::PeerId id) const override;

  /// Drives the runtime from the calling (driving) thread: repeatedly
  /// lets the pool drain all mailboxes, then fires due timers, until
  /// both are empty or the next timer lies beyond `max_time`. Returns
  /// deliveries + timer callbacks processed.
  size_t Run(double max_time = 1e9) override;

  bool Idle() const override;

  /// The calling thread's writable shard (workers and externals get
  /// their own; the driving thread owns the base shard).
  net::NetStats& stats() override;
  /// Merged view of every shard — exact at quiescence.
  const net::NetStats& stats() const override;

  // --- runtime-specific -----------------------------------------------------

  size_t num_threads() const { return num_threads_; }

  /// Zeroes every shard (driving thread, quiescent only).
  void ClearStats();

  /// Drains outstanding work (bounded wait) and joins the pool.
  /// Idempotent. After Shutdown, Send/Schedule are no-ops. The
  /// destructor stops the pool WITHOUT draining — call Shutdown first
  /// when pending mail must be delivered.
  void Shutdown();

 private:
  struct Mailbox {
    std::deque<net::Message> queue;
    bool active = false;  ///< a worker is draining this peer right now
    bool ready = false;   ///< queued in ready_ (avoid duplicate entries)
  };

  struct Timer {
    double when;
    uint64_t seq;
    net::PeerId owner;  // kNoPeer: global callback (churn driver etc.)
    std::function<void()> fn;
    bool operator>(const Timer& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  /// One worker's parked loop: claim a ready peer, drain a batch of its
  /// mailbox, repeat; park on work_cv_ when nothing is ready.
  void WorkerLoop(size_t worker_index);

  /// Pushes `id` onto the ready queue if it needs draining (caller holds
  /// sched_mu_).
  void MarkReadyLocked(net::PeerId id);

  /// The calling thread's shard, creating it on first use.
  net::NetStats& ShardForThisThread();

  /// Tallies a send into the caller's shard and decides droppage.
  /// Returns false when the message must not be enqueued.
  bool AccountSend(net::Message& msg, net::NetStats& shard);

  void StartWorkersLocked();

  const RuntimeOptions options_;
  size_t num_threads_;

  /// Process-unique id for the thread-local shard cache: a worker caches
  /// (runtime_uid_, shard*) and revalidates on every use, so a stale
  /// cache from a destroyed runtime at a reused address can never match.
  const uint64_t runtime_uid_;

  mutable std::mutex sched_mu_;
  std::condition_variable work_cv_;   ///< workers park here
  std::condition_variable idle_cv_;   ///< Run() waits for quiescence here
  std::condition_variable space_cv_;  ///< external senders block here

  // All guarded by sched_mu_ unless noted.
  std::vector<net::PeerNode*> nodes_;
  std::vector<bool> failed_;
  std::deque<std::string> addresses_;  ///< deque: Address() hands out
                                       ///< references that must survive
                                       ///< mid-run Register (churn joins)
  std::deque<Mailbox> mailboxes_;  ///< deque: stable addresses on growth
  std::deque<net::PeerId> ready_;  ///< peers with undrained mail
  std::vector<Timer> timer_heap_;  ///< min-heap via std::greater
  uint64_t timer_seq_ = 0;
  size_t busy_workers_ = 0;
  size_t queued_messages_ = 0;  ///< total undelivered mail across peers
  uint64_t processed_ = 0;      ///< deliveries, cumulative
  bool workers_started_ = false;
  bool timers_firing_ = false;  ///< pool held back during a timer batch
  bool stopping_ = false;

  std::vector<std::thread> workers_;

  /// now() is read lock-free from handler threads; written only at
  /// barriers while the pool is parked.
  std::atomic<double> now_{0};

  /// Stats shards. Workers index worker_shards_ by their pool slot;
  /// other threads (the driver, external senders) get a slot in
  /// extra_shards_ keyed by thread id. Guarded by sched_mu_ for
  /// creation and merge; each shard is written only by its owner.
  std::deque<net::NetStats> worker_shards_;
  std::map<std::thread::id, std::unique_ptr<net::NetStats>> extra_shards_;
  mutable net::NetStats merged_;  ///< scratch for stats() const
};

}  // namespace mqp::runtime
