#include "runtime/tcp_transport.h"

#if defined(__unix__) || defined(__APPLE__)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "net/kind_table.h"

namespace mqp::runtime {
namespace {

std::atomic<uint64_t> g_tcp_uid{1};

// Thread-local shard cache, revalidated against the transport uid so a
// reader thread of a destroyed transport can never write through a stale
// pointer (same scheme as threaded_runtime.cc).
struct TlsShard {
  uint64_t uid = 0;
  net::NetStats* shard = nullptr;
};
thread_local TlsShard tls_shard;

// True on threads the transport itself owns (readers, timer): those
// threads must never block on a full send queue — a reader parked on
// peer B's outbox stops draining peer A's inbox, and two such parks
// facing each other deadlock the fabric. They soft-overflow instead.
thread_local bool tls_transport_thread = false;

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

/// Reads exactly `len` bytes; false on EOF/error (connection is done).
bool ReadFull(int fd, char* buf, size_t len) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, buf + got, len - got, 0);
    if (n <= 0) return false;
    got += static_cast<size_t>(n);
  }
  return true;
}

bool WriteFull(int fd, const char* buf, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Frames cap at 64 MiB — far above any real payload, low enough that a
// corrupt length prefix cannot trigger a giant allocation.
constexpr uint32_t kMaxFrame = 64u << 20;

}  // namespace

TcpTransport::TcpTransport(TcpOptions options)
    : options_(options),
      transport_uid_(g_tcp_uid.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {
  timer_thread_ = std::thread([this] { TimerLoop(); });
}

TcpTransport::~TcpTransport() { Shutdown(); }

net::PeerId TcpTransport::Register(net::PeerNode* node) {
  std::lock_guard<std::mutex> lock(mu_);
  const net::PeerId id = static_cast<net::PeerId>(slots_.size());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // kernel-assigned
  socklen_t alen = sizeof(addr);
  if (fd < 0 || ::bind(fd, reinterpret_cast<sockaddr*>(&addr), alen) != 0 ||
      ::listen(fd, 64) != 0 ||
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen) != 0) {
    if (fd >= 0) ::close(fd);
    ok_.store(false, std::memory_order_relaxed);
    // Register the peer anyway so ids stay dense; it just cannot hear.
    slots_.emplace_back();
    slots_.back().node = node;
    addresses_.push_back("127.0.0.1:0");
    failed_.push_back(false);
    return id;
  }

  slots_.emplace_back();
  PeerSlot& slot = slots_.back();
  slot.node = node;
  slot.listen_fd = fd;
  slot.port = ntohs(addr.sin_port);
  addresses_.push_back("127.0.0.1:" + std::to_string(slot.port));
  by_address_[addresses_.back()] = id;
  failed_.push_back(false);
  slot.accept_thread = std::thread([this, id] { AcceptLoop(id); });
  return id;
}

size_t TcpTransport::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

const std::string& TcpTransport::Address(net::PeerId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  static const std::string kUnknown = "unknown:0";
  return id < addresses_.size() ? addresses_[id] : kUnknown;
}

Result<net::PeerId> TcpTransport::Lookup(std::string_view address) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_address_.find(address);
  if (it == by_address_.end()) {
    return Status::NotFound("unknown address: " + std::string(address));
  }
  return it->second;
}

double TcpTransport::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

net::NetStats& TcpTransport::ShardForThisThread() {
  if (tls_shard.uid == transport_uid_) return *tls_shard.shard;
  std::lock_guard<std::mutex> lock(stats_mu_);
  auto& slot = shards_[std::this_thread::get_id()];
  if (!slot) slot = std::make_unique<net::NetStats>();
  tls_shard = {transport_uid_, slot.get()};
  return *slot;
}

net::NetStats& TcpTransport::stats() { return ShardForThisThread(); }

const net::NetStats& TcpTransport::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  merged_.Clear();
  for (const auto& [tid, shard] : shards_) merged_.MergeFrom(*shard);
  return merged_;
}

void TcpTransport::NoteEvent() {
  events_.fetch_add(1, std::memory_order_relaxed);
}

void TcpTransport::PublishShard() {
  // An empty critical section: pairs the calling thread's finished
  // shard writes with a future merge under stats_mu_ (the release/
  // acquire edge Run()'s settle poll cannot provide — sleeping is not
  // synchronization). Called after every delivery, timer callback and
  // external send, so a merge at quiescence happens-after every
  // completed unit of work. A merge racing a *still-running* handler
  // remains approximate; the contract promises exactness only at
  // quiescence.
  std::lock_guard<std::mutex> lock(stats_mu_);
}

void TcpTransport::Send(net::Message msg) {
  if (stopping_.load(std::memory_order_relaxed)) return;
  // Same accounting contract as Simulator::Send: wire size defaults to
  // header + body, every send is counted, down senders/receivers drop.
  if (msg.size_bytes == 0) {
    msg.size_bytes = msg.header.size() + msg.body().size();
  }
  if (msg.kind_id == net::kNoKind) msg.kind_id = net::InternKind(msg.kind);
  net::NetStats& shard = ShardForThisThread();
  shard.messages++;
  shard.bytes += msg.size_bytes;
  shard.messages_by_kind.Slot(msg.kind_id)++;
  shard.bytes_by_kind.Slot(msg.kind_id) += msg.size_bytes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (msg.from < failed_.size() && failed_[msg.from]) {
      shard.drops_from_failed++;
      return;
    }
    if (msg.to >= slots_.size() || failed_[msg.to]) {
      shard.drops_to_failed++;
      return;
    }
  }

  Connection* conn = ConnectionTo(msg.to);
  if (conn == nullptr) {
    shard.drops_to_failed++;
    return;
  }
  std::string frame;
  const std::string& body = msg.body();
  frame.reserve(4 * 6 + msg.kind.size() + msg.header.size() + body.size());
  PutU32(&frame, 0);  // patched below
  PutU32(&frame, msg.from);
  PutU32(&frame, msg.to);
  PutU32(&frame, static_cast<uint32_t>(msg.kind.size()));
  frame += msg.kind;
  PutU32(&frame, static_cast<uint32_t>(msg.header.size()));
  frame += msg.header;
  PutU32(&frame, static_cast<uint32_t>(body.size()));
  frame += body;
  const uint32_t rest = static_cast<uint32_t>(frame.size() - 4);
  std::memcpy(frame.data(), &rest, 4);

  {
    std::unique_lock<std::mutex> wl(conn->mu);
    if (conn->closed || conn->write_failed) {
      // Receiver hung up (shutdown race); treat like a down destination.
      shard.drops_to_failed++;
      PublishShard();
      return;
    }
    const size_t cap = options_.send_queue_cap;
    if (cap > 0 && conn->queue.size() >= cap) {
      if (tls_transport_thread) {
        shard.tcp_send_soft_overflows++;
      } else {
        shard.tcp_send_queue_waits++;
        conn->can_write.wait(wl, [&] {
          return conn->queue.size() < cap || conn->closed ||
                 conn->write_failed;
        });
        if (conn->closed || conn->write_failed) {
          shard.drops_to_failed++;
          PublishShard();
          return;
        }
      }
    }
    conn->queue.push_back(std::move(frame));
  }
  conn->has_data.notify_one();
  PublishShard();
}

void TcpTransport::WriterLoop(Connection* conn) {
  tls_transport_thread = true;
  std::unique_lock<std::mutex> lk(conn->mu);
  while (true) {
    conn->has_data.wait(
        lk, [&] { return !conn->queue.empty() || conn->closed; });
    if (conn->queue.empty()) return;  // closed and drained
    if (conn->closed) {
      // Shutdown dropped the socket out from under us; whatever is
      // still queued will never arrive.
      ShardForThisThread().drops_to_failed += conn->queue.size();
      conn->queue.clear();
      conn->can_write.notify_all();
      return;
    }
    std::string frame = std::move(conn->queue.front());
    conn->queue.pop_front();
    conn->can_write.notify_one();
    const int fd = conn->fd;
    lk.unlock();
    const bool wrote = WriteFull(fd, frame.data(), frame.size());
    lk.lock();
    if (!wrote && !conn->write_failed) {
      // Receiver hung up: this frame and everything behind it are gone.
      conn->write_failed = true;
      ShardForThisThread().drops_to_failed += conn->queue.size() + 1;
      conn->queue.clear();
      conn->can_write.notify_all();
      PublishShard();
    }
  }
}

TcpTransport::Connection* TcpTransport::ConnectionTo(net::PeerId to) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = outbound_.find(to);
    if (it != outbound_.end()) return it->second.get();
  }
  uint16_t port = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (to >= slots_.size() || slots_[to].port == 0) return nullptr;
    port = slots_[to].port;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = outbound_.try_emplace(to);
  if (!inserted) {
    // Lost the connect race; keep the established cache entry.
    ::close(fd);
    return it->second.get();
  }
  it->second = std::make_unique<Connection>();
  Connection* conn = it->second.get();
  conn->fd = fd;
  // The Connection lives behind a unique_ptr in outbound_ and outlives
  // its writer: Shutdown joins the writer before destroying the map.
  conn->writer = std::thread([this, conn] { WriterLoop(conn); });
  return conn;
}

void TcpTransport::AcceptLoop(net::PeerId id) {
  int listen_fd;
  {
    std::lock_guard<std::mutex> lock(mu_);
    listen_fd = slots_[id].listen_fd;
  }
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;  // listener shut down
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    reader_threads_.emplace_back([this, id, fd] { ReaderLoop(id, fd); });
  }
}

void TcpTransport::ReaderLoop(net::PeerId id, int fd) {
  tls_transport_thread = true;
  char head[4];
  std::string rest;
  while (ReadFull(fd, head, 4)) {
    const uint32_t len = GetU32(head);
    if (len < 16 || len > kMaxFrame) break;  // corrupt frame
    rest.resize(len);
    if (!ReadFull(fd, rest.data(), len)) break;
    const char* p = rest.data();
    const char* end = p + len;
    net::Message msg;
    msg.from = GetU32(p);
    msg.to = GetU32(p + 4);
    const uint32_t kind_len = GetU32(p + 8);
    p += 12;
    if (p + kind_len + 4 > end) break;
    msg.kind.assign(p, kind_len);
    p += kind_len;
    const uint32_t header_len = GetU32(p);
    p += 4;
    if (p + header_len + 4 > end) break;
    msg.header.assign(p, header_len);
    p += header_len;
    const uint32_t body_len = GetU32(p);
    p += 4;
    if (p + body_len != end) break;
    msg.payload = net::MakePayload(std::string(p, body_len));
    msg.size_bytes = msg.header.size() + body_len;
    msg.kind_id = net::InternKind(msg.kind);
    if (msg.to != id) break;  // misrouted frame: drop the connection
    Deliver(std::move(msg));
  }
  ::close(fd);
}

void TcpTransport::Deliver(net::Message msg) {
  PeerSlot* slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (msg.to >= slots_.size()) return;
    slot = failed_[msg.to] ? nullptr : &slots_[msg.to];
  }
  if (slot == nullptr) {
    // Went down while the frame was in flight: counted in
    // drops_to_failed like every backend (DESIGN.md §9).
    ShardForThisThread().drops_to_failed++;
    PublishShard();
    return;
  }
  {
    std::lock_guard<std::mutex> dl(slot->deliver_mu);
    slot->node->HandleMessage(msg);
  }
  PublishShard();
  NoteEvent();
}

void TcpTransport::Schedule(double when, std::function<void()> fn) {
  ScheduleFor(net::kNoPeer, when, std::move(fn));
}

void TcpTransport::ScheduleFor(net::PeerId owner, double when,
                               std::function<void()> fn) {
  if (stopping_.load(std::memory_order_relaxed)) return;
  ShardForThisThread().events_scheduled++;
  std::lock_guard<std::mutex> lock(timer_mu_);
  timer_heap_.push_back(Timer{when, timer_seq_++, owner, std::move(fn)});
  std::push_heap(timer_heap_.begin(), timer_heap_.end(),
                 std::greater<Timer>());
  timer_cv_.notify_one();
}

void TcpTransport::TimerLoop() {
  tls_transport_thread = true;
  std::unique_lock<std::mutex> lock(timer_mu_);
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (timer_heap_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    const double due_in = timer_heap_.front().when - now();
    if (due_in > 0) {
      timer_cv_.wait_for(lock, std::chrono::duration<double>(due_in));
      continue;
    }
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(),
                  std::greater<Timer>());
    Timer t = std::move(timer_heap_.back());
    timer_heap_.pop_back();
    lock.unlock();
    if (t.owner != net::kNoPeer) {
      PeerSlot* slot = nullptr;
      {
        std::lock_guard<std::mutex> rl(mu_);
        if (t.owner < slots_.size()) slot = &slots_[t.owner];
      }
      if (slot != nullptr) {
        std::lock_guard<std::mutex> dl(slot->deliver_mu);
        t.fn();
      }
    } else {
      t.fn();
    }
    PublishShard();
    NoteEvent();
    lock.lock();
  }
}

void TcpTransport::Fail(net::PeerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < failed_.size()) failed_[id] = true;
}

void TcpTransport::Recover(net::PeerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < failed_.size()) failed_[id] = false;
}

bool TcpTransport::IsFailed(net::PeerId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return id < failed_.size() && failed_[id];
}

bool TcpTransport::Idle() const {
  std::lock_guard<std::mutex> lock(timer_mu_);
  return timer_heap_.empty();
}

size_t TcpTransport::Run(double max_time) {
  const uint64_t start_events = events_.load(std::memory_order_relaxed);
  uint64_t last = start_events;
  auto quiet_since = std::chrono::steady_clock::now();
  while (now() < max_time) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    bool timer_due;
    {
      std::lock_guard<std::mutex> lock(timer_mu_);
      timer_due =
          !timer_heap_.empty() && timer_heap_.front().when <= max_time;
    }
    const uint64_t cur = events_.load(std::memory_order_relaxed);
    if (cur != last || timer_due) {
      last = cur;
      quiet_since = std::chrono::steady_clock::now();
      continue;
    }
    const double quiet =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      quiet_since)
            .count();
    if (quiet >= options_.settle_seconds) break;
  }
  return static_cast<size_t>(events_.load(std::memory_order_relaxed) -
                             start_events);
}

void TcpTransport::Shutdown() {
  if (stopping_.exchange(true)) {
    if (timer_thread_.joinable()) timer_thread_.join();
    return;
  }
  // Bounded drain: give in-flight frames a chance to deliver.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(options_.drain_timeout_seconds);
  uint64_t last = events_.load(std::memory_order_relaxed);
  auto quiet_since = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const uint64_t cur = events_.load(std::memory_order_relaxed);
    if (cur != last) {
      last = cur;
      quiet_since = std::chrono::steady_clock::now();
      continue;
    }
    if (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      quiet_since)
            .count() >= options_.settle_seconds) {
      break;
    }
  }

  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    timer_cv_.notify_all();
  }
  if (timer_thread_.joinable()) timer_thread_.join();

  // Shut the sockets down first (unblocks accept/recv and any writer
  // mid-send), then join. Connection fds close only after their writer
  // thread is joined, so a writer never races a closed-and-reused fd.
  std::vector<std::thread> accepters;
  std::vector<std::thread> readers;
  std::vector<std::thread> writers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (PeerSlot& slot : slots_) {
      if (slot.listen_fd >= 0) {
        ::shutdown(slot.listen_fd, SHUT_RDWR);
        ::close(slot.listen_fd);
        slot.listen_fd = -1;
      }
      if (slot.accept_thread.joinable()) {
        accepters.push_back(std::move(slot.accept_thread));
      }
    }
    for (auto& [id, conn] : outbound_) {
      {
        std::lock_guard<std::mutex> cl(conn->mu);
        conn->closed = true;
      }
      conn->has_data.notify_all();
      conn->can_write.notify_all();
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
      if (conn->writer.joinable()) {
        writers.push_back(std::move(conn->writer));
      }
    }
    readers.swap(reader_threads_);
  }
  for (std::thread& t : writers) t.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, conn] : outbound_) {
      if (conn->fd >= 0) {
        ::close(conn->fd);
        conn->fd = -1;
      }
    }
  }
  for (std::thread& t : accepters) t.join();
  // Reader sockets are owned by the readers themselves; shutting down
  // their peers' outbound fds above sent them EOF. Any reader blocked on
  // a half-open connection is unblocked by its own ::recv failing once
  // the process-wide close storm lands; join them all.
  for (std::thread& t : readers) t.join();
}

}  // namespace mqp::runtime

#else  // non-POSIX: stub that reports unavailability

namespace mqp::runtime {

TcpTransport::TcpTransport(TcpOptions options)
    : options_(options), transport_uid_(0), epoch_() {
  ok_.store(false, std::memory_order_relaxed);
}
TcpTransport::~TcpTransport() = default;
net::PeerId TcpTransport::Register(net::PeerNode*) { return net::kNoPeer; }
size_t TcpTransport::size() const { return 0; }
const std::string& TcpTransport::Address(net::PeerId) const {
  static const std::string kNone = "unknown:0";
  return kNone;
}
Result<net::PeerId> TcpTransport::Lookup(std::string_view) const {
  return Status::Unimplemented("TcpTransport requires POSIX sockets");
}
double TcpTransport::now() const { return 0; }
void TcpTransport::Send(net::Message) {}
void TcpTransport::Schedule(double, std::function<void()>) {}
void TcpTransport::ScheduleFor(net::PeerId, double, std::function<void()>) {}
void TcpTransport::Fail(net::PeerId) {}
void TcpTransport::Recover(net::PeerId) {}
bool TcpTransport::IsFailed(net::PeerId) const { return false; }
size_t TcpTransport::Run(double) { return 0; }
bool TcpTransport::Idle() const { return true; }
net::NetStats& TcpTransport::stats() { return merged_; }
const net::NetStats& TcpTransport::stats() const { return merged_; }
void TcpTransport::Shutdown() {}

}  // namespace mqp::runtime

#endif
