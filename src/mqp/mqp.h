// Umbrella header: the full public API of the mqp library.
//
//   #include "mqp/mqp.h"   and link against the `mqp` CMake target.
//
// Module map:
//   common/     Status/Result error model, deterministic RNG, strings
//   xml/        XML DOM (the data-item model) with structural hashing and
//               epoch-cached sizes/hashes, parser, serializer, XPath-lite,
//               and the streaming codec: pull TokenReader / emitting
//               TokenWriter (the wire hot path — no throwaway DOM; see
//               DESIGN.md §5)
//   ns/         multi-hierarchic namespaces: categories (interned to dense
//               PathIds with Euler-tour intervals), interest areas, URNs
//   algebra/    mutant query plans: operators, expressions, XML wire format
//   engine/     the zero-copy query engine (DESIGN.md §6): physical
//               operators over shared immutable items, compiled
//               FieldAccessors, StructuralHash set semantics, the keyed
//               shared-item LocalStore, and the shared top-k machinery
//               (topk_heap: the (key, leaf, idx) total order, bound
//               refs, score-ordered prefix slices — DESIGN.md §10)
//   optimizer/  evaluable-sub-plan detection, cost model, rewrites
//               (including the top-k bound pushdown), policy
//   catalog/    distributed catalogs indexed for sublinear resolution
//               (AreaIndex + binding cache), intensional statements,
//               versioned entries + tombstones + CatalogDelta (dynamic
//               maintenance)
//   net/        discrete-event network simulator (shared-payload
//               messages) sized for million-peer populations (DESIGN.md
//               §7): calendar-queue scheduler (calendar_queue) over a
//               slab/free-list event pool (event_pool), interned message
//               kinds with flat per-kind counters (kind_table), message
//               model split out in message.h; FaultInjector, a seeded
//               deterministic fault-plan decorator over any Transport
//               (content-hashed drop/dup/delay fates, scheduled
//               crash/restart, link flaps — DESIGN.md §9)
//   wire/       framed messaging: envelopes, cached plan serialization,
//               streaming body codecs (plan_codec, body_codec)
//   runtime/    real execution backends behind the net::Transport
//               interface (DESIGN.md §8): ThreadedRuntime (per-peer
//               bounded mailboxes, thread-pool dispatch, barrier-stepped
//               virtual time, sharded stats) and the loopback
//               TcpTransport (length-prefixed frames, wall-clock time)
//   sync/       gossip/anti-entropy catalog maintenance (digests, deltas,
//               TTL expiry) on top of the wire layer
//   peer/       the peer: roles, registration, the Figure-2 MQP loop,
//               the client reliability layer (DESIGN.md §9: deadlines,
//               retries with seeded backoff, suspicion-list failover
//               over binding alternatives, partial-result degradation),
//               and distributed top-k merge sessions (DESIGN.md §10:
//               bounded score-ordered batches, threshold early
//               termination, adaptive windows), plus overload protection
//               (DESIGN.md §11: admission control, priority-aware RED
//               shedding over a virtual service-time model, per-query
//               evaluation budgets, cooperative cancellation)
//   baseline/   Napster / Gnutella / coordinator baselines
//   workload/   garage-sale, CD-market, gene-expression generators, the
//               churn and flash-crowd scenario drivers, and topology
//               builders (garage-sale tree, super-peer hierarchies)
//
// Layering is strictly:
//   common/xml/ns → algebra → net → wire → runtime → sync →
//   peer/baseline → workload
// (runtime/ implements the net/ Transport interface; peers depend only
// on the interface, so any backend slots in.)
#pragma once

#include "algebra/expr.h"
#include "algebra/plan.h"
#include "algebra/plan_xml.h"
#include "algebra/provenance.h"
#include "baseline/central_index.h"
#include "baseline/coordinator.h"
#include "baseline/flooding.h"
#include "catalog/area_index.h"
#include "catalog/catalog.h"
#include "catalog/intension.h"
#include "catalog/versioned.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "engine/field_accessor.h"
#include "engine/local_store.h"
#include "engine/operator.h"
#include "engine/topk_heap.h"
#include "net/calendar_queue.h"
#include "net/event_pool.h"
#include "net/fault_injector.h"
#include "net/kind_table.h"
#include "net/message.h"
#include "net/simulator.h"
#include "ns/category_path.h"
#include "ns/hierarchy.h"
#include "ns/interest.h"
#include "ns/path_interner.h"
#include "ns/urn.h"
#include "optimizer/cost.h"
#include "optimizer/evaluable.h"
#include "optimizer/policy.h"
#include "optimizer/rewrites.h"
#include "peer/peer.h"
#include "peer/verification.h"
#include "query/parser.h"
#include "runtime/tcp_transport.h"
#include "runtime/threaded_runtime.h"
#include "sync/gossip.h"
#include "wire/body_codec.h"
#include "wire/envelope.h"
#include "wire/plan_codec.h"
#include "workload/cd_market.h"
#include "workload/churn.h"
#include "workload/flash_crowd.h"
#include "workload/garage_sale.h"
#include "workload/gene_expression.h"
#include "workload/network_builder.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/token_reader.h"
#include "xml/token_writer.h"
#include "xml/writer.h"
#include "xml/xpath.h"
