#include "wire/plan_codec.h"

#include <chrono>

#include "xml/node.h"

namespace mqp::wire {

SerializedPlan SerializePlanShared(const algebra::Plan& plan,
                                   net::NetStats* stats) {
  if (plan.WireCacheValid()) {
    if (stats != nullptr) ++stats->forwards_without_reserialize;
    return {plan.cached_wire(), /*reused=*/true};
  }
  auto bytes = net::MakePayload(algebra::SerializePlan(plan));
  plan.AttachWireCache(bytes);
  if (stats != nullptr) ++stats->plan_serializations;
  return {std::move(bytes), /*reused=*/false};
}

Result<algebra::Plan> ParsePlanShared(net::Payload bytes,
                                      net::NetStats* stats) {
  if (bytes == nullptr) bytes = net::MakePayload("");
  const uint64_t nodes_before = xml::DomNodesBuilt();
  const auto started = std::chrono::steady_clock::now();
  MQP_ASSIGN_OR_RETURN(auto plan, algebra::ParsePlan(*bytes));
  const auto elapsed = std::chrono::steady_clock::now() - started;
  plan.AttachWireCache(std::move(bytes));
  if (stats != nullptr) {
    ++stats->plan_parses;
    if (algebra::use_streaming_plan_codec()) ++stats->token_decodes;
    stats->dom_nodes_built += xml::DomNodesBuilt() - nodes_before;
    stats->plan_decode_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
  }
  return plan;
}

}  // namespace mqp::wire
