#include "wire/plan_codec.h"

namespace mqp::wire {

SerializedPlan SerializePlanShared(const algebra::Plan& plan,
                                   net::NetStats* stats) {
  if (plan.WireCacheValid()) {
    if (stats != nullptr) ++stats->forwards_without_reserialize;
    return {plan.cached_wire(), /*reused=*/true};
  }
  auto bytes = net::MakePayload(algebra::SerializePlan(plan));
  plan.AttachWireCache(bytes);
  if (stats != nullptr) ++stats->plan_serializations;
  return {std::move(bytes), /*reused=*/false};
}

Result<algebra::Plan> ParsePlanShared(net::Payload bytes,
                                      net::NetStats* stats) {
  if (bytes == nullptr) bytes = net::MakePayload("");
  MQP_ASSIGN_OR_RETURN(auto plan, algebra::ParsePlan(*bytes));
  plan.AttachWireCache(std::move(bytes));
  if (stats != nullptr) ++stats->plan_parses;
  return plan;
}

}  // namespace mqp::wire
