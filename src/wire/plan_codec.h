// Cached plan (de)serialization for the wire layer.
//
// Serialization of the mutant query plan is the per-hop hot path: the
// plan's XML body is the dominant message cost, and a hop that merely
// routes a plan (binds nothing, evaluates nothing) used to re-serialize
// it from scratch. These helpers consult Plan's serialization cache
// (algebra/plan.h): a freshly parsed plan carries the exact buffer it
// arrived in, so forwarding it unchanged reuses that buffer — zero
// serialization work and zero copies. Decoding goes through the
// streaming token codec (algebra/plan_xml.h): no intermediate DOM is
// built, and ParsePlanShared instruments the decode (token_decodes,
// dom_nodes_built via xml::DomNodesBuilt deltas, plan_decode_ns on the
// steady clock). All traffic is counted into NetStats
// (plan_serializations / plan_parses / forwards_without_reserialize /
// token_decodes / dom_nodes_built / plan_decode_ns) so benches and tests
// can observe it.
#pragma once

#include "algebra/plan.h"
#include "algebra/plan_xml.h"
#include "net/transport.h"

namespace mqp::wire {

/// \brief Result of SerializePlanShared: the wire bytes plus whether they
/// came from the cache (no serialization performed).
struct SerializedPlan {
  net::Payload bytes;
  bool reused = false;
};

/// \brief Returns the plan's wire form, serializing only if the plan
/// mutated since its cached bytes were produced (or none are attached).
/// Counts into `stats` when non-null.
SerializedPlan SerializePlanShared(const algebra::Plan& plan,
                                   net::NetStats* stats = nullptr);

/// \brief Parses a plan from shared wire bytes and attaches them as the
/// plan's cached serialization, so forwarding the plan unchanged reuses
/// the incoming buffer. Counts into `stats` when non-null.
Result<algebra::Plan> ParsePlanShared(net::Payload bytes,
                                      net::NetStats* stats = nullptr);

}  // namespace mqp::wire
