// Streaming decoders for small XML message bodies (DESIGN.md §5).
//
// Most non-plan wire messages are one of two shapes: a single element
// whose attributes carry the arguments (fetch, lookup, flood,
// cat-query), or a wrapper element whose children are verbatim data
// items (fetch-reply, subquery-reply, flood-hit). These helpers decode
// both through the token reader, so no handler on the wire path builds a
// throwaway DOM; items — the one structure that *is* modeled as
// xml::Node — are materialized subtree-by-subtree.
#pragma once

#include <string>
#include <string_view>

#include "algebra/histogram.h"
#include "common/result.h"
#include "xml/token_reader.h"

namespace mqp::wire {

/// \brief Decodes the root element of `body`, filling `attrs` (may be
/// null) and skipping the content. Returns the root tag name.
Result<std::string> DecodeAttrBody(std::string_view body,
                                   xml::AttrList* attrs);

/// \brief Decodes a body whose root element wraps verbatim item
/// elements; each element child materializes as one Item. Root
/// attributes and text are ignored.
Result<algebra::ItemSet> DecodeItemBody(std::string_view body);

/// An item-wrapper body together with its root tag and attributes —
/// bounded top-k replies carry the continuation protocol (total, cont,
/// more, next, tbytes) as root attributes around the item payload.
struct ItemBody {
  std::string root;
  xml::AttrList attrs;
  algebra::ItemSet items;
};

/// \brief Like DecodeItemBody, but also returns the root tag and its
/// attributes.
Result<ItemBody> DecodeItemBodyWithAttrs(std::string_view body);

}  // namespace mqp::wire
