#include "wire/envelope.h"

#include <limits>

#include "common/strings.h"

namespace mqp::wire {

namespace {
constexpr char kVersionTag[] = "w1";
}  // namespace

std::string Envelope::EncodeHeader() const {
  std::string h;
  h.reserve(8 + kind.size() + query_id.size());
  h += kVersionTag;
  h += '|';
  h += kind;
  h += '|';
  h += query_id;
  h += '|';
  h += std::to_string(hops);
  h += '\n';
  return h;
}

net::Message Envelope::ToMessage(net::PeerId from, net::PeerId to) const {
  net::Message msg;
  msg.from = from;
  msg.to = to;
  msg.kind = kind;
  // Pre-intern so Transport::Send's per-kind accounting is pure array
  // indexing (the kind vocabulary is tiny; this is a warm hash hit).
  msg.kind_id = net::InternKind(kind);
  msg.header = EncodeHeader();
  msg.payload = payload;
  return msg;
}

Result<Envelope> DecodeEnvelope(const net::Message& msg) {
  Envelope env;
  env.payload = msg.payload;
  if (msg.header.empty()) {
    // Raw (legacy / test) message: kind only, no correlation metadata.
    env.kind = msg.kind;
    return env;
  }
  std::string_view h = msg.header;
  if (!h.empty() && h.back() == '\n') h.remove_suffix(1);
  const size_t p1 = h.find('|');
  if (p1 == std::string_view::npos || h.substr(0, p1) != kVersionTag) {
    return Status::ParseError("bad wire header version");
  }
  const size_t p2 = h.find('|', p1 + 1);
  if (p2 == std::string_view::npos) {
    return Status::ParseError("truncated wire header");
  }
  // The query id is user-influenced (peer names feed it) and may itself
  // contain '|'; kind never does and hops is numeric, so the id is
  // everything between the second and the *last* delimiter.
  const size_t p3 = h.rfind('|');
  if (p3 <= p2) {
    return Status::ParseError("truncated wire header");
  }
  env.kind = std::string(h.substr(p1 + 1, p2 - p1 - 1));
  env.query_id = std::string(h.substr(p2 + 1, p3 - p2 - 1));
  int64_t hops = 0;
  if (!mqp::ParseInt64(h.substr(p3 + 1), &hops) || hops < 0 ||
      hops > static_cast<int64_t>(std::numeric_limits<uint32_t>::max())) {
    return Status::ParseError("bad wire header hop count");
  }
  env.hops = static_cast<uint32_t>(hops);
  return env;
}

void Send(net::Transport* net, net::PeerId from, net::PeerId to,
          Envelope env) {
  net->Send(env.ToMessage(from, to));
}

}  // namespace mqp::wire
