#include "wire/envelope.h"

#include <cmath>
#include <limits>

#include "common/strings.h"

namespace mqp::wire {

namespace {
constexpr char kVersionTag[] = "w1";
constexpr char kVersionTag2[] = "w2";

// The wire carries the deadline as integral milliseconds: fixed point
// keeps encode∘decode an identity (no float-formatting drift between
// backends) while millisecond resolution is far below any link latency.
int64_t DeadlineMs(double deadline) {
  return static_cast<int64_t>(std::llround(deadline * 1000.0));
}
}  // namespace

std::string Envelope::EncodeHeader() const {
  std::string h;
  h.reserve(8 + kind.size() + query_id.size());
  // Fault-free traffic (no deadline, first attempt) keeps the legacy w1
  // bytes — reliability must not change a byte of the steady-state wire.
  const bool extended = deadline != 0 || attempt != 0;
  h += extended ? kVersionTag2 : kVersionTag;
  h += '|';
  h += kind;
  h += '|';
  h += query_id;
  h += '|';
  h += std::to_string(hops);
  if (extended) {
    h += '|';
    h += std::to_string(DeadlineMs(deadline));
    h += '|';
    h += std::to_string(attempt);
  }
  h += '\n';
  return h;
}

net::Message Envelope::ToMessage(net::PeerId from, net::PeerId to) const {
  net::Message msg;
  msg.from = from;
  msg.to = to;
  msg.kind = kind;
  // Pre-intern so Transport::Send's per-kind accounting is pure array
  // indexing (the kind vocabulary is tiny; this is a warm hash hit).
  msg.kind_id = net::InternKind(kind);
  msg.header = EncodeHeader();
  msg.payload = payload;
  return msg;
}

Result<Envelope> DecodeEnvelope(const net::Message& msg) {
  Envelope env;
  env.payload = msg.payload;
  if (msg.header.empty()) {
    // Raw (legacy / test) message: kind only, no correlation metadata.
    env.kind = msg.kind;
    return env;
  }
  std::string_view h = msg.header;
  if (!h.empty() && h.back() == '\n') h.remove_suffix(1);
  const size_t p1 = h.find('|');
  if (p1 == std::string_view::npos) {
    return Status::ParseError("bad wire header version");
  }
  const std::string_view version = h.substr(0, p1);
  const bool extended = version == kVersionTag2;
  if (!extended && version != kVersionTag) {
    return Status::ParseError("bad wire header version");
  }
  const size_t p2 = h.find('|', p1 + 1);
  if (p2 == std::string_view::npos) {
    return Status::ParseError("truncated wire header");
  }
  // The query id is user-influenced (peer names feed it) and may itself
  // contain '|'; kind never does and the trailing fields are numeric, so
  // the id is everything between the second delimiter and the first of
  // the trailing delimiters counted from the right (one for w1's hops,
  // three for w2's hops|deadline-ms|attempt).
  size_t p3 = h.rfind('|');
  if (extended) {
    // Peel attempt and deadline-ms off the right; hops stays at p3.
    const size_t pa = p3;
    if (pa == std::string_view::npos || pa <= p2) {
      return Status::ParseError("truncated wire header");
    }
    const size_t pd = h.rfind('|', pa - 1);
    if (pd == std::string_view::npos || pd <= p2) {
      return Status::ParseError("truncated wire header");
    }
    int64_t attempt = 0;
    int64_t deadline_ms = 0;
    if (!mqp::ParseInt64(h.substr(pa + 1), &attempt) || attempt < 0 ||
        attempt >
            static_cast<int64_t>(std::numeric_limits<uint32_t>::max()) ||
        !mqp::ParseInt64(h.substr(pd + 1, pa - pd - 1), &deadline_ms) ||
        deadline_ms < 0) {
      return Status::ParseError("bad wire header reliability fields");
    }
    env.attempt = static_cast<uint32_t>(attempt);
    env.deadline = static_cast<double>(deadline_ms) / 1000.0;
    p3 = h.rfind('|', pd - 1);
  }
  if (p3 == std::string_view::npos || p3 <= p2) {
    return Status::ParseError("truncated wire header");
  }
  env.kind = std::string(h.substr(p1 + 1, p2 - p1 - 1));
  env.query_id = std::string(h.substr(p2 + 1, p3 - p2 - 1));
  int64_t hops = 0;
  size_t hops_len = extended ? h.find('|', p3 + 1) - (p3 + 1)
                             : std::string_view::npos;
  if (!mqp::ParseInt64(h.substr(p3 + 1, hops_len), &hops) || hops < 0 ||
      hops > static_cast<int64_t>(std::numeric_limits<uint32_t>::max())) {
    return Status::ParseError("bad wire header hop count");
  }
  env.hops = static_cast<uint32_t>(hops);
  return env;
}

void Send(net::Transport* net, net::PeerId from, net::PeerId to,
          Envelope env) {
  net->Send(env.ToMessage(from, to));
}

}  // namespace mqp::wire
