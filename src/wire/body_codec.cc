#include "wire/body_codec.h"

#include <utility>

namespace mqp::wire {

Result<std::string> DecodeAttrBody(std::string_view body,
                                   xml::AttrList* attrs) {
  xml::TokenReader r(body);
  MQP_ASSIGN_OR_RETURN(xml::Token t, r.Next());
  if (t.type != xml::TokenType::kStartElement) {
    return r.Error("expected a root element");
  }
  std::string name(t.name);
  xml::AttrList local;
  MQP_ASSIGN_OR_RETURN(t, r.ReadAttrs(attrs != nullptr ? attrs : &local));
  if (t.type != xml::TokenType::kEndElement) {
    MQP_RETURN_IF_ERROR(r.SkipToElementEnd());
  }
  // Like the DOM path's Parse: exactly one root, no trailing content.
  MQP_ASSIGN_OR_RETURN(t, r.Next());
  if (t.type != xml::TokenType::kEndOfInput) {
    return Status::ParseError("expected exactly one root element, found 2");
  }
  return name;
}

Result<algebra::ItemSet> DecodeItemBody(std::string_view body) {
  MQP_ASSIGN_OR_RETURN(ItemBody decoded, DecodeItemBodyWithAttrs(body));
  return std::move(decoded.items);
}

Result<ItemBody> DecodeItemBodyWithAttrs(std::string_view body) {
  xml::TokenReader r(body);
  MQP_ASSIGN_OR_RETURN(xml::Token t, r.Next());
  if (t.type != xml::TokenType::kStartElement) {
    return r.Error("expected a root element");
  }
  ItemBody out;
  out.root = std::string(t.name);
  MQP_ASSIGN_OR_RETURN(t, r.ReadAttrs(&out.attrs));
  while (t.type != xml::TokenType::kEndElement) {
    if (t.type == xml::TokenType::kStartElement) {
      MQP_ASSIGN_OR_RETURN(auto node, r.MaterializeSubtree());
      out.items.push_back(algebra::Item(node.release()));
    }
    MQP_ASSIGN_OR_RETURN(t, r.Next());
  }
  // Like the DOM path's Parse: exactly one root, no trailing content.
  MQP_ASSIGN_OR_RETURN(t, r.Next());
  if (t.type != xml::TokenType::kEndOfInput) {
    return Status::ParseError("expected exactly one root element, found 2");
  }
  return out;
}

}  // namespace mqp::wire
