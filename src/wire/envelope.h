// Wire layer: framed peer-to-peer messaging on top of net::Transport.
//
// An Envelope is what peers logically exchange: a routing kind, the query
// (or request) id the message belongs to, a hop counter, and an immutable
// shared payload. The first three travel in a compact textual header
// ("w1|kind|query-id|hops\n") prepended on the wire, so receivers read
// routing metadata without parsing the XML body, and intermediate hops
// update hop counts without touching the payload at all. The payload is a
// net::Payload (shared_ptr<const string>): enqueueing, delivering and
// fanning a message out to many destinations never copies the body.
//
// Reliability metadata (PR 8, DESIGN.md §9) travels in an extended "w2"
// header — "w2|kind|query-id|hops|deadline-ms|attempt\n" — emitted only
// when a deadline or retry attempt is set, so fault-free traffic keeps
// the exact w1 bytes it always had. The deadline is an absolute
// transport-clock time in integral milliseconds (fixed point keeps the
// header canonical: encode∘decode is the identity); the attempt counter
// makes each retry a *different* byte string, which matters because
// net::FaultInjector decides fates by content hash.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "net/transport.h"

namespace mqp::wire {

// Message kinds used across peer and baselines. (Formerly defined in
// peer/peer.h; the wire layer owns the vocabulary now.)
inline constexpr char kMqpKind[] = "mqp";
inline constexpr char kResultKind[] = "result";
inline constexpr char kRegisterKind[] = "register";
inline constexpr char kCategoryQueryKind[] = "cat-query";
inline constexpr char kCategoryReplyKind[] = "cat-reply";
inline constexpr char kFetchKind[] = "fetch";
inline constexpr char kFetchReplyKind[] = "fetch-reply";
inline constexpr char kSubqueryKind[] = "subquery";
inline constexpr char kSubqueryReplyKind[] = "subquery-reply";
inline constexpr char kLookupKind[] = "lookup";
inline constexpr char kLookupReplyKind[] = "lookup-reply";
inline constexpr char kFloodKind[] = "flood";
inline constexpr char kFloodHitKind[] = "flood-hit";
// Catalog maintenance (sync/gossip.h): version-vector digests and the
// record deltas they pull.
inline constexpr char kSyncDigestKind[] = "sync-digest";
inline constexpr char kSyncDeltaKind[] = "sync-delta";
// Cooperative cancellation (DESIGN.md §11): fanned out by the client once
// a query completes, times out, or is shed, so remote peers reap pending
// work (open top-k merge sessions, queued plans) instead of running it to
// natural death. Body is empty; the query id is the whole message.
inline constexpr char kCancelKind[] = "cancel";

/// \brief One wire-layer message: routing metadata + shared body.
struct Envelope {
  std::string kind;      ///< routing tag; must not contain '|' or '\n'
  /// Query/request correlation id ("" = none). May contain '|' (peer
  /// names feed into it); the decoder delimits it by the last '|'.
  std::string query_id;
  /// Hop budget or hop count, interpretation per kind: MQPs count hops
  /// *up* from 0; floods count the remaining horizon *down*.
  uint32_t hops = 0;
  net::Payload payload;  ///< immutable shared body (null = empty)
  /// Absolute deadline on the transport clock, in seconds (0 = none).
  /// Carried on the wire in integral milliseconds; forwarding peers stop
  /// routing and deliver what they have once now() passes it.
  double deadline = 0;
  /// Client retry attempt this message belongs to (0 = first try).
  uint32_t attempt = 0;

  /// The body ("" when payload is null).
  const std::string& body() const {
    static const std::string kEmpty;
    return payload ? *payload : kEmpty;
  }

  /// The compact framing header, including its trailing delimiter.
  std::string EncodeHeader() const;

  /// Total bytes this envelope occupies on the wire (header + body).
  size_t WireSize() const { return EncodeHeader().size() + body().size(); }

  /// Frames the envelope into a simulator message. The payload pointer is
  /// shared, not copied.
  net::Message ToMessage(net::PeerId from, net::PeerId to) const;
};

/// \brief Recovers the envelope from a delivered message. Raw messages
/// (no wire header) decode with the message's kind, an empty query id and
/// zero hops, so legacy senders and test probes remain deliverable.
/// Errors only on a present-but-malformed header.
Result<Envelope> DecodeEnvelope(const net::Message& msg);

/// \brief Frames and sends: the one call sites use instead of
/// Transport::Send. Size accounting (header + body) stays centralized in
/// each transport's Send.
void Send(net::Transport* net, net::PeerId from, net::PeerId to,
          Envelope env);

}  // namespace mqp::wire
