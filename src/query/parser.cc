#include "query/parser.h"

#include <cctype>
#include <optional>

#include "common/strings.h"
#include "ns/urn.h"

namespace mqp::query {

namespace {

using algebra::CompareOp;
using algebra::Expr;
using algebra::ExprPtr;
using algebra::PlanNode;
using algebra::PlanNodePtr;

enum class TokenType {
  kKeyword,  // normalized to lowercase
  kIdent,    // field path or urn
  kNumber,
  kString,
  kSymbol,  // ( ) , = != < <= > >= *
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  size_t offset = 0;
};

bool IsKeyword(const std::string& lower) {
  static const char* const kWords[] = {
      "select", "from",  "join",  "on",    "where", "group", "by",
      "order",  "limit", "asc",   "desc",  "and",   "or",    "not",
      "within", "exists", "count", "sum",   "min",   "max",   "avg",
      "area"};
  for (const char* w : kWords) {
    if (lower == w) return true;
  }
  return false;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == '/' || c == ':' || c == '-' || c == '@' ||
         c == '[' || c == ']';
}

class Lexer {
 public:
  explicit Lexer(std::string_view in) : in_(in) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      if (pos_ >= in_.size()) break;
      const size_t start = pos_;
      const char c = in_[pos_];
      if (c == '\'' || c == '"') {
        ++pos_;
        std::string value;
        while (pos_ < in_.size() && in_[pos_] != c) {
          value.push_back(in_[pos_++]);
        }
        if (pos_ >= in_.size()) {
          return Status::ParseError("unterminated string literal at offset " +
                                    std::to_string(start));
        }
        ++pos_;
        out.push_back({TokenType::kString, std::move(value), start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && pos_ + 1 < in_.size() &&
           std::isdigit(static_cast<unsigned char>(in_[pos_ + 1])))) {
        ++pos_;
        while (pos_ < in_.size() &&
               (std::isdigit(static_cast<unsigned char>(in_[pos_])) ||
                in_[pos_] == '.')) {
          ++pos_;
        }
        out.push_back({TokenType::kNumber,
                       std::string(in_.substr(start, pos_ - start)), start});
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        while (pos_ < in_.size() && IsIdentChar(in_[pos_])) ++pos_;
        std::string word(in_.substr(start, pos_ - start));
        std::string lower = word;
        for (char& ch : lower) {
          ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
        }
        // URNs and paths containing ':' or '/' are always identifiers.
        if (word.find(':') == std::string::npos &&
            word.find('/') == std::string::npos && IsKeyword(lower)) {
          out.push_back({TokenType::kKeyword, std::move(lower), start});
        } else {
          out.push_back({TokenType::kIdent, std::move(word), start});
        }
        continue;
      }
      // Symbols.
      if (c == '!' || c == '<' || c == '>') {
        std::string sym(1, c);
        ++pos_;
        if (pos_ < in_.size() && in_[pos_] == '=') {
          sym.push_back('=');
          ++pos_;
        }
        if (sym == "!") {
          return Status::ParseError("stray '!' at offset " +
                                    std::to_string(start));
        }
        out.push_back({TokenType::kSymbol, std::move(sym), start});
        continue;
      }
      if (c == '(' || c == ')' || c == ',' || c == '=' || c == '*') {
        ++pos_;
        out.push_back({TokenType::kSymbol, std::string(1, c), start});
        continue;
      }
      return Status::ParseError("unexpected character '" + std::string(1, c) +
                                "' at offset " + std::to_string(start));
    }
    out.push_back({TokenType::kEnd, "", in_.size()});
    return out;
  }

 private:
  void SkipSpace() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view in_;
  size_t pos_ = 0;
};

struct SelectItem {
  bool star = false;
  std::string field;
};

struct AggSpec {
  algebra::AggFunc func = algebra::AggFunc::kCount;
  std::string field;  // empty for count(*)
};

class ParserImpl {
 public:
  explicit ParserImpl(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<algebra::Plan> ParseQuery() {
    MQP_RETURN_IF_ERROR(ExpectKeyword("select"));
    MQP_RETURN_IF_ERROR(ParseSelectList());
    MQP_RETURN_IF_ERROR(ExpectKeyword("from"));
    MQP_ASSIGN_OR_RETURN(PlanNodePtr root, ParseFromClause());

    if (AcceptKeyword("where")) {
      MQP_ASSIGN_OR_RETURN(ExprPtr pred, ParseDisjunction());
      root = PlanNode::Select(std::move(pred), std::move(root));
    }
    std::string group_by;
    if (AcceptKeyword("group")) {
      MQP_RETURN_IF_ERROR(ExpectKeyword("by"));
      MQP_ASSIGN_OR_RETURN(group_by, ExpectIdent());
    }
    if (agg_) {
      root = PlanNode::Aggregate(agg_->func, agg_->field, group_by,
                                 std::move(root));
    } else if (!group_by.empty()) {
      return Status::ParseError("GROUP BY requires an aggregate select");
    }
    std::string order_field;
    bool ascending = true;
    if (AcceptKeyword("order")) {
      MQP_RETURN_IF_ERROR(ExpectKeyword("by"));
      MQP_ASSIGN_OR_RETURN(order_field, ExpectIdent());
      if (AcceptKeyword("desc")) {
        ascending = false;
      } else {
        (void)AcceptKeyword("asc");
      }
    }
    uint64_t limit = 0;
    bool has_limit = false;
    if (AcceptKeyword("limit")) {
      const Token& t = Peek();
      if (t.type != TokenType::kNumber) {
        return Err("LIMIT expects a number");
      }
      int64_t n = 0;
      if (!mqp::ParseInt64(t.text, &n) || n < 0) {
        return Err("bad LIMIT value");
      }
      limit = static_cast<uint64_t>(n);
      has_limit = true;
      Advance();
    }
    if (!order_field.empty() || has_limit) {
      if (order_field.empty()) {
        return Err("LIMIT requires ORDER BY (results are otherwise unordered)");
      }
      root = PlanNode::TopN(has_limit ? std::optional<uint64_t>(limit)
                                      : std::nullopt,
                            order_field, ascending, std::move(root));
    }
    // Projection applies last — above TopN — so ordering on a
    // non-projected field still works.
    if (!select_fields_.empty() && !agg_) {
      root = PlanNode::Project(select_fields_, std::move(root));
    }
    if (Peek().type != TokenType::kEnd) {
      return Err("unexpected trailing input '" + Peek().text + "'");
    }
    return algebra::Plan(std::move(root));
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  Status Err(std::string msg) const {
    return Status::ParseError(msg + " (at offset " +
                              std::to_string(Peek().offset) + ")");
  }

  bool AcceptKeyword(const char* kw) {
    if (Peek().type == TokenType::kKeyword && Peek().text == kw) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Err("expected '" + std::string(kw) + "'");
    }
    return Status::OK();
  }
  bool AcceptSymbol(const char* sym) {
    if (Peek().type == TokenType::kSymbol && Peek().text == sym) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const char* sym) {
    if (!AcceptSymbol(sym)) {
      return Err("expected '" + std::string(sym) + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (Peek().type != TokenType::kIdent) {
      return Err("expected an identifier");
    }
    std::string out = Peek().text;
    Advance();
    return out;
  }

  Status ParseSelectList() {
    if (AcceptSymbol("*")) return Status::OK();
    // Aggregate?
    if (Peek().type == TokenType::kKeyword) {
      const std::string& kw = Peek().text;
      algebra::AggFunc func;
      if (kw == "count") {
        func = algebra::AggFunc::kCount;
      } else if (kw == "sum") {
        func = algebra::AggFunc::kSum;
      } else if (kw == "min") {
        func = algebra::AggFunc::kMin;
      } else if (kw == "max") {
        func = algebra::AggFunc::kMax;
      } else if (kw == "avg") {
        func = algebra::AggFunc::kAvg;
      } else {
        return Err("expected field list, '*' or an aggregate");
      }
      Advance();
      MQP_RETURN_IF_ERROR(ExpectSymbol("("));
      AggSpec spec;
      spec.func = func;
      if (AcceptSymbol("*")) {
        if (func != algebra::AggFunc::kCount) {
          return Err("only COUNT accepts '*'");
        }
      } else {
        MQP_ASSIGN_OR_RETURN(spec.field, ExpectIdent());
      }
      MQP_RETURN_IF_ERROR(ExpectSymbol(")"));
      agg_ = spec;
      return Status::OK();
    }
    // Field list.
    while (true) {
      MQP_ASSIGN_OR_RETURN(auto field, ExpectIdent());
      select_fields_.push_back(std::move(field));
      if (!AcceptSymbol(",")) break;
    }
    return Status::OK();
  }

  Result<PlanNodePtr> ParseSource() {
    if (AcceptKeyword("area")) {
      MQP_RETURN_IF_ERROR(ExpectSymbol("("));
      if (Peek().type != TokenType::kString) {
        return Err("area(...) expects a quoted interest area");
      }
      MQP_ASSIGN_OR_RETURN(auto area,
                           ns::InterestArea::Parse(Peek().text));
      Advance();
      MQP_RETURN_IF_ERROR(ExpectSymbol(")"));
      return PlanNode::UrnRef(ns::AreaToUrn(area).ToString());
    }
    MQP_ASSIGN_OR_RETURN(auto name, ExpectIdent());
    if (!mqp::StartsWith(name, "urn:")) {
      return Err("FROM expects a urn:... or area(\"...\") source");
    }
    return PlanNode::UrnRef(std::move(name));
  }

  Result<PlanNodePtr> ParseFromClause() {
    MQP_ASSIGN_OR_RETURN(PlanNodePtr root, ParseSource());
    while (AcceptKeyword("join")) {
      MQP_ASSIGN_OR_RETURN(PlanNodePtr right, ParseSource());
      MQP_RETURN_IF_ERROR(ExpectKeyword("on"));
      MQP_ASSIGN_OR_RETURN(auto left_field, ExpectIdent());
      MQP_RETURN_IF_ERROR(ExpectSymbol("="));
      MQP_ASSIGN_OR_RETURN(auto right_field, ExpectIdent());
      root = PlanNode::Join(algebra::JoinEq(left_field, right_field),
                            std::move(root), std::move(right));
    }
    return root;
  }

  Result<ExprPtr> ParseDisjunction() {
    MQP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseConjunction());
    while (AcceptKeyword("or")) {
      MQP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseConjunction());
      lhs = Expr::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseConjunction() {
    MQP_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePredicate());
    while (AcceptKeyword("and")) {
      MQP_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePredicate());
      lhs = Expr::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParsePredicate() {
    if (AcceptKeyword("not")) {
      MQP_ASSIGN_OR_RETURN(ExprPtr inner, ParsePredicate());
      return Expr::Not(std::move(inner));
    }
    if (AcceptSymbol("(")) {
      MQP_ASSIGN_OR_RETURN(ExprPtr inner, ParseDisjunction());
      MQP_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    if (AcceptKeyword("exists")) {
      MQP_RETURN_IF_ERROR(ExpectSymbol("("));
      MQP_ASSIGN_OR_RETURN(auto field, ExpectIdent());
      MQP_RETURN_IF_ERROR(ExpectSymbol(")"));
      return Expr::Exists(std::move(field));
    }
    MQP_ASSIGN_OR_RETURN(auto field, ExpectIdent());
    if (AcceptKeyword("within")) {
      if (Peek().type != TokenType::kString &&
          Peek().type != TokenType::kIdent) {
        return Err("WITHIN expects a category path");
      }
      std::string path = Peek().text;
      Advance();
      return Expr::Compare(CompareOp::kHasPrefix,
                           Expr::Field(std::move(field)),
                           Expr::Literal(std::move(path)));
    }
    if (Peek().type != TokenType::kSymbol) {
      return Err("expected a comparison operator");
    }
    const std::string sym = Peek().text;
    CompareOp op;
    if (sym == "=") {
      op = CompareOp::kEq;
    } else if (sym == "!=") {
      op = CompareOp::kNe;
    } else if (sym == "<") {
      op = CompareOp::kLt;
    } else if (sym == "<=") {
      op = CompareOp::kLe;
    } else if (sym == ">") {
      op = CompareOp::kGt;
    } else if (sym == ">=") {
      op = CompareOp::kGe;
    } else {
      return Err("unknown comparison '" + sym + "'");
    }
    Advance();
    const Token& lit = Peek();
    if (lit.type != TokenType::kNumber && lit.type != TokenType::kString &&
        lit.type != TokenType::kIdent) {
      return Err("expected a literal");
    }
    std::string value = lit.text;
    Advance();
    return Expr::Compare(op, Expr::Field(std::move(field)),
                         Expr::Literal(std::move(value)));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::vector<std::string> select_fields_;
  std::optional<AggSpec> agg_;
};

}  // namespace

Result<algebra::Plan> Parse(std::string_view text) {
  Lexer lexer(text);
  MQP_ASSIGN_OR_RETURN(auto tokens, lexer.Tokenize());
  ParserImpl parser(std::move(tokens));
  return parser.ParseQuery();
}

}  // namespace mqp::query
