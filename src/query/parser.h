// A small declarative query language compiled to mutant query plans.
//
// The paper's motivation (§1): "allow users to query [exported views]
// using a full-featured query language" rather than IR-style string
// matching. This front-end covers the algebra the paper uses:
//
//   SELECT *                         | field[, field...] | AGG(field | *)
//   FROM   urn:NID:NSS               | area("(USA.OR,Music)")
//     [JOIN urn:... ON field = field]...
//   [WHERE predicate]
//   [GROUP BY field]
//   [ORDER BY field [ASC|DESC]]
//   [LIMIT n]
//
// predicates:  field OP literal        OP ∈ { = != < <= > >= }
//              field WITHIN "USA/OR"   (category-path containment)
//              EXISTS(field)
//              NOT p | p AND p | p OR p | (p)
// literals:    123, 9.99, 'text', "text"
// aggregates:  COUNT, SUM, MIN, MAX, AVG
//
// Keywords are case-insensitive; field names are XPath-lite paths.
//
// Example:
//   auto plan = query::Parse(
//       "select title, price from urn:ForSale:Portland-CDs "
//       "where price < 10 order by price limit 5");
#pragma once

#include <string_view>

#include "algebra/plan.h"
#include "common/result.h"

namespace mqp::query {

/// \brief Compiles `text` into a plan (no display node; Peer::SubmitQuery
/// adds the target).
Result<algebra::Plan> Parse(std::string_view text);

}  // namespace mqp::query
