#include "common/status.h"

namespace mqp {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnresolved:
      return "Unresolved";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kPolicyViolation:
      return "PolicyViolation";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace mqp
