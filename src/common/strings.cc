#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace mqp {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitSkipEmpty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& piece : Split(s, sep)) {
    if (!piece.empty()) out.push_back(std::move(piece));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ReplaceAll(std::string s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return s;
  std::string out;
  out.reserve(s.size());
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(from, start);
    if (pos == std::string::npos) {
      out.append(s, start, std::string::npos);
      break;
    }
    out.append(s, start, pos - start);
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

namespace {

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

}  // namespace

bool ParseInt64(std::string_view s, int64_t* out) {
  // from_chars: no temporary buffer, no locale — these run per numeric
  // attribute on the wire decode path. A leading '+' is accepted for
  // strtoll compatibility (from_chars alone rejects it), but only before
  // a digit so "+-5" stays invalid.
  s = Trim(s);
  if (s.size() >= 2 && s.front() == '+' && IsDigit(s[1])) {
    s.remove_prefix(1);
  }
  if (s.empty()) return false;
  int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.size() >= 2 && s.front() == '+' && (IsDigit(s[1]) || s[1] == '.')) {
    s.remove_prefix(1);
  }
  if (s.empty()) return false;
  double v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  *out = v;
  return true;
}

int CompareNumericAware(std::string_view a, std::string_view b) {
  double da, db;
  if (ParseDouble(a, &da) && ParseDouble(b, &db)) {
    if (da < db) return -1;
    if (da > db) return 1;
    return 0;
  }
  return a.compare(b);
}

std::string FormatDouble(double d) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", d);
  return buf;
}

}  // namespace mqp
