#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace mqp {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitSkipEmpty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& piece : Split(s, sep)) {
    if (!piece.empty()) out.push_back(std::move(piece));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ReplaceAll(std::string s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return s;
  std::string out;
  out.reserve(s.size());
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(from, start);
    if (pos == std::string::npos) {
      out.append(s, start, std::string::npos);
      break;
    }
    out.append(s, start, pos - start);
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string FormatDouble(double d) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", d);
  return buf;
}

}  // namespace mqp
