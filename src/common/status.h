// Status: lightweight error model used throughout the mqp library.
//
// Follows the Arrow/RocksDB idiom: library functions that can fail return
// Status (or Result<T>, see result.h) instead of throwing exceptions.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace mqp {

/// Error category carried by a non-ok Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< caller passed something malformed
  kParseError = 2,        ///< malformed XML / URN / plan text
  kNotFound = 3,          ///< resource, category, or URN unknown
  kUnresolved = 4,        ///< a URN/URL could not be resolved here
  kUnavailable = 5,       ///< peer or link down
  kTimeout = 6,           ///< query time budget exhausted
  kPolicyViolation = 7,   ///< routing/security policy forbids the action
  kInternal = 8,          ///< invariant violation inside the library
  kNotImplemented = 9,
};

/// \brief Human-readable name of a StatusCode (e.g. "ParseError").
std::string_view StatusCodeToString(StatusCode code);

/// \brief Success-or-error result of an operation.
///
/// A Status is cheap to copy in the OK case (no allocation). Error states
/// carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unresolved(std::string msg) {
    return Status(StatusCode::kUnresolved, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status PolicyViolation(std::string msg) {
    return Status(StatusCode::kPolicyViolation, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller.
#define MQP_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::mqp::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                    \
  } while (false)

}  // namespace mqp
