#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace mqp {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  s_[0] = SplitMix64(&sm);
  s_[1] = SplitMix64(&sm);
  if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;  // xorshift must not be all-zero
}

uint64_t Rng::Next() {
  uint64_t x = s_[0];
  const uint64_t y = s_[1];
  s_[0] = y;
  x ^= x << 23;
  s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s_[1] + y;
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - (UINT64_MAX % n);
  uint64_t r;
  do {
    r = Next();
  } while (r >= limit);
  return r % n;
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

uint64_t Rng::NextZipf(uint64_t n, double s) {
  assert(n > 0);
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_cdf_.resize(n);
    double sum = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = sum;
    }
    for (uint64_t i = 0; i < n; ++i) zipf_cdf_[i] /= sum;
    zipf_n_ = n;
    zipf_s_ = s;
  }
  const double u = NextDouble();
  // Binary search for the first CDF entry >= u.
  size_t lo = 0, hi = zipf_cdf_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (zipf_cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < zipf_cdf_.size() ? lo : zipf_cdf_.size() - 1;
}

std::string Rng::NextWord(int len) {
  std::string w;
  w.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    w.push_back(static_cast<char>('a' + NextBelow(26)));
  }
  return w;
}

}  // namespace mqp
