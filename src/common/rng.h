// Deterministic random number generation for workloads, tests and benches.
//
// All randomness in the library flows through Rng so that every experiment
// is reproducible from a seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mqp {

/// \brief Deterministic 64-bit PRNG (splitmix64 seeded xorshift128+).
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Uniform in [0, 2^64).
  uint64_t Next();

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability p of true.
  bool NextBool(double p = 0.5);

  /// Zipfian rank in [0, n) with skew parameter s (s=0 degenerates to
  /// uniform). Uses the classic rejection-free inverse-CDF over the
  /// generalized harmonic numbers (precomputed per distinct (n, s)).
  uint64_t NextZipf(uint64_t n, double s);

  /// Random lowercase identifier of `len` characters.
  std::string NextWord(int len);

  /// Shuffles `v` in place (Fisher-Yates).
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Picks a uniformly random element. Precondition: !v.empty().
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[NextBelow(v.size())];
  }

 private:
  uint64_t s_[2];
  // Cache for the Zipf CDF of the most recent (n, s) pair.
  uint64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace mqp
