// Result<T>: value-or-Status, the return type of fallible producers.
#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace mqp {

/// \brief Holds either a T (success) or a non-OK Status (failure).
///
/// Mirrors arrow::Result. Constructing a Result from an OK Status is a
/// programming error and is converted to an Internal error.
template <typename T>
class Result {
 public:
  /// Implicit conversion from a value (success).
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit conversion from an error Status.
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    if (std::get<Status>(state_).ok()) {
      state_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(state_);
  }

  /// Precondition: ok().
  T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns value() if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> state_;
};

/// Assigns the unwrapped value of a Result expression to `lhs`, or returns
/// its Status on failure. `lhs` may be a declaration.
#define MQP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define MQP_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define MQP_ASSIGN_OR_RETURN_CONCAT(x, y) MQP_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define MQP_ASSIGN_OR_RETURN(lhs, rexpr) \
  MQP_ASSIGN_OR_RETURN_IMPL(             \
      MQP_ASSIGN_OR_RETURN_CONCAT(_mqp_result_, __LINE__), lhs, rexpr)

}  // namespace mqp
