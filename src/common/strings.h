// Small string utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mqp {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on `sep`, dropping empty pieces.
std::vector<std::string> SplitSkipEmpty(std::string_view s, char sep);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-sensitive replacement of every occurrence of `from` with `to`.
std::string ReplaceAll(std::string s, std::string_view from,
                       std::string_view to);

/// Parses a decimal integer; returns false on garbage or overflow.
bool ParseInt64(std::string_view s, int64_t* out);

/// Parses a decimal floating-point number; returns false on garbage.
bool ParseDouble(std::string_view s, double* out);

/// <0, 0, >0 like strcmp: numeric comparison when both sides parse as
/// numbers, else lexicographic. The single ordering shared by XPath
/// predicates, expression Values and engine sort keys — they must agree
/// byte for byte.
int CompareNumericAware(std::string_view a, std::string_view b);

/// Formats a double without trailing zero noise ("10", "9.99").
std::string FormatDouble(double d);

}  // namespace mqp
