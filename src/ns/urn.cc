#include "ns/urn.h"

#include <cctype>

#include "common/strings.h"

namespace mqp::ns {

namespace {
bool IEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}
}  // namespace

Result<Urn> Urn::Parse(std::string_view text) {
  text = mqp::Trim(text);
  if (text.size() < 4 || !IEquals(text.substr(0, 4), "urn:")) {
    return Status::ParseError("URN must start with 'urn:': '" +
                              std::string(text) + "'");
  }
  std::string_view rest = text.substr(4);
  const size_t colon = rest.find(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= rest.size()) {
    return Status::ParseError("URN must be 'urn:<nid>:<nss>': '" +
                              std::string(text) + "'");
  }
  return Urn(std::string(rest.substr(0, colon)),
             std::string(rest.substr(colon + 1)));
}

Result<InterestArea> Urn::ToInterestArea() const {
  if (!IsInterestArea()) {
    return Status::InvalidArgument("URN namespace is '" + nid_ +
                                   "', not InterestArea");
  }
  return InterestArea::Parse(nss_);
}

std::string Urn::ToString() const { return "urn:" + nid_ + ":" + nss_; }

Urn AreaToUrn(const InterestArea& area) {
  return Urn(std::string(kInterestAreaNid), area.ToString());
}

}  // namespace mqp::ns
