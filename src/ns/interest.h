// InterestCell / InterestArea: the coverage algebra of §3.1.
//
// A cell is the cross product of one category per dimension; an area is a
// set of cells. "Cell x covers cell y" iff for every dimension x's category
// is an ancestor-or-same of y's. "Area a covers area b" iff every cell of b
// is covered by some cell of a. Two areas overlap iff some cell is covered
// by both.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "ns/category_path.h"

namespace mqp::ns {

/// \brief One interest cell: a coordinate tuple, one CategoryPath per
/// dimension (in namespace dimension order).
class InterestCell {
 public:
  InterestCell() = default;
  explicit InterestCell(std::vector<CategoryPath> coords)
      : coords_(std::move(coords)) {}

  /// Parses "(USA.OR.Portland,Furniture)" or "USA/OR/Portland,Furniture".
  /// Both dotted and slashed segment separators are accepted.
  static Result<InterestCell> Parse(std::string_view text);

  const std::vector<CategoryPath>& coords() const { return coords_; }
  size_t dimension_count() const { return coords_.size(); }
  const CategoryPath& coord(size_t dim) const { return coords_[dim]; }

  /// True if every coordinate is top ("[*, *, ...]").
  bool IsTop() const;

  /// Cell coverage: per-dimension ancestor-or-same. Both cells must have
  /// the same dimensionality; mismatched cells never cover each other.
  bool Covers(const InterestCell& other) const;

  /// True iff the extents intersect: per-dimension the two paths are
  /// comparable (one a prefix of the other).
  bool Overlaps(const InterestCell& other) const;

  /// Intersection cell: per-dimension the deeper of the two paths.
  /// Error if the cells do not overlap.
  Result<InterestCell> Intersect(const InterestCell& other) const;

  /// Sum of coordinate depths; deeper cells are more specific.
  size_t Specificity() const;

  /// "(USA.OR.Portland,Furniture)" — dotted URN form.
  std::string ToString() const;

  bool operator==(const InterestCell& other) const {
    return coords_ == other.coords_;
  }
  bool operator!=(const InterestCell& other) const {
    return !(*this == other);
  }
  bool operator<(const InterestCell& other) const {
    return coords_ < other.coords_;
  }

 private:
  std::vector<CategoryPath> coords_;
};

/// \brief A set of interest cells describing what a peer serves, indexes,
/// or queries (paper Figure 5 areas (a) and (b)).
class InterestArea {
 public:
  InterestArea() = default;
  explicit InterestArea(std::vector<InterestCell> cells)
      : cells_(std::move(cells)) {}

  /// Single-cell convenience.
  explicit InterestArea(InterestCell cell) { cells_.push_back(std::move(cell)); }

  /// Parses "(USA.OR.Portland,Furniture)+(USA.WA.Vancouver,Furniture)".
  static Result<InterestArea> Parse(std::string_view text);

  const std::vector<InterestCell>& cells() const { return cells_; }
  bool empty() const { return cells_.empty(); }
  size_t size() const { return cells_.size(); }

  void AddCell(InterestCell cell) { cells_.push_back(std::move(cell)); }

  /// Area coverage (paper definition): every cell of `other` is covered by
  /// some cell of this area. The empty area covers only the empty area.
  bool Covers(const InterestArea& other) const;

  /// True iff some cell of this area overlaps some cell of `other`.
  bool Overlaps(const InterestArea& other) const;

  /// All pairwise cell intersections, normalized.
  InterestArea Intersect(const InterestArea& other) const;

  /// Union of the two areas' cells, normalized.
  InterestArea Union(const InterestArea& other) const;

  /// Removes cells covered by other cells in the same area and duplicate
  /// cells; sorts for canonical form.
  InterestArea Normalized() const;

  /// Maximum cell specificity — 0 for the all-covering area; larger for
  /// narrower areas. Used to prefer more specific servers among equals.
  size_t Specificity() const;

  /// "(c1)+(c2)+..." — dotted URN form; "" for the empty area.
  std::string ToString() const;

  bool operator==(const InterestArea& other) const {
    return cells_ == other.cells_;
  }

 private:
  std::vector<InterestCell> cells_;
};

/// \brief Convenience builder: MakeCell({"USA/OR/Portland", "Music/CDs"}).
/// Dies on parse failure — intended for tests, examples and generators
/// with literal inputs.
InterestCell MakeCell(const std::vector<std::string>& coords);

/// \brief Convenience builder for a one-cell area.
InterestArea MakeArea(const std::vector<std::string>& coords);

}  // namespace mqp::ns
