#include "ns/path_interner.h"

namespace mqp::ns {

PathInterner::PathInterner() {
  nodes_.emplace_back();  // top: id 0, depth 0, empty path
}

PathId PathInterner::Intern(const CategoryPath& path) {
  PathId cur = kTopId;
  for (const auto& seg : path.segments()) {
    auto it = nodes_[cur].children.find(seg);
    if (it == nodes_[cur].children.end()) {
      const PathId child = static_cast<PathId>(nodes_.size());
      Node node;
      node.parent = cur;
      node.path = nodes_[cur].path.Child(seg);
      nodes_[cur].children.emplace(seg, child);
      nodes_.push_back(std::move(node));
      ++version_;
      cur = child;
    } else {
      cur = it->second;
    }
  }
  return cur;
}

PathId PathInterner::Lookup(const CategoryPath& path) const {
  PathId cur = kTopId;
  for (const auto& seg : path.segments()) {
    auto it = nodes_[cur].children.find(seg);
    if (it == nodes_[cur].children.end()) return kNoPathId;
    cur = it->second;
  }
  return cur;
}

PathId PathInterner::DeepestKnownPrefix(const CategoryPath& path,
                                        bool* exact) const {
  PathId cur = kTopId;
  bool all_known = true;
  for (const auto& seg : path.segments()) {
    auto it = nodes_[cur].children.find(seg);
    if (it == nodes_[cur].children.end()) {
      all_known = false;
      break;
    }
    cur = it->second;
  }
  if (exact != nullptr) *exact = all_known;
  return cur;
}

std::vector<PathId> PathInterner::ChildrenOf(PathId id) const {
  std::vector<PathId> out;
  out.reserve(nodes_[id].children.size());
  for (const auto& [label, child] : nodes_[id].children) {
    (void)label;
    out.push_back(child);
  }
  return out;
}

void PathInterner::EnsureIntervals() const {
  if (interval_version_ == version_) return;
  // Iterative preorder walk; enter = preorder number, exit = one past the
  // subtree's last preorder number, so subtree(a) == ids with enter in
  // [enter(a), exit(a)).
  uint32_t counter = 0;
  // Stack of (node, next-child iterator).
  std::vector<std::pair<PathId, std::map<std::string, PathId>::const_iterator>>
      stack;
  nodes_[kTopId].enter = counter++;
  stack.emplace_back(kTopId, nodes_[kTopId].children.begin());
  while (!stack.empty()) {
    auto& [id, it] = stack.back();
    if (it == nodes_[id].children.end()) {
      nodes_[id].exit = counter;
      stack.pop_back();
      continue;
    }
    const PathId child = (it++)->second;
    nodes_[child].enter = counter++;
    stack.emplace_back(child, nodes_[child].children.begin());
  }
  interval_version_ = version_;
}

PathInterner::Interval PathInterner::IntervalOf(PathId id) const {
  EnsureIntervals();
  return {nodes_[id].enter, nodes_[id].exit};
}

bool PathInterner::IsAncestorOrSame(PathId ancestor, PathId descendant) const {
  EnsureIntervals();
  return nodes_[ancestor].enter <= nodes_[descendant].enter &&
         nodes_[descendant].enter < nodes_[ancestor].exit;
}

void PathInterner::Warm() const {
  EnsureIntervals();
  for (const Node& node : nodes_) {
    // Touch both canonical forms; CategoryPath caches them in mutable
    // members on first use.
    (void)node.path.ToString();
    (void)node.path.ToUrnString();
  }
}

bool PathInterner::Comparable(PathId a, PathId b) const {
  EnsureIntervals();
  return (nodes_[a].enter <= nodes_[b].enter &&
          nodes_[b].enter < nodes_[a].exit) ||
         (nodes_[b].enter <= nodes_[a].enter &&
          nodes_[a].enter < nodes_[b].exit);
}

}  // namespace mqp::ns
