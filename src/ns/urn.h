// URN handling (paper §2, §3.4).
//
// MQP leaves may reference abstract resources by URN. Two kinds appear in
// the paper:
//   * named URNs, e.g. "urn:ForSale:Portland-CDs" — resolved via local
//     catalog mappings;
//   * interest-area URNs, e.g.
//     "urn:InterestArea:(USA.OR.Portland,Furniture)+(USA.WA.Vancouver,
//     Furniture)" — the namespace-specific string is a *structured* encoding
//     of an interest area (§3.4), routed via the distributed catalog.
#pragma once

#include <string>
#include <string_view>

#include "common/result.h"
#include "ns/interest.h"

namespace mqp::ns {

/// Namespace identifier used for interest-area URNs.
inline constexpr std::string_view kInterestAreaNid = "InterestArea";

/// \brief A parsed URN: "urn:<nid>:<nss>".
class Urn {
 public:
  Urn() = default;
  Urn(std::string nid, std::string nss)
      : nid_(std::move(nid)), nss_(std::move(nss)) {}

  /// Parses "urn:NID:NSS". The scheme prefix is case-insensitive.
  static Result<Urn> Parse(std::string_view text);

  const std::string& nid() const { return nid_; }
  const std::string& nss() const { return nss_; }

  /// True if this is an interest-area URN.
  bool IsInterestArea() const { return nid_ == kInterestAreaNid; }

  /// Decodes the namespace-specific string as an interest area.
  /// Error if this is not an interest-area URN or the encoding is bad.
  Result<InterestArea> ToInterestArea() const;

  /// "urn:NID:NSS".
  std::string ToString() const;

  bool operator==(const Urn& other) const {
    return nid_ == other.nid_ && nss_ == other.nss_;
  }
  bool operator<(const Urn& other) const {
    return nid_ != other.nid_ ? nid_ < other.nid_ : nss_ < other.nss_;
  }

 private:
  std::string nid_;
  std::string nss_;
};

/// \brief Encodes an interest area as a URN (purely lexical transliteration,
/// §3.4).
Urn AreaToUrn(const InterestArea& area);

}  // namespace mqp::ns
