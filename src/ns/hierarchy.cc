#include "ns/hierarchy.h"

namespace mqp::ns {

Status Hierarchy::AddPath(std::string_view text) {
  MQP_ASSIGN_OR_RETURN(auto path, CategoryPath::Parse(text));
  Add(path);
  return Status::OK();
}

std::vector<CategoryPath> Hierarchy::ChildrenOf(
    const CategoryPath& path) const {
  std::vector<CategoryPath> out;
  const PathId id = interner_.Lookup(path);
  if (id == kNoPathId) return out;
  for (PathId child : interner_.ChildrenOf(id)) {
    out.push_back(interner_.PathOf(child));
  }
  return out;
}

void Hierarchy::Collect(PathId id, bool leaves_only,
                        std::vector<CategoryPath>* out) const {
  if (!leaves_only || interner_.IsLeaf(id)) {
    out->push_back(interner_.PathOf(id));
  }
  for (PathId child : interner_.ChildrenOf(id)) {
    Collect(child, leaves_only, out);
  }
}

std::vector<CategoryPath> Hierarchy::AllCategories() const {
  std::vector<CategoryPath> out;
  Collect(PathInterner::kTopId, /*leaves_only=*/false, &out);
  return out;
}

std::vector<CategoryPath> Hierarchy::Leaves() const {
  std::vector<CategoryPath> out;
  Collect(PathInterner::kTopId, /*leaves_only=*/true, &out);
  return out;
}

size_t MultiHierarchy::AddDimension(std::string name) {
  dims_.push_back(std::make_unique<Hierarchy>(std::move(name)));
  return dims_.size() - 1;
}

uint64_t MultiHierarchy::version() const {
  // Every dimension starts at version 1 and each Add bumps it, so the sum
  // grows on both "new dimension" and "new category".
  uint64_t v = 0;
  for (const auto& dim : dims_) v += dim->version();
  return v;
}

Result<size_t> MultiHierarchy::DimensionIndex(std::string_view name) const {
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i]->name() == name) return i;
  }
  return Status::NotFound("no dimension named '" + std::string(name) + "'");
}

Status MultiHierarchy::Validate(
    const std::vector<CategoryPath>& coords) const {
  if (coords.size() != dims_.size()) {
    return Status::InvalidArgument(
        "coordinate tuple has " + std::to_string(coords.size()) +
        " entries; namespace has " + std::to_string(dims_.size()) +
        " dimensions");
  }
  for (size_t i = 0; i < coords.size(); ++i) {
    if (!dims_[i]->Contains(coords[i])) {
      return Status::NotFound("unknown category '" + coords[i].ToString() +
                              "' in dimension '" + dims_[i]->name() + "'");
    }
  }
  return Status::OK();
}

MultiHierarchy MakeGarageSaleNamespace() {
  MultiHierarchy ns;
  const size_t loc = ns.AddDimension("Location");
  Hierarchy& location = ns.dimension(loc);
  for (const char* p :
       {"USA/OR/Portland", "USA/OR/Eugene", "USA/OR/Salem",
        "USA/WA/Vancouver", "USA/WA/Seattle", "USA/WA/Spokane",
        "USA/CA/SanFrancisco", "USA/CA/LosAngeles", "USA/CA/Sacramento",
        "France/IDF/Paris", "France/PACA/Marseille"}) {
    (void)location.AddPath(p);
  }
  const size_t mer = ns.AddDimension("Merchandise");
  Hierarchy& merch = ns.dimension(mer);
  for (const char* p :
       {"Furniture/Tables", "Furniture/Chairs", "Furniture/Sofas",
        "Electronics/TV", "Electronics/VCR", "Electronics/Audio",
        "Music/CDs", "Music/Vinyl", "Music/Instruments",
        "SportingGoods/GolfClubs", "SportingGoods/Bicycles",
        "SportingGoods/Skis", "Clothing/Shoes", "Clothing/Coats",
        "Books/Fiction", "Books/Technical"}) {
    (void)merch.AddPath(p);
  }
  return ns;
}

MultiHierarchy MakeGeneExpressionNamespace() {
  MultiHierarchy ns;
  const size_t org = ns.AddDimension("Organism");
  Hierarchy& organism = ns.dimension(org);
  // The Figure-1 taxonomy: Coelomata splits into Protostomia (fruit fly)
  // and Deuterostomia -> Mammalia -> Eutheria -> {Primates, Rodentia}.
  for (const char* p :
       {"Coelomata/Protostomia/DrosophilaMelanogaster",
        "Coelomata/Deuterostomia/Mammalia/Eutheria/Primates/HomoSapiens",
        "Coelomata/Deuterostomia/Mammalia/Eutheria/Rodentia/Murinae/Mus/"
        "MusMusculus",
        "Coelomata/Deuterostomia/Mammalia/Eutheria/Rodentia/Murinae/"
        "RattusNorvegicus"}) {
    (void)organism.AddPath(p);
  }
  const size_t ct = ns.AddDimension("CellType");
  Hierarchy& cell = ns.dimension(ct);
  for (const char* p :
       {"Neural/Neurons/Sensory", "Neural/Neurons/Motor",
        "Neural/Neurons/Association", "Neural/Glial",
        "Connective/Bone/Osteoblasts", "Connective/Bone/Osteoclasts",
        "Connective/Adipose", "Muscle/Cardiac/Autorhythmic",
        "Muscle/Cardiac/Contractile", "Muscle/Smooth", "Muscle/Skeletal",
        "Epithelial/Cilliated", "Epithelial/Secretory"}) {
    (void)cell.AddPath(p);
  }
  return ns;
}

}  // namespace mqp::ns
