// PathInterner: dense integer ids + Euler-tour intervals for CategoryPaths.
//
// Catalog resolution (§3.4 coverage search) reduces to ancestor tests
// between category paths. Comparing paths segment-by-segment makes every
// Overlaps/Covers probe O(depth) string comparisons; interning each path
// into a dense PathId with a precomputed Euler-tour interval makes
// IsAncestorOrSame two integer comparisons:
//
//   a is an ancestor-or-same of b  ⇔  enter(a) <= enter(b) < exit(a)
//
// Intervals are assigned by a preorder walk and rebuilt lazily after node
// creation (the structure is build-mostly: categories are added far less
// often than they are compared). Each node also caches the canonical
// slash/dotted strings of its path, so wire and gossip encoding of a
// known category never re-joins segments.
//
// Thread safety (DESIGN.md §8): an interner is peer-confined — each
// catalog/area index owns its own, mutated and probed only inside that
// peer's serialized handlers. The const probes are NOT safe to share
// across threads by themselves, because EnsureIntervals() and the
// CategoryPath string caches fill mutable state lazily. A hierarchy (or
// interner) that is deliberately shared read-only across peers — e.g. a
// namespace handed to every peer at build time — must be warmed while
// still single-threaded via Warm() / Hierarchy::Warm(); after that every
// const member is a pure read.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ns/category_path.h"

namespace mqp::ns {

/// Dense category id within one PathInterner. Ids are stable for the
/// interner's lifetime; intervals are not (they shift when nodes are
/// added), so never persist an Interval across an Intern call.
using PathId = uint32_t;
inline constexpr PathId kNoPathId = static_cast<PathId>(-1);

/// \brief A growable trie of category paths with Euler-interval ancestry.
class PathInterner {
 public:
  static constexpr PathId kTopId = 0;  ///< the "*" category, always present

  PathInterner();

  /// Interns `path` (creating any missing nodes) and returns its id.
  PathId Intern(const CategoryPath& path);

  /// Id of `path` without creating nodes; kNoPathId when unknown.
  PathId Lookup(const CategoryPath& path) const;

  /// Id of the deepest known prefix of `path` (kTopId at worst). Sets
  /// `*exact` to whether the whole path is known, when non-null.
  PathId DeepestKnownPrefix(const CategoryPath& path,
                            bool* exact = nullptr) const;

  PathId ParentOf(PathId id) const { return nodes_[id].parent; }

  /// The interned canonical path (its ToString/ToUrnString caches are
  /// warm after the first use).
  const CategoryPath& PathOf(PathId id) const { return nodes_[id].path; }

  /// Immediate children ids in label order.
  std::vector<PathId> ChildrenOf(PathId id) const;
  bool IsLeaf(PathId id) const { return nodes_[id].children.empty(); }

  size_t size() const { return nodes_.size(); }

  /// Bumps on every node creation; callers caching intervals or derived
  /// structures key their validity off this.
  uint64_t version() const { return version_; }

  /// Half-open preorder interval [enter, exit) of the subtree under a node.
  struct Interval {
    uint32_t enter = 0;
    uint32_t exit = 0;
  };
  Interval IntervalOf(PathId id) const;

  /// Ancestor-or-same in two integer comparisons.
  bool IsAncestorOrSame(PathId ancestor, PathId descendant) const;

  /// One path a prefix of the other (extents intersect).
  bool Comparable(PathId a, PathId b) const;

  /// Pre-fills every lazy cache — the Euler intervals and each interned
  /// path's canonical slash/URN strings — so a subsequently *immutable*
  /// interner can be probed from many threads without hidden writes.
  /// Call while still single-threaded (see the header notes).
  void Warm() const;

 private:
  struct Node {
    PathId parent = kNoPathId;
    std::map<std::string, PathId> children;  // ordered: deterministic DFS
    CategoryPath path;
    mutable uint32_t enter = 0;
    mutable uint32_t exit = 0;
  };

  /// Rebuilds the preorder intervals when nodes were added since the
  /// last walk. O(nodes); amortized away on build-mostly workloads.
  void EnsureIntervals() const;

  std::vector<Node> nodes_;
  uint64_t version_ = 1;
  mutable uint64_t interval_version_ = 0;  // version at the last rebuild
};

}  // namespace mqp::ns
