// CategoryPath: a (possibly empty) path in one categorization hierarchy.
//
// The empty path is the all-inclusive "top" category, written "*"
// (paper §3.1). "USA/OR/Portland" is a city-level category whose parents
// are "USA/OR" and "USA".
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace mqp::ns {

/// \brief A path of category labels within one dimension.
class CategoryPath {
 public:
  /// The top ("*") category.
  CategoryPath() = default;

  explicit CategoryPath(std::vector<std::string> segments)
      : segments_(std::move(segments)) {}

  /// Parses "USA/OR/Portland" (slash form) or "USA.OR.Portland" (dotted URN
  /// form). "*" or "" parse to the top category. Empty segments are errors.
  static Result<CategoryPath> Parse(std::string_view text);

  /// True for the all-inclusive top category.
  bool IsTop() const { return segments_.empty(); }

  size_t depth() const { return segments_.size(); }
  const std::vector<std::string>& segments() const { return segments_; }

  /// The final (most specific) label; precondition: !IsTop().
  const std::string& leaf() const { return segments_.back(); }

  /// Parent category; top's parent is top.
  CategoryPath Parent() const;

  /// Extends this path with one more label.
  CategoryPath Child(std::string label) const;

  /// True if this category is an ancestor of, or equal to, `other` —
  /// i.e. this path is a prefix of `other`. Top is an ancestor of all.
  bool IsAncestorOrSame(const CategoryPath& other) const;

  /// True if one path is a prefix of the other (the categories are on one
  /// root-to-leaf line, so their extents intersect).
  bool Comparable(const CategoryPath& other) const {
    return IsAncestorOrSame(other) || other.IsAncestorOrSame(*this);
  }

  /// "USA/OR/Portland", or "*" for top. The canonical string is built
  /// once and cached (paths are immutable), so repeated wire/gossip
  /// encoding of catalog entries never re-joins segments. Temporaries
  /// get a copy instead of a reference into a dying object.
  const std::string& ToString() const&;
  std::string ToString() const&& { return ToString(); }

  /// Dotted URN form: "USA.OR.Portland", or "*" for top. Cached likewise.
  const std::string& ToUrnString() const&;
  std::string ToUrnString() const&& { return ToUrnString(); }

  bool operator==(const CategoryPath& other) const {
    return segments_ == other.segments_;
  }
  bool operator!=(const CategoryPath& other) const {
    return !(*this == other);
  }
  /// Lexicographic order (for use in ordered containers).
  bool operator<(const CategoryPath& other) const {
    return segments_ < other.segments_;
  }

 private:
  std::vector<std::string> segments_;
  // Lazily-built canonical forms; empty means "not built yet" (top's
  // canonical form is "*", never the empty string). Excluded from
  // comparison; copied along with the path, which keeps the cache warm
  // through Intersect/Parent/assignment chains.
  mutable std::string slash_form_;
  mutable std::string urn_form_;
};

}  // namespace mqp::ns
