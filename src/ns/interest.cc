#include "ns/interest.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace mqp::ns {

Result<InterestCell> InterestCell::Parse(std::string_view text) {
  text = mqp::Trim(text);
  if (!text.empty() && text.front() == '(') {
    if (text.back() != ')') {
      return Status::ParseError("unbalanced parentheses in cell '" +
                                std::string(text) + "'");
    }
    text = text.substr(1, text.size() - 2);
  }
  if (mqp::Trim(text).empty()) {
    return Status::ParseError("empty interest cell");
  }
  std::vector<CategoryPath> coords;
  for (auto& part : mqp::Split(text, ',')) {
    MQP_ASSIGN_OR_RETURN(auto path, CategoryPath::Parse(part));
    coords.push_back(std::move(path));
  }
  return InterestCell(std::move(coords));
}

bool InterestCell::IsTop() const {
  for (const auto& c : coords_) {
    if (!c.IsTop()) return false;
  }
  return true;
}

bool InterestCell::Covers(const InterestCell& other) const {
  if (coords_.size() != other.coords_.size()) return false;
  for (size_t i = 0; i < coords_.size(); ++i) {
    if (!coords_[i].IsAncestorOrSame(other.coords_[i])) return false;
  }
  return true;
}

bool InterestCell::Overlaps(const InterestCell& other) const {
  if (coords_.size() != other.coords_.size()) return false;
  for (size_t i = 0; i < coords_.size(); ++i) {
    if (!coords_[i].Comparable(other.coords_[i])) return false;
  }
  return true;
}

Result<InterestCell> InterestCell::Intersect(
    const InterestCell& other) const {
  // One pass: per dimension the shallower path must be a prefix of the
  // deeper one (the overlap test), and the deeper one *is* the
  // intersection coordinate — no separate Overlaps walk.
  std::vector<CategoryPath> coords;
  if (coords_.size() == other.coords_.size()) {
    coords.reserve(coords_.size());
    for (size_t i = 0; i < coords_.size(); ++i) {
      const bool mine_deeper = coords_[i].depth() >= other.coords_[i].depth();
      const CategoryPath& deeper = mine_deeper ? coords_[i] : other.coords_[i];
      const CategoryPath& shallower =
          mine_deeper ? other.coords_[i] : coords_[i];
      if (!shallower.IsAncestorOrSame(deeper)) {
        coords.clear();
        break;
      }
      coords.push_back(deeper);
    }
    if (coords.size() == coords_.size() && !coords_.empty()) {
      return InterestCell(std::move(coords));
    }
    if (coords_.empty()) return InterestCell();  // both zero-dimensional
  }
  return Status::InvalidArgument("cells " + ToString() + " and " +
                                 other.ToString() + " do not overlap");
}

size_t InterestCell::Specificity() const {
  size_t n = 0;
  for (const auto& c : coords_) n += c.depth();
  return n;
}

std::string InterestCell::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < coords_.size(); ++i) {
    if (i > 0) out += ',';
    out += coords_[i].ToUrnString();
  }
  out += ')';
  return out;
}

Result<InterestArea> InterestArea::Parse(std::string_view text) {
  text = mqp::Trim(text);
  InterestArea area;
  if (text.empty()) return area;
  for (auto& part : mqp::Split(text, '+')) {
    MQP_ASSIGN_OR_RETURN(auto cell, InterestCell::Parse(part));
    area.AddCell(std::move(cell));
  }
  return area;
}

bool InterestArea::Covers(const InterestArea& other) const {
  for (const auto& oc : other.cells_) {
    bool covered = false;
    for (const auto& c : cells_) {
      if (c.Covers(oc)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

bool InterestArea::Overlaps(const InterestArea& other) const {
  for (const auto& c : cells_) {
    for (const auto& oc : other.cells_) {
      if (c.Overlaps(oc)) return true;
    }
  }
  return false;
}

InterestArea InterestArea::Intersect(const InterestArea& other) const {
  InterestArea out;
  for (const auto& c : cells_) {
    for (const auto& oc : other.cells_) {
      auto inter = c.Intersect(oc);
      if (inter.ok()) out.AddCell(std::move(inter).value());
    }
  }
  return out.Normalized();
}

InterestArea InterestArea::Union(const InterestArea& other) const {
  InterestArea out = *this;
  for (const auto& oc : other.cells_) out.AddCell(oc);
  return out.Normalized();
}

InterestArea InterestArea::Normalized() const {
  std::vector<InterestCell> kept;
  for (size_t i = 0; i < cells_.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < cells_.size(); ++j) {
      if (i == j) continue;
      if (cells_[j].Covers(cells_[i])) {
        // Strictly covered, or equal with a lower index (dedup).
        if (!cells_[i].Covers(cells_[j]) || j < i) {
          dominated = true;
          break;
        }
      }
    }
    if (!dominated) kept.push_back(cells_[i]);
  }
  std::sort(kept.begin(), kept.end());
  return InterestArea(std::move(kept));
}

size_t InterestArea::Specificity() const {
  size_t max = 0;
  for (const auto& c : cells_) {
    max = std::max(max, c.Specificity());
  }
  return max;
}

std::string InterestArea::ToString() const {
  std::string out;
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (i > 0) out += '+';
    out += cells_[i].ToString();
  }
  return out;
}

InterestCell MakeCell(const std::vector<std::string>& coords) {
  std::vector<CategoryPath> paths;
  for (const auto& c : coords) {
    auto p = CategoryPath::Parse(c);
    if (!p.ok()) {
      std::fprintf(stderr, "MakeCell: bad category path '%s': %s\n",
                   c.c_str(), p.status().ToString().c_str());
      std::abort();
    }
    paths.push_back(std::move(p).value());
  }
  return InterestCell(std::move(paths));
}

InterestArea MakeArea(const std::vector<std::string>& coords) {
  return InterestArea(MakeCell(coords));
}

}  // namespace mqp::ns
