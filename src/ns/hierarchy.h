// Hierarchy: one categorization dimension (a rooted tree of categories).
// MultiHierarchy: the multi-hierarchic namespace — an ordered list of
// dimensions (paper §3.1). Category servers (§3.5) serve Hierarchy data.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "ns/category_path.h"

namespace mqp::ns {

/// \brief A named categorization hierarchy (dimension), e.g. "Location".
///
/// Stores the category tree explicitly so category servers can answer
/// structural queries ("what are the immediate subcategories of
/// Furniture?") and validate/approximate paths (§3.5).
class Hierarchy {
 public:
  explicit Hierarchy(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds `path` and all of its ancestors. Top always exists.
  void Add(const CategoryPath& path);

  /// Convenience: Add(Parse(text)); ignores parse errors in release use,
  /// returns them for checking.
  Status AddPath(std::string_view text);

  /// True if `path` is a known category (top is always known).
  bool Contains(const CategoryPath& path) const;

  /// Immediate subcategories of `path` (empty if unknown/leaf).
  std::vector<CategoryPath> ChildrenOf(const CategoryPath& path) const;

  /// All categories, top first, in depth-first order.
  std::vector<CategoryPath> AllCategories() const;

  /// Categories with no children.
  std::vector<CategoryPath> Leaves() const;

  /// Deepest known prefix of `path` (paper §3.5: a reference to an unknown
  /// node can be approximated by an ancestor, losing precision but not
  /// recall). Returns top if nothing matches.
  CategoryPath Approximate(const CategoryPath& path) const;

  size_t size() const { return nodes_; }

 private:
  struct TreeNode {
    std::map<std::string, std::unique_ptr<TreeNode>> children;
  };

  const TreeNode* Find(const CategoryPath& path) const;

  void Collect(const TreeNode& node, CategoryPath prefix, bool leaves_only,
               std::vector<CategoryPath>* out) const;

  std::string name_;
  TreeNode root_;
  size_t nodes_ = 1;  // counting top
};

/// \brief The multi-hierarchic namespace: an ordered set of dimensions.
///
/// Interest cells/areas are expressed as one CategoryPath per dimension,
/// in this object's dimension order.
class MultiHierarchy {
 public:
  /// Adds a dimension; returns its index.
  size_t AddDimension(std::string name);

  size_t dimension_count() const { return dims_.size(); }

  const Hierarchy& dimension(size_t i) const { return *dims_[i]; }
  Hierarchy& dimension(size_t i) { return *dims_[i]; }

  /// Index of the dimension named `name`, or error.
  Result<size_t> DimensionIndex(std::string_view name) const;

  /// Validates that each coordinate of the tuple is a known category.
  Status Validate(const std::vector<CategoryPath>& coords) const;

 private:
  std::vector<std::unique_ptr<Hierarchy>> dims_;
};

/// \brief Builds the two-dimensional garage-sale namespace used throughout
/// the paper (Location country/state/city × Merchandise categories,
/// Figure 5).
MultiHierarchy MakeGarageSaleNamespace();

/// \brief Builds the Figure-1 gene-expression namespace
/// (Organism taxonomy × CellType hierarchy).
MultiHierarchy MakeGeneExpressionNamespace();

}  // namespace mqp::ns
