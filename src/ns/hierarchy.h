// Hierarchy: one categorization dimension (a rooted tree of categories).
// MultiHierarchy: the multi-hierarchic namespace — an ordered list of
// dimensions (paper §3.1). Category servers (§3.5) serve Hierarchy data.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "ns/category_path.h"
#include "ns/path_interner.h"

namespace mqp::ns {

/// \brief A named categorization hierarchy (dimension), e.g. "Location".
///
/// Stores the category tree explicitly so category servers can answer
/// structural queries ("what are the immediate subcategories of
/// Furniture?") and validate/approximate paths (§3.5). The tree is a
/// PathInterner, so every known category has a dense PathId and an
/// Euler-tour interval: ancestor tests against the hierarchy are integer
/// comparisons, not per-segment string walks.
class Hierarchy {
 public:
  explicit Hierarchy(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds `path` and all of its ancestors. Top always exists.
  void Add(const CategoryPath& path) { interner_.Intern(path); }

  /// Convenience: Add(Parse(text)); ignores parse errors in release use,
  /// returns them for checking.
  Status AddPath(std::string_view text);

  /// True if `path` is a known category (top is always known).
  bool Contains(const CategoryPath& path) const {
    return interner_.Lookup(path) != kNoPathId;
  }

  /// Immediate subcategories of `path` (empty if unknown/leaf).
  std::vector<CategoryPath> ChildrenOf(const CategoryPath& path) const;

  /// All categories, top first, in depth-first order.
  std::vector<CategoryPath> AllCategories() const;

  /// Categories with no children.
  std::vector<CategoryPath> Leaves() const;

  /// Deepest known prefix of `path` (paper §3.5: a reference to an unknown
  /// node can be approximated by an ancestor, losing precision but not
  /// recall). Returns top if nothing matches.
  CategoryPath Approximate(const CategoryPath& path) const {
    return interner_.PathOf(interner_.DeepestKnownPrefix(path));
  }

  size_t size() const { return interner_.size(); }

  /// Bumps whenever a category is added; derived caches (e.g. the
  /// catalog's binding cache) key their validity off this.
  uint64_t version() const { return interner_.version(); }

  /// The interned id space backing this hierarchy.
  const PathInterner& interner() const { return interner_; }

  /// Pre-fills the interner's lazy caches so a hierarchy shared read-only
  /// across peers can be probed from many threads (DESIGN.md §8). Call
  /// while still single-threaded, after the last Add.
  void Warm() const { interner_.Warm(); }

 private:
  void Collect(PathId id, bool leaves_only,
               std::vector<CategoryPath>* out) const;

  std::string name_;
  PathInterner interner_;
};

/// \brief The multi-hierarchic namespace: an ordered set of dimensions.
///
/// Interest cells/areas are expressed as one CategoryPath per dimension,
/// in this object's dimension order.
class MultiHierarchy {
 public:
  /// Adds a dimension; returns its index.
  size_t AddDimension(std::string name);

  size_t dimension_count() const { return dims_.size(); }

  const Hierarchy& dimension(size_t i) const { return *dims_[i]; }
  Hierarchy& dimension(size_t i) { return *dims_[i]; }

  /// Index of the dimension named `name`, or error.
  Result<size_t> DimensionIndex(std::string_view name) const;

  /// Validates that each coordinate of the tuple is a known category.
  Status Validate(const std::vector<CategoryPath>& coords) const;

  /// Monotonic: grows whenever any dimension gains a category or a
  /// dimension is added.
  uint64_t version() const;

  /// Warms every dimension (see Hierarchy::Warm).
  void Warm() const {
    for (const auto& d : dims_) d->Warm();
  }

 private:
  std::vector<std::unique_ptr<Hierarchy>> dims_;
};

/// \brief Builds the two-dimensional garage-sale namespace used throughout
/// the paper (Location country/state/city × Merchandise categories,
/// Figure 5).
MultiHierarchy MakeGarageSaleNamespace();

/// \brief Builds the Figure-1 gene-expression namespace
/// (Organism taxonomy × CellType hierarchy).
MultiHierarchy MakeGeneExpressionNamespace();

}  // namespace mqp::ns
