#include "ns/category_path.h"

#include "common/strings.h"

namespace mqp::ns {

Result<CategoryPath> CategoryPath::Parse(std::string_view text) {
  text = mqp::Trim(text);
  if (text.empty() || text == "*") return CategoryPath();
  const char sep = text.find('/') != std::string_view::npos ? '/' : '.';
  std::vector<std::string> segs;
  for (auto& s : mqp::Split(text, sep)) {
    std::string seg(mqp::Trim(s));
    if (seg.empty()) {
      return Status::ParseError("empty segment in category path '" +
                                std::string(text) + "'");
    }
    segs.push_back(std::move(seg));
  }
  return CategoryPath(std::move(segs));
}

CategoryPath CategoryPath::Parent() const {
  if (IsTop()) return CategoryPath();
  std::vector<std::string> segs(segments_.begin(), segments_.end() - 1);
  return CategoryPath(std::move(segs));
}

CategoryPath CategoryPath::Child(std::string label) const {
  std::vector<std::string> segs = segments_;
  segs.push_back(std::move(label));
  return CategoryPath(std::move(segs));
}

bool CategoryPath::IsAncestorOrSame(const CategoryPath& other) const {
  if (segments_.size() > other.segments_.size()) return false;
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i] != other.segments_[i]) return false;
  }
  return true;
}

const std::string& CategoryPath::ToString() const& {
  if (slash_form_.empty()) {
    slash_form_ = IsTop() ? "*" : mqp::Join(segments_, "/");
  }
  return slash_form_;
}

const std::string& CategoryPath::ToUrnString() const& {
  if (urn_form_.empty()) {
    urn_form_ = IsTop() ? "*" : mqp::Join(segments_, ".");
  }
  return urn_form_;
}

}  // namespace mqp::ns
