// Provenance: the visit history an MQP carries with it (paper §5.1).
//
// Each server that touches the plan appends an entry recording what it did
// (provided bindings, provided data, re-optimized, evaluated a
// sub-expression, or merely forwarded) and when. Provenance supports answer
// quality judgment, reward systems, meta-index updating and spoofing
// detection.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/node.h"

namespace mqp::xml {
class TokenReader;
class TokenWriter;
}  // namespace mqp::xml

namespace mqp::algebra {

/// What a server did to the MQP during one visit.
enum class ProvenanceAction {
  kForwarded,    ///< routed onward without modification
  kBound,        ///< resolved URN(s) to URLs / alternatives
  kProvidedData, ///< substituted a URL with its data
  kReoptimized,  ///< rewrote the plan
  kEvaluated,    ///< reduced a sub-plan to constant data
  kSpoofed,      ///< test hook: recorded a deliberately false entry
  kShed,         ///< refused under overload; plan returned unevaluated
};

std::string_view ProvenanceActionName(ProvenanceAction a);
Result<ProvenanceAction> ProvenanceActionFromName(std::string_view name);

/// \brief One visit record.
struct ProvenanceEntry {
  std::string server;       ///< visited server's address/name
  double time = 0;          ///< simulation time of the visit (seconds)
  ProvenanceAction action = ProvenanceAction::kForwarded;
  std::string detail;       ///< e.g. which URN was bound
  int staleness_minutes = 0;  ///< currency of the information used

  bool operator==(const ProvenanceEntry& other) const = default;
};

/// \brief The full visit history of an MQP.
class Provenance {
 public:
  void Add(ProvenanceEntry entry) { entries_.push_back(std::move(entry)); }

  const std::vector<ProvenanceEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  /// True iff some entry names `server`.
  bool Visited(std::string_view server) const;

  /// Number of server-to-server transfers recorded (consecutive entries at
  /// the same server count as one visit).
  size_t HopCount() const;

  /// Number of distinct servers visited.
  size_t DistinctServers() const;

  /// Maximum staleness over all entries — a bound on the currency of the
  /// final answer (§5.1 "judging the quality of an answer").
  int MaxStalenessMinutes() const;

  /// Serializes as a <provenance> element.
  std::unique_ptr<xml::Node> ToXml() const;

  /// Parses a <provenance> element.
  static Result<Provenance> FromXml(const xml::Node& node);

  /// Streaming twin of ToXml: emits the same bytes without building a DOM.
  void EmitTokens(xml::TokenWriter* w) const;

  /// Streaming twin of FromXml. Precondition: current token is the
  /// <provenance> kStartElement; returns with its kEndElement consumed.
  static Result<Provenance> FromTokens(xml::TokenReader* r);

  bool operator==(const Provenance& other) const = default;

 private:
  std::vector<ProvenanceEntry> entries_;
};

}  // namespace mqp::algebra
