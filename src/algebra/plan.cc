#include "algebra/plan.h"

#include <atomic>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"

namespace mqp::algebra {

uint64_t PlanNode::NextStamp() {
  // Process-global, monotonic: a stamp value is never reused, so address
  // reuse after node destruction cannot make a mutated graph fingerprint
  // like its predecessor.
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

Item MakeItem(const xml::Node& node) {
  return Item(node.Clone().release());
}

std::string_view OpTypeName(OpType t) {
  switch (t) {
    case OpType::kXmlData:
      return "data";
    case OpType::kUrl:
      return "url";
    case OpType::kUrn:
      return "urn";
    case OpType::kSelect:
      return "select";
    case OpType::kProject:
      return "project";
    case OpType::kJoin:
      return "join";
    case OpType::kLeftOuterJoin:
      return "leftouterjoin";
    case OpType::kUnion:
      return "union";
    case OpType::kOr:
      return "or";
    case OpType::kDifference:
      return "difference";
    case OpType::kAggregate:
      return "aggregate";
    case OpType::kTopN:
      return "topn";
    case OpType::kDisplay:
      return "display";
  }
  return "?";
}

std::string_view AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
  }
  return "count";
}

Result<AggFunc> AggFuncFromName(std::string_view name) {
  if (name == "count") return AggFunc::kCount;
  if (name == "sum") return AggFunc::kSum;
  if (name == "min") return AggFunc::kMin;
  if (name == "max") return AggFunc::kMax;
  if (name == "avg") return AggFunc::kAvg;
  return Status::ParseError("unknown aggregate function '" +
                            std::string(name) + "'");
}

PlanNodePtr PlanNode::New(OpType type) {
  // Local class: inherits this member function's access to the private
  // constructor, letting make_shared fuse the node and its control block
  // into one allocation.
  struct Mk : PlanNode {
    explicit Mk(OpType t) : PlanNode(t) {}
  };
  return std::make_shared<Mk>(type);
}

PlanNodePtr PlanNode::XmlData(ItemSet items) {
  auto n = New(OpType::kXmlData);
  n->items_ = std::move(items);
  return n;
}

PlanNodePtr PlanNode::Url(std::string url, std::string xpath) {
  auto n = New(OpType::kUrl);
  n->str_ = std::move(url);
  n->str2_ = std::move(xpath);
  return n;
}

PlanNodePtr PlanNode::UrnRef(std::string urn, std::string hint) {
  auto n = New(OpType::kUrn);
  n->str_ = std::move(urn);
  n->str2_ = std::move(hint);
  return n;
}

PlanNodePtr PlanNode::Select(ExprPtr predicate, PlanNodePtr input) {
  auto n = New(OpType::kSelect);
  n->expr_ = std::move(predicate);
  n->children_ = {std::move(input)};
  return n;
}

PlanNodePtr PlanNode::Project(std::vector<std::string> fields,
                              PlanNodePtr input) {
  auto n = New(OpType::kProject);
  n->fields_ = std::move(fields);
  n->children_ = {std::move(input)};
  return n;
}

PlanNodePtr PlanNode::Join(ExprPtr condition, PlanNodePtr left,
                           PlanNodePtr right) {
  auto n = New(OpType::kJoin);
  n->expr_ = std::move(condition);
  n->children_ = {std::move(left), std::move(right)};
  return n;
}

PlanNodePtr PlanNode::LeftOuterJoin(ExprPtr condition, PlanNodePtr left,
                                    PlanNodePtr right) {
  auto n = New(OpType::kLeftOuterJoin);
  n->expr_ = std::move(condition);
  n->children_ = {std::move(left), std::move(right)};
  return n;
}

PlanNodePtr PlanNode::Union(std::vector<PlanNodePtr> inputs,
                            bool distinct) {
  auto n = New(OpType::kUnion);
  n->children_ = std::move(inputs);
  n->distinct_ = distinct;
  return n;
}

PlanNodePtr PlanNode::Or(std::vector<PlanNodePtr> alternatives) {
  auto n = New(OpType::kOr);
  n->children_ = std::move(alternatives);
  return n;
}

PlanNodePtr PlanNode::Difference(PlanNodePtr left, PlanNodePtr right) {
  auto n = New(OpType::kDifference);
  n->children_ = {std::move(left), std::move(right)};
  return n;
}

PlanNodePtr PlanNode::Aggregate(AggFunc func, std::string field,
                                std::string group_by, PlanNodePtr input) {
  auto n = New(OpType::kAggregate);
  n->agg_func_ = func;
  n->str_ = std::move(field);
  n->str2_ = std::move(group_by);
  n->children_ = {std::move(input)};
  return n;
}

PlanNodePtr PlanNode::TopN(std::optional<uint64_t> limit,
                           std::string order_field, bool ascending,
                           PlanNodePtr input) {
  auto n = New(OpType::kTopN);
  n->has_limit_ = limit.has_value();
  n->limit_ = limit.value_or(0);
  n->str_ = std::move(order_field);
  n->ascending_ = ascending;
  n->children_ = {std::move(input)};
  return n;
}

PlanNodePtr PlanNode::Display(std::string target, PlanNodePtr input) {
  auto n = New(OpType::kDisplay);
  n->str_ = std::move(target);
  n->children_ = {std::move(input)};
  return n;
}

PlanNodePtr PlanNode::CloneInternal(
    std::vector<std::pair<const PlanNode*, PlanNodePtr>>* memo) const {
  for (const auto& [orig, copy] : *memo) {
    if (orig == this) return copy;
  }
  auto n = New(type_);
  n->items_ = items_;  // items are immutable shared_ptrs: shallow copy OK
  n->str_ = str_;
  n->str2_ = str2_;
  n->expr_ = expr_;  // expressions immutable
  n->fields_ = fields_;
  n->agg_func_ = agg_func_;
  n->limit_ = limit_;
  n->has_limit_ = has_limit_;
  n->ascending_ = ascending_;
  n->distinct_ = distinct_;
  n->annotations_ = annotations_;
  memo->emplace_back(this, n);
  n->children_.reserve(children_.size());
  for (const auto& c : children_) {
    n->children_.push_back(c->CloneInternal(memo));
  }
  return n;
}

PlanNodePtr PlanNode::Clone() const {
  std::vector<std::pair<const PlanNode*, PlanNodePtr>> memo;
  return CloneInternal(&memo);
}

void PlanNode::MorphToData(ItemSet items) {
  Touch();
  const auto staleness = annotations_.staleness_minutes;
  type_ = OpType::kXmlData;
  items_ = std::move(items);
  children_.clear();
  str_.clear();
  str2_.clear();
  expr_.reset();
  fields_.clear();
  annotations_ = Annotations{};
  annotations_.staleness_minutes = staleness;
  annotations_.cardinality = items_.size();
}

void PlanNode::MorphTo(const PlanNode& other) {
  Touch();
  PlanNodePtr copy = other.Clone();
  type_ = copy->type_;
  items_ = std::move(copy->items_);
  children_ = std::move(copy->children_);
  str_ = std::move(copy->str_);
  str2_ = std::move(copy->str2_);
  expr_ = std::move(copy->expr_);
  fields_ = std::move(copy->fields_);
  agg_func_ = copy->agg_func_;
  limit_ = copy->limit_;
  has_limit_ = copy->has_limit_;
  ascending_ = copy->ascending_;
  distinct_ = copy->distinct_;
  annotations_ = copy->annotations_;
}

namespace {
void CollectNodes(const PlanNode* node,
                  std::unordered_set<const PlanNode*>* seen,
                  std::vector<const PlanNode*>* order) {
  if (seen->count(node) != 0) return;
  seen->insert(node);
  order->push_back(node);
  for (const auto& c : node->children()) {
    CollectNodes(c.get(), seen, order);
  }
}
}  // namespace

size_t PlanNode::NodeCount() const {
  std::unordered_set<const PlanNode*> seen;
  std::vector<const PlanNode*> order;
  CollectNodes(this, &seen, &order);
  return order.size();
}

std::vector<const PlanNode*> PlanNode::UrnLeaves() const {
  std::unordered_set<const PlanNode*> seen;
  std::vector<const PlanNode*> order;
  CollectNodes(this, &seen, &order);
  std::vector<const PlanNode*> out;
  for (const PlanNode* n : order) {
    if (n->type() == OpType::kUrn) out.push_back(n);
  }
  return out;
}

std::vector<const PlanNode*> PlanNode::UrlLeaves() const {
  std::unordered_set<const PlanNode*> seen;
  std::vector<const PlanNode*> order;
  CollectNodes(this, &seen, &order);
  std::vector<const PlanNode*> out;
  for (const PlanNode* n : order) {
    if (n->type() == OpType::kUrl) out.push_back(n);
  }
  return out;
}

bool PlanNode::Equals(const PlanNode& other, bool compare_annotations) const {
  if (type_ != other.type_ || str_ != other.str_ || str2_ != other.str2_ ||
      fields_ != other.fields_ || agg_func_ != other.agg_func_ ||
      limit_ != other.limit_ || has_limit_ != other.has_limit_ ||
      ascending_ != other.ascending_ ||
      distinct_ != other.distinct_ ||
      children_.size() != other.children_.size() ||
      items_.size() != other.items_.size()) {
    return false;
  }
  if (compare_annotations && !(annotations_ == other.annotations_)) {
    return false;
  }
  if ((expr_ == nullptr) != (other.expr_ == nullptr)) return false;
  if (expr_ != nullptr && !expr_->Equals(*other.expr_)) return false;
  for (size_t i = 0; i < items_.size(); ++i) {
    if (!items_[i]->Equals(*other.items_[i])) return false;
  }
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i], compare_annotations)) {
      return false;
    }
  }
  return true;
}

std::string PlanNode::Summary() const {
  switch (type_) {
    case OpType::kXmlData:
      return "data[" + std::to_string(items_.size()) + " items]";
    case OpType::kUrl:
      return "url(" + str_ + (str2_.empty() ? "" : ", " + str2_) + ")";
    case OpType::kUrn:
      return "urn(" + str_ + ")";
    case OpType::kSelect:
      return "select(" + (expr_ ? expr_->ToString() : "?") + ")";
    case OpType::kProject:
      return "project(" + mqp::Join(fields_, ",") + ")";
    case OpType::kJoin:
      return "join(" + (expr_ ? expr_->ToString() : "?") + ")";
    case OpType::kLeftOuterJoin:
      return "left-outer-join(" + (expr_ ? expr_->ToString() : "?") + ")";
    case OpType::kUnion:
      return "union";
    case OpType::kOr:
      return "or";
    case OpType::kDifference:
      return "difference";
    case OpType::kAggregate:
      return std::string(AggFuncName(agg_func_)) + "(" + str_ + ")" +
             (str2_.empty() ? "" : " group by " + str2_);
    case OpType::kTopN:
      return (has_limit_ ? "top" + std::to_string(limit_) : "sort") +
             " by " + str_ + (ascending_ ? " asc" : " desc");
    case OpType::kDisplay:
      return "display(target=" + str_ + ")";
  }
  return "?";
}

std::string PlanNode::ToDebugString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += Summary();
  out += '\n';
  for (const auto& c : children_) {
    out += c->ToDebugString(indent + 1);
  }
  return out;
}

std::string Plan::target() const {
  if (root_ != nullptr && root_->type() == OpType::kDisplay) {
    return root_->target();
  }
  return "";
}

void Plan::SnapshotOriginal() {
  if (root_ != nullptr) original_ = root_->Clone();
}

bool Plan::IsFullyEvaluated() const {
  if (root_ == nullptr) return false;
  const PlanNode* n = root_.get();
  if (n->type() == OpType::kDisplay) {
    if (n->children().empty()) return false;
    n = n->child(0).get();
  }
  return n->IsConstant();
}

Result<ItemSet> Plan::ResultItems() const {
  if (!IsFullyEvaluated()) {
    return Status::InvalidArgument("plan is not fully evaluated");
  }
  const PlanNode* n = root_.get();
  if (n->type() == OpType::kDisplay) n = n->child(0).get();
  return n->items();
}

namespace {

// The conservative partial-collection walk behind Plan::PartialItems.
// Only operators whose pending siblings cannot invalidate already-
// reduced data pass items through; everything else yields nothing.
void CollectPartial(const PlanNode& n, ItemSet* out) {
  switch (n.type()) {
    case OpType::kXmlData:
      out->insert(out->end(), n.items().begin(), n.items().end());
      return;
    case OpType::kDisplay:
      if (!n.children().empty()) CollectPartial(*n.child(0), out);
      return;
    case OpType::kUnion:
      // Bag union: every input contributes independently, so whatever
      // has reduced is final regardless of the stragglers.
      for (const auto& c : n.children()) CollectPartial(*c, out);
      return;
    case OpType::kOr:
      // Conjoint union (§4.2): any one input suffices, and mixing two
      // alternatives would double-count — take the first constant one.
      for (const auto& c : n.children()) {
        if (c->IsConstant()) {
          out->insert(out->end(), c->items().begin(), c->items().end());
          return;
        }
      }
      return;
    default:
      // A pending Select/Join/Aggregate/... could still reject or
      // reshape anything beneath it: claim nothing.
      return;
  }
}

}  // namespace

ItemSet Plan::PartialItems() const {
  ItemSet out;
  if (root_ != nullptr) CollectPartial(*root_, &out);
  return out;
}

namespace {

// FNV-1a style mixer; collisions only risk a stale cache, and stamps are
// globally unique, so a collision needs two distinct DAG states hashing
// identically across a 64-bit space.
struct Mixer {
  uint64_t h = 1469598103934665603ull;
  void Mix(uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  }
};

void MixNodes(const PlanNode* node, std::unordered_set<const PlanNode*>* seen,
              Mixer* m) {
  if (!seen->insert(node).second) {
    m->Mix(0x9e3779b97f4a7c15ull);  // shared-reference marker
    return;
  }
  m->Mix(node->stamp());
  m->Mix(node->children().size());
  for (const auto& c : node->children()) {
    MixNodes(c.get(), seen, m);
  }
}

}  // namespace

uint64_t Plan::StructuralFingerprint() const {
  Mixer m;
  const std::hash<std::string> hash_str;
  std::unordered_set<const PlanNode*> seen;
  if (root_ != nullptr) MixNodes(root_.get(), &seen, &m);
  m.Mix(0xfeedfacecafebeefull);
  if (original_ != nullptr) MixNodes(original_.get(), &seen, &m);
  // Provenance and policy are hashed by *content*, not just length:
  // both have public mutable accessors, so an in-place edit (same entry
  // count) must still invalidate the cache.
  m.Mix(provenance_.size());
  for (const auto& e : provenance_.entries()) {
    m.Mix(hash_str(e.server));
    m.Mix(hash_str(e.detail));
    m.Mix(static_cast<uint64_t>(e.action));
    m.Mix(static_cast<uint64_t>(e.staleness_minutes));
  }
  m.Mix(policy_.route_allow.size());
  for (const auto& s : policy_.route_allow) m.Mix(hash_str(s));
  m.Mix(policy_.bind_after.size());
  for (const auto& [first, then] : policy_.bind_after) {
    m.Mix(hash_str(first));
    m.Mix(hash_str(then));
  }
  m.Mix(static_cast<uint64_t>(policy_.preference));
  uint64_t budget_bits = 0;
  static_assert(sizeof(budget_bits) == sizeof(policy_.time_budget_seconds));
  __builtin_memcpy(&budget_bits, &policy_.time_budget_seconds,
                   sizeof(budget_bits));
  m.Mix(budget_bits);
  m.Mix(std::hash<std::string>{}(query_id_));
  uint64_t submitted_bits = 0;
  __builtin_memcpy(&submitted_bits, &submitted_at_, sizeof(submitted_bits));
  m.Mix(submitted_bits);
  return m.h;
}

Plan Plan::Clone() const {
  Plan p;
  if (root_ != nullptr) p.root_ = root_->Clone();
  if (original_ != nullptr) p.original_ = original_->Clone();
  p.provenance_ = provenance_;
  p.policy_ = policy_;
  p.query_id_ = query_id_;
  p.submitted_at_ = submitted_at_;
  return p;
}

}  // namespace mqp::algebra
