// Mutant Query Plan representation (paper §2).
//
// A plan is a DAG of operator nodes whose leaves are verbatim XML data,
// URLs, or abstract resource names (URNs). The plan carries a target (where
// to deliver the final result), optional provenance, and optionally a copy
// of the original query (§5.1). Plans mutate as servers resolve leaves and
// reduce evaluable sub-plans to constant data.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/expr.h"
#include "algebra/histogram.h"
#include "algebra/provenance.h"
#include "common/result.h"
#include "xml/node.h"

namespace mqp::algebra {

// Item / ItemSet are defined in algebra/histogram.h.

/// Deep-copies an xml::Node into an Item.
Item MakeItem(const xml::Node& node);

/// Operator vocabulary.
enum class OpType {
  // Leaves.
  kXmlData,     ///< verbatim XML data (a constant)
  kUrl,         ///< resource location (host:port + XPath collection id)
  kUrn,         ///< abstract resource name
  // Relational operators.
  kSelect,      ///< filter by predicate
  kProject,     ///< keep a subset of child fields
  kJoin,        ///< theta/equi join, merging matched items
  kLeftOuterJoin,  ///< join keeping unmatched left items (§2's A ⟖ B)
  kUnion,       ///< bag union of n inputs
  kOr,          ///< conjoint union: any one input suffices (§4.2)
  kDifference,  ///< bag difference (2 inputs)
  kAggregate,   ///< count/sum/min/max/avg, optional group-by
  kTopN,        ///< order by a field, keep n
  // Pseudo-operators.
  kDisplay,     ///< tags the plan's target (§2, Figure 3)
};

std::string_view OpTypeName(OpType t);

/// Aggregate functions for kAggregate.
enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

std::string_view AggFuncName(AggFunc f);
Result<AggFunc> AggFuncFromName(std::string_view name);

/// \brief A distributed top-k bound riding on a remote sub-plan
/// (ROADMAP item 2, ADiT-style threshold termination): the consumer's
/// order spec and k, the per-request batch window into the holder's
/// score-sorted stream, and — once the consumer's heap is full — the
/// current k-th entry, against which the holder prunes rows that can no
/// longer win. `leaf` is the sub-plan's position in the consumer's
/// union order; with `bound_leaf` it makes the tie-break on equal keys
/// exact (the consumer's heap breaks ties by arrival order, which is
/// (leaf, within-leaf sequence)). Bounds only ever tighten, so a holder
/// may prune rows failing the bound permanently.
struct TopKBound {
  std::string order_field;
  bool ascending = true;
  uint64_t k = 0;
  uint64_t batch = 0;      ///< max rows in this reply; 0 = everything
  uint64_t cont = 0;       ///< continuation: rows already shipped
  uint32_t leaf = 0;       ///< this sub-plan's leaf index at the consumer
  bool has_bound = false;  ///< k-th entry known (consumer heap full)
  std::string bound_key;   ///< k-th entry's order key (raw bytes)
  uint32_t bound_leaf = 0; ///< k-th entry's leaf index
  bool operator==(const TopKBound&) const = default;
};

/// \brief Optional statistics a server may attach to a node instead of
/// evaluating it (paper §5.1 "accumulating catalog and statistics
/// information"), plus the currency bound of §4.3.
struct Annotations {
  std::optional<uint64_t> cardinality;   ///< number of items
  std::optional<uint64_t> bytes;         ///< serialized size of the data
  std::optional<uint64_t> distinct_keys; ///< distinct join-key values
  std::optional<int> staleness_minutes;  ///< data may be this many minutes old
  std::vector<FieldHistogram> histograms;  ///< per-field distributions
  std::optional<TopKBound> topk;  ///< distributed top-k bound (ROADMAP 2)

  /// The histogram for `field`, or nullptr.
  const FieldHistogram* HistogramFor(std::string_view field) const {
    for (const auto& h : histograms) {
      if (h.field == field) return &h;
    }
    return nullptr;
  }

  bool Empty() const {
    return !cardinality && !bytes && !distinct_keys &&
           !staleness_minutes && histograms.empty() && !topk;
  }
  bool operator==(const Annotations&) const = default;
};

class PlanNode;
using PlanNodePtr = std::shared_ptr<PlanNode>;

/// \brief One operator node in an MQP graph. Nodes are mutable (plans
/// mutate); sharing is allowed (DAG), and serialization preserves it.
class PlanNode {
 public:
  // --- leaf factories ---------------------------------------------------------
  static PlanNodePtr XmlData(ItemSet items);
  static PlanNodePtr Url(std::string url, std::string xpath = "");

  /// `hint` optionally names a server known to be able to resolve the URN
  /// (used when a catalog binds a request to an *index-level* source: the
  /// MQP must travel there to be bound further, paper §4.2 Example 2).
  static PlanNodePtr UrnRef(std::string urn, std::string hint = "");

  // --- operator factories -----------------------------------------------------
  static PlanNodePtr Select(ExprPtr predicate, PlanNodePtr input);
  static PlanNodePtr Project(std::vector<std::string> fields,
                             PlanNodePtr input);
  static PlanNodePtr Join(ExprPtr condition, PlanNodePtr left,
                          PlanNodePtr right);

  /// Left outer join: matched items merge as in Join; unmatched left
  /// items pass through unchanged (the paper's §2 rewrite keeps all of A
  /// while attaching B's fields where they exist).
  static PlanNodePtr LeftOuterJoin(ExprPtr condition, PlanNodePtr left,
                                   PlanNodePtr right);

  /// Bag union by default; `distinct` deduplicates structurally equal
  /// items (used for replica unions, where R ∪ S would otherwise return
  /// every replicated item twice).
  static PlanNodePtr Union(std::vector<PlanNodePtr> inputs,
                           bool distinct = false);
  static PlanNodePtr Or(std::vector<PlanNodePtr> alternatives);
  static PlanNodePtr Difference(PlanNodePtr left, PlanNodePtr right);
  static PlanNodePtr Aggregate(AggFunc func, std::string field,
                               std::string group_by, PlanNodePtr input);
  /// Order by `order_field`, keep the best `n` — or, with nullopt, keep
  /// everything (a pure ORDER BY). Unboundedness is explicit state, not a
  /// sentinel value: bounds ship over the wire for distributed top-k, so
  /// "very large n" must stay distinguishable from "no n at all".
  static PlanNodePtr TopN(std::optional<uint64_t> n, std::string order_field,
                          bool ascending, PlanNodePtr input);
  static PlanNodePtr Display(std::string target, PlanNodePtr input);

  OpType type() const { return type_; }
  bool is_leaf() const {
    return type_ == OpType::kXmlData || type_ == OpType::kUrl ||
           type_ == OpType::kUrn;
  }

  // --- children ---------------------------------------------------------------
  const std::vector<PlanNodePtr>& children() const { return children_; }
  std::vector<PlanNodePtr>& mutable_children() {
    Touch();
    return children_;
  }
  const PlanNodePtr& child(size_t i) const { return children_[i]; }

  // --- payload accessors ------------------------------------------------------
  /// kXmlData: the constant items.
  const ItemSet& items() const { return items_; }
  ItemSet& mutable_items() {
    Touch();
    return items_;
  }

  /// kUrl: "host:port" or "http://host:port/"; `xpath` is the collection id.
  const std::string& url() const { return str_; }
  const std::string& xpath() const { return str2_; }

  /// kUrn: the URN text.
  const std::string& urn() const { return str_; }
  /// kUrn: the resolver-hint server address ("" when none).
  const std::string& urn_hint() const { return str2_; }

  /// kSelect / kJoin: the predicate / join condition.
  const ExprPtr& expr() const { return expr_; }
  void set_expr(ExprPtr e) {
    Touch();
    expr_ = std::move(e);
  }

  /// kProject: retained field names.
  const std::vector<std::string>& fields() const { return fields_; }

  /// kAggregate.
  AggFunc agg_func() const { return agg_func_; }
  const std::string& agg_field() const { return str_; }
  const std::string& group_by() const { return str2_; }

  /// kTopN. `limit()` is only meaningful when `has_limit()`; an
  /// unbounded TopN (plain ORDER BY) sorts without truncating.
  bool has_limit() const { return has_limit_; }
  uint64_t limit() const { return limit_; }
  const std::string& order_field() const { return str_; }
  bool ascending() const { return ascending_; }

  /// kUnion: set semantics?
  bool distinct() const { return distinct_; }

  /// kDisplay.
  const std::string& target() const { return str_; }

  /// Mutable access conservatively re-stamps the node (a false "dirty" only
  /// costs one extra serialization; a missed mutation would send stale
  /// bytes).
  Annotations& annotations() {
    Touch();
    return annotations_;
  }
  const Annotations& annotations() const { return annotations_; }

  /// Mutation stamp: process-unique at construction, refreshed by every
  /// mutating accessor. Plan's serialization cache fingerprints the DAG by
  /// walking stamps (see Plan::StructuralFingerprint).
  uint64_t stamp() const { return stamp_; }

  // --- whole-graph helpers ----------------------------------------------------

  /// Deep copy. Shared sub-DAGs remain shared in the copy.
  PlanNodePtr Clone() const;

  /// Morphs this node in place into constant data — the *reduction* step of
  /// mutant query processing (§2: "substitutes the resulting XML fragments
  /// ... in the place of the evaluated sub-plans"). Annotations are cleared
  /// except staleness, which describes the data itself.
  void MorphToData(ItemSet items);

  /// Morphs this node in place into a copy of `other` — the *resolution*
  /// step (URN replaced by its binding). Annotations on this node are
  /// replaced by `other`'s.
  void MorphTo(const PlanNode& other);

  /// True iff the node is constant data (a fully evaluated plan).
  bool IsConstant() const { return type_ == OpType::kXmlData; }

  /// Number of distinct nodes in the DAG rooted here.
  size_t NodeCount() const;

  /// All distinct URN leaves in the DAG.
  std::vector<const PlanNode*> UrnLeaves() const;

  /// All distinct URL leaves in the DAG.
  std::vector<const PlanNode*> UrlLeaves() const;

  /// Structural equality (ignores annotations by default).
  bool Equals(const PlanNode& other, bool compare_annotations = false) const;

  /// One-line summary, e.g. "select(price < 10)".
  std::string Summary() const;

  /// Multi-line indented tree rendering for debugging.
  std::string ToDebugString(int indent = 0) const;

 private:
  explicit PlanNode(OpType type) : type_(type) {}

  /// Single-allocation construction (make_shared): node churn is the
  /// decode/clone hot path.
  static PlanNodePtr New(OpType type);

  PlanNodePtr CloneInternal(
      std::vector<std::pair<const PlanNode*, PlanNodePtr>>* memo) const;

  static uint64_t NextStamp();
  void Touch() { stamp_ = NextStamp(); }

  OpType type_;
  uint64_t stamp_ = NextStamp();
  std::vector<PlanNodePtr> children_;
  ItemSet items_;
  std::string str_;   // url / urn / agg field / order field / target
  std::string str2_;  // xpath / group_by
  ExprPtr expr_;
  std::vector<std::string> fields_;
  AggFunc agg_func_ = AggFunc::kCount;
  uint64_t limit_ = 0;
  bool has_limit_ = false;
  bool ascending_ = true;
  bool distinct_ = false;
  Annotations annotations_;
};

/// User preference when latency, completeness and currency conflict
/// (paper §4.3: "a binary preference for complete versus current answers").
enum class AnswerPreference { kComplete, kCurrent };

/// \brief Policies an MQP carries with it (paper §5.2: "do not bind
/// preferences until playlist is bound", "only let this MQP pass
/// through servers on this list"; §4.3: time budget + answer preference).
struct PlanPolicy {
  /// When non-empty, the MQP may only be routed to these addresses.
  std::vector<std::string> route_allow;

  /// Addresses the MQP should route *around* (DESIGN.md §9): the client
  /// retry layer stamps its suspicion list here so a retried plan skips
  /// servers the previous attempt found dead. Advisory, not a hard
  /// filter — a hop ignores it when every candidate is excluded.
  std::vector<std::string> route_avoid;

  /// Ordering constraints: each pair {first, then} means the URN `then`
  /// must not be bound while the URN `first` is still unresolved in the
  /// plan.
  std::vector<std::pair<std::string, std::string>> bind_after;

  /// Target evaluation time in seconds (0 = unconstrained).
  double time_budget_seconds = 0;

  /// Scheduling priority under overload (DESIGN.md §11). 0 = best-effort;
  /// higher values are shed later. Admission control sheds priority-0
  /// traffic first and only refuses higher priorities past a hard ceiling.
  uint32_t priority = 0;

  AnswerPreference preference = AnswerPreference::kComplete;

  bool Empty() const {
    return route_allow.empty() && route_avoid.empty() &&
           bind_after.empty() && time_budget_seconds == 0 &&
           priority == 0 && preference == AnswerPreference::kComplete;
  }
  bool operator==(const PlanPolicy&) const = default;
};

/// \brief A complete mutant query plan: operator graph + target +
/// provenance + policy + (optionally) the original query retained for
/// §5.1 uses.
class Plan {
 public:
  Plan() = default;
  explicit Plan(PlanNodePtr root) : root_(std::move(root)) {}

  const PlanNodePtr& root() const { return root_; }
  void set_root(PlanNodePtr root) { root_ = std::move(root); }

  /// The delivery target (from the top-level display node, if any).
  std::string target() const;

  Provenance& provenance() { return provenance_; }
  const Provenance& provenance() const { return provenance_; }

  /// Optional copy of the original, unevaluated plan (§5.1). May be null.
  const PlanNodePtr& original() const { return original_; }
  void set_original(PlanNodePtr original) { original_ = std::move(original); }

  /// Retains a snapshot of the current root as the original plan.
  void SnapshotOriginal();

  /// True iff the plan has been reduced to constant XML data
  /// (below the display node, if present).
  bool IsFullyEvaluated() const;

  /// The result items of a fully evaluated plan.
  Result<ItemSet> ResultItems() const;

  /// Best-effort items of a *partially* evaluated plan (DESIGN.md §9):
  /// the constant data already reduced under the root, collected only
  /// through operators that cannot invalidate it (Union merges its
  /// inputs; Or needs any one input, so its first constant alternative
  /// stands alone). Anything still pending under a Select/Join/etc.
  /// contributes nothing — a filter not yet applied could reject every
  /// item, so guessing would overclaim. Fully evaluated plans return
  /// exactly ResultItems().
  ItemSet PartialItems() const;

  /// Deep copy (root, original, provenance).
  Plan Clone() const;

  /// Client-assigned query identifier (correlates results with requests).
  const std::string& query_id() const { return query_id_; }
  void set_query_id(std::string id) { query_id_ = std::move(id); }

  /// Simulation time at which the client submitted the query (seconds);
  /// used with PlanPolicy::time_budget_seconds.
  double submitted_at() const { return submitted_at_; }
  void set_submitted_at(double t) { submitted_at_ = t; }

  PlanPolicy& policy() { return policy_; }
  const PlanPolicy& policy() const { return policy_; }

  // --- serialization cache (wire layer) ---------------------------------------
  //
  // A plan that is merely *routed* at a hop — received, inspected, and
  // forwarded without mutation — must not be re-serialized. The cache
  // holds the plan's exact wire bytes together with a structural
  // fingerprint of the graph at the time they were produced; any node
  // mutation (tracked via PlanNode stamps) or provenance append
  // invalidates it. Parsers attach the incoming buffer so a pure routing
  // hop forwards the very same (shared, immutable) bytes it received.

  /// Fingerprint of the plan's current state: DFS over the operator DAG
  /// (root and original) mixing node stamps, plus provenance length,
  /// policy and identity fields. O(nodes); far cheaper than serializing.
  uint64_t StructuralFingerprint() const;

  /// The cached wire form; may be null, or stale (check WireCacheValid).
  const std::shared_ptr<const std::string>& cached_wire() const {
    return wire_;
  }

  /// True iff cached_wire() holds the serialization of the *current* plan.
  bool WireCacheValid() const {
    return wire_ != nullptr && wire_fingerprint_ == StructuralFingerprint();
  }

  /// Records `bytes` as the serialization of the plan's current state.
  /// Called by wire/plan_codec with freshly produced or freshly parsed
  /// bytes. Const: the cache is metadata, not plan state.
  void AttachWireCache(std::shared_ptr<const std::string> bytes) const {
    wire_ = std::move(bytes);
    wire_fingerprint_ = StructuralFingerprint();
  }

 private:
  PlanNodePtr root_;
  PlanNodePtr original_;
  Provenance provenance_;
  PlanPolicy policy_;
  std::string query_id_;
  double submitted_at_ = 0;
  mutable std::shared_ptr<const std::string> wire_;
  mutable uint64_t wire_fingerprint_ = 0;
};

}  // namespace mqp::algebra
