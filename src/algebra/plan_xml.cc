#include "algebra/plan_xml.h"

#include <deque>
#include <unordered_map>

#include "common/strings.h"
#include "xml/parser.h"
#include "xml/token_reader.h"
#include "xml/token_writer.h"
#include "xml/writer.h"

namespace mqp::algebra {

namespace {

bool IsExprTag(std::string_view tag) {
  return tag == "field" || tag == "literal" || tag == "compare" ||
         tag == "and" || tag == "or-expr" || tag == "not" || tag == "exists";
}

// Annotation child elements that are not operator inputs.
bool IsAnnotationTag(std::string_view tag) { return tag == "histogram"; }

// The distributed top-k bound rides as tk-* attributes (DESIGN.md §10).
// Both encoders emit through this helper in the same canonical position,
// keeping the DOM and streaming codecs byte-identical.
template <typename AttrFn>
void EmitTopKAttrs(const Annotations& a, AttrFn&& attr) {
  if (!a.topk) return;
  const TopKBound& t = *a.topk;
  attr("tk-field", t.order_field);
  attr("tk-order", std::string(t.ascending ? "asc" : "desc"));
  attr("tk-k", std::to_string(t.k));
  if (t.batch != 0) attr("tk-batch", std::to_string(t.batch));
  if (t.cont != 0) attr("tk-cont", std::to_string(t.cont));
  if (t.leaf != 0) attr("tk-leaf", std::to_string(t.leaf));
  if (t.has_bound) {
    // tk-bkey may legitimately be the empty string (a missing order
    // field evaluates to ""), so presence — not non-emptiness — flags
    // the bound.
    attr("tk-bkey", t.bound_key);
    attr("tk-bleaf", std::to_string(t.bound_leaf));
  }
}

// `find` returns the attribute value or nullopt; shared by both decoders.
template <typename FindFn>
void ParseTopKAttrs(Annotations* a, FindFn&& find) {
  const auto field = find("tk-field");
  if (!field) return;
  TopKBound t;
  t.order_field = std::string(*field);
  int64_t v = 0;
  if (const auto s = find("tk-order")) t.ascending = *s != "desc";
  if (const auto s = find("tk-k"); s && mqp::ParseInt64(*s, &v) && v >= 0) {
    t.k = static_cast<uint64_t>(v);
  }
  if (const auto s = find("tk-batch"); s && mqp::ParseInt64(*s, &v) && v >= 0) {
    t.batch = static_cast<uint64_t>(v);
  }
  if (const auto s = find("tk-cont"); s && mqp::ParseInt64(*s, &v) && v >= 0) {
    t.cont = static_cast<uint64_t>(v);
  }
  if (const auto s = find("tk-leaf"); s && mqp::ParseInt64(*s, &v) && v >= 0) {
    t.leaf = static_cast<uint32_t>(v);
  }
  if (const auto s = find("tk-bkey")) {
    t.has_bound = true;
    t.bound_key = std::string(*s);
  }
  if (const auto s = find("tk-bleaf"); s && mqp::ParseInt64(*s, &v) && v >= 0) {
    t.bound_leaf = static_cast<uint32_t>(v);
  }
  a->topk = std::move(t);
}

// Counts how many times each node is referenced in the DAG.
void CountRefs(const PlanNode* node,
               std::unordered_map<const PlanNode*, int>* refs) {
  if (++(*refs)[node] > 1) return;  // only descend on first visit
  for (const auto& c : node->children()) {
    CountRefs(c.get(), refs);
  }
}

class Serializer {
 public:
  std::unique_ptr<xml::Node> NodeToXml(const PlanNode& node) {
    CountRefs(&node, &refs_);
    return Emit(node);
  }

 private:
  std::unique_ptr<xml::Node> Emit(const PlanNode& node) {
    auto it = ids_.find(&node);
    if (it != ids_.end()) {
      auto ref = xml::Node::Element("ref");
      ref->SetAttr("id", std::to_string(it->second));
      return ref;
    }
    auto out = xml::Node::Element(std::string(OpTypeName(node.type())));
    if (refs_[&node] > 1) {
      const int id = next_id_++;
      ids_[&node] = id;
      out->SetAttr("node-id", std::to_string(id));
    }
    // Annotations. Union's distinct flag shares the "distinct" attribute
    // with the distinct_keys annotation (the flag wins); emitting it here
    // keeps the attribute order canonical across re-encodes.
    const Annotations& a = node.annotations();
    const bool union_distinct =
        node.type() == OpType::kUnion && node.distinct();
    if (a.cardinality) out->SetAttr("card", std::to_string(*a.cardinality));
    if (a.bytes) out->SetAttr("bytes", std::to_string(*a.bytes));
    if (union_distinct) {
      out->SetAttr("distinct", "1");
    } else if (a.distinct_keys) {
      out->SetAttr("distinct", std::to_string(*a.distinct_keys));
    }
    if (a.staleness_minutes) {
      out->SetAttr("staleness", std::to_string(*a.staleness_minutes));
    }
    EmitTopKAttrs(a, [&](std::string_view key, std::string value) {
      out->SetAttr(key, std::move(value));
    });
    for (const auto& h : a.histograms) {
      out->AddChild(h.ToXml());
    }
    switch (node.type()) {
      case OpType::kXmlData:
        for (const Item& item : node.items()) {
          out->AddChild(item->Clone());
        }
        break;
      case OpType::kUrl:
        out->SetAttr("href", node.url());
        if (!node.xpath().empty()) out->SetAttr("xpath", node.xpath());
        break;
      case OpType::kUrn:
        out->SetAttr("name", node.urn());
        if (!node.urn_hint().empty()) out->SetAttr("hint", node.urn_hint());
        break;
      case OpType::kSelect:
      case OpType::kJoin:
      case OpType::kLeftOuterJoin:
        if (node.expr() != nullptr) out->AddChild(node.expr()->ToXml());
        break;
      case OpType::kProject:
        out->SetAttr("fields", mqp::Join(node.fields(), ","));
        break;
      case OpType::kAggregate:
        out->SetAttr("func", std::string(AggFuncName(node.agg_func())));
        if (!node.agg_field().empty()) {
          out->SetAttr("field", node.agg_field());
        }
        if (!node.group_by().empty()) {
          out->SetAttr("groupby", node.group_by());
        }
        break;
      case OpType::kTopN:
        if (node.has_limit()) out->SetAttr("n", std::to_string(node.limit()));
        out->SetAttr("orderby", node.order_field());
        out->SetAttr("order", node.ascending() ? "asc" : "desc");
        break;
      case OpType::kDisplay:
        out->SetAttr("target", node.target());
        break;
      default:
        break;
    }
    for (const auto& c : node.children()) {
      out->AddChild(Emit(*c));
    }
    return out;
  }

  std::unordered_map<const PlanNode*, int> refs_;
  std::unordered_map<const PlanNode*, int> ids_;
  int next_id_ = 1;
};

class Deserializer {
 public:
  Result<PlanNodePtr> Parse(const xml::Node& elem) {
    const std::string& tag = elem.name();
    if (tag == "ref") {
      const std::string id = elem.AttrOr("id", "");
      auto it = by_id_.find(id);
      if (it == by_id_.end()) {
        return Status::ParseError("dangling <ref id=\"" + id + "\"/>");
      }
      return it->second;
    }

    MQP_ASSIGN_OR_RETURN(auto node, ParseByTag(elem));

    // Annotations.
    Annotations& a = node->annotations();
    int64_t v;
    if (auto s = elem.Attr("card"); s && mqp::ParseInt64(*s, &v)) {
      a.cardinality = static_cast<uint64_t>(v);
    }
    if (auto s = elem.Attr("bytes"); s && mqp::ParseInt64(*s, &v)) {
      a.bytes = static_cast<uint64_t>(v);
    }
    if (auto s = elem.Attr("distinct"); s && mqp::ParseInt64(*s, &v)) {
      a.distinct_keys = static_cast<uint64_t>(v);
    }
    if (auto s = elem.Attr("staleness"); s && mqp::ParseInt64(*s, &v)) {
      a.staleness_minutes = static_cast<int>(v);
    }
    ParseTopKAttrs(&a, [&](std::string_view key) { return elem.Attr(key); });
    for (const xml::Node* h : elem.Children("histogram")) {
      MQP_ASSIGN_OR_RETURN(auto hist, FieldHistogram::FromXml(*h));
      a.histograms.push_back(std::move(hist));
    }
    if (auto id = elem.Attr("node-id")) {
      by_id_[std::string(*id)] = node;
    }
    return node;
  }

 private:
  // Child operator elements (skipping the leading expression, if any).
  Result<std::vector<PlanNodePtr>> ParseInputs(const xml::Node& elem) {
    std::vector<PlanNodePtr> inputs;
    for (const auto& c : elem.children()) {
      if (!c->is_element() || IsExprTag(c->name()) ||
          IsAnnotationTag(c->name())) {
        continue;
      }
      MQP_ASSIGN_OR_RETURN(auto input, Parse(*c));
      inputs.push_back(std::move(input));
    }
    return inputs;
  }

  Result<ExprPtr> ParseExprChild(const xml::Node& elem) {
    for (const auto& c : elem.children()) {
      if (c->is_element() && IsExprTag(c->name())) {
        return Expr::FromXml(*c);
      }
    }
    return Status::ParseError("<" + elem.name() +
                              "> is missing its expression");
  }

  Status RequireInputs(const std::string& tag,
                       const std::vector<PlanNodePtr>& inputs, size_t n) {
    if (inputs.size() != n) {
      return Status::ParseError("<" + tag + "> expects " + std::to_string(n) +
                                " input(s), found " +
                                std::to_string(inputs.size()));
    }
    return Status::OK();
  }

  Result<PlanNodePtr> ParseByTag(const xml::Node& elem) {
    const std::string& tag = elem.name();
    if (tag == "data") {
      ItemSet items;
      for (const auto& c : elem.children()) {
        if (c->is_element() && !IsAnnotationTag(c->name())) {
          items.push_back(Item(c->Clone().release()));
        }
      }
      return PlanNode::XmlData(std::move(items));
    }
    if (tag == "url") {
      return PlanNode::Url(elem.AttrOr("href", ""), elem.AttrOr("xpath", ""));
    }
    if (tag == "urn") {
      return PlanNode::UrnRef(elem.AttrOr("name", ""),
                              elem.AttrOr("hint", ""));
    }
    if (tag == "select") {
      MQP_ASSIGN_OR_RETURN(auto expr, ParseExprChild(elem));
      MQP_ASSIGN_OR_RETURN(auto inputs, ParseInputs(elem));
      MQP_RETURN_IF_ERROR(RequireInputs(tag, inputs, 1));
      return PlanNode::Select(std::move(expr), std::move(inputs[0]));
    }
    if (tag == "project") {
      MQP_ASSIGN_OR_RETURN(auto inputs, ParseInputs(elem));
      MQP_RETURN_IF_ERROR(RequireInputs(tag, inputs, 1));
      return PlanNode::Project(
          mqp::SplitSkipEmpty(elem.AttrOr("fields", ""), ','),
          std::move(inputs[0]));
    }
    if (tag == "join" || tag == "leftouterjoin") {
      MQP_ASSIGN_OR_RETURN(auto expr, ParseExprChild(elem));
      MQP_ASSIGN_OR_RETURN(auto inputs, ParseInputs(elem));
      MQP_RETURN_IF_ERROR(RequireInputs(tag, inputs, 2));
      return tag == "join"
                 ? PlanNode::Join(std::move(expr), std::move(inputs[0]),
                                  std::move(inputs[1]))
                 : PlanNode::LeftOuterJoin(std::move(expr),
                                           std::move(inputs[0]),
                                           std::move(inputs[1]));
    }
    if (tag == "union" || tag == "or") {
      MQP_ASSIGN_OR_RETURN(auto inputs, ParseInputs(elem));
      if (inputs.empty()) {
        return Status::ParseError("<" + tag + "> needs at least one input");
      }
      return tag == "union"
                 ? PlanNode::Union(std::move(inputs),
                                   elem.AttrOr("distinct", "") == "1")
                 : PlanNode::Or(std::move(inputs));
    }
    if (tag == "difference") {
      MQP_ASSIGN_OR_RETURN(auto inputs, ParseInputs(elem));
      MQP_RETURN_IF_ERROR(RequireInputs(tag, inputs, 2));
      return PlanNode::Difference(std::move(inputs[0]), std::move(inputs[1]));
    }
    if (tag == "aggregate") {
      MQP_ASSIGN_OR_RETURN(auto func,
                           AggFuncFromName(elem.AttrOr("func", "count")));
      MQP_ASSIGN_OR_RETURN(auto inputs, ParseInputs(elem));
      MQP_RETURN_IF_ERROR(RequireInputs(tag, inputs, 1));
      return PlanNode::Aggregate(func, elem.AttrOr("field", ""),
                                 elem.AttrOr("groupby", ""),
                                 std::move(inputs[0]));
    }
    if (tag == "topn") {
      std::optional<uint64_t> limit;
      if (const auto s = elem.Attr("n")) {
        int64_t n = 0;
        if (!mqp::ParseInt64(*s, &n) || n < 0) {
          return Status::ParseError("<topn> has a bad n attribute");
        }
        limit = static_cast<uint64_t>(n);
      }
      MQP_ASSIGN_OR_RETURN(auto inputs, ParseInputs(elem));
      MQP_RETURN_IF_ERROR(RequireInputs(tag, inputs, 1));
      return PlanNode::TopN(limit, elem.AttrOr("orderby", ""),
                            elem.AttrOr("order", "asc") != "desc",
                            std::move(inputs[0]));
    }
    return Status::ParseError("unknown operator element <" + tag + ">");
  }

  std::unordered_map<std::string, PlanNodePtr> by_id_;

 public:
  Result<PlanNodePtr> ParseOp(const xml::Node& elem) {
    if (elem.name() == "display") {
      std::vector<PlanNodePtr> inputs;
      for (const auto& c : elem.children()) {
        if (!c->is_element()) continue;
        MQP_ASSIGN_OR_RETURN(auto input, Parse(*c));
        inputs.push_back(std::move(input));
      }
      MQP_RETURN_IF_ERROR(RequireInputs("display", inputs, 1));
      return PlanNode::Display(elem.AttrOr("target", ""),
                               std::move(inputs[0]));
    }
    return Parse(elem);
  }
};

// --- streaming codec -------------------------------------------------------------
//
// The wire hot path. Byte-identical to the DOM pair above (the reference
// implementation behind the ablation knob); tests/codec_test.cc pins the
// equivalence across randomized plans.

bool g_use_streaming_plan_codec = true;

// Streaming twin of Serializer: same ref-counting pass, emits tokens.
class StreamSerializer {
 public:
  explicit StreamSerializer(xml::TokenWriter* w) : w_(w) {}

  void EmitTree(const PlanNode& root) {
    CountRefs(&root, &refs_);
    Emit(root);
  }

 private:
  void Emit(const PlanNode& node) {
    auto it = ids_.find(&node);
    if (it != ids_.end()) {
      w_->Start("ref");
      w_->Attr("id", std::to_string(it->second));
      w_->End();
      return;
    }
    w_->Start(OpTypeName(node.type()));
    if (refs_[&node] > 1) {
      const int id = next_id_++;
      ids_[&node] = id;
      w_->Attr("node-id", std::to_string(id));
    }
    // Union's distinct flag shares the "distinct" attribute with the
    // distinct_keys annotation (the flag wins), emitted in the canonical
    // annotation position — byte-identical to the DOM encoder.
    const Annotations& a = node.annotations();
    const bool union_distinct =
        node.type() == OpType::kUnion && node.distinct();
    if (a.cardinality) w_->Attr("card", std::to_string(*a.cardinality));
    if (a.bytes) w_->Attr("bytes", std::to_string(*a.bytes));
    if (union_distinct) {
      w_->Attr("distinct", "1");
    } else if (a.distinct_keys) {
      w_->Attr("distinct", std::to_string(*a.distinct_keys));
    }
    if (a.staleness_minutes) {
      w_->Attr("staleness", std::to_string(*a.staleness_minutes));
    }
    EmitTopKAttrs(a, [&](std::string_view key, std::string value) {
      w_->Attr(key, value);
    });
    switch (node.type()) {
      case OpType::kUrl:
        w_->Attr("href", node.url());
        if (!node.xpath().empty()) w_->Attr("xpath", node.xpath());
        break;
      case OpType::kUrn:
        w_->Attr("name", node.urn());
        if (!node.urn_hint().empty()) w_->Attr("hint", node.urn_hint());
        break;
      case OpType::kProject:
        w_->Attr("fields", mqp::Join(node.fields(), ","));
        break;
      case OpType::kAggregate:
        w_->Attr("func", AggFuncName(node.agg_func()));
        if (!node.agg_field().empty()) w_->Attr("field", node.agg_field());
        if (!node.group_by().empty()) w_->Attr("groupby", node.group_by());
        break;
      case OpType::kTopN:
        if (node.has_limit()) w_->Attr("n", std::to_string(node.limit()));
        w_->Attr("orderby", node.order_field());
        w_->Attr("order", node.ascending() ? "asc" : "desc");
        break;
      case OpType::kDisplay:
        w_->Attr("target", node.target());
        break;
      default:
        break;
    }
    for (const auto& h : a.histograms) {
      h.EmitTokens(w_);
    }
    switch (node.type()) {
      case OpType::kXmlData:
        for (const Item& item : node.items()) {
          w_->Write(*item);
        }
        break;
      case OpType::kSelect:
      case OpType::kJoin:
      case OpType::kLeftOuterJoin:
        if (node.expr() != nullptr) node.expr()->EmitTokens(w_);
        break;
      default:
        break;
    }
    for (const auto& c : node.children()) {
      Emit(*c);
    }
    w_->End();
  }

  xml::TokenWriter* w_;
  std::unordered_map<const PlanNode*, int> refs_;
  std::unordered_map<const PlanNode*, int> ids_;
  int next_id_ = 1;
};

void EmitPlanTokens(const Plan& plan, xml::TokenWriter* w) {
  w->Start("mqp");
  if (!plan.query_id().empty()) w->Attr("query-id", plan.query_id());
  if (plan.submitted_at() != 0) {
    w->Attr("submitted", mqp::FormatDouble(plan.submitted_at()));
  }
  if (!plan.policy().Empty()) {
    const PlanPolicy& pol = plan.policy();
    w->Start("policy");
    if (pol.time_budget_seconds != 0) {
      w->Attr("time-budget", mqp::FormatDouble(pol.time_budget_seconds));
    }
    if (pol.priority != 0) {
      w->Attr("priority", std::to_string(pol.priority));
    }
    w->Attr("prefer", pol.preference == AnswerPreference::kCurrent
                          ? "current"
                          : "complete");
    for (const auto& s : pol.route_allow) {
      w->Start("route-allow");
      w->Attr("server", s);
      w->End();
    }
    for (const auto& s : pol.route_avoid) {
      w->Start("route-avoid");
      w->Attr("server", s);
      w->End();
    }
    for (const auto& [first, then] : pol.bind_after) {
      w->Start("bind-after");
      w->Attr("first", first);
      w->Attr("then", then);
      w->End();
    }
    w->End();
  }
  if (!plan.provenance().empty()) {
    plan.provenance().EmitTokens(w);
  }
  if (plan.original() != nullptr) {
    w->Start("original");
    StreamSerializer s(w);
    s.EmitTree(*plan.original());
    w->End();
  }
  w->Start("plan");
  if (plan.root() != nullptr) {
    StreamSerializer s(w);
    if (plan.root()->type() == OpType::kDisplay) {
      // display carries the target and one input; like the DOM path, the
      // shared-node id space starts below it.
      w->Start("display");
      w->Attr("target", plan.root()->target());
      s.EmitTree(*plan.root()->child(0));
      w->End();
    } else {
      s.EmitTree(*plan.root());
    }
  }
  w->End();  // plan
  w->End();  // mqp
}

// Streaming twin of Deserializer: consumes tokens directly into
// PlanNodes; only verbatim <data> items materialize xml::Nodes.
class StreamDeserializer {
 public:
  explicit StreamDeserializer(xml::TokenReader* r) : r_(r) {}

  /// Starts a fresh node-id space (each <original>/<plan> section has its
  /// own, like the DOM path's per-section Deserializer). The attribute
  /// pool is deliberately retained across sections.
  void ResetIds() { by_id_.clear(); }

  // Top-level operator element (display allowed). Precondition: current()
  // is its kStartElement; returns with its kEndElement consumed.
  Result<PlanNodePtr> ParseOp() {
    if (r_->current().name == "display") {
      xml::AttrList& attrs = AttrsAt(0);
      MQP_ASSIGN_OR_RETURN(xml::Token t, r_->ReadAttrs(&attrs));
      std::vector<PlanNodePtr> inputs;
      while (t.type != xml::TokenType::kEndElement) {
        if (t.type == xml::TokenType::kStartElement) {
          MQP_ASSIGN_OR_RETURN(auto input, ParseNode(1));
          inputs.push_back(std::move(input));
        }
        if (!r_->Advance()) return r_->status();
        t = r_->current();
      }
      MQP_RETURN_IF_ERROR(RequireInputs("display", inputs, 1));
      return PlanNode::Display(attrs.Get("target"), std::move(inputs[0]));
    }
    return ParseNode(0);
  }

 private:
  // One reusable attribute list / input vector per recursion depth:
  // parents hold theirs across child parses, children use deeper slots.
  // Deques keep the references stable while the pools grow.
  xml::AttrList& AttrsAt(size_t depth) {
    while (attr_pool_.size() <= depth) attr_pool_.emplace_back();
    return attr_pool_[depth];
  }

  std::vector<PlanNodePtr>& InputsAt(size_t depth) {
    while (input_pool_.size() <= depth) input_pool_.emplace_back();
    input_pool_[depth].clear();
    return input_pool_[depth];
  }

  Status RequireInputs(std::string_view tag,
                       const std::vector<PlanNodePtr>& inputs, size_t n) {
    if (inputs.size() != n) {
      return Status::ParseError("<" + std::string(tag) + "> expects " +
                                std::to_string(n) + " input(s), found " +
                                std::to_string(inputs.size()));
    }
    return Status::OK();
  }

  Result<PlanNodePtr> ParseNode(size_t depth) {
    // Element names are borrowed from the input buffer, so the view
    // survives the child-token walk below.
    const std::string_view tag = r_->current().name;
    xml::AttrList& attrs = AttrsAt(depth);
    MQP_ASSIGN_OR_RETURN(xml::Token t, r_->ReadAttrs(&attrs));
    if (tag == "ref") {
      if (t.type != xml::TokenType::kEndElement) {
        MQP_RETURN_IF_ERROR(r_->SkipToElementEnd());
      }
      const std::string id = attrs.Get("id");
      auto it = by_id_.find(id);
      if (it == by_id_.end()) {
        return Status::ParseError("dangling <ref id=\"" + id + "\"/>");
      }
      return it->second;
    }
    // Child policy mirrors the DOM Deserializer: histograms are
    // annotations everywhere; <data> treats every other element child as
    // a verbatim item; select/join parse the first expression child and
    // skip later ones; other operators skip expression children; url/urn
    // ignore children entirely.
    const bool is_data = tag == "data";
    const bool wants_expr =
        tag == "select" || tag == "join" || tag == "leftouterjoin";
    const bool ignores_children = tag == "url" || tag == "urn";
    ExprPtr expr;
    std::vector<FieldHistogram> histograms;
    ItemSet items;
    std::vector<PlanNodePtr>& inputs = InputsAt(depth);
    while (t.type != xml::TokenType::kEndElement) {
      if (t.type == xml::TokenType::kStartElement) {
        const std::string_view ctag = t.name;
        if (IsAnnotationTag(ctag)) {
          MQP_ASSIGN_OR_RETURN(auto h, FieldHistogram::FromTokens(r_));
          histograms.push_back(std::move(h));
        } else if (is_data) {
          MQP_ASSIGN_OR_RETURN(auto item, r_->MaterializeSubtree());
          items.push_back(Item(item.release()));
        } else if (IsExprTag(ctag)) {
          if (wants_expr && expr == nullptr) {
            MQP_ASSIGN_OR_RETURN(
                expr, Expr::FromTokens(r_, &attr_pool_, depth + 1));
          } else {
            MQP_RETURN_IF_ERROR(r_->SkipToElementEnd());
          }
        } else if (ignores_children) {
          MQP_RETURN_IF_ERROR(r_->SkipToElementEnd());
        } else {
          MQP_ASSIGN_OR_RETURN(auto input, ParseNode(depth + 1));
          inputs.push_back(std::move(input));
        }
      }
      if (!r_->Advance()) return r_->status();
      t = r_->current();
    }
    MQP_ASSIGN_OR_RETURN(
        auto node, BuildByTag(tag, attrs, std::move(expr), std::move(items),
                              &inputs));
    if (!histograms.empty()) {
      node->annotations().histograms = std::move(histograms);
    }
    if (!attrs.empty()) {
      Annotations& a = node->annotations();
      int64_t v;
      if (const std::string* s = attrs.Find("card");
          s != nullptr && mqp::ParseInt64(*s, &v)) {
        a.cardinality = static_cast<uint64_t>(v);
      }
      if (const std::string* s = attrs.Find("bytes");
          s != nullptr && mqp::ParseInt64(*s, &v)) {
        a.bytes = static_cast<uint64_t>(v);
      }
      if (const std::string* s = attrs.Find("distinct");
          s != nullptr && mqp::ParseInt64(*s, &v)) {
        a.distinct_keys = static_cast<uint64_t>(v);
      }
      if (const std::string* s = attrs.Find("staleness");
          s != nullptr && mqp::ParseInt64(*s, &v)) {
        a.staleness_minutes = static_cast<int>(v);
      }
      ParseTopKAttrs(&a, [&](std::string_view key)
                             -> std::optional<std::string_view> {
        const std::string* s = attrs.Find(key);
        if (s == nullptr) return std::nullopt;
        return std::string_view(*s);
      });
      if (const std::string* id = attrs.Find("node-id")) {
        by_id_[*id] = node;
      }
    }
    return node;
  }

  // `inputs` is a pooled per-depth vector: fixed-arity operators move
  // single elements out (the slot keeps its capacity); union/or steal the
  // whole buffer.
  Result<PlanNodePtr> BuildByTag(std::string_view tag,
                                 const xml::AttrList& attrs, ExprPtr expr,
                                 ItemSet items,
                                 std::vector<PlanNodePtr>* inputs) {
    if (tag == "data") {
      return PlanNode::XmlData(std::move(items));
    }
    if (tag == "url") {
      return PlanNode::Url(attrs.Get("href"), attrs.Get("xpath"));
    }
    if (tag == "urn") {
      return PlanNode::UrnRef(attrs.Get("name"), attrs.Get("hint"));
    }
    if (tag == "select") {
      MQP_RETURN_IF_ERROR(RequireExpr(tag, expr));
      MQP_RETURN_IF_ERROR(RequireInputs(tag, *inputs, 1));
      return PlanNode::Select(std::move(expr), std::move((*inputs)[0]));
    }
    if (tag == "project") {
      MQP_RETURN_IF_ERROR(RequireInputs(tag, *inputs, 1));
      return PlanNode::Project(
          mqp::SplitSkipEmpty(attrs.GetView("fields"), ','),
          std::move((*inputs)[0]));
    }
    if (tag == "join" || tag == "leftouterjoin") {
      MQP_RETURN_IF_ERROR(RequireExpr(tag, expr));
      MQP_RETURN_IF_ERROR(RequireInputs(tag, *inputs, 2));
      return tag == "join"
                 ? PlanNode::Join(std::move(expr), std::move((*inputs)[0]),
                                  std::move((*inputs)[1]))
                 : PlanNode::LeftOuterJoin(std::move(expr),
                                           std::move((*inputs)[0]),
                                           std::move((*inputs)[1]));
    }
    if (tag == "union" || tag == "or") {
      if (inputs->empty()) {
        return Status::ParseError("<" + std::string(tag) +
                                  "> needs at least one input");
      }
      return tag == "union"
                 ? PlanNode::Union(std::move(*inputs),
                                   attrs.GetView("distinct") == "1")
                 : PlanNode::Or(std::move(*inputs));
    }
    if (tag == "difference") {
      MQP_RETURN_IF_ERROR(RequireInputs(tag, *inputs, 2));
      return PlanNode::Difference(std::move((*inputs)[0]),
                                  std::move((*inputs)[1]));
    }
    if (tag == "aggregate") {
      MQP_ASSIGN_OR_RETURN(auto func,
                           AggFuncFromName(attrs.GetView("func", "count")));
      MQP_RETURN_IF_ERROR(RequireInputs(tag, *inputs, 1));
      return PlanNode::Aggregate(func, attrs.Get("field"),
                                 attrs.Get("groupby"),
                                 std::move((*inputs)[0]));
    }
    if (tag == "topn") {
      std::optional<uint64_t> limit;
      if (const std::string* s = attrs.Find("n")) {
        int64_t n = 0;
        if (!mqp::ParseInt64(*s, &n) || n < 0) {
          return Status::ParseError("<topn> has a bad n attribute");
        }
        limit = static_cast<uint64_t>(n);
      }
      MQP_RETURN_IF_ERROR(RequireInputs(tag, *inputs, 1));
      return PlanNode::TopN(limit, attrs.Get("orderby"),
                            attrs.GetView("order", "asc") != "desc",
                            std::move((*inputs)[0]));
    }
    return Status::ParseError("unknown operator element <" +
                              std::string(tag) + ">");
  }

  Status RequireExpr(std::string_view tag, const ExprPtr& expr) {
    if (expr == nullptr) {
      return Status::ParseError("<" + std::string(tag) +
                                "> is missing its expression");
    }
    return Status::OK();
  }

  xml::TokenReader* r_;
  std::unordered_map<std::string, PlanNodePtr> by_id_;
  std::deque<xml::AttrList> attr_pool_;
  std::deque<std::vector<PlanNodePtr>> input_pool_;
};

// Parses an <original>/<plan> section: the first element child becomes the
// operator tree, the rest is skipped (the DOM path breaks after the first
// element too). Returns null for an empty section.
Result<PlanNodePtr> ParseSection(xml::TokenReader* r, StreamDeserializer* d) {
  xml::AttrList attrs;
  MQP_ASSIGN_OR_RETURN(xml::Token t, r->ReadAttrs(&attrs));
  PlanNodePtr node;
  d->ResetIds();
  while (t.type != xml::TokenType::kEndElement) {
    if (t.type == xml::TokenType::kStartElement) {
      if (node == nullptr) {
        MQP_ASSIGN_OR_RETURN(node, d->ParseOp());
      } else {
        MQP_RETURN_IF_ERROR(r->SkipToElementEnd());
      }
    }
    if (!r->Advance()) return r->status();
    t = r->current();
  }
  return node;
}

Status ParsePolicyTokens(xml::TokenReader* r, PlanPolicy* p) {
  xml::AttrList attrs;
  MQP_ASSIGN_OR_RETURN(xml::Token t, r->ReadAttrs(&attrs));
  if (const std::string* tb = attrs.Find("time-budget")) {
    if (!mqp::ParseDouble(*tb, &p->time_budget_seconds)) {
      return Status::ParseError("bad time-budget");
    }
  }
  if (const std::string* pr = attrs.Find("priority")) {
    int64_t v = 0;
    if (!mqp::ParseInt64(*pr, &v) || v < 0) {
      return Status::ParseError("bad priority");
    }
    p->priority = static_cast<uint32_t>(v);
  }
  p->preference = attrs.GetView("prefer", "complete") == "current"
                      ? AnswerPreference::kCurrent
                      : AnswerPreference::kComplete;
  while (t.type != xml::TokenType::kEndElement) {
    if (t.type == xml::TokenType::kStartElement) {
      xml::AttrList child;
      const std::string ctag(t.name);
      MQP_ASSIGN_OR_RETURN(xml::Token ct, r->ReadAttrs(&child));
      if (ctag == "route-allow") {
        p->route_allow.push_back(child.Get("server"));
      } else if (ctag == "route-avoid") {
        p->route_avoid.push_back(child.Get("server"));
      } else if (ctag == "bind-after") {
        p->bind_after.emplace_back(child.Get("first"), child.Get("then"));
      }
      if (ct.type != xml::TokenType::kEndElement) {
        MQP_RETURN_IF_ERROR(r->SkipToElementEnd());
      }
    }
    if (!r->Advance()) return r->status();
    t = r->current();
  }
  return Status::OK();
}

Result<Plan> ParsePlanStreaming(std::string_view text) {
  xml::TokenReader r(text);
  MQP_ASSIGN_OR_RETURN(xml::Token t, r.Next());
  if (t.type == xml::TokenType::kEndOfInput) {
    return Status::ParseError("expected exactly one root element, found 0");
  }
  if (t.name != "mqp") {
    return Status::ParseError("expected <mqp> root, found <" +
                              std::string(t.name) + ">");
  }
  xml::AttrList attrs;
  MQP_ASSIGN_OR_RETURN(t, r.ReadAttrs(&attrs));
  Plan plan;
  plan.set_query_id(attrs.Get("query-id"));
  if (const std::string* s = attrs.Find("submitted")) {
    double ts = 0;
    if (!mqp::ParseDouble(*s, &ts)) {
      return Status::ParseError("bad submitted timestamp");
    }
    plan.set_submitted_at(ts);
  }
  // First occurrence of each section wins, like the DOM path's Child()
  // lookups; duplicates and unknown elements are skipped.
  bool saw_policy = false, saw_prov = false, saw_orig = false,
       saw_plan = false, plan_has_root = false;
  StreamDeserializer d(&r);
  while (t.type != xml::TokenType::kEndElement) {
    if (t.type == xml::TokenType::kStartElement) {
      if (t.name == "policy" && !saw_policy) {
        saw_policy = true;
        MQP_RETURN_IF_ERROR(ParsePolicyTokens(&r, &plan.policy()));
      } else if (t.name == "provenance" && !saw_prov) {
        saw_prov = true;
        MQP_ASSIGN_OR_RETURN(auto p, Provenance::FromTokens(&r));
        plan.provenance() = std::move(p);
      } else if (t.name == "original" && !saw_orig) {
        saw_orig = true;
        MQP_ASSIGN_OR_RETURN(auto node, ParseSection(&r, &d));
        if (node != nullptr) plan.set_original(std::move(node));
      } else if (t.name == "plan" && !saw_plan) {
        saw_plan = true;
        MQP_ASSIGN_OR_RETURN(auto node, ParseSection(&r, &d));
        if (node != nullptr) {
          plan_has_root = true;
          plan.set_root(std::move(node));
        }
      } else {
        MQP_RETURN_IF_ERROR(r.SkipToElementEnd());
      }
    }
    if (!r.Advance()) return r.status();
    t = r.current();
  }
  // The DOM path parses the entire document before looking at it; keep
  // the well-formedness guarantee by consuming to the end.
  MQP_ASSIGN_OR_RETURN(t, r.Next());
  if (t.type != xml::TokenType::kEndOfInput) {
    return Status::ParseError("expected exactly one root element, found 2");
  }
  if (!saw_plan) {
    return Status::ParseError("<mqp> is missing its <plan>");
  }
  if (!plan_has_root) {
    return Status::ParseError("<plan> is empty");
  }
  return plan;
}

}  // namespace

void set_use_streaming_plan_codec(bool on) {
  g_use_streaming_plan_codec = on;
}

bool use_streaming_plan_codec() { return g_use_streaming_plan_codec; }

std::unique_ptr<xml::Node> PlanToXml(const Plan& plan) {
  auto root = xml::Node::Element("mqp");
  if (!plan.query_id().empty()) root->SetAttr("query-id", plan.query_id());
  if (plan.submitted_at() != 0) {
    root->SetAttr("submitted", mqp::FormatDouble(plan.submitted_at()));
  }
  if (!plan.policy().Empty()) {
    const PlanPolicy& pol = plan.policy();
    auto p = xml::Node::Element("policy");
    if (pol.time_budget_seconds != 0) {
      p->SetAttr("time-budget", mqp::FormatDouble(pol.time_budget_seconds));
    }
    if (pol.priority != 0) {
      p->SetAttr("priority", std::to_string(pol.priority));
    }
    p->SetAttr("prefer", pol.preference == AnswerPreference::kCurrent
                             ? "current"
                             : "complete");
    for (const auto& s : pol.route_allow) {
      p->AddElement("route-allow")->SetAttr("server", s);
    }
    for (const auto& s : pol.route_avoid) {
      p->AddElement("route-avoid")->SetAttr("server", s);
    }
    for (const auto& [first, then] : pol.bind_after) {
      auto* ba = p->AddElement("bind-after");
      ba->SetAttr("first", first);
      ba->SetAttr("then", then);
    }
    root->AddChild(std::move(p));
  }
  if (!plan.provenance().empty()) {
    root->AddChild(plan.provenance().ToXml());
  }
  if (plan.original() != nullptr) {
    auto orig = xml::Node::Element("original");
    Serializer s;
    orig->AddChild(s.NodeToXml(*plan.original()));
    root->AddChild(std::move(orig));
  }
  auto body = xml::Node::Element("plan");
  if (plan.root() != nullptr) {
    Serializer s;
    if (plan.root()->type() == OpType::kDisplay) {
      // display carries the target and one input.
      auto disp = xml::Node::Element("display");
      disp->SetAttr("target", plan.root()->target());
      disp->AddChild(s.NodeToXml(*plan.root()->child(0)));
      body->AddChild(std::move(disp));
    } else {
      body->AddChild(s.NodeToXml(*plan.root()));
    }
  }
  root->AddChild(std::move(body));
  return root;
}

std::string SerializePlan(const Plan& plan, bool indent) {
  if (indent || !g_use_streaming_plan_codec) {
    xml::WriteOptions opts;
    opts.indent = indent;
    return xml::Serialize(*PlanToXml(plan), opts);
  }
  std::string out;
  xml::TokenWriter w(&out);
  EmitPlanTokens(plan, &w);
  return out;
}

Result<Plan> PlanFromXml(const xml::Node& root) {
  if (root.name() != "mqp") {
    return Status::ParseError("expected <mqp> root, found <" + root.name() +
                              ">");
  }
  Plan plan;
  plan.set_query_id(root.AttrOr("query-id", ""));
  if (auto s = root.Attr("submitted")) {
    double t = 0;
    if (!mqp::ParseDouble(*s, &t)) {
      return Status::ParseError("bad submitted timestamp");
    }
    plan.set_submitted_at(t);
  }
  if (const xml::Node* pol = root.Child("policy")) {
    PlanPolicy& p = plan.policy();
    if (auto tb = pol->Attr("time-budget")) {
      if (!mqp::ParseDouble(*tb, &p.time_budget_seconds)) {
        return Status::ParseError("bad time-budget");
      }
    }
    if (auto pr = pol->Attr("priority")) {
      int64_t v = 0;
      if (!mqp::ParseInt64(*pr, &v) || v < 0) {
        return Status::ParseError("bad priority");
      }
      p.priority = static_cast<uint32_t>(v);
    }
    p.preference = pol->AttrOr("prefer", "complete") == "current"
                       ? AnswerPreference::kCurrent
                       : AnswerPreference::kComplete;
    for (const xml::Node* ra : pol->Children("route-allow")) {
      p.route_allow.push_back(ra->AttrOr("server", ""));
    }
    for (const xml::Node* ra : pol->Children("route-avoid")) {
      p.route_avoid.push_back(ra->AttrOr("server", ""));
    }
    for (const xml::Node* ba : pol->Children("bind-after")) {
      p.bind_after.emplace_back(ba->AttrOr("first", ""),
                                ba->AttrOr("then", ""));
    }
  }
  if (const xml::Node* prov = root.Child("provenance")) {
    MQP_ASSIGN_OR_RETURN(auto p, Provenance::FromXml(*prov));
    plan.provenance() = std::move(p);
  }
  if (const xml::Node* orig = root.Child("original")) {
    Deserializer d;
    for (const auto& c : orig->children()) {
      if (c->is_element()) {
        MQP_ASSIGN_OR_RETURN(auto node, d.ParseOp(*c));
        plan.set_original(std::move(node));
        break;
      }
    }
  }
  const xml::Node* body = root.Child("plan");
  if (body == nullptr) {
    return Status::ParseError("<mqp> is missing its <plan>");
  }
  Deserializer d;
  for (const auto& c : body->children()) {
    if (c->is_element()) {
      MQP_ASSIGN_OR_RETURN(auto node, d.ParseOp(*c));
      plan.set_root(std::move(node));
      return plan;
    }
  }
  return Status::ParseError("<plan> is empty");
}

Result<Plan> ParsePlan(std::string_view text) {
  if (!g_use_streaming_plan_codec) {
    MQP_ASSIGN_OR_RETURN(auto doc, xml::Parse(text));
    return PlanFromXml(*doc);
  }
  return ParsePlanStreaming(text);
}

size_t PlanWireSize(const Plan& plan) {
  if (!g_use_streaming_plan_codec) {
    return xml::SerializedSize(*PlanToXml(plan));
  }
  xml::TokenWriter w;
  EmitPlanTokens(plan, &w);
  return w.size();
}

}  // namespace mqp::algebra
