#include "algebra/plan_xml.h"

#include <unordered_map>

#include "common/strings.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace mqp::algebra {

namespace {

bool IsExprTag(const std::string& tag) {
  return tag == "field" || tag == "literal" || tag == "compare" ||
         tag == "and" || tag == "or-expr" || tag == "not" || tag == "exists";
}

// Annotation child elements that are not operator inputs.
bool IsAnnotationTag(const std::string& tag) { return tag == "histogram"; }

// Counts how many times each node is referenced in the DAG.
void CountRefs(const PlanNode* node,
               std::unordered_map<const PlanNode*, int>* refs) {
  if (++(*refs)[node] > 1) return;  // only descend on first visit
  for (const auto& c : node->children()) {
    CountRefs(c.get(), refs);
  }
}

class Serializer {
 public:
  std::unique_ptr<xml::Node> NodeToXml(const PlanNode& node) {
    CountRefs(&node, &refs_);
    return Emit(node);
  }

 private:
  std::unique_ptr<xml::Node> Emit(const PlanNode& node) {
    auto it = ids_.find(&node);
    if (it != ids_.end()) {
      auto ref = xml::Node::Element("ref");
      ref->SetAttr("id", std::to_string(it->second));
      return ref;
    }
    auto out = xml::Node::Element(std::string(OpTypeName(node.type())));
    if (refs_[&node] > 1) {
      const int id = next_id_++;
      ids_[&node] = id;
      out->SetAttr("node-id", std::to_string(id));
    }
    // Annotations.
    const Annotations& a = node.annotations();
    if (a.cardinality) out->SetAttr("card", std::to_string(*a.cardinality));
    if (a.bytes) out->SetAttr("bytes", std::to_string(*a.bytes));
    if (a.distinct_keys) {
      out->SetAttr("distinct", std::to_string(*a.distinct_keys));
    }
    if (a.staleness_minutes) {
      out->SetAttr("staleness", std::to_string(*a.staleness_minutes));
    }
    for (const auto& h : a.histograms) {
      out->AddChild(h.ToXml());
    }
    switch (node.type()) {
      case OpType::kXmlData:
        for (const Item& item : node.items()) {
          out->AddChild(item->Clone());
        }
        break;
      case OpType::kUrl:
        out->SetAttr("href", node.url());
        if (!node.xpath().empty()) out->SetAttr("xpath", node.xpath());
        break;
      case OpType::kUrn:
        out->SetAttr("name", node.urn());
        if (!node.urn_hint().empty()) out->SetAttr("hint", node.urn_hint());
        break;
      case OpType::kSelect:
      case OpType::kJoin:
      case OpType::kLeftOuterJoin:
        if (node.expr() != nullptr) out->AddChild(node.expr()->ToXml());
        break;
      case OpType::kProject:
        out->SetAttr("fields", mqp::Join(node.fields(), ","));
        break;
      case OpType::kAggregate:
        out->SetAttr("func", std::string(AggFuncName(node.agg_func())));
        if (!node.agg_field().empty()) {
          out->SetAttr("field", node.agg_field());
        }
        if (!node.group_by().empty()) {
          out->SetAttr("groupby", node.group_by());
        }
        break;
      case OpType::kTopN:
        out->SetAttr("n", std::to_string(node.limit()));
        out->SetAttr("orderby", node.order_field());
        out->SetAttr("order", node.ascending() ? "asc" : "desc");
        break;
      case OpType::kUnion:
        if (node.distinct()) out->SetAttr("distinct", "1");
        break;
      case OpType::kDisplay:
        out->SetAttr("target", node.target());
        break;
      default:
        break;
    }
    for (const auto& c : node.children()) {
      out->AddChild(Emit(*c));
    }
    return out;
  }

  std::unordered_map<const PlanNode*, int> refs_;
  std::unordered_map<const PlanNode*, int> ids_;
  int next_id_ = 1;
};

class Deserializer {
 public:
  Result<PlanNodePtr> Parse(const xml::Node& elem) {
    const std::string& tag = elem.name();
    if (tag == "ref") {
      const std::string id = elem.AttrOr("id", "");
      auto it = by_id_.find(id);
      if (it == by_id_.end()) {
        return Status::ParseError("dangling <ref id=\"" + id + "\"/>");
      }
      return it->second;
    }

    MQP_ASSIGN_OR_RETURN(auto node, ParseByTag(elem));

    // Annotations.
    Annotations& a = node->annotations();
    int64_t v;
    if (auto s = elem.Attr("card"); s && mqp::ParseInt64(*s, &v)) {
      a.cardinality = static_cast<uint64_t>(v);
    }
    if (auto s = elem.Attr("bytes"); s && mqp::ParseInt64(*s, &v)) {
      a.bytes = static_cast<uint64_t>(v);
    }
    if (auto s = elem.Attr("distinct"); s && mqp::ParseInt64(*s, &v)) {
      a.distinct_keys = static_cast<uint64_t>(v);
    }
    if (auto s = elem.Attr("staleness"); s && mqp::ParseInt64(*s, &v)) {
      a.staleness_minutes = static_cast<int>(v);
    }
    for (const xml::Node* h : elem.Children("histogram")) {
      MQP_ASSIGN_OR_RETURN(auto hist, FieldHistogram::FromXml(*h));
      a.histograms.push_back(std::move(hist));
    }
    if (auto id = elem.Attr("node-id")) {
      by_id_[std::string(*id)] = node;
    }
    return node;
  }

 private:
  // Child operator elements (skipping the leading expression, if any).
  Result<std::vector<PlanNodePtr>> ParseInputs(const xml::Node& elem) {
    std::vector<PlanNodePtr> inputs;
    for (const auto& c : elem.children()) {
      if (!c->is_element() || IsExprTag(c->name()) ||
          IsAnnotationTag(c->name())) {
        continue;
      }
      MQP_ASSIGN_OR_RETURN(auto input, Parse(*c));
      inputs.push_back(std::move(input));
    }
    return inputs;
  }

  Result<ExprPtr> ParseExprChild(const xml::Node& elem) {
    for (const auto& c : elem.children()) {
      if (c->is_element() && IsExprTag(c->name())) {
        return Expr::FromXml(*c);
      }
    }
    return Status::ParseError("<" + elem.name() +
                              "> is missing its expression");
  }

  Status RequireInputs(const std::string& tag,
                       const std::vector<PlanNodePtr>& inputs, size_t n) {
    if (inputs.size() != n) {
      return Status::ParseError("<" + tag + "> expects " + std::to_string(n) +
                                " input(s), found " +
                                std::to_string(inputs.size()));
    }
    return Status::OK();
  }

  Result<PlanNodePtr> ParseByTag(const xml::Node& elem) {
    const std::string& tag = elem.name();
    if (tag == "data") {
      ItemSet items;
      for (const auto& c : elem.children()) {
        if (c->is_element() && !IsAnnotationTag(c->name())) {
          items.push_back(Item(c->Clone().release()));
        }
      }
      return PlanNode::XmlData(std::move(items));
    }
    if (tag == "url") {
      return PlanNode::Url(elem.AttrOr("href", ""), elem.AttrOr("xpath", ""));
    }
    if (tag == "urn") {
      return PlanNode::UrnRef(elem.AttrOr("name", ""),
                              elem.AttrOr("hint", ""));
    }
    if (tag == "select") {
      MQP_ASSIGN_OR_RETURN(auto expr, ParseExprChild(elem));
      MQP_ASSIGN_OR_RETURN(auto inputs, ParseInputs(elem));
      MQP_RETURN_IF_ERROR(RequireInputs(tag, inputs, 1));
      return PlanNode::Select(std::move(expr), std::move(inputs[0]));
    }
    if (tag == "project") {
      MQP_ASSIGN_OR_RETURN(auto inputs, ParseInputs(elem));
      MQP_RETURN_IF_ERROR(RequireInputs(tag, inputs, 1));
      return PlanNode::Project(
          mqp::SplitSkipEmpty(elem.AttrOr("fields", ""), ','),
          std::move(inputs[0]));
    }
    if (tag == "join" || tag == "leftouterjoin") {
      MQP_ASSIGN_OR_RETURN(auto expr, ParseExprChild(elem));
      MQP_ASSIGN_OR_RETURN(auto inputs, ParseInputs(elem));
      MQP_RETURN_IF_ERROR(RequireInputs(tag, inputs, 2));
      return tag == "join"
                 ? PlanNode::Join(std::move(expr), std::move(inputs[0]),
                                  std::move(inputs[1]))
                 : PlanNode::LeftOuterJoin(std::move(expr),
                                           std::move(inputs[0]),
                                           std::move(inputs[1]));
    }
    if (tag == "union" || tag == "or") {
      MQP_ASSIGN_OR_RETURN(auto inputs, ParseInputs(elem));
      if (inputs.empty()) {
        return Status::ParseError("<" + tag + "> needs at least one input");
      }
      return tag == "union"
                 ? PlanNode::Union(std::move(inputs),
                                   elem.AttrOr("distinct", "") == "1")
                 : PlanNode::Or(std::move(inputs));
    }
    if (tag == "difference") {
      MQP_ASSIGN_OR_RETURN(auto inputs, ParseInputs(elem));
      MQP_RETURN_IF_ERROR(RequireInputs(tag, inputs, 2));
      return PlanNode::Difference(std::move(inputs[0]), std::move(inputs[1]));
    }
    if (tag == "aggregate") {
      MQP_ASSIGN_OR_RETURN(auto func,
                           AggFuncFromName(elem.AttrOr("func", "count")));
      MQP_ASSIGN_OR_RETURN(auto inputs, ParseInputs(elem));
      MQP_RETURN_IF_ERROR(RequireInputs(tag, inputs, 1));
      return PlanNode::Aggregate(func, elem.AttrOr("field", ""),
                                 elem.AttrOr("groupby", ""),
                                 std::move(inputs[0]));
    }
    if (tag == "topn") {
      int64_t n = 0;
      if (!mqp::ParseInt64(elem.AttrOr("n", ""), &n) || n < 0) {
        return Status::ParseError("<topn> has a bad n attribute");
      }
      MQP_ASSIGN_OR_RETURN(auto inputs, ParseInputs(elem));
      MQP_RETURN_IF_ERROR(RequireInputs(tag, inputs, 1));
      return PlanNode::TopN(static_cast<uint64_t>(n),
                            elem.AttrOr("orderby", ""),
                            elem.AttrOr("order", "asc") != "desc",
                            std::move(inputs[0]));
    }
    return Status::ParseError("unknown operator element <" + tag + ">");
  }

  std::unordered_map<std::string, PlanNodePtr> by_id_;

 public:
  Result<PlanNodePtr> ParseOp(const xml::Node& elem) {
    if (elem.name() == "display") {
      std::vector<PlanNodePtr> inputs;
      for (const auto& c : elem.children()) {
        if (!c->is_element()) continue;
        MQP_ASSIGN_OR_RETURN(auto input, Parse(*c));
        inputs.push_back(std::move(input));
      }
      MQP_RETURN_IF_ERROR(RequireInputs("display", inputs, 1));
      return PlanNode::Display(elem.AttrOr("target", ""),
                               std::move(inputs[0]));
    }
    return Parse(elem);
  }
};

}  // namespace

std::unique_ptr<xml::Node> PlanToXml(const Plan& plan) {
  auto root = xml::Node::Element("mqp");
  if (!plan.query_id().empty()) root->SetAttr("query-id", plan.query_id());
  if (plan.submitted_at() != 0) {
    root->SetAttr("submitted", mqp::FormatDouble(plan.submitted_at()));
  }
  if (!plan.policy().Empty()) {
    const PlanPolicy& pol = plan.policy();
    auto p = xml::Node::Element("policy");
    if (pol.time_budget_seconds != 0) {
      p->SetAttr("time-budget", mqp::FormatDouble(pol.time_budget_seconds));
    }
    p->SetAttr("prefer", pol.preference == AnswerPreference::kCurrent
                             ? "current"
                             : "complete");
    for (const auto& s : pol.route_allow) {
      p->AddElement("route-allow")->SetAttr("server", s);
    }
    for (const auto& [first, then] : pol.bind_after) {
      auto* ba = p->AddElement("bind-after");
      ba->SetAttr("first", first);
      ba->SetAttr("then", then);
    }
    root->AddChild(std::move(p));
  }
  if (!plan.provenance().empty()) {
    root->AddChild(plan.provenance().ToXml());
  }
  if (plan.original() != nullptr) {
    auto orig = xml::Node::Element("original");
    Serializer s;
    orig->AddChild(s.NodeToXml(*plan.original()));
    root->AddChild(std::move(orig));
  }
  auto body = xml::Node::Element("plan");
  if (plan.root() != nullptr) {
    Serializer s;
    if (plan.root()->type() == OpType::kDisplay) {
      // display carries the target and one input.
      auto disp = xml::Node::Element("display");
      disp->SetAttr("target", plan.root()->target());
      disp->AddChild(s.NodeToXml(*plan.root()->child(0)));
      body->AddChild(std::move(disp));
    } else {
      body->AddChild(s.NodeToXml(*plan.root()));
    }
  }
  root->AddChild(std::move(body));
  return root;
}

std::string SerializePlan(const Plan& plan, bool indent) {
  xml::WriteOptions opts;
  opts.indent = indent;
  return xml::Serialize(*PlanToXml(plan), opts);
}

Result<Plan> PlanFromXml(const xml::Node& root) {
  if (root.name() != "mqp") {
    return Status::ParseError("expected <mqp> root, found <" + root.name() +
                              ">");
  }
  Plan plan;
  plan.set_query_id(root.AttrOr("query-id", ""));
  if (auto s = root.Attr("submitted")) {
    double t = 0;
    if (!mqp::ParseDouble(*s, &t)) {
      return Status::ParseError("bad submitted timestamp");
    }
    plan.set_submitted_at(t);
  }
  if (const xml::Node* pol = root.Child("policy")) {
    PlanPolicy& p = plan.policy();
    if (auto tb = pol->Attr("time-budget")) {
      if (!mqp::ParseDouble(*tb, &p.time_budget_seconds)) {
        return Status::ParseError("bad time-budget");
      }
    }
    p.preference = pol->AttrOr("prefer", "complete") == "current"
                       ? AnswerPreference::kCurrent
                       : AnswerPreference::kComplete;
    for (const xml::Node* ra : pol->Children("route-allow")) {
      p.route_allow.push_back(ra->AttrOr("server", ""));
    }
    for (const xml::Node* ba : pol->Children("bind-after")) {
      p.bind_after.emplace_back(ba->AttrOr("first", ""),
                                ba->AttrOr("then", ""));
    }
  }
  if (const xml::Node* prov = root.Child("provenance")) {
    MQP_ASSIGN_OR_RETURN(auto p, Provenance::FromXml(*prov));
    plan.provenance() = std::move(p);
  }
  if (const xml::Node* orig = root.Child("original")) {
    Deserializer d;
    for (const auto& c : orig->children()) {
      if (c->is_element()) {
        MQP_ASSIGN_OR_RETURN(auto node, d.ParseOp(*c));
        plan.set_original(std::move(node));
        break;
      }
    }
  }
  const xml::Node* body = root.Child("plan");
  if (body == nullptr) {
    return Status::ParseError("<mqp> is missing its <plan>");
  }
  Deserializer d;
  for (const auto& c : body->children()) {
    if (c->is_element()) {
      MQP_ASSIGN_OR_RETURN(auto node, d.ParseOp(*c));
      plan.set_root(std::move(node));
      return plan;
    }
  }
  return Status::ParseError("<plan> is empty");
}

Result<Plan> ParsePlan(std::string_view text) {
  MQP_ASSIGN_OR_RETURN(auto doc, xml::Parse(text));
  return PlanFromXml(*doc);
}

size_t PlanWireSize(const Plan& plan) {
  return xml::SerializedSize(*PlanToXml(plan));
}

}  // namespace mqp::algebra
