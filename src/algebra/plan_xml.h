// XML serialization of mutant query plans — the wire format peers exchange.
//
// Layout:
//
//   <mqp>
//     <provenance>...</provenance>   (optional)
//     <original>OP</original>        (optional, §5.1)
//     <plan>OP</plan>
//   </mqp>
//
// where OP is one operator element:
//
//   <data>ITEM*</data>
//   <url href="10.1.2.3:9020" xpath="/data[id=245]"/>
//   <urn name="urn:ForSale:Portland-CDs"/>
//   <select>EXPR OP</select>
//   <project fields="title,price">OP</project>
//   <join>EXPR OP OP</join>
//   <union>OP*</union>  <or>OP*</or>  <difference>OP OP</difference>
//   <aggregate func="count" field="price" groupby="seller">OP</aggregate>
//   <topn n="10" orderby="price" order="asc">OP</topn>
//   <display target="129.95.50.105:9020">OP</display>
//
// Shared sub-DAGs serialize once with a node-id attribute; later references
// appear as <ref id="..."/>. Annotations (§5.1/§4.3) appear as card=,
// bytes=, distinct=, staleness= attributes on any operator element.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "algebra/plan.h"
#include "common/result.h"
#include "xml/node.h"

namespace mqp::algebra {

/// \brief Serializes a plan to its XML wire form. The compact form runs
/// the streaming codec (no intermediate DOM) unless the ablation knob is
/// off; `indent = true` is a debugging aid and always takes the DOM path.
/// Both paths produce byte-identical compact output.
std::string SerializePlan(const Plan& plan, bool indent = false);

/// \brief Serializes to a DOM — the reference implementation the
/// streaming encoder is equivalence-tested against (and the pretty
/// printer's input).
std::unique_ptr<xml::Node> PlanToXml(const Plan& plan);

/// \brief Parses the XML wire form back into a Plan. Runs the streaming
/// token decoder (zero xml::Nodes built except verbatim <data> items)
/// unless the ablation knob is off.
Result<Plan> ParsePlan(std::string_view text);

/// \brief Parses a plan from a DOM node (<mqp> element) — the reference
/// decoder behind the ablation knob.
Result<Plan> PlanFromXml(const xml::Node& root);

/// \brief Serialized size of the plan in bytes (what the network would
/// carry); the quantity MQP optimization tries to keep small. The
/// streaming path prices via a counting token sink without materializing.
size_t PlanWireSize(const Plan& plan);

/// \brief Ablation knob (the PR 3 pattern): when off, ParsePlan /
/// SerializePlan / PlanWireSize run the DOM reference implementation
/// (xml::Parse → PlanFromXml, PlanToXml → xml::Serialize) instead of the
/// streaming codec. Defaults to on; tests and benches flip it to compare.
void set_use_streaming_plan_codec(bool on);
bool use_streaming_plan_codec();

}  // namespace mqp::algebra
