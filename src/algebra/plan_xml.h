// XML serialization of mutant query plans — the wire format peers exchange.
//
// Layout:
//
//   <mqp>
//     <provenance>...</provenance>   (optional)
//     <original>OP</original>        (optional, §5.1)
//     <plan>OP</plan>
//   </mqp>
//
// where OP is one operator element:
//
//   <data>ITEM*</data>
//   <url href="10.1.2.3:9020" xpath="/data[id=245]"/>
//   <urn name="urn:ForSale:Portland-CDs"/>
//   <select>EXPR OP</select>
//   <project fields="title,price">OP</project>
//   <join>EXPR OP OP</join>
//   <union>OP*</union>  <or>OP*</or>  <difference>OP OP</difference>
//   <aggregate func="count" field="price" groupby="seller">OP</aggregate>
//   <topn n="10" orderby="price" order="asc">OP</topn>
//   <display target="129.95.50.105:9020">OP</display>
//
// Shared sub-DAGs serialize once with a node-id attribute; later references
// appear as <ref id="..."/>. Annotations (§5.1/§4.3) appear as card=,
// bytes=, distinct=, staleness= attributes on any operator element.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "algebra/plan.h"
#include "common/result.h"
#include "xml/node.h"

namespace mqp::algebra {

/// \brief Serializes a plan to its XML wire form.
std::string SerializePlan(const Plan& plan, bool indent = false);

/// \brief Serializes to a DOM (for embedding in larger messages).
std::unique_ptr<xml::Node> PlanToXml(const Plan& plan);

/// \brief Parses the XML wire form back into a Plan.
Result<Plan> ParsePlan(std::string_view text);

/// \brief Parses a plan from a DOM node (<mqp> element).
Result<Plan> PlanFromXml(const xml::Node& root);

/// \brief Serialized size of the plan in bytes (what the network would
/// carry); the quantity MQP optimization tries to keep small.
size_t PlanWireSize(const Plan& plan);

}  // namespace mqp::algebra
