#include "algebra/expr.h"

#include <deque>

#include "common/strings.h"
#include "xml/token_reader.h"
#include "xml/token_writer.h"
#include "xml/xpath.h"

namespace mqp::algebra {

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "eq";
    case CompareOp::kNe:
      return "ne";
    case CompareOp::kLt:
      return "lt";
    case CompareOp::kLe:
      return "le";
    case CompareOp::kGt:
      return "gt";
    case CompareOp::kGe:
      return "ge";
    case CompareOp::kHasPrefix:
      return "prefix";
  }
  return "eq";
}

Result<CompareOp> CompareOpFromName(std::string_view name) {
  if (name == "eq") return CompareOp::kEq;
  if (name == "ne") return CompareOp::kNe;
  if (name == "lt") return CompareOp::kLt;
  if (name == "le") return CompareOp::kLe;
  if (name == "gt") return CompareOp::kGt;
  if (name == "ge") return CompareOp::kGe;
  if (name == "prefix") return CompareOp::kHasPrefix;
  return Status::ParseError("unknown comparison op '" + std::string(name) +
                            "'");
}

int Value::Compare(const Value& other) const {
  return mqp::CompareNumericAware(text, other.text);
}

std::shared_ptr<Expr> Expr::New(Kind kind) {
  // Local class: inherits this member function's access to the private
  // constructor, letting make_shared fuse the node and its control block
  // into one allocation.
  struct Mk : Expr {
    explicit Mk(Kind k) : Expr(k) {}
  };
  return std::make_shared<Mk>(kind);
}

ExprPtr Expr::Field(std::string path, Side side) {
  auto e = New(Kind::kField);
  e->text_ = std::move(path);
  e->side_ = side;
  return e;
}

ExprPtr Expr::Literal(std::string value) {
  auto e = New(Kind::kLiteral);
  e->text_ = std::move(value);
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = New(Kind::kCompare);
  e->op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::And(ExprPtr lhs, ExprPtr rhs) {
  auto e = New(Kind::kAnd);
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Or(ExprPtr lhs, ExprPtr rhs) {
  auto e = New(Kind::kOr);
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Not(ExprPtr inner) {
  auto e = New(Kind::kNot);
  e->children_ = {std::move(inner)};
  return e;
}

ExprPtr Expr::Exists(std::string path, Side side) {
  auto e = New(Kind::kExists);
  e->text_ = std::move(path);
  e->side_ = side;
  return e;
}

namespace {
// Resolves a field path against an item; returns first match's text.
std::optional<std::string> LookupField(const std::string& path,
                                       const xml::Node& item) {
  // Fast path: single child element name.
  if (path.find('/') == std::string::npos &&
      path.find('[') == std::string::npos &&
      path.find('@') == std::string::npos) {
    const xml::Node* c = item.Child(path);
    if (c != nullptr) return c->InnerText();
    return std::nullopt;
  }
  auto xp = xml::XPath::Parse(path);
  if (!xp.ok()) return std::nullopt;
  auto values = xp->EvalStrings(item);
  if (values.empty()) return std::nullopt;
  return values.front();
}
}  // namespace

std::optional<Value> Expr::EvalValue(const xml::Node& left,
                                     const xml::Node* right) const {
  switch (kind_) {
    case Kind::kLiteral:
      return Value{text_};
    case Kind::kField: {
      const xml::Node* item = (side_ == Side::kLeft) ? &left : right;
      if (item == nullptr) return std::nullopt;
      auto v = LookupField(text_, *item);
      if (!v) return std::nullopt;
      return Value{std::move(*v)};
    }
    default:
      // Boolean expressions evaluated as scalars yield "true"/"false".
      return Value{EvalBool(left, right) ? "true" : "false"};
  }
}

bool Expr::EvalBool(const xml::Node& left, const xml::Node* right) const {
  switch (kind_) {
    case Kind::kCompare: {
      auto a = children_[0]->EvalValue(left, right);
      auto b = children_[1]->EvalValue(left, right);
      if (!a || !b) return false;  // missing field: predicate fails
      if (op_ == CompareOp::kHasPrefix) {
        // rhs is the category path; lhs the item's (deeper) coordinate.
        const std::string& prefix = b->text;
        const std::string& value = a->text;
        if (prefix.empty()) return true;  // top category covers all
        if (value.size() < prefix.size() ||
            value.compare(0, prefix.size(), prefix) != 0) {
          return false;
        }
        return value.size() == prefix.size() ||
               value[prefix.size()] == '/';
      }
      const int cmp = a->Compare(*b);
      switch (op_) {
        case CompareOp::kEq:
          return cmp == 0;
        case CompareOp::kNe:
          return cmp != 0;
        case CompareOp::kLt:
          return cmp < 0;
        case CompareOp::kLe:
          return cmp <= 0;
        case CompareOp::kGt:
          return cmp > 0;
        case CompareOp::kGe:
          return cmp >= 0;
        case CompareOp::kHasPrefix:
          break;  // handled above
      }
      return false;
    }
    case Kind::kAnd:
      return children_[0]->EvalBool(left, right) &&
             children_[1]->EvalBool(left, right);
    case Kind::kOr:
      return children_[0]->EvalBool(left, right) ||
             children_[1]->EvalBool(left, right);
    case Kind::kNot:
      return !children_[0]->EvalBool(left, right);
    case Kind::kExists: {
      const xml::Node* item = (side_ == Side::kLeft) ? &left : right;
      if (item == nullptr) return false;
      return LookupField(text_, *item).has_value();
    }
    case Kind::kField:
    case Kind::kLiteral: {
      auto v = EvalValue(left, right);
      return v && !v->text.empty() && v->text != "false" && v->text != "0";
    }
  }
  return false;
}

std::unique_ptr<xml::Node> Expr::ToXml() const {
  switch (kind_) {
    case Kind::kField: {
      auto n = xml::Node::Element("field");
      n->SetAttr("path", text_);
      if (side_ == Side::kRight) n->SetAttr("side", "right");
      return n;
    }
    case Kind::kLiteral: {
      auto n = xml::Node::Element("literal");
      n->SetAttr("value", text_);
      return n;
    }
    case Kind::kCompare: {
      auto n = xml::Node::Element("compare");
      n->SetAttr("op", std::string(CompareOpName(op_)));
      n->AddChild(children_[0]->ToXml());
      n->AddChild(children_[1]->ToXml());
      return n;
    }
    case Kind::kAnd:
    case Kind::kOr: {
      auto n = xml::Node::Element(kind_ == Kind::kAnd ? "and" : "or-expr");
      n->AddChild(children_[0]->ToXml());
      n->AddChild(children_[1]->ToXml());
      return n;
    }
    case Kind::kNot: {
      auto n = xml::Node::Element("not");
      n->AddChild(children_[0]->ToXml());
      return n;
    }
    case Kind::kExists: {
      auto n = xml::Node::Element("exists");
      n->SetAttr("path", text_);
      if (side_ == Side::kRight) n->SetAttr("side", "right");
      return n;
    }
  }
  return xml::Node::Element("invalid");
}

void Expr::EmitTokens(xml::TokenWriter* w) const {
  switch (kind_) {
    case Kind::kField:
      w->Start("field");
      w->Attr("path", text_);
      if (side_ == Side::kRight) w->Attr("side", "right");
      break;
    case Kind::kLiteral:
      w->Start("literal");
      w->Attr("value", text_);
      break;
    case Kind::kCompare:
      w->Start("compare");
      w->Attr("op", CompareOpName(op_));
      children_[0]->EmitTokens(w);
      children_[1]->EmitTokens(w);
      break;
    case Kind::kAnd:
    case Kind::kOr:
      w->Start(kind_ == Kind::kAnd ? "and" : "or-expr");
      children_[0]->EmitTokens(w);
      children_[1]->EmitTokens(w);
      break;
    case Kind::kNot:
      w->Start("not");
      children_[0]->EmitTokens(w);
      break;
    case Kind::kExists:
      w->Start("exists");
      w->Attr("path", text_);
      if (side_ == Side::kRight) w->Attr("side", "right");
      break;
  }
  w->End();
}

namespace {

// Recursive worker with a depth-indexed AttrList pool: expression trees
// decode without per-node attribute allocations. Deque keeps parents'
// references stable while the pool grows.
Result<ExprPtr> ExprFromTokensAt(xml::TokenReader* r,
                                 std::deque<xml::AttrList>* pool,
                                 size_t depth) {
  // Element names are borrowed from the input buffer; the view survives
  // the child-token walk.
  const std::string_view tag = r->current().name;
  // Arity by tag: how many leading element children are operands. Any
  // further element children are skipped unparsed, matching FromXml
  // (whose parse_child only ever touches the operands it needs).
  size_t arity = 0;
  if (tag == "compare" || tag == "and" || tag == "or-expr") {
    arity = 2;
  } else if (tag == "not") {
    arity = 1;
  } else if (tag != "field" && tag != "literal" && tag != "exists") {
    MQP_RETURN_IF_ERROR(r->SkipToElementEnd());
    return Status::ParseError("unknown expression element <" +
                              std::string(tag) + ">");
  }
  while (pool->size() <= depth) pool->emplace_back();
  xml::AttrList& attrs = (*pool)[depth];
  MQP_ASSIGN_OR_RETURN(xml::Token t, r->ReadAttrs(&attrs));
  // At most two operands — no vector.
  ExprPtr operands[2];
  size_t count = 0;
  while (t.type != xml::TokenType::kEndElement) {
    if (t.type == xml::TokenType::kStartElement) {
      if (count < arity) {
        MQP_ASSIGN_OR_RETURN(operands[count],
                             ExprFromTokensAt(r, pool, depth + 1));
        ++count;
      } else {
        MQP_RETURN_IF_ERROR(r->SkipToElementEnd());
      }
    }
    if (!r->Advance()) return r->status();
    t = r->current();
  }
  if (count < arity) {
    return Status::ParseError("expression <" + std::string(tag) +
                              "> missing operand " + std::to_string(count));
  }
  if (tag == "field") {
    return Expr::Field(attrs.Get("path"),
                       attrs.GetView("side", "left") == "right"
                           ? Side::kRight
                           : Side::kLeft);
  }
  if (tag == "literal") return Expr::Literal(attrs.Get("value"));
  if (tag == "exists") {
    return Expr::Exists(attrs.Get("path"),
                        attrs.GetView("side", "left") == "right"
                            ? Side::kRight
                            : Side::kLeft);
  }
  if (tag == "compare") {
    MQP_ASSIGN_OR_RETURN(auto op, CompareOpFromName(attrs.GetView("op")));
    return Expr::Compare(op, std::move(operands[0]), std::move(operands[1]));
  }
  if (tag == "and") {
    return Expr::And(std::move(operands[0]), std::move(operands[1]));
  }
  if (tag == "or-expr") {
    return Expr::Or(std::move(operands[0]), std::move(operands[1]));
  }
  return Expr::Not(std::move(operands[0]));
}

}  // namespace

Result<ExprPtr> Expr::FromTokens(xml::TokenReader* r) {
  std::deque<xml::AttrList> pool;
  return ExprFromTokensAt(r, &pool, 0);
}

Result<ExprPtr> Expr::FromTokens(xml::TokenReader* r,
                                 std::deque<xml::AttrList>* pool,
                                 size_t depth) {
  return ExprFromTokensAt(r, pool, depth);
}

Result<ExprPtr> Expr::FromXml(const xml::Node& node) {
  const std::string& tag = node.name();
  auto parse_child = [&](size_t i) -> Result<ExprPtr> {
    size_t seen = 0;
    for (const auto& c : node.children()) {
      if (!c->is_element()) continue;
      if (seen == i) return FromXml(*c);
      ++seen;
    }
    return Status::ParseError("expression <" + tag + "> missing operand " +
                              std::to_string(i));
  };
  if (tag == "field") {
    return Field(node.AttrOr("path", ""),
                 node.AttrOr("side", "left") == "right" ? Side::kRight
                                                        : Side::kLeft);
  }
  if (tag == "literal") {
    return Literal(node.AttrOr("value", ""));
  }
  if (tag == "compare") {
    MQP_ASSIGN_OR_RETURN(auto op, CompareOpFromName(node.AttrOr("op", "")));
    MQP_ASSIGN_OR_RETURN(auto lhs, parse_child(0));
    MQP_ASSIGN_OR_RETURN(auto rhs, parse_child(1));
    return Compare(op, std::move(lhs), std::move(rhs));
  }
  if (tag == "and" || tag == "or-expr") {
    MQP_ASSIGN_OR_RETURN(auto lhs, parse_child(0));
    MQP_ASSIGN_OR_RETURN(auto rhs, parse_child(1));
    return tag == "and" ? And(std::move(lhs), std::move(rhs))
                        : Or(std::move(lhs), std::move(rhs));
  }
  if (tag == "not") {
    MQP_ASSIGN_OR_RETURN(auto inner, parse_child(0));
    return Not(std::move(inner));
  }
  if (tag == "exists") {
    return Exists(node.AttrOr("path", ""),
                  node.AttrOr("side", "left") == "right" ? Side::kRight
                                                         : Side::kLeft);
  }
  return Status::ParseError("unknown expression element <" + tag + ">");
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kField:
      return (side_ == Side::kRight ? "right." : "") + text_;
    case Kind::kLiteral:
      return "'" + text_ + "'";
    case Kind::kCompare: {
      const char* sym = "=";
      switch (op_) {
        case CompareOp::kEq:
          sym = "=";
          break;
        case CompareOp::kNe:
          sym = "!=";
          break;
        case CompareOp::kLt:
          sym = "<";
          break;
        case CompareOp::kLe:
          sym = "<=";
          break;
        case CompareOp::kGt:
          sym = ">";
          break;
        case CompareOp::kGe:
          sym = ">=";
          break;
        case CompareOp::kHasPrefix:
          sym = "within";
          break;
      }
      return children_[0]->ToString() + " " + sym + " " +
             children_[1]->ToString();
    }
    case Kind::kAnd:
      return "(" + children_[0]->ToString() + " AND " +
             children_[1]->ToString() + ")";
    case Kind::kOr:
      return "(" + children_[0]->ToString() + " OR " +
             children_[1]->ToString() + ")";
    case Kind::kNot:
      return "NOT (" + children_[0]->ToString() + ")";
    case Kind::kExists:
      return "EXISTS(" + text_ + ")";
  }
  return "?";
}

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_ || text_ != other.text_ || side_ != other.side_ ||
      op_ != other.op_ || children_.size() != other.children_.size()) {
    return false;
  }
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

ExprPtr FieldLess(std::string path, std::string value) {
  return Expr::Compare(CompareOp::kLt, Expr::Field(std::move(path)),
                       Expr::Literal(std::move(value)));
}

ExprPtr FieldLessEq(std::string path, std::string value) {
  return Expr::Compare(CompareOp::kLe, Expr::Field(std::move(path)),
                       Expr::Literal(std::move(value)));
}

ExprPtr FieldGreater(std::string path, std::string value) {
  return Expr::Compare(CompareOp::kGt, Expr::Field(std::move(path)),
                       Expr::Literal(std::move(value)));
}

ExprPtr FieldEquals(std::string path, std::string value) {
  return Expr::Compare(CompareOp::kEq, Expr::Field(std::move(path)),
                       Expr::Literal(std::move(value)));
}

ExprPtr JoinEq(std::string left_path, std::string right_path) {
  return Expr::Compare(CompareOp::kEq,
                       Expr::Field(std::move(left_path), Side::kLeft),
                       Expr::Field(std::move(right_path), Side::kRight));
}

}  // namespace mqp::algebra
