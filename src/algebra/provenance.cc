#include "algebra/provenance.h"

#include "common/strings.h"
#include "xml/token_reader.h"
#include "xml/token_writer.h"

namespace mqp::algebra {

std::string_view ProvenanceActionName(ProvenanceAction a) {
  switch (a) {
    case ProvenanceAction::kForwarded:
      return "forwarded";
    case ProvenanceAction::kBound:
      return "bound";
    case ProvenanceAction::kProvidedData:
      return "provided-data";
    case ProvenanceAction::kReoptimized:
      return "reoptimized";
    case ProvenanceAction::kEvaluated:
      return "evaluated";
    case ProvenanceAction::kSpoofed:
      return "spoofed";
    case ProvenanceAction::kShed:
      return "shed";
  }
  return "forwarded";
}

Result<ProvenanceAction> ProvenanceActionFromName(std::string_view name) {
  if (name == "forwarded") return ProvenanceAction::kForwarded;
  if (name == "bound") return ProvenanceAction::kBound;
  if (name == "provided-data") return ProvenanceAction::kProvidedData;
  if (name == "reoptimized") return ProvenanceAction::kReoptimized;
  if (name == "evaluated") return ProvenanceAction::kEvaluated;
  if (name == "spoofed") return ProvenanceAction::kSpoofed;
  if (name == "shed") return ProvenanceAction::kShed;
  return Status::ParseError("unknown provenance action '" +
                            std::string(name) + "'");
}

bool Provenance::Visited(std::string_view server) const {
  for (const auto& e : entries_) {
    if (e.server == server) return true;
  }
  return false;
}

size_t Provenance::HopCount() const {
  size_t hops = 0;
  for (size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].server != entries_[i - 1].server) ++hops;
  }
  return hops;
}

size_t Provenance::DistinctServers() const {
  std::vector<std::string_view> seen;
  for (const auto& e : entries_) {
    bool found = false;
    for (auto s : seen) {
      if (s == e.server) {
        found = true;
        break;
      }
    }
    if (!found) seen.push_back(e.server);
  }
  return seen.size();
}

int Provenance::MaxStalenessMinutes() const {
  int max = 0;
  for (const auto& e : entries_) {
    if (e.staleness_minutes > max) max = e.staleness_minutes;
  }
  return max;
}

std::unique_ptr<xml::Node> Provenance::ToXml() const {
  auto node = xml::Node::Element("provenance");
  for (const auto& e : entries_) {
    xml::Node* v = node->AddElement("visit");
    v->SetAttr("server", e.server);
    v->SetAttr("time", mqp::FormatDouble(e.time));
    v->SetAttr("action", std::string(ProvenanceActionName(e.action)));
    if (!e.detail.empty()) v->SetAttr("detail", e.detail);
    if (e.staleness_minutes != 0) {
      v->SetAttr("staleness", std::to_string(e.staleness_minutes));
    }
  }
  return node;
}

Result<Provenance> Provenance::FromXml(const xml::Node& node) {
  Provenance prov;
  for (const xml::Node* v : node.Children("visit")) {
    ProvenanceEntry e;
    e.server = v->AttrOr("server", "");
    if (!mqp::ParseDouble(v->AttrOr("time", "0"), &e.time)) {
      return Status::ParseError("bad provenance time");
    }
    MQP_ASSIGN_OR_RETURN(e.action,
                         ProvenanceActionFromName(v->AttrOr("action", "")));
    e.detail = v->AttrOr("detail", "");
    int64_t staleness = 0;
    if (auto s = v->Attr("staleness")) {
      if (!mqp::ParseInt64(*s, &staleness)) {
        return Status::ParseError("bad provenance staleness");
      }
    }
    e.staleness_minutes = static_cast<int>(staleness);
    prov.Add(std::move(e));
  }
  return prov;
}

void Provenance::EmitTokens(xml::TokenWriter* w) const {
  w->Start("provenance");
  for (const auto& e : entries_) {
    w->Start("visit");
    w->Attr("server", e.server);
    w->Attr("time", mqp::FormatDouble(e.time));
    w->Attr("action", ProvenanceActionName(e.action));
    if (!e.detail.empty()) w->Attr("detail", e.detail);
    if (e.staleness_minutes != 0) {
      w->Attr("staleness", std::to_string(e.staleness_minutes));
    }
    w->End();
  }
  w->End();
}

Result<Provenance> Provenance::FromTokens(xml::TokenReader* r) {
  Provenance prov;
  xml::AttrList root_attrs;
  MQP_ASSIGN_OR_RETURN(xml::Token t, r->ReadAttrs(&root_attrs));
  xml::AttrList attrs;  // reused across visits
  while (t.type != xml::TokenType::kEndElement) {
    if (t.type == xml::TokenType::kStartElement) {
      if (t.name == "visit") {
        MQP_ASSIGN_OR_RETURN(xml::Token vt, r->ReadAttrs(&attrs));
        ProvenanceEntry e;
        e.server = attrs.Get("server");
        if (!mqp::ParseDouble(attrs.Get("time", "0"), &e.time)) {
          return Status::ParseError("bad provenance time");
        }
        MQP_ASSIGN_OR_RETURN(
            e.action, ProvenanceActionFromName(attrs.Get("action")));
        e.detail = attrs.Get("detail");
        int64_t staleness = 0;
        if (const std::string* s = attrs.Find("staleness")) {
          if (!mqp::ParseInt64(*s, &staleness)) {
            return Status::ParseError("bad provenance staleness");
          }
        }
        e.staleness_minutes = static_cast<int>(staleness);
        prov.Add(std::move(e));
        if (vt.type != xml::TokenType::kEndElement) {
          MQP_RETURN_IF_ERROR(r->SkipToElementEnd());
        }
      } else {
        MQP_RETURN_IF_ERROR(r->SkipToElementEnd());
      }
    }
    if (!r->Advance()) return r->status();
    t = r->current();
  }
  return prov;
}

}  // namespace mqp::algebra
