// Equi-width field histograms — the richest of the §5.1 statistics a
// server can attach to a sub-plan it declines to evaluate ("S could
// annotate B with its cardinality, the unique cardinality of the join
// column, or even a histogram"). The cost model uses them for selectivity
// estimation instead of fixed heuristics.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/node.h"

namespace mqp::xml {
class TokenReader;
class TokenWriter;
}  // namespace mqp::xml

namespace mqp::algebra {

/// One data item: an immutable XML element (defined here so both the plan
/// and histogram headers can share it).
using Item = std::shared_ptr<const xml::Node>;
/// A bag of items — the result of evaluating a (sub-)plan.
using ItemSet = std::vector<Item>;

/// \brief Equi-width histogram over a numeric item field.
struct FieldHistogram {
  std::string field;
  double min = 0;
  double max = 0;
  std::vector<uint64_t> counts;  ///< bucket occupancy, equi-width
  uint64_t total = 0;            ///< numeric values histogrammed

  /// Builds a histogram from `items`; nullopt when fewer than two items
  /// carry a numeric value for `field`.
  static std::optional<FieldHistogram> Build(const ItemSet& items,
                                             const std::string& field,
                                             size_t buckets = 8);

  /// Estimated fraction of values strictly below `v` (linear
  /// interpolation within the containing bucket).
  double FractionBelow(double v) const;

  /// Estimated fraction of values equal to `v` (bucket mass spread evenly
  /// over the bucket's width).
  double FractionEquals(double v) const;

  /// Serializes as a <histogram> element.
  std::unique_ptr<xml::Node> ToXml() const;

  /// Parses a <histogram> element produced by ToXml().
  static Result<FieldHistogram> FromXml(const xml::Node& node);

  /// Streaming twin of ToXml: emits the same bytes without building a DOM.
  void EmitTokens(xml::TokenWriter* w) const;

  /// Streaming twin of FromXml. Precondition: current token is the
  /// <histogram> kStartElement; returns with its kEndElement consumed.
  static Result<FieldHistogram> FromTokens(xml::TokenReader* r);

  bool operator==(const FieldHistogram& other) const = default;
};

}  // namespace mqp::algebra
