#include "algebra/histogram.h"

#include <algorithm>
#include <cmath>

#include "algebra/expr.h"
#include "common/strings.h"
#include "xml/token_reader.h"
#include "xml/token_writer.h"

namespace mqp::algebra {

std::optional<FieldHistogram> FieldHistogram::Build(const ItemSet& items,
                                                    const std::string& field,
                                                    size_t buckets) {
  if (buckets == 0) return std::nullopt;
  std::vector<double> values;
  values.reserve(items.size());
  auto ref = Expr::Field(field);
  for (const auto& item : items) {
    auto v = ref->EvalValue(*item);
    double d = 0;
    if (v && mqp::ParseDouble(v->text, &d)) values.push_back(d);
  }
  if (values.size() < 2) return std::nullopt;
  FieldHistogram h;
  h.field = field;
  auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  h.min = *lo;
  h.max = *hi;
  h.counts.assign(buckets, 0);
  const double width = (h.max - h.min) / static_cast<double>(buckets);
  for (double d : values) {
    size_t b = width <= 0
                   ? 0
                   : static_cast<size_t>((d - h.min) / width);
    if (b >= buckets) b = buckets - 1;  // max value lands in last bucket
    ++h.counts[b];
  }
  h.total = values.size();
  return h;
}

double FieldHistogram::FractionBelow(double v) const {
  if (total == 0 || counts.empty()) return 0.5;
  if (v <= min) return 0;
  if (v > max) return 1;
  const double width =
      (max - min) / static_cast<double>(counts.size());
  double below = 0;
  if (width <= 0) {
    // Degenerate single-value histogram.
    return v > min ? 1.0 : 0.0;
  }
  size_t bucket = static_cast<size_t>((v - min) / width);
  if (bucket >= counts.size()) bucket = counts.size() - 1;
  for (size_t i = 0; i < bucket; ++i) {
    below += static_cast<double>(counts[i]);
  }
  // Linear interpolation inside the containing bucket.
  const double bucket_lo = min + static_cast<double>(bucket) * width;
  below += static_cast<double>(counts[bucket]) * ((v - bucket_lo) / width);
  return below / static_cast<double>(total);
}

double FieldHistogram::FractionEquals(double v) const {
  if (total == 0 || counts.empty()) return 0.1;
  if (v < min || v > max) return 0;
  const double width =
      (max - min) / static_cast<double>(counts.size());
  if (width <= 0) return 1.0;  // all values identical
  size_t bucket = static_cast<size_t>((v - min) / width);
  if (bucket >= counts.size()) bucket = counts.size() - 1;
  // Assume the bucket's mass is spread over ~width distinct values.
  const double bucket_fraction =
      static_cast<double>(counts[bucket]) / static_cast<double>(total);
  return bucket_fraction / std::max(1.0, width);
}

std::unique_ptr<xml::Node> FieldHistogram::ToXml() const {
  auto node = xml::Node::Element("histogram");
  node->SetAttr("field", field);
  node->SetAttr("min", mqp::FormatDouble(min));
  node->SetAttr("max", mqp::FormatDouble(max));
  node->SetAttr("total", std::to_string(total));
  for (uint64_t c : counts) {
    node->AddElement("b")->SetAttr("c", std::to_string(c));
  }
  return node;
}

Result<FieldHistogram> FieldHistogram::FromXml(const xml::Node& node) {
  FieldHistogram h;
  h.field = node.AttrOr("field", "");
  if (h.field.empty()) {
    return Status::ParseError("<histogram> missing field attribute");
  }
  if (!mqp::ParseDouble(node.AttrOr("min", ""), &h.min) ||
      !mqp::ParseDouble(node.AttrOr("max", ""), &h.max)) {
    return Status::ParseError("<histogram> has bad min/max");
  }
  int64_t total = 0;
  if (!mqp::ParseInt64(node.AttrOr("total", ""), &total) || total < 0) {
    return Status::ParseError("<histogram> has bad total");
  }
  h.total = static_cast<uint64_t>(total);
  for (const xml::Node* b : node.Children("b")) {
    int64_t c = 0;
    if (!mqp::ParseInt64(b->AttrOr("c", ""), &c) || c < 0) {
      return Status::ParseError("<histogram> has a bad bucket");
    }
    h.counts.push_back(static_cast<uint64_t>(c));
  }
  if (h.counts.empty()) {
    return Status::ParseError("<histogram> has no buckets");
  }
  return h;
}

void FieldHistogram::EmitTokens(xml::TokenWriter* w) const {
  w->Start("histogram");
  w->Attr("field", field);
  w->Attr("min", mqp::FormatDouble(min));
  w->Attr("max", mqp::FormatDouble(max));
  w->Attr("total", std::to_string(total));
  for (uint64_t c : counts) {
    w->Start("b");
    w->Attr("c", std::to_string(c));
    w->End();
  }
  w->End();
}

Result<FieldHistogram> FieldHistogram::FromTokens(xml::TokenReader* r) {
  FieldHistogram h;
  xml::AttrList attrs;
  MQP_ASSIGN_OR_RETURN(xml::Token t, r->ReadAttrs(&attrs));
  h.field = attrs.Get("field");
  if (h.field.empty()) {
    return Status::ParseError("<histogram> missing field attribute");
  }
  if (!mqp::ParseDouble(attrs.Get("min"), &h.min) ||
      !mqp::ParseDouble(attrs.Get("max"), &h.max)) {
    return Status::ParseError("<histogram> has bad min/max");
  }
  int64_t total = 0;
  if (!mqp::ParseInt64(attrs.Get("total"), &total) || total < 0) {
    return Status::ParseError("<histogram> has bad total");
  }
  h.total = static_cast<uint64_t>(total);
  while (t.type != xml::TokenType::kEndElement) {
    if (t.type == xml::TokenType::kStartElement) {
      if (t.name == "b") {
        // Buckets are the most numerous wire element; read the single
        // "c" attribute straight off the token stream, no copies.
        int64_t c = -1;
        while (true) {
          if (!r->Advance()) return r->status();
          const xml::Token& bt = r->current();
          if (bt.type == xml::TokenType::kAttr) {
            if (bt.name == "c" && !mqp::ParseInt64(bt.value, &c)) c = -1;
          } else if (bt.type == xml::TokenType::kStartElement) {
            MQP_RETURN_IF_ERROR(r->SkipToElementEnd());
          } else if (bt.type == xml::TokenType::kEndElement) {
            break;
          }  // text: ignored
        }
        if (c < 0) {
          return Status::ParseError("<histogram> has a bad bucket");
        }
        h.counts.push_back(static_cast<uint64_t>(c));
      } else {
        MQP_RETURN_IF_ERROR(r->SkipToElementEnd());
      }
    }
    if (!r->Advance()) return r->status();
    t = r->current();
  }
  if (h.counts.empty()) {
    return Status::ParseError("<histogram> has no buckets");
  }
  return h;
}

}  // namespace mqp::algebra
