// Scalar/boolean expression trees used in selection predicates, join
// conditions and order keys.
//
// Expressions evaluate against one XML item (for predicates) or two (for
// join conditions, via the `side` of each field reference). Field references
// use XPath-lite paths relative to the item element.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/node.h"

namespace mqp::xml {
class AttrList;
class TokenReader;
class TokenWriter;
}  // namespace mqp::xml

namespace mqp::algebra {

/// Comparison operators. kHasPrefix tests category-path containment: the
/// left value equals the right, or extends it at a '/' boundary
/// ("USA/OR" has-prefix-matches "USA/OR/Portland" but not "USA/ORx").
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kHasPrefix };

std::string_view CompareOpName(CompareOp op);
Result<CompareOp> CompareOpFromName(std::string_view name);

/// \brief A scalar value: a string that compares numerically when both
/// sides parse as numbers (XPath 1.0-style loose typing).
struct Value {
  std::string text;

  /// <0, 0, >0 like strcmp; numeric when both sides are numeric.
  int Compare(const Value& other) const;
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Which input a field reference reads from (join conditions read both).
enum class Side { kLeft, kRight };

/// \brief Immutable expression node.
class Expr {
 public:
  enum class Kind {
    kField,    ///< field reference: XPath-lite path into an item
    kLiteral,  ///< constant
    kCompare,  ///< binary comparison of two scalar expressions
    kAnd,
    kOr,
    kNot,
    kExists,  ///< true iff the field path matches something
  };

  Kind kind() const { return kind_; }

  // --- factories ------------------------------------------------------------
  static ExprPtr Field(std::string path, Side side = Side::kLeft);
  static ExprPtr Literal(std::string value);
  static ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr And(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr inner);
  static ExprPtr Exists(std::string path, Side side = Side::kLeft);

  // --- evaluation -------------------------------------------------------------

  /// Evaluates a boolean expression over `left` (and `right` for join
  /// conditions; pass nullptr otherwise).
  bool EvalBool(const xml::Node& left, const xml::Node* right = nullptr) const;

  /// Evaluates a scalar (field/literal) expression; nullopt if the field
  /// is absent.
  std::optional<Value> EvalValue(const xml::Node& left,
                                 const xml::Node* right = nullptr) const;

  // --- serialization ----------------------------------------------------------

  /// Expression as an XML element (see plan_xml.cc for the format).
  std::unique_ptr<xml::Node> ToXml() const;

  /// Parses an expression element produced by ToXml().
  static Result<ExprPtr> FromXml(const xml::Node& node);

  /// Streaming twin of ToXml: emits the same bytes without building a DOM.
  void EmitTokens(xml::TokenWriter* w) const;

  /// Streaming twin of FromXml. Precondition: the reader's current token
  /// is the expression element's kStartElement; returns with its
  /// kEndElement consumed.
  static Result<ExprPtr> FromTokens(xml::TokenReader* r);

  /// Pool-sharing variant for callers decoding many expressions (the
  /// plan decoder): `pool` holds one reusable AttrList per recursion
  /// depth and this expression uses slots from `depth` down.
  static Result<ExprPtr> FromTokens(xml::TokenReader* r,
                                    std::deque<xml::AttrList>* pool,
                                    size_t depth);

  /// Human-readable form, e.g. "price < 10".
  std::string ToString() const;

  /// Structural equality.
  bool Equals(const Expr& other) const;

  // --- introspection -----------------------------------------------------------
  const std::string& field_path() const { return text_; }
  const std::string& literal_value() const { return text_; }
  Side side() const { return side_; }
  CompareOp compare_op() const { return op_; }
  const ExprPtr& lhs() const { return children_[0]; }
  const ExprPtr& rhs() const { return children_[1]; }
  const ExprPtr& inner() const { return children_[0]; }
  const std::vector<ExprPtr>& children() const { return children_; }

 private:
  explicit Expr(Kind kind) : kind_(kind) {}

  /// Single-allocation construction (make_shared); decode hot path.
  /// Non-const so the factories can fill fields before publishing.
  static std::shared_ptr<Expr> New(Kind kind);

  Kind kind_;
  std::string text_;  // field path or literal value
  Side side_ = Side::kLeft;
  CompareOp op_ = CompareOp::kEq;
  std::vector<ExprPtr> children_;
};

// --- convenience builders (quickstart-friendly) -------------------------------

/// price < 10  (numeric-aware)
ExprPtr FieldLess(std::string path, std::string value);
ExprPtr FieldLessEq(std::string path, std::string value);
ExprPtr FieldGreater(std::string path, std::string value);
ExprPtr FieldEquals(std::string path, std::string value);

/// left.path == right.path — an equi-join condition.
ExprPtr JoinEq(std::string left_path, std::string right_path);

}  // namespace mqp::algebra
