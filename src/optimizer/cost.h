// Cardinality and byte estimation for MQP sub-plans.
//
// MQP servers must materialize partial results and ship the mutated plan to
// the next server, so the optimizer's central quantity is the *serialized
// size* of a (sub-)plan result (paper §2: "their size matters").
// Annotations carried in the plan (§5.1) override defaults when present.
#pragma once

#include "algebra/plan.h"

namespace mqp::optimizer {

/// \brief Estimated result shape of a plan node.
struct CostEstimate {
  double rows = 0;
  double bytes = 0;
};

/// \brief Tunable estimation parameters.
struct CostParams {
  double default_leaf_rows = 100;    ///< unknown URL/URN cardinality
  double avg_item_bytes = 150;       ///< fallback serialized item size
  double eq_selectivity = 0.10;      ///< field = literal
  double range_selectivity = 0.33;   ///< <, <=, >, >=
  double ne_selectivity = 0.90;
  double join_selectivity = 0.05;    ///< |L⋈R| = sel * |L| * |R| fallback
  double groups_fraction = 0.10;     ///< distinct groups per input row
};

/// \brief Recursive bottom-up estimator.
class CostModel {
 public:
  explicit CostModel(CostParams params = {}) : params_(params) {}

  const CostParams& params() const { return params_; }

  /// Estimates the result of evaluating `node`. Constant data nodes report
  /// exact values; annotated nodes use their annotations; everything else
  /// uses the heuristics above.
  CostEstimate Estimate(const algebra::PlanNode& node) const;

  /// Selectivity of a predicate (heuristic over its operator structure).
  double Selectivity(const algebra::Expr& pred) const;

  /// Selectivity of `pred` against an input carrying `annotations` —
  /// histogram-based (§5.1) when one matches the predicate's field,
  /// falling back to the structural heuristic.
  double SelectivityWith(const algebra::Expr& pred,
                         const algebra::Annotations& annotations) const;

 private:
  CostParams params_;
};

}  // namespace mqp::optimizer
