// Plan rewrites specific to mutant query processing (paper §2 and §6):
//
//  * select pushdown through union/or — Figure 4(a) pushes the select
//    through the union produced by URN resolution;
//  * or-elimination — §4.2's rules A|B → A, A|B → B, chosen by cost,
//    locality, or currency preference (§4.3);
//  * consolidation — reordering joins so locally evaluable inputs come
//    together;
//  * absorption — the (A ⋈ X) ⋈ B → (A ⋈ B) ⋈ X rewrite, applied when
//    the estimate |A ⋈ B| ≤ |A| says it shrinks the shipped partial
//    result.
//
// All rewrites mutate the plan in place and return how many times they
// fired (for the ablation benches).
#pragma once

#include <string>
#include <vector>

#include "algebra/plan.h"
#include "optimizer/cost.h"
#include "optimizer/evaluable.h"

namespace mqp::optimizer {

/// \brief Pushes select through union and or nodes:
/// select(p, union(x1..xn)) → union(select(p,x1)..select(p,xn)).
/// Returns the number of pushdowns performed.
int PushSelectThroughUnion(algebra::PlanNode* root);

/// How to pick a branch of an Or node (§4.3 user preference).
enum class OrPreference {
  kCheapest,        ///< minimize estimated shipped bytes
  kPreferLocal,     ///< locally evaluable branch first, then cheapest
  kPreferCurrent,   ///< minimize staleness bound, then cheapest
  kPreferComplete,  ///< maximize source count (completeness), then currency
};

/// \brief Maximum staleness annotation in the sub-DAG (minutes); the
/// currency bound of the data below `node`.
int MaxStalenessMinutes(const algebra::PlanNode& node);

/// \brief Index of the preferred alternative of an Or node.
size_t ChooseOrBranch(const algebra::PlanNode& or_node,
                      const Locality& locality, const CostModel& cost,
                      OrPreference pref);

/// \brief Replaces every Or node with its preferred alternative.
/// Returns the number of eliminations.
int EliminateOrNodes(algebra::PlanNode* root, const Locality& locality,
                     const CostModel& cost,
                     OrPreference pref = OrPreference::kPreferLocal);

/// \brief Field-provenance probe: true if items produced by `node` are
/// known to carry a field at `path`. Conservative (false on unknowns);
/// used to validate join reorderings. The locality's url_provides_field
/// callback extends the probe through local URL leaves.
bool NodeProvidesField(const algebra::PlanNode& node, const std::string& path,
                       const Locality& locality = {});

/// \brief Consolidation: rewrites join(join(A, X), B) → join(join(A, B), X)
/// when A and B are locally evaluable, X is not, and the outer join's
/// left-side fields are provided by A (checked via NodeProvidesField).
/// Returns the number of reorders.
int ConsolidateJoins(algebra::PlanNode* root, const Locality& locality);

/// \brief Absorption: the same reorder, but applied only when the cost
/// model says |A ⋈ B| ≤ |A| — i.e. evaluating (A ⋈ B) locally shrinks
/// the partial result shipped onward (paper §2's rewrite example).
int ApplyAbsorption(algebra::PlanNode* root, const Locality& locality,
                    const CostModel& cost);

/// Ablation knob (the PR 3/4 pattern): false disables PushTopKBounds,
/// restoring the ship-everything reference — remote leaves return full
/// result sets and TopN truncates at the consumer. Flip only while the
/// process is quiescent.
void set_use_distributed_topk(bool on);
bool use_distributed_topk();

/// \brief Distributed top-k bound pushdown (DESIGN.md §10): for each
/// bounded TopN(k, field), descends through non-distinct Union nodes and
/// stamps a TopKBound annotation (order_field, ascending, k) on every
/// maximal remote single-server sub-plan — no Display/Urn nodes, at
/// least one URL leaf, all URL leaves on one non-local server. The
/// hosting peer's top-k coordinator turns annotated sub-plans into
/// bounded, score-ordered, batched fetch/subquery requests. Distinct
/// unions block the descent (per-branch truncation could collapse
/// duplicates below k distinct rows). Returns the number of sub-plans
/// stamped; already-stamped nodes are left untouched (no wire-cache
/// churn). No-op when use_distributed_topk() is false.
int PushTopKBounds(algebra::PlanNode* root, const Locality& locality);

/// \brief §4.2 Example 3's transformation: E − (A ∪ B) → (E − A) − B,
/// applied when some union branch is locally evaluable — the partially
/// evaluated difference "may be much smaller than res(E) itself".
/// Locally evaluable branches are moved to the *front* so they subtract
/// en route. Returns the number of splits.
int SplitDifferenceOverUnion(algebra::PlanNode* root,
                             const Locality& locality);

}  // namespace mqp::optimizer
