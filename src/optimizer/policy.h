// PolicyManager (paper Figure 2): decides which locally evaluable
// sub-plans the query engine should evaluate now, and which to *defer*
// (paper §6: "avoiding local execution of operators that increase the
// partial result size unjustifiably"). Deferred nodes are annotated with
// statistics instead (§5.1), so downstream servers can plan better.
#pragma once

#include <string>
#include <vector>

#include "algebra/plan.h"
#include "optimizer/cost.h"

namespace mqp::optimizer {

/// \brief Deferment policy knobs.
struct PolicyConfig {
  /// Master switch; when false everything evaluable is evaluated.
  bool enable_deferment = true;

  /// Defer when the estimated result is more than this factor larger than
  /// the inputs already in the plan (evaluating would bloat the MQP).
  double growth_limit = 1.25;

  /// Defer anything whose estimated result exceeds this many bytes.
  uint64_t max_result_bytes = 4u << 20;

  /// Attach cardinality/byte annotations to deferred sub-plans.
  bool annotate_deferred = true;
};

/// \brief One decision about one evaluable sub-plan.
struct EvalDecision {
  algebra::PlanNode* subplan = nullptr;
  bool evaluate = true;
  CostEstimate estimate;
  std::string reason;  ///< "evaluate", "defer:growth", "defer:size"
};

/// \brief Applies the deferment policy to the optimizer's candidates.
class PolicyManager {
 public:
  explicit PolicyManager(PolicyConfig config = {}) : config_(config) {}

  const PolicyConfig& config() const { return config_; }

  /// Decides each candidate; when annotate_deferred is set, deferred
  /// sub-plans get card/bytes annotations written into the plan.
  std::vector<EvalDecision> Decide(
      const std::vector<algebra::PlanNode*>& candidates,
      const CostModel& cost) const;

 private:
  PolicyConfig config_;
};

/// \brief Total estimated bytes of the leaves under `node` — what the plan
/// already carries before evaluation.
double LeafBytes(const algebra::PlanNode& node, const CostModel& cost);

}  // namespace mqp::optimizer
