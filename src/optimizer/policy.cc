#include "optimizer/policy.h"

namespace mqp::optimizer {

using algebra::PlanNode;

double LeafBytes(const PlanNode& node, const CostModel& cost) {
  if (node.is_leaf()) return cost.Estimate(node).bytes;
  double total = 0;
  for (const auto& c : node.children()) {
    total += LeafBytes(*c, cost);
  }
  return total;
}

std::vector<EvalDecision> PolicyManager::Decide(
    const std::vector<PlanNode*>& candidates, const CostModel& cost) const {
  std::vector<EvalDecision> out;
  out.reserve(candidates.size());
  for (PlanNode* node : candidates) {
    EvalDecision d;
    d.subplan = node;
    d.estimate = cost.Estimate(*node);
    d.evaluate = true;
    d.reason = "evaluate";
    if (config_.enable_deferment) {
      if (d.estimate.bytes >
          static_cast<double>(config_.max_result_bytes)) {
        d.evaluate = false;
        d.reason = "defer:size";
      } else {
        const double input_bytes = LeafBytes(*node, cost);
        if (input_bytes > 0 &&
            d.estimate.bytes > config_.growth_limit * input_bytes) {
          d.evaluate = false;
          d.reason = "defer:growth";
        }
      }
      if (!d.evaluate && config_.annotate_deferred) {
        node->annotations().cardinality =
            static_cast<uint64_t>(d.estimate.rows);
        node->annotations().bytes = static_cast<uint64_t>(d.estimate.bytes);
      }
    }
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace mqp::optimizer
