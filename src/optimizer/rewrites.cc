#include "optimizer/rewrites.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

namespace mqp::optimizer {

using algebra::Expr;
using algebra::ExprPtr;
using algebra::OpType;
using algebra::PlanNode;
using algebra::PlanNodePtr;
using algebra::Side;

namespace {

// Applies `fn` to every distinct node, children first (post-order).
template <typename Fn>
void ForEachNodePostOrder(PlanNode* node,
                          std::unordered_set<const PlanNode*>* seen, Fn fn) {
  if (!seen->insert(node).second) return;
  for (const auto& c : node->children()) {
    ForEachNodePostOrder(c.get(), seen, fn);
  }
  fn(node);
}

template <typename Fn>
void ForEachNodePostOrder(PlanNode* root, Fn fn) {
  std::unordered_set<const PlanNode*> seen;
  ForEachNodePostOrder(root, &seen, fn);
}

}  // namespace

int PushSelectThroughUnion(PlanNode* root) {
  int count = 0;
  ForEachNodePostOrder(root, [&count](PlanNode* node) {
    // Repeat locally until fixpoint: a pushed select can expose another.
    while (node->type() == OpType::kSelect &&
           !node->children().empty() &&
           (node->child(0)->type() == OpType::kUnion ||
            node->child(0)->type() == OpType::kOr)) {
      const PlanNodePtr& u = node->child(0);
      std::vector<PlanNodePtr> pushed;
      pushed.reserve(u->children().size());
      for (const auto& c : u->children()) {
        pushed.push_back(PlanNode::Select(node->expr(), c));
      }
      PlanNodePtr replacement =
          u->type() == OpType::kUnion
              ? PlanNode::Union(std::move(pushed), u->distinct())
              : PlanNode::Or(std::move(pushed));
      replacement->annotations() = u->annotations();
      node->MorphTo(*replacement);
      ++count;
      // After the morph, `node` is a union/or of selects; recurse into the
      // new selects for nested unions.
      for (const auto& c : node->children()) {
        count += PushSelectThroughUnion(c.get());
      }
      break;
    }
  });
  return count;
}

int MaxStalenessMinutes(const PlanNode& node) {
  int max = node.annotations().staleness_minutes.value_or(0);
  for (const auto& c : node.children()) {
    max = std::max(max, MaxStalenessMinutes(*c));
  }
  return max;
}

size_t ChooseOrBranch(const PlanNode& or_node, const Locality& locality,
                      const CostModel& cost, OrPreference pref) {
  const auto& alts = or_node.children();
  if (alts.size() <= 1) return 0;
  size_t best = 0;
  auto bytes_of = [&](size_t i) { return cost.Estimate(*alts[i]).bytes; };
  switch (pref) {
    case OrPreference::kCheapest: {
      for (size_t i = 1; i < alts.size(); ++i) {
        if (bytes_of(i) < bytes_of(best)) best = i;
      }
      return best;
    }
    case OrPreference::kPreferLocal: {
      auto rank = [&](size_t i) {
        return IsLocallyEvaluable(*alts[i], locality) ? 0 : 1;
      };
      for (size_t i = 1; i < alts.size(); ++i) {
        if (rank(i) < rank(best) ||
            (rank(i) == rank(best) && bytes_of(i) < bytes_of(best))) {
          best = i;
        }
      }
      return best;
    }
    case OrPreference::kPreferCurrent: {
      auto staleness = [&](size_t i) { return MaxStalenessMinutes(*alts[i]); };
      for (size_t i = 1; i < alts.size(); ++i) {
        if (staleness(i) < staleness(best) ||
            (staleness(i) == staleness(best) &&
             bytes_of(i) < bytes_of(best))) {
          best = i;
        }
      }
      return best;
    }
    case OrPreference::kPreferComplete: {
      // More sources under the branch = the broader answer (e.g. R ∪ S
      // over R alone in §4.3's binding); ties go to the fresher branch.
      auto leaves = [&](size_t i) {
        return alts[i]->UrlLeaves().size() + alts[i]->UrnLeaves().size() +
               (alts[i]->IsConstant() ? 1 : 0);
      };
      auto staleness = [&](size_t i) { return MaxStalenessMinutes(*alts[i]); };
      for (size_t i = 1; i < alts.size(); ++i) {
        if (leaves(i) > leaves(best) ||
            (leaves(i) == leaves(best) &&
             staleness(i) < staleness(best)) ||
            (leaves(i) == leaves(best) &&
             staleness(i) == staleness(best) &&
             bytes_of(i) < bytes_of(best))) {
          best = i;
        }
      }
      return best;
    }
  }
  return best;
}

int EliminateOrNodes(PlanNode* root, const Locality& locality,
                     const CostModel& cost, OrPreference pref) {
  int count = 0;
  ForEachNodePostOrder(root, [&](PlanNode* node) {
    if (node->type() != OpType::kOr) return;
    const size_t pick = ChooseOrBranch(*node, locality, cost, pref);
    node->MorphTo(*node->child(pick));
    ++count;
  });
  return count;
}

bool NodeProvidesField(const PlanNode& node, const std::string& path,
                       const Locality& locality) {
  switch (node.type()) {
    case OpType::kXmlData: {
      if (node.items().empty()) return false;
      // Probe: every item must carry the field.
      auto field = Expr::Field(path);
      for (const auto& item : node.items()) {
        if (!field->EvalValue(*item)) return false;
      }
      return true;
    }
    case OpType::kUrl:
      return locality.is_local_url(node) &&
             locality.url_provides_field(node, path);
    case OpType::kSelect:
    case OpType::kTopN:
    case OpType::kDisplay:
      return NodeProvidesField(*node.child(0), path, locality);
    case OpType::kProject: {
      const auto& fs = node.fields();
      if (std::find(fs.begin(), fs.end(), path) == fs.end()) return false;
      return NodeProvidesField(*node.child(0), path, locality);
    }
    case OpType::kJoin:
      return NodeProvidesField(*node.child(0), path, locality) ||
             NodeProvidesField(*node.child(1), path, locality);
    case OpType::kLeftOuterJoin:
      // Only the left side's fields are guaranteed on every output item.
      return NodeProvidesField(*node.child(0), path, locality);
    case OpType::kUnion:
    case OpType::kOr: {
      if (node.children().empty()) return false;
      for (const auto& c : node.children()) {
        if (!NodeProvidesField(*c, path, locality)) return false;
      }
      return true;
    }
    default:
      return false;  // URNs/aggregates: unknown, be conservative
  }
}

namespace {

// Collects the field paths an expression reads from `side`.
void CollectFields(const Expr& e, Side side, std::vector<std::string>* out) {
  switch (e.kind()) {
    case Expr::Kind::kField:
    case Expr::Kind::kExists:
      if (e.side() == side) out->push_back(e.field_path());
      break;
    default:
      for (const auto& c : e.children()) {
        CollectFields(*c, side, out);
      }
  }
}

// Matches join2(join1(A, X), B) with A, B evaluable and X not, where
// join2's left fields are provided by A. On success performs the reorder
// join1'(join2'(A, B), X).
bool TryReorderJoin(PlanNode* join2, const Locality& locality,
                    const CostModel* absorption_cost) {
  if (join2->type() != OpType::kJoin) return false;
  const PlanNodePtr& inner = join2->child(0);
  const PlanNodePtr& b = join2->child(1);
  if (inner->type() != OpType::kJoin) return false;
  const PlanNodePtr& a = inner->child(0);
  const PlanNodePtr& x = inner->child(1);
  if (!IsLocallyEvaluable(*a, locality) ||
      !IsLocallyEvaluable(*b, locality) ||
      IsLocallyEvaluable(*x, locality) ||
      IsLocallyEvaluable(*inner, locality)) {
    return false;
  }
  // Soundness: join2's left-side fields must come from A, not X.
  if (join2->expr() != nullptr) {
    std::vector<std::string> left_fields;
    CollectFields(*join2->expr(), Side::kLeft, &left_fields);
    for (const auto& f : left_fields) {
      if (!NodeProvidesField(*a, f, locality)) return false;
    }
  }
  // Absorption gate: only rewrite when |A ⋈ B| <= |A|.
  if (absorption_cost != nullptr) {
    PlanNodePtr probe = PlanNode::Join(join2->expr(), a, b);
    const double ab_rows = absorption_cost->Estimate(*probe).rows;
    const double a_rows = absorption_cost->Estimate(*a).rows;
    if (ab_rows > a_rows) return false;
  }
  ExprPtr c1 = inner->expr();
  ExprPtr c2 = join2->expr();
  PlanNodePtr rewritten =
      PlanNode::Join(c1, PlanNode::Join(c2, a, b), x);
  join2->MorphTo(*rewritten);
  return true;
}

int ReorderAll(PlanNode* root, const Locality& locality,
               const CostModel* absorption_cost) {
  int count = 0;
  ForEachNodePostOrder(root, [&](PlanNode* node) {
    if (TryReorderJoin(node, locality, absorption_cost)) ++count;
  });
  return count;
}

}  // namespace

int ConsolidateJoins(PlanNode* root, const Locality& locality) {
  return ReorderAll(root, locality, nullptr);
}

int SplitDifferenceOverUnion(PlanNode* root, const Locality& locality) {
  int count = 0;
  ForEachNodePostOrder(root, [&](PlanNode* node) {
    if (node->type() != OpType::kDifference) return;
    const PlanNodePtr& subtrahend = node->child(1);
    if (subtrahend->type() != OpType::kUnion ||
        subtrahend->children().size() < 2 || subtrahend->distinct()) {
      return;
    }
    // Only worthwhile when at least one branch can be subtracted here.
    bool any_local = false;
    for (const auto& b : subtrahend->children()) {
      if (IsLocallyEvaluable(*b, locality)) {
        any_local = true;
        break;
      }
    }
    if (!any_local) return;
    // E − (b1 ∪ b2 ∪ ...) → ((E − blocal) − b2) − ... with locally
    // evaluable branches first.
    std::vector<PlanNodePtr> branches = subtrahend->children();
    std::stable_sort(branches.begin(), branches.end(),
                     [&](const PlanNodePtr& a, const PlanNodePtr& b) {
                       return IsLocallyEvaluable(*a, locality) &&
                              !IsLocallyEvaluable(*b, locality);
                     });
    PlanNodePtr acc = node->child(0);
    for (const auto& b : branches) {
      acc = PlanNode::Difference(acc, b);
    }
    node->MorphTo(*acc);
    ++count;
  });
  return count;
}

int ApplyAbsorption(PlanNode* root, const Locality& locality,
                    const CostModel& cost) {
  return ReorderAll(root, locality, &cost);
}

namespace {

bool g_use_distributed_topk = true;

/// A remote single-server unit: a sub-plan one non-local peer can answer
/// as a whole — no routing pseudo-operators, no unresolved names, every
/// URL leaf on the same server, and that server is not us.
bool IsRemoteSingleServerUnit(const PlanNode& node, const Locality& locality,
                              std::string* server) {
  if (node.type() == OpType::kDisplay || node.type() == OpType::kUrn ||
      node.type() == OpType::kOr) {
    return false;
  }
  if (node.type() == OpType::kUrl) {
    if (locality.is_local_url(node)) return false;
    if (server->empty()) {
      *server = node.url();
    } else if (*server != node.url()) {
      return false;
    }
    return true;
  }
  for (const auto& c : node.children()) {
    if (!IsRemoteSingleServerUnit(*c, locality, server)) return false;
  }
  return true;
}

int StampTopK(PlanNode* node, const algebra::TopKBound& bound,
              const Locality& locality) {
  // Descend through non-distinct unions only: each branch keeps its own
  // full contribution under concatenating union, so per-branch bounds
  // are sound; a distinct union could need more than k rows per branch.
  if (node->type() == OpType::kUnion && !node->distinct()) {
    int count = 0;
    for (const auto& c : node->children()) {
      count += StampTopK(c.get(), bound, locality);
    }
    return count;
  }
  if (node->type() == OpType::kXmlData) return 0;  // preloaded at the heap
  std::string server;
  if (!IsRemoteSingleServerUnit(*node, locality, &server) || server.empty()) {
    return 0;
  }
  // Const read first: the mutating annotations() accessor bumps the
  // node's stamp, which would invalidate the wire cache on every hop.
  if (std::as_const(*node).annotations().topk == bound) return 0;
  node->annotations().topk = bound;
  return 1;
}

}  // namespace

void set_use_distributed_topk(bool on) { g_use_distributed_topk = on; }
bool use_distributed_topk() { return g_use_distributed_topk; }

int PushTopKBounds(PlanNode* root, const Locality& locality) {
  if (!g_use_distributed_topk) return 0;
  int count = 0;
  ForEachNodePostOrder(root, [&](PlanNode* node) {
    if (node->type() != OpType::kTopN || !node->has_limit() ||
        node->limit() == 0 || node->order_field().empty() ||
        node->children().empty()) {
      return;
    }
    algebra::TopKBound bound;
    bound.order_field = node->order_field();
    bound.ascending = node->ascending();
    bound.k = node->limit();
    count += StampTopK(node->child(0).get(), bound, locality);
  });
  return count;
}

}  // namespace mqp::optimizer
