#include "optimizer/cost.h"

#include <algorithm>

#include "common/strings.h"

#include "xml/writer.h"

namespace mqp::optimizer {

using algebra::Expr;
using algebra::OpType;
using algebra::PlanNode;

double CostModel::Selectivity(const Expr& pred) const {
  switch (pred.kind()) {
    case Expr::Kind::kCompare:
      switch (pred.compare_op()) {
        case algebra::CompareOp::kEq:
          return params_.eq_selectivity;
        case algebra::CompareOp::kNe:
          return params_.ne_selectivity;
        default:
          return params_.range_selectivity;
      }
    case Expr::Kind::kAnd:
      return Selectivity(*pred.lhs()) * Selectivity(*pred.rhs());
    case Expr::Kind::kOr: {
      const double a = Selectivity(*pred.lhs());
      const double b = Selectivity(*pred.rhs());
      return std::min(1.0, a + b - a * b);
    }
    case Expr::Kind::kNot:
      return 1.0 - Selectivity(*pred.inner());
    case Expr::Kind::kExists:
      return 0.9;
    default:
      return 0.5;
  }
}

double CostModel::SelectivityWith(
    const Expr& pred, const algebra::Annotations& annotations) const {
  switch (pred.kind()) {
    case Expr::Kind::kCompare: {
      // field OP literal with a matching histogram?
      const Expr* field = nullptr;
      const Expr* literal = nullptr;
      bool field_left = true;
      if (pred.lhs()->kind() == Expr::Kind::kField &&
          pred.rhs()->kind() == Expr::Kind::kLiteral) {
        field = pred.lhs().get();
        literal = pred.rhs().get();
      } else if (pred.rhs()->kind() == Expr::Kind::kField &&
                 pred.lhs()->kind() == Expr::Kind::kLiteral) {
        field = pred.rhs().get();
        literal = pred.lhs().get();
        field_left = false;
      }
      if (field != nullptr) {
        const algebra::FieldHistogram* h =
            annotations.HistogramFor(field->field_path());
        double v = 0;
        if (h != nullptr &&
            mqp::ParseDouble(literal->literal_value(), &v)) {
          // Normalize to "field OP v".
          algebra::CompareOp op = pred.compare_op();
          if (!field_left) {
            switch (op) {
              case algebra::CompareOp::kLt:
                op = algebra::CompareOp::kGt;
                break;
              case algebra::CompareOp::kLe:
                op = algebra::CompareOp::kGe;
                break;
              case algebra::CompareOp::kGt:
                op = algebra::CompareOp::kLt;
                break;
              case algebra::CompareOp::kGe:
                op = algebra::CompareOp::kLe;
                break;
              default:
                break;
            }
          }
          switch (op) {
            case algebra::CompareOp::kLt:
              return h->FractionBelow(v);
            case algebra::CompareOp::kLe:
              return h->FractionBelow(v) + h->FractionEquals(v);
            case algebra::CompareOp::kGt:
              return 1.0 - h->FractionBelow(v) - h->FractionEquals(v);
            case algebra::CompareOp::kGe:
              return 1.0 - h->FractionBelow(v);
            case algebra::CompareOp::kEq:
              return h->FractionEquals(v);
            case algebra::CompareOp::kNe:
              return 1.0 - h->FractionEquals(v);
            default:
              break;
          }
        }
      }
      return Selectivity(pred);
    }
    case Expr::Kind::kAnd:
      return SelectivityWith(*pred.lhs(), annotations) *
             SelectivityWith(*pred.rhs(), annotations);
    case Expr::Kind::kOr: {
      const double a = SelectivityWith(*pred.lhs(), annotations);
      const double b = SelectivityWith(*pred.rhs(), annotations);
      return std::min(1.0, a + b - a * b);
    }
    case Expr::Kind::kNot:
      return 1.0 - SelectivityWith(*pred.inner(), annotations);
    default:
      return Selectivity(pred);
  }
}

CostEstimate CostModel::Estimate(const PlanNode& node) const {
  const algebra::Annotations& a = node.annotations();
  switch (node.type()) {
    case OpType::kXmlData: {
      CostEstimate est;
      est.rows = static_cast<double>(node.items().size());
      double bytes = 0;
      for (const auto& item : node.items()) {
        bytes += static_cast<double>(xml::SerializedSize(*item));
      }
      est.bytes = bytes;
      return est;
    }
    case OpType::kUrl:
    case OpType::kUrn: {
      CostEstimate est;
      est.rows = a.cardinality ? static_cast<double>(*a.cardinality)
                               : params_.default_leaf_rows;
      est.bytes = a.bytes ? static_cast<double>(*a.bytes)
                          : est.rows * params_.avg_item_bytes;
      return est;
    }
    case OpType::kSelect: {
      CostEstimate in = Estimate(*node.child(0));
      const double sel =
          node.expr() != nullptr
              ? SelectivityWith(*node.expr(), node.child(0)->annotations())
              : 1.0;
      return {in.rows * sel, in.bytes * sel};
    }
    case OpType::kProject: {
      CostEstimate in = Estimate(*node.child(0));
      // Projection keeps a fraction of each item's fields.
      return {in.rows, in.bytes * 0.5};
    }
    case OpType::kJoin:
    case OpType::kLeftOuterJoin: {
      CostEstimate l = Estimate(*node.child(0));
      CostEstimate r = Estimate(*node.child(1));
      // Prefer distinct-key annotations (§5.1) when available on either
      // side: |L ⋈ R| ≈ |L|·|R| / max(d_L, d_R).
      double rows;
      const auto& la = node.child(0)->annotations();
      const auto& ra = node.child(1)->annotations();
      double distinct = 0;
      if (la.distinct_keys) {
        distinct = std::max(distinct, static_cast<double>(*la.distinct_keys));
      }
      if (ra.distinct_keys) {
        distinct = std::max(distinct, static_cast<double>(*ra.distinct_keys));
      }
      if (distinct > 0) {
        rows = l.rows * r.rows / distinct;
      } else {
        rows = l.rows * r.rows * params_.join_selectivity;
      }
      if (node.type() == OpType::kLeftOuterJoin) {
        rows = std::max(rows, l.rows);  // every left row survives
      }
      const double lw = l.rows > 0 ? l.bytes / l.rows : params_.avg_item_bytes;
      const double rw = r.rows > 0 ? r.bytes / r.rows : params_.avg_item_bytes;
      return {rows, rows * (lw + rw)};
    }
    case OpType::kUnion: {
      CostEstimate est;
      for (const auto& c : node.children()) {
        CostEstimate in = Estimate(*c);
        est.rows += in.rows;
        est.bytes += in.bytes;
      }
      return est;
    }
    case OpType::kOr: {
      // Any single alternative suffices; assume the cheapest is chosen.
      CostEstimate best{0, 0};
      bool first = true;
      for (const auto& c : node.children()) {
        CostEstimate in = Estimate(*c);
        if (first || in.bytes < best.bytes) {
          best = in;
          first = false;
        }
      }
      return best;
    }
    case OpType::kDifference: {
      CostEstimate l = Estimate(*node.child(0));
      return {l.rows * 0.5, l.bytes * 0.5};
    }
    case OpType::kAggregate: {
      CostEstimate in = Estimate(*node.child(0));
      const double groups =
          node.group_by().empty()
              ? 1.0
              : std::max(1.0, in.rows * params_.groups_fraction);
      return {groups, groups * 48.0};
    }
    case OpType::kTopN: {
      CostEstimate in = Estimate(*node.child(0));
      const double rows =
          node.has_limit()
              ? std::min(in.rows, static_cast<double>(node.limit()))
              : in.rows;
      const double w = in.rows > 0 ? in.bytes / in.rows
                                   : params_.avg_item_bytes;
      return {rows, rows * w};
    }
    case OpType::kDisplay:
      return Estimate(*node.child(0));
  }
  return {};
}

}  // namespace mqp::optimizer
