#include "optimizer/evaluable.h"

namespace mqp::optimizer {

using algebra::OpType;
using algebra::PlanNode;

bool IsLocallyEvaluable(const PlanNode& node, const Locality& locality) {
  switch (node.type()) {
    case OpType::kXmlData:
      return true;
    case OpType::kUrl:
      return locality.is_local_url(node);
    case OpType::kUrn:
      return locality.is_resolvable_urn(node);
    case OpType::kOr: {
      for (const auto& c : node.children()) {
        if (IsLocallyEvaluable(*c, locality)) return true;
      }
      return false;
    }
    case OpType::kDisplay:
      // A display node is never *evaluated*; its input may be.
      return false;
    default: {
      for (const auto& c : node.children()) {
        if (!IsLocallyEvaluable(*c, locality)) return false;
      }
      return true;
    }
  }
}

namespace {
void Collect(PlanNode* node, const Locality& locality,
             std::vector<PlanNode*>* out) {
  if (node->type() != OpType::kDisplay &&
      IsLocallyEvaluable(*node, locality)) {
    // Bare constants need no evaluation.
    if (!node->IsConstant()) out->push_back(node);
    return;
  }
  for (const auto& c : node->children()) {
    Collect(c.get(), locality, out);
  }
}
}  // namespace

std::vector<PlanNode*> MaximalEvaluableSubplans(PlanNode* root,
                                                const Locality& locality) {
  std::vector<PlanNode*> out;
  Collect(root, locality, &out);
  return out;
}

}  // namespace mqp::optimizer
