// Locally-evaluable sub-plan detection (paper Figure 2: "The optimizer
// finds the locally evaluable sub-plans — a sub-plan is locally evaluable
// if all its leaves are verbatim XML data, URLs, or resolvable URNs").
#pragma once

#include <functional>
#include <vector>

#include "algebra/plan.h"

namespace mqp::optimizer {

/// \brief Locality oracle supplied by the hosting peer: which URL/URN
/// leaves can be satisfied *here*.
struct Locality {
  /// True if this peer can serve the URL leaf from its local store.
  std::function<bool(const algebra::PlanNode&)> is_local_url =
      [](const algebra::PlanNode&) { return false; };

  /// True if this peer can resolve the URN leaf all the way to local data.
  std::function<bool(const algebra::PlanNode&)> is_resolvable_urn =
      [](const algebra::PlanNode&) { return false; };

  /// Field-provenance probe for *local* URL leaves: true when items in the
  /// referenced collection are known to carry `path` (lets join reorderings
  /// validate conditions against not-yet-fetched local collections).
  std::function<bool(const algebra::PlanNode&, const std::string&)>
      url_provides_field =
          [](const algebra::PlanNode&, const std::string&) { return false; };
};

/// \brief True iff every leaf under `node` is constant data, a local URL,
/// or a locally resolvable URN. Or-nodes are evaluable when at least one
/// alternative is (evaluation picks such a branch).
bool IsLocallyEvaluable(const algebra::PlanNode& node,
                        const Locality& locality);

/// \brief The *maximal* locally evaluable sub-plans under `root`:
/// evaluable nodes none of whose ancestors are evaluable. Display nodes
/// are never returned (they are routing pseudo-operators); bare constant
/// data nodes are skipped (re-evaluating them is a no-op).
std::vector<algebra::PlanNode*> MaximalEvaluableSubplans(
    algebra::PlanNode* root, const Locality& locality);

}  // namespace mqp::optimizer
