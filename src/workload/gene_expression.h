// The Figure-1 workload: research groups hosting gene-expression
// repositories with interest areas over the Organism × CellType namespace
// (the MIAME-style data substitute, see DESIGN.md).
#pragma once

#include <string>
#include <vector>

#include "algebra/plan.h"
#include "common/rng.h"
#include "ns/hierarchy.h"
#include "ns/interest.h"

namespace mqp::workload {

/// \brief One research group and its declared interest area.
struct ResearchGroup {
  std::string name;
  ns::InterestArea area;
};

/// \brief Gene-expression data generator.
class GeneExpressionGenerator {
 public:
  explicit GeneExpressionGenerator(uint64_t seed = 42);

  const ns::MultiHierarchy& hierarchy() const { return ns_; }

  /// The paper's three Figure-1 groups: fruit-fly neural cells,
  /// rodent connective+muscle cells, and all human cell types.
  std::vector<ResearchGroup> FigureOneGroups() const;

  /// `n` additional random groups (for scaling experiments): each picks
  /// 1-2 random cells of the namespace.
  std::vector<ResearchGroup> RandomGroups(size_t n);

  /// Expression records inside a group's area:
  /// <experiment><organism/><celltype/><gene/><value/></experiment>.
  /// Coordinates are drawn from leaf categories covered by the area.
  algebra::ItemSet MakeExperiments(const ResearchGroup& group, size_t count);

 private:
  Rng rng_;
  ns::MultiHierarchy ns_;
};

}  // namespace mqp::workload
