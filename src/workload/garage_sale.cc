#include "workload/garage_sale.h"

#include "common/strings.h"

namespace mqp::workload {

namespace {

const char* const kAdjectives[] = {"vintage", "sturdy", "mint",
                                   "worn",    "rare",   "plain"};
const char* const kNouns[] = {"armchair", "table",  "amplifier", "record",
                              "putter",   "jacket", "novel",     "lamp"};
const char* const kConditions[] = {"new", "like-new", "good", "fair",
                                   "poor"};

}  // namespace

GarageSaleGenerator::GarageSaleGenerator(uint64_t seed)
    : rng_(seed), ns_(ns::MakeGarageSaleNamespace()) {
  locations_ = ns_.dimension(0).Leaves();
  categories_ = ns_.dimension(1).Leaves();
}

std::vector<Seller> GarageSaleGenerator::MakeSellers(size_t n) {
  std::vector<Seller> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Seller s;
    s.name = "seller-" + std::to_string(i);
    const auto& loc = locations_[rng_.NextBelow(locations_.size())];
    // Zipf-skewed category choice: some categories are much hotter.
    const auto& cat = categories_[rng_.NextZipf(categories_.size(), 0.8)];
    s.cell = ns::InterestCell({loc, cat});
    out.push_back(std::move(s));
  }
  return out;
}

algebra::ItemSet GarageSaleGenerator::MakeItems(const Seller& seller,
                                                size_t count) {
  algebra::ItemSet out;
  out.reserve(count);
  const std::string location = seller.cell.coord(0).ToString();
  const std::string category = seller.cell.coord(1).ToString();
  for (size_t i = 0; i < count; ++i) {
    auto item = xml::Node::Element("item");
    const std::string adj = kAdjectives[rng_.NextBelow(6)];
    const std::string noun = kNouns[rng_.NextBelow(8)];
    item->AddElementWithText("name", adj + " " + noun);
    item->AddElementWithText("category", category);
    item->AddElementWithText("location", location);
    item->AddElementWithText(
        "price", std::to_string(1 + rng_.NextBelow(200)) + "." +
                     std::to_string(rng_.NextBelow(10)) +
                     std::to_string(rng_.NextBelow(10)));
    item->AddElementWithText("condition",
                             kConditions[rng_.NextBelow(5)]);
    item->AddElementWithText("quantity",
                             std::to_string(1 + rng_.NextBelow(4)));
    item->AddElementWithText("seller", seller.name);
    item->AddElementWithText("description",
                             "a " + adj + " " + noun + " from " + location);
    item->AddElementWithText("image", "img://" + seller.name + "/" +
                                          std::to_string(i));
    out.push_back(algebra::Item(item.release()));
  }
  return out;
}

bool GarageSaleGenerator::ItemInArea(const xml::Node& item,
                                     const ns::InterestArea& area) {
  auto loc = ns::CategoryPath::Parse(item.ChildText("location"));
  auto cat = ns::CategoryPath::Parse(item.ChildText("category"));
  if (!loc.ok() || !cat.ok()) return false;
  ns::InterestCell cell({*loc, *cat});
  for (const auto& c : area.cells()) {
    if (c.Covers(cell)) return true;
  }
  return false;
}

size_t GarageSaleGenerator::CountInArea(const algebra::ItemSet& items,
                                        const ns::InterestArea& area) {
  size_t n = 0;
  for (const auto& item : items) {
    if (ItemInArea(*item, area)) ++n;
  }
  return n;
}

}  // namespace mqp::workload
