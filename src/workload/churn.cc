#include "workload/churn.h"

#include <algorithm>

namespace mqp::workload {

using peer::Peer;
using peer::PeerOptions;

ChurnScenario::ChurnScenario(net::Transport* sim, GarageSaleNetwork* net,
                             ChurnParams params)
    : sim_(sim), net_(net), params_(std::move(params)), rng_(params_.seed) {
  if (params_.query_area.empty()) {
    params_.query_area = *ns::InterestArea::Parse("(USA,*)");
  }
  up_sellers_ = net_->sellers;
  // One knob for the whole fleet: the ablation is only meaningful when
  // forwarding peers stop failing over too, not just the client. The
  // deadline (and the pending-reap it drives) stays either way.
  for (Peer* p : AllPeers()) {
    p->mutable_options().reliability.enabled = params_.reliable_queries;
  }
}

sync::SyncOptions ChurnScenario::OptionsFor(const Peer& peer) const {
  sync::SyncOptions o = params_.sync;
  // Distinct per-peer stream; offset so seed 0 never collides with the
  // scenario's own rng stream.
  o.seed = params_.seed * 7919 + peer.id() + 1;
  o.horizon_seconds = horizon();
  // Heartbeats stop with the churn window; the convergence tail is a
  // quiet period in which the final stamps finish propagating.
  o.refresh_horizon_seconds = params_.duration_seconds;
  return o;
}

std::vector<Peer*> ChurnScenario::AllPeers() const {
  std::vector<Peer*> all;
  if (net_->client != nullptr) all.push_back(net_->client);
  if (net_->top_meta != nullptr) all.push_back(net_->top_meta);
  all.insert(all.end(), net_->index_servers.begin(),
             net_->index_servers.end());
  all.insert(all.end(), net_->sellers.begin(), net_->sellers.end());
  return all;
}

void ChurnScenario::EnableSyncEverywhere() {
  for (Peer* p : AllPeers()) {
    p->EnableSync(OptionsFor(*p));
  }
}

void ChurnScenario::DoFail(double now) {
  if (up_sellers_.empty()) return;
  const size_t pick = static_cast<size_t>(rng_.NextBelow(up_sellers_.size()));
  Peer* victim = up_sellers_[pick];
  up_sellers_.erase(up_sellers_.begin() + static_cast<long>(pick));
  crashed_sellers_.push_back(victim);
  sim_->Fail(victim->id());
  ++stats_.fails;
  sim_->Schedule(now + params_.downtime_seconds, [this, victim]() {
    sim_->Recover(victim->id());
    // A recovering node re-announces: re-stamp own records so catalogs
    // whose vectors dominate the pre-crash stamps pull them again.
    victim->RejoinNetwork();
    crashed_sellers_.erase(std::find(crashed_sellers_.begin(),
                                     crashed_sellers_.end(), victim));
    up_sellers_.push_back(victim);
    ++stats_.recovers;
  });
}

void ChurnScenario::DoDepart(double now) {
  (void)now;
  if (up_sellers_.size() < 2) return;  // keep the network queryable
  const size_t pick = static_cast<size_t>(rng_.NextBelow(up_sellers_.size()));
  Peer* leaver = up_sellers_[pick];
  up_sellers_.erase(up_sellers_.begin() + static_cast<long>(pick));
  departed_.push_back(leaver);
  // Graceful: tombstones push to gossip partners first, then the peer
  // goes dark for good.
  leaver->LeaveNetwork();
  sim_->Fail(leaver->id());
  ++stats_.departs;
}

void ChurnScenario::DoJoin(double now) {
  (void)now;
  auto specs = net_->generator.MakeSellers(1);
  const Seller& spec = specs[0];
  PeerOptions opts;
  opts.name = "joiner-" + std::to_string(next_joiner_++);
  opts.dimension_fields = {"location", "category"};
  opts.interest = ns::InterestArea(spec.cell);
  opts.roles.base = true;
  opts.reliability.enabled = params_.reliable_queries;
  net_->owned.push_back(std::make_unique<Peer>(sim_, opts));
  Peer* joiner = net_->owned.back().get();
  auto items = net_->generator.MakeItems(spec, params_.items_per_joiner);
  net_->all_items.insert(net_->all_items.end(), items.begin(), items.end());
  joiner->PublishCollection("c-" + opts.name, ns::InterestArea(spec.cell),
                            items);
  joiner->AddBootstrap(net_->IndexFor(spec.cell)->address());
  joiner->EnableSync(OptionsFor(*joiner));
  joiner->JoinNetwork();  // classic §3.3 registration rides along
  net_->sellers.push_back(joiner);
  up_sellers_.push_back(joiner);
  ++stats_.joins;
}

void ChurnScenario::ScheduleEvents() {
  for (double t = params_.event_interval_seconds;
       t < params_.duration_seconds; t += params_.event_interval_seconds) {
    sim_->Schedule(t, [this]() {
      const double roll = rng_.NextDouble();
      const double now = sim_->now();
      if (roll < params_.p_fail) {
        DoFail(now);
      } else if (roll < params_.p_fail + params_.p_depart) {
        DoDepart(now);
      } else if (roll < params_.p_fail + params_.p_depart + params_.p_join) {
        DoJoin(now);
      }  // else: quiet tick
    });
  }
}

void ChurnScenario::ScheduleQueries() {
  for (double t = params_.query_interval_seconds;
       t < params_.duration_seconds; t += params_.query_interval_seconds) {
    sim_->Schedule(t, [this]() {
      ++stats_.queries_submitted;
      net_->client->SubmitQuery(MakeAreaQueryPlan(params_.query_area),
                                [this](const peer::QueryOutcome& o) {
                                  ++stats_.queries_returned;
                                  if (o.complete) ++stats_.queries_complete;
                                  if (!o.complete && !o.items.empty()) {
                                    ++stats_.queries_partial;
                                  }
                                  if (o.timed_out) ++stats_.queries_timed_out;
                                });
    });
  }
}

void ChurnScenario::Prepare() {
  if (prepared_) return;
  prepared_ = true;
  ScheduleEvents();
  ScheduleQueries();
}

const ChurnStats& ChurnScenario::Run() {
  Prepare();
  sim_->Run();
  stats_.query_retries = net_->client->counters().query_retries;
  return stats_;
}

std::vector<Peer*> ChurnScenario::LiveSyncedPeers() const {
  std::vector<Peer*> live;
  for (Peer* p : AllPeers()) {
    if (p->sync() == nullptr) continue;
    if (sim_->IsFailed(p->id())) continue;
    live.push_back(p);
  }
  return live;
}

bool ChurnScenario::VectorsConverged() const {
  auto live = LiveSyncedPeers();
  if (live.empty()) return true;
  const auto& reference = live[0]->sync()->versioned().vector();
  for (size_t i = 1; i < live.size(); ++i) {
    if (live[i]->sync()->versioned().vector() != reference) return false;
  }
  return true;
}

std::string ChurnScenario::VectorFingerprint() const {
  if (!VectorsConverged()) return "";
  auto live = LiveSyncedPeers();
  if (live.empty()) return "<no-peers>";
  return catalog::DigestToXml(live[0]->sync()->versioned().vector());
}

}  // namespace mqp::workload
