// The Figure-3 workload: for-sale CD listings, a track-listing service
// (the CDDB/FreeDB substitute, see DESIGN.md), and a favorite-song list.
#pragma once

#include <string>
#include <vector>

#include "algebra/plan.h"
#include "common/rng.h"

namespace mqp::workload {

/// \brief Generator for the CD-market scenario.
class CdMarketGenerator {
 public:
  explicit CdMarketGenerator(uint64_t seed = 42);

  /// The master list of `n` CD titles that sellers and the track-listing
  /// service draw from.
  std::vector<std::string> MakeTitles(size_t n);

  /// For-sale CDs at one seller: <cd><title/><price/><seller/></cd>.
  /// Prices are uniform in [4, 25); titles Zipf-drawn from `titles`.
  algebra::ItemSet MakeSellerCds(const std::vector<std::string>& titles,
                                 const std::string& seller, size_t count);

  /// The track-listing service: `songs_per` listings per title,
  /// <listing><CDtitle/><song/></listing>.
  algebra::ItemSet MakeTrackListings(const std::vector<std::string>& titles,
                                     size_t songs_per);

  /// A favorite-song list sampled from the listings:
  /// <song><name/></song>.
  algebra::ItemSet MakeFavoriteSongs(const algebra::ItemSet& listings,
                                     size_t count);

 private:
  Rng rng_;
};

/// \brief Builds the Figure-3 mutant query plan:
///
///   display(target) ← join[song = name]
///                       ← join[title = CDtitle]
///                           ← select[price < max_price](urn:ForSale:...)
///                           ← urn:CD:TrackListings
///                       ← favorite songs (verbatim XML)
algebra::Plan MakeFigure3Plan(const algebra::ItemSet& favorite_songs,
                              const std::string& forsale_urn,
                              const std::string& tracklist_urn,
                              const std::string& target,
                              const std::string& max_price = "10");

}  // namespace mqp::workload
