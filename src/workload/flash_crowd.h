// Flash-crowd scenario: overload protection under a traffic spike.
//
// The paper's experiments assume a polite client; this driver models the
// opposite — a flash crowd aiming a steady stream of interest-area
// queries at one hot region of the garage-sale network, at a multiple of
// what the service tier can absorb. Every peer runs the DESIGN.md §11
// virtual service-time model (service_rate_qps), so queueing delay,
// admission control, priority shedding, per-query evaluation budgets and
// cooperative cancellation all engage exactly as they would on loaded
// hardware — but in deterministic virtual time: a given seed reproduces
// the identical submission schedule, shed/abort decisions and outcome
// trace on the simulator and the threaded runtime alike.
//
// The interesting sweep axis is `load_multiplier` (offered load as a
// multiple of `capacity_qps`) crossed with `protection` on/off: with
// shedding enabled the backlog stays bounded, so admitted queries — and
// in particular the high-priority slice — keep completing inside their
// deadlines at 10x; ablated, the queue grows without bound and goodput
// collapses to the few queries submitted before the backlog crossed the
// deadline. bench_c15_overload turns that contrast into a CI shape
// check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/transport.h"
#include "ns/interest.h"
#include "peer/peer.h"
#include "workload/network_builder.h"

namespace mqp::workload {

/// \brief Knobs for FlashCrowdScenario. All times are simulated seconds.
struct FlashCrowdParams {
  size_t num_sellers = 12;
  size_t items_per_seller = 5;
  uint64_t seed = 15;

  /// Per-peer virtual service rate (OverloadOptions::service_rate_qps),
  /// applied fleet-wide. This models the hardware and stays on even when
  /// `protection` is false — ablation removes the defenses, not the load.
  double service_rate_qps = 10;

  /// Calibrated end-to-end capacity of the topology under this service
  /// rate; offered load is `capacity_qps * load_multiplier`. The hot
  /// path funnels every query through the top meta-index and the hot
  /// state's peers, so capacity sits just under the per-peer rate — the
  /// bottleneck stage — leaving 1x comfortably stable.
  double capacity_qps = 8;
  double load_multiplier = 1;

  double duration_seconds = 60;   ///< submission window
  double drain_tail_seconds = 30; ///< extra time for deadlines to reap

  /// Fraction of queries submitted with PlanPolicy::priority = 1; the
  /// rest are best-effort priority 0. Kept small so the high-priority
  /// slice stays well under capacity even at 10x offered load — the
  /// regime where priority shedding is supposed to save it.
  double high_priority_fraction = 0.05;

  double query_deadline_seconds = 10;
  uint32_t max_retries = 1;

  /// Overload defenses on (admission, shedding, budgets, cancellation).
  /// Applied per-peer via OverloadOptions::enabled so two scenarios with
  /// opposite settings can coexist in one process; benches may instead
  /// ablate globally with peer::set_use_overload_protection(false).
  bool protection = true;

  /// Template for the fleet's overload knobs (shed watermark, budgets,
  /// admission cap...). `service_rate_qps`, `enabled` and `seed` are
  /// overwritten from the fields above.
  peer::OverloadOptions overload;

  /// The flash crowd's target. Empty = "(USA.OR,*)".
  ns::InterestArea hot_area;
};

/// \brief What happened during a run. The `hp_` twins count the
/// high-priority slice (also included in the overall numbers).
struct FlashCrowdStats {
  size_t submitted = 0;
  size_t hp_submitted = 0;
  size_t complete = 0;      ///< callback fired with a fully evaluated plan
  size_t hp_complete = 0;
  size_t shed = 0;          ///< refused by client-side admission control
  size_t hp_shed = 0;
  size_t timed_out = 0;     ///< deadline/retry budget exhausted
  size_t hp_timed_out = 0;
  size_t partial = 0;       ///< timed out but carrying best-effort items

  /// Completion latencies (completed_at - submitted_at) of complete
  /// queries, in callback order.
  std::vector<double> latencies;
  std::vector<double> hp_latencies;

  /// One character per submitted query, in submission order: the query's
  /// fate (c=complete, s=shed, p=timed out with partial items, t=timed
  /// out empty, x=other, ?=callback never fired), uppercased for the
  /// high-priority slice. Same seed + same backend behaviour ⇒ identical
  /// trace; the determinism suite compares it across simulator and
  /// threaded-runtime runs byte for byte.
  std::string decision_trace;

  // NetStats snapshot after the run (fleet-wide totals).
  uint64_t queries_shed = 0;
  uint64_t budget_aborts = 0;
  uint64_t cancels_sent = 0;
  uint64_t cancelled_sessions_reaped = 0;

  /// Pending-query entries / top-k merge sessions still live anywhere in
  /// the fleet after the drain tail — both must be zero; nonzero means
  /// cancellation/reaping leaked state.
  size_t leaked_pending = 0;
  size_t leaked_sessions = 0;

  double goodput_qps(double window_seconds) const {
    return window_seconds > 0 ? static_cast<double>(complete) / window_seconds
                              : 0;
  }
  double hp_completion_pct() const {
    return hp_submitted > 0 ? 100.0 * static_cast<double>(hp_complete) /
                                  static_cast<double>(hp_submitted)
                            : 100.0;
  }
};

/// \brief Builds its own garage-sale network on `sim` and drives the
/// seeded flash crowd against it.
class FlashCrowdScenario {
 public:
  FlashCrowdScenario(net::Transport* sim, FlashCrowdParams params);

  /// Builds the network, applies the overload/reliability options
  /// fleet-wide, and schedules the full seeded submission trace without
  /// running the transport.
  void Prepare();

  /// Prepare() + run the transport past the horizon + collect stats.
  const FlashCrowdStats& Run();

  const FlashCrowdStats& stats() const { return stats_; }

  double offered_qps() const {
    return params_.capacity_qps * params_.load_multiplier;
  }
  /// Simulated time by which every submitted query has been reaped (the
  /// deadline machinery guarantees a callback well inside the tail).
  double horizon() const {
    return params_.duration_seconds + params_.drain_tail_seconds;
  }

  GarageSaleNetwork& net() { return net_; }
  const GarageSaleNetwork& net() const { return net_; }

 private:
  void Submit(size_t index, bool high_priority);
  void Record(size_t index, const peer::QueryOutcome& outcome);
  /// Folds the per-query marks and the transport's NetStats into stats_.
  void Collect();

  net::Transport* sim_;
  FlashCrowdParams params_;
  Rng rng_;
  GarageSaleNetwork net_;
  FlashCrowdStats stats_;
  std::vector<char> marks_;     ///< per-query fate, '?' until recorded
  std::vector<bool> hp_flags_;  ///< per-query priority slice
  bool prepared_ = false;
};

}  // namespace mqp::workload
