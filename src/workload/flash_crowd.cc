#include "workload/flash_crowd.h"

#include <cctype>
#include <cmath>
#include <utility>

namespace mqp::workload {
namespace {

std::vector<peer::Peer*> AllPeers(GarageSaleNetwork* net) {
  std::vector<peer::Peer*> all;
  all.push_back(net->client);
  all.push_back(net->top_meta);
  for (auto* p : net->index_servers) all.push_back(p);
  for (auto* p : net->sellers) all.push_back(p);
  return all;
}

}  // namespace

FlashCrowdScenario::FlashCrowdScenario(net::Transport* sim,
                                       FlashCrowdParams params)
    : sim_(sim), params_(std::move(params)), rng_(params_.seed) {
  if (params_.hot_area.cells().empty()) {
    params_.hot_area = *ns::InterestArea::Parse("(USA.OR,*)");
  }
}

void FlashCrowdScenario::Prepare() {
  if (prepared_) return;
  prepared_ = true;

  // Build with default options so registration traffic is instantaneous
  // — the service-time model describes the crowd hitting an *already
  // built* network, not a slow bring-up.
  GarageSaleNetworkParams gp;
  gp.num_sellers = params_.num_sellers;
  gp.items_per_seller = params_.items_per_seller;
  gp.seed = params_.seed;
  gp.client_template.reliability.enabled = true;
  gp.client_template.reliability.query_deadline_seconds =
      params_.query_deadline_seconds;
  gp.client_template.reliability.max_retries = params_.max_retries;
  gp.client_template.reliability.seed = params_.seed;
  net_ = BuildGarageSaleNetwork(sim_, gp);

  // Now switch on the virtual service-time model fleet-wide. The
  // defenses follow `protection`; the load model does not — an ablated
  // fleet is just as slow, only undefended.
  peer::OverloadOptions ov = params_.overload;
  ov.service_rate_qps = params_.service_rate_qps;
  ov.enabled = params_.protection;
  ov.seed = params_.seed;
  for (auto* p : AllPeers(&net_)) {
    p->mutable_options().overload = ov;
    p->mutable_options().reliability.enabled = true;
  }

  const double offered = offered_qps();
  const auto n = static_cast<size_t>(
      std::llround(offered * params_.duration_seconds));
  marks_.assign(n, '?');
  hp_flags_.assign(n, false);
  const double start = sim_->now();
  for (size_t i = 0; i < n; ++i) {
    const bool hp = rng_.NextBool(params_.high_priority_fraction);
    hp_flags_[i] = hp;
    const double at = start + static_cast<double>(i) / offered;
    sim_->Schedule(at, [this, i, hp] { Submit(i, hp); });
  }
}

void FlashCrowdScenario::Submit(size_t index, bool high_priority) {
  algebra::Plan plan = MakeAreaQueryPlan(params_.hot_area);
  plan.policy().priority = high_priority ? 1 : 0;
  net_.client->SubmitQuery(std::move(plan),
                           [this, index](const peer::QueryOutcome& outcome) {
                             Record(index, outcome);
                           });
}

void FlashCrowdScenario::Record(size_t index,
                                const peer::QueryOutcome& outcome) {
  char mark = 'x';
  if (outcome.shed) {
    mark = 's';
  } else if (outcome.complete) {
    mark = 'c';
    const double latency = outcome.completed_at - outcome.submitted_at;
    stats_.latencies.push_back(latency);
    if (hp_flags_[index]) stats_.hp_latencies.push_back(latency);
  } else if (outcome.timed_out) {
    mark = outcome.items.empty() ? 't' : 'p';
  }
  if (hp_flags_[index]) {
    mark = static_cast<char>(std::toupper(static_cast<unsigned char>(mark)));
  }
  marks_[index] = mark;
}

const FlashCrowdStats& FlashCrowdScenario::Run() {
  Prepare();
  const double until = sim_->now() + horizon();
  sim_->Run(until);
  Collect();
  return stats_;
}

void FlashCrowdScenario::Collect() {
  stats_.submitted = marks_.size();
  stats_.decision_trace.assign(marks_.begin(), marks_.end());
  for (size_t i = 0; i < marks_.size(); ++i) {
    const bool hp = hp_flags_[i];
    if (hp) stats_.hp_submitted++;
    switch (std::tolower(static_cast<unsigned char>(marks_[i]))) {
      case 'c':
        stats_.complete++;
        if (hp) stats_.hp_complete++;
        break;
      case 's':
        stats_.shed++;
        if (hp) stats_.hp_shed++;
        break;
      case 'p':
        stats_.partial++;
        stats_.timed_out++;
        if (hp) stats_.hp_timed_out++;
        break;
      case 't':
        stats_.timed_out++;
        if (hp) stats_.hp_timed_out++;
        break;
      default:
        break;
    }
  }

  // Const stats() is the merged fleet-wide view — on the threaded
  // runtime the non-const overload is only the calling thread's shard.
  const net::NetStats& ns = std::as_const(*sim_).stats();
  stats_.queries_shed = ns.queries_shed;
  stats_.budget_aborts = ns.budget_aborts;
  stats_.cancels_sent = ns.cancels_sent;
  stats_.cancelled_sessions_reaped = ns.cancelled_sessions_reaped;

  stats_.leaked_pending = 0;
  stats_.leaked_sessions = 0;
  for (auto* p : AllPeers(&net_)) {
    stats_.leaked_pending += p->pending_queries();
    stats_.leaked_sessions += p->topk_sessions();
  }
}

}  // namespace mqp::workload
