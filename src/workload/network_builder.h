// Assembles the standard P2P topologies used by tests, benches and
// examples: a client, an authoritative top-level meta-index server,
// per-state index servers, and garage-sale sellers (paper §3) — plus the
// synthetic super-peer hierarchies the million-peer substrate bench
// sweeps (ROADMAP item 1; the indexing-server-plus-peers shape of the
// cs550 related repo is the 2-level case).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/transport.h"
#include "peer/peer.h"
#include "sync/gossip.h"
#include "workload/garage_sale.h"

namespace mqp::workload {

/// \brief Knobs for BuildGarageSaleNetwork.
struct GarageSaleNetworkParams {
  size_t num_sellers = 20;
  size_t items_per_seller = 20;
  uint64_t seed = 42;
  bool use_statements = true;  ///< peers apply intensional statements
  peer::PeerOptions client_template;  ///< options copied into the client
};

/// \brief The assembled network. Peers are owned here; the simulator is
/// not.
struct GarageSaleNetwork {
  std::vector<std::unique_ptr<peer::Peer>> owned;

  peer::Peer* client = nullptr;
  peer::Peer* top_meta = nullptr;            ///< authoritative for [*, *]
  std::vector<peer::Peer*> index_servers;    ///< one per state, [state, *]
  std::vector<peer::Peer*> sellers;

  GarageSaleGenerator generator{0};
  std::vector<Seller> seller_specs;
  algebra::ItemSet all_items;  ///< ground truth for recall measurement

  /// The index server covering `seller_cell`'s state, or top_meta.
  peer::Peer* IndexFor(const ns::InterestCell& seller_cell) const;
};

/// \brief Builds and *joins* the network: after this returns the simulator
/// has drained all registration traffic.
GarageSaleNetwork BuildGarageSaleNetwork(net::Transport* sim,
                                         const GarageSaleNetworkParams& p);

/// \brief Convenience: an interest-area query plan,
/// select(predicate)(urn:InterestArea:<area>) under a display. Pass a null
/// predicate to fetch everything in the area. The display target is
/// overwritten by Peer::SubmitQuery.
algebra::Plan MakeAreaQueryPlan(const ns::InterestArea& area,
                                algebra::ExprPtr predicate = nullptr);

/// \brief Convenience: a top-k interest-area query,
/// topn(k, order_field)(select(predicate)(urn:InterestArea:<area>)) under
/// a display — the shape the distributed top-k rewrite (DESIGN.md §10)
/// turns into bounded, score-ordered remote fetches. Pass a null
/// predicate to rank everything in the area.
algebra::Plan MakeTopKQueryPlan(const ns::InterestArea& area,
                                std::string order_field, bool ascending,
                                uint64_t k,
                                algebra::ExprPtr predicate = nullptr);

// --- super-peer / hierarchical topologies (million-peer substrate) ------------

/// \brief Knobs for BuildSuperPeerNetwork. The synthetic namespace is
/// 2-dimensional: dim 0 is region/city ("r<i>/c<j>" under super-peer i),
/// dim 1 is a flat category vocabulary ("g<k>"). Total population is
/// num_super_peers * leaves_per_super + num_super_peers + 2 (root and
/// client).
struct SuperPeerNetworkParams {
  size_t num_super_peers = 8;    ///< N: regions, one super-peer each
  size_t leaves_per_super = 64;  ///< M: base servers fronted per super
  size_t cities_per_super = 16;  ///< dim-0 fan-out inside each region
  size_t categories = 8;         ///< dim-1 vocabulary size
  size_t items_per_leaf = 2;
  uint64_t seed = 42;
  /// Intensional statements off by default: registration stays light at
  /// million-leaf scale (flip on to exercise the §4 machinery too).
  bool use_statements = false;
  /// Catalog placement: when true the catalog tier (root + super-peers)
  /// gossips versioned state among itself — leaves only ever register
  /// upward, so sync load scales with N, not N*M.
  bool sync_catalog_tier = false;
  sync::SyncOptions sync;  ///< template for the catalog tier (seed varied)
  peer::PeerOptions client_template;
};

/// \brief The assembled hierarchy. Peers are owned here; the simulator
/// is not.
struct SuperPeerNetwork {
  std::vector<std::unique_ptr<peer::Peer>> owned;

  peer::Peer* client = nullptr;
  peer::Peer* root = nullptr;            ///< authoritative for [*, *]
  std::vector<peer::Peer*> super_peers;  ///< super i: [r<i>, *], index role
  std::vector<peer::Peer*> leaves;       ///< base servers, M per super
};

/// The region area (r<i>, *) a super-peer is authoritative for.
ns::InterestArea SuperPeerRegion(size_t super);

/// A city-level query area (r<i>.c<j>, *) inside super i's region —
/// resolves root → super i → the leaves publishing in that city.
ns::InterestArea SuperPeerCity(size_t super, size_t city);

/// \brief Builds and joins the hierarchy: super-peers register with the
/// root first, then all leaves register with their super-peer (one
/// drain — at 1M leaves this is itself a scheduler stress), then the
/// catalog tier's gossip is enabled when configured. After this returns
/// the simulator has drained all registration traffic.
SuperPeerNetwork BuildSuperPeerNetwork(net::Transport* sim,
                                       const SuperPeerNetworkParams& p);

}  // namespace mqp::workload
