// Assembles the standard P2P topologies used by tests, benches and
// examples: a client, an authoritative top-level meta-index server,
// per-state index servers, and garage-sale sellers (paper §3).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/simulator.h"
#include "peer/peer.h"
#include "workload/garage_sale.h"

namespace mqp::workload {

/// \brief Knobs for BuildGarageSaleNetwork.
struct GarageSaleNetworkParams {
  size_t num_sellers = 20;
  size_t items_per_seller = 20;
  uint64_t seed = 42;
  bool use_statements = true;  ///< peers apply intensional statements
  peer::PeerOptions client_template;  ///< options copied into the client
};

/// \brief The assembled network. Peers are owned here; the simulator is
/// not.
struct GarageSaleNetwork {
  std::vector<std::unique_ptr<peer::Peer>> owned;

  peer::Peer* client = nullptr;
  peer::Peer* top_meta = nullptr;            ///< authoritative for [*, *]
  std::vector<peer::Peer*> index_servers;    ///< one per state, [state, *]
  std::vector<peer::Peer*> sellers;

  GarageSaleGenerator generator{0};
  std::vector<Seller> seller_specs;
  algebra::ItemSet all_items;  ///< ground truth for recall measurement

  /// The index server covering `seller_cell`'s state, or top_meta.
  peer::Peer* IndexFor(const ns::InterestCell& seller_cell) const;
};

/// \brief Builds and *joins* the network: after this returns the simulator
/// has drained all registration traffic.
GarageSaleNetwork BuildGarageSaleNetwork(net::Simulator* sim,
                                         const GarageSaleNetworkParams& p);

/// \brief Convenience: an interest-area query plan,
/// select(predicate)(urn:InterestArea:<area>) under a display. Pass a null
/// predicate to fetch everything in the area. The display target is
/// overwritten by Peer::SubmitQuery.
algebra::Plan MakeAreaQueryPlan(const ns::InterestArea& area,
                                algebra::ExprPtr predicate = nullptr);

}  // namespace mqp::workload
