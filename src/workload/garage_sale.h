// Synthetic P2P garage-sale workload (paper §2's running example).
//
// Generates sellers with interest cells drawn from the Location ×
// Merchandise namespace and item bundles shaped like the paper describes:
// "item name, seller location, description, condition, images, quantity,
// price" (images abbreviated to a reference).
#pragma once

#include <string>
#include <vector>

#include "algebra/plan.h"
#include "common/rng.h"
#include "ns/hierarchy.h"
#include "ns/interest.h"

namespace mqp::workload {

/// \brief One synthetic seller: a name and the interest cell (most
/// specific location × merchandise category) its items live in.
struct Seller {
  std::string name;
  ns::InterestCell cell;
};

/// \brief Garage-sale data generator. Deterministic given the seed.
class GarageSaleGenerator {
 public:
  explicit GarageSaleGenerator(uint64_t seed = 42);

  const ns::MultiHierarchy& hierarchy() const { return ns_; }

  /// Draws `n` sellers; each picks a random leaf location and a random
  /// merchandise category (Zipf-skewed so some categories are hot).
  std::vector<Seller> MakeSellers(size_t n);

  /// Generates `count` items for one seller. Every item carries:
  /// name, category (most-specific merchandise path), location (the
  /// seller's city path), price, condition, quantity and a description.
  algebra::ItemSet MakeItems(const Seller& seller, size_t count);

  /// Number of items of `items` that fall inside `area` (ground truth for
  /// recall measurements).
  static size_t CountInArea(const algebra::ItemSet& items,
                            const ns::InterestArea& area);

  /// True if the item's (location, category) coordinates fall in `area`.
  static bool ItemInArea(const xml::Node& item, const ns::InterestArea& area);

 private:
  Rng rng_;
  ns::MultiHierarchy ns_;
  std::vector<ns::CategoryPath> locations_;   // leaf cities
  std::vector<ns::CategoryPath> categories_;  // leaf merchandise
};

}  // namespace mqp::workload
