// Churn scenarios: dynamic membership over a garage-sale network.
//
// The paper's experiments build a static network once; this driver makes
// membership a first-class workload dimension. On a seeded schedule it
// crashes sellers (fail → recover after a downtime), departs them
// gracefully (tombstone gossip, then gone for good), and joins brand-new
// sellers mid-run — while a client keeps issuing interest-area queries.
// Every choice flows through one mqp::Rng and simulator time, so a given
// seed reproduces the exact same event trace, traffic and final catalogs.
#pragma once

#include <string>
#include <vector>

#include "net/transport.h"
#include "ns/interest.h"
#include "sync/gossip.h"
#include "workload/network_builder.h"

namespace mqp::workload {

/// \brief Knobs for ChurnScenario. All times are simulated seconds.
struct ChurnParams {
  double duration_seconds = 240;       ///< churn-event window
  double event_interval_seconds = 8;   ///< one membership event per interval
  double downtime_seconds = 30;        ///< crash → recover delay
  double query_interval_seconds = 12;  ///< client query period
  /// Gossip keeps running for this long after the last churn event so
  /// catalogs can converge; agents stop ticking at
  /// duration + tail (the simulator then drains).
  double convergence_tail_seconds = 90;

  /// Event mix (remainder of the unit interval = quiet tick).
  double p_fail = 0.5;
  double p_depart = 0.15;
  double p_join = 0.25;

  size_t items_per_joiner = 6;
  ns::InterestArea query_area;  ///< default: (USA,*)
  uint64_t seed = 7;
  sync::SyncOptions sync;  ///< template; per-peer seeds/horizons derived

  /// Run the client's queries through the reliability layer (DESIGN.md
  /// §9: deadline + retry + failover). Off by default so the classic
  /// churn trace — and the sim-vs-threaded equivalence suites pinned to
  /// it — keeps its exact pre-reliability behaviour; benches flip it to
  /// show the before/after query-success story.
  bool reliable_queries = false;
};

/// \brief What happened during a run.
struct ChurnStats {
  size_t fails = 0;
  size_t recovers = 0;
  size_t departs = 0;
  size_t joins = 0;
  size_t queries_submitted = 0;
  size_t queries_returned = 0;  ///< callback fired at all
  size_t queries_complete = 0;  ///< returned with a fully evaluated plan
  size_t queries_partial = 0;   ///< incomplete but carrying items
  size_t queries_timed_out = 0; ///< deadline/retry budget exhausted
  size_t query_retries = 0;     ///< client retry attempts launched
};

/// \brief Drives churn over a built GarageSaleNetwork (not owned; joined
/// peers are appended to its `owned` vector).
class ChurnScenario {
 public:
  ChurnScenario(net::Transport* sim, GarageSaleNetwork* net,
                ChurnParams params);

  /// Enables sync on every peer of the network (client, meta, indexes,
  /// sellers) with per-peer seeds and the derived horizon.
  void EnableSyncEverywhere();

  /// Schedules the full seeded event/query trace without running the
  /// simulator. Callers that step the clock themselves (e.g. a bench
  /// measuring convergence rounds) use this, then sim->Run(t) in steps.
  void Prepare();

  /// Prepare() + run the simulator until it drains (agents stop at the
  /// horizon).
  const ChurnStats& Run();

  const ChurnStats& stats() const { return stats_; }

  /// Simulated end of the churn window (events stop here).
  double churn_end() const { return params_.duration_seconds; }
  /// Simulated time agents stop gossiping.
  double horizon() const {
    return params_.duration_seconds + params_.convergence_tail_seconds;
  }

  /// Peers currently up (not failed, not departed) with sync enabled.
  std::vector<peer::Peer*> LiveSyncedPeers() const;

  /// True when every live synced catalog holds the identical version
  /// vector — the anti-entropy fixpoint.
  bool VectorsConverged() const;

  /// The common version vector as a digest string ("" if diverged);
  /// benches compare fingerprints across same-seed runs.
  std::string VectorFingerprint() const;

 private:
  /// Every peer of the network, in a stable order (client, meta,
  /// indexes, sellers including joiners).
  std::vector<peer::Peer*> AllPeers() const;

  void ScheduleEvents();
  void ScheduleQueries();
  void DoFail(double now);
  void DoDepart(double now);
  void DoJoin(double now);
  sync::SyncOptions OptionsFor(const peer::Peer& peer) const;

  net::Transport* sim_;
  GarageSaleNetwork* net_;
  ChurnParams params_;
  Rng rng_;
  ChurnStats stats_;
  std::vector<peer::Peer*> up_sellers_;      ///< crashable pool
  std::vector<peer::Peer*> crashed_sellers_; ///< failed, recovery pending
  std::vector<peer::Peer*> departed_;
  size_t next_joiner_ = 0;
  bool prepared_ = false;
};

}  // namespace mqp::workload
