#include "workload/gene_expression.h"

#include "common/strings.h"

namespace mqp::workload {

GeneExpressionGenerator::GeneExpressionGenerator(uint64_t seed)
    : rng_(seed), ns_(ns::MakeGeneExpressionNamespace()) {}

std::vector<ResearchGroup> GeneExpressionGenerator::FigureOneGroups() const {
  auto area = [](const char* text) {
    auto a = ns::InterestArea::Parse(text);
    return a.ok() ? *a : ns::InterestArea();
  };
  return {
      {"fly-neuro",
       area("(Coelomata.Protostomia.DrosophilaMelanogaster,Neural)")},
      {"rodent-lab",
       area("(Coelomata.Deuterostomia.Mammalia.Eutheria.Rodentia,Connective)+"
            "(Coelomata.Deuterostomia.Mammalia.Eutheria.Rodentia,Muscle)")},
      {"human-atlas",
       area("(Coelomata.Deuterostomia.Mammalia.Eutheria.Primates."
            "HomoSapiens,*)")},
  };
}

std::vector<ResearchGroup> GeneExpressionGenerator::RandomGroups(size_t n) {
  std::vector<ResearchGroup> out;
  out.reserve(n);
  auto organisms = ns_.dimension(0).AllCategories();
  auto cells = ns_.dimension(1).AllCategories();
  for (size_t i = 0; i < n; ++i) {
    ResearchGroup g;
    g.name = "group-" + std::to_string(i);
    const size_t cells_in_area = 1 + rng_.NextBelow(2);
    ns::InterestArea area;
    for (size_t c = 0; c < cells_in_area; ++c) {
      area.AddCell(ns::InterestCell(
          {organisms[rng_.NextBelow(organisms.size())],
           cells[rng_.NextBelow(cells.size())]}));
    }
    g.area = area.Normalized();
    out.push_back(std::move(g));
  }
  return out;
}

algebra::ItemSet GeneExpressionGenerator::MakeExperiments(
    const ResearchGroup& group, size_t count) {
  algebra::ItemSet out;
  out.reserve(count);
  if (group.area.empty()) return out;
  // Leaf coordinates covered by the group's area, per dimension.
  std::vector<std::pair<ns::CategoryPath, ns::CategoryPath>> coords;
  for (const auto& org : ns_.dimension(0).Leaves()) {
    for (const auto& cell : ns_.dimension(1).Leaves()) {
      ns::InterestCell c({org, cell});
      for (const auto& ac : group.area.cells()) {
        if (ac.Covers(c)) {
          coords.emplace_back(org, cell);
          break;
        }
      }
    }
  }
  if (coords.empty()) return out;
  for (size_t i = 0; i < count; ++i) {
    const auto& [org, cell] = coords[rng_.NextBelow(coords.size())];
    auto e = xml::Node::Element("experiment");
    e->AddElementWithText("organism", org.ToString());
    e->AddElementWithText("celltype", cell.ToString());
    e->AddElementWithText("gene",
                          "GENE" + std::to_string(rng_.NextBelow(5000)));
    e->AddElementWithText("value", FormatDouble(rng_.NextDouble() * 16.0));
    e->AddElementWithText("lab", group.name);
    out.push_back(algebra::Item(e.release()));
  }
  return out;
}

}  // namespace mqp::workload
