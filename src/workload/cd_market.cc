#include "workload/cd_market.h"

namespace mqp::workload {

namespace {
const char* const kWords[] = {"blue",  "giant", "quiet",  "electric",
                              "stolen", "velvet", "midnight", "paper",
                              "golden", "broken"};
}  // namespace

CdMarketGenerator::CdMarketGenerator(uint64_t seed) : rng_(seed) {}

std::vector<std::string> CdMarketGenerator::MakeTitles(size_t n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(std::string(kWords[rng_.NextBelow(10)]) + " " +
                  kWords[rng_.NextBelow(10)] + " " + std::to_string(i));
  }
  return out;
}

algebra::ItemSet CdMarketGenerator::MakeSellerCds(
    const std::vector<std::string>& titles, const std::string& seller,
    size_t count) {
  algebra::ItemSet out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    auto cd = xml::Node::Element("cd");
    cd->AddElementWithText("title",
                           titles[rng_.NextZipf(titles.size(), 0.7)]);
    cd->AddElementWithText(
        "price", std::to_string(4 + rng_.NextBelow(21)) + "." +
                     std::to_string(rng_.NextBelow(100) / 10) +
                     std::to_string(rng_.NextBelow(10)));
    cd->AddElementWithText("seller", seller);
    out.push_back(algebra::Item(cd.release()));
  }
  return out;
}

algebra::ItemSet CdMarketGenerator::MakeTrackListings(
    const std::vector<std::string>& titles, size_t songs_per) {
  algebra::ItemSet out;
  out.reserve(titles.size() * songs_per);
  for (const auto& title : titles) {
    for (size_t s = 0; s < songs_per; ++s) {
      auto listing = xml::Node::Element("listing");
      listing->AddElementWithText("CDtitle", title);
      listing->AddElementWithText(
          "song", std::string(kWords[rng_.NextBelow(10)]) + " song " +
                      std::to_string(rng_.Next() % 100000));
      out.push_back(algebra::Item(listing.release()));
    }
  }
  return out;
}

algebra::ItemSet CdMarketGenerator::MakeFavoriteSongs(
    const algebra::ItemSet& listings, size_t count) {
  algebra::ItemSet out;
  out.reserve(count);
  for (size_t i = 0; i < count && !listings.empty(); ++i) {
    const auto& listing = listings[rng_.NextBelow(listings.size())];
    auto song = xml::Node::Element("song");
    song->AddElementWithText("name", listing->ChildText("song"));
    out.push_back(algebra::Item(song.release()));
  }
  return out;
}

algebra::Plan MakeFigure3Plan(const algebra::ItemSet& favorite_songs,
                              const std::string& forsale_urn,
                              const std::string& tracklist_urn,
                              const std::string& target,
                              const std::string& max_price) {
  using algebra::PlanNode;
  auto cheap_cds = PlanNode::Select(algebra::FieldLess("price", max_price),
                                    PlanNode::UrnRef(forsale_urn));
  auto with_songs =
      PlanNode::Join(algebra::JoinEq("title", "CDtitle"), cheap_cds,
                     PlanNode::UrnRef(tracklist_urn));
  auto matched = PlanNode::Join(algebra::JoinEq("song", "name"), with_songs,
                                PlanNode::XmlData(favorite_songs));
  return algebra::Plan(PlanNode::Display(target, matched));
}

}  // namespace mqp::workload
