#include "workload/network_builder.h"

#include "ns/urn.h"

namespace mqp::workload {

using peer::Peer;
using peer::PeerOptions;

peer::Peer* GarageSaleNetwork::IndexFor(
    const ns::InterestCell& seller_cell) const {
  for (Peer* idx : index_servers) {
    if (idx->options().interest.Overlaps(
            ns::InterestArea(seller_cell))) {
      return idx;
    }
  }
  return top_meta;
}

// Item fields carrying the Location and Merchandise coordinates.
static const std::vector<std::string> kGarageSaleFields = {"location",
                                                           "category"};

GarageSaleNetwork BuildGarageSaleNetwork(net::Simulator* sim,
                                         const GarageSaleNetworkParams& p) {
  GarageSaleNetwork net;
  net.generator = GarageSaleGenerator(p.seed);

  // Top-level authoritative meta-index server covering everything.
  {
    PeerOptions opts;
    opts.name = "meta-top";
    opts.dimension_fields = kGarageSaleFields;
    opts.interest = ns::InterestArea(ns::InterestCell(
        {ns::CategoryPath(), ns::CategoryPath()}));
    opts.roles.meta_index = true;
    opts.roles.authoritative = true;
    opts.use_intensional_statements = p.use_statements;
    net.owned.push_back(std::make_unique<Peer>(sim, opts));
    net.top_meta = net.owned.back().get();
  }

  // One index server per state-level location, covering [state, *].
  for (const char* state : {"USA/OR", "USA/WA", "USA/CA", "France"}) {
    PeerOptions opts;
    opts.name = std::string("index-") + state;
    opts.dimension_fields = kGarageSaleFields;
    auto path = ns::CategoryPath::Parse(state);
    opts.interest = ns::InterestArea(
        ns::InterestCell({*path, ns::CategoryPath()}));
    opts.roles.index = true;
    opts.roles.authoritative = true;
    opts.use_intensional_statements = p.use_statements;
    net.owned.push_back(std::make_unique<Peer>(sim, opts));
    Peer* idx = net.owned.back().get();
    idx->AddBootstrap(net.top_meta->address());
    net.index_servers.push_back(idx);
  }

  // Sellers: base servers, one collection each, registered with the index
  // server covering their state.
  net.seller_specs = net.generator.MakeSellers(p.num_sellers);
  for (size_t i = 0; i < net.seller_specs.size(); ++i) {
    const Seller& spec = net.seller_specs[i];
    PeerOptions opts;
    opts.name = spec.name;
    opts.dimension_fields = kGarageSaleFields;
    opts.interest = ns::InterestArea(spec.cell);
    opts.roles.base = true;
    opts.use_intensional_statements = p.use_statements;
    net.owned.push_back(std::make_unique<Peer>(sim, opts));
    Peer* seller = net.owned.back().get();
    auto items = net.generator.MakeItems(spec, p.items_per_seller);
    net.all_items.insert(net.all_items.end(), items.begin(), items.end());
    seller->PublishCollection("c" + std::to_string(i),
                              ns::InterestArea(spec.cell), items);
    net.sellers.push_back(seller);
    seller->AddBootstrap(net.IndexFor(spec.cell)->address());
  }

  // Client: knows only the top meta server (out-of-band bootstrap, §3.2).
  {
    PeerOptions opts = p.client_template;
    if (opts.name.empty()) opts.name = "client";
    opts.use_intensional_statements = p.use_statements;
    opts.dimension_fields = kGarageSaleFields;
    net.owned.push_back(std::make_unique<Peer>(sim, opts));
    net.client = net.owned.back().get();
    net.client->AddBootstrap(net.top_meta->address());
  }

  // Join: index servers announce to the meta level first, then sellers
  // register with their index servers.
  for (Peer* idx : net.index_servers) idx->JoinNetwork();
  sim->Run();
  for (Peer* s : net.sellers) s->JoinNetwork();
  sim->Run();
  return net;
}

algebra::Plan MakeAreaQueryPlan(const ns::InterestArea& area,
                                algebra::ExprPtr predicate) {
  using algebra::PlanNode;
  algebra::PlanNodePtr body =
      PlanNode::UrnRef(ns::AreaToUrn(area).ToString());
  if (predicate != nullptr) {
    body = PlanNode::Select(std::move(predicate), std::move(body));
  }
  return algebra::Plan(PlanNode::Display("", std::move(body)));
}

}  // namespace mqp::workload
