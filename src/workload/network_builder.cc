#include "workload/network_builder.h"

#include "ns/urn.h"

namespace mqp::workload {

using peer::Peer;
using peer::PeerOptions;

peer::Peer* GarageSaleNetwork::IndexFor(
    const ns::InterestCell& seller_cell) const {
  for (Peer* idx : index_servers) {
    if (idx->options().interest.Overlaps(
            ns::InterestArea(seller_cell))) {
      return idx;
    }
  }
  return top_meta;
}

// Item fields carrying the Location and Merchandise coordinates.
static const std::vector<std::string> kGarageSaleFields = {"location",
                                                           "category"};

GarageSaleNetwork BuildGarageSaleNetwork(net::Transport* sim,
                                         const GarageSaleNetworkParams& p) {
  GarageSaleNetwork net;
  net.generator = GarageSaleGenerator(p.seed);

  // Top-level authoritative meta-index server covering everything.
  {
    PeerOptions opts;
    opts.name = "meta-top";
    opts.dimension_fields = kGarageSaleFields;
    opts.interest = ns::InterestArea(ns::InterestCell(
        {ns::CategoryPath(), ns::CategoryPath()}));
    opts.roles.meta_index = true;
    opts.roles.authoritative = true;
    opts.use_intensional_statements = p.use_statements;
    net.owned.push_back(std::make_unique<Peer>(sim, opts));
    net.top_meta = net.owned.back().get();
  }

  // One index server per state-level location, covering [state, *].
  for (const char* state : {"USA/OR", "USA/WA", "USA/CA", "France"}) {
    PeerOptions opts;
    opts.name = std::string("index-") + state;
    opts.dimension_fields = kGarageSaleFields;
    auto path = ns::CategoryPath::Parse(state);
    opts.interest = ns::InterestArea(
        ns::InterestCell({*path, ns::CategoryPath()}));
    opts.roles.index = true;
    opts.roles.authoritative = true;
    opts.use_intensional_statements = p.use_statements;
    net.owned.push_back(std::make_unique<Peer>(sim, opts));
    Peer* idx = net.owned.back().get();
    idx->AddBootstrap(net.top_meta->address());
    net.index_servers.push_back(idx);
  }

  // Sellers: base servers, one collection each, registered with the index
  // server covering their state.
  net.seller_specs = net.generator.MakeSellers(p.num_sellers);
  for (size_t i = 0; i < net.seller_specs.size(); ++i) {
    const Seller& spec = net.seller_specs[i];
    PeerOptions opts;
    opts.name = spec.name;
    opts.dimension_fields = kGarageSaleFields;
    opts.interest = ns::InterestArea(spec.cell);
    opts.roles.base = true;
    opts.use_intensional_statements = p.use_statements;
    net.owned.push_back(std::make_unique<Peer>(sim, opts));
    Peer* seller = net.owned.back().get();
    auto items = net.generator.MakeItems(spec, p.items_per_seller);
    net.all_items.insert(net.all_items.end(), items.begin(), items.end());
    seller->PublishCollection("c" + std::to_string(i),
                              ns::InterestArea(spec.cell), items);
    net.sellers.push_back(seller);
    seller->AddBootstrap(net.IndexFor(spec.cell)->address());
  }

  // Client: knows only the top meta server (out-of-band bootstrap, §3.2).
  {
    PeerOptions opts = p.client_template;
    if (opts.name.empty()) opts.name = "client";
    opts.use_intensional_statements = p.use_statements;
    opts.dimension_fields = kGarageSaleFields;
    net.owned.push_back(std::make_unique<Peer>(sim, opts));
    net.client = net.owned.back().get();
    net.client->AddBootstrap(net.top_meta->address());
  }

  // Join: index servers announce to the meta level first, then sellers
  // register with their index servers.
  for (Peer* idx : net.index_servers) idx->JoinNetwork();
  sim->Run();
  for (Peer* s : net.sellers) s->JoinNetwork();
  sim->Run();
  return net;
}

// --- super-peer hierarchy -----------------------------------------------------

namespace {

// Synthetic 2-dim fields; the coordinates are flat labels so no
// namespace-hierarchy definition is needed (cells compare by path
// prefix, and "r3/c7" is covered by "r3").
const std::vector<std::string> kSuperPeerFields = {"location", "category"};

ns::CategoryPath MustParse(const std::string& text) {
  auto p = ns::CategoryPath::Parse(text);
  return *p;
}

}  // namespace

ns::InterestArea SuperPeerRegion(size_t super) {
  return ns::InterestArea(ns::InterestCell(
      {MustParse("r" + std::to_string(super)), ns::CategoryPath()}));
}

ns::InterestArea SuperPeerCity(size_t super, size_t city) {
  return ns::InterestArea(ns::InterestCell(
      {MustParse("r" + std::to_string(super) + "/c" + std::to_string(city)),
       ns::CategoryPath()}));
}

SuperPeerNetwork BuildSuperPeerNetwork(net::Transport* sim,
                                       const SuperPeerNetworkParams& p) {
  SuperPeerNetwork net;
  const size_t population =
      p.num_super_peers * p.leaves_per_super + p.num_super_peers + 2;
  net.owned.reserve(population);
  net.super_peers.reserve(p.num_super_peers);
  net.leaves.reserve(p.num_super_peers * p.leaves_per_super);

  // Root meta-index, authoritative for everything.
  {
    PeerOptions opts;
    opts.name = "root";
    opts.dimension_fields = kSuperPeerFields;
    opts.interest = ns::InterestArea(
        ns::InterestCell({ns::CategoryPath(), ns::CategoryPath()}));
    opts.roles.meta_index = true;
    opts.roles.authoritative = true;
    opts.use_intensional_statements = p.use_statements;
    net.owned.push_back(std::make_unique<Peer>(sim, opts));
    net.root = net.owned.back().get();
  }

  // Super-peers: each indexes and is authoritative for its region
  // [r<i>, *]; the catalog tier is root + these.
  for (size_t s = 0; s < p.num_super_peers; ++s) {
    PeerOptions opts;
    opts.name = "super-" + std::to_string(s);
    opts.dimension_fields = kSuperPeerFields;
    opts.interest = SuperPeerRegion(s);
    opts.roles.index = true;
    opts.roles.authoritative = true;
    opts.use_intensional_statements = p.use_statements;
    net.owned.push_back(std::make_unique<Peer>(sim, opts));
    Peer* sp = net.owned.back().get();
    sp->AddBootstrap(net.root->address());
    net.super_peers.push_back(sp);
  }

  // Leaves: base servers spread round-robin over each region's cities and
  // the category vocabulary. Everything is deterministic in the indices
  // (the seed only perturbs prices) so ground truth per city cell is
  // computable without materialising item lists.
  Rng rng(p.seed);
  const size_t cities = p.cities_per_super == 0 ? 1 : p.cities_per_super;
  const size_t cats = p.categories == 0 ? 1 : p.categories;
  for (size_t s = 0; s < p.num_super_peers; ++s) {
    for (size_t j = 0; j < p.leaves_per_super; ++j) {
      const size_t city = j % cities;
      const size_t cat = (s + j) % cats;
      const std::string loc =
          "r" + std::to_string(s) + "/c" + std::to_string(city);
      const std::string category = "g" + std::to_string(cat);
      PeerOptions opts;
      opts.name = "leaf-" + std::to_string(s) + "-" + std::to_string(j);
      opts.dimension_fields = kSuperPeerFields;
      ns::InterestCell cell({MustParse(loc), MustParse(category)});
      opts.interest = ns::InterestArea(cell);
      opts.roles.base = true;
      opts.use_intensional_statements = p.use_statements;
      net.owned.push_back(std::make_unique<Peer>(sim, opts));
      Peer* leaf = net.owned.back().get();

      algebra::ItemSet items;
      items.reserve(p.items_per_leaf);
      for (size_t k = 0; k < p.items_per_leaf; ++k) {
        auto item = xml::Node::Element("item");
        item->AddElementWithText("name", opts.name + "-item-" +
                                             std::to_string(k));
        item->AddElementWithText("category", category);
        item->AddElementWithText("location", loc);
        item->AddElementWithText("price",
                                 std::to_string(1 + rng.NextBelow(200)));
        items.push_back(algebra::Item(item.release()));
      }
      leaf->PublishCollection("c0", ns::InterestArea(cell), items);
      leaf->AddBootstrap(net.super_peers[s]->address());
      net.leaves.push_back(leaf);
    }
  }

  // Client, bootstrapped out-of-band to the root only.
  {
    PeerOptions opts = p.client_template;
    if (opts.name.empty()) opts.name = "client";
    opts.dimension_fields = kSuperPeerFields;
    opts.use_intensional_statements = p.use_statements;
    net.owned.push_back(std::make_unique<Peer>(sim, opts));
    net.client = net.owned.back().get();
    net.client->AddBootstrap(net.root->address());
  }

  // Join bottom of the catalog tier first, then all leaves at once — the
  // second drain is the registration burst the substrate bench measures.
  for (Peer* sp : net.super_peers) sp->JoinNetwork();
  sim->Run();
  for (Peer* leaf : net.leaves) leaf->JoinNetwork();
  sim->Run();

  // Catalog placement: gossip runs on the catalog tier only.
  if (p.sync_catalog_tier) {
    sync::SyncOptions o = p.sync;
    o.seed = p.sync.seed;
    net.root->EnableSync(o);
    for (Peer* sp : net.super_peers) {
      o.seed = o.seed * 6364136223846793005ULL + 1442695040888963407ULL;
      sp->EnableSync(o);
    }
  }
  return net;
}

algebra::Plan MakeAreaQueryPlan(const ns::InterestArea& area,
                                algebra::ExprPtr predicate) {
  using algebra::PlanNode;
  algebra::PlanNodePtr body =
      PlanNode::UrnRef(ns::AreaToUrn(area).ToString());
  if (predicate != nullptr) {
    body = PlanNode::Select(std::move(predicate), std::move(body));
  }
  return algebra::Plan(PlanNode::Display("", std::move(body)));
}

algebra::Plan MakeTopKQueryPlan(const ns::InterestArea& area,
                                std::string order_field, bool ascending,
                                uint64_t k, algebra::ExprPtr predicate) {
  using algebra::PlanNode;
  algebra::PlanNodePtr body =
      PlanNode::UrnRef(ns::AreaToUrn(area).ToString());
  if (predicate != nullptr) {
    body = PlanNode::Select(std::move(predicate), std::move(body));
  }
  body = PlanNode::TopN(k, std::move(order_field), ascending,
                        std::move(body));
  return algebra::Plan(PlanNode::Display("", std::move(body)));
}

}  // namespace mqp::workload
