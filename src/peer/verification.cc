#include "peer/verification.h"

namespace mqp::peer {

using algebra::Plan;
using algebra::PlanNode;

std::vector<SuspiciousBinding> FindSuspiciousBindings(
    const Plan& final_plan, const std::string& urn,
    const std::string& expected_server) {
  std::vector<SuspiciousBinding> out;
  if (final_plan.original() == nullptr) return out;
  // Was the URN part of the original query?
  bool in_original = false;
  for (const PlanNode* u : final_plan.original()->UrnLeaves()) {
    if (u->urn() == urn) {
      in_original = true;
      break;
    }
  }
  if (!in_original) return out;
  // Still unresolved in the final plan? Then nothing was spoofed; the
  // query simply failed to find the resource.
  if (final_plan.root() != nullptr) {
    for (const PlanNode* u : final_plan.root()->UrnLeaves()) {
      if (u->urn() == urn) return out;
    }
  }
  // The URN was bound and evaluated away. Did the plan ever visit the
  // server expected to hold it?
  if (!expected_server.empty()) {
    if (!final_plan.provenance().Visited(expected_server)) {
      out.push_back({urn});
    }
    return out;
  }
  // Heuristic: a plan whose every non-client visit is the same server.
  const auto& entries = final_plan.provenance().entries();
  std::string single;
  bool multiple = false;
  for (size_t i = 1; i < entries.size(); ++i) {
    if (single.empty()) {
      single = entries[i].server;
    } else if (entries[i].server != single) {
      multiple = true;
    }
  }
  if (!multiple && !single.empty()) out.push_back({urn});
  return out;
}

Plan MakeVerificationQuery(const std::string& urn,
                           const std::string& target) {
  auto count = PlanNode::Aggregate(algebra::AggFunc::kCount, "", "",
                                   PlanNode::UrnRef(urn));
  Plan plan(PlanNode::Display(target, std::move(count)));
  return plan;
}

}  // namespace mqp::peer
