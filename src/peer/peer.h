// Peer: one participant in the P2P network, composing the roles of §3.2
// (base / index / meta-index / category server, optionally authoritative)
// with the mutant-query processing loop of Figure 2:
//
//   parse → resolve URNs via catalog → rewrite/optimize → policy-select
//   evaluable sub-plans → evaluate & reduce → route or deliver.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "algebra/plan_xml.h"
#include "catalog/catalog.h"
#include "common/rng.h"
#include "engine/local_store.h"
#include "engine/operator.h"
#include "engine/topk_heap.h"
#include "net/transport.h"
#include "ns/hierarchy.h"
#include "ns/interest.h"
#include "optimizer/cost.h"
#include "optimizer/policy.h"
#include "optimizer/rewrites.h"
#include "sync/gossip.h"
#include "wire/envelope.h"

namespace mqp::peer {

// Message kinds (owned by the wire layer; re-exported for existing users).
inline constexpr auto kMqpKind = wire::kMqpKind;
inline constexpr auto kResultKind = wire::kResultKind;
inline constexpr auto kRegisterKind = wire::kRegisterKind;
inline constexpr auto kCategoryQueryKind = wire::kCategoryQueryKind;
inline constexpr auto kCategoryReplyKind = wire::kCategoryReplyKind;
inline constexpr auto kFetchKind = wire::kFetchKind;
inline constexpr auto kFetchReplyKind = wire::kFetchReplyKind;
inline constexpr auto kSubqueryKind = wire::kSubqueryKind;
inline constexpr auto kSubqueryReplyKind = wire::kSubqueryReplyKind;
inline constexpr auto kSyncDigestKind = wire::kSyncDigestKind;
inline constexpr auto kSyncDeltaKind = wire::kSyncDeltaKind;
inline constexpr auto kCancelKind = wire::kCancelKind;

/// \brief Which §3.2 roles this peer performs (freely composable).
struct PeerRoles {
  bool base = false;        ///< serves named collections of data
  bool index = false;       ///< tracks base servers (with collection detail)
  bool meta_index = false;  ///< tracks servers by interest area only
  bool category = false;    ///< answers hierarchy-structure queries
  bool authoritative = false;  ///< strives to know all servers in its area
};

/// \brief Client-side query-reliability knobs (DESIGN.md §9). With
/// `enabled` false the peer behaves exactly as before the reliability
/// layer existed — no retries, no failover filtering, no deadline on the
/// wire — except that a nonzero deadline still reaps the pending entry
/// (the state-leak fix stands even when the layer is ablated).
struct ReliabilityOptions {
  bool enabled = true;

  /// Per-query deadline budget in seconds from submission (0 = none:
  /// the query may pend forever, the pre-reliability behaviour).
  double query_deadline_seconds = 120;

  /// Base per-attempt timeout before the first retry fires.
  double retry_timeout_seconds = 4;
  /// Exponential-backoff multiplier and cap for subsequent attempts.
  double backoff_factor = 2.0;
  double max_backoff_seconds = 30;
  /// Uniform jitter fraction on each backoff (0.2 → ±20%), drawn from a
  /// per-peer seeded Rng so schedules stay deterministic.
  double retry_jitter = 0.2;
  /// Retries after the initial attempt (total attempts = 1 + max_retries).
  /// Deep enough that with the default backoff ladder the deadline, not
  /// this count, is what normally ends a hopeless query.
  uint32_t max_retries = 8;

  /// How long a server stays quarantined on the suspicion list after a
  /// failed interaction; suspect servers lose routing ties and their
  /// binding alternatives are skipped while fresher ones exist.
  double suspicion_ttl_seconds = 60;

  /// Seeds the per-peer jitter stream (combined with the peer id).
  uint64_t seed = 1;
};

/// \brief Overload-protection knobs (DESIGN.md §11). ANDed with the
/// global peer::set_use_overload_protection ablation: with either off,
/// the peer accepts every query, never sheds, never aborts an
/// evaluation, and never cancels — the pre-overload reference. The
/// defaults are inert (no service-time model, no row budgets), so a
/// peer that never configures this struct behaves byte-identically to
/// before the layer existed.
struct OverloadOptions {
  bool enabled = true;

  /// Modeled service rate for remote plan processing, in queries per
  /// virtual second. 0 keeps handlers instantaneous in virtual time —
  /// the pre-overload behaviour. When set, each admitted remote plan
  /// occupies this peer for 1/rate seconds and later arrivals queue
  /// behind it (deferred via transport timers), which is what gives
  /// overload a latency consequence on simulated backends. The queue's
  /// projected delay is also what admission control sheds on. Applies
  /// in ablated mode too: it models the peer's capacity, not the
  /// protection.
  double service_rate_qps = 0;

  /// Projected-queueing-delay watermark (seconds) past which
  /// best-effort (priority-0) plans are refused outright.
  double shed_delay_seconds = 2.0;
  /// RED-style gray zone: past `early_shed_fraction * shed_delay_seconds`
  /// best-effort plans are shed probabilistically (linearly ramping to
  /// certainty at the watermark), by a seeded coin that is a pure
  /// function of (seed, query id, attempt) — bit-identical across
  /// backends, the FaultInjector pattern.
  double early_shed_fraction = 0.5;
  /// Higher-priority plans (policy priority > 0) are refused only past
  /// this multiple of the watermark.
  double high_priority_ceiling = 4.0;

  /// Client-side admission: refuse SubmitQuery outright (outcome
  /// `shed`, complete=false) while this many queries are already
  /// pending here. 0 = unlimited.
  size_t max_pending_queries = 0;

  /// Deadline → row-allowance conversion for the per-query engine
  /// budget: an evaluation may produce (remaining deadline seconds ×
  /// this rate) rows before it aborts with a partial. 0 disables row
  /// budgets (the default).
  uint64_t budget_rows_per_second = 0;
  /// Allowance floor so an almost-expired query still makes progress —
  /// also the whole allowance for post-deadline salvage evaluation.
  uint64_t min_budget_rows = 256;
  /// Wall-clock backstop per evaluation (engine::EvalLimits), for
  /// runtimes without a virtual clock. 0 = none.
  double max_eval_seconds = 0;

  /// Seeds the shed-coin stream (combined with the query id + attempt).
  uint64_t seed = 1;
};

/// \brief Per-peer configuration.
struct PeerOptions {
  std::string name;          ///< human-readable label (for traces)
  ns::InterestArea interest; ///< the peer's interest area
  PeerRoles roles;

  optimizer::PolicyConfig policy;  ///< deferment policy (Figure 2)
  optimizer::CostParams cost;

  bool record_provenance = true;   ///< §5.1
  bool retain_original = false;    ///< carry the original plan in the MQP
  bool enable_select_pushdown = true;
  bool enable_consolidation = true;
  bool enable_absorption = true;
  bool enable_difference_split = true;  ///< §4.2 Example 3's rewrite
  bool use_intensional_statements = true;  ///< §4 machinery on/off

  /// Routing loop guard. MQPs visit base servers sequentially (the
  /// pipelining trade of §2), so this must exceed the number of servers a
  /// wide query touches.
  int max_hops = 256;

  /// §3.4/§5.1 catalog caching: harvest (area → index server) entries
  /// from resolver hints seen in passing MQPs, and — when retain_original
  /// is set — from the provenance of returned results.
  bool cache_from_plans = true;

  /// Authoritative servers re-announce *index-level* registrations upward
  /// (§3.3). When this is also set, base-level entries are forwarded too —
  /// which collapses the hierarchy toward a central index (ablation knob).
  bool forward_base_registrations = false;

  /// Item fields carrying the namespace coordinates, in dimension order
  /// (e.g. {"location", "category"}). Used to filter collections broader
  /// than a requested area down to the requested portion.
  std::vector<std::string> dimension_fields;

  /// Numeric fields to histogram when annotating local collections (§5.1);
  /// downstream cost models use them for selectivity estimation.
  std::vector<std::string> histogram_fields;

  /// Test hook for §5.1 spoofing: URNs whose text contains this substring
  /// are bound to the empty set with normal-looking provenance.
  std::string spoof_urn_substring;

  /// Client-side reliability: deadlines, retries, failover, partials.
  ReliabilityOptions reliability;

  /// Overload protection: admission control, per-query resource
  /// budgets, priority shedding, cooperative cancellation (DESIGN.md
  /// §11).
  OverloadOptions overload;
};

/// Global ablation knob (DESIGN.md §11), ANDed with each peer's
/// OverloadOptions.enabled: false disables admission control, engine
/// budgets, and cancellation everywhere — the reference the overload
/// bench compares against. The service-time model (service_rate_qps)
/// stays on either way: it represents the hardware, not the protection.
void set_use_overload_protection(bool on);
bool use_overload_protection();

/// \brief What a client gets back for a submitted query.
struct QueryOutcome {
  std::string query_id;
  bool complete = false;        ///< plan fully evaluated
  algebra::ItemSet items;
  algebra::Provenance provenance;
  double submitted_at = 0;
  double completed_at = 0;
  size_t result_bytes = 0;      ///< wire size of the returning MQP
  algebra::Plan final_plan;     ///< full returning plan (for verification)
  /// Attempts launched for this query (1 = no retries needed).
  uint32_t attempts = 1;
  /// True when the deadline/retry budget ran out: `items` then holds the
  /// best *partial* result any attempt produced (possibly empty), with
  /// provenance marking what went unanswered — degradation, not silence.
  bool timed_out = false;
  /// True when client-side admission control refused the query at
  /// submission (DESIGN.md §11): nothing was sent, `items` is empty.
  bool shed = false;
};

/// \brief Simple counters exposed for tests and benches.
struct PeerCounters {
  uint64_t plans_received = 0;
  uint64_t plans_forwarded = 0;
  uint64_t urns_bound = 0;
  uint64_t subplans_evaluated = 0;
  uint64_t subplans_deferred = 0;
  uint64_t registrations_received = 0;
  uint64_t results_delivered = 0;
  uint64_t plans_dead_ended = 0;
  // Wire-layer serialization-cache counters (see wire/plan_codec.h).
  uint64_t plan_serializations = 0;          ///< plan bodies produced here
  uint64_t plan_parses = 0;                  ///< plan bodies parsed here
  uint64_t forwards_without_reserialize = 0; ///< cache hits: buffer reused
  // Streaming-codec counters (see wire/plan_codec.h). dom_nodes_built
  // spans the whole plan-message handling (decode through forward/reply),
  // so a pure routing hop asserts it at exactly zero.
  uint64_t token_decodes = 0;                ///< plans decoded via tokens
  uint64_t dom_nodes_built = 0;              ///< xml::Nodes built handling plans
  uint64_t plan_decode_ns = 0;               ///< steady-clock decode time
  // Catalog-resolution counters (see catalog::ResolveStats).
  uint64_t resolve_index_probes = 0;         ///< area-index bucket probes
  uint64_t resolve_entries_scanned = 0;      ///< entries overlap-tested
  uint64_t binding_cache_hits = 0;           ///< resolutions answered cached
  // Query-engine counters (see engine::EngineStats). items_cloned spans
  // every store/engine touch this peer makes, so a filter query over a
  // local collection asserts it at exactly zero.
  uint64_t items_cloned = 0;                 ///< whole items deep-copied
  uint64_t field_accessor_hits = 0;          ///< compiled key extractions
  uint64_t structural_hash_probes = 0;       ///< set-semantics hash probes
  uint64_t engine_eval_ns = 0;               ///< steady-clock eval time
  // Query-reliability counters (DESIGN.md §9), mirrored into
  // net::NetStats as they happen.
  uint64_t query_retries = 0;          ///< retry attempts launched
  uint64_t query_timeouts = 0;         ///< queries finished incomplete
  uint64_t failovers = 0;              ///< dead/suspect servers routed around
  uint64_t duplicates_suppressed = 0;  ///< late results for finished queries
  uint64_t partials_delivered = 0;     ///< incomplete outcomes with items
  // Distributed top-k counters (DESIGN.md §10), mirrored into
  // net::NetStats as they happen. All zero with the ablation knob
  // (optimizer::set_use_distributed_topk) off.
  uint64_t topk_batches = 0;            ///< bounded reply batches merged
  uint64_t topk_rows_pruned = 0;        ///< rows proven dead, never shipped
  uint64_t topk_bytes_saved = 0;        ///< est. bytes the bounds avoided
  uint64_t topk_early_terminations = 0; ///< sources cut before exhaustion
  // Reply-demux hygiene (asserted zero by the happy-path suites).
  uint64_t reply_decode_failures = 0;  ///< malformed reply/subquery bodies
  uint64_t unmatched_replies = 0;      ///< replies matching no request
  // Overload-protection counters (DESIGN.md §11), mirrored into
  // net::NetStats as they happen. All zero with the ablation knob
  // (peer::set_use_overload_protection) off.
  uint64_t queries_shed = 0;            ///< plans refused by admission control
  uint64_t budget_aborts = 0;           ///< evaluations cut by their budget
  uint64_t cancels_sent = 0;            ///< cancel fan-out messages sent
  uint64_t cancelled_sessions_reaped = 0;  ///< sessions/queued plans reaped
};

/// \brief A network participant. Attach to any net::Transport (the
/// deterministic simulator, the threaded runtime, or the TCP
/// transport — DESIGN.md §8), publish data or indexes, join, and
/// submit queries. All mutable peer state is peer-confined: the
/// transport serializes handler invocations per peer.
class Peer : public net::PeerNode {
 public:
  /// Registers with `net` (which must outlive the peer).
  Peer(net::Transport* net, PeerOptions options);

  net::PeerId id() const { return id_; }
  /// This peer's cached network address (no allocation per call).
  const std::string& address() const { return sim_->Address(id_); }
  const PeerOptions& options() const { return options_; }
  PeerOptions& mutable_options() { return options_; }

  catalog::Catalog& catalog() { return catalog_; }
  const catalog::Catalog& catalog() const { return catalog_; }
  engine::LocalStore& store() { return store_; }
  const PeerCounters& counters() const { return counters_; }

  // --- base-server API --------------------------------------------------------

  /// Publishes a collection of items under `area`. The collection becomes
  /// locally resolvable immediately and is announced on JoinNetwork().
  void PublishCollection(const std::string& collection_id,
                         const ns::InterestArea& area,
                         const algebra::ItemSet& items);

  /// Publishes a *named* resource (e.g. "urn:CD:TrackListings" → a local
  /// collection).
  void PublishNamed(const std::string& urn, const std::string& collection_id,
                    const algebra::ItemSet& items);

  /// Adds an intensional statement this peer asserts about itself; it is
  /// propagated to index servers on JoinNetwork() (§4.2: "whenever a
  /// server registers ... it can also provide intensional statements").
  void AddOwnStatement(catalog::IntensionalStatement st);

  // --- membership -------------------------------------------------------------

  /// Out-of-band bootstrap (§3.2: peers discover top-level meta-index
  /// servers outside the P2P network).
  void AddBootstrap(const std::string& address);
  const std::vector<std::string>& bootstraps() const { return bootstraps_; }

  /// Registers this peer's holdings/interest with bootstrap servers and
  /// any index servers already known to the local catalog.
  void JoinNetwork();

  // --- dynamic catalog maintenance (src/sync/) --------------------------------

  /// Enables the gossip/anti-entropy layer: seeds a versioned catalog
  /// with this peer's own holdings (see OwnSyncEntries), adds bootstraps
  /// as gossip partners, and starts the Schedule-driven gossip loop.
  /// Publications after this call are upserted into the sync layer too.
  void EnableSync(const sync::SyncOptions& options);

  /// The sync agent, or null when EnableSync was never called.
  sync::SyncAgent* sync() { return sync_.get(); }
  const sync::SyncAgent* sync() const { return sync_.get(); }

  /// Graceful departure: tombstones this peer's catalog facts and pushes
  /// them to the gossip partners. The caller then fails the peer.
  void LeaveNetwork();

  /// Recovery hook for churn drivers: re-stamps all own records so other
  /// catalogs (whose vectors dominate the pre-failure stamps) re-learn
  /// them, and resumes gossip.
  void RejoinNetwork();

  /// This peer's own catalog facts in syncable form: one area entry per
  /// published collection, an index-level entry when the peer serves an
  /// index/meta role, and one named entry per published named URN.
  std::vector<catalog::SyncEntry> OwnSyncEntries() const;

  /// §3.3's complementary *pull* process: an index server fetches the data
  /// of every base server in its catalog, stores local replicas, and
  /// asserts the corresponding §4.3 containment statements
  /// (base[area]@self ⊇ base[area]@source{delay}). Future bindings can
  /// then answer from the replica alone — the §4.3 currency/latency trade.
  /// `delay_minutes` is the declared refresh period.
  void PullIndexedData(int delay_minutes);

  /// Number of replica collections created by PullIndexedData.
  size_t replica_count() const { return replicas_.size(); }

  /// Drops a replica created by PullIndexedData (e.g. when its source
  /// leaves the network). Replica ids are minted from a monotonic
  /// counter, so a dropped id is never reused by a later pull.
  void DropReplica(const std::string& collection_id);

  /// Distributed top-k merge sessions currently coordinated here.
  size_t topk_sessions() const { return topk_sessions_.size(); }

  // --- category-server API ------------------------------------------------------

  /// Serves `ns` (not owned) when the category role is set; also enables
  /// §3.5 approximation of unknown categories during resolution.
  void ServeHierarchies(const ns::MultiHierarchy* ns) {
    // Warm the lazy interval/string caches now, while still on the setup
    // thread: the namespace may be shared read-only by several peers, and
    // warmed const probes are pure reads (DESIGN.md §8).
    ns->Warm();
    hierarchies_ = ns;
    catalog_.set_hierarchies(ns);
  }

  using CategoryCallback = std::function<void(const std::vector<std::string>&)>;

  /// Asks the category server at `server` for the immediate subcategories
  /// of `path` in `dimension` (§3.5). The reply arrives via `cb`.
  void RequestCategories(const std::string& server,
                         const std::string& dimension,
                         const std::string& path, CategoryCallback cb);

  // --- client API --------------------------------------------------------------

  using Callback = std::function<void(const QueryOutcome&)>;

  /// Submits a query. The plan's display target is overwritten to this
  /// peer; processing starts locally and the result arrives via `cb` once
  /// the MQP returns — or, with reliability enabled, once the deadline or
  /// retry budget runs out (then with whatever partial result the best
  /// attempt produced). Returns the assigned query id.
  std::string SubmitQuery(algebra::Plan plan, Callback cb);

  /// Queries submitted here still awaiting an outcome. With a deadline
  /// configured this returns to zero once every query resolves or is
  /// reaped — the pending map must not grow across a churn loop.
  size_t pending_queries() const { return pending_.size(); }

  /// True while `server` sits on the suspicion list (failed interaction
  /// within the TTL). Suspect servers are routed around when any
  /// alternative exists.
  bool IsSuspect(const std::string& server);

  // --- net::PeerNode -------------------------------------------------------------

  void HandleMessage(const net::Message& msg) override;

 private:
  struct Pending;  // defined below (client reliability state)

  // The Figure-2 processing loop. `hops` is the wire-layer hop count the
  // plan arrived with (0 for locally submitted queries); `deadline` and
  // `attempt` are the envelope's reliability fields (0 on fault-free
  // legacy traffic) and travel with the plan to the next hop.
  void ProcessPlan(algebra::Plan plan, uint32_t hops = 0, double deadline = 0,
                   uint32_t attempt = 0);

  // --- overload protection (DESIGN.md §11) -------------------------------------

  /// True when both the global knob and this peer's options enable the
  /// protection layer.
  bool OverloadActive() const;
  /// Decode + admission control + service-time deferral for an arriving
  /// remote plan; admitted plans reach ProcessPlan when the modeled
  /// queue drains to them.
  void HandleMqp(const wire::Envelope& env);
  /// Deterministic admission decision for an arriving plan, given the
  /// projected queueing delay (pure in (seed, query id, attempt)).
  bool ShouldShed(double projected_delay, uint32_t priority,
                  const std::string& query_id, uint32_t attempt);
  /// Returns the plan unevaluated with a `shed` provenance marker so the
  /// PR 8 client retries elsewhere or degrades.
  void ShedPlan(algebra::Plan plan, double deadline, uint32_t attempt);
  /// The engine budget for one evaluation under `deadline` (unlimited
  /// when budgets are off or no deadline applies).
  engine::EvalLimits EvalLimitsFor(double deadline) const;
  /// Cancel fan-out to every server this query touched; idempotent on
  /// the receiver.
  void SendCancels(const std::string& query_id, const Pending& p);
  void HandleCancel(const wire::Envelope& env);
  /// Marks a query id cancelled (bounded ring); true if newly marked.
  bool RememberCancelled(const std::string& query_id);

  /// Resolution stage; returns how many URNs were bound.
  int ResolveUrns(algebra::Plan* plan);

  /// Attaches true cardinality/byte annotations to local URL leaves.
  void AnnotateLocalUrls(algebra::Plan* plan);

  /// Rewrite/optimize stage (select pushdown, or-elimination,
  /// consolidation, absorption).
  void ApplyRewrites(algebra::Plan* plan);

  /// Policy + evaluation stage; returns how many sub-plans were reduced.
  int EvaluateSubplans(algebra::Plan* plan);

  /// Final-resort evaluation ignoring deferment (dead-ended plans).
  int ForceEvaluate(algebra::Plan* plan);

  /// Routes an unfinished plan onward, or delivers it if done/stuck.
  void RouteOrDeliver(algebra::Plan plan, uint32_t hops, double deadline = 0,
                      uint32_t attempt = 0);

  /// Serializes via the wire-layer cache, tallying per-peer counters.
  net::Payload PlanBody(const algebra::Plan& plan);

  void DeliverToTarget(algebra::Plan plan, double deadline = 0,
                       uint32_t attempt = 0);
  void HandleResult(const wire::Envelope& env);
  void HandleResultPlan(algebra::Plan plan, size_t wire_bytes);
  void HandleRegister(const wire::Envelope& env);
  void HandleCategoryQuery(const wire::Envelope& env, net::PeerId from);
  void HandleCategoryReply(const wire::Envelope& env);
  void HandleFetch(const wire::Envelope& env, net::PeerId from);
  void HandleFetchReply(const wire::Envelope& env);
  void HandleSubquery(const wire::Envelope& env, net::PeerId from);
  std::string BuildRegisterPayload(int ttl) const;

  // --- distributed top-k coordinator (DESIGN.md §10) ---------------------------

  /// One remote contributor to a top-k merge: an annotated sub-plan the
  /// coordinator streams score-ordered batches from.
  struct TopKSource {
    algebra::PlanNodePtr node;  ///< the annotated sub-plan (in the plan DAG)
    std::string server;         ///< the peer answering for this sub-plan
    bool is_fetch = false;      ///< bare URL leaf → bounded fetch
    std::string xpath;          ///< fetch-path collection selector
    uint32_t leaf = 0;          ///< tie-break position under the TopN
    uint64_t cont = 0;          ///< continuation: rows received so far
    uint64_t batch = 0;         ///< next request's window size
    uint64_t total = 0;         ///< server-reported collection size
    uint64_t received_rows = 0;
    uint64_t received_bytes = 0;
    bool done = false;
    bool terminated_early = false;
  };

  /// An in-flight top-k merge: the parked plan, its consumer TopN, the
  /// shared-order heap, and one TopKSource per remote sub-plan.
  struct TopKSession {
    algebra::Plan plan;
    algebra::PlanNode* topn = nullptr;  ///< stable across Plan moves
    engine::TopKSpec spec;
    std::unique_ptr<engine::TopKHeap> heap;
    std::vector<TopKSource> sources;
    uint32_t hops = 0;
    double deadline = 0;   ///< absolute; 0 = none
    uint32_t attempt = 0;  ///< reliability attempt the session serves
    uint64_t generation = 0;  ///< guards the deadline cleanup timer
  };

  /// Parks the plan in a merge session when its consumer TopN sits over
  /// annotated remote sub-plans (plus constants); sends the first round
  /// of bounded requests. False = not a top-k shape, route normally.
  bool MaybeStartTopKSession(algebra::Plan* plan, uint32_t hops,
                             double deadline, uint32_t attempt);
  /// Sends the next bounded request for `sources[idx]`, carrying the
  /// heap's current k-th bound and the adapted batch size.
  void SendTopKRequest(const std::string& query_id, size_t idx);
  /// Demux for bounded fetch/subquery replies ("qid#tk<leaf>.<cont>"
  /// correlation ids); counts decode failures and unmatched replies.
  void HandleBoundedReply(const wire::Envelope& env);
  /// Merges one decoded batch into the session's heap; tightens the
  /// bound, terminates or re-requests the source, finishes the session
  /// when every source is done.
  void MergeTopKBatch(const std::string& query_id, size_t idx,
                      const wire::Envelope& env);
  /// Morphs the TopN to the heap's result and resumes the Figure-2 loop.
  void FinishTopKSession(const std::string& query_id);
  /// Deadline cleanup: delivers the plan as a partial (TopN unmorphed).
  void OnTopKDeadline(const std::string& query_id, uint64_t generation);
  /// Records a finished session id so late in-flight replies are dropped
  /// silently instead of counting as unmatched.
  void RememberTopKDone(const std::string& query_id);
  /// Drops rows a bound-stamped sub-plan can never contribute before the
  /// result is folded into the plan (the local-evaluation analog of the
  /// server-side bounded prefix).
  void TruncateForTopK(const algebra::PlanNode& node, algebra::ItemSet* items);

  /// The single construction points for this peer's syncable facts —
  /// record identity is the exact field tuple, so Publish* and
  /// OwnSyncEntries must build byte-identical entries.
  catalog::SyncEntry AreaSyncEntry(const ns::InterestArea& area,
                                   const std::string& xpath,
                                   catalog::HoldingLevel level) const;
  catalog::SyncEntry NamedSyncEntry(const std::string& urn,
                                    const std::string& xpath) const;

  optimizer::Locality LocalLocality() const;
  optimizer::OrPreference CurrentOrPreference(const algebra::Plan& plan) const;
  void AddProvenance(algebra::Plan* plan, algebra::ProvenanceAction action,
                     std::string detail, int staleness = 0);

  net::Transport* sim_;  // the substrate (simulator or runtime backend)
  net::PeerId id_;
  PeerOptions options_;
  engine::LocalStore store_;
  catalog::Catalog catalog_;
  std::unique_ptr<sync::SyncAgent> sync_;
  const ns::MultiHierarchy* hierarchies_ = nullptr;
  std::vector<std::string> bootstraps_;
  std::map<std::string, ns::InterestArea> collections_;  // id → area
  std::map<std::string, std::string> named_published_;   // urn → xpath
  std::vector<catalog::IntensionalStatement> own_statements_;
  std::map<std::string, CategoryCallback> category_waiters_;

  struct PendingPull {
    std::string source_server;
    ns::InterestArea area;
    int delay_minutes = 0;
  };
  std::map<std::string, PendingPull> pending_pulls_;  // req → pull
  std::vector<std::string> replicas_;                 // collection ids
  uint64_t next_pull_ = 0;
  /// Monotonic replica-id mint: survives DropReplica, so ids never reuse.
  uint64_t next_replica_ = 0;

  std::map<std::string, TopKSession> topk_sessions_;  // query id → session
  /// Recently finished session ids (late-reply suppression).
  std::deque<std::string> topk_done_ring_;
  std::set<std::string> topk_done_set_;
  uint64_t next_topk_generation_ = 0;

  // --- client reliability (DESIGN.md §9) ---------------------------------------

  /// Backoff before retry `attempt` (0-based), jittered and capped.
  double Backoff(uint32_t attempt);
  /// Quarantines `server` on the suspicion list for the configured TTL.
  void Suspect(const std::string& server);
  /// Launches retry attempt `attempt` of `p`'s query from its retained
  /// original, routing around current suspects.
  void StartAttempt(const std::string& query_id, uint32_t attempt);
  /// Arms the pending query's single retry/deadline timer; `generation`
  /// guards against stale firings (each result/retry bumps it).
  void ArmQueryTimer(const std::string& query_id, double when);
  void OnQueryTimer(const std::string& query_id, uint64_t generation);
  /// Finishes an exhausted query with its best partial outcome.
  void GiveUp(const std::string& query_id);
  /// Records a finished query id so late duplicate results are counted,
  /// not re-delivered (bounded ring, oldest evicted).
  void RememberCompleted(const std::string& query_id);
  /// Suspects the servers named by still-unresolved leaves of a returned
  /// incomplete plan (the hops that went unanswered).
  void SuspectUnansweredLeaves(const algebra::Plan& plan);

  struct Pending {
    Callback callback;
    double submitted_at = 0;
    double deadline = 0;    ///< absolute; 0 = none
    uint32_t attempt = 0;   ///< attempts launched - 1
    uint64_t generation = 0;  ///< bumps on every retry/result; stale timers no-op
    /// Retained for retries (reliability only; null otherwise).
    std::shared_ptr<const algebra::Plan> original;
    /// Best incomplete outcome any attempt returned (most items wins).
    std::unique_ptr<QueryOutcome> best_partial;
    /// First-hop servers each attempt was forwarded to — the cancel
    /// fan-out targets (DESIGN.md §11), joined with the provenance of
    /// the best partial at send time.
    std::set<std::string> contacted;
  };
  std::map<std::string, Pending> pending_;
  /// Recently finished query ids (duplicate-result suppression).
  std::deque<std::string> completed_ring_;
  std::set<std::string> completed_set_;
  /// Suspicion list: server address → quarantine expiry time.
  std::map<std::string, double> suspects_;
  mqp::Rng reliability_rng_{1};
  uint64_t next_query_ = 0;
  PeerCounters counters_;
  int engine_tally_depth_ = 0;  // EngineTally re-entrancy guard

  // --- overload protection (DESIGN.md §11) -------------------------------------

  /// Virtual time until which this peer's modeled core is busy; the
  /// service-time model queues admitted plans behind it. Never read when
  /// service_rate_qps is 0.
  double busy_until_ = 0;
  /// Recently cancelled query ids (bounded ring): queued plans and late
  /// traffic for these are dropped instead of serviced.
  std::deque<std::string> cancelled_ring_;
  std::set<std::string> cancelled_set_;
};

}  // namespace mqp::peer
