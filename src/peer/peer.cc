#include "peer/peer.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_set>
#include <utility>

#include "common/strings.h"
#include "engine/field_accessor.h"
#include "engine/operator.h"
#include "ns/urn.h"
#include "wire/body_codec.h"
#include "wire/plan_codec.h"
#include "xml/token_reader.h"
#include "xml/token_writer.h"
#include "xml/writer.h"

namespace mqp::peer {

using algebra::OpType;
using algebra::Plan;
using algebra::PlanNode;
using algebra::PlanNodePtr;
using algebra::ProvenanceAction;
using algebra::ProvenanceEntry;

namespace {

/// Mirrors engine::Stats() deltas into PeerCounters and NetStats on scope
/// exit (the resolve/wire counter flow pattern). Re-entrant: only the
/// outermost scope records, so a result callback that submits a fresh
/// query from inside ProcessPlan cannot double-count.
class EngineTally {
 public:
  EngineTally(PeerCounters* counters, net::NetStats* stats, int* depth)
      : counters_(counters),
        stats_(stats),
        depth_(depth),
        before_(engine::Stats()) {
    ++*depth_;
  }

  ~EngineTally() {
    if (--*depth_ > 0) return;
    const engine::EngineStats& now = engine::Stats();
    const uint64_t cloned = now.items_cloned - before_.items_cloned;
    const uint64_t hits =
        now.field_accessor_hits - before_.field_accessor_hits;
    const uint64_t probes =
        now.structural_hash_probes - before_.structural_hash_probes;
    const uint64_t ns = now.engine_eval_ns - before_.engine_eval_ns;
    const uint64_t pruned = now.topk_rows_pruned - before_.topk_rows_pruned;
    const uint64_t aborts = now.budget_aborts - before_.budget_aborts;
    counters_->items_cloned += cloned;
    counters_->field_accessor_hits += hits;
    counters_->structural_hash_probes += probes;
    counters_->engine_eval_ns += ns;
    counters_->topk_rows_pruned += pruned;
    counters_->budget_aborts += aborts;
    stats_->items_cloned += cloned;
    stats_->field_accessor_hits += hits;
    stats_->structural_hash_probes += probes;
    stats_->engine_eval_ns += ns;
    stats_->topk_rows_pruned += pruned;
    stats_->budget_aborts += aborts;
  }

  EngineTally(const EngineTally&) = delete;
  EngineTally& operator=(const EngineTally&) = delete;

 private:
  PeerCounters* counters_;
  net::NetStats* stats_;
  int* depth_;
  engine::EngineStats before_;
};

// FNV-1a, the shed coin's hash: the coin must be a pure function of
// (seed, query id, attempt), identical across backends and standard
// libraries (std::hash is implementation-defined, so it cannot be the
// coin).
constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t Fnv1a(uint64_t h, std::string_view s) {
  for (const unsigned char c : s) {
    h = (h ^ c) * kFnvPrime;
  }
  return h;
}

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xffu)) * kFnvPrime;
  }
  return h;
}

bool g_use_overload_protection = true;

}  // namespace

void set_use_overload_protection(bool on) { g_use_overload_protection = on; }
bool use_overload_protection() { return g_use_overload_protection; }

Peer::Peer(net::Transport* sim, PeerOptions options)
    : sim_(sim), options_(std::move(options)) {
  id_ = sim_->Register(this);
  if (options_.name.empty()) {
    options_.name = "peer-" + std::to_string(id_);
  }
  catalog_.set_dimension_fields(options_.dimension_fields);
  catalog_.SetAuthority(options_.interest, options_.roles.authoritative);
  catalog_.set_owner(address());
  // Per-peer jitter stream: the configured seed spread by peer id, so a
  // fleet sharing one ReliabilityOptions still staggers its retries.
  reliability_rng_ = mqp::Rng(options_.reliability.seed * 1000003ULL + id_ + 1);
}

void Peer::PublishCollection(const std::string& collection_id,
                             const ns::InterestArea& area,
                             const algebra::ItemSet& items) {
  store_.AddCollection(collection_id, items);
  collections_[collection_id] = area;
  // Local resolvability: the peer's own catalog maps the area to itself.
  catalog::IndexEntry e;
  e.level = catalog::HoldingLevel::kBase;
  e.area = area;
  e.server = address();
  e.xpath = engine::LocalStore::CollectionXPath(collection_id);
  if (sync_ != nullptr) {
    sync_->UpsertLocal(
        AreaSyncEntry(area, e.xpath, catalog::HoldingLevel::kBase));
  }
  catalog_.AddEntry(std::move(e));
}

void Peer::PublishNamed(const std::string& urn,
                        const std::string& collection_id,
                        const algebra::ItemSet& items) {
  store_.AddCollection(collection_id, items);
  const std::string xpath = engine::LocalStore::CollectionXPath(collection_id);
  catalog_.AddNamedMapping(urn, address(), xpath);
  named_published_[urn] = xpath;
  if (sync_ != nullptr) {
    sync_->UpsertLocal(NamedSyncEntry(urn, xpath));
  }
}

void Peer::AddOwnStatement(catalog::IntensionalStatement st) {
  catalog_.AddStatement(st);
  own_statements_.push_back(std::move(st));
}

void Peer::AddBootstrap(const std::string& address_text) {
  if (address_text == address()) return;
  for (const auto& b : bootstraps_) {
    if (b == address_text) return;
  }
  bootstraps_.push_back(address_text);
}

namespace {

std::string RolesAnnouncedLevel(const PeerRoles& roles) {
  // Index and meta-index servers announce themselves at index level.
  return (roles.index || roles.meta_index) ? "index" : "base";
}

}  // namespace

std::string Peer::BuildRegisterPayload(int ttl) const {
  std::string out;
  xml::TokenWriter w(&out);
  w.Start("register");
  w.Attr("server", address());
  w.Attr("name", options_.name);
  w.Attr("ttl", std::to_string(ttl));
  for (const auto& [id, area] : collections_) {
    w.Start("entry");
    w.Attr("level", "base");
    w.Attr("area", area.ToString());
    w.Attr("xpath", engine::LocalStore::CollectionXPath(id));
    w.End();
  }
  if (options_.roles.index || options_.roles.meta_index) {
    w.Start("entry");
    w.Attr("level", RolesAnnouncedLevel(options_.roles));
    w.Attr("area", options_.interest.ToString());
    w.End();
  }
  for (const auto& [urn, xpath] : named_published_) {
    w.Start("named");
    w.Attr("urn", urn);
    w.Attr("xpath", xpath);
    w.End();
  }
  for (const auto& st : own_statements_) {
    w.Start("statement");
    w.Text(st.ToString());
    w.End();
  }
  w.End();
  return out;
}

void Peer::JoinNetwork() {
  // One shared buffer for every registration target.
  const net::Payload payload =
      net::MakePayload(BuildRegisterPayload(/*ttl=*/2));
  std::unordered_set<std::string> targets(bootstraps_.begin(),
                                          bootstraps_.end());
  // Also register with index servers already known to the catalog whose
  // area overlaps ours (§3.3: push to covering authoritative servers).
  catalog_.ForEachEntry([&](const catalog::IndexEntry& e) {
    if (e.level == catalog::HoldingLevel::kIndex && e.server != address() &&
        e.area.Overlaps(options_.interest)) {
      targets.insert(e.server);
    }
  });
  for (const auto& t : targets) {
    auto pid = sim_->Lookup(t);
    if (!pid.ok() || *pid == id_) continue;
    wire::Send(sim_, id_, *pid, {kRegisterKind, "", 0, payload});
  }
}

// --- dynamic catalog maintenance (src/sync/) --------------------------------------

catalog::SyncEntry Peer::AreaSyncEntry(const ns::InterestArea& area,
                                       const std::string& xpath,
                                       catalog::HoldingLevel level) const {
  catalog::SyncEntry se;
  se.kind = catalog::SyncEntryKind::kArea;
  se.entry.level = level;
  se.entry.area = area;
  se.entry.server = address();
  se.entry.xpath = xpath;
  return se;
}

catalog::SyncEntry Peer::NamedSyncEntry(const std::string& urn,
                                        const std::string& xpath) const {
  catalog::SyncEntry se;
  se.kind = catalog::SyncEntryKind::kNamed;
  se.urn = urn;
  se.entry.level = catalog::HoldingLevel::kBase;
  se.entry.server = address();
  se.entry.xpath = xpath;
  return se;
}

std::vector<catalog::SyncEntry> Peer::OwnSyncEntries() const {
  std::vector<catalog::SyncEntry> out;
  for (const auto& [id, area] : collections_) {
    out.push_back(AreaSyncEntry(area, engine::LocalStore::CollectionXPath(id),
                                catalog::HoldingLevel::kBase));
  }
  if (options_.roles.index || options_.roles.meta_index) {
    out.push_back(
        AreaSyncEntry(options_.interest, "", catalog::HoldingLevel::kIndex));
  }
  for (const auto& [urn, xpath] : named_published_) {
    out.push_back(NamedSyncEntry(urn, xpath));
  }
  return out;
}

void Peer::EnableSync(const sync::SyncOptions& options) {
  if (sync_ != nullptr) return;
  sync_ = std::make_unique<sync::SyncAgent>(sim_, id_, address(), &catalog_,
                                            options);
  for (const auto& se : OwnSyncEntries()) {
    sync_->UpsertLocal(se);
  }
  for (const auto& b : bootstraps_) {
    sync_->AddSeed(b);
  }
  // Index servers already known to the catalog are partner candidates
  // too (same peers JoinNetwork would push registrations at).
  catalog_.ForEachEntry([&](const catalog::IndexEntry& e) {
    if (e.level == catalog::HoldingLevel::kIndex && e.server != address()) {
      sync_->AddPeer(e.server);
    }
  });
  sync_->Start();
}

void Peer::LeaveNetwork() {
  if (sync_ != nullptr) sync_->Leave();
}

void Peer::RejoinNetwork() {
  if (sync_ == nullptr) return;
  const bool was_departed = sync_->departed();
  sync_->Rejoin();
  if (was_departed) {
    // A graceful departure tombstoned every assertion; the peer still
    // holds its data, so a rejoin re-asserts it (fresh stamps overwrite
    // the tombstones key-for-key).
    for (const auto& se : OwnSyncEntries()) {
      sync_->UpsertLocal(se);
    }
  }
  // Re-register like a restarting node (§3.3). Gossip restores catalog
  // *entries* on its own, but intensional statements travel only in
  // registration payloads — index servers that dropped our statements
  // while we were silent re-learn them from this push.
  JoinNetwork();
}

void Peer::PullIndexedData(int delay_minutes) {
  // Snapshot the base entries first; replies will add new ones.
  std::vector<catalog::IndexEntry> targets;
  catalog_.ForEachEntry([&](const catalog::IndexEntry& e) {
    if (e.level == catalog::HoldingLevel::kBase && e.server != address() &&
        !e.xpath.empty()) {
      targets.push_back(e);
    }
  });
  for (const auto& e : targets) {
    auto pid = sim_->Lookup(e.server);
    if (!pid.ok()) continue;
    const std::string req =
        options_.name + "-pull" + std::to_string(next_pull_++);
    pending_pulls_[req] = PendingPull{e.server, e.area, delay_minutes};
    // The request id rides in the envelope header; the body carries only
    // the fetch arguments.
    std::string body;
    xml::TokenWriter w(&body);
    w.Start("fetch");
    w.Attr("xpath", e.xpath);
    w.End();
    wire::Send(sim_, id_, *pid,
               {kFetchKind, req, 0, net::MakePayload(std::move(body))});
  }
}

void Peer::HandleFetchReply(const wire::Envelope& env) {
  const std::string& req = env.query_id;
  auto it = pending_pulls_.find(req);
  if (it == pending_pulls_.end()) {
    // Not an index pull — bounded top-k fetches reuse the fetch-reply
    // kind, correlated by the "#tk" request-id suffix.
    HandleBoundedReply(env);
    return;
  }
  auto decoded = wire::DecodeItemBody(env.body());
  if (!decoded.ok()) {
    ++counters_.reply_decode_failures;
    sim_->stats().reply_decode_failures++;
    return;
  }
  PendingPull pull = std::move(it->second);
  pending_pulls_.erase(it);
  algebra::ItemSet items = std::move(decoded).value();
  // Store the replica and make it locally resolvable with the declared
  // refresh delay. The id comes from a monotonic mint, never from
  // replicas_.size(): after a DropReplica the count shrinks, and reusing
  // the freed id would silently overwrite a live collection.
  const std::string collection_id =
      "replica-" + std::to_string(next_replica_++);
  store_.ReplaceCollection(collection_id, items);
  replicas_.push_back(collection_id);
  catalog::IndexEntry entry;
  entry.level = catalog::HoldingLevel::kBase;
  entry.area = pull.area;
  entry.server = address();
  entry.xpath = engine::LocalStore::CollectionXPath(collection_id);
  entry.delay_minutes = pull.delay_minutes;
  catalog_.AddEntry(std::move(entry));
  // Assert the §4.3 containment statement so bindings can reason about
  // the replica's currency.
  catalog::IntensionalStatement st;
  st.lhs.level = catalog::HoldingLevel::kBase;
  st.lhs.area = pull.area;
  st.lhs.server = address();
  st.relation = catalog::IntensionRelation::kContains;
  catalog::HoldingRef rhs;
  rhs.level = catalog::HoldingLevel::kBase;
  rhs.area = pull.area;
  rhs.server = pull.source_server;
  rhs.delay_minutes = pull.delay_minutes;
  st.rhs.push_back(std::move(rhs));
  AddOwnStatement(std::move(st));
}

void Peer::DropReplica(const std::string& collection_id) {
  auto it = std::find(replicas_.begin(), replicas_.end(), collection_id);
  if (it == replicas_.end()) return;
  replicas_.erase(it);
  store_.RemoveCollection(collection_id);
}

std::string Peer::SubmitQuery(Plan plan, Callback cb) {
  const OverloadOptions& ov = options_.overload;
  if (OverloadActive() && ov.max_pending_queries > 0) {
    // Client-side admission (DESIGN.md §11): a bounded pending budget.
    // Priority-0 submissions are refused at the watermark; higher
    // priorities may overshoot up to the ceiling before they too are
    // refused. Nothing is sent — the caller hears `shed` synchronously
    // and can retry later or degrade.
    size_t limit = ov.max_pending_queries;
    if (plan.policy().priority > 0) {
      limit = std::max<size_t>(
          limit, static_cast<size_t>(static_cast<double>(limit) *
                                     ov.high_priority_ceiling));
    }
    if (pending_.size() >= limit) {
      std::string shed_qid =
          options_.name + "-q" + std::to_string(next_query_++);
      ++counters_.queries_shed;
      sim_->stats().queries_shed++;
      QueryOutcome outcome;
      outcome.query_id = shed_qid;
      outcome.shed = true;
      outcome.submitted_at = sim_->now();
      outcome.completed_at = sim_->now();
      if (cb) cb(outcome);
      return shed_qid;
    }
  }
  std::string qid = options_.name + "-q" + std::to_string(next_query_++);
  plan.set_query_id(qid);
  plan.set_submitted_at(sim_->now());
  // Force the display target to this peer.
  PlanNodePtr body = plan.root();
  if (body != nullptr && body->type() == OpType::kDisplay) {
    body = body->child(0);
  }
  plan.set_root(PlanNode::Display(address(), body));
  if (options_.retain_original) plan.SnapshotOriginal();
  if (options_.record_provenance) {
    plan.provenance().Add({address(), sim_->now(),
                           ProvenanceAction::kForwarded, "submitted", 0});
  }
  const ReliabilityOptions& rel = options_.reliability;
  Pending pend;
  pend.callback = std::move(cb);
  pend.submitted_at = sim_->now();
  if (rel.query_deadline_seconds > 0) {
    pend.deadline = sim_->now() + rel.query_deadline_seconds;
  }
  if (rel.enabled) {
    // Retain the exact submitted plan (target set, provenance seeded):
    // every retry restarts from these bytes, not from whatever mutated
    // copy is stranded somewhere in the network.
    pend.original = std::make_shared<const Plan>(plan.Clone());
  }
  const double deadline = pend.deadline;
  pending_[qid] = std::move(pend);
  if (rel.enabled) {
    double when = sim_->now() + Backoff(0);
    if (deadline > 0 && (rel.max_retries == 0 || when > deadline)) {
      when = deadline;
    }
    ArmQueryTimer(qid, when);
  } else if (deadline > 0) {
    // Reliability ablated: no retries and no deadline on the wire, but
    // the pending entry is still reaped (the state-leak fix stands).
    ArmQueryTimer(qid, deadline);
  }
  const double wire_deadline = rel.enabled ? deadline : 0;
  sim_->ScheduleFor(id_, sim_->now(),
                    [this, p = std::move(plan), wire_deadline]() mutable {
                      ProcessPlan(std::move(p), /*hops=*/0, wire_deadline,
                                  /*attempt=*/0);
                    });
  return qid;
}

void Peer::HandleMessage(const net::Message& msg) {
  auto decoded = wire::DecodeEnvelope(msg);
  if (!decoded.ok()) return;  // malformed frames are dropped
  const wire::Envelope env = std::move(decoded).value();
  if (env.kind == kMqpKind) {
    HandleMqp(env);
  } else if (env.kind == kCancelKind) {
    HandleCancel(env);
  } else if (env.kind == kResultKind) {
    HandleResult(env);
  } else if (env.kind == kRegisterKind) {
    HandleRegister(env);
  } else if (env.kind == kCategoryQueryKind) {
    HandleCategoryQuery(env, msg.from);
  } else if (env.kind == kFetchKind) {
    HandleFetch(env, msg.from);
  } else if (env.kind == kSubqueryKind) {
    HandleSubquery(env, msg.from);
  } else if (env.kind == kFetchReplyKind) {
    HandleFetchReply(env);
  } else if (env.kind == kSubqueryReplyKind) {
    // The peer only sends subqueries as bounded top-k requests; every
    // subquery reply goes through the top-k demux.
    HandleBoundedReply(env);
  } else if (env.kind == kCategoryReplyKind) {
    HandleCategoryReply(env);
  } else if (env.kind == kSyncDigestKind) {
    if (sync_ != nullptr) sync_->HandleDigest(env, msg.from);
  } else if (env.kind == kSyncDeltaKind) {
    if (sync_ != nullptr) sync_->HandleDelta(env, msg.from);
  }
}

void Peer::HandleCategoryReply(const wire::Envelope& env) {
  // Correlation comes from the wire header; only the category list
  // requires the body.
  auto it = category_waiters_.find(env.query_id);
  if (it == category_waiters_.end()) return;
  std::vector<std::string> categories;
  {
    xml::TokenReader r(env.body());
    auto t = r.Next();
    if (!t.ok() || t->type != xml::TokenType::kStartElement) return;
    xml::AttrList attrs;
    t = r.ReadAttrs(&attrs);
    while (t.ok() && t->type != xml::TokenType::kEndElement) {
      if (t->type == xml::TokenType::kStartElement) {
        if (t->name == "cat") {
          // Concatenate the element's text runs (InnerText equivalent;
          // <cat> carries a single text child in practice).
          std::string text;
          size_t depth = r.depth();
          while (t.ok() && r.depth() >= depth) {
            t = r.Next();
            if (t.ok() && t->type == xml::TokenType::kText) text += t->value;
          }
          if (!t.ok()) return;
          categories.push_back(std::move(text));
        } else if (!r.SkipToElementEnd().ok()) {
          return;
        }
      }
      t = r.Next();
    }
    if (!t.ok()) return;
  }
  auto cb = std::move(it->second);
  category_waiters_.erase(it);
  cb(categories);
}

// --- the Figure-2 loop ---------------------------------------------------------

void Peer::ProcessPlan(Plan plan, uint32_t hops, double deadline,
                       uint32_t attempt) {
  // Mirror the engine's instrumentation into the per-peer and
  // network-wide counters (same flow as resolve/wire counters). The
  // scope spans the whole loop: annotation fetches, locality probes and
  // sub-plan evaluation all touch the store/engine.
  const EngineTally tally(&counters_, &sim_->stats(), &engine_tally_depth_);
  // Under the overload service model a plan whose deadline already passed
  // skips the whole resolve/optimize pass: RouteOrDeliver's deadline
  // branch salvages what it can under the floor budget and delivers the
  // partial — nobody is waiting for a better answer (DESIGN.md §11).
  if (OverloadActive() && options_.overload.service_rate_qps > 0 &&
      deadline > 0 && sim_->now() >= deadline) {
    RouteOrDeliver(std::move(plan), hops, deadline, attempt);
    return;
  }
  // ResolveUrns records one kBound provenance entry per URN it binds (the
  // entry's detail is the bound URN — §5.1's "catalog improvement" data).
  const int bound = ResolveUrns(&plan);
  AnnotateLocalUrls(&plan);
  ApplyRewrites(&plan);
  int reduced = 0;
  {
    // Sub-plan evaluation runs under the query's remaining-deadline row
    // allowance: a budget expiring mid-scan aborts the evaluation with
    // kTimeout, the sub-plan stays unreduced, and the partial flows out
    // through the normal incomplete-plan machinery.
    const engine::ScopedEvalBudget budget(EvalLimitsFor(deadline));
    reduced = EvaluateSubplans(&plan);
  }
  if (options_.record_provenance) {
    if (reduced > 0) {
      AddProvenance(&plan, ProvenanceAction::kEvaluated,
                    options_.name + ":" + std::to_string(reduced) +
                        " subplan(s)",
                    optimizer::MaxStalenessMinutes(*plan.root()));
    } else if (bound == 0) {
      AddProvenance(&plan, ProvenanceAction::kForwarded, options_.name,
                    optimizer::MaxStalenessMinutes(*plan.root()));
    }
  }
  RouteOrDeliver(std::move(plan), hops, deadline, attempt);
}

namespace {

void CollectMutableNodes(PlanNode* node,
                         std::unordered_set<PlanNode*>* seen,
                         std::vector<PlanNode*>* out) {
  if (!seen->insert(node).second) return;
  out->push_back(node);
  for (const auto& c : node->children()) {
    CollectMutableNodes(c.get(), seen, out);
  }
}

std::vector<PlanNode*> MutableNodes(PlanNode* root) {
  std::unordered_set<PlanNode*> seen;
  std::vector<PlanNode*> out;
  CollectMutableNodes(root, &seen, &out);
  return out;
}

bool PlanContainsUrn(const PlanNode& root, const std::string& urn) {
  for (const PlanNode* u : root.UrnLeaves()) {
    if (u->urn() == urn) return true;
  }
  return false;
}

}  // namespace

void Peer::AnnotateLocalUrls(Plan* plan) {
  // §5.1: attach true statistics to local collections so the optimizer's
  // deferment and absorption decisions (here and downstream) work from
  // facts instead of defaults.
  if (plan->root() == nullptr) return;
  const std::string self = address();
  for (PlanNode* n : MutableNodes(plan->root().get())) {
    if (n->type() != OpType::kUrl || n->url() != self) continue;
    if (n->annotations().cardinality.has_value()) continue;
    auto items = store_.Fetch(n->url(), n->xpath());
    if (!items.ok()) continue;
    uint64_t bytes = 0;
    for (const auto& item : *items) {
      bytes += xml::SerializedSize(*item);
    }
    n->annotations().cardinality = items->size();
    n->annotations().bytes = bytes;
    for (const auto& field : options_.histogram_fields) {
      auto h = algebra::FieldHistogram::Build(*items, field);
      if (h) n->annotations().histograms.push_back(std::move(*h));
    }
  }
}

int Peer::ResolveUrns(Plan* plan) {
  if (plan->root() == nullptr) return 0;
  // Mirror the catalog's resolution instrumentation into the per-peer
  // and network-wide counters (same flow as the wire layer's plan_*).
  const catalog::ResolveStats before = catalog_.resolve_stats();
  int bound = 0;
  // Snapshot the URN nodes up front; bindings may add new URN leaves
  // (referrals), which later servers resolve.
  std::vector<PlanNode*> urn_nodes;
  for (PlanNode* n : MutableNodes(plan->root().get())) {
    if (n->type() == OpType::kUrn) urn_nodes.push_back(n);
  }
  for (PlanNode* node : urn_nodes) {
    const std::string urn_text = node->urn();
    // §5.2 ordering policy: do not bind `then` while `first` is pending.
    bool blocked = false;
    for (const auto& [first, then] : plan->policy().bind_after) {
      if (then == urn_text && PlanContainsUrn(*plan->root(), first)) {
        blocked = true;
        break;
      }
    }
    if (blocked) continue;
    // §5.1 spoofing hook: bind to the empty set with no visit to the
    // rightful source.
    if (!options_.spoof_urn_substring.empty() &&
        urn_text.find(options_.spoof_urn_substring) != std::string::npos) {
      node->MorphToData({});
      ++bound;
      if (options_.record_provenance) {
        // The spoofer records a normal-looking entry; detection relies on
        // the rightful source being absent from the history (§5.1).
        AddProvenance(plan, ProvenanceAction::kBound, urn_text);
      }
      continue;
    }
    auto resolved = catalog_.Resolve(urn_text);
    if (!resolved.ok()) continue;
    catalog::Binding binding_value = std::move(resolved).value();
    catalog::Binding* binding = &binding_value;
    if (binding->empty()) {
      // §3.3: an authoritative server *knows about all base servers within
      // its area of interest* — if it has nothing for a covered request,
      // the answer for that region is the empty set, and leaving the URN
      // unresolved would strand the plan.
      auto urn = ns::Urn::Parse(urn_text);
      if (options_.roles.authoritative && urn.ok() &&
          urn->IsInterestArea()) {
        auto area = urn->ToInterestArea();
        if (area.ok() && options_.interest.Covers(*area)) {
          node->MorphToData({});
          ++bound;
        }
      }
      // §5.1 catalog improvement: remember who else was hinted to resolve
      // this URN, so future queries can route straight there.
      if (options_.cache_from_plans && !node->urn_hint().empty() &&
          node->urn_hint() != address() && urn.ok() &&
          urn->IsInterestArea()) {
        auto area = urn->ToInterestArea();
        if (area.ok()) {
          catalog::IndexEntry e;
          e.level = catalog::HoldingLevel::kIndex;
          e.area = std::move(area).value();
          e.server = node->urn_hint();
          catalog_.AddEntry(std::move(e));
        }
      }
      continue;
    }
    // Failover (DESIGN.md §9): drop alternatives routed through servers
    // the plan was told to avoid, currently under suspicion, or known
    // dead to the transport, binding via the next alternative instead.
    // When *every* alternative is excluded the original binding stands —
    // the client learns the culprit from the unanswered leaves.
    if (options_.reliability.enabled && binding->alternatives.size() > 1) {
      const auto& avoid = plan->policy().route_avoid;
      catalog::Binding filtered =
          binding->WithoutServers([&](const std::string& server) {
            if (server == address()) return false;
            if (std::find(avoid.begin(), avoid.end(), server) !=
                avoid.end()) {
              return true;
            }
            if (IsSuspect(server)) return true;
            auto spid = sim_->Lookup(server);
            return spid.ok() && sim_->IsFailed(*spid);
          });
      if (!filtered.empty() &&
          filtered.alternatives.size() < binding->alternatives.size()) {
        ++counters_.failovers;
        sim_->stats().failovers++;
        binding_value = std::move(filtered);
      }
    }
    // Skip no-op bindings: a single referral pointing at ourselves (we
    // failed to resolve locally) or at the hint the node already carries.
    if (binding->alternatives.size() == 1 &&
        binding->alternatives[0].sources.size() == 1) {
      const catalog::SourceRef& only = binding->alternatives[0].sources[0];
      if (only.level == catalog::HoldingLevel::kIndex &&
          (only.server == address() || only.server == node->urn_hint())) {
        continue;
      }
    }
    node->MorphTo(*catalog::BindingToPlan(*binding));
    ++bound;
    if (options_.record_provenance) {
      AddProvenance(plan, ProvenanceAction::kBound, urn_text);
    }
  }
  counters_.urns_bound += bound;
  const catalog::ResolveStats& after = catalog_.resolve_stats();
  const uint64_t probes =
      after.resolve_index_probes - before.resolve_index_probes;
  const uint64_t scanned =
      after.resolve_entries_scanned - before.resolve_entries_scanned;
  const uint64_t cache_hits =
      after.binding_cache_hits - before.binding_cache_hits;
  counters_.resolve_index_probes += probes;
  counters_.resolve_entries_scanned += scanned;
  counters_.binding_cache_hits += cache_hits;
  sim_->stats().resolve_index_probes += probes;
  sim_->stats().resolve_entries_scanned += scanned;
  sim_->stats().binding_cache_hits += cache_hits;
  return bound;
}

void Peer::ApplyRewrites(Plan* plan) {
  if (plan->root() == nullptr) return;
  PlanNode* root = plan->root().get();
  const optimizer::Locality locality = LocalLocality();
  const optimizer::CostModel cost(options_.cost);
  optimizer::EliminateOrNodes(root, locality, cost,
                              CurrentOrPreference(*plan));
  if (options_.enable_select_pushdown) {
    optimizer::PushSelectThroughUnion(root);
  }
  if (options_.enable_difference_split) {
    optimizer::SplitDifferenceOverUnion(root, locality);
  }
  if (options_.enable_absorption) {
    optimizer::ApplyAbsorption(root, locality, cost);
  }
  if (options_.enable_consolidation) {
    optimizer::ConsolidateJoins(root, locality);
  }
  // Last, after pushdown has shaped the union branches: stamp top-k
  // bounds on remote single-server sub-plans (no-op when ablated).
  optimizer::PushTopKBounds(root, locality);
}

int Peer::EvaluateSubplans(Plan* plan) {
  if (plan->root() == nullptr) return 0;
  const optimizer::Locality locality = LocalLocality();
  auto worklist =
      optimizer::MaximalEvaluableSubplans(plan->root().get(), locality);
  if (worklist.empty()) return 0;
  const optimizer::CostModel cost(options_.cost);
  const optimizer::PolicyManager pm(options_.policy);
  int reduced = 0;
  // A deferred operator's *inputs* still have to be materialized before
  // the plan leaves this peer (local URL leaves are unreadable elsewhere),
  // so deferment descends: skip the operator, process its children.
  while (!worklist.empty()) {
    std::vector<PlanNode*> next;
    for (const auto& decision : pm.Decide(worklist, cost)) {
      if (!decision.evaluate) {
        ++counters_.subplans_deferred;
        for (const auto& c : decision.subplan->children()) {
          if (!c->IsConstant()) next.push_back(c.get());
        }
        continue;
      }
      auto items = engine::Evaluate(*decision.subplan, &store_);
      if (!items.ok()) continue;  // leave the sub-plan for another server
      algebra::ItemSet data = std::move(items).value();
      TruncateForTopK(*decision.subplan, &data);
      decision.subplan->MorphToData(std::move(data));
      ++reduced;
    }
    worklist = std::move(next);
  }
  counters_.subplans_evaluated += reduced;
  return reduced;
}

int Peer::ForceEvaluate(Plan* plan) {
  // Final-resort evaluation ignoring deferment: used when the plan has
  // nowhere else to go — better a big answer than none.
  if (plan->root() == nullptr) return 0;
  const optimizer::Locality locality = LocalLocality();
  auto candidates =
      optimizer::MaximalEvaluableSubplans(plan->root().get(), locality);
  int reduced = 0;
  for (PlanNode* node : candidates) {
    auto items = engine::Evaluate(*node, &store_);
    if (!items.ok()) continue;
    algebra::ItemSet data = std::move(items).value();
    TruncateForTopK(*node, &data);
    node->MorphToData(std::move(data));
    ++reduced;
  }
  counters_.subplans_evaluated += reduced;
  return reduced;
}

optimizer::Locality Peer::LocalLocality() const {
  optimizer::Locality loc;
  const std::string self = address();
  loc.is_local_url = [self](const PlanNode& n) { return n.url() == self; };
  // Field-provenance probe into the local store: fetch the collection and
  // check that every item carries the field (collections are small enough
  // that probing is cheap relative to a mis-rewrite).
  loc.url_provides_field = [this, self](const PlanNode& n,
                                        const std::string& path) {
    if (n.url() != self) return false;
    auto items = const_cast<engine::LocalStore&>(store_).Fetch(n.url(),
                                                               n.xpath());
    if (!items.ok() || items->empty()) return false;
    auto field = algebra::Expr::Field(path);
    for (const auto& item : *items) {
      if (!field->EvalValue(*item)) return false;
    }
    return true;
  };
  return loc;
}

optimizer::OrPreference Peer::CurrentOrPreference(const Plan& plan) const {
  const algebra::PlanPolicy& pol = plan.policy();
  if (pol.time_budget_seconds > 0) {
    const double elapsed = sim_->now() - plan.submitted_at();
    // Budget pressure: fall back to the fastest alternative.
    if (elapsed > 0.5 * pol.time_budget_seconds) {
      return optimizer::OrPreference::kCheapest;
    }
  }
  // Every alternative of a binding is a *complete* answer as far as the
  // catalog knows (§4.2); "complete" therefore means "take the cheap,
  // possibly stale branch", while "current" minimizes the staleness bound
  // at extra latency (§4.3's R{30} | (R ∪ S){0} choice).
  return pol.preference == algebra::AnswerPreference::kCurrent
             ? optimizer::OrPreference::kPreferCurrent
             : optimizer::OrPreference::kCheapest;
}

void Peer::AddProvenance(Plan* plan, ProvenanceAction action,
                         std::string detail, int staleness) {
  plan->provenance().Add(
      {address(), sim_->now(), action, std::move(detail), staleness});
}

namespace {

// Short human-readable digest of the leaves a plan never got answered
// (for the §9 degradation provenance marker): up to four leaf names,
// then "+N" for the rest.
std::string UnansweredSummary(const Plan& plan, const std::string& self) {
  std::vector<std::string> names;
  if (plan.root() != nullptr) {
    for (const PlanNode* u : plan.root()->UrlLeaves()) {
      if (u->url() != self) names.push_back(u->url());
    }
    for (const PlanNode* u : plan.root()->UrnLeaves()) {
      names.push_back(u->urn());
    }
  }
  std::string out;
  const size_t shown = names.size() < 4 ? names.size() : 4;
  for (size_t i = 0; i < shown; ++i) {
    if (i > 0) out += ',';
    out += names[i];
  }
  if (names.size() > shown) {
    out += "+" + std::to_string(names.size() - shown);
  }
  return out;
}

}  // namespace

net::Payload Peer::PlanBody(const Plan& plan) {
  auto serialized = wire::SerializePlanShared(plan, &sim_->stats());
  if (serialized.reused) {
    ++counters_.forwards_without_reserialize;
  } else {
    ++counters_.plan_serializations;
  }
  return std::move(serialized.bytes);
}

void Peer::RouteOrDeliver(Plan plan, uint32_t hops, double deadline,
                          uint32_t attempt) {
  if (plan.root() == nullptr) return;
  if (plan.IsFullyEvaluated()) {
    DeliverToTarget(std::move(plan), deadline, attempt);
    return;
  }
  // Deadline expired in flight: stop routing, reduce whatever is
  // reducible here, and return the plan as-is — a partial answer with
  // provenance naming what went unanswered beats silence (DESIGN.md §9).
  if (deadline > 0 && sim_->now() >= deadline) {
    {
      // Past-deadline salvage is floor-budgeted when budgets are
      // configured: reduce the cheap parts, never burn the core scanning
      // a large collection nobody is still waiting for (DESIGN.md §11).
      engine::EvalLimits lim;
      if (OverloadActive() && options_.overload.budget_rows_per_second > 0) {
        lim.max_rows = options_.overload.min_budget_rows;
      }
      const engine::ScopedEvalBudget budget(lim);
      ForceEvaluate(&plan);
    }
    if (!plan.IsFullyEvaluated() && options_.record_provenance) {
      AddProvenance(&plan, ProvenanceAction::kForwarded,
                    "deadline-expired unanswered:" +
                        UnansweredSummary(plan, address()));
    }
    DeliverToTarget(std::move(plan), deadline, attempt);
    return;
  }
  // Distributed top-k (DESIGN.md §10): if the remainder is a TopN over
  // bound-stamped remote sub-plans, pull score-ordered prefixes here
  // instead of forwarding the whole plan. The session owns the plan until
  // the bound proves no remote row can still win.
  if (MaybeStartTopKSession(&plan, hops, deadline, attempt)) return;
  // Gather candidate next hops: servers of remote URL leaves, resolver
  // hints of URN leaves, bootstrap servers for unhinted URNs.
  std::map<std::string, int> candidates;
  const std::string self = address();
  bool has_unhinted_urn = false;
  for (const PlanNode* u : plan.root()->UrlLeaves()) {
    if (u->url() != self) candidates[u->url()] += 2;  // direct data: best
  }
  for (const PlanNode* u : plan.root()->UrnLeaves()) {
    if (!u->urn_hint().empty()) {
      if (u->urn_hint() != self) candidates[u->urn_hint()] += 1;
    } else {
      has_unhinted_urn = true;
    }
  }
  if (has_unhinted_urn) {
    for (const auto& b : bootstraps_) {
      candidates[b] += 0;  // present, lowest priority
    }
  }
  // §5.2 transfer policy: restrict to the allowlist.
  if (!plan.policy().route_allow.empty()) {
    const auto& allow = plan.policy().route_allow;
    std::erase_if(candidates, [&](const auto& kv) {
      return std::find(allow.begin(), allow.end(), kv.first) == allow.end();
    });
  }
  // Reliability failover (DESIGN.md §9), two grades. Hard: candidates the
  // transport knows are down are dropped unconditionally (the stand-in
  // for a refused connection) and go on the suspicion list. Soft: the
  // plan's route_avoid stamp and the local suspicion list are advisory —
  // honored only while at least one candidate survives, because a stale
  // suspicion must never strand a plan that still has somewhere to go.
  bool routed_around = false;
  if (options_.reliability.enabled && !candidates.empty()) {
    for (auto cit = candidates.begin(); cit != candidates.end();) {
      auto cpid = sim_->Lookup(cit->first);
      if (cpid.ok() && sim_->IsFailed(*cpid)) {
        Suspect(cit->first);
        cit = candidates.erase(cit);
        routed_around = true;
      } else {
        ++cit;
      }
    }
    if (!candidates.empty()) {
      const auto& avoid = plan.policy().route_avoid;
      std::map<std::string, int> kept;
      for (const auto& [addr, score] : candidates) {
        const bool avoided =
            std::find(avoid.begin(), avoid.end(), addr) != avoid.end();
        if (!avoided && !IsSuspect(addr)) kept.emplace(addr, score);
      }
      if (!kept.empty() && kept.size() < candidates.size()) {
        candidates = std::move(kept);
        routed_around = true;
      }
    }
  }
  // The wire-layer hop count guards routing loops even when provenance
  // recording is off (provenance-size alone used to be the only brake).
  const bool over_hop_limit =
      static_cast<int>(plan.provenance().size()) >= options_.max_hops ||
      static_cast<int>(hops) >= options_.max_hops;
  if (candidates.empty() || over_hop_limit) {
    // Dead end: finish whatever is finishable here (deferment no longer
    // helps a plan with nowhere to go), then return it to its target.
    if (ForceEvaluate(&plan) > 0 && plan.IsFullyEvaluated()) {
      DeliverToTarget(std::move(plan), deadline, attempt);
      return;
    }
    ++counters_.plans_dead_ended;
    if (!plan.IsFullyEvaluated() && options_.record_provenance) {
      AddProvenance(&plan, ProvenanceAction::kForwarded,
                    "dead-end unanswered:" + UnansweredSummary(plan, self));
    }
    DeliverToTarget(std::move(plan), deadline, attempt);
    return;
  }
  // Prefer unvisited servers; then the candidate that can make the most
  // progress; then the lowest address for determinism.
  std::string best;
  int best_score = -1;
  bool best_unvisited = false;
  for (const auto& [addr, score] : candidates) {
    const bool unvisited = !plan.provenance().Visited(addr);
    if (best.empty() || (unvisited && !best_unvisited) ||
        (unvisited == best_unvisited &&
         (score > best_score ||
          (score == best_score && addr < best)))) {
      best = addr;
      best_score = score;
      best_unvisited = unvisited;
    }
  }
  if (!best_unvisited &&
      static_cast<int>(plan.provenance().size()) + 2 >= options_.max_hops) {
    // Everything promising was already visited and we are nearly out of
    // hops: give up gracefully with a partial answer.
    ++counters_.plans_dead_ended;
    DeliverToTarget(std::move(plan), deadline, attempt);
    return;
  }
  auto pid = sim_->Lookup(best);
  if (!pid.ok()) {
    ++counters_.plans_dead_ended;
    DeliverToTarget(std::move(plan), deadline, attempt);
    return;
  }
  if (routed_around) {
    // The plan made it past at least one dead/suspect server and is
    // still moving: one failover per routing decision.
    ++counters_.failovers;
    sim_->stats().failovers++;
  }
  if (auto pit = pending_.find(plan.query_id()); pit != pending_.end()) {
    // This peer is the query's own client: remember the first hop so a
    // later cancel fan-out can reach the work (DESIGN.md §11).
    pit->second.contacted.insert(best);
  }
  ++counters_.plans_forwarded;
  net::Payload body = PlanBody(plan);
  wire::Send(sim_, id_, *pid,
             {kMqpKind, plan.query_id(), hops + 1, std::move(body), deadline,
              attempt});
}

void Peer::DeliverToTarget(Plan plan, double deadline, uint32_t attempt) {
  const std::string target = plan.target();
  auto pid = sim_->Lookup(target);
  if (!pid.ok()) return;  // no deliverable target: drop
  net::Payload body = PlanBody(plan);
  if (*pid == id_) {
    HandleResultPlan(std::move(plan), body->size());
    return;
  }
  ++counters_.results_delivered;
  // The attempt number rides along so each retry's result is a distinct
  // byte string under content-hash fault injection.
  wire::Send(sim_, id_, *pid,
             {kResultKind, plan.query_id(), 0, std::move(body), deadline,
              attempt});
}

void Peer::HandleResult(const wire::Envelope& env) {
  const net::NetStats& stats = sim_->stats();
  const uint64_t decode_ns_before = stats.plan_decode_ns;
  const uint64_t token_decodes_before = stats.token_decodes;
  auto plan = wire::ParsePlanShared(env.payload, &sim_->stats());
  counters_.plan_decode_ns += stats.plan_decode_ns - decode_ns_before;
  counters_.token_decodes += stats.token_decodes - token_decodes_before;
  if (!plan.ok()) return;
  ++counters_.plan_parses;
  HandleResultPlan(std::move(plan).value(), env.body().size());
}

void Peer::HandleResultPlan(Plan plan, size_t wire_bytes) {
  auto it = pending_.find(plan.query_id());
  if (it == pending_.end()) {
    // Unknown — or a late duplicate for a query that already finished
    // (a retry raced the original, or the fault plan duplicated the
    // result): count the suppression, deliver nothing twice.
    if (completed_set_.count(plan.query_id()) > 0) {
      ++counters_.duplicates_suppressed;
      sim_->stats().duplicates_suppressed++;
    }
    return;
  }
  // §3.4 caching: each kBound provenance entry names the exact URN the
  // server resolved — under the completeness gate, a binder either covered
  // that area or was authoritative for it, so (area → server) is a sound
  // cache entry.
  if (options_.cache_from_plans) {
    for (const auto& e : plan.provenance().entries()) {
      if (e.action != ProvenanceAction::kBound || e.server == address()) {
        continue;
      }
      auto urn = ns::Urn::Parse(e.detail);
      if (!urn.ok()) continue;
      if (urn->IsInterestArea()) {
        auto area = urn->ToInterestArea();
        if (!area.ok()) continue;
        catalog::IndexEntry entry;
        entry.level = catalog::HoldingLevel::kIndex;
        entry.area = std::move(area).value();
        entry.server = e.server;
        catalog_.AddEntry(std::move(entry));
      } else {
        catalog_.AddNamedReferral(e.detail, e.server);
      }
    }
  }
  Pending& p = it->second;
  const bool complete = plan.IsFullyEvaluated();
  const ReliabilityOptions& rel = options_.reliability;
  if (!complete && rel.enabled) {
    // An attempt came back short. Quarantine the servers that went
    // unanswered, keep the best partial seen so far, and retry after a
    // backoff (the same pacing as a timeout: an immediate relaunch would
    // burn the retry budget before a crashed server restarts) — unless
    // the deadline or retry budget is spent, in which case the best
    // partial goes out now.
    const std::string qid = plan.query_id();
    SuspectUnansweredLeaves(plan);
    // Shed markers are authoritative refusals (DESIGN.md §11):
    // quarantine the shedding servers so the retry binds and routes
    // around the hot spot instead of queueing behind it again.
    for (const auto& e : plan.provenance().entries()) {
      if (e.action == ProvenanceAction::kShed) Suspect(e.server);
    }
    QueryOutcome partial;
    partial.query_id = qid;
    partial.complete = false;
    partial.items = plan.PartialItems();
    partial.provenance = plan.provenance();
    partial.submitted_at = p.submitted_at;
    partial.completed_at = sim_->now();
    partial.result_bytes = wire_bytes;
    partial.final_plan = std::move(plan);
    if (p.best_partial == nullptr ||
        partial.items.size() > p.best_partial->items.size()) {
      p.best_partial = std::make_unique<QueryOutcome>(std::move(partial));
    }
    const double now = sim_->now();
    const bool budget_left = p.original != nullptr &&
                             p.attempt + 1 <= rel.max_retries &&
                             (p.deadline == 0 || now < p.deadline);
    if (budget_left) {
      ++p.generation;  // stale timers from this attempt no-op
      double when = now + Backoff(p.attempt);
      if (p.deadline > 0 && when > p.deadline) when = p.deadline;
      ArmQueryTimer(qid, when);
      return;
    }
    GiveUp(qid);
    return;
  }
  QueryOutcome outcome;
  outcome.query_id = plan.query_id();
  outcome.complete = complete;
  if (outcome.complete) {
    auto items = plan.ResultItems();
    if (items.ok()) outcome.items = std::move(items).value();
  }
  outcome.provenance = plan.provenance();
  outcome.submitted_at = p.submitted_at;
  outcome.completed_at = sim_->now();
  outcome.result_bytes = wire_bytes;
  outcome.attempts = p.attempt + 1;
  outcome.final_plan = std::move(plan);
  Callback cb = std::move(p.callback);
  if (OverloadActive() && p.attempt > 0) {
    // A retried query may have superseded attempts still live in the
    // network; reap them. Fault-free single-attempt traffic skips this,
    // keeping its wire traces byte-identical.
    SendCancels(outcome.query_id, p);
  }
  RememberCompleted(outcome.query_id);
  pending_.erase(it);
  if (cb) cb(outcome);
}

// --- client reliability (DESIGN.md §9) ------------------------------------------

double Peer::Backoff(uint32_t attempt) {
  const ReliabilityOptions& rel = options_.reliability;
  double base = rel.retry_timeout_seconds;
  for (uint32_t i = 0; i < attempt; ++i) {
    base *= rel.backoff_factor;
    if (base >= rel.max_backoff_seconds) break;
  }
  if (base > rel.max_backoff_seconds) base = rel.max_backoff_seconds;
  if (rel.retry_jitter > 0) {
    const double u = reliability_rng_.NextDouble();
    base *= 1.0 + rel.retry_jitter * (2.0 * u - 1.0);
  }
  return base;
}

void Peer::Suspect(const std::string& server) {
  if (!options_.reliability.enabled) return;
  if (server.empty() || server == address()) return;
  suspects_[server] = sim_->now() + options_.reliability.suspicion_ttl_seconds;
}

bool Peer::IsSuspect(const std::string& server) {
  auto it = suspects_.find(server);
  if (it == suspects_.end()) return false;
  if (it->second <= sim_->now()) {
    suspects_.erase(it);  // quarantine over: forgive lazily
    return false;
  }
  return true;
}

void Peer::SuspectUnansweredLeaves(const Plan& plan) {
  if (plan.root() == nullptr) return;
  // The leaves still unresolved in a returned plan name exactly the
  // servers whose answers never arrived — the confirmed casualties, as
  // opposed to every server the route touched.
  for (const PlanNode* u : plan.root()->UrlLeaves()) {
    if (u->url() != address()) Suspect(u->url());
  }
  for (const PlanNode* u : plan.root()->UrnLeaves()) {
    if (!u->urn_hint().empty() && u->urn_hint() != address()) {
      Suspect(u->urn_hint());
    }
  }
}

void Peer::ArmQueryTimer(const std::string& query_id, double when) {
  auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  const uint64_t gen = it->second.generation;
  sim_->ScheduleFor(id_, when, [this, qid = query_id, gen] {
    OnQueryTimer(qid, gen);
  });
}

void Peer::OnQueryTimer(const std::string& query_id, uint64_t generation) {
  auto it = pending_.find(query_id);
  if (it == pending_.end()) return;       // already finished
  Pending& p = it->second;
  if (p.generation != generation) return;  // superseded by a newer event
  const ReliabilityOptions& rel = options_.reliability;
  const double now = sim_->now();
  if (!rel.enabled || p.original == nullptr ||
      (p.deadline > 0 && now >= p.deadline) ||
      p.attempt + 1 > rel.max_retries) {
    GiveUp(query_id);
    return;
  }
  StartAttempt(query_id, p.attempt + 1);
}

void Peer::StartAttempt(const std::string& query_id, uint32_t attempt) {
  auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  p.attempt = attempt;
  ++p.generation;
  ++counters_.query_retries;
  sim_->stats().query_retries++;
  Plan plan = p.original->Clone();
  if (options_.record_provenance) {
    AddProvenance(&plan, ProvenanceAction::kForwarded,
                  "retry " + std::to_string(attempt));
  }
  // Stamp the current (unexpired) suspicion list into the plan so every
  // hop of this attempt resolves and routes around the casualties the
  // previous attempts discovered.
  auto& avoid = plan.policy().route_avoid;
  avoid.clear();
  const double now = sim_->now();
  for (auto sit = suspects_.begin(); sit != suspects_.end();) {
    if (sit->second <= now) {
      sit = suspects_.erase(sit);
    } else {
      avoid.push_back(sit->first);  // map order: deterministic stamp
      ++sit;
    }
  }
  const double deadline = p.deadline;
  double when = now + Backoff(attempt);
  if (deadline > 0) {
    // The last allowed attempt gets the whole remaining budget: giving
    // up one backoff step after launching it would discard a result
    // that is still legitimately in flight.
    if (attempt >= options_.reliability.max_retries || when > deadline) {
      when = deadline;
    }
  }
  ArmQueryTimer(query_id, when);
  // Last: processing may complete the query synchronously (local data),
  // erasing the pending entry `p` points into.
  ProcessPlan(std::move(plan), /*hops=*/0, deadline, attempt);
}

void Peer::GiveUp(const std::string& query_id) {
  auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  ++counters_.query_timeouts;
  sim_->stats().query_timeouts++;
  QueryOutcome outcome;
  if (p.best_partial != nullptr) {
    outcome = std::move(*p.best_partial);
  } else {
    outcome.query_id = query_id;
    outcome.submitted_at = p.submitted_at;
  }
  outcome.complete = false;
  outcome.timed_out = true;
  outcome.attempts = p.attempt + 1;
  outcome.completed_at = sim_->now();
  if (!outcome.items.empty()) {
    ++counters_.partials_delivered;
    sim_->stats().partials_delivered++;
  }
  Callback cb = std::move(p.callback);
  // Giving up abandons every in-flight attempt: tell the servers that
  // hold its work to stop (DESIGN.md §11).
  if (OverloadActive()) SendCancels(query_id, p);
  RememberCompleted(query_id);
  pending_.erase(it);
  if (cb) cb(outcome);
}

void Peer::RememberCompleted(const std::string& query_id) {
  if (!completed_set_.insert(query_id).second) return;
  completed_ring_.push_back(query_id);
  constexpr size_t kCompletedRingCap = 128;
  if (completed_ring_.size() > kCompletedRingCap) {
    completed_set_.erase(completed_ring_.front());
    completed_ring_.pop_front();
  }
}

// --- registration ---------------------------------------------------------------

namespace {

// A registration payload, token-decoded into plain records so handling
// and the authoritative forward never touch a DOM.
struct RegisterEntry {
  std::string level;  // "base" / "index" (raw attribute, default "base")
  std::string area;
  std::string xpath;
  std::string delay;
};

struct RegisterNamed {
  std::string urn;
  std::string xpath;
};

struct RegisterDoc {
  std::string server;
  std::string name;
  int64_t ttl = 0;
  std::vector<RegisterEntry> entries;
  std::vector<RegisterNamed> named;
  std::vector<std::string> statements;
};

Result<RegisterDoc> ParseRegisterBody(std::string_view body) {
  xml::TokenReader r(body);
  MQP_ASSIGN_OR_RETURN(xml::Token t, r.Next());
  if (t.type != xml::TokenType::kStartElement) {
    return r.Error("expected a root element");
  }
  RegisterDoc doc;
  xml::AttrList attrs;
  MQP_ASSIGN_OR_RETURN(t, r.ReadAttrs(&attrs));
  doc.server = attrs.Get("server");
  doc.name = attrs.Get("name");
  (void)mqp::ParseInt64(attrs.Get("ttl", "0"), &doc.ttl);
  while (t.type != xml::TokenType::kEndElement) {
    if (t.type == xml::TokenType::kStartElement) {
      const std::string ctag(t.name);
      xml::AttrList child;
      MQP_ASSIGN_OR_RETURN(xml::Token ct, r.ReadAttrs(&child));
      if (ctag == "entry") {
        doc.entries.push_back(RegisterEntry{
            child.Get("level", "base"), child.Get("area"),
            child.Get("xpath"), child.Get("delay", "0")});
      } else if (ctag == "named") {
        doc.named.push_back(
            RegisterNamed{child.Get("urn"), child.Get("xpath")});
      } else if (ctag == "statement") {
        // InnerText semantics: collect text across nested elements until
        // the <statement> itself closes (depth-based, so a child's end
        // tag cannot be mistaken for the statement's).
        std::string text;
        if (ct.type != xml::TokenType::kEndElement) {
          const size_t target = r.depth();  // <statement> is innermost
          xml::Token st = ct;
          while (true) {
            if (st.type == xml::TokenType::kText) text += st.value;
            if (st.type == xml::TokenType::kEndElement &&
                r.depth() < target) {
              break;
            }
            MQP_ASSIGN_OR_RETURN(st, r.Next());
          }
          ct = r.current();  // the statement's own end tag
        }
        doc.statements.push_back(std::move(text));
      }
      if (ct.type != xml::TokenType::kEndElement) {
        MQP_RETURN_IF_ERROR(r.SkipToElementEnd());
      }
    }
    MQP_ASSIGN_OR_RETURN(t, r.Next());
  }
  return doc;
}

std::string EncodeRegisterBody(const RegisterDoc& doc) {
  std::string out;
  xml::TokenWriter w(&out);
  w.Start("register");
  w.Attr("server", doc.server);
  w.Attr("name", doc.name);
  w.Attr("ttl", std::to_string(doc.ttl));
  for (const auto& e : doc.entries) {
    w.Start("entry");
    w.Attr("level", e.level);
    w.Attr("area", e.area);
    if (!e.xpath.empty()) w.Attr("xpath", e.xpath);
    if (e.delay != "0") w.Attr("delay", e.delay);
    w.End();
  }
  for (const auto& n : doc.named) {
    w.Start("named");
    w.Attr("urn", n.urn);
    w.Attr("xpath", n.xpath);
    w.End();
  }
  for (const auto& st : doc.statements) {
    w.Start("statement");
    w.Text(st);
    w.End();
  }
  w.End();
  return out;
}

}  // namespace

void Peer::HandleRegister(const wire::Envelope& env) {
  ++counters_.registrations_received;
  if (!options_.roles.index && !options_.roles.meta_index) return;
  auto parsed = ParseRegisterBody(env.body());
  if (!parsed.ok()) return;
  RegisterDoc reg = std::move(parsed).value();
  const std::string& sender = reg.server;
  if (sender.empty()) return;
  bool stored = false;
  for (const RegisterEntry& e : reg.entries) {
    auto area = ns::InterestArea::Parse(e.area);
    if (!area.ok()) continue;
    // Index/meta servers track servers whose areas overlap their own
    // (§3.2). An empty own-interest means "cover everything".
    if (!options_.interest.empty() &&
        !options_.interest.Overlaps(*area)) {
      continue;
    }
    catalog::IndexEntry entry;
    entry.area = std::move(area).value();
    entry.server = sender;
    const bool entry_is_index = e.level == "index";
    if (options_.roles.meta_index && !options_.roles.index) {
      // Meta-index servers keep only namespace-level referrals: the MQP
      // must travel to the registered server for detail (§3.2).
      entry.level = catalog::HoldingLevel::kIndex;
    } else {
      entry.level = entry_is_index ? catalog::HoldingLevel::kIndex
                                   : catalog::HoldingLevel::kBase;
      entry.xpath = e.xpath;
    }
    int64_t delay = 0;
    (void)mqp::ParseInt64(e.delay, &delay);
    entry.delay_minutes = static_cast<int>(delay);
    catalog_.AddEntry(std::move(entry));
    stored = true;
  }
  for (const RegisterNamed& n : reg.named) {
    if (n.urn.empty()) continue;
    if (options_.roles.meta_index && !options_.roles.index) {
      catalog_.AddNamedReferral(n.urn, sender);
    } else {
      catalog_.AddNamedMapping(n.urn, sender, n.xpath);
    }
    stored = true;
  }
  if (options_.use_intensional_statements) {
    for (const std::string& s : reg.statements) {
      auto st = catalog::IntensionalStatement::Parse(s);
      if (st.ok()) catalog_.AddStatement(std::move(st).value());
    }
  }
  // Authoritative servers propagate registrations upward so higher-level
  // meta-indexes learn about coverage (§3.3), bounded by a TTL. Only
  // index-level entries travel by default — the meta level tracks servers,
  // not collections (§3.2); forwarding base entries too is an ablation
  // knob that collapses the hierarchy toward a central index.
  if (stored && options_.roles.authoritative && reg.ttl > 0) {
    RegisterDoc fwd = std::move(reg);
    --fwd.ttl;
    if (!options_.forward_base_registrations) {
      std::erase_if(fwd.entries, [](const RegisterEntry& e) {
        return e.level != "index";
      });
      fwd.named.clear();
    }
    if (!fwd.entries.empty() || !fwd.named.empty()) {
      const net::Payload payload = net::MakePayload(EncodeRegisterBody(fwd));
      for (const auto& b : bootstraps_) {
        auto pid = sim_->Lookup(b);
        if (pid.ok() && *pid != id_) {
          wire::Send(sim_, id_, *pid, {kRegisterKind, "", 0, payload});
        }
      }
    }
  }
}

// --- category service (§3.5) ------------------------------------------------------

void Peer::RequestCategories(const std::string& server,
                             const std::string& dimension,
                             const std::string& path,
                             CategoryCallback cb) {
  const std::string req =
      options_.name + "-c" + std::to_string(next_query_++);
  category_waiters_[req] = std::move(cb);
  std::string body;
  xml::TokenWriter w(&body);
  w.Start("cat-query");
  w.Attr("dim", dimension);
  w.Attr("path", path);
  w.Attr("reply-to", address());
  w.End();
  auto pid = sim_->Lookup(server);
  if (!pid.ok()) return;
  wire::Send(sim_, id_, *pid,
             {kCategoryQueryKind, req, 0, net::MakePayload(std::move(body))});
}

void Peer::HandleCategoryQuery(const wire::Envelope& env, net::PeerId from) {
  if (!options_.roles.category || hierarchies_ == nullptr) return;
  xml::AttrList q;
  if (!wire::DecodeAttrBody(env.body(), &q).ok()) return;
  std::string reply;
  xml::TokenWriter w(&reply);
  w.Start("cat-reply");
  auto dim = hierarchies_->DimensionIndex(q.Get("dim"));
  if (dim.ok()) {
    auto path = ns::CategoryPath::Parse(q.Get("path", "*"));
    if (path.ok()) {
      for (const auto& child :
           hierarchies_->dimension(*dim).ChildrenOf(*path)) {
        w.Start("cat");
        w.Text(child.ToString());
        w.End();
      }
    }
  }
  w.End();
  auto pid = sim_->Lookup(q.Get("reply-to"));
  if (!pid.ok()) pid = Result<net::PeerId>(from);
  wire::Send(sim_, id_, *pid,
             {kCategoryReplyKind, env.query_id, 0,
              net::MakePayload(std::move(reply))});
}

// --- fetch service (pull; used by baselines & index pull) --------------------------

namespace {

// Parses the tk-* request attributes shared by bounded fetches and
// subquery annotations into a (spec, bound, leaf, cont, batch) tuple.
struct TopKRequest {
  engine::TopKSpec spec;
  engine::TopKBoundRef bound;
  uint32_t leaf = 0;
  uint64_t cont = 0;
  uint64_t batch = 0;
};

uint64_t AttrU64(const xml::AttrList& attrs, std::string_view key,
                 uint64_t fallback) {
  const std::string* s = attrs.Find(key);
  if (s == nullptr) return fallback;
  int64_t v = 0;
  if (!mqp::ParseInt64(*s, &v) || v < 0) return fallback;
  return static_cast<uint64_t>(v);
}

bool ParseTopKRequest(const xml::AttrList& attrs, TopKRequest* out) {
  const std::string* field = attrs.Find("tk-field");
  if (field == nullptr || field->empty()) return false;
  out->spec.field = *field;
  out->spec.ascending = attrs.Get("tk-order", "asc") != "desc";
  out->spec.k = AttrU64(attrs, "tk-k", 0);
  out->batch = AttrU64(attrs, "tk-batch", 0);
  out->cont = AttrU64(attrs, "tk-cont", 0);
  out->leaf = static_cast<uint32_t>(AttrU64(attrs, "tk-leaf", 0));
  if (const std::string* bkey = attrs.Find("tk-bkey")) {
    out->bound.present = true;
    out->bound.key = *bkey;
    out->bound.leaf = static_cast<uint32_t>(AttrU64(attrs, "tk-bleaf", 0));
  }
  return out->spec.k > 0;
}

// Emits a bounded top-k reply: the slice's continuation attributes on the
// wrapper element, then the shipped items in score order. The reply
// echoes the request's deadline/attempt so PR 8's fault plans treat each
// (cont, attempt) slice as a distinct, idempotently retryable exchange.
void SendTopKReply(net::Transport* sim, net::PeerId self, net::PeerId to,
                   const char* root_tag, const std::string& server,
                   const wire::Envelope& env, const algebra::ItemSet& items,
                   const engine::TopKSlice& slice) {
  std::string reply;
  xml::TokenWriter w(&reply);
  w.Start(root_tag);
  w.Attr("server", server);
  w.Attr("tk", "1");
  w.Attr("total", std::to_string(slice.total));
  w.Attr("cont", std::to_string(slice.next_cont));
  w.Attr("more", slice.more ? "1" : "0");
  if (slice.more) w.Attr("next", slice.next_key);
  for (size_t idx : slice.ship) {
    w.Write(*items[idx]);
  }
  w.End();
  wire::Send(sim, self, to,
             {env.kind == kFetchKind ? kFetchReplyKind : kSubqueryReplyKind,
              env.query_id, 0, net::MakePayload(std::move(reply)),
              env.deadline, env.attempt});
}

}  // namespace

void Peer::HandleFetch(const wire::Envelope& env, net::PeerId from) {
  const EngineTally tally(&counters_, &sim_->stats(), &engine_tally_depth_);
  xml::AttrList attrs;
  if (!wire::DecodeAttrBody(env.body(), &attrs).ok()) return;
  auto items = store_.Fetch(address(), attrs.Get("xpath"));
  TopKRequest req;
  if (items.ok() && ParseTopKRequest(attrs, &req)) {
    // Bounded path: ship only the score-ordered prefix the coordinator's
    // current bound leaves eligible, from the continuation offset on.
    const engine::TopKSlice slice = engine::BoundedPrefix(
        *items, req.spec, req.bound, req.leaf, req.cont, req.batch);
    SendTopKReply(sim_, id_, from, "fetch-reply", address(), env, *items,
                  slice);
    return;
  }
  std::string reply;
  xml::TokenWriter w(&reply);
  w.Start("fetch-reply");
  w.Attr("server", address());
  if (items.ok()) {
    for (const auto& item : *items) {
      w.Write(*item);
    }
  }
  w.End();
  wire::Send(sim_, id_, from,
             {kFetchReplyKind, env.query_id, 0,
              net::MakePayload(std::move(reply))});
}

// --- subquery service (coordinator-style distributed QP, baseline C2) ------------

void Peer::HandleSubquery(const wire::Envelope& env, net::PeerId from) {
  const EngineTally tally(&counters_, &sim_->stats(), &engine_tally_depth_);
  // Subquery evaluation honors the requesting query's remaining deadline
  // (DESIGN.md §11); an exhausted budget yields the empty reply below,
  // which the coordinator's deadline/retry machinery already handles.
  const engine::ScopedEvalBudget budget(EvalLimitsFor(env.deadline));
  // The body is the sub-plan's <mqp> document itself (the coordinator
  // stopped wrapping it; correlation rides in the envelope header).
  auto plan = algebra::ParsePlan(env.body());
  if (!plan.ok()) {
    ++counters_.reply_decode_failures;
    sim_->stats().reply_decode_failures++;
  } else if (plan->root() != nullptr) {
    // A bound-stamped root marks a bounded top-k request: evaluate the
    // sub-plan, then ship only the eligible score-ordered slice.
    const auto& topk = std::as_const(*plan->root()).annotations().topk;
    if (topk.has_value() && topk->k > 0 && !topk->order_field.empty()) {
      auto items = engine::Evaluate(*plan->root(), &store_);
      if (items.ok()) {
        engine::TopKSpec spec{topk->order_field, topk->ascending, topk->k};
        engine::TopKBoundRef bound;
        if (topk->has_bound) {
          bound.present = true;
          bound.key = topk->bound_key;
          bound.leaf = topk->bound_leaf;
        }
        const engine::TopKSlice slice = engine::BoundedPrefix(
            *items, spec, bound, topk->leaf, topk->cont, topk->batch);
        SendTopKReply(sim_, id_, from, "subquery-reply", address(), env,
                      *items, slice);
        return;
      }
    }
  }
  std::string reply;
  xml::TokenWriter w(&reply);
  w.Start("subquery-reply");
  w.Attr("server", address());
  if (plan.ok() && plan->root() != nullptr) {
    // An evaluation failure yields an empty reply; the old error
    // attribute was write-only diagnostics no receiver ever read.
    auto items = engine::Evaluate(*plan->root(), &store_);
    if (items.ok()) {
      for (const auto& item : *items) {
        w.Write(*item);
      }
    }
  }
  w.End();
  wire::Send(sim_, id_, from,
             {kSubqueryReplyKind, env.query_id, 0,
              net::MakePayload(std::move(reply))});
}

// --- distributed top-k coordinator (DESIGN.md §10) ---------------------------------

namespace {

// DFS through non-distinct unions, collecting the TopN input's frontier
// in left-to-right order (the leaf numbering every participant shares).
// False on a repeated node: DAG sharing makes leaf positions ambiguous.
bool CollectTopKFrontier(const PlanNodePtr& node,
                         std::unordered_set<const PlanNode*>* seen,
                         std::vector<PlanNodePtr>* out) {
  if (!seen->insert(node.get()).second) return false;
  if (node->type() == OpType::kUnion && !node->distinct()) {
    for (const auto& c : node->children()) {
      if (!CollectTopKFrontier(c, seen, out)) return false;
    }
    return true;
  }
  out->push_back(node);
  return true;
}

}  // namespace

void Peer::TruncateForTopK(const PlanNode& node, algebra::ItemSet* items) {
  const auto& topk = std::as_const(node).annotations().topk;
  if (!topk.has_value() || topk->k == 0 || topk->order_field.empty()) return;
  const engine::TopKSpec spec{topk->order_field, topk->ascending, topk->k};
  engine::TopKBoundRef bound;
  if (topk->has_bound) {
    bound.present = true;
    bound.key = topk->bound_key;
    bound.leaf = topk->bound_leaf;
  }
  *items = engine::TopKTruncate(*items, spec, bound, topk->leaf);
}

bool Peer::MaybeStartTopKSession(Plan* plan, uint32_t hops, double deadline,
                                 uint32_t attempt) {
  if (!optimizer::use_distributed_topk()) return false;
  if (plan->root() == nullptr || plan->query_id().empty()) return false;
  // Find the consumer TopN under the display/projection wrappers.
  PlanNode* topn = plan->root().get();
  while (topn->type() == OpType::kDisplay ||
         topn->type() == OpType::kProject) {
    if (topn->children().size() != 1) return false;
    topn = topn->child(0).get();
  }
  if (topn->type() != OpType::kTopN || !topn->has_limit() ||
      topn->limit() == 0 || topn->order_field().empty() ||
      topn->children().empty()) {
    return false;
  }
  std::unordered_set<const PlanNode*> seen;
  std::vector<PlanNodePtr> frontier;
  if (!CollectTopKFrontier(topn->child(0), &seen, &frontier)) return false;
  // Classify the frontier: constants pre-load the merge; bound-stamped
  // remote sub-plans become streamed sources; anything else (an
  // unresolved URN, an unstamped remote branch, a distinct union) means
  // this peer cannot finish the merge — route the plan normally.
  const engine::TopKSpec spec{topn->order_field(), topn->ascending(),
                              topn->limit()};
  TopKSession s;
  s.spec = spec;
  s.heap = std::make_unique<engine::TopKHeap>(spec.k, spec.ascending);
  engine::FieldAccessor key(spec.field);
  std::vector<uint64_t> cards;
  uint64_t total_card = 0;
  bool all_cards = true;
  for (size_t li = 0; li < frontier.size(); ++li) {
    const PlanNodePtr& node = frontier[li];
    const auto leaf = static_cast<uint32_t>(li);
    if (node->IsConstant()) {
      uint64_t idx = 0;
      for (const auto& item : node->items()) {
        s.heap->Push(key.Eval(*item).value_or(std::string_view()), leaf,
                     idx++, item);
      }
      continue;
    }
    const auto& topk = std::as_const(*node).annotations().topk;
    if (!topk.has_value() || topk->order_field != spec.field ||
        topk->ascending != spec.ascending || topk->k != spec.k) {
      return false;
    }
    TopKSource src;
    src.node = node;
    src.leaf = leaf;
    if (node->type() == OpType::kUrl) {
      src.is_fetch = true;
      src.server = node->url();
      src.xpath = node->xpath();
    } else {
      if (!node->UrnLeaves().empty()) return false;
      for (const PlanNode* u : node->UrlLeaves()) {
        if (src.server.empty()) {
          src.server = u->url();
        } else if (src.server != u->url()) {
          return false;
        }
      }
    }
    if (src.server.empty()) return false;
    const auto& card = std::as_const(*node).annotations().cardinality;
    if (card.has_value()) {
      cards.push_back(*card);
      total_card += *card;
    } else {
      cards.push_back(0);
      all_cards = false;
    }
    s.sources.push_back(std::move(src));
  }
  if (s.sources.empty()) return false;
  // Every source server must be reachable right now; otherwise leave the
  // plan to normal routing and its failover machinery.
  for (const auto& src : s.sources) {
    auto pid = sim_->Lookup(src.server);
    if (!pid.ok() || sim_->IsFailed(*pid)) return false;
  }
  // Initial windows: each source's expected contribution to the top k —
  // proportional to catalog cardinalities when every source carries one,
  // else an even split — oversampled 2x (a second round costs a full
  // RTT, so mild over-asking is the cheaper error) and capped at k (no
  // source ever needs to ship more; its k+1-th row is beaten by k
  // same-leaf rows).
  const size_t fan = s.sources.size();
  for (size_t i = 0; i < fan; ++i) {
    uint64_t b;
    if (all_cards && total_card > 0) {
      b = static_cast<uint64_t>(
          std::llround(2.0 * static_cast<double>(spec.k) *
                       static_cast<double>(cards[i]) /
                       static_cast<double>(total_card)));
    } else {
      b = (2 * spec.k + fan - 1) / fan;
    }
    s.sources[i].batch = std::clamp<uint64_t>(b, 1, spec.k);
  }
  const std::string qid = plan->query_id();
  if (auto pit = pending_.find(qid); pit != pending_.end()) {
    // Coordinating our own query: the streamed sources hold per-slice
    // work a cancel should reach.
    for (const auto& src : s.sources) {
      pit->second.contacted.insert(src.server);
    }
  }
  s.plan = std::move(*plan);
  s.topn = topn;
  s.hops = hops;
  s.deadline = deadline;
  s.attempt = attempt;
  s.generation = next_topk_generation_++;
  // A retry supersedes the previous attempt's session outright; the old
  // attempt's in-flight replies die on the attempt check.
  topk_sessions_.erase(qid);
  auto [it, inserted] = topk_sessions_.emplace(qid, std::move(s));
  if (deadline > 0) {
    const uint64_t gen = it->second.generation;
    sim_->ScheduleFor(id_, deadline,
                      [this, qid, gen]() { OnTopKDeadline(qid, gen); });
  }
  const size_t n = it->second.sources.size();
  for (size_t i = 0; i < n; ++i) {
    SendTopKRequest(qid, i);
  }
  return true;
}

void Peer::SendTopKRequest(const std::string& query_id, size_t idx) {
  auto it = topk_sessions_.find(query_id);
  if (it == topk_sessions_.end()) return;
  TopKSession& s = it->second;
  TopKSource& src = s.sources[idx];
  auto pid = sim_->Lookup(src.server);
  if (!pid.ok()) return;  // stalled source: the deadline timer cleans up
  // The correlation id carries the session, the source, and the
  // continuation offset — a retried slice is idempotent because a reply
  // for any cont other than the source's current one is dropped.
  const std::string rid = query_id + "#tk" + std::to_string(src.leaf) + "." +
                          std::to_string(src.cont);
  const engine::TopKBoundRef bound =
      s.heap->full() ? s.heap->Bound() : engine::TopKBoundRef{};
  if (src.is_fetch) {
    std::string body;
    xml::TokenWriter w(&body);
    w.Start("fetch");
    w.Attr("xpath", src.xpath);
    w.Attr("tk-field", s.spec.field);
    w.Attr("tk-order", s.spec.ascending ? "asc" : "desc");
    w.Attr("tk-k", std::to_string(s.spec.k));
    w.Attr("tk-batch", std::to_string(src.batch));
    w.Attr("tk-cont", std::to_string(src.cont));
    w.Attr("tk-leaf", std::to_string(src.leaf));
    if (bound.present) {
      w.Attr("tk-bkey", bound.key);
      w.Attr("tk-bleaf", std::to_string(bound.leaf));
    }
    w.End();
    wire::Send(sim_, id_, *pid,
               {kFetchKind, rid, 0, net::MakePayload(std::move(body)),
                s.deadline, s.attempt});
    return;
  }
  // Subquery source: refresh the annotation's continuation state and
  // bound, then ship the sub-plan document itself.
  algebra::TopKBound ann;
  ann.order_field = s.spec.field;
  ann.ascending = s.spec.ascending;
  ann.k = s.spec.k;
  ann.batch = src.batch;
  ann.cont = src.cont;
  ann.leaf = src.leaf;
  if (bound.present) {
    ann.has_bound = true;
    ann.bound_key = bound.key;
    ann.bound_leaf = bound.leaf;
  }
  if (std::as_const(*src.node).annotations().topk != ann) {
    src.node->annotations().topk = std::move(ann);
  }
  algebra::Plan sub;
  sub.set_root(src.node);
  wire::Send(sim_, id_, *pid,
             {kSubqueryKind, rid, 0,
              net::MakePayload(algebra::SerializePlan(sub)), s.deadline,
              s.attempt});
}

void Peer::HandleBoundedReply(const wire::Envelope& env) {
  const std::string& rid = env.query_id;
  const size_t marker = rid.rfind("#tk");
  const auto count_unmatched = [this]() {
    ++counters_.unmatched_replies;
    sim_->stats().unmatched_replies++;
  };
  if (marker == std::string::npos) {
    count_unmatched();
    return;
  }
  const std::string qid = rid.substr(0, marker);
  const std::string suffix = rid.substr(marker + 3);
  const size_t dot = suffix.find('.');
  int64_t leaf = -1;
  int64_t cont = -1;
  if (dot == std::string::npos ||
      !mqp::ParseInt64(suffix.substr(0, dot), &leaf) ||
      !mqp::ParseInt64(suffix.substr(dot + 1), &cont) || leaf < 0 ||
      cont < 0) {
    count_unmatched();
    return;
  }
  auto it = topk_sessions_.find(qid);
  if (it == topk_sessions_.end()) {
    // Late replies for a recently finished session are expected noise
    // (the terminating round's losers); anything else is unaccounted.
    if (topk_done_set_.count(qid) == 0) count_unmatched();
    return;
  }
  TopKSession& s = it->second;
  if (env.attempt != s.attempt) return;  // a superseded attempt's reply
  size_t idx = s.sources.size();
  for (size_t i = 0; i < s.sources.size(); ++i) {
    if (s.sources[i].leaf == static_cast<uint32_t>(leaf)) {
      idx = i;
      break;
    }
  }
  if (idx == s.sources.size()) {
    count_unmatched();
    return;
  }
  const TopKSource& src = s.sources[idx];
  // Duplicate or stale slice (a fault-plan re-delivery, or a reply that
  // raced its own retry): the continuation offset identifies the one
  // slice the source is waiting for.
  if (src.done || src.cont != static_cast<uint64_t>(cont)) return;
  MergeTopKBatch(qid, idx, env);
}

void Peer::MergeTopKBatch(const std::string& query_id, size_t idx,
                          const wire::Envelope& env) {
  const EngineTally tally(&counters_, &sim_->stats(), &engine_tally_depth_);
  auto sit = topk_sessions_.find(query_id);
  if (sit == topk_sessions_.end()) return;
  TopKSession& s = sit->second;
  TopKSource& src = s.sources[idx];
  auto decoded = wire::DecodeItemBodyWithAttrs(env.body());
  if (!decoded.ok()) {
    ++counters_.reply_decode_failures;
    sim_->stats().reply_decode_failures++;
    return;  // the session stalls; the deadline timer (or a retry) recovers
  }
  const wire::ItemBody body = std::move(decoded).value();
  engine::FieldAccessor key(s.spec.field);
  uint64_t accepted = 0;
  uint64_t seq = 0;
  for (const auto& item : body.items) {
    const std::string_view k = key.Eval(*item).value_or(std::string_view());
    if (s.heap->WouldAccept(k, src.leaf)) ++accepted;
    s.heap->Push(k, src.leaf, src.cont + seq, item);
    ++seq;
  }
  const uint64_t shipped = body.items.size();
  src.received_rows += shipped;
  src.received_bytes += env.body().size();
  src.total = AttrU64(body.attrs, "total", src.total);
  src.cont = AttrU64(body.attrs, "cont", src.cont + shipped);
  const bool more = AttrU64(body.attrs, "more", 0) != 0;
  ++counters_.topk_batches;
  sim_->stats().topk_batches++;
  if (!more) {
    src.done = true;
  } else if (s.heap->full()) {
    // Threshold test (the ADiT termination): the server's next eligible
    // key rides in the reply — if the heap's k-th entry already beats
    // it, nothing further from this source can win. The server never
    // sees the terminal slice, so the rows it still holds are credited
    // here (disjoint from BoundedPrefix's terminal-slice credit).
    const std::string* next = body.attrs.Find("next");
    if (next != nullptr && !s.heap->WouldAccept(*next, src.leaf)) {
      src.done = true;
      src.terminated_early = true;
      ++counters_.topk_early_terminations;
      sim_->stats().topk_early_terminations++;
      if (src.total > src.received_rows) {
        const uint64_t pruned = src.total - src.received_rows;
        counters_.topk_rows_pruned += pruned;
        sim_->stats().topk_rows_pruned += pruned;
      }
    }
  }
  if (!src.done) {
    // Adapt the next window. With a full heap, a catalog histogram for
    // the order field turns the bound into a direct estimate of how many
    // rows at the server can still win; without one, fall back to
    // multiplicative adaptation on the observed acceptance rate.
    const uint64_t cap = s.spec.k > 0 ? s.spec.k : 1;
    const uint64_t lo = std::min<uint64_t>(4, cap);
    uint64_t batch = src.batch;
    bool refined = false;
    if (s.heap->full() && src.total > 0) {
      const engine::TopKBoundRef bound = s.heap->Bound();
      const algebra::FieldHistogram* hist =
          std::as_const(*src.node).annotations().HistogramFor(s.spec.field);
      if (hist != nullptr) {
        char* end = nullptr;
        const double v = std::strtod(bound.key.c_str(), &end);
        if (end != bound.key.c_str() && *end == '\0') {
          double frac = s.spec.ascending
                            ? hist->FractionBelow(v)
                            : 1.0 - hist->FractionBelow(v) -
                                  hist->FractionEquals(v);
          if (frac < 0) frac = 0;
          const auto useful = static_cast<uint64_t>(
              std::llround(frac * static_cast<double>(src.total)));
          batch = useful > src.received_rows ? useful - src.received_rows
                                             : lo;
          refined = true;
        }
      }
    }
    if (!refined && shipped > 0) {
      if (accepted * 2 >= shipped) {
        batch = src.batch * 2;
      } else if (accepted * 10 < shipped) {
        batch = src.batch / 2;
      }
    }
    src.batch = std::clamp<uint64_t>(batch, lo, cap);
    SendTopKRequest(query_id, idx);
    return;
  }
  for (const auto& other : s.sources) {
    if (!other.done) return;
  }
  FinishTopKSession(query_id);
}

void Peer::FinishTopKSession(const std::string& query_id) {
  auto it = topk_sessions_.find(query_id);
  if (it == topk_sessions_.end()) return;
  TopKSession s = std::move(it->second);
  topk_sessions_.erase(it);
  RememberTopKDone(query_id);
  // Estimate what the bound kept off the wire: unshipped rows per source,
  // priced at that source's observed bytes-per-row (cost-model fallback
  // when a source shipped nothing). Benches measure real wire bytes; the
  // counter is the per-query attribution.
  for (const auto& src : s.sources) {
    if (src.total <= src.received_rows) continue;
    const uint64_t unshipped = src.total - src.received_rows;
    const double per_row =
        src.received_rows > 0
            ? static_cast<double>(src.received_bytes) /
                  static_cast<double>(src.received_rows)
            : options_.cost.avg_item_bytes;
    const auto saved = static_cast<uint64_t>(
        std::llround(per_row * static_cast<double>(unshipped)));
    counters_.topk_bytes_saved += saved;
    sim_->stats().topk_bytes_saved += saved;
  }
  // The heap holds exactly the reference TopN's answer; morphing the TopN
  // to it and re-entering the Figure-2 loop finishes the plan (remaining
  // wrappers evaluate over constants, then delivery).
  s.topn->MorphToData(s.heap->Finish());
  ProcessPlan(std::move(s.plan), s.hops, s.deadline, s.attempt);
}

void Peer::OnTopKDeadline(const std::string& query_id, uint64_t generation) {
  auto it = topk_sessions_.find(query_id);
  if (it == topk_sessions_.end() || it->second.generation != generation) {
    return;  // the session finished (or was superseded) before the timer
  }
  TopKSession s = std::move(it->second);
  topk_sessions_.erase(it);
  RememberTopKDone(query_id);
  // The TopN stays unmorphed — ProcessPlan's deadline branch force-
  // evaluates what it can and delivers the partial (PR 8 semantics: the
  // client's retry machinery sees an incomplete plan and takes over).
  ProcessPlan(std::move(s.plan), s.hops, s.deadline, s.attempt);
}

void Peer::RememberTopKDone(const std::string& query_id) {
  if (!topk_done_set_.insert(query_id).second) return;
  topk_done_ring_.push_back(query_id);
  constexpr size_t kTopKDoneRingCap = 128;
  if (topk_done_ring_.size() > kTopKDoneRingCap) {
    topk_done_set_.erase(topk_done_ring_.front());
    topk_done_ring_.pop_front();
  }
}

// --- overload protection (DESIGN.md §11) -------------------------------------------

bool Peer::OverloadActive() const {
  return use_overload_protection() && options_.overload.enabled;
}

void Peer::HandleMqp(const wire::Envelope& env) {
  // dom_nodes_built spans the entire hop — decode through forward — so a
  // pure routing hop can be asserted to build zero xml::Nodes.
  const uint64_t nodes_before = xml::DomNodesBuilt();
  const net::NetStats& stats = sim_->stats();
  const uint64_t decode_ns_before = stats.plan_decode_ns;
  const uint64_t token_decodes_before = stats.token_decodes;
  auto parsed = wire::ParsePlanShared(env.payload, &sim_->stats());
  counters_.plan_decode_ns += stats.plan_decode_ns - decode_ns_before;
  counters_.token_decodes += stats.token_decodes - token_decodes_before;
  if (!parsed.ok()) return;  // malformed plans are dropped
  ++counters_.plan_parses;
  ++counters_.plans_received;
  Plan plan = std::move(parsed).value();
  const OverloadOptions& ov = options_.overload;
  if (OverloadActive() && cancelled_set_.count(plan.query_id()) > 0) {
    // The client already tore this query down; servicing it is waste.
    ++counters_.cancelled_sessions_reaped;
    sim_->stats().cancelled_sessions_reaped++;
    counters_.dom_nodes_built += xml::DomNodesBuilt() - nodes_before;
    return;
  }
  if (ov.service_rate_qps <= 0) {
    // No service-time model: process at arrival (the pre-§11 path —
    // default traces stay byte-identical).
    ProcessPlan(std::move(plan), env.hops, env.deadline, env.attempt);
    counters_.dom_nodes_built += xml::DomNodesBuilt() - nodes_before;
    return;
  }
  // The modeled core serves one plan per 1/rate seconds; arrivals queue
  // behind busy_until_. The model runs even when the protection is
  // ablated — it is the hardware, not the policy; the policy is deciding
  // *not* to join a hopeless queue.
  const double now = sim_->now();
  const double start = std::max(now, busy_until_);
  if (OverloadActive() && env.deadline > 0 &&
      start + 1.0 / ov.service_rate_qps > env.deadline) {
    // Even served next, this plan's results would leave past its
    // deadline. Refuse instead of burning a core slot on a query nobody
    // will wait for: the partial evaluated so far goes back *now* —
    // before the client's own deadline fires — and the kShed marker
    // quarantines this hop so a retry binds elsewhere.
    ShedPlan(std::move(plan), env.deadline, env.attempt);
    counters_.dom_nodes_built += xml::DomNodesBuilt() - nodes_before;
    return;
  }
  if (OverloadActive() &&
      ShouldShed(start - now, plan.policy().priority, plan.query_id(),
                 env.attempt)) {
    ShedPlan(std::move(plan), env.deadline, env.attempt);
    counters_.dom_nodes_built += xml::DomNodesBuilt() - nodes_before;
    return;
  }
  // The plan occupies the core for [start, start + 1/rate) and its
  // results leave at service *completion* — a lone plan on an idle peer
  // still costs one service time, not zero (M/D/1, not a pure queue).
  busy_until_ = start + 1.0 / ov.service_rate_qps;
  sim_->ScheduleFor(
      id_, busy_until_,
      [this, p = std::move(plan), hops = env.hops, deadline = env.deadline,
       attempt = env.attempt]() mutable {
        if (OverloadActive() && cancelled_set_.count(p.query_id()) > 0) {
          // Cancelled while queued: reap instead of serving.
          ++counters_.cancelled_sessions_reaped;
          sim_->stats().cancelled_sessions_reaped++;
          return;
        }
        const uint64_t nb = xml::DomNodesBuilt();
        ProcessPlan(std::move(p), hops, deadline, attempt);
        counters_.dom_nodes_built += xml::DomNodesBuilt() - nb;
      });
  counters_.dom_nodes_built += xml::DomNodesBuilt() - nodes_before;
}

bool Peer::ShouldShed(double projected_delay, uint32_t priority,
                      const std::string& query_id, uint32_t attempt) {
  const OverloadOptions& ov = options_.overload;
  if (ov.shed_delay_seconds <= 0) return false;
  if (priority > 0) {
    // High-priority traffic is refused only past the hard ceiling —
    // beyond it, admitting more would starve everything already queued.
    return projected_delay >=
           ov.shed_delay_seconds * ov.high_priority_ceiling;
  }
  if (projected_delay >= ov.shed_delay_seconds) return true;
  const double knee = ov.early_shed_fraction * ov.shed_delay_seconds;
  if (projected_delay <= knee) return false;
  // RED-style gray zone: shed with probability ramping linearly from 0
  // at the knee to 1 at the watermark, so pressure is released gradually
  // instead of oscillating around a hard edge. The coin is a pure
  // function of (seed, query id, attempt) — every backend, and every
  // rerun, flips it the same way.
  const double p = (projected_delay - knee) / (ov.shed_delay_seconds - knee);
  uint64_t h = Fnv1a(kFnvOffset, ov.seed);
  h = Fnv1a(h, query_id);
  h = Fnv1a(h, static_cast<uint64_t>(attempt));
  const double coin = static_cast<double>(h % 1000000ULL) / 1e6;
  return coin < p;
}

void Peer::ShedPlan(Plan plan, double deadline, uint32_t attempt) {
  ++counters_.queries_shed;
  sim_->stats().queries_shed++;
  // The marker is recorded even when provenance is otherwise ablated: it
  // is the wire signal the client's failover keys on (quarantine the hot
  // server, rebind elsewhere), not an audit note.
  AddProvenance(&plan, ProvenanceAction::kShed, "overload");
  DeliverToTarget(std::move(plan), deadline, attempt);
}

engine::EvalLimits Peer::EvalLimitsFor(double deadline) const {
  engine::EvalLimits lim;
  if (!OverloadActive()) return lim;
  const OverloadOptions& ov = options_.overload;
  lim.max_eval_seconds = ov.max_eval_seconds;
  if (ov.budget_rows_per_second > 0 && deadline > 0) {
    // Remaining virtual time converts to a deterministic row allowance
    // (a wall-clock cap would differ run to run); the floor keeps tiny
    // salvage evaluations finishable even at the deadline's edge.
    const double remaining = deadline - sim_->now();
    uint64_t rows = 0;
    if (remaining > 0) {
      rows = static_cast<uint64_t>(
          remaining * static_cast<double>(ov.budget_rows_per_second));
    }
    lim.max_rows = std::max(rows, ov.min_budget_rows);
  }
  return lim;
}

void Peer::SendCancels(const std::string& query_id, const Pending& p) {
  // Fan out to every server this query's attempts touched: the first
  // hops it was forwarded to, plus everything the best partial's
  // provenance names (servers later hops pulled in).
  std::set<std::string> targets = p.contacted;
  if (p.best_partial != nullptr) {
    for (const auto& e : p.best_partial->provenance.entries()) {
      targets.insert(e.server);
    }
  }
  targets.erase(address());
  for (const auto& t : targets) {
    auto pid = sim_->Lookup(t);
    if (!pid.ok() || *pid == id_) continue;
    ++counters_.cancels_sent;
    sim_->stats().cancels_sent++;
    wire::Send(sim_, id_, *pid, {kCancelKind, query_id, 0, net::Payload()});
  }
}

void Peer::HandleCancel(const wire::Envelope& env) {
  if (!OverloadActive()) return;
  const std::string& qid = env.query_id;
  if (qid.empty()) return;
  // Idempotent under FaultInjector duplication: only the first copy of a
  // cancel does any work.
  if (!RememberCancelled(qid)) return;
  auto it = topk_sessions_.find(qid);
  if (it != topk_sessions_.end()) {
    topk_sessions_.erase(it);
    RememberTopKDone(qid);
    ++counters_.cancelled_sessions_reaped;
    sim_->stats().cancelled_sessions_reaped++;
  }
}

bool Peer::RememberCancelled(const std::string& query_id) {
  if (!cancelled_set_.insert(query_id).second) return false;
  cancelled_ring_.push_back(query_id);
  constexpr size_t kCancelledRingCap = 256;
  if (cancelled_ring_.size() > kCancelledRingCap) {
    cancelled_set_.erase(cancelled_ring_.front());
    cancelled_ring_.pop_front();
  }
  return true;
}

}  // namespace mqp::peer
