// Spoofing detection utilities (paper §5.1).
//
// If a malicious server binds a competitor's resource to the empty set,
// the MQP's provenance will show that the plan never visited the rightful
// source. A client holding the original plan can detect this and issue a
// verification query (e.g. count(σ(B))) directly to the suspected source.
#pragma once

#include <string>
#include <vector>

#include "algebra/plan.h"

namespace mqp::peer {

/// \brief One suspicious binding: a URN of the original plan for which no
/// provenance entry credits a visit to any server that could have bound it.
struct SuspiciousBinding {
  std::string urn;
};

/// \brief Inspects a completed plan that retained its original (§5.1):
/// returns the URNs of the original plan that were evaluated away even
/// though the provenance records no visit to `expected_server` (the server
/// the client believes serves that URN).
///
/// With an empty `expected_server`, any URN that disappeared while the
/// provenance shows only a single server doing all binding+evaluation is
/// reported (the single-server-did-everything heuristic).
std::vector<SuspiciousBinding> FindSuspiciousBindings(
    const algebra::Plan& final_plan, const std::string& urn,
    const std::string& expected_server);

/// \brief Builds the verification query of §5.1: count(σ(urn)), targeted
/// back at `target`. Send it straight to the suspected source; a non-zero
/// count contradicts an empty binding.
algebra::Plan MakeVerificationQuery(const std::string& urn,
                                    const std::string& target);

}  // namespace mqp::peer
