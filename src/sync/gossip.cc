#include "sync/gossip.h"

#include <algorithm>
#include <vector>

namespace mqp::sync {

using catalog::CatalogDelta;
using catalog::VersionVector;

SyncAgent::SyncAgent(net::Transport* sim, net::PeerId id, std::string self,
                     catalog::Catalog* projection, SyncOptions options)
    : sim_(sim),
      id_(id),
      self_(std::move(self)),
      options_(options),
      versioned_(self_, projection),
      rng_(options.seed) {}

void SyncAgent::AddPeer(const std::string& address) {
  if (address == self_ || address.empty()) return;
  peers_.insert(address);
}

void SyncAgent::AddSeed(const std::string& address) {
  if (address == self_ || address.empty()) return;
  seeds_.insert(address);
  peers_.insert(address);
}

void SyncAgent::UpsertLocal(catalog::SyncEntry entry) {
  versioned_.UpsertLocal(std::move(entry), options_.entry_ttl_seconds,
                         sim_->now());
}

void SyncAgent::TombstoneLocal(const catalog::SyncEntry& entry) {
  versioned_.TombstoneLocal(entry, sim_->now());
}

void SyncAgent::Start() {
  if (running_) return;
  running_ = true;
  ++epoch_;
  versioned_.BumpPresence(options_.entry_ttl_seconds, sim_->now());
  last_refresh_ = sim_->now();
  ScheduleTick();
}

void SyncAgent::Stop() {
  running_ = false;
  ++epoch_;
}

void SyncAgent::Leave() {
  // Withdraw everything we ever asserted, then push one final delta of
  // *our own* records (now tombstones) so the withdrawal starts
  // propagating before we go dark.
  std::vector<catalog::SyncEntry> own;
  for (const auto& [key, rec] : versioned_.records()) {
    if (rec.version.origin == self_ && !rec.tombstone) {
      own.push_back(rec.entry);
    }
  }
  for (const auto& entry : own) {
    versioned_.TombstoneLocal(entry, sim_->now());
  }
  CatalogDelta goodbye;
  for (const auto& [key, rec] : versioned_.records()) {
    if (rec.version.origin == self_) goodbye.records.push_back(rec);
  }
  for (const std::string& target : peers_) {
    // No vector piggyback: a push-back would address a peer going dark.
    SendDeltaRaw(target, goodbye, /*attach_vector=*/false);
  }
  departed_ = true;
  Stop();
}

void SyncAgent::Rejoin() {
  departed_ = false;
  versioned_.RestampOwn(sim_->now());
  if (!running_) {
    running_ = true;
    ++epoch_;
    last_refresh_ = sim_->now();
    ScheduleTick();
  }
}

void SyncAgent::ScheduleTick() {
  if (options_.horizon_seconds > 0 &&
      sim_->now() >= options_.horizon_seconds) {
    return;
  }
  const uint64_t epoch = epoch_;
  sim_->ScheduleFor(id_, sim_->now() + options_.gossip_interval_seconds,
                 [this, epoch]() {
                   if (epoch == epoch_ && running_) Tick();
                 });
}

void SyncAgent::Tick() {
  ++counters_.ticks;
  // A crashed peer neither refreshes nor gossips; the loop idles until
  // the churn driver recovers it (Rejoin) — but keeps rescheduling so the
  // agent resumes on its own when only Fail/Recover were used.
  if (!sim_->IsFailed(id_)) {
    const double now = sim_->now();
    const bool may_refresh = options_.refresh_horizon_seconds <= 0 ||
                             now <= options_.refresh_horizon_seconds;
    if (may_refresh &&
        now - last_refresh_ >= options_.refresh_interval_seconds) {
      versioned_.BumpPresence(options_.entry_ttl_seconds, now);
      last_refresh_ = now;
    }
    // Origins whose TTL lapsed are dead until they refresh: drop them
    // from the partner pool too (seeds stay), so rounds are not wasted
    // digesting them.
    for (const std::string& origin : versioned_.ExpireSilent(now)) {
      if (seeds_.count(origin) == 0) peers_.erase(origin);
      ++counters_.origins_expired;
    }
    versioned_.PurgeTombstones(now, options_.tombstone_gc_seconds);
    if (!peers_.empty()) {
      // Deterministic partner sample without replacement.
      std::vector<std::string> pool(peers_.begin(), peers_.end());
      rng_.Shuffle(&pool);
      const size_t n = std::min(options_.fanout, pool.size());
      for (size_t i = 0; i < n; ++i) {
        SendDigest(pool[i]);
      }
    }
  }
  ScheduleTick();
}

void SyncAgent::SendDigest(const std::string& target) {
  auto pid = sim_->Lookup(target);
  if (!pid.ok() || *pid == id_) return;
  ++counters_.digests_sent;
  wire::Send(sim_, id_, *pid,
             {wire::kSyncDigestKind, self_, 0,
              net::MakePayload(catalog::DigestToXml(versioned_.vector()))});
}

void SyncAgent::SendDelta(const std::string& target,
                          const VersionVector& remote) {
  SendDeltaRaw(target, versioned_.DeltaSince(remote), /*attach_vector=*/false);
}

void SyncAgent::SendDeltaRaw(const std::string& target,
                             const CatalogDelta& delta, bool attach_vector) {
  if (delta.empty()) return;
  auto pid = sim_->Lookup(target);
  if (!pid.ok() || *pid == id_) return;
  ++counters_.deltas_sent;
  counters_.records_sent += delta.size();
  CatalogDelta framed = delta;
  if (attach_vector) framed.sender_vector = versioned_.vector();
  wire::Send(sim_, id_, *pid,
             {wire::kSyncDeltaKind, self_, 0,
              net::MakePayload(framed.ToXml())});
}

void SyncAgent::HandleDigest(const wire::Envelope& env, net::PeerId from) {
  ++counters_.digests_received;
  auto remote = catalog::DigestFromXml(env.body());
  if (!remote.ok()) return;
  // The envelope's query-id slot carries the sender's address; fall back
  // to the simulator id for raw messages.
  const std::string sender =
      env.query_id.empty() ? sim_->Address(from) : env.query_id;
  AddPeer(sender);
  // Push: everything the sender's vector proves it is missing. When the
  // sender also has versions we lack (bidirectional gap), piggyback our
  // vector on the delta so it pushes back without a digest round-trip —
  // a small digest-back would overtake the large delta on the wire and
  // trigger a duplicate send. With nothing to push, a plain digest-back
  // solicits their delta. Terminates: after their delta arrives, the
  // we-lack condition turns false.
  const catalog::CatalogDelta missing = versioned_.DeltaSince(*remote);
  const bool we_lack = !catalog::Dominates(versioned_.vector(), *remote);
  if (!missing.empty()) {
    SendDeltaRaw(sender, missing, /*attach_vector=*/we_lack);
  } else if (we_lack) {
    SendDigest(sender);
  }
}

void SyncAgent::HandleDelta(const wire::Envelope& env, net::PeerId from) {
  ++counters_.deltas_received;
  auto delta = CatalogDelta::FromXml(env.body());
  if (!delta.ok()) return;
  const std::string sender =
      env.query_id.empty() ? sim_->Address(from) : env.query_id;
  AddPeer(sender);
  counters_.records_applied += versioned_.Apply(*delta, sim_->now());
  // Record origins are gossip partner candidates too: membership grows
  // transitively with the catalog itself. A tombstoned presence record
  // is the origin's goodbye — drop it from the partner pool instead.
  for (const auto& rec : delta->records) {
    if (rec.entry.kind == catalog::SyncEntryKind::kPresence &&
        rec.tombstone) {
      // A goodbye is authoritative: prune even a seed.
      peers_.erase(rec.version.origin);
      seeds_.erase(rec.version.origin);
    } else if (!rec.tombstone) {
      AddPeer(rec.version.origin);
    }
  }
  // Push-back: the piggybacked vector shows what the sender is missing.
  if (!delta->sender_vector.empty()) {
    SendDelta(sender, delta->sender_vector);
  }
}

}  // namespace mqp::sync
