// Gossip/anti-entropy maintenance of distributed catalogs.
//
// The paper registers holdings once (§3.3) and never revisits them; this
// layer keeps catalogs converged under churn. Each participating peer
// runs a SyncAgent that:
//
//   * owns a catalog::VersionedCatalog mirroring live records into the
//     peer's plain Catalog,
//   * every gossip interval picks a few known peers (deterministic,
//     seeded) and sends its version vector as a `sync-digest`,
//   * answers digests with a `sync-delta` carrying exactly the records
//     the digest proves missing — and with its *own* digest when the
//     sender's vector shows news, so one exchange converges both sides
//     (push-pull anti-entropy),
//   * re-stamps a tiny presence record every refresh interval; catalogs
//     that stop hearing fresh versions from an origin for longer than its
//     declared TTL expire that origin's entries from the projection,
//   * tombstones its own records on graceful departure (Leave) and
//     re-stamps everything on recovery (Rejoin).
//
// Determinism: partner choice flows through mqp::Rng seeded per agent,
// membership sets are ordered, and everything runs on simulator time, so
// a seeded churn scenario is bit-reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>

#include "catalog/versioned.h"
#include "common/rng.h"
#include "net/transport.h"
#include "wire/envelope.h"

namespace mqp::sync {

/// \brief Gossip/anti-entropy knobs. All times are simulated seconds.
struct SyncOptions {
  double gossip_interval_seconds = 5;   ///< digest push period
  size_t fanout = 1;                    ///< partners per gossip round
  double entry_ttl_seconds = 60;        ///< declared TTL on own records
  double refresh_interval_seconds = 20; ///< presence heartbeat period
  double tombstone_gc_seconds = 600;    ///< purge tombstones older than this
  /// Stop rescheduling ticks past this simulated time (0 = run forever —
  /// the event queue then never drains; use Run(max_time) to step).
  double horizon_seconds = 0;
  /// Stop bumping the presence heartbeat past this simulated time
  /// (0 = refresh until the horizon). Scenarios that check convergence
  /// set this below horizon_seconds: gossip then has a quiet tail in
  /// which the final stamps finish propagating.
  double refresh_horizon_seconds = 0;
  uint64_t seed = 1;                    ///< per-agent partner-choice seed
};

/// \brief Counters for tests and benches.
struct SyncCounters {
  uint64_t ticks = 0;
  uint64_t digests_sent = 0;
  uint64_t digests_received = 0;
  uint64_t deltas_sent = 0;
  uint64_t deltas_received = 0;
  uint64_t records_sent = 0;
  uint64_t records_applied = 0;
  uint64_t origins_expired = 0;
};

/// \brief One peer's gossip endpoint. The owning peer dispatches
/// `sync-digest` / `sync-delta` envelopes here and calls Start() to run
/// the Schedule-driven loop.
class SyncAgent {
 public:
  /// `projection` is the peer's catalog (may be null in pure-state tests);
  /// `sim` must outlive the agent. `id` / `self` are the owning peer's
  /// transport id and address.
  SyncAgent(net::Transport* sim, net::PeerId id, std::string self,
            catalog::Catalog* projection, SyncOptions options);

  const SyncOptions& options() const { return options_; }
  const SyncCounters& counters() const { return counters_; }
  catalog::VersionedCatalog& versioned() { return versioned_; }
  const catalog::VersionedCatalog& versioned() const { return versioned_; }

  // --- membership ---------------------------------------------------------------

  /// Adds a gossip partner candidate (ignored for self). Learned
  /// partners are pruned again when they expire or say goodbye.
  void AddPeer(const std::string& address);

  /// Adds a *seed* partner (bootstrap): never pruned by TTL expiry, so a
  /// peer that was down longer than every TTL can still re-enter the
  /// gossip mesh instead of isolating itself.
  void AddSeed(const std::string& address);

  const std::set<std::string>& peers() const { return peers_; }
  const std::set<std::string>& seeds() const { return seeds_; }

  // --- own holdings ------------------------------------------------------------

  /// Asserts a fact originated by this peer (stamped, TTL'd, gossiped).
  void UpsertLocal(catalog::SyncEntry entry);

  /// Withdraws a fact originated by this peer (tombstone).
  void TombstoneLocal(const catalog::SyncEntry& entry);

  // --- lifecycle ---------------------------------------------------------------

  /// Stamps the first presence record and schedules the gossip loop.
  void Start();

  /// Stops rescheduling (pending ticks become no-ops).
  void Stop();

  /// Graceful departure: tombstones every own record and pushes one final
  /// delta to the gossip partners before the peer goes dark.
  void Leave();

  /// True after Leave() until the next Rejoin(): the peer withdrew its
  /// assertions, so a rejoin must re-assert them (Peer::RejoinNetwork
  /// does) rather than just re-stamp.
  bool departed() const { return departed_; }

  /// Recovery: re-stamps all own records (remote vectors already dominate
  /// the old stamps) and resumes gossip if stopped.
  void Rejoin();

  // --- wire handlers (called by the owning peer) --------------------------------

  void HandleDigest(const wire::Envelope& env, net::PeerId from);
  void HandleDelta(const wire::Envelope& env, net::PeerId from);

 private:
  void Tick();
  void ScheduleTick();
  void SendDigest(const std::string& target);
  void SendDelta(const std::string& target,
                 const catalog::VersionVector& remote);
  /// `attach_vector` piggybacks our version vector on the delta so the
  /// receiver pushes back what we lack; only worth its bytes when we
  /// actually lack something (bidirectional gap).
  void SendDeltaRaw(const std::string& target,
                    const catalog::CatalogDelta& delta, bool attach_vector);

  net::Transport* sim_;
  net::PeerId id_;
  std::string self_;
  SyncOptions options_;
  catalog::VersionedCatalog versioned_;
  std::set<std::string> peers_;
  std::set<std::string> seeds_;
  Rng rng_;
  SyncCounters counters_;
  double last_refresh_ = -1;
  bool running_ = false;
  bool departed_ = false;
  uint64_t epoch_ = 0;  ///< invalidates pending ticks on Stop/Start
};

}  // namespace mqp::sync
