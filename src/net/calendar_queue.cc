#include "net/calendar_queue.h"

#include <algorithm>

namespace mqp::net {

namespace {

/// Strict (time, seq) total order — the heap comparator, inverted.
inline bool Before(const SimEvent& a, const SimEvent& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

}  // namespace

void CalendarQueue::Init(size_t nbuckets, double width) {
  nbuckets_ = nbuckets;
  mask_ = nbuckets - 1;
  width_ = width;
  occupied_ = 0;
  heads_.assign(nbuckets, kNilEvent);
  tails_.assign(nbuckets, kNilEvent);
  dirty_.assign(nbuckets, 0);
}

void CalendarQueue::Push(EventPool& pool, uint32_t idx) {
  ++ops_since_resize_;
  SimEvent& ev = pool[idx];
  const uint64_t v = VIndex(ev.time);
  const size_t b = static_cast<size_t>(v & mask_);
  const uint32_t tail = tails_[b];
  ev.next = kNilEvent;
  if (tail == kNilEvent) {
    heads_[b] = tails_[b] = idx;
    ++occupied_;
  } else {
    // Unconditional O(1) append. Both dominant traffic shapes land in
    // order anyway (message sends at now + latency, tick storms with
    // equal times and rising seq); when an append does break order the
    // bucket is merely marked and sorted once, lazily, when the pop
    // cursor reaches it.
    if (!Before(pool[tail], ev)) dirty_[b] = 1;
    pool[tail].next = idx;
    tails_[b] = idx;
  }
  ++count_;
  if (count_ == 1 || v < cur_vindex_) cur_vindex_ = v;
  if (2 * occupied_ > nbuckets_ && nbuckets_ < kMaxBuckets) {
    Resize(pool, nbuckets_ * 2);
  }
}

uint32_t CalendarQueue::PopMin(EventPool& pool) {
  if (count_ == 0) return kNilEvent;
  ++ops_since_resize_;
  size_t scanned = 0;
  while (true) {
    const size_t b = static_cast<size_t>(cur_vindex_ & mask_);
    uint32_t head = heads_[b];
    if (head != kNilEvent) {
      if (dirty_[b]) {
        SortBucket(pool, b);
        head = heads_[b];
      }
      // The chain is now time-sorted and every chained event's vindex is
      // congruent to b, so the head is poppable iff it belongs to the
      // cursor's day (not a later year sharing the bucket).
      if (VIndex(pool[head].time) == cur_vindex_) {
        heads_[b] = pool[head].next;
        if (heads_[b] == kNilEvent) {
          tails_[b] = kNilEvent;
          --occupied_;
        }
        pool[head].next = kNilEvent;
        --count_;
        if (8 * occupied_ < nbuckets_ && nbuckets_ > kMinBuckets) {
          Resize(pool, nbuckets_ / 2);
        }
        return head;
      }
    }
    ++cur_vindex_;
    ++empty_steps_;
    if (++scanned >= nbuckets_) {
      // A whole year without an event: the queue is sparse relative to
      // its span. Jump the cursor straight onto the minimum.
      JumpToMin(pool);
      scanned = 0;
    } else if (scanned == kMaxEmptyWalk && 8 * ops_since_resize_ >= count_) {
      // Long runs of empty days mean the days are too narrow for the
      // live span. Re-deriving the width from the live events (not a
      // geometric bump) lands on the true mean gap in one rebuild.
      Resize(pool, nbuckets_);
      scanned = 0;
    }
  }
}

void CalendarQueue::SortBucket(EventPool& pool, size_t b) {
  scratch_.clear();
  for (uint32_t cur = heads_[b]; cur != kNilEvent; cur = pool[cur].next) {
    scratch_.push_back(cur);
  }
  std::sort(scratch_.begin(), scratch_.end(), [&pool](uint32_t x, uint32_t y) {
    return Before(pool[x], pool[y]);
  });
  chain_sort_events_ += scratch_.size();
  uint32_t prev = kNilEvent;
  for (const uint32_t idx : scratch_) {
    if (prev == kNilEvent) {
      heads_[b] = idx;
    } else {
      pool[prev].next = idx;
    }
    prev = idx;
  }
  pool[prev].next = kNilEvent;
  tails_[b] = prev;
  dirty_[b] = 0;
}

void CalendarQueue::JumpToMin(const EventPool& pool) {
  ++min_jumps_;
  uint32_t best = kNilEvent;
  for (size_t b = 0; b < nbuckets_; ++b) {
    uint32_t cand = heads_[b];
    if (cand == kNilEvent) continue;
    if (dirty_[b]) {
      // Unsorted chain: the head is not necessarily the bucket minimum.
      for (uint32_t cur = pool[cand].next; cur != kNilEvent;
           cur = pool[cur].next) {
        if (Before(pool[cur], pool[cand])) cand = cur;
      }
    }
    if (best == kNilEvent || Before(pool[cand], pool[best])) best = cand;
  }
  // count_ > 0 guarantees best != kNilEvent.
  cur_vindex_ = VIndex(pool[best].time);
}

void CalendarQueue::Resize(EventPool& pool, size_t nbuckets,
                           double forced_width) {
  ++resizes_;
  // Collect the live events.
  std::vector<uint32_t> events;
  events.reserve(count_);
  for (const uint32_t head : heads_) {
    for (uint32_t cur = head; cur != kNilEvent; cur = pool[cur].next) {
      events.push_back(cur);
    }
  }
  // Sort first: the relink below then tail-appends clean chains, and the
  // width estimate can read adjacent separations straight off the sorted
  // order.
  std::sort(events.begin(), events.end(),
            [&pool](uint32_t a, uint32_t b) { return Before(pool[a], pool[b]); });
  // New width (Brown's estimator, adapted): the mean separation of
  // adjacent *distinct* event times. Simulated traffic is heavily tied —
  // uniform link latency clusters thousands of deliveries on one instant
  // — and a naive span/count width would shred such a distribution into
  // millions of empty days the cursor has to cross one by one. Ignoring
  // zero gaps sizes days by cluster spacing instead, so a cluster stays
  // one chain while neighboring clusters get days of their own. A
  // degenerate span (all events simultaneous) keeps the current width.
  // Floors keep VIndex well inside uint64 range for any sane simulated
  // time.
  double width = forced_width;
  if (width <= 0) {
    width = width_;
    if (events.size() >= 2) {
      double gap_sum = 0;
      size_t gaps = 0;
      for (size_t i = 1; i < events.size(); ++i) {
        const double d = pool[events[i]].time - pool[events[i - 1]].time;
        if (d > 0) {
          gap_sum += d;
          ++gaps;
        }
      }
      if (gaps > 0) width = gap_sum / static_cast<double>(gaps);
    }
  }
  if (!events.empty()) {
    width = std::max(width, 1e-9);
    width = std::max(width, pool[events.back()].time / 9.0e18);
  }
  Init(nbuckets, width);
  for (const uint32_t idx : events) {
    SimEvent& ev = pool[idx];
    const size_t b = static_cast<size_t>(VIndex(ev.time) & mask_);
    ev.next = kNilEvent;
    if (tails_[b] == kNilEvent) {
      heads_[b] = tails_[b] = idx;
      ++occupied_;
    } else {
      pool[tails_[b]].next = idx;
      tails_[b] = idx;
    }
  }
  if (!events.empty()) cur_vindex_ = VIndex(pool[events.front()].time);
  ops_since_resize_ = 0;
}

}  // namespace mqp::net
