#include "net/fault_injector.h"

namespace mqp::net {
namespace {

// splitmix64 finalizer: turns a raw content hash plus a salt into an
// independent, well-mixed 64-bit stream. Each fault decision (drop,
// dup, delay) uses its own salt, so the three coins drawn for one
// message are decorrelated even though they share a hash.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Uniform in [0, 1) from a mixed 64-bit value (53 mantissa bits).
double ToUnit(uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvBytes(uint64_t h, const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t FnvU64(uint64_t h, uint64_t v) { return FnvBytes(h, &v, sizeof(v)); }

}  // namespace

void FaultInjector::Arm() {
  armed_ = true;
  if (crashes_scheduled_) return;
  crashes_scheduled_ = true;
  for (const CrashEvent& c : plan_.crashes) {
    Transport* inner = inner_;
    const PeerId peer = c.peer;
    inner_->Schedule(c.at, [inner, peer] { inner->Fail(peer); });
    if (c.restart_at > 0) {
      inner_->Schedule(c.restart_at, [inner, peer] { inner->Recover(peer); });
    }
  }
}

const FaultSpec& FaultInjector::SpecFor(const Message& msg) const {
  if (!plan_.per_link.empty()) {
    auto it = plan_.per_link.find({msg.from, msg.to});
    if (it != plan_.per_link.end()) return it->second;
  }
  if (!plan_.per_kind.empty()) {
    auto it = plan_.per_kind.find(msg.kind);
    if (it != plan_.per_kind.end()) return it->second;
  }
  return plan_.spec;
}

uint64_t FaultInjector::FateHash(const Message& msg) const {
  uint64_t h = kFnvOffset;
  h = FnvU64(h, plan_.seed);
  h = FnvU64(h, msg.from);
  h = FnvU64(h, msg.to);
  h = FnvBytes(h, msg.kind.data(), msg.kind.size());
  h = FnvBytes(h, msg.header.data(), msg.header.size());
  const std::string& body = msg.body();
  h = FnvBytes(h, body.data(), body.size());
  return h;
}

void FaultInjector::Send(Message msg) {
  if (!armed_) {
    inner_->Send(std::move(msg));
    return;
  }

  // Flap check first: a downed link drops regardless of rates. The
  // window test reads the clock, but flap endpoints are plan constants
  // and both deterministic backends advance the same virtual clock, so
  // the decision stays backend-invariant.
  const double t = inner_->now();
  for (const LinkFlap& f : plan_.flaps) {
    if (f.from == msg.from && f.to == msg.to && t >= f.down_at &&
        t < f.up_at) {
      if (msg.size_bytes == 0) {
        msg.size_bytes = msg.header.size() + msg.body().size();
      }
      if (msg.kind_id == kNoKind) msg.kind_id = InternKind(msg.kind);
      NetStats& s = inner_->stats();
      s.messages++;
      s.bytes += msg.size_bytes;
      s.messages_by_kind.Slot(msg.kind_id)++;
      s.bytes_by_kind.Slot(msg.kind_id) += msg.size_bytes;
      s.fault_drops++;
      if (trace_) trace_(msg, 'f');
      return;
    }
  }

  const FaultSpec& spec = SpecFor(msg);
  if (spec.Empty()) {
    if (trace_) trace_(msg, 'p');
    inner_->Send(std::move(msg));
    return;
  }

  const uint64_t h = FateHash(msg);
  // Mutually exclusive, priority drop > dup > delay: each fault class
  // draws its own coin, and a message claimed by a higher class never
  // reaches the lower ones.
  if (spec.drop_rate > 0 && ToUnit(Mix(h ^ 0x1111111111111111ULL)) <
                                spec.drop_rate) {
    // The inner transport never sees the message, so replicate its
    // send-side accounting here: a faulted drop still counts as sent
    // (same contract as drops_from_failed / drops_to_failed).
    if (msg.size_bytes == 0) {
      msg.size_bytes = msg.header.size() + msg.body().size();
    }
    if (msg.kind_id == kNoKind) msg.kind_id = InternKind(msg.kind);
    NetStats& s = inner_->stats();
    s.messages++;
    s.bytes += msg.size_bytes;
    s.messages_by_kind.Slot(msg.kind_id)++;
    s.bytes_by_kind.Slot(msg.kind_id) += msg.size_bytes;
    s.fault_drops++;
    if (trace_) trace_(msg, 'd');
    return;
  }
  if (spec.dup_rate > 0 &&
      ToUnit(Mix(h ^ 0x2222222222222222ULL)) < spec.dup_rate) {
    inner_->stats().fault_dups++;
    if (trace_) trace_(msg, 'D');
    Message copy = msg;  // payload is shared, the copy is cheap
    inner_->Send(std::move(copy));
    inner_->Send(std::move(msg));
    return;
  }
  if (spec.delay_rate > 0 &&
      ToUnit(Mix(h ^ 0x3333333333333333ULL)) < spec.delay_rate) {
    inner_->stats().fault_delays++;
    if (trace_) trace_(msg, 'y');
    // Re-submit through the *inner* transport after the extra latency —
    // the delayed copy is not re-faulted. Messages sent meanwhile
    // overtake it, which is exactly the reorder fault.
    Transport* inner = inner_;
    inner_->Schedule(t + spec.delay_seconds,
                     [inner, m = std::move(msg)]() mutable {
                       inner->Send(std::move(m));
                     });
    return;
  }
  if (trace_) trace_(msg, 'p');
  inner_->Send(std::move(msg));
}

}  // namespace mqp::net
