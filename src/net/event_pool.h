// Slab/free-list pool of simulator events.
//
// At million-peer scale the simulator keeps millions of events in flight
// at once; allocating (and type-erasing into std::function) each one
// individually is what capped the old substrate. Pooled events are plain
// slots in one slab, recycled through a free list: the steady path —
// schedule a message delivery, dispatch it, recycle the slot — touches
// the allocator zero times once the slab has grown to the high-water
// mark. Message deliveries (the dominant event population) are stored
// *inline* as a Message, not erased into a std::function, so no capture
// allocation happens either.
//
// Layout: the scheduling node (time, seq, chain link — what the calendar
// queue compares, walks and sorts) is split from the payload (Message /
// callback) into parallel slabs sharing one slot index. Chain scans and
// resize sorts then stream over 24-byte nodes instead of dragging every
// event's ~200-byte payload through cache; the payload is touched
// exactly twice, at enqueue and at dispatch.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/message.h"

namespace mqp::net {

/// Null event index (end of a free-list / bucket chain).
inline constexpr uint32_t kNilEvent = static_cast<uint32_t>(-1);

/// \brief The scheduling node of one pooled event: a (time, seq)
/// priority, an intrusive chain link, and the payload discriminant. The
/// payload itself lives in the pool's parallel slabs under the same slot.
struct SimEvent {
  enum class Kind : uint8_t {
    kCall,     ///< run fn() (timers, gossip ticks, test probes)
    kDeliver,  ///< deliver msg to msg.to (the steady path)
  };

  double time = 0;
  uint64_t seq = 0;          ///< FIFO tie-break for equal times
  uint32_t next = kNilEvent; ///< free-list / calendar-bucket chain
  Kind kind = Kind::kCall;
};

/// \brief The slab + free list. Indices (not pointers) name events: the
/// slab may grow while events are pending, which would invalidate
/// pointers but never indices.
class EventPool {
 public:
  /// Takes a slot from the free list (a *pool hit* — no allocation) or
  /// grows the slabs. The returned slot's msg/fn contents are whatever
  /// the previous occupant left after being moved out; assign before use.
  uint32_t Acquire() {
    ++acquired_;
    ++live_;
    if (free_head_ != kNilEvent) {
      ++pool_hits_;
      const uint32_t idx = free_head_;
      free_head_ = slab_[idx].next;
      slab_[idx].next = kNilEvent;
      return idx;
    }
    slab_.emplace_back();
    msgs_.emplace_back();
    fns_.emplace_back();
    return static_cast<uint32_t>(slab_.size() - 1);
  }

  /// Returns a slot to the free list. The caller must have unlinked it
  /// from any queue and moved its contents out (a recycled slot must
  /// never be dispatchable — see the pool-reuse regression test).
  void Release(uint32_t idx) {
    SimEvent& ev = slab_[idx];
    ev.next = free_head_;
    free_head_ = idx;
    --live_;
  }

  SimEvent& operator[](uint32_t idx) { return slab_[idx]; }
  const SimEvent& operator[](uint32_t idx) const { return slab_[idx]; }

  /// The kDeliver payload of slot `idx`.
  Message& msg(uint32_t idx) { return msgs_[idx]; }
  /// The kCall payload of slot `idx`.
  std::function<void()>& fn(uint32_t idx) { return fns_[idx]; }

  /// Events currently acquired and not yet released.
  size_t live() const { return live_; }
  /// Slab high-water mark, in events.
  size_t capacity() const { return slab_.size(); }
  /// Total Acquire() calls ever.
  uint64_t acquired() const { return acquired_; }
  /// Acquires served from the free list (once warm, == acquired deltas).
  uint64_t pool_hits() const { return pool_hits_; }

  /// Approximate heap footprint of the slabs (event-held strings /
  /// payloads are accounted to their owners).
  size_t ApproxBytes() const {
    return slab_.capacity() * sizeof(SimEvent) +
           msgs_.capacity() * sizeof(Message) +
           fns_.capacity() * sizeof(std::function<void()>);
  }

 private:
  std::vector<SimEvent> slab_;  ///< scheduling nodes (hot: scans, sorts)
  std::vector<Message> msgs_;   ///< kDeliver payloads, same index
  std::vector<std::function<void()>> fns_;  ///< kCall payloads, same index
  uint32_t free_head_ = kNilEvent;
  size_t live_ = 0;
  uint64_t acquired_ = 0;
  uint64_t pool_hits_ = 0;
};

}  // namespace mqp::net
