// Dense interning of message kinds (PR 3's interning pattern applied to
// the wire vocabulary).
//
// Message kinds are a tiny, closed set of short routing tags ("mqp",
// "register", "sync-digest", ...). Interning them to dense KindIds lets
// the simulator's per-message accounting update two flat arrays instead
// of two string-keyed hash maps, and lets reports iterate kinds in a
// stable sorted order without rebuilding an ordered map per print.
//
// The table is process-wide: ids are assigned in first-intern order and
// never recycled, so NetStats from different Simulator instances index
// the same table and stay comparable.
//
// Thread safety: the table is guarded by a shared mutex — concurrent
// senders on runtime::ThreadedRuntime / runtime::TcpTransport intern and
// look up kinds freely. Ids and the name views returned by KindNameOf
// are stable for the life of the process (names live in a deque and are
// never erased), so holding them across interns is safe. KindCounters
// instances themselves are NOT synchronized: each belongs to one
// NetStats shard written by one thread (see net/transport.h).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace mqp::net {

using KindId = uint32_t;
inline constexpr KindId kNoKind = static_cast<KindId>(-1);

/// Returns the dense id for `kind`, interning it on first sight.
KindId InternKind(std::string_view kind);

/// The id for `kind`, or kNoKind if it was never interned.
KindId FindKind(std::string_view kind);

/// The kind string for `id` ("" if out of range). The view is stable for
/// the life of the process.
std::string_view KindNameOf(KindId id);

/// Number of kinds interned so far.
size_t InternedKindCount();

/// All interned ids ordered by kind name. The order is cached and
/// recomputed only after a new kind was interned; returned by value so a
/// concurrent intern can never invalidate an iteration in progress.
std::vector<KindId> SortedKindIds();

/// \brief Per-kind counters over the interned table: a dense array
/// indexed by KindId with a small map-compatible lookup API, so existing
/// `stats.messages_by_kind.at("mqp")` / `.find(kind)` call sites keep
/// working against flat-array storage.
class KindCounters {
 public:
  /// Map-compatible view of one (kind → count) entry. An invalid Ref is
  /// end(): `find(k) == end()` means the kind was never interned.
  struct Ref {
    std::string_view first;
    uint64_t second = 0;
    bool valid = false;
    const Ref* operator->() const { return this; }
    friend bool operator==(const Ref& a, const Ref& b) {
      return a.valid == b.valid;
    }
    friend bool operator!=(const Ref& a, const Ref& b) { return !(a == b); }
  };

  /// The counter slot for `id` (grows the dense array on demand). This is
  /// the Send hot path: one bounds check + one array index.
  uint64_t& Slot(KindId id) {
    if (id >= counts_.size()) counts_.resize(id + 1, 0);
    return counts_[id];
  }

  uint64_t Get(KindId id) const {
    return id < counts_.size() ? counts_[id] : 0;
  }

  /// The count for `kind` (0 when never counted; unlike std::map::at this
  /// never throws — absent and zero are indistinguishable to callers).
  uint64_t at(std::string_view kind) const { return Get(FindKind(kind)); }

  Ref find(std::string_view kind) const {
    const KindId id = FindKind(kind);
    if (id == kNoKind || id >= counts_.size()) return {};
    return Ref{KindNameOf(id), counts_[id], true};
  }
  Ref end() const { return {}; }

  /// Zeroes all counters, keeping the array's capacity (Clear() on the
  /// bench reset path must not reallocate).
  void clear() { counts_.assign(counts_.size(), 0); }

  /// Adds `other`'s counts into this (NetStats shard merge-on-read).
  void MergeFrom(const KindCounters& other) {
    if (other.counts_.size() > counts_.size()) {
      counts_.resize(other.counts_.size(), 0);
    }
    for (size_t i = 0; i < other.counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
  }

  /// Visits (kind, count) pairs with count > 0 in kind-name order.
  template <typename Fn>
  void ForEachSorted(Fn&& fn) const {
    for (const KindId id : SortedKindIds()) {
      const uint64_t c = Get(id);
      if (c != 0) fn(KindNameOf(id), c);
    }
  }

  friend bool operator==(const KindCounters& a, const KindCounters& b) {
    const size_t n = a.counts_.size() > b.counts_.size() ? a.counts_.size()
                                                        : b.counts_.size();
    for (size_t i = 0; i < n; ++i) {
      if (a.Get(static_cast<KindId>(i)) != b.Get(static_cast<KindId>(i))) {
        return false;
      }
    }
    return true;
  }
  friend bool operator!=(const KindCounters& a, const KindCounters& b) {
    return !(a == b);
  }

 private:
  std::vector<uint64_t> counts_;
};

}  // namespace mqp::net
