// FaultInjector: a deterministic fault-plan decorator over Transport.
//
// Wraps any backend (the simulator, the threaded runtime, the TCP
// transport) and applies a *seeded* fault plan to every message sent
// while armed: per-link / per-kind drop, duplication, and extra delay
// (delay doubles as reorder — a delayed message lands after messages
// sent later), plus scheduled peer crash/restart events and link flaps.
//
// Determinism contract (DESIGN.md §9): the fate of a message is a pure
// function of the plan seed and the message *content* (from, to, kind,
// header, body) — never of the clock, and never of a shared RNG whose
// call order a threaded backend could perturb. The same fault plan
// therefore produces the same fault schedule over net::Simulator and
// runtime::ThreadedRuntime, message for message. The flip side is that
// byte-identical messages share a fate; peer::Peer's retry layer stamps
// an attempt number into the wire header precisely so a retry is a
// *different* message and gets fresh coins.
//
// Fault events are tallied in the inner transport's NetStats
// (fault_drops / fault_dups / fault_delays); a dropped message is still
// counted in messages/bytes, mirroring the drops_* contract.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/transport.h"

namespace mqp::net {

/// \brief Fault rates for one (link, kind) class. Rates are
/// probabilities in [0, 1]; the decision order is drop > duplicate >
/// delay (mutually exclusive per message).
struct FaultSpec {
  double drop_rate = 0;
  double dup_rate = 0;
  double delay_rate = 0;
  double delay_seconds = 0.2;  ///< extra latency when delayed (reorder)

  bool Empty() const {
    return drop_rate == 0 && dup_rate == 0 && delay_rate == 0;
  }
};

/// \brief A scheduled crash: `peer` fails at `at`; when `restart_at` > 0
/// it recovers then. Realized via the inner transport's Fail/Recover, so
/// send-time and in-transit drops are accounted exactly like any other
/// failure. (A crash freezes the process — it does not tombstone or
/// re-announce; drive Leave/Rejoin from the workload for that.)
struct CrashEvent {
  PeerId peer = kNoPeer;
  double at = 0;
  double restart_at = 0;
};

/// \brief A directional link outage: messages from → to sent in
/// [down_at, up_at) are dropped (counted as fault_drops).
struct LinkFlap {
  PeerId from = kNoPeer;
  PeerId to = kNoPeer;
  double down_at = 0;
  double up_at = 0;
};

/// \brief The full seeded fault plan.
struct FaultPlan {
  uint64_t seed = 1;
  FaultSpec spec;  ///< default for every message

  /// Per-kind overrides (routing tag → spec), consulted before `spec`.
  std::map<std::string, FaultSpec> per_kind;
  /// Per-link overrides ((from, to) → spec), highest precedence.
  std::map<std::pair<PeerId, PeerId>, FaultSpec> per_link;

  std::vector<CrashEvent> crashes;
  std::vector<LinkFlap> flaps;
};

/// \brief The decorator. Construct peers against the injector instead of
/// the raw backend; call Arm() once the network is built so bootstrap /
/// registration traffic stays fault-free (and the armed point is a
/// message boundary, identical on every backend — not a clock value).
class FaultInjector : public Transport {
 public:
  /// `inner` must outlive the injector.
  FaultInjector(Transport* inner, FaultPlan plan)
      : inner_(inner), plan_(std::move(plan)) {}

  /// Starts applying message faults; schedules the plan's crash and
  /// restart events (once, on the first Arm).
  void Arm();
  /// Stops applying message faults (already-scheduled crashes still fire).
  void Disarm() { armed_ = false; }
  bool armed() const { return armed_; }

  const FaultPlan& plan() const { return plan_; }
  /// Mutable before Arm(): crash events name peer ids that exist only
  /// once the network has been built against the injector.
  FaultPlan& mutable_plan() { return plan_; }

  /// Test hook: observes every Send decision while armed. Fates:
  /// 'p' passed through, 'd' dropped, 'D' duplicated, 'y' delayed,
  /// 'f' dropped by a link flap. Determinism suites compare traces.
  using TraceFn = std::function<void(const Message& msg, char fate)>;
  void set_trace(TraceFn trace) { trace_ = std::move(trace); }

  // --- Transport: Send applies the plan, the rest forwards ------------------
  void Send(Message msg) override;

  PeerId Register(PeerNode* node) override { return inner_->Register(node); }
  size_t size() const override { return inner_->size(); }
  const std::string& Address(PeerId id) const override {
    return inner_->Address(id);
  }
  Result<PeerId> Lookup(std::string_view address) const override {
    return inner_->Lookup(address);
  }
  double now() const override { return inner_->now(); }
  void Schedule(double when, std::function<void()> fn) override {
    inner_->Schedule(when, std::move(fn));
  }
  void ScheduleFor(PeerId owner, double when,
                   std::function<void()> fn) override {
    inner_->ScheduleFor(owner, when, std::move(fn));
  }
  void Fail(PeerId id) override { inner_->Fail(id); }
  void Recover(PeerId id) override { inner_->Recover(id); }
  bool IsFailed(PeerId id) const override { return inner_->IsFailed(id); }
  size_t Run(double max_time = 1e9) override { return inner_->Run(max_time); }
  bool Idle() const override { return inner_->Idle(); }
  NetStats& stats() override { return inner_->stats(); }
  const NetStats& stats() const override {
    return static_cast<const Transport*>(inner_)->stats();
  }

 private:
  /// The spec governing `msg`: per-link, else per-kind, else default.
  const FaultSpec& SpecFor(const Message& msg) const;

  /// 64-bit content hash of (seed, from, to, kind, header, body).
  uint64_t FateHash(const Message& msg) const;

  Transport* inner_;
  FaultPlan plan_;
  bool armed_ = false;
  bool crashes_scheduled_ = false;
  TraceFn trace_;
};

}  // namespace mqp::net
