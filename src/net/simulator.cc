#include "net/simulator.h"

#include "common/strings.h"

namespace mqp::net {

PeerId Simulator::Register(PeerNode* node) {
  nodes_.push_back(node);
  failed_.push_back(false);
  return static_cast<PeerId>(nodes_.size() - 1);
}

std::string Simulator::AddressOf(PeerId id) {
  return "10.0.0." + std::to_string(id) + ":9020";
}

Result<PeerId> Simulator::Lookup(const std::string& address) const {
  std::string_view s = address;
  if (!mqp::StartsWith(s, "10.0.0.")) {
    return Status::NotFound("unknown address '" + address + "'");
  }
  s.remove_prefix(7);
  const size_t colon = s.find(':');
  if (colon == std::string_view::npos) {
    return Status::NotFound("address missing port: '" + address + "'");
  }
  int64_t id = 0;
  if (!mqp::ParseInt64(s.substr(0, colon), &id) || id < 0 ||
      static_cast<size_t>(id) >= nodes_.size()) {
    return Status::NotFound("no peer at '" + address + "'");
  }
  return static_cast<PeerId>(id);
}

void Simulator::SetLinkOverride(PeerId from, PeerId to, LinkParams link) {
  link_overrides_[LinkKey(from, to)] = link;
}

void Simulator::Fail(PeerId id) {
  if (id < failed_.size()) failed_[id] = true;
}

void Simulator::Recover(PeerId id) {
  if (id < failed_.size()) failed_[id] = false;
}

bool Simulator::IsFailed(PeerId id) const {
  return id < failed_.size() && failed_[id];
}

double Simulator::Latency(PeerId from, PeerId to, size_t bytes) const {
  LinkParams link = link_;
  if (!link_overrides_.empty()) {
    auto it = link_overrides_.find(LinkKey(from, to));
    if (it != link_overrides_.end()) link = it->second;
  }
  return link.latency_seconds +
         static_cast<double>(bytes) / link.bytes_per_second;
}

void Simulator::Send(Message msg) {
  // The one place wire sizes are defaulted: framing header plus body.
  if (msg.size_bytes == 0) msg.size_bytes = msg.header.size() + msg.body().size();
  stats_.messages++;
  stats_.bytes += msg.size_bytes;
  stats_.messages_by_kind[msg.kind]++;
  stats_.bytes_by_kind[msg.kind] += msg.size_bytes;
  if (on_send_) on_send_(msg);
  if (msg.from < failed_.size() && failed_[msg.from]) {
    // A failed peer originates nothing: stale scheduled callbacks (e.g. a
    // gossip tick racing a Fail) must not leak traffic from a down node.
    // (External probes with from == kNoPeer are out of range and unaffected.)
    stats_.drops_from_failed++;
    return;
  }
  if (msg.to >= nodes_.size() || failed_[msg.to]) {
    stats_.drops_to_failed++;
    return;  // dropped: unknown or failed destination
  }
  const double when = now_ + Latency(msg.from, msg.to, msg.size_bytes);
  PeerNode* dest = nodes_[msg.to];
  const PeerId to = msg.to;
  Schedule(when, [this, dest, to, m = std::move(msg)]() {
    // Re-check at delivery time: the peer may have failed in transit.
    if (!IsFailed(to)) dest->HandleMessage(m);
  });
}

void Simulator::Schedule(double when, std::function<void()> fn) {
  events_.push(Event{when < now_ ? now_ : when, seq_++, std::move(fn)});
}

size_t Simulator::Run(double max_time) {
  size_t processed = 0;
  while (!events_.empty()) {
    // priority_queue gives const access only; copy the small struct out.
    Event ev = events_.top();
    if (ev.time > max_time) break;
    events_.pop();
    now_ = ev.time;
    ev.fn();
    ++processed;
  }
  return processed;
}

}  // namespace mqp::net
