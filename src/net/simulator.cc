#include "net/simulator.h"

#include <utility>

#include "common/strings.h"

namespace mqp::net {

PeerId Simulator::Register(PeerNode* node) {
  const PeerId id = static_cast<PeerId>(nodes_.size());
  nodes_.push_back(node);
  failed_.push_back(false);
  addresses_.push_back(AddressOf(id));
  return id;
}

std::string Simulator::AddressOf(PeerId id) {
  return "10.0.0." + std::to_string(id) + ":9020";
}

const std::string& Simulator::Address(PeerId id) const {
  if (id < addresses_.size()) return addresses_[id];
  // Unregistered id (e.g. an external probe): compute into a scratch
  // slot rather than crash; registered peers never take this path.
  // Audited for the multi-threaded runtimes (DESIGN.md §8): thread_local
  // means each caller owns its scratch, so even if several threads probe
  // unregistered ids concurrently the returned references never alias.
  // The reference is only stable until the same thread's next
  // unregistered-id probe — callers must copy, and all do.
  thread_local std::string scratch;
  scratch = AddressOf(id);
  return scratch;
}

Result<PeerId> Simulator::Lookup(std::string_view address) const {
  std::string_view s = address;
  if (!mqp::StartsWith(s, "10.0.0.")) {
    return Status::NotFound("unknown address '" + std::string(address) + "'");
  }
  s.remove_prefix(7);
  const size_t colon = s.find(':');
  if (colon == std::string_view::npos) {
    return Status::NotFound("address missing port: '" + std::string(address) +
                            "'");
  }
  int64_t id = 0;
  if (!mqp::ParseInt64(s.substr(0, colon), &id) || id < 0 ||
      static_cast<size_t>(id) >= nodes_.size()) {
    return Status::NotFound("no peer at '" + std::string(address) + "'");
  }
  return static_cast<PeerId>(id);
}

void Simulator::SetLinkOverride(PeerId from, PeerId to, LinkParams link) {
  link_overrides_[LinkKey(from, to)] = link;
}

void Simulator::Fail(PeerId id) {
  if (id < failed_.size()) failed_[id] = true;
}

void Simulator::Recover(PeerId id) {
  if (id < failed_.size()) failed_[id] = false;
}

bool Simulator::IsFailed(PeerId id) const {
  return id < failed_.size() && failed_[id];
}

double Simulator::Latency(PeerId from, PeerId to, size_t bytes) const {
  if (!link_overrides_.empty()) {
    auto it = link_overrides_.find(LinkKey(from, to));
    if (it != link_overrides_.end()) {
      return it->second.latency_seconds +
             static_cast<double>(bytes) / it->second.bytes_per_second;
    }
  }
  return link_.latency_seconds +
         static_cast<double>(bytes) * inv_default_bps_;
}

uint32_t Simulator::EnqueuePooled(double when, SimEvent::Kind kind) {
  const uint64_t hits_before = pool_.pool_hits();
  const uint32_t idx = pool_.Acquire();
  stats_.event_pool_hits += pool_.pool_hits() - hits_before;
  SimEvent& ev = pool_[idx];
  ev.time = when < now_ ? now_ : when;
  ev.seq = seq_++;
  ev.kind = kind;
  const uint64_t resizes_before = calendar_.resizes();
  calendar_.Push(pool_, idx);
  stats_.calendar_resizes += calendar_.resizes() - resizes_before;
  stats_.events_scheduled++;
  return idx;
}

void Simulator::Send(Message msg) {
  // The one place wire sizes are defaulted: framing header plus body.
  if (msg.size_bytes == 0) msg.size_bytes = msg.header.size() + msg.body().size();
  // Intern once per message (senders that pre-set kind_id skip even
  // that); the per-kind stats updates below are flat array indexing.
  if (msg.kind_id == kNoKind) msg.kind_id = InternKind(msg.kind);
  stats_.messages++;
  stats_.bytes += msg.size_bytes;
  stats_.messages_by_kind.Slot(msg.kind_id)++;
  stats_.bytes_by_kind.Slot(msg.kind_id) += msg.size_bytes;
  if (on_send_) on_send_(msg);
  if (msg.from < failed_.size() && failed_[msg.from]) {
    // A failed peer originates nothing: stale scheduled callbacks (e.g. a
    // gossip tick racing a Fail) must not leak traffic from a down node.
    // (External probes with from == kNoPeer are out of range and unaffected.)
    stats_.drops_from_failed++;
    return;
  }
  if (msg.to >= nodes_.size() || failed_[msg.to]) {
    stats_.drops_to_failed++;
    return;  // dropped: unknown or failed destination
  }
  const double when = now_ + Latency(msg.from, msg.to, msg.size_bytes);
  if (use_calendar_queue_) {
    // The steady path: the message moves into a recycled pool slot —
    // no per-event allocation, no std::function erasure.
    const uint32_t idx = EnqueuePooled(when, SimEvent::Kind::kDeliver);
    pool_.msg(idx) = std::move(msg);
  } else {
    PeerNode* dest = nodes_[msg.to];
    const PeerId to = msg.to;
    Schedule(when, [this, dest, to, m = std::move(msg)]() {
      // Re-check at delivery time: the peer may have failed in transit.
      // Counted in drops_to_failed like every backend (DESIGN.md §9).
      if (!IsFailed(to)) {
        dest->HandleMessage(m);
      } else {
        stats_.drops_to_failed++;
      }
    });
  }
}

void Simulator::Schedule(double when, std::function<void()> fn) {
  if (use_calendar_queue_) {
    const uint32_t idx = EnqueuePooled(when, SimEvent::Kind::kCall);
    pool_.fn(idx) = std::move(fn);
  } else {
    heap_.push(HeapEvent{when < now_ ? now_ : when, seq_++, std::move(fn)});
    stats_.events_scheduled++;
  }
}

size_t Simulator::Run(double max_time) {
  size_t processed = 0;
  if (use_calendar_queue_) {
    // Hoisted out of the loop: move-assigned from the pool slot each
    // iteration, so per-event construct/destruct of the empty shells is
    // paid once per Run, not once per event.
    Message msg;
    std::function<void()> fn;
    while (!calendar_.empty()) {
      uint32_t idx = calendar_.PopMin(pool_);
      SimEvent& ev = pool_[idx];
      if (ev.time > max_time) {
        // Past the horizon: requeue unchanged ((time, seq) preserved, so
        // a later Run resumes in the exact same order).
        calendar_.Push(pool_, idx);
        break;
      }
      now_ = ev.time;
      // Move the payload out of its slot *before* dispatch: the handler
      // may schedule new events, growing the slabs (invalidating ev) and
      // recycling this very slot — a recycled slot must never be
      // dispatched from.
      const SimEvent::Kind kind = ev.kind;
      if (kind == SimEvent::Kind::kDeliver) {
        msg = std::move(pool_.msg(idx));
      } else {
        fn = std::move(pool_.fn(idx));
      }
      pool_.Release(idx);
      if (kind == SimEvent::Kind::kDeliver) {
        // Re-check at delivery time: the peer may have failed in transit.
        // Counted in drops_to_failed like every backend (DESIGN.md §9).
        if (!IsFailed(msg.to)) {
          nodes_[msg.to]->HandleMessage(msg);
        } else {
          stats_.drops_to_failed++;
        }
      } else {
        fn();
      }
      ++processed;
    }
  } else {
    while (!heap_.empty()) {
      if (heap_.top().time > max_time) break;
      // top() is const (the heap invariant); moving the closure out is
      // safe because the comparator only reads (time, seq), which the
      // move leaves intact. The old copy here cloned every captured
      // Message on every dispatch.
      HeapEvent ev = std::move(const_cast<HeapEvent&>(heap_.top()));
      heap_.pop();
      now_ = ev.time;
      ev.fn();
      ++processed;
    }
  }
  return processed;
}

size_t Simulator::SubstrateBytes() const {
  size_t bytes = nodes_.capacity() * sizeof(PeerNode*);
  bytes += failed_.capacity() / 8;
  bytes += addresses_.capacity() * sizeof(std::string);
  for (const std::string& a : addresses_) {
    if (a.capacity() > sizeof(std::string)) bytes += a.capacity();
  }
  bytes += link_overrides_.size() * (sizeof(uint64_t) + sizeof(LinkParams) +
                                     2 * sizeof(void*));
  bytes += pool_.ApproxBytes();
  bytes += calendar_.ApproxBytes();
  return bytes;
}

}  // namespace mqp::net
