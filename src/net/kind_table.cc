#include "net/kind_table.h"

#include <algorithm>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

namespace mqp::net {

namespace {

struct SvHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};
struct SvEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};

struct Table {
  // Concurrent senders intern/look up under this lock: shared for the
  // (overwhelmingly common) hit path, exclusive only on first intern.
  mutable std::shared_mutex mu;
  std::deque<std::string> names;  // KindId → name; a deque so the strings
                                  // (and views into them) never move
  std::unordered_map<std::string, KindId, SvHash, SvEq> index;
  std::vector<KindId> sorted;      // ids by name; rebuilt lazily
  bool sorted_valid = true;
};

Table& GlobalTable() {
  static Table* table = new Table();  // leaked: outlives all NetStats
  return *table;
}

}  // namespace

KindId InternKind(std::string_view kind) {
  Table& t = GlobalTable();
  {
    std::shared_lock<std::shared_mutex> lk(t.mu);
    auto it = t.index.find(kind);
    if (it != t.index.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lk(t.mu);
  // Re-check: another thread may have interned between the locks.
  auto it = t.index.find(kind);
  if (it != t.index.end()) return it->second;
  const KindId id = static_cast<KindId>(t.names.size());
  t.names.emplace_back(kind);
  t.index.emplace(t.names.back(), id);
  t.sorted_valid = false;
  return id;
}

KindId FindKind(std::string_view kind) {
  const Table& t = GlobalTable();
  std::shared_lock<std::shared_mutex> lk(t.mu);
  auto it = t.index.find(kind);
  return it == t.index.end() ? kNoKind : it->second;
}

std::string_view KindNameOf(KindId id) {
  const Table& t = GlobalTable();
  std::shared_lock<std::shared_mutex> lk(t.mu);
  if (id >= t.names.size()) return {};
  // The view outlives the lock safely: deque slots never move and names
  // are never erased.
  return t.names[id];
}

size_t InternedKindCount() {
  const Table& t = GlobalTable();
  std::shared_lock<std::shared_mutex> lk(t.mu);
  return t.names.size();
}

std::vector<KindId> SortedKindIds() {
  Table& t = GlobalTable();
  std::unique_lock<std::shared_mutex> lk(t.mu);
  if (!t.sorted_valid) {
    t.sorted.resize(t.names.size());
    for (size_t i = 0; i < t.sorted.size(); ++i) {
      t.sorted[i] = static_cast<KindId>(i);
    }
    std::sort(t.sorted.begin(), t.sorted.end(),
              [&t](KindId a, KindId b) { return t.names[a] < t.names[b]; });
    t.sorted_valid = true;
  }
  return t.sorted;
}

}  // namespace mqp::net
