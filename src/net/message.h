// Message model of the network substrate: peer ids, immutable shared
// payloads, and the Message struct itself. Split out of simulator.h so
// the event pool / calendar queue can store messages without pulling in
// the whole simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/kind_table.h"

namespace mqp::net {

using PeerId = uint32_t;
inline constexpr PeerId kNoPeer = static_cast<PeerId>(-1);

/// \brief Immutable, shared message body. Multi-KB XML payloads are
/// routed and fanned out without copying: every Message holding the same
/// Payload shares one buffer.
using Payload = std::shared_ptr<const std::string>;

/// Wraps a string into a shared immutable payload.
inline Payload MakePayload(std::string body) {
  return std::make_shared<const std::string>(std::move(body));
}

/// \brief One message in flight. `kind` is a short routing tag ("mqp",
/// "register", "result", ...); `header` is the wire layer's compact
/// framing header (empty for raw messages); `payload` is usually
/// serialized XML, shared rather than copied between sender, simulator
/// queue and receiver.
struct Message {
  Message() = default;
  Message(PeerId from, PeerId to, std::string kind, Payload payload,
          size_t size_bytes = 0)
      : from(from),
        to(to),
        kind(std::move(kind)),
        payload(std::move(payload)),
        size_bytes(size_bytes) {}
  Message(PeerId from, PeerId to, std::string kind, std::string payload,
          size_t size_bytes = 0)
      : Message(from, to, std::move(kind), MakePayload(std::move(payload)),
                size_bytes) {}

  PeerId from = kNoPeer;
  PeerId to = kNoPeer;
  /// Interned kind (see net/kind_table.h). Senders that know it set it
  /// (wire::Envelope::ToMessage does); Simulator::Send interns on demand,
  /// so per-message stats updates index flat arrays, not string maps.
  KindId kind_id = kNoKind;
  std::string kind;
  /// Compact wire-layer header (see wire/envelope.h); counted in
  /// size_bytes but not part of the body.
  std::string header;
  Payload payload;
  /// Wire size; Simulator::Send defaults it to header + body size (the
  /// single place where message sizes are accounted), but senders may
  /// override (e.g. to model framing).
  size_t size_bytes = 0;

  /// The message body ("" when payload is null).
  const std::string& body() const {
    static const std::string kEmpty;
    return payload ? *payload : kEmpty;
  }
};

}  // namespace mqp::net
