// Discrete-event network simulator — the deterministic reference
// implementation of net::Transport (see net/transport.h; the threaded
// and TCP backends live in src/runtime/).
//
// Substitution for the paper's real wide-area deployment (see DESIGN.md):
// peers exchange messages whose delivery latency is propagation delay plus
// serialized-size/bandwidth, and the simulator tracks the quantities the
// paper's claims are about — messages, bytes, hops and latency.
//
// The scheduler is sized for million-peer populations (DESIGN.md §7): a
// calendar queue over a slab/free-list event pool gives ~O(1) enqueue and
// an allocation-free steady path (message deliveries are stored inline,
// never erased into std::function). set_use_calendar_queue(false) restores
// the original binary-heap reference scheduler; both dispatch in
// bit-identical (time, seq) order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/calendar_queue.h"
#include "net/event_pool.h"
#include "net/kind_table.h"
#include "net/message.h"
#include "net/transport.h"

namespace mqp::net {

/// \brief Link parameters (uniform by default; per-pair overrides allowed).
struct LinkParams {
  double latency_seconds = 0.020;     ///< propagation delay
  double bytes_per_second = 1.25e6;   ///< ~10 Mbit/s
};

/// \brief The simulator: event queue + registered peers + failure state.
/// Everything runs on the single thread that calls Run(); stats() and
/// stats() const are therefore one and the same object.
class Simulator : public Transport {
 public:
  Simulator() = default;

  /// Attaches `node` (not owned); returns its id. Addresses look like
  /// "10.0.0.<id>:9020" and are cached at registration.
  PeerId Register(PeerNode* node) override;

  /// Number of registered peers.
  size_t size() const override { return nodes_.size(); }

  /// The synthetic network address of a peer (pure computation; callers
  /// holding a simulator should prefer the cached Address()).
  static std::string AddressOf(PeerId id);

  /// The cached address of a registered peer — no allocation per call.
  /// (Unregistered ids fall back to a computed scratch string.)
  const std::string& Address(PeerId id) const override;

  /// Reverse of AddressOf; error if malformed or unknown. Takes a view:
  /// resolve paths pass subfields of catalog entries without copying.
  Result<PeerId> Lookup(std::string_view address) const override;

  double now() const override { return now_; }

  const LinkParams& default_link() const { return link_; }
  void set_default_link(LinkParams link) {
    link_ = link;
    inv_default_bps_ = 1.0 / link.bytes_per_second;
  }

  /// Per-destination link override (e.g. a slow transatlantic peer).
  void SetLinkOverride(PeerId from, PeerId to, LinkParams link);

  /// Marks a peer down: messages to it are silently dropped (§4.2
  /// "R may be unavailable at some point").
  void Fail(PeerId id) override;
  void Recover(PeerId id) override;
  bool IsFailed(PeerId id) const override;

  /// Enqueues a message for delivery. Messages to failed or unknown
  /// peers — and messages *from* failed peers (a down peer originates no
  /// traffic) — are counted as sent but never delivered.
  void Send(Message msg) override;

  /// Schedules `fn` at absolute time `when` (>= now).
  void Schedule(double when, std::function<void()> fn) override;

  /// Runs until the event queue drains or `max_time` passes.
  /// Returns the number of events processed.
  size_t Run(double max_time = 1e9) override;

  /// True if no events are pending.
  bool Idle() const override {
    return use_calendar_queue_ ? calendar_.empty() : heap_.empty();
  }

  /// Pending (scheduled, not yet dispatched) events.
  size_t pending_events() const {
    return use_calendar_queue_ ? calendar_.size() : heap_.size();
  }

  /// Scheduler ablation knob (PR 3/4/5 style): false restores the
  /// original single binary heap of std::function events. Only honored
  /// while Idle() — the two queues are never mixed.
  void set_use_calendar_queue(bool on) {
    if (Idle()) use_calendar_queue_ = on;
  }
  bool use_calendar_queue() const { return use_calendar_queue_; }

  /// The event pool (calendar mode); benches read hit rates and slab
  /// high-water marks from here.
  const EventPool& event_pool() const { return pool_; }

  /// The calendar queue itself — tests and benches read its sizing
  /// diagnostics (resizes, empty cursor steps, min-jumps).
  const CalendarQueue& calendar_queue() const { return calendar_; }

  /// Approximate heap bytes held by the substrate itself: peer tables,
  /// cached addresses, link overrides, event slab and calendar buckets.
  /// The scale bench divides this by size() for its bytes/peer claim.
  size_t SubstrateBytes() const;

  NetStats& stats() override { return stats_; }
  const NetStats& stats() const override { return stats_; }

  /// Optional tap invoked for every Send (after stats are updated);
  /// benches use it to trace per-hop message sizes.
  void set_on_send(std::function<void(const Message&)> fn) {
    on_send_ = std::move(fn);
  }

 private:
  /// Reference-scheduler event (the original representation: one
  /// type-erased closure per event).
  struct HeapEvent {
    double time;
    uint64_t seq;  // FIFO tie-break for equal times
    std::function<void()> fn;
    bool operator>(const HeapEvent& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  double Latency(PeerId from, PeerId to, size_t bytes) const;

  /// Acquires, stamps and links a pooled event; tallies substrate stats.
  /// Returns the slot index for the caller to fill (pool msg or fn).
  uint32_t EnqueuePooled(double when, SimEvent::Kind kind);

  /// Packs a (from, to) pair into one hashable key — the override lookup
  /// sits on the Send hot path.
  static uint64_t LinkKey(PeerId from, PeerId to) {
    return (static_cast<uint64_t>(from) << 32) | to;
  }

  std::vector<PeerNode*> nodes_;
  std::vector<bool> failed_;
  std::vector<std::string> addresses_;  ///< id → cached "10.0.0.<id>:9020"
  std::unordered_map<uint64_t, LinkParams> link_overrides_;
  LinkParams link_;
  /// 1 / link_.bytes_per_second, cached: Latency() sits on the per-event
  /// hot path and a multiply is several times cheaper than the divide.
  double inv_default_bps_ = 1.0 / LinkParams{}.bytes_per_second;
  bool use_calendar_queue_ = true;
  EventPool pool_;
  CalendarQueue calendar_;
  std::priority_queue<HeapEvent, std::vector<HeapEvent>, std::greater<>>
      heap_;
  double now_ = 0;
  uint64_t seq_ = 0;
  NetStats stats_;
  std::function<void(const Message&)> on_send_;
};

}  // namespace mqp::net
