// Discrete-event network simulator.
//
// Substitution for the paper's real wide-area deployment (see DESIGN.md):
// peers exchange messages whose delivery latency is propagation delay plus
// serialized-size/bandwidth, and the simulator tracks the quantities the
// paper's claims are about — messages, bytes, hops and latency.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace mqp::net {

using PeerId = uint32_t;
inline constexpr PeerId kNoPeer = static_cast<PeerId>(-1);

/// \brief Immutable, shared message body. Multi-KB XML payloads are
/// routed and fanned out without copying: every Message holding the same
/// Payload shares one buffer.
using Payload = std::shared_ptr<const std::string>;

/// Wraps a string into a shared immutable payload.
inline Payload MakePayload(std::string body) {
  return std::make_shared<const std::string>(std::move(body));
}

/// \brief One message in flight. `kind` is a short routing tag ("mqp",
/// "register", "result", ...); `header` is the wire layer's compact
/// framing header (empty for raw messages); `payload` is usually
/// serialized XML, shared rather than copied between sender, simulator
/// queue and receiver.
struct Message {
  Message() = default;
  Message(PeerId from, PeerId to, std::string kind, Payload payload,
          size_t size_bytes = 0)
      : from(from),
        to(to),
        kind(std::move(kind)),
        payload(std::move(payload)),
        size_bytes(size_bytes) {}
  Message(PeerId from, PeerId to, std::string kind, std::string payload,
          size_t size_bytes = 0)
      : Message(from, to, std::move(kind), MakePayload(std::move(payload)),
                size_bytes) {}

  PeerId from = kNoPeer;
  PeerId to = kNoPeer;
  std::string kind;
  /// Compact wire-layer header (see wire/envelope.h); counted in
  /// size_bytes but not part of the body.
  std::string header;
  Payload payload;
  /// Wire size; Simulator::Send defaults it to header + body size (the
  /// single place where message sizes are accounted), but senders may
  /// override (e.g. to model framing).
  size_t size_bytes = 0;

  /// The message body ("" when payload is null).
  const std::string& body() const {
    static const std::string kEmpty;
    return payload ? *payload : kEmpty;
  }
};

/// \brief Interface implemented by anything attached to the network.
class PeerNode {
 public:
  virtual ~PeerNode() = default;

  /// Called when a message is delivered to this node.
  virtual void HandleMessage(const Message& msg) = 0;
};

/// \brief Link parameters (uniform by default; per-pair overrides allowed).
struct LinkParams {
  double latency_seconds = 0.020;     ///< propagation delay
  double bytes_per_second = 1.25e6;   ///< ~10 Mbit/s
};

/// \brief Aggregate traffic statistics. The plan_* counters are fed by
/// the wire layer (wire/plan_codec.h): how often plans were serialized,
/// parsed, or forwarded by reusing the buffer they arrived in.
struct NetStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  // Hash maps, not ordered maps: Send updates both per message. Sort the
  // keys yourself when printing.
  std::unordered_map<std::string, uint64_t> messages_by_kind;
  std::unordered_map<std::string, uint64_t> bytes_by_kind;

  uint64_t plan_serializations = 0;
  uint64_t plan_parses = 0;
  uint64_t forwards_without_reserialize = 0;

  // Streaming-codec counters (wire/plan_codec.h): plan bodies decoded via
  // the token reader, xml::Nodes materialized while decoding plans (only
  // verbatim <data> items should ever count), and wall-clock nanoseconds
  // spent decoding (steady_clock, independent of simulated time).
  uint64_t token_decodes = 0;
  uint64_t dom_nodes_built = 0;
  uint64_t plan_decode_ns = 0;

  // Catalog-resolution counters, fed by the peers (see
  // catalog::ResolveStats): index probes and entries scanned during
  // coverage search, and binding-cache hits.
  uint64_t resolve_index_probes = 0;
  uint64_t resolve_entries_scanned = 0;
  uint64_t binding_cache_hits = 0;

  // Query-engine counters, fed by the peers (see engine::EngineStats):
  // whole items deep-copied on evaluation paths (zero on the shared-store
  // steady path), keys resolved by compiled field accessors, probes of
  // the structural-hash set-semantics tables, and wall-clock nanoseconds
  // spent inside engine::Evaluate (steady clock, independent of simulated
  // time).
  uint64_t items_cloned = 0;
  uint64_t field_accessor_hits = 0;
  uint64_t structural_hash_probes = 0;
  uint64_t engine_eval_ns = 0;

  /// Messages counted as sent but never delivered because the sender was
  /// down at send time / the recipient was down or unknown at send time.
  uint64_t drops_from_failed = 0;
  uint64_t drops_to_failed = 0;

  void Clear() { *this = NetStats{}; }
};

/// \brief The simulator: event queue + registered peers + failure state.
class Simulator {
 public:
  Simulator() = default;

  /// Attaches `node` (not owned); returns its id. Addresses look like
  /// "10.0.0.<id>:9020".
  PeerId Register(PeerNode* node);

  /// Number of registered peers.
  size_t size() const { return nodes_.size(); }

  /// The synthetic network address of a peer.
  static std::string AddressOf(PeerId id);

  /// Reverse of AddressOf; error if malformed or unknown.
  Result<PeerId> Lookup(const std::string& address) const;

  double now() const { return now_; }

  const LinkParams& default_link() const { return link_; }
  void set_default_link(LinkParams link) { link_ = link; }

  /// Per-destination link override (e.g. a slow transatlantic peer).
  void SetLinkOverride(PeerId from, PeerId to, LinkParams link);

  /// Marks a peer down: messages to it are silently dropped (§4.2
  /// "R may be unavailable at some point").
  void Fail(PeerId id);
  void Recover(PeerId id);
  bool IsFailed(PeerId id) const;

  /// Enqueues a message for delivery. Messages to failed or unknown
  /// peers — and messages *from* failed peers (a down peer originates no
  /// traffic) — are counted as sent but never delivered.
  void Send(Message msg);

  /// Schedules `fn` at absolute time `when` (>= now).
  void Schedule(double when, std::function<void()> fn);

  /// Runs until the event queue drains or `max_time` passes.
  /// Returns the number of events processed.
  size_t Run(double max_time = 1e9);

  /// True if no events are pending.
  bool Idle() const { return events_.empty(); }

  NetStats& stats() { return stats_; }
  const NetStats& stats() const { return stats_; }

  /// Optional tap invoked for every Send (after stats are updated);
  /// benches use it to trace per-hop message sizes.
  void set_on_send(std::function<void(const Message&)> fn) {
    on_send_ = std::move(fn);
  }

 private:
  struct Event {
    double time;
    uint64_t seq;  // FIFO tie-break for equal times
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  double Latency(PeerId from, PeerId to, size_t bytes) const;

  /// Packs a (from, to) pair into one hashable key — the override lookup
  /// sits on the Send hot path.
  static uint64_t LinkKey(PeerId from, PeerId to) {
    return (static_cast<uint64_t>(from) << 32) | to;
  }

  std::vector<PeerNode*> nodes_;
  std::vector<bool> failed_;
  std::unordered_map<uint64_t, LinkParams> link_overrides_;
  LinkParams link_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  double now_ = 0;
  uint64_t seq_ = 0;
  NetStats stats_;
  std::function<void(const Message&)> on_send_;
};

}  // namespace mqp::net
