// Calendar-queue event scheduler (Brown '88) over the event pool.
//
// The old substrate kept every pending event in one binary heap:
// O(log n) pushes and pops that, with millions of pending gossip ticks
// and in-flight messages, walk ~20 cache-cold levels per operation. A
// calendar queue hashes events by time into "days" (buckets) of one
// "year" (the bucket array): enqueue appends to the bucket chain in
// O(1), dequeue scans forward from the current day. The bucket count
// doubles/halves with occupancy and the day width is re-derived from
// the live event span, so both operations stay ~O(1) across load
// levels.
//
// Chains are *lazily* sorted: Push always tail-appends and only marks
// the bucket dirty when the append broke (time, seq) order; PopMin
// sorts a dirty chain once, when the cursor first needs it. Simulated
// traffic makes this the difference between O(1) and quadratic pushes —
// thousands of peers whose delivery times are near-ties (equal up to
// floating-point residue) interleave their arrivals, and a
// sorted-insert discipline would walk half of such a chain per push.
// Lazy sorting costs each event one O(log k) share of a sequential
// sort instead.
//
// Ordering is bit-exact with the binary heap: events pop in strict
// (time, seq) order. Equal times always land in the same bucket (the
// virtual day index is a pure function of time), and a day's chain is
// sorted by (time, seq) before anything pops from it, so the FIFO
// tie-break survives unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "net/event_pool.h"

namespace mqp::net {

class CalendarQueue {
 public:
  CalendarQueue() { Init(kMinBuckets, kDefaultWidth); }

  /// Links pooled event `idx` (time/seq already set) into its bucket.
  void Push(EventPool& pool, uint32_t idx);

  /// Unlinks and returns the (time, seq)-minimum event, or kNilEvent when
  /// empty. The returned slot is the caller's to dispatch and release.
  uint32_t PopMin(EventPool& pool);

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Times the bucket array was rebuilt (grow or shrink).
  uint64_t resizes() const { return resizes_; }

  /// Cursor-advance steps over empty/future days during PopMin, and the
  /// times a fruitless whole-year walk fell back to a direct-search jump.
  /// High ratios of either to pops mean the day width is mis-sized.
  uint64_t empty_steps() const { return empty_steps_; }
  uint64_t min_jumps() const { return min_jumps_; }

  /// Events passed through lazy chain sorts. Zero on monotone traffic
  /// (every append lands in order); at most one share per event
  /// otherwise.
  uint64_t chain_sort_events() const { return chain_sort_events_; }

  /// Approximate heap footprint of the bucket arrays.
  size_t ApproxBytes() const {
    return (heads_.capacity() + tails_.capacity()) * sizeof(uint32_t) +
           dirty_.capacity() * sizeof(uint8_t) +
           scratch_.capacity() * sizeof(uint32_t);
  }

 private:
  static constexpr size_t kMinBuckets = 16;
  /// Bucket-array cap: 4M buckets (32 MB of links) — far past the point
  /// where occupancy-1 sizing matters, and it bounds resize cost.
  static constexpr size_t kMaxBuckets = size_t{1} << 22;
  /// Initial day width: a quarter of the default link latency, so the
  /// very first messages spread over a few buckets.
  static constexpr double kDefaultWidth = 0.005;
  /// Longest run of empty days one pop may cross before the queue
  /// concludes the days are too narrow and rebuilds with a re-estimated
  /// width.
  static constexpr size_t kMaxEmptyWalk = 256;

  /// The virtual day an event at time `t` belongs to. Monotone in t, and
  /// a pure function of it: equal times share a day, and day order is
  /// time order.
  uint64_t VIndex(double t) const { return static_cast<uint64_t>(t / width_); }

  void Init(size_t nbuckets, double width);
  /// Rebuilds with `nbuckets` buckets. Width is `forced_width` when > 0,
  /// otherwise re-derived from the live events (mean separation of
  /// adjacent distinct times, so tie clusters don't shred the year).
  void Resize(EventPool& pool, size_t nbuckets, double forced_width = 0);
  /// Sorts bucket `b`'s chain by (time, seq) and clears its dirty bit.
  void SortBucket(EventPool& pool, size_t b);
  /// Repositions the cursor on the true minimum (sparse-year fallback).
  void JumpToMin(const EventPool& pool);

  std::vector<uint32_t> heads_;  ///< per-bucket chain head
  std::vector<uint32_t> tails_;  ///< chain tail: O(1) appends
  std::vector<uint8_t> dirty_;   ///< chain not (time, seq)-sorted
  std::vector<uint32_t> scratch_;  ///< SortBucket workspace (reused)
  size_t nbuckets_ = 0;          ///< power of two
  uint64_t mask_ = 0;            ///< nbuckets - 1
  double width_ = kDefaultWidth; ///< seconds per day
  uint64_t cur_vindex_ = 0;      ///< dequeue cursor; <= min live vindex
  size_t count_ = 0;
  /// Non-empty buckets. The bucket array is sized to *this*, not to
  /// count_: simulated traffic piles thousands of tied events onto a few
  /// distinct days, and sizing to occupancy keeps heads_/tails_ small
  /// enough to stay cache-resident instead of spraying misses over a
  /// multi-megabyte array that is 99% nil.
  size_t occupied_ = 0;
  /// Push/Pop operations since the last rebuild. The empty-walk rebuild
  /// is gated on this having reached a fraction of the live count, so a
  /// distribution the estimator can't nail (heavy mixtures) degrades to
  /// occasional long walks instead of resize thrash — a rebuild sorts
  /// every live event, so back-to-back rebuilds at millions of pending
  /// events would dwarf the walks they were meant to save.
  uint64_t ops_since_resize_ = 0;
  uint64_t resizes_ = 0;
  uint64_t empty_steps_ = 0;
  uint64_t min_jumps_ = 0;
  uint64_t chain_sort_events_ = 0;
};

}  // namespace mqp::net
