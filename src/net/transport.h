// Transport: the abstract substrate peers run against.
//
// Every participant (peer::Peer, the three baselines, the sync agents)
// is written as a message handler driven by this interface: register,
// send, schedule, read the clock, observe failure state, tally stats.
// Three implementations exist (DESIGN.md §8):
//
//   * net::Simulator      — the single-threaded discrete-event reference.
//     Deterministic: a seed reproduces the exact event trace, so it
//     remains the semantics oracle every other backend is tested against.
//   * runtime::ThreadedRuntime — per-peer mailboxes drained by a thread
//     pool; virtual time advances at quiescent barriers. Same peers, all
//     cores (src/runtime/threaded_runtime.h).
//   * runtime::TcpTransport    — the same peers served over real loopback
//     sockets, wall-clock time (src/runtime/tcp_transport.h).
//
// Threading contract: a Transport implementation must deliver messages
// to any single PeerNode one at a time (handlers are single-threaded
// *per peer*, never per process), and must establish a happens-before
// edge between consecutive handler invocations of the same peer, so
// peer-confined state needs no locking. `stats()` (non-const) returns a
// write shard the calling thread may mutate freely; `stats()` (const)
// returns the merged view, exact whenever the transport is quiescent.
// For the single-threaded simulator both are one and the same object.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "net/kind_table.h"
#include "net/message.h"

namespace mqp::net {

/// \brief Interface implemented by anything attached to the network.
class PeerNode {
 public:
  virtual ~PeerNode() = default;

  /// Called when a message is delivered to this node. Invocations are
  /// serialized per node (see the threading contract above).
  virtual void HandleMessage(const Message& msg) = 0;
};

/// \brief Aggregate traffic statistics. The plan_* counters are fed by
/// the wire layer (wire/plan_codec.h): how often plans were serialized,
/// parsed, or forwarded by reusing the buffer they arrived in.
///
/// Under a multi-threaded transport each thread owns a private shard of
/// this struct (Transport::stats() non-const) and shards are merged on
/// read (Transport::stats() const) — counters are plain uint64_t, never
/// atomics, so the per-message hot path stays contention-free.
struct NetStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  // Flat arrays over the interned kind table (net/kind_table.h), behind a
  // map-compatible lookup API; ForEachSorted iterates kinds in stable
  // name order without per-print rebuilds.
  KindCounters messages_by_kind;
  KindCounters bytes_by_kind;

  uint64_t plan_serializations = 0;
  uint64_t plan_parses = 0;
  uint64_t forwards_without_reserialize = 0;

  // Streaming-codec counters (wire/plan_codec.h): plan bodies decoded via
  // the token reader, xml::Nodes materialized while decoding plans (only
  // verbatim <data> items should ever count), and wall-clock nanoseconds
  // spent decoding (steady_clock, independent of simulated time).
  uint64_t token_decodes = 0;
  uint64_t dom_nodes_built = 0;
  uint64_t plan_decode_ns = 0;

  // Catalog-resolution counters, fed by the peers (see
  // catalog::ResolveStats): index probes and entries scanned during
  // coverage search, and binding-cache hits.
  uint64_t resolve_index_probes = 0;
  uint64_t resolve_entries_scanned = 0;
  uint64_t binding_cache_hits = 0;

  // Query-engine counters, fed by the peers (see engine::EngineStats):
  // whole items deep-copied on evaluation paths (zero on the shared-store
  // steady path), keys resolved by compiled field accessors, probes of
  // the structural-hash set-semantics tables, and wall-clock nanoseconds
  // spent inside engine::Evaluate (steady clock, independent of simulated
  // time).
  uint64_t items_cloned = 0;
  uint64_t field_accessor_hits = 0;
  uint64_t structural_hash_probes = 0;
  uint64_t engine_eval_ns = 0;

  // Scheduler-substrate counters (DESIGN.md §7). events_scheduled counts
  // every enqueued event in either scheduler mode and is therefore
  // mode-invariant; pool hits and calendar resizes are calendar-mode
  // mechanics (zero under the heap reference).
  uint64_t events_scheduled = 0;
  uint64_t event_pool_hits = 0;
  uint64_t calendar_resizes = 0;

  // Mailbox counters (runtime::ThreadedRuntime, DESIGN.md §8): external
  // senders that blocked on a full bounded mailbox, and worker-thread
  // sends that bypassed the bound (a worker must never block on a full
  // mailbox — two full peers sending to each other would deadlock).
  uint64_t mailbox_backpressure_waits = 0;
  uint64_t mailbox_soft_overflows = 0;

  /// Messages counted as sent but never delivered because the sender was
  /// down at send time / the recipient was down or unknown at send time
  /// *or failed while the message was in flight* (every backend counts
  /// the in-transit case in drops_to_failed too — DESIGN.md §9).
  uint64_t drops_from_failed = 0;
  uint64_t drops_to_failed = 0;

  // Fault-injection counters (net/fault_injector.h): messages the armed
  // injector dropped, duplicated, or delayed per the seeded fault plan.
  // Dropped messages still count in messages/bytes (same contract as the
  // drops_* counters above: counted as sent, never delivered).
  uint64_t fault_drops = 0;
  uint64_t fault_dups = 0;
  uint64_t fault_delays = 0;

  // Query-reliability counters, fed by the peers (peer::Peer's client
  // retry layer, DESIGN.md §9): retries launched, queries finished
  // without a complete result (deadline or retry budget exhausted),
  // alternatives/candidates skipped past a dead or suspect server while
  // the query still made progress, late results discarded because the
  // query already completed, and incomplete outcomes delivered with a
  // non-empty partial item set.
  uint64_t query_retries = 0;
  uint64_t query_timeouts = 0;
  uint64_t failovers = 0;
  uint64_t duplicates_suppressed = 0;
  uint64_t partials_delivered = 0;

  // Distributed top-k counters (DESIGN.md §10), fed by the peers:
  // bounded reply batches merged by top-k coordinators, rows proven dead
  // without shipping (server bound cuts + coordinator early-termination
  // leftovers), bytes the bounded protocol avoided shipping relative to
  // the full collections, and sources terminated before exhaustion
  // because no remaining row could beat the k-th bound. All zero when
  // the ablation knob (optimizer::set_use_distributed_topk) is off.
  uint64_t topk_batches = 0;
  uint64_t topk_rows_pruned = 0;
  uint64_t topk_bytes_saved = 0;
  uint64_t topk_early_terminations = 0;

  // Reply-demux hygiene counters (peer::Peer::HandleFetchReply and the
  // subquery/top-k demux): reply bodies that failed to decode, and
  // replies whose correlation id matched no pending request or top-k
  // session. Both are asserted zero by the happy-path suites.
  uint64_t reply_decode_failures = 0;
  uint64_t unmatched_replies = 0;

  // Overload-protection counters (DESIGN.md §11), fed by the peers:
  // queries refused by admission control (shed replies returned
  // unevaluated), evaluations aborted mid-stream by an expired
  // per-query resource budget (engine::EngineStats::budget_aborts),
  // cancel messages fanned out when a query completed / timed out / was
  // shed, and remote top-k merge sessions or queued plans a received
  // cancel reaped. All zero when peer::set_use_overload_protection is
  // off.
  uint64_t queries_shed = 0;
  uint64_t budget_aborts = 0;
  uint64_t cancels_sent = 0;
  uint64_t cancelled_sessions_reaped = 0;

  // TcpTransport outbound backpressure (DESIGN.md §11, parity with the
  // mailbox counters above): external senders that blocked on a full
  // bounded per-connection send queue, and transport-internal threads
  // (readers/timers relaying) that bypassed the bound instead — they
  // must never block, or two full peers relaying to each other would
  // deadlock the transport.
  uint64_t tcp_send_queue_waits = 0;
  uint64_t tcp_send_soft_overflows = 0;

  /// Zeroes every counter while keeping the per-kind arrays' capacity —
  /// bench reset loops must not reallocate.
  void Clear() {
    messages = 0;
    bytes = 0;
    messages_by_kind.clear();
    bytes_by_kind.clear();
    plan_serializations = 0;
    plan_parses = 0;
    forwards_without_reserialize = 0;
    token_decodes = 0;
    dom_nodes_built = 0;
    plan_decode_ns = 0;
    resolve_index_probes = 0;
    resolve_entries_scanned = 0;
    binding_cache_hits = 0;
    items_cloned = 0;
    field_accessor_hits = 0;
    structural_hash_probes = 0;
    engine_eval_ns = 0;
    events_scheduled = 0;
    event_pool_hits = 0;
    calendar_resizes = 0;
    mailbox_backpressure_waits = 0;
    mailbox_soft_overflows = 0;
    drops_from_failed = 0;
    drops_to_failed = 0;
    fault_drops = 0;
    fault_dups = 0;
    fault_delays = 0;
    query_retries = 0;
    query_timeouts = 0;
    failovers = 0;
    duplicates_suppressed = 0;
    partials_delivered = 0;
    topk_batches = 0;
    topk_rows_pruned = 0;
    topk_bytes_saved = 0;
    topk_early_terminations = 0;
    reply_decode_failures = 0;
    unmatched_replies = 0;
    queries_shed = 0;
    budget_aborts = 0;
    cancels_sent = 0;
    cancelled_sessions_reaped = 0;
    tcp_send_queue_waits = 0;
    tcp_send_soft_overflows = 0;
  }

  /// Adds every counter of `other` into this (shard merge-on-read).
  void MergeFrom(const NetStats& other) {
    messages += other.messages;
    bytes += other.bytes;
    messages_by_kind.MergeFrom(other.messages_by_kind);
    bytes_by_kind.MergeFrom(other.bytes_by_kind);
    plan_serializations += other.plan_serializations;
    plan_parses += other.plan_parses;
    forwards_without_reserialize += other.forwards_without_reserialize;
    token_decodes += other.token_decodes;
    dom_nodes_built += other.dom_nodes_built;
    plan_decode_ns += other.plan_decode_ns;
    resolve_index_probes += other.resolve_index_probes;
    resolve_entries_scanned += other.resolve_entries_scanned;
    binding_cache_hits += other.binding_cache_hits;
    items_cloned += other.items_cloned;
    field_accessor_hits += other.field_accessor_hits;
    structural_hash_probes += other.structural_hash_probes;
    engine_eval_ns += other.engine_eval_ns;
    events_scheduled += other.events_scheduled;
    event_pool_hits += other.event_pool_hits;
    calendar_resizes += other.calendar_resizes;
    mailbox_backpressure_waits += other.mailbox_backpressure_waits;
    mailbox_soft_overflows += other.mailbox_soft_overflows;
    drops_from_failed += other.drops_from_failed;
    drops_to_failed += other.drops_to_failed;
    fault_drops += other.fault_drops;
    fault_dups += other.fault_dups;
    fault_delays += other.fault_delays;
    query_retries += other.query_retries;
    query_timeouts += other.query_timeouts;
    failovers += other.failovers;
    duplicates_suppressed += other.duplicates_suppressed;
    partials_delivered += other.partials_delivered;
    topk_batches += other.topk_batches;
    topk_rows_pruned += other.topk_rows_pruned;
    topk_bytes_saved += other.topk_bytes_saved;
    topk_early_terminations += other.topk_early_terminations;
    reply_decode_failures += other.reply_decode_failures;
    unmatched_replies += other.unmatched_replies;
    queries_shed += other.queries_shed;
    budget_aborts += other.budget_aborts;
    cancels_sent += other.cancels_sent;
    cancelled_sessions_reaped += other.cancelled_sessions_reaped;
    tcp_send_queue_waits += other.tcp_send_queue_waits;
    tcp_send_soft_overflows += other.tcp_send_soft_overflows;
  }
};

/// \brief The substrate interface: registration + address book, clock,
/// message send, timer schedule, failure injection, and stats.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Attaches `node` (not owned); returns its id. Must be called from
  /// the driving thread while the transport is quiescent (before Run, or
  /// from a scheduled callback — churn joiners do the latter).
  virtual PeerId Register(PeerNode* node) = 0;

  /// Number of registered peers.
  virtual size_t size() const = 0;

  /// The cached network address of a registered peer — no allocation
  /// per call.
  virtual const std::string& Address(PeerId id) const = 0;

  /// Reverse of Address; error if malformed or unknown. Takes a view:
  /// resolve paths pass subfields of catalog entries without copying.
  virtual Result<PeerId> Lookup(std::string_view address) const = 0;

  /// The transport clock, in seconds. Simulated time for the simulator
  /// and the threaded runtime (advances at event/barrier boundaries),
  /// wall clock since construction for the TCP transport.
  virtual double now() const = 0;

  /// Enqueues a message for delivery. Messages to failed or unknown
  /// peers — and messages *from* failed peers (a down peer originates no
  /// traffic) — are counted as sent but never delivered.
  virtual void Send(Message msg) = 0;

  /// Schedules `fn` at absolute time `when` (>= now).
  virtual void Schedule(double when, std::function<void()> fn) = 0;

  /// Schedules `fn` at `when`, declaring that it touches only state
  /// confined to peer `owner`. Backends that run handlers concurrently
  /// (the TCP transport) use the hint to serialize the callback with
  /// `owner`'s message handlers; the default is plain Schedule.
  virtual void ScheduleFor(PeerId owner, double when,
                           std::function<void()> fn) {
    (void)owner;
    Schedule(when, std::move(fn));
  }

  /// Marks a peer down: messages to it are silently dropped (§4.2
  /// "R may be unavailable at some point").
  virtual void Fail(PeerId id) = 0;
  virtual void Recover(PeerId id) = 0;
  virtual bool IsFailed(PeerId id) const = 0;

  /// Runs until the transport drains or `max_time` passes on its clock.
  /// Returns the number of events (deliveries + timer callbacks)
  /// processed. Must be called from the driving thread.
  virtual size_t Run(double max_time = 1e9) = 0;

  /// True if no work is pending.
  virtual bool Idle() const = 0;

  /// The calling thread's writable stats shard. Peers increment fields
  /// directly; under a threaded backend each thread gets its own shard.
  virtual NetStats& stats() = 0;

  /// The merged read view — exact whenever the transport is quiescent.
  virtual const NetStats& stats() const = 0;
};

}  // namespace mqp::net
