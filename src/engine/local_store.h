// LocalStore: a base server's named collections of XML data.
//
// Collections are addressed the way the paper's index entries do
// (§3.2): an XPath expression over the server's data document, e.g.
// "/data[@id='245']". Logically the store still *is* that document,
//
//   <store>
//     <data id="245">ITEM*</data>
//     <data id="246">ITEM*</data>
//   </store>
//
// but the storage is a keyed map of shared immutable Items: the steady
// path (a collection-id fetch, with or without trailing item steps)
// answers straight from the map with shared refs — zero deep clones,
// zero DOM construction. XPaths outside that shape (wildcards, '//',
// exotic predicates) fall back to a lazily materialized DOM view of the
// document above, rebuilt only after mutations, where the old clone-out
// semantics apply unchanged. set_use_shared_store(false) (operator.h)
// restores the cloning reference everywhere for ablation.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/plan.h"
#include "common/result.h"
#include "engine/operator.h"
#include "xml/node.h"

namespace mqp::xml {
class XPath;
}  // namespace mqp::xml

namespace mqp::engine {

/// \brief In-memory collection store implementing DataSource.
class LocalStore : public DataSource {
 public:
  LocalStore();

  /// Adds (or extends) collection `id` with `items` (shared, not copied).
  /// Non-element items become part of the document (visible to "[.=text]"
  /// predicates via the view) but are never emitted by readers.
  void AddCollection(const std::string& id, const algebra::ItemSet& items);

  /// Replaces collection `id`.
  void ReplaceCollection(const std::string& id,
                         const algebra::ItemSet& items);

  /// Removes collection `id`; no-op if absent. O(1): collections are
  /// keyed, not scanned.
  void RemoveCollection(const std::string& id);

  /// The XPath identifier for collection `id`: "/data[@id='ID']". The id
  /// is quoted with whichever quote character it does not contain, so ids
  /// carrying ']', spaces or path separators survive the round trip
  /// through XPath::Parse. (An id containing *both* quote characters is
  /// not representable in XPath-lite; don't mint such ids.)
  static std::string CollectionXPath(const std::string& id);

  /// Collection ids in insertion order.
  std::vector<std::string> CollectionIds() const;

  /// Items of one collection (empty when unknown). Shared refs.
  algebra::ItemSet ItemsOf(const std::string& id) const;

  size_t TotalItems() const;

  /// DataSource: `url` is ignored (the caller routed to this store);
  /// `xpath` selects collections or elements. An empty xpath returns
  /// every item of every collection.
  Result<algebra::ItemSet> Fetch(const std::string& url,
                                 const std::string& xpath) override;

 private:
  struct Collection {
    uint64_t seq = 0;  // insertion order (monotonic; survives removals)
    algebra::ItemSet items;
    // True when some item is an element named "id": the legacy predicate
    // "[id=...]" would compare that child's text instead of the id
    // attribute, so the keyed fast path must stand aside (see Fetch).
    bool has_id_element_item = false;
    // True when some item is not an element. Such items are part of the
    // document (the DOM view carries them for "[.=text]" predicates) but
    // are never emitted — readers walk element children.
    bool has_non_element_item = false;
  };

  /// Collections ordered by insertion sequence, with their ids.
  std::vector<std::pair<const std::string*, const Collection*>> Ordered()
      const;

  /// Appends `coll`'s element items to `out`, shared or cloned.
  static void AppendItems(const Collection& coll, bool clone,
                          algebra::ItemSet* out);

  /// Answers a collection-shaped xpath from the keyed map with shared
  /// refs; returns false when the shape doesn't apply (caller falls back
  /// to the DOM view).
  bool FetchFast(const xml::XPath& xp, algebra::ItemSet* out) const;

  /// The DOM view of the logical <store> document, rebuilt lazily after
  /// mutations (deep-copies every item; counts EngineStats::items_cloned).
  const xml::Node& View() const;

  std::unordered_map<std::string, Collection> collections_;
  uint64_t next_seq_ = 0;
  uint64_t version_ = 0;  // bumped on every mutation; invalidates view_
  mutable std::unique_ptr<xml::Node> view_;
  mutable uint64_t view_version_ = 0;
};

}  // namespace mqp::engine
