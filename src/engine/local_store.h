// LocalStore: a base server's named collections of XML data.
//
// Collections are addressed the way the paper's index entries do
// (§3.2): an XPath expression over the server's data document, e.g.
// "/data[id=245]". The store document has the shape
//
//   <store>
//     <data id="245">ITEM*</data>
//     <data id="246">ITEM*</data>
//   </store>
//
// Fetch resolves an XPath against this document: a match on a <data>
// collection yields its items; a match on deeper elements yields those
// elements themselves (so "/data[id=245]/item[price<10]" works too).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "common/result.h"
#include "engine/operator.h"
#include "xml/node.h"

namespace mqp::engine {

/// \brief In-memory collection store implementing DataSource.
class LocalStore : public DataSource {
 public:
  LocalStore();

  /// Adds (or extends) collection `id` with `items`.
  void AddCollection(const std::string& id, const algebra::ItemSet& items);

  /// Replaces collection `id`.
  void ReplaceCollection(const std::string& id,
                         const algebra::ItemSet& items);

  /// Removes collection `id`; no-op if absent.
  void RemoveCollection(const std::string& id);

  /// The XPath identifier for collection `id`: "/data[id=ID]".
  static std::string CollectionXPath(const std::string& id);

  std::vector<std::string> CollectionIds() const;

  /// Items of one collection (empty when unknown).
  algebra::ItemSet ItemsOf(const std::string& id) const;

  size_t TotalItems() const;

  /// DataSource: `url` is ignored (the caller routed to this store);
  /// `xpath` selects collections or elements. An empty xpath returns
  /// every item of every collection.
  Result<algebra::ItemSet> Fetch(const std::string& url,
                                 const std::string& xpath) override;

 private:
  std::unique_ptr<xml::Node> root_;  // <store> document
};

}  // namespace mqp::engine
