// Compiled field access: the engine's key-extraction hot path.
//
// Join build/probe keys, aggregate group-by/value fields and top-N order
// keys are XPath-lite paths resolved once per *item*. The old path built a
// fresh Expr::Field (one shared_ptr allocation) and re-parsed the XPath
// per item; a FieldAccessor compiles the path once at operator Open() and
// then resolves items with a direct child walk and zero allocations on
// the steady path (the returned string_view borrows from the item, or —
// for concatenated text — from a scratch buffer reused across calls).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "xml/node.h"
#include "xml/xpath.h"

namespace mqp::engine {

/// \brief A field path compiled for repeated evaluation against items.
class FieldAccessor {
 public:
  /// Compiles `path`. Plain child chains ("price", "seller/city") and a
  /// final attribute ("seller/@id") take the direct-walk path; anything
  /// else (predicates, '//', a leading '/', '*') falls back to one
  /// pre-parsed XPath — still compiled once, never per item.
  explicit FieldAccessor(std::string_view path);

  /// Resolves the first match's text, or nullopt when the field is
  /// absent. The view is valid until the next Eval() on this accessor or
  /// a mutation of `item` (it borrows from the item or from the
  /// accessor's scratch buffer). Matches Expr::Field / XPath first-match
  /// semantics exactly, including the depth-first order for nested paths.
  std::optional<std::string_view> Eval(const xml::Node& item) const;

  /// True when the direct-walk path compiled (no XPath fallback, not an
  /// unparseable path).
  bool compiled() const { return !bad_ && !fallback_.has_value(); }

 private:
  const xml::Node* Walk(const xml::Node& n, size_t seg) const;

  std::vector<std::string> segments_;  // child-element chain (may be empty)
  std::string attr_;                   // final '@attr' name ("" = text)
  std::optional<xml::XPath> fallback_; // complex paths (parse kept; may be
                                       // nullopt-with-bad_ on parse error)
  bool bad_ = false;                   // unparseable path: always nullopt
  mutable std::string scratch_;        // concatenated-text landing zone
};

}  // namespace mqp::engine
