#include "engine/topk_heap.h"

#include <algorithm>
#include <numeric>

#include "common/strings.h"
#include "engine/field_accessor.h"
#include "engine/operator.h"

namespace mqp::engine {

namespace {

/// The shared total order's key leg: negative when `a` sorts before `b`
/// for this direction.
int DirectedCompare(std::string_view a, std::string_view b, bool ascending) {
  const int cmp = mqp::CompareNumericAware(a, b);
  return ascending ? cmp : -cmp;
}

}  // namespace

bool TopKPruned(std::string_view key, uint32_t leaf, bool ascending,
                const TopKBoundRef& bound) {
  if (!bound.present) return false;
  const int cmp = DirectedCompare(key, bound.key, ascending);
  if (cmp != 0) return cmp > 0;
  // Equal key: the bound entry wins ties against its own leaf (remaining
  // items there have larger idx) and against any larger leaf.
  return leaf >= bound.leaf;
}

TopKHeap::TopKHeap(std::optional<uint64_t> k, bool ascending)
    : k_(k), ascending_(ascending) {}

bool TopKHeap::BetterKey(std::string_view key, uint32_t leaf, uint64_t idx,
                         const Entry& than) const {
  const int cmp = DirectedCompare(key, than.key, ascending_);
  if (cmp != 0) return cmp < 0;
  if (leaf != than.leaf) return leaf < than.leaf;
  return idx < than.idx;
}

void TopKHeap::Push(std::string_view key, uint32_t leaf, uint64_t idx,
                    const algebra::Item& item) {
  auto better = [this](const Entry& a, const Entry& b) {
    return BetterKey(a.key, a.leaf, a.idx, b);
  };
  if (!k_ || heap_.size() < *k_) {
    heap_.push_back(Entry{std::string(key), leaf, idx, item});
    if (k_) std::push_heap(heap_.begin(), heap_.end(), better);
    return;
  }
  // Reject against the current worst before materializing an entry.
  if (*k_ == 0 || !BetterKey(key, leaf, idx, heap_.front())) return;
  std::pop_heap(heap_.begin(), heap_.end(), better);
  heap_.back() = Entry{std::string(key), leaf, idx, item};
  std::push_heap(heap_.begin(), heap_.end(), better);
}

bool TopKHeap::full() const { return k_ && heap_.size() >= *k_; }

TopKBoundRef TopKHeap::Bound() const {
  TopKBoundRef b;
  if (!full() || heap_.empty()) return b;
  b.present = true;
  b.key = heap_.front().key;
  b.leaf = heap_.front().leaf;
  return b;
}

bool TopKHeap::WouldAccept(std::string_view key, uint32_t leaf) const {
  if (k_ && *k_ == 0) return false;
  if (!full()) return true;
  return !TopKPruned(key, leaf, ascending_, Bound());
}

algebra::ItemSet TopKHeap::Finish() {
  std::sort(heap_.begin(), heap_.end(), [this](const Entry& a, const Entry& b) {
    return BetterKey(a.key, a.leaf, a.idx, b);
  });
  algebra::ItemSet out;
  out.reserve(heap_.size());
  for (Entry& e : heap_) out.push_back(std::move(e.item));
  heap_.clear();
  return out;
}

namespace {

/// Score-orders `items` (stable on original index) and returns the index
/// one past the last eligible row: min(first bound-pruned position, k).
/// TopKPruned is monotone along the sorted order for a fixed leaf, so
/// the cut is a prefix boundary.
struct EligiblePrefix {
  std::vector<size_t> order;  // items indices, score order
  std::vector<std::string> keys;
  size_t cut = 0;
};

EligiblePrefix ScoreOrder(const algebra::ItemSet& items, const TopKSpec& spec,
                          const TopKBoundRef& bound, uint32_t leaf) {
  EligiblePrefix p;
  FieldAccessor key(spec.field);
  p.keys.reserve(items.size());
  for (const algebra::Item& item : items) {
    p.keys.emplace_back(key.Eval(*item).value_or(std::string_view()));
  }
  p.order.resize(items.size());
  std::iota(p.order.begin(), p.order.end(), size_t{0});
  std::stable_sort(p.order.begin(), p.order.end(),
                   [&](size_t a, size_t b) {
                     const int cmp = DirectedCompare(p.keys[a], p.keys[b],
                                                     spec.ascending);
                     if (cmp != 0) return cmp < 0;
                     return a < b;
                   });
  size_t cut = std::min<size_t>(items.size(), spec.k);
  for (size_t i = 0; i < cut; ++i) {
    if (TopKPruned(p.keys[p.order[i]], leaf, spec.ascending, bound)) {
      cut = i;
      break;
    }
  }
  p.cut = cut;
  return p;
}

}  // namespace

TopKSlice BoundedPrefix(const algebra::ItemSet& items, const TopKSpec& spec,
                        const TopKBoundRef& bound, uint32_t leaf,
                        uint64_t cont, uint64_t batch) {
  EligiblePrefix p = ScoreOrder(items, spec, bound, leaf);
  TopKSlice s;
  s.total = items.size();
  const size_t begin = std::min<size_t>(cont, p.cut);
  const size_t end = batch == 0 ? p.cut
                                : std::min<size_t>(begin + batch, p.cut);
  s.ship.assign(p.order.begin() + begin, p.order.begin() + end);
  s.next_cont = end;
  s.more = end < p.cut;
  if (s.more) s.next_key = p.keys[p.order[end]];
  if (!s.more) {
    s.pruned = items.size() - p.cut;
    internal::MutableStats().topk_rows_pruned += s.pruned;
  }
  return s;
}

algebra::ItemSet TopKTruncate(const algebra::ItemSet& items,
                              const TopKSpec& spec, const TopKBoundRef& bound,
                              uint32_t leaf) {
  EligiblePrefix p = ScoreOrder(items, spec, bound, leaf);
  algebra::ItemSet out;
  out.reserve(p.cut);
  for (size_t i = 0; i < p.cut; ++i) out.push_back(items[p.order[i]]);
  internal::MutableStats().topk_rows_pruned += items.size() - p.cut;
  return out;
}

}  // namespace mqp::engine
