#include "engine/local_store.h"

#include "xml/xpath.h"

namespace mqp::engine {

LocalStore::LocalStore() : root_(xml::Node::Element("store")) {}

void LocalStore::AddCollection(const std::string& id,
                               const algebra::ItemSet& items) {
  xml::Node* coll = nullptr;
  for (const auto& c : root_->children()) {
    if (c->is_element() && c->AttrOr("id", "") == id) {
      coll = c.get();
      break;
    }
  }
  if (coll == nullptr) {
    coll = root_->AddElement("data");
    coll->SetAttr("id", id);
  }
  for (const auto& item : items) {
    coll->AddChild(item->Clone());
  }
}

void LocalStore::ReplaceCollection(const std::string& id,
                                   const algebra::ItemSet& items) {
  RemoveCollection(id);
  AddCollection(id, items);
}

void LocalStore::RemoveCollection(const std::string& id) {
  auto& children = root_->mutable_children();
  for (size_t i = 0; i < children.size(); ++i) {
    if (children[i]->is_element() && children[i]->AttrOr("id", "") == id) {
      root_->RemoveChild(i);
      return;
    }
  }
}

std::string LocalStore::CollectionXPath(const std::string& id) {
  return "/data[id=" + id + "]";
}

std::vector<std::string> LocalStore::CollectionIds() const {
  std::vector<std::string> out;
  for (const xml::Node* c : root_->Children("data")) {
    out.push_back(c->AttrOr("id", ""));
  }
  return out;
}

algebra::ItemSet LocalStore::ItemsOf(const std::string& id) const {
  algebra::ItemSet out;
  for (const xml::Node* c : root_->Children("data")) {
    if (c->AttrOr("id", "") == id) {
      for (const xml::Node* item : c->Children("*")) {
        out.push_back(algebra::MakeItem(*item));
      }
    }
  }
  return out;
}

size_t LocalStore::TotalItems() const {
  size_t n = 0;
  for (const xml::Node* c : root_->Children("data")) {
    n += c->ElementCount();
  }
  return n;
}

Result<algebra::ItemSet> LocalStore::Fetch(const std::string& url,
                                           const std::string& xpath) {
  (void)url;
  algebra::ItemSet out;
  if (xpath.empty()) {
    for (const xml::Node* c : root_->Children("data")) {
      for (const xml::Node* item : c->Children("*")) {
        out.push_back(algebra::MakeItem(*item));
      }
    }
    return out;
  }
  // The store document root is <store>; collection XPaths in the paper are
  // written relative to it ("/data[id=245]"), so evaluate each step against
  // the children of <store>.
  const std::string full =
      xpath.front() == '/' ? "/store" + xpath : "/store/" + xpath;
  MQP_ASSIGN_OR_RETURN(auto xp, xml::XPath::Parse(full));
  for (const xml::Node* match : xp.Eval(*root_)) {
    if (match->name() == "data" && match->Attr("id").has_value()) {
      for (const xml::Node* item : match->Children("*")) {
        out.push_back(algebra::MakeItem(*item));
      }
    } else {
      out.push_back(algebra::MakeItem(*match));
    }
  }
  return out;
}

}  // namespace mqp::engine
