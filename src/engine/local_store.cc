#include "engine/local_store.h"

#include <algorithm>

#include "common/strings.h"
#include "xml/xpath.h"

namespace mqp::engine {

namespace {

using algebra::Item;
using algebra::ItemSet;

/// Deep item copy, tallied: the zero-clone guarantee of the shared steady
/// path is asserted as a zero delta of this counter.
Item CloneItem(const xml::Node& n) {
  ++internal::MutableStats().items_cloned;
  return algebra::MakeItem(n);
}

}  // namespace

LocalStore::LocalStore() = default;

void LocalStore::AddCollection(const std::string& id,
                               const algebra::ItemSet& items) {
  Collection& coll = collections_[id];
  if (coll.seq == 0) coll.seq = ++next_seq_;  // fresh collection
  coll.items.insert(coll.items.end(), items.begin(), items.end());
  for (const Item& item : items) {
    if (item->is_element()) {
      if (item->name() == "id") coll.has_id_element_item = true;
    } else {
      // Kept but never emitted (readers walk element children); the DOM
      // view still carries it so "[.=text]" predicates see the document
      // the old store held.
      coll.has_non_element_item = true;
    }
  }
  ++version_;
  view_.reset();  // don't keep a stale deep-copied view alive
}

void LocalStore::ReplaceCollection(const std::string& id,
                                   const algebra::ItemSet& items) {
  RemoveCollection(id);
  AddCollection(id, items);
}

void LocalStore::RemoveCollection(const std::string& id) {
  if (collections_.erase(id) == 0) return;  // documented no-op
  ++version_;
  view_.reset();  // don't keep a stale deep-copied view alive
}

std::string LocalStore::CollectionXPath(const std::string& id) {
  const char quote = id.find('\'') == std::string::npos ? '\'' : '"';
  std::string out = "/data[@id=";
  out += quote;
  out += id;
  out += quote;
  out += ']';
  return out;
}

std::vector<std::pair<const std::string*, const LocalStore::Collection*>>
LocalStore::Ordered() const {
  std::vector<std::pair<const std::string*, const Collection*>> out;
  out.reserve(collections_.size());
  for (const auto& [id, coll] : collections_) {
    out.emplace_back(&id, &coll);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) {
              return a.second->seq < b.second->seq;
            });
  return out;
}

std::vector<std::string> LocalStore::CollectionIds() const {
  std::vector<std::string> out;
  out.reserve(collections_.size());
  for (const auto& [id, coll] : Ordered()) {
    out.push_back(*id);
  }
  return out;
}

algebra::ItemSet LocalStore::ItemsOf(const std::string& id) const {
  auto it = collections_.find(id);
  if (it == collections_.end()) return {};
  const Collection& coll = it->second;
  if (use_shared_store() && !coll.has_non_element_item) return coll.items;
  ItemSet out;
  out.reserve(coll.items.size());
  for (const Item& item : coll.items) {
    if (!item->is_element()) continue;
    out.push_back(use_shared_store() ? item : CloneItem(*item));
  }
  return out;
}

size_t LocalStore::TotalItems() const {
  size_t n = 0;
  for (const auto& [id, coll] : collections_) {
    if (!coll.has_non_element_item) {
      n += coll.items.size();
      continue;
    }
    for (const Item& item : coll.items) {
      if (item->is_element()) ++n;
    }
  }
  return n;
}

const xml::Node& LocalStore::View() const {
  if (view_ == nullptr || view_version_ != version_) {
    view_ = xml::Node::Element("store");
    for (const auto& [id, coll] : Ordered()) {
      xml::Node* data = view_->AddElement("data");
      data->SetAttr("id", *id);
      for (const Item& item : coll->items) {
        // Non-element items ride along: they are never *emitted*, but a
        // "[.=text]" predicate over <data> must see the full document.
        ++internal::MutableStats().items_cloned;
        data->AddChild(item->Clone());
      }
    }
    view_version_ = version_;
  }
  return *view_;
}

void LocalStore::AppendItems(const Collection& coll, bool clone,
                             algebra::ItemSet* out) {
  if (!clone && !coll.has_non_element_item) {
    out->insert(out->end(), coll.items.begin(), coll.items.end());
    return;
  }
  for (const Item& item : coll.items) {
    if (!item->is_element()) continue;
    out->push_back(clone ? CloneItem(*item) : item);
  }
}

bool LocalStore::FetchFast(const xml::XPath& xp,
                           algebra::ItemSet* out) const {
  if (xp.StepCount() == 0 || xp.StepIsAttr(0) || xp.StepIsDescendant(0) ||
      xp.StepName(0) != "data") {
    return false;
  }
  // Select the collections the first step names.
  std::vector<std::pair<const std::string*, const Collection*>> selected;
  if (xp.StepHasNoPredicates(0)) {
    selected = Ordered();
  } else {
    bool attr_operand = false;
    auto literal = xp.StepKeyEqLiteral(0, "id", &attr_operand);
    if (!literal) return false;  // exotic predicate: let the view answer
    double unused;
    if (mqp::ParseDouble(*literal, &unused)) {
      // Numeric-aware '=' ("0245" matches id "245"): scan for matches
      // first (unsorted), then order just those few by insertion seq —
      // not the whole store per fetch.
      for (const auto& [id, coll] : collections_) {
        if (xml::XPath::LiteralEquals(id, *literal)) {
          selected.emplace_back(&id, &coll);
        }
      }
      std::sort(selected.begin(), selected.end(),
                [](const auto& a, const auto& b) {
                  return a.second->seq < b.second->seq;
                });
    } else {
      auto exact = collections_.find(*literal);
      if (exact != collections_.end()) {
        selected.emplace_back(&exact->first, &exact->second);
      }
    }
    if (!attr_operand) {
      // Legacy operand form "[id=...]": an element item named "id" would
      // shadow the id attribute under the old document semantics — and
      // could *select* a collection the attribute match missed, so every
      // collection disqualifies the fast path, not just the selected.
      for (const auto& [id, coll] : collections_) {
        if (coll.has_id_element_item) return false;
      }
    }
  }
  if (xp.StepCount() == 1) {
    for (const auto& [id, coll] : selected) {
      AppendItems(*coll, /*clone=*/false, out);
    }
    return true;
  }
  // Positions in the first trailing step count across a collection's
  // items, and an attribute first step tests the <data> element itself;
  // per-item evaluation can see neither. Everything deeper is relative
  // to one item in both worlds.
  if (xp.StepHasPositionPredicate(1) || xp.StepIsAttr(1)) return false;
  const xml::XPath suffix = xp.SuffixFrom(1);
  for (const auto& [id, coll] : selected) {
    for (const Item& item : coll->items) {
      if (!item->is_element()) continue;
      for (const xml::Node* m : suffix.Eval(*item)) {
        // The legacy quirk, preserved: a matched element named "data"
        // carrying an id attribute is treated as a collection and emits
        // its element children instead of itself.
        if (m->name() == "data" && m->Attr("id").has_value()) {
          for (const auto& c : m->children()) {
            if (!c->is_element()) continue;
            out->push_back(Item(item, c.get()));
          }
        } else {
          // Aliasing share: the returned item borrows the match and
          // keeps the owning item alive — still zero clones.
          out->push_back(m == item.get() ? item : Item(item, m));
        }
      }
    }
  }
  return true;
}

Result<algebra::ItemSet> LocalStore::Fetch(const std::string& url,
                                           const std::string& xpath) {
  (void)url;
  const bool shared = use_shared_store();
  algebra::ItemSet out;
  if (xpath.empty()) {
    for (const auto& [id, coll] : Ordered()) {
      AppendItems(*coll, /*clone=*/!shared, &out);
    }
    return out;
  }
  if (shared) {
    auto parsed = xml::XPath::Parse(xpath);
    if (parsed.ok() && FetchFast(*parsed, &out)) return out;
  }
  // The reference path: the store document root is <store>; collection
  // XPaths in the paper are written relative to it ("/data[id=245]"), so
  // evaluate each step against the children of <store>. Matches are
  // deep-copied out, as the pre-shared-store engine did.
  const std::string full =
      xpath.front() == '/' ? "/store" + xpath : "/store/" + xpath;
  MQP_ASSIGN_OR_RETURN(auto xp, xml::XPath::Parse(full));
  for (const xml::Node* match : xp.Eval(View())) {
    if (match->name() == "data" && match->Attr("id").has_value()) {
      for (const auto& c : match->children()) {
        if (c->is_element()) out.push_back(CloneItem(*c));
      }
    } else {
      out.push_back(CloneItem(*match));
    }
  }
  return out;
}

}  // namespace mqp::engine
