// Physical operator interface (Volcano-style Open/Next/Close iterators).
//
// The engine evaluates *locally evaluable* sub-plans: by the time a plan
// node reaches the engine, all of its leaves must be constant XML data or
// URLs resolvable through a DataSource (paper Figure 2: the query engine
// receives sub-plans selected by the policy manager).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "algebra/plan.h"
#include "common/result.h"

namespace mqp::engine {

/// \brief Per-thread engine instrumentation (plain counters, no
/// atomics). The engine is single-threaded *per peer*: the transport
/// serializes each peer's handlers onto one thread at a time, while
/// shared immutable items remain readable cross-thread (DESIGN.md §8).
/// Stats() is therefore thread-local — a handler snapshots it before and
/// after an evaluation and works with the deltas, the same pattern as
/// xml::DomNodesBuilt(); the peer mirrors its deltas into PeerCounters
/// and NetStats, which the transport shards per thread.
struct EngineStats {
  /// Whole data items deep-copied (LocalStore view rebuilds, cloning-mode
  /// fetches, deep-XPath materialization). Zero on the shared steady path.
  uint64_t items_cloned = 0;
  /// Keys resolved by a compiled FieldAccessor's direct child walk
  /// (join build/probe, group-by, aggregate value, top-N order keys).
  uint64_t field_accessor_hits = 0;
  /// Probes of structural-hash tables (distinct union, difference).
  uint64_t structural_hash_probes = 0;
  /// Wall-clock nanoseconds inside Evaluate (steady clock, independent of
  /// simulated time).
  uint64_t engine_eval_ns = 0;
  /// Rows a distributed top-k proved dead without shipping: bound-cut
  /// tails at bounded fetch/subquery servers (engine/topk_heap.h) plus
  /// migration-path truncations. Never incremented by plain TopNOp, so
  /// the ablated ship-everything reference stays at zero.
  uint64_t topk_rows_pruned = 0;
  /// Evaluations aborted mid-stream because their ScopedEvalBudget ran
  /// dry (DESIGN.md §11): the operator checkpoint that crossed the limit
  /// failed the evaluation with kTimeout so a partial could be delivered.
  uint64_t budget_aborts = 0;
};

/// Cumulative engine counters (monotonic).
const EngineStats& Stats();

namespace internal {
EngineStats& MutableStats();
}  // namespace internal

/// Ablation knob (the PR 3/4 pattern): false restores the cloning
/// reference — LocalStore::Fetch materializes a DOM view and deep-copies
/// every returned item, as the pre-shared-store engine did. Equivalence
/// tests and bench C10 compare the two modes.
void set_use_shared_store(bool on);
bool use_shared_store();

/// \brief Per-evaluation resource budget (DESIGN.md §11). The peer
/// installs one thread-locally (ScopedEvalBudget) around each engine
/// entry — sub-plan evaluation, fetch/subquery service — after
/// converting a query's remaining deadline into a deterministic row
/// allowance. Operators charge the budget at their checkpoints (source
/// scans, join outputs, the Evaluate drain); the first charge past a
/// limit fails the evaluation with kTimeout, counted in
/// EngineStats::budget_aborts, so the caller delivers a partial promptly
/// instead of burning the core. Zero fields are unlimited.
struct EvalLimits {
  /// Rows produced across row checkpoints (source-scan and join output).
  uint64_t max_rows = 0;
  /// Serialized bytes of rows delivered from Evaluate's drain.
  uint64_t max_bytes = 0;
  /// Wall-clock cap on one evaluation (steady clock, probed every 128
  /// rows). Non-deterministic by nature — simulated backends use the row
  /// allowance instead; this backstops wall-clock runtimes.
  double max_eval_seconds = 0;
};

namespace internal {
/// Thread-local active-budget bookkeeping behind ScopedEvalBudget.
struct BudgetState {
  bool active = false;
  bool rows_limited = false;
  bool bytes_limited = false;
  bool time_limited = false;
  bool exhausted = false;
  uint64_t rows_left = 0;
  uint64_t bytes_left = 0;
  uint32_t probe_countdown = 0;
  std::chrono::steady_clock::time_point deadline{};
};
BudgetState& Budget();
}  // namespace internal

/// RAII: installs `limits` as the calling thread's active evaluation
/// budget. Guards nest; the innermost wins and destruction restores the
/// enclosing budget (or no budget). Default-constructed EvalLimits
/// installs "unlimited", which is how a scope opts out beneath an outer
/// budget.
class ScopedEvalBudget {
 public:
  explicit ScopedEvalBudget(const EvalLimits& limits);
  ~ScopedEvalBudget();
  ScopedEvalBudget(const ScopedEvalBudget&) = delete;
  ScopedEvalBudget& operator=(const ScopedEvalBudget&) = delete;

 private:
  internal::BudgetState saved_;
};

/// \brief Pull-based physical operator.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the operator; may recurse into inputs.
  virtual Status Open() = 0;

  /// Produces the next item, or nullopt at end-of-stream.
  virtual Result<std::optional<algebra::Item>> Next() = 0;

  /// Releases resources; idempotent.
  virtual void Close() = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// \brief Resolves URL leaves to local data during evaluation. A peer's
/// local store implements this; the default (nullptr) makes URL leaves an
/// error.
class DataSource {
 public:
  virtual ~DataSource() = default;

  /// Fetches the collection identified by (url, xpath).
  virtual Result<algebra::ItemSet> Fetch(const std::string& url,
                                         const std::string& xpath) = 0;
};

/// \brief Builds a physical operator tree for `plan`.
///
/// Fails with Unresolved if the plan contains URN leaves or URL leaves
/// that `source` cannot serve. An Or node evaluates its first alternative
/// (the optimizer eliminates Or nodes before execution; keeping a fallback
/// here makes partially optimized plans still runnable).
Result<OperatorPtr> BuildOperator(const algebra::PlanNode& plan,
                                  DataSource* source);

/// \brief Convenience: build + drain into a materialized ItemSet.
Result<algebra::ItemSet> Evaluate(const algebra::PlanNode& plan,
                                  DataSource* source = nullptr);

}  // namespace mqp::engine
