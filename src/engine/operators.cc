#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/strings.h"
#include "engine/operator.h"
#include "xml/writer.h"

namespace mqp::engine {

namespace {

using algebra::Expr;
using algebra::ExprPtr;
using algebra::Item;
using algebra::ItemSet;
using algebra::OpType;
using algebra::PlanNode;

/// Scans a materialized item set.
class DataScan : public Operator {
 public:
  explicit DataScan(ItemSet items) : items_(std::move(items)) {}

  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }

  Result<std::optional<Item>> Next() override {
    if (pos_ >= items_.size()) return std::optional<Item>();
    return std::optional<Item>(items_[pos_++]);
  }

  void Close() override {}

 private:
  ItemSet items_;
  size_t pos_ = 0;
};

/// Filters by a boolean predicate.
class Filter : public Operator {
 public:
  Filter(ExprPtr pred, OperatorPtr input)
      : pred_(std::move(pred)), input_(std::move(input)) {}

  Status Open() override { return input_->Open(); }

  Result<std::optional<Item>> Next() override {
    while (true) {
      MQP_ASSIGN_OR_RETURN(auto item, input_->Next());
      if (!item) return std::optional<Item>();
      if (pred_ == nullptr || pred_->EvalBool(**item)) return item;
    }
  }

  void Close() override { input_->Close(); }

 private:
  ExprPtr pred_;
  OperatorPtr input_;
};

/// Keeps only the listed child fields of each item.
class Projector : public Operator {
 public:
  Projector(std::vector<std::string> fields, OperatorPtr input)
      : fields_(std::move(fields)), input_(std::move(input)) {}

  Status Open() override { return input_->Open(); }

  Result<std::optional<Item>> Next() override {
    MQP_ASSIGN_OR_RETURN(auto item, input_->Next());
    if (!item) return std::optional<Item>();
    auto out = xml::Node::Element((*item)->name());
    for (const auto& [k, v] : (*item)->attrs()) {
      out->SetAttr(k, v);
    }
    for (const auto& f : fields_) {
      for (const xml::Node* c : (*item)->Children(f)) {
        out->AddChild(c->Clone());
      }
    }
    return std::optional<Item>(Item(out.release()));
  }

  void Close() override { input_->Close(); }

 private:
  std::vector<std::string> fields_;
  OperatorPtr input_;
};

// Merges two matched items into one element (left's name; children and
// attributes of both, right's attributes prefixed on collision).
Item MergeItems(const xml::Node& left, const xml::Node& right) {
  auto out = xml::Node::Element(left.name());
  for (const auto& [k, v] : left.attrs()) out->SetAttr(k, v);
  for (const auto& [k, v] : right.attrs()) {
    if (out->Attr(k).has_value()) {
      out->SetAttr("right." + k, v);
    } else {
      out->SetAttr(k, v);
    }
  }
  for (const auto& c : left.children()) out->AddChild(c->Clone());
  for (const auto& c : right.children()) out->AddChild(c->Clone());
  return Item(out.release());
}

// Returns the field paths of an equi-join condition, or nullopt for a
// general theta join.
struct EquiKeys {
  std::string left;
  std::string right;
};
std::optional<EquiKeys> ExtractEquiKeys(const ExprPtr& cond) {
  if (cond == nullptr || cond->kind() != Expr::Kind::kCompare ||
      cond->compare_op() != algebra::CompareOp::kEq) {
    return std::nullopt;
  }
  const ExprPtr& l = cond->lhs();
  const ExprPtr& r = cond->rhs();
  if (l->kind() != Expr::Kind::kField || r->kind() != Expr::Kind::kField) {
    return std::nullopt;
  }
  if (l->side() == algebra::Side::kLeft &&
      r->side() == algebra::Side::kRight) {
    return EquiKeys{l->field_path(), r->field_path()};
  }
  if (l->side() == algebra::Side::kRight &&
      r->side() == algebra::Side::kLeft) {
    return EquiKeys{r->field_path(), l->field_path()};
  }
  return std::nullopt;
}

std::optional<std::string> FieldOf(const xml::Node& item,
                                   const std::string& path) {
  const xml::Node* c = item.Child(path);
  if (c != nullptr) return c->InnerText();
  // Fall back to expression machinery for nested paths.
  auto v = Expr::Field(path)->EvalValue(item);
  if (!v) return std::nullopt;
  return v->text;
}

/// Hash join for equi conditions; falls back to nested loops otherwise.
/// In `left_outer` mode, left items with no match pass through unchanged
/// (§2's A ⟖ B).
class Join : public Operator {
 public:
  Join(ExprPtr cond, OperatorPtr left, OperatorPtr right,
       bool left_outer = false)
      : cond_(std::move(cond)),
        left_(std::move(left)),
        right_(std::move(right)),
        left_outer_(left_outer),
        keys_(ExtractEquiKeys(cond_)) {}

  Status Open() override {
    MQP_RETURN_IF_ERROR(left_->Open());
    MQP_RETURN_IF_ERROR(right_->Open());
    // Materialize the right (build) side.
    build_.clear();
    hash_.clear();
    while (true) {
      MQP_ASSIGN_OR_RETURN(auto item, right_->Next());
      if (!item) break;
      build_.push_back(*item);
    }
    if (keys_) {
      for (size_t i = 0; i < build_.size(); ++i) {
        auto key = FieldOf(*build_[i], keys_->right);
        if (key) hash_[*key].push_back(i);
      }
    }
    matches_.clear();
    match_pos_ = 0;
    return Status::OK();
  }

  Result<std::optional<Item>> Next() override {
    while (true) {
      if (match_pos_ < matches_.size()) {
        const Item& r = build_[matches_[match_pos_++]];
        return std::optional<Item>(MergeItems(*probe_, *r));
      }
      MQP_ASSIGN_OR_RETURN(auto item, left_->Next());
      if (!item) return std::optional<Item>();
      probe_ = *item;
      matches_.clear();
      match_pos_ = 0;
      if (keys_) {
        auto key = FieldOf(*probe_, keys_->left);
        if (key) {
          auto it = hash_.find(*key);
          if (it != hash_.end()) matches_ = it->second;
        }
      } else {
        for (size_t i = 0; i < build_.size(); ++i) {
          if (cond_ == nullptr || cond_->EvalBool(*probe_, build_[i].get())) {
            matches_.push_back(i);
          }
        }
      }
      if (left_outer_ && matches_.empty()) {
        return std::optional<Item>(probe_);  // unmatched left passes through
      }
    }
  }

  void Close() override {
    left_->Close();
    right_->Close();
  }

 private:
  ExprPtr cond_;
  OperatorPtr left_;
  OperatorPtr right_;
  bool left_outer_;
  std::optional<EquiKeys> keys_;
  ItemSet build_;
  std::unordered_map<std::string, std::vector<size_t>> hash_;
  Item probe_;
  std::vector<size_t> matches_;
  size_t match_pos_ = 0;
};

/// Union of n inputs: bag semantics by default, set semantics (structural
/// deduplication) when `distinct` is set.
class UnionAll : public Operator {
 public:
  UnionAll(std::vector<OperatorPtr> inputs, bool distinct)
      : inputs_(std::move(inputs)), distinct_(distinct) {}

  Status Open() override {
    for (auto& in : inputs_) {
      MQP_RETURN_IF_ERROR(in->Open());
    }
    current_ = 0;
    seen_.clear();
    return Status::OK();
  }

  Result<std::optional<Item>> Next() override {
    while (current_ < inputs_.size()) {
      MQP_ASSIGN_OR_RETURN(auto item, inputs_[current_]->Next());
      if (item) {
        if (distinct_ && !seen_.insert(xml::Serialize(**item)).second) {
          continue;  // duplicate of an already-produced item
        }
        return item;
      }
      ++current_;
    }
    return std::optional<Item>();
  }

  void Close() override {
    for (auto& in : inputs_) in->Close();
  }

 private:
  std::vector<OperatorPtr> inputs_;
  bool distinct_;
  size_t current_ = 0;
  std::unordered_set<std::string> seen_;
};

/// Multiset difference: left items minus one occurrence per matching right
/// item (match = structural equality of the serialized form).
class Difference : public Operator {
 public:
  Difference(OperatorPtr left, OperatorPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}

  Status Open() override {
    MQP_RETURN_IF_ERROR(left_->Open());
    MQP_RETURN_IF_ERROR(right_->Open());
    counts_.clear();
    while (true) {
      MQP_ASSIGN_OR_RETURN(auto item, right_->Next());
      if (!item) break;
      counts_[xml::Serialize(**item)]++;
    }
    return Status::OK();
  }

  Result<std::optional<Item>> Next() override {
    while (true) {
      MQP_ASSIGN_OR_RETURN(auto item, left_->Next());
      if (!item) return std::optional<Item>();
      auto it = counts_.find(xml::Serialize(**item));
      if (it != counts_.end() && it->second > 0) {
        --it->second;
        continue;
      }
      return item;
    }
  }

  void Close() override {
    left_->Close();
    right_->Close();
  }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::unordered_map<std::string, int> counts_;
};

/// Blocking aggregation with optional group-by.
///
/// Output items have the form
///   <agg><group>G</group><count>N</count></agg>
/// (the <group> child is omitted without a group-by; the value element is
/// named after the function).
class Aggregator : public Operator {
 public:
  Aggregator(algebra::AggFunc func, std::string field, std::string group_by,
             OperatorPtr input)
      : func_(func),
        field_(std::move(field)),
        group_by_(std::move(group_by)),
        input_(std::move(input)) {}

  Status Open() override {
    MQP_RETURN_IF_ERROR(input_->Open());
    groups_.clear();
    // std::map: deterministic group order.
    while (true) {
      MQP_ASSIGN_OR_RETURN(auto item, input_->Next());
      if (!item) break;
      std::string group;
      if (!group_by_.empty()) {
        group = FieldOf(**item, group_by_).value_or("");
      }
      State& st = groups_[group];
      ++st.count;
      if (!field_.empty()) {
        auto raw = FieldOf(**item, field_);
        double v = 0;
        if (raw && mqp::ParseDouble(*raw, &v)) {
          st.sum += v;
          if (st.numeric_count == 0 || v < st.min) st.min = v;
          if (st.numeric_count == 0 || v > st.max) st.max = v;
          ++st.numeric_count;
        }
      }
    }
    it_ = groups_.begin();
    // With no input rows and no group-by, still emit one row (count=0).
    if (groups_.empty() && group_by_.empty()) {
      groups_[""] = State{};
      it_ = groups_.begin();
    }
    return Status::OK();
  }

  Result<std::optional<Item>> Next() override {
    if (it_ == groups_.end()) return std::optional<Item>();
    const auto& [group, st] = *it_;
    ++it_;
    auto out = xml::Node::Element("agg");
    if (!group_by_.empty()) {
      out->AddElementWithText("group", group);
    }
    double value = 0;
    switch (func_) {
      case algebra::AggFunc::kCount:
        value = static_cast<double>(st.count);
        break;
      case algebra::AggFunc::kSum:
        value = st.sum;
        break;
      case algebra::AggFunc::kMin:
        value = st.numeric_count > 0 ? st.min : 0;
        break;
      case algebra::AggFunc::kMax:
        value = st.numeric_count > 0 ? st.max : 0;
        break;
      case algebra::AggFunc::kAvg:
        value = st.numeric_count > 0 ? st.sum / st.numeric_count : 0;
        break;
    }
    out->AddElementWithText(std::string(algebra::AggFuncName(func_)),
                            mqp::FormatDouble(value));
    return std::optional<Item>(Item(out.release()));
  }

  void Close() override { input_->Close(); }

 private:
  struct State {
    uint64_t count = 0;
    uint64_t numeric_count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
  };

  algebra::AggFunc func_;
  std::string field_;
  std::string group_by_;
  OperatorPtr input_;
  std::map<std::string, State> groups_;
  std::map<std::string, State>::const_iterator it_;
};

/// Blocking order-by + limit.
class TopNOp : public Operator {
 public:
  TopNOp(uint64_t n, std::string order_field, bool ascending,
         OperatorPtr input)
      : n_(n),
        order_field_(std::move(order_field)),
        ascending_(ascending),
        input_(std::move(input)) {}

  Status Open() override {
    MQP_RETURN_IF_ERROR(input_->Open());
    items_.clear();
    while (true) {
      MQP_ASSIGN_OR_RETURN(auto item, input_->Next());
      if (!item) break;
      items_.push_back(*item);
    }
    auto key = [this](const Item& item) {
      return algebra::Value{FieldOf(*item, order_field_).value_or("")};
    };
    std::stable_sort(items_.begin(), items_.end(),
                     [&](const Item& a, const Item& b) {
                       const int cmp = key(a).Compare(key(b));
                       return ascending_ ? cmp < 0 : cmp > 0;
                     });
    if (items_.size() > n_) items_.resize(n_);
    pos_ = 0;
    return Status::OK();
  }

  Result<std::optional<Item>> Next() override {
    if (pos_ >= items_.size()) return std::optional<Item>();
    return std::optional<Item>(items_[pos_++]);
  }

  void Close() override { input_->Close(); }

 private:
  uint64_t n_;
  std::string order_field_;
  bool ascending_;
  OperatorPtr input_;
  ItemSet items_;
  size_t pos_ = 0;
};

}  // namespace

Result<OperatorPtr> BuildOperator(const PlanNode& plan, DataSource* source) {
  switch (plan.type()) {
    case OpType::kXmlData:
      return OperatorPtr(new DataScan(plan.items()));
    case OpType::kUrl: {
      if (source == nullptr) {
        return Status::Unresolved("no data source for URL " + plan.url());
      }
      MQP_ASSIGN_OR_RETURN(auto items, source->Fetch(plan.url(), plan.xpath()));
      return OperatorPtr(new DataScan(std::move(items)));
    }
    case OpType::kUrn:
      return Status::Unresolved("plan contains unresolved URN " + plan.urn());
    case OpType::kSelect: {
      MQP_ASSIGN_OR_RETURN(auto input, BuildOperator(*plan.child(0), source));
      return OperatorPtr(new Filter(plan.expr(), std::move(input)));
    }
    case OpType::kProject: {
      MQP_ASSIGN_OR_RETURN(auto input, BuildOperator(*plan.child(0), source));
      return OperatorPtr(new Projector(plan.fields(), std::move(input)));
    }
    case OpType::kJoin:
    case OpType::kLeftOuterJoin: {
      MQP_ASSIGN_OR_RETURN(auto left, BuildOperator(*plan.child(0), source));
      MQP_ASSIGN_OR_RETURN(auto right, BuildOperator(*plan.child(1), source));
      return OperatorPtr(
          new Join(plan.expr(), std::move(left), std::move(right),
                   plan.type() == OpType::kLeftOuterJoin));
    }
    case OpType::kUnion: {
      std::vector<OperatorPtr> inputs;
      for (const auto& c : plan.children()) {
        MQP_ASSIGN_OR_RETURN(auto in, BuildOperator(*c, source));
        inputs.push_back(std::move(in));
      }
      return OperatorPtr(new UnionAll(std::move(inputs), plan.distinct()));
    }
    case OpType::kOr: {
      // The optimizer normally eliminates Or; evaluate the first
      // alternative as a safe default (A | B -> A).
      if (plan.children().empty()) {
        return Status::Internal("Or node with no alternatives");
      }
      return BuildOperator(*plan.child(0), source);
    }
    case OpType::kDifference: {
      MQP_ASSIGN_OR_RETURN(auto left, BuildOperator(*plan.child(0), source));
      MQP_ASSIGN_OR_RETURN(auto right, BuildOperator(*plan.child(1), source));
      return OperatorPtr(new Difference(std::move(left), std::move(right)));
    }
    case OpType::kAggregate: {
      MQP_ASSIGN_OR_RETURN(auto input, BuildOperator(*plan.child(0), source));
      return OperatorPtr(new Aggregator(plan.agg_func(), plan.agg_field(),
                                        plan.group_by(), std::move(input)));
    }
    case OpType::kTopN: {
      MQP_ASSIGN_OR_RETURN(auto input, BuildOperator(*plan.child(0), source));
      return OperatorPtr(new TopNOp(plan.limit(), plan.order_field(),
                                    plan.ascending(), std::move(input)));
    }
    case OpType::kDisplay:
      // Display is a routing pseudo-operator; evaluate its input.
      return BuildOperator(*plan.child(0), source);
  }
  return Status::Internal("unhandled operator type");
}

Result<algebra::ItemSet> Evaluate(const PlanNode& plan, DataSource* source) {
  MQP_ASSIGN_OR_RETURN(auto op, BuildOperator(plan, source));
  MQP_RETURN_IF_ERROR(op->Open());
  algebra::ItemSet out;
  while (true) {
    MQP_ASSIGN_OR_RETURN(auto item, op->Next());
    if (!item) break;
    out.push_back(*item);
  }
  op->Close();
  return out;
}

}  // namespace mqp::engine
