#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/strings.h"
#include "engine/field_accessor.h"
#include "engine/operator.h"
#include "engine/topk_heap.h"
#include "xml/writer.h"

namespace mqp::engine {

namespace {
// Thread-local (see EngineStats): evaluations on different handler
// threads tally independently; every consumer reads deltas on its own
// thread. The shared-store knob stays a plain global — it is a test
// ablation flipped only while the whole process is quiescent.
thread_local EngineStats g_stats;
bool g_use_shared_store = true;
// The active evaluation budget (DESIGN.md §11); inactive by default so
// unbudgeted evaluations pay one boolean test per checkpoint.
thread_local internal::BudgetState g_budget;

// Steady-clock probes are amortized: the wall-clock limit is only
// consulted every this many row charges.
constexpr uint32_t kTimeProbeInterval = 128;

Status BudgetExhausted() {
  if (!g_budget.exhausted) {
    g_budget.exhausted = true;
    ++g_stats.budget_aborts;  // first trip only: one abort per budget
  }
  return Status::Timeout("evaluation budget exhausted");
}

// Charges one produced row against the active budget.
Status ChargeRow() {
  internal::BudgetState& b = g_budget;
  if (!b.active) return Status::OK();
  if (b.exhausted) return Status::Timeout("evaluation budget exhausted");
  if (b.rows_limited) {
    if (b.rows_left == 0) return BudgetExhausted();
    --b.rows_left;
  }
  if (b.time_limited && --b.probe_countdown == 0) {
    b.probe_countdown = kTimeProbeInterval;
    if (std::chrono::steady_clock::now() >= b.deadline) {
      return BudgetExhausted();
    }
  }
  return Status::OK();
}

// Charges a delivered item's serialized size against the byte limit.
Status ChargeItemBytes(const algebra::Item& item) {
  internal::BudgetState& b = g_budget;
  if (!b.active || !b.bytes_limited) return Status::OK();
  if (b.exhausted) return Status::Timeout("evaluation budget exhausted");
  const uint64_t bytes = xml::SerializedSize(*item);
  if (bytes > b.bytes_left) return BudgetExhausted();
  b.bytes_left -= bytes;
  return Status::OK();
}
}  // namespace

const EngineStats& Stats() { return g_stats; }

namespace internal {
EngineStats& MutableStats() { return g_stats; }

BudgetState& Budget() { return g_budget; }
}  // namespace internal

void set_use_shared_store(bool on) { g_use_shared_store = on; }
bool use_shared_store() { return g_use_shared_store; }

ScopedEvalBudget::ScopedEvalBudget(const EvalLimits& limits)
    : saved_(g_budget) {
  internal::BudgetState b;
  b.rows_limited = limits.max_rows > 0;
  b.rows_left = limits.max_rows;
  b.bytes_limited = limits.max_bytes > 0;
  b.bytes_left = limits.max_bytes;
  b.time_limited = limits.max_eval_seconds > 0;
  if (b.time_limited) {
    b.deadline = std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(limits.max_eval_seconds));
  }
  b.probe_countdown = kTimeProbeInterval;
  b.active = b.rows_limited || b.bytes_limited || b.time_limited;
  g_budget = b;
}

ScopedEvalBudget::~ScopedEvalBudget() { g_budget = saved_; }

namespace {

using algebra::Expr;
using algebra::ExprPtr;
using algebra::Item;
using algebra::ItemSet;
using algebra::OpType;
using algebra::PlanNode;

/// Scans a materialized item set.
class DataScan : public Operator {
 public:
  explicit DataScan(ItemSet items) : items_(std::move(items)) {}

  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }

  Result<std::optional<Item>> Next() override {
    if (pos_ >= items_.size()) return std::optional<Item>();
    MQP_RETURN_IF_ERROR(ChargeRow());
    return std::optional<Item>(items_[pos_++]);
  }

  void Close() override {}

 private:
  ItemSet items_;
  size_t pos_ = 0;
};

/// Filters by a boolean predicate.
class Filter : public Operator {
 public:
  Filter(ExprPtr pred, OperatorPtr input)
      : pred_(std::move(pred)), input_(std::move(input)) {}

  Status Open() override { return input_->Open(); }

  Result<std::optional<Item>> Next() override {
    while (true) {
      MQP_ASSIGN_OR_RETURN(auto item, input_->Next());
      if (!item) return std::optional<Item>();
      if (pred_ == nullptr || pred_->EvalBool(**item)) return item;
    }
  }

  void Close() override { input_->Close(); }

 private:
  ExprPtr pred_;
  OperatorPtr input_;
};

/// Keeps only the listed child fields of each item.
class Projector : public Operator {
 public:
  Projector(std::vector<std::string> fields, OperatorPtr input)
      : fields_(std::move(fields)), input_(std::move(input)) {}

  Status Open() override { return input_->Open(); }

  Result<std::optional<Item>> Next() override {
    MQP_ASSIGN_OR_RETURN(auto item, input_->Next());
    if (!item) return std::optional<Item>();
    auto out = xml::Node::Element((*item)->name());
    for (const auto& [k, v] : (*item)->attrs()) {
      out->SetAttr(k, v);
    }
    for (const auto& f : fields_) {
      for (const xml::Node* c : (*item)->Children(f)) {
        out->AddChild(c->Clone());
      }
    }
    return std::optional<Item>(Item(out.release()));
  }

  void Close() override { input_->Close(); }

 private:
  std::vector<std::string> fields_;
  OperatorPtr input_;
};

// Merges two matched items into one element (left's name; children and
// attributes of both, right's attributes prefixed on collision).
Item MergeItems(const xml::Node& left, const xml::Node& right) {
  auto out = xml::Node::Element(left.name());
  for (const auto& [k, v] : left.attrs()) out->SetAttr(k, v);
  for (const auto& [k, v] : right.attrs()) {
    if (out->Attr(k).has_value()) {
      out->SetAttr("right." + k, v);
    } else {
      out->SetAttr(k, v);
    }
  }
  for (const auto& c : left.children()) out->AddChild(c->Clone());
  for (const auto& c : right.children()) out->AddChild(c->Clone());
  return Item(out.release());
}

// Returns the field paths of an equi-join condition, or nullopt for a
// general theta join.
struct EquiKeys {
  std::string left;
  std::string right;
};
std::optional<EquiKeys> ExtractEquiKeys(const ExprPtr& cond) {
  if (cond == nullptr || cond->kind() != Expr::Kind::kCompare ||
      cond->compare_op() != algebra::CompareOp::kEq) {
    return std::nullopt;
  }
  const ExprPtr& l = cond->lhs();
  const ExprPtr& r = cond->rhs();
  if (l->kind() != Expr::Kind::kField || r->kind() != Expr::Kind::kField) {
    return std::nullopt;
  }
  if (l->side() == algebra::Side::kLeft &&
      r->side() == algebra::Side::kRight) {
    return EquiKeys{l->field_path(), r->field_path()};
  }
  if (l->side() == algebra::Side::kRight &&
      r->side() == algebra::Side::kLeft) {
    return EquiKeys{r->field_path(), l->field_path()};
  }
  return std::nullopt;
}

/// A hash table over shared items keyed on xml::StructuralHash with
/// xml::Node::StructurallyEquals verification — the engine's set
/// semantics, replacing the old xml::Serialize string keys. Entries hold
/// shared refs (no copies) plus a per-entry count for multiset use.
class ItemHashTable {
 public:
  void Clear() { buckets_.clear(); }

  /// Adds one occurrence of `item`; returns true if it was new.
  bool Add(const Item& item) {
    ++g_stats.structural_hash_probes;
    auto& bucket = buckets_[xml::StructuralHash(*item)];
    for (Entry& e : bucket) {
      if (e.item->StructurallyEquals(*item)) {
        ++e.count;
        return false;
      }
    }
    bucket.push_back(Entry{item, 1});
    return true;
  }

  /// Removes one occurrence structurally equal to `item`; returns true if
  /// one was present.
  bool RemoveOne(const Item& item) {
    ++g_stats.structural_hash_probes;
    auto it = buckets_.find(xml::StructuralHash(*item));
    if (it == buckets_.end()) return false;
    for (Entry& e : it->second) {
      if (e.count > 0 && e.item->StructurallyEquals(*item)) {
        --e.count;
        return true;
      }
    }
    return false;
  }

 private:
  struct Entry {
    Item item;  // shared ref: keeps the representative alive
    int count;
  };
  std::unordered_map<uint64_t, std::vector<Entry>> buckets_;
};

/// Hash join for equi conditions; falls back to nested loops otherwise.
/// In `left_outer` mode, left items with no match pass through unchanged
/// (§2's A ⟖ B). Build keys are extracted once with a compiled
/// FieldAccessor and decorated onto the build side; probes hash the
/// borrowed key view and then borrow the matching bucket by pointer.
class Join : public Operator {
 public:
  Join(ExprPtr cond, OperatorPtr left, OperatorPtr right,
       bool left_outer = false)
      : cond_(std::move(cond)),
        left_(std::move(left)),
        right_(std::move(right)),
        left_outer_(left_outer),
        keys_(ExtractEquiKeys(cond_)) {}

  Status Open() override {
    MQP_RETURN_IF_ERROR(left_->Open());
    MQP_RETURN_IF_ERROR(right_->Open());
    // Materialize the right (build) side.
    build_.clear();
    build_keys_.clear();
    hash_.clear();
    while (true) {
      MQP_ASSIGN_OR_RETURN(auto item, right_->Next());
      if (!item) break;
      build_.push_back(*item);
    }
    if (keys_) {
      probe_key_ = FieldAccessor(keys_->left);
      FieldAccessor build_key(keys_->right);
      build_keys_.resize(build_.size());
      for (size_t i = 0; i < build_.size(); ++i) {
        auto key = build_key.Eval(*build_[i]);
        if (!key) continue;
        build_keys_[i].assign(key->data(), key->size());
        hash_[std::hash<std::string_view>{}(*key)].push_back(i);
      }
    }
    matches_ = nullptr;
    match_pos_ = 0;
    return Status::OK();
  }

  Result<std::optional<Item>> Next() override {
    while (true) {
      if (matches_ != nullptr && match_pos_ < matches_->size()) {
        // Joins can amplify: charge merged outputs, not just source rows.
        MQP_RETURN_IF_ERROR(ChargeRow());
        const Item& r = build_[(*matches_)[match_pos_++]];
        return std::optional<Item>(MergeItems(*probe_, *r));
      }
      MQP_ASSIGN_OR_RETURN(auto item, left_->Next());
      if (!item) return std::optional<Item>();
      probe_ = *item;
      matches_ = nullptr;
      match_pos_ = 0;
      size_t match_count = 0;
      if (keys_) {
        auto key = probe_key_->Eval(*probe_);
        if (key) {
          auto it = hash_.find(std::hash<std::string_view>{}(*key));
          if (it != hash_.end()) {
            // Hash collisions are possible: verify the decorated build
            // keys first, and copy candidates out only when a collision
            // actually mixed keys into the bucket (the common bucket is
            // borrowed by pointer, never copied).
            bool exact = true;
            for (size_t i : it->second) {
              if (build_keys_[i] != *key) {
                exact = false;
                break;
              }
            }
            if (exact) {
              matches_ = &it->second;  // borrow the bucket: no copy
            } else {
              theta_matches_.clear();
              for (size_t i : it->second) {
                if (build_keys_[i] == *key) theta_matches_.push_back(i);
              }
              if (!theta_matches_.empty()) matches_ = &theta_matches_;
            }
            match_count = matches_ == nullptr ? 0 : matches_->size();
          }
        }
      } else {
        theta_matches_.clear();
        for (size_t i = 0; i < build_.size(); ++i) {
          if (cond_ == nullptr || cond_->EvalBool(*probe_, build_[i].get())) {
            theta_matches_.push_back(i);
          }
        }
        if (!theta_matches_.empty()) matches_ = &theta_matches_;
        match_count = theta_matches_.size();
      }
      if (left_outer_ && match_count == 0) {
        return std::optional<Item>(probe_);  // unmatched left passes through
      }
    }
  }

  void Close() override {
    left_->Close();
    right_->Close();
  }

 private:
  ExprPtr cond_;
  OperatorPtr left_;
  OperatorPtr right_;
  bool left_outer_;
  std::optional<EquiKeys> keys_;
  std::optional<FieldAccessor> probe_key_;
  ItemSet build_;
  std::vector<std::string> build_keys_;  // decorated once at Open()
  std::unordered_map<uint64_t, std::vector<size_t>> hash_;
  Item probe_;
  const std::vector<size_t>* matches_ = nullptr;  // borrowed bucket
  std::vector<size_t> theta_matches_;  // reused storage (capacity kept)
  size_t match_pos_ = 0;
};

/// Union of n inputs: bag semantics by default, set semantics (structural
/// deduplication via StructuralHash + StructurallyEquals over shared
/// items) when `distinct` is set.
class UnionAll : public Operator {
 public:
  UnionAll(std::vector<OperatorPtr> inputs, bool distinct)
      : inputs_(std::move(inputs)), distinct_(distinct) {}

  Status Open() override {
    for (auto& in : inputs_) {
      MQP_RETURN_IF_ERROR(in->Open());
    }
    current_ = 0;
    seen_.Clear();
    return Status::OK();
  }

  Result<std::optional<Item>> Next() override {
    while (current_ < inputs_.size()) {
      MQP_ASSIGN_OR_RETURN(auto item, inputs_[current_]->Next());
      if (item) {
        if (distinct_ && !seen_.Add(*item)) {
          continue;  // duplicate of an already-produced item
        }
        return item;
      }
      ++current_;
    }
    return std::optional<Item>();
  }

  void Close() override {
    for (auto& in : inputs_) in->Close();
  }

 private:
  std::vector<OperatorPtr> inputs_;
  bool distinct_;
  size_t current_ = 0;
  ItemHashTable seen_;
};

/// Multiset difference: left items minus one occurrence per matching right
/// item (match = structural equality, keyed by StructuralHash).
class Difference : public Operator {
 public:
  Difference(OperatorPtr left, OperatorPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}

  Status Open() override {
    MQP_RETURN_IF_ERROR(left_->Open());
    MQP_RETURN_IF_ERROR(right_->Open());
    counts_.Clear();
    while (true) {
      MQP_ASSIGN_OR_RETURN(auto item, right_->Next());
      if (!item) break;
      counts_.Add(*item);
    }
    return Status::OK();
  }

  Result<std::optional<Item>> Next() override {
    while (true) {
      MQP_ASSIGN_OR_RETURN(auto item, left_->Next());
      if (!item) return std::optional<Item>();
      if (counts_.RemoveOne(*item)) continue;
      return item;
    }
  }

  void Close() override {
    left_->Close();
    right_->Close();
  }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  ItemHashTable counts_;
};

/// Blocking aggregation with optional group-by.
///
/// Output items have the form
///   <agg><group>G</group><count>N</count></agg>
/// (the <group> child is omitted without a group-by; the value element is
/// named after the function).
class Aggregator : public Operator {
 public:
  Aggregator(algebra::AggFunc func, std::string field, std::string group_by,
             OperatorPtr input)
      : func_(func),
        field_(std::move(field)),
        group_by_(std::move(group_by)),
        input_(std::move(input)) {}

  Status Open() override {
    MQP_RETURN_IF_ERROR(input_->Open());
    groups_.clear();
    std::optional<FieldAccessor> group_key;
    std::optional<FieldAccessor> value_key;
    if (!group_by_.empty()) group_key.emplace(group_by_);
    if (!field_.empty()) value_key.emplace(field_);
    // std::map: deterministic group order.
    while (true) {
      MQP_ASSIGN_OR_RETURN(auto item, input_->Next());
      if (!item) break;
      std::string_view group;
      if (group_key) {
        group = group_key->Eval(**item).value_or(std::string_view());
      }
      auto it = groups_.find(group);
      if (it == groups_.end()) {
        it = groups_.emplace(std::string(group), State{}).first;
      }
      State& st = it->second;
      ++st.count;
      if (value_key) {
        auto raw = value_key->Eval(**item);
        double v = 0;
        if (raw && mqp::ParseDouble(*raw, &v)) {
          st.sum += v;
          if (st.numeric_count == 0 || v < st.min) st.min = v;
          if (st.numeric_count == 0 || v > st.max) st.max = v;
          ++st.numeric_count;
        }
      }
    }
    it_ = groups_.begin();
    // With no input rows and no group-by, still emit one row (count=0).
    if (groups_.empty() && group_by_.empty()) {
      groups_[""] = State{};
      it_ = groups_.begin();
    }
    return Status::OK();
  }

  Result<std::optional<Item>> Next() override {
    if (it_ == groups_.end()) return std::optional<Item>();
    const auto& [group, st] = *it_;
    ++it_;
    auto out = xml::Node::Element("agg");
    if (!group_by_.empty()) {
      out->AddElementWithText("group", group);
    }
    double value = 0;
    switch (func_) {
      case algebra::AggFunc::kCount:
        value = static_cast<double>(st.count);
        break;
      case algebra::AggFunc::kSum:
        value = st.sum;
        break;
      case algebra::AggFunc::kMin:
        value = st.numeric_count > 0 ? st.min : 0;
        break;
      case algebra::AggFunc::kMax:
        value = st.numeric_count > 0 ? st.max : 0;
        break;
      case algebra::AggFunc::kAvg:
        value = st.numeric_count > 0 ? st.sum / st.numeric_count : 0;
        break;
    }
    out->AddElementWithText(std::string(algebra::AggFuncName(func_)),
                            mqp::FormatDouble(value));
    return std::optional<Item>(Item(out.release()));
  }

  void Close() override { input_->Close(); }

 private:
  struct State {
    uint64_t count = 0;
    uint64_t numeric_count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
  };

  algebra::AggFunc func_;
  std::string field_;
  std::string group_by_;
  OperatorPtr input_;
  // Transparent comparator: group lookup by string_view, no per-item key
  // string until a group is actually new.
  std::map<std::string, State, std::less<>> groups_;
  std::map<std::string, State, std::less<>>::const_iterator it_;
};

/// Blocking order-by + limit over a TopKHeap: keys are extracted once
/// per item with a compiled accessor and decorated with the arrival
/// sequence (the stable_sort tie-break), and only the best n entries are
/// retained — O(N log n) instead of materialize-sort-truncate's
/// O(N log N) with keys re-extracted per comparison. An absent limit
/// (plain ORDER BY) keeps everything. The same heap — and the same
/// (key, leaf, idx) total order — drives the distributed top-k
/// coordinator, which is what makes the two paths bit-identical.
class TopNOp : public Operator {
 public:
  TopNOp(std::optional<uint64_t> n, std::string order_field, bool ascending,
         OperatorPtr input)
      : n_(n),
        order_field_(std::move(order_field)),
        ascending_(ascending),
        input_(std::move(input)) {}

  Status Open() override {
    MQP_RETURN_IF_ERROR(input_->Open());
    TopKHeap heap(n_, ascending_);
    FieldAccessor key(order_field_);
    uint64_t seq = 0;
    while (true) {
      MQP_ASSIGN_OR_RETURN(auto item, input_->Next());
      if (!item) break;
      const std::string_view k =
          key.Eval(**item).value_or(std::string_view());
      heap.Push(k, 0, seq++, *item);
    }
    out_ = heap.Finish();
    pos_ = 0;
    return Status::OK();
  }

  Result<std::optional<Item>> Next() override {
    if (pos_ >= out_.size()) return std::optional<Item>();
    return std::optional<Item>(out_[pos_++]);
  }

  void Close() override { input_->Close(); }

 private:
  std::optional<uint64_t> n_;
  std::string order_field_;
  bool ascending_;
  OperatorPtr input_;
  ItemSet out_;
  size_t pos_ = 0;
};

}  // namespace

Result<OperatorPtr> BuildOperator(const PlanNode& plan, DataSource* source) {
  switch (plan.type()) {
    case OpType::kXmlData:
      return OperatorPtr(new DataScan(plan.items()));
    case OpType::kUrl: {
      if (source == nullptr) {
        return Status::Unresolved("no data source for URL " + plan.url());
      }
      MQP_ASSIGN_OR_RETURN(auto items, source->Fetch(plan.url(), plan.xpath()));
      return OperatorPtr(new DataScan(std::move(items)));
    }
    case OpType::kUrn:
      return Status::Unresolved("plan contains unresolved URN " + plan.urn());
    case OpType::kSelect: {
      MQP_ASSIGN_OR_RETURN(auto input, BuildOperator(*plan.child(0), source));
      return OperatorPtr(new Filter(plan.expr(), std::move(input)));
    }
    case OpType::kProject: {
      MQP_ASSIGN_OR_RETURN(auto input, BuildOperator(*plan.child(0), source));
      return OperatorPtr(new Projector(plan.fields(), std::move(input)));
    }
    case OpType::kJoin:
    case OpType::kLeftOuterJoin: {
      MQP_ASSIGN_OR_RETURN(auto left, BuildOperator(*plan.child(0), source));
      MQP_ASSIGN_OR_RETURN(auto right, BuildOperator(*plan.child(1), source));
      return OperatorPtr(
          new Join(plan.expr(), std::move(left), std::move(right),
                   plan.type() == OpType::kLeftOuterJoin));
    }
    case OpType::kUnion: {
      std::vector<OperatorPtr> inputs;
      for (const auto& c : plan.children()) {
        MQP_ASSIGN_OR_RETURN(auto in, BuildOperator(*c, source));
        inputs.push_back(std::move(in));
      }
      return OperatorPtr(new UnionAll(std::move(inputs), plan.distinct()));
    }
    case OpType::kOr: {
      // The optimizer normally eliminates Or; evaluate the first
      // alternative as a safe default (A | B -> A).
      if (plan.children().empty()) {
        return Status::Internal("Or node with no alternatives");
      }
      return BuildOperator(*plan.child(0), source);
    }
    case OpType::kDifference: {
      MQP_ASSIGN_OR_RETURN(auto left, BuildOperator(*plan.child(0), source));
      MQP_ASSIGN_OR_RETURN(auto right, BuildOperator(*plan.child(1), source));
      return OperatorPtr(new Difference(std::move(left), std::move(right)));
    }
    case OpType::kAggregate: {
      MQP_ASSIGN_OR_RETURN(auto input, BuildOperator(*plan.child(0), source));
      return OperatorPtr(new Aggregator(plan.agg_func(), plan.agg_field(),
                                        plan.group_by(), std::move(input)));
    }
    case OpType::kTopN: {
      MQP_ASSIGN_OR_RETURN(auto input, BuildOperator(*plan.child(0), source));
      return OperatorPtr(new TopNOp(
          plan.has_limit() ? std::optional<uint64_t>(plan.limit())
                           : std::nullopt,
          plan.order_field(), plan.ascending(), std::move(input)));
    }
    case OpType::kDisplay:
      // Display is a routing pseudo-operator; evaluate its input.
      return BuildOperator(*plan.child(0), source);
  }
  return Status::Internal("unhandled operator type");
}

Result<algebra::ItemSet> Evaluate(const PlanNode& plan, DataSource* source) {
  const auto start = std::chrono::steady_clock::now();
  auto run = [&]() -> Result<algebra::ItemSet> {
    MQP_ASSIGN_OR_RETURN(auto op, BuildOperator(plan, source));
    MQP_RETURN_IF_ERROR(op->Open());
    algebra::ItemSet out;
    while (true) {
      MQP_ASSIGN_OR_RETURN(auto item, op->Next());
      if (!item) break;
      MQP_RETURN_IF_ERROR(ChargeItemBytes(*item));
      out.push_back(*item);
    }
    op->Close();
    return out;
  };
  auto result = run();
  g_stats.engine_eval_ns += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return result;
}

}  // namespace mqp::engine
