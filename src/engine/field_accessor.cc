#include "engine/field_accessor.h"

#include "engine/operator.h"

namespace mqp::engine {

namespace {

bool IsPlainNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
         c == ':';
}

bool IsPlainName(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!IsPlainNameChar(c)) return false;
  }
  return true;
}

// Concatenated descendant text, mirroring Node::InnerText without the
// intermediate strings.
void AppendInnerText(const xml::Node& n, std::string* out) {
  if (n.is_text()) {
    *out += n.text();
    return;
  }
  for (const auto& c : n.children()) {
    AppendInnerText(*c, out);
  }
}

}  // namespace

FieldAccessor::FieldAccessor(std::string_view path) {
  // Direct-walk shape: NAME ('/' NAME)* ('/@' NAME)?  — no leading or
  // trailing slash (a trailing slash is an XPath parse error: absent).
  std::string_view rest = path;
  bool direct = !rest.empty() && rest.front() != '/' && rest.back() != '/';
  std::vector<std::string> segments;
  std::string attr;
  while (direct && !rest.empty()) {
    const size_t slash = rest.find('/');
    std::string_view seg =
        slash == std::string_view::npos ? rest : rest.substr(0, slash);
    rest = slash == std::string_view::npos ? std::string_view()
                                           : rest.substr(slash + 1);
    if (!seg.empty() && seg.front() == '@') {
      // Attribute segments are only valid in final position.
      seg.remove_prefix(1);
      if (!IsPlainName(seg) || !rest.empty()) {
        direct = false;
        break;
      }
      attr = std::string(seg);
    } else if (IsPlainName(seg)) {
      segments.push_back(std::string(seg));
    } else {
      direct = false;
      break;
    }
  }
  if (direct && (segments.size() + (attr.empty() ? 0 : 1)) > 0) {
    segments_ = std::move(segments);
    attr_ = std::move(attr);
    return;
  }
  auto xp = xml::XPath::Parse(path);
  if (xp.ok()) {
    fallback_ = std::move(xp).value();
  } else {
    bad_ = true;  // matches the old behavior: unparseable field = absent
  }
}

const xml::Node* FieldAccessor::Walk(const xml::Node& n, size_t seg) const {
  if (seg == segments_.size()) {
    // XPath first-match semantics: a final '@attr' step keeps only the
    // elements carrying the attribute.
    if (!attr_.empty() && !n.Attr(attr_).has_value()) return nullptr;
    return &n;
  }
  const std::string& name = segments_[seg];
  for (const auto& c : n.children()) {
    if (!c->is_element() || c->name() != name) continue;
    if (const xml::Node* hit = Walk(*c, seg + 1)) return hit;
  }
  return nullptr;
}

std::optional<std::string_view> FieldAccessor::Eval(
    const xml::Node& item) const {
  if (bad_) return std::nullopt;
  if (fallback_.has_value()) {
    auto values = fallback_->EvalStrings(item);
    if (values.empty()) return std::nullopt;
    scratch_ = std::move(values.front());
    return std::string_view(scratch_);
  }
  const xml::Node* hit = Walk(item, 0);
  if (hit == nullptr) return std::nullopt;
  ++internal::MutableStats().field_accessor_hits;
  if (!attr_.empty()) return *hit->Attr(attr_);
  // Element text: borrow the single text child when there is one (the
  // overwhelmingly common item shape); concatenate into the scratch
  // otherwise.
  if (hit->children().empty()) return std::string_view();
  if (hit->children().size() == 1 && hit->children()[0]->is_text()) {
    return std::string_view(hit->children()[0]->text());
  }
  scratch_.clear();
  AppendInnerText(*hit, &scratch_);
  return std::string_view(scratch_);
}

}  // namespace mqp::engine
