// Shared top-k machinery for local TopN evaluation and the distributed
// top-k protocol (ADiT-style threshold early termination, DESIGN.md §10).
//
// The contract that makes the distributed path bit-identical to the
// unbounded reference is a single total order shared by every
// participant: entries compare by order key (numeric-aware), then by
// (leaf, idx) — the leaf is the sub-plan's DFS position under the
// consumer's TopN and idx is the item's original position within that
// leaf, which together reproduce the reference's arrival sequence.
// Servers ship score-ordered prefixes cut against the consumer's current
// k-th bound (TopKPruned), and the consumer merges them into a TopKHeap
// whose final contents match stable_sort + truncate over the full union.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/histogram.h"

namespace mqp::engine {

/// What a TopN consumer asks of a remote source: order and limit.
struct TopKSpec {
  std::string field;
  bool ascending = true;
  uint64_t k = 0;
};

/// The consumer's current k-th entry, as much of it as a remote server
/// needs for sound pruning. `leaf` disambiguates key ties: an entry
/// equal on key wins against the bound only from a strictly smaller
/// leaf (within one leaf, every not-yet-shipped item has a larger idx
/// than anything already shipped, so idx never needs to travel).
struct TopKBoundRef {
  bool present = false;
  std::string key;
  uint32_t leaf = 0;
};

/// True when an entry with this (key, leaf) — and any idx not yet
/// shipped — can never displace the bound entry. Sound under bound
/// staleness: bounds only tighten, so pruning against an old bound only
/// prunes less.
bool TopKPruned(std::string_view key, uint32_t leaf, bool ascending,
                const TopKBoundRef& bound);

/// \brief Bounded (or unbounded, for plain ORDER BY) top-k heap keyed by
/// (key, leaf, idx). Keeps the k best entries; Finish() returns them in
/// final order.
class TopKHeap {
 public:
  /// `k == nullopt` keeps everything (sort-only mode).
  TopKHeap(std::optional<uint64_t> k, bool ascending);

  /// Inserts if the entry beats the current k-th; no-op otherwise.
  void Push(std::string_view key, uint32_t leaf, uint64_t idx,
            const algebra::Item& item);

  /// True when the heap holds k entries (always false in sort-only mode,
  /// trivially true for k == 0).
  bool full() const;

  /// The current k-th bound; present iff full() and k > 0.
  TopKBoundRef Bound() const;

  /// True when (key, leaf) could still enter the heap. Exact for
  /// not-yet-shipped entries of `leaf` (see TopKBoundRef).
  bool WouldAccept(std::string_view key, uint32_t leaf) const;

  size_t size() const { return heap_.size(); }

  /// Sorts and returns the retained items, best first. The heap is
  /// consumed.
  algebra::ItemSet Finish();

 private:
  struct Entry {
    std::string key;
    uint32_t leaf;
    uint64_t idx;
    algebra::Item item;
  };

  bool BetterKey(std::string_view key, uint32_t leaf, uint64_t idx,
                 const Entry& than) const;

  std::optional<uint64_t> k_;
  bool ascending_;
  std::vector<Entry> heap_;  // max-heap on "better": front = current worst
};

/// One score-ordered prefix slice of a server-side collection, cut
/// against the consumer's bound and k, windowed by [cont, cont+batch).
struct TopKSlice {
  std::vector<size_t> ship;  ///< indices into `items`, score order
  uint64_t next_cont = 0;    ///< continuation token for the next request
  bool more = false;         ///< eligible rows remain past this window
  std::string next_key;      ///< key at next_cont (valid when more)
  uint64_t pruned = 0;       ///< rows this terminal slice proved dead
  uint64_t total = 0;        ///< items.size()
};

/// Computes the slice a bounded fetch/subquery reply ships. A source
/// never needs to ship more than k rows (its own k+1-th is beaten by k
/// better rows from the same leaf), and nothing past the first
/// bound-pruned position in score order. Terminal slices (more=false)
/// credit the rows they prove dead to EngineStats::topk_rows_pruned;
/// non-terminal slices credit nothing, so re-requests never double
/// count. `batch == 0` means no window (ship the whole eligible prefix).
TopKSlice BoundedPrefix(const algebra::ItemSet& items, const TopKSpec& spec,
                        const TopKBoundRef& bound, uint32_t leaf,
                        uint64_t cont, uint64_t batch);

/// Migration-path truncation: when an annotated sub-plan is evaluated
/// locally (policy chose in-place evaluation rather than a bounded
/// fetch), its materialized items can still be cut to the eligible
/// prefix before travelling onward. Bit-equivalent downstream: the
/// score-ordered prefix preserves equal-key relative order and the
/// consumer's TopN ignores cross-key order. Dropped rows are credited
/// to EngineStats::topk_rows_pruned.
algebra::ItemSet TopKTruncate(const algebra::ItemSet& items,
                              const TopKSpec& spec,
                              const TopKBoundRef& bound, uint32_t leaf);

}  // namespace mqp::engine
