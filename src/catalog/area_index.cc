#include "catalog/area_index.h"

#include <algorithm>

namespace mqp::catalog {

using ns::kNoPathId;
using ns::PathId;
using ns::PathInterner;

AreaIndex::AreaIndex(const AreaIndex& other)
    : groups_(other.groups_), indexed_cells_(other.indexed_cells_) {
  // The deep-copied buckets live at new addresses; the copied by_enter
  // views still point into `other`. Drop them and rebuild lazily.
  for (auto& [arity, group] : groups_) {
    (void)arity;
    for (auto& dim : group.dims) {
      dim.by_enter.clear();
      dim.sorted_dirty = true;
    }
  }
}

AreaIndex& AreaIndex::operator=(const AreaIndex& other) {
  if (this != &other) {
    AreaIndex copy(other);
    *this = std::move(copy);
  }
  return *this;
}

AreaIndex::Group& AreaIndex::GroupFor(size_t dim_count) {
  Group& g = groups_[dim_count];
  if (g.interners.size() != dim_count) {
    g.interners.resize(dim_count);
    g.dims.resize(dim_count);
  }
  return g;
}

void AreaIndex::Add(uint32_t id, const ns::InterestArea& area) {
  if (id >= visited_.size()) visited_.resize(id + 1, 0);
  for (const auto& cell : area.cells()) {
    const size_t k = cell.dimension_count();
    Group& g = GroupFor(k);
    if (k == 0) {
      g.zero_dim_ids.push_back(id);
    } else {
      for (size_t d = 0; d < k; ++d) {
        const PathId p = g.interners[d].Intern(cell.coord(d));
        auto& bucket = g.dims[d].buckets[p];
        // An empty→non-empty transition introduces a key the sorted
        // enter view may not have (brand new or previously drained).
        if (bucket.empty()) g.dims[d].sorted_dirty = true;
        bucket.push_back(id);
      }
    }
    ++indexed_cells_;
  }
}

void AreaIndex::Remove(uint32_t id, const ns::InterestArea& area) {
  for (const auto& cell : area.cells()) {
    const size_t k = cell.dimension_count();
    auto git = groups_.find(k);
    if (git == groups_.end()) continue;
    Group& g = git->second;
    if (k == 0) {
      std::erase(g.zero_dim_ids, id);
    } else {
      for (size_t d = 0; d < k; ++d) {
        const PathId p = g.interners[d].Lookup(cell.coord(d));
        if (p == kNoPathId) continue;
        auto bit = g.dims[d].buckets.find(p);
        if (bit == g.dims[d].buckets.end()) continue;
        // Erases every occurrence: an id registered under two cells that
        // share this coordinate drains in one call, which keeps Remove
        // idempotent per (id, bucket). Emptied buckets stay keyed and
        // are skipped/pruned by the sorted-view rebuild.
        std::erase(bit->second, id);
      }
    }
    if (indexed_cells_ > 0) --indexed_cells_;
  }
}

void AreaIndex::EnsureSorted(const DimIndex& dim, const PathInterner& in) {
  if (!dim.sorted_dirty && dim.sorted_version == in.version()) return;
  dim.by_enter.clear();
  dim.by_enter.reserve(dim.buckets.size());
  for (const auto& [pid, bucket] : dim.buckets) {
    if (bucket.empty()) continue;
    dim.by_enter.emplace_back(in.IntervalOf(pid).enter, &bucket);
  }
  std::sort(dim.by_enter.begin(), dim.by_enter.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  dim.sorted_dirty = false;
  dim.sorted_version = in.version();
}

bool AreaIndex::MarkVisited(uint32_t id) const {
  if (id >= visited_.size()) visited_.resize(id + 1, 0);
  if (visited_[id] == epoch_) return false;
  visited_[id] = epoch_;
  return true;
}

size_t AreaIndex::Candidates(const ns::InterestArea& request,
                             std::vector<uint32_t>* out) const {
  // New dedup epoch; on wraparound reset the scratch explicitly.
  if (++epoch_ == 0) {
    std::fill(visited_.begin(), visited_.end(), 0);
    epoch_ = 1;
  }
  size_t probes = 0;
  for (const auto& cell : request.cells()) {
    const size_t k = cell.dimension_count();
    auto git = groups_.find(k);
    if (git == groups_.end()) continue;
    const Group& g = git->second;
    if (k == 0) {
      for (uint32_t id : g.zero_dim_ids) {
        if (MarkVisited(id)) out->push_back(id);
      }
      continue;
    }
    // Per dimension: the candidates are the ancestor-chain buckets of the
    // request coordinate plus (when the coordinate itself is a known
    // category) the buckets in its descendant enter-range. Estimate the
    // candidate count per dimension — caching the buckets it touches —
    // and replay only the cheapest dimension's plan.
    size_t best_dim = 0;
    size_t best_cost = static_cast<size_t>(-1);
    plan_scratch_.assign(k, DimProbe{});
    chain_scratch_.clear();
    for (size_t d = 0; d < k; ++d) {
      const PathInterner& in = g.interners[d];
      const DimIndex& di = g.dims[d];
      DimProbe& plan = plan_scratch_[d];
      bool exact = false;
      const PathId prefix = in.DeepestKnownPrefix(cell.coord(d), &exact);
      plan.exact = exact;
      plan.chain_begin = chain_scratch_.size();
      size_t cost = 0;
      for (PathId a = prefix;; a = in.ParentOf(a)) {
        ++probes;
        auto it = di.buckets.find(a);
        if (it != di.buckets.end() && !it->second.empty()) {
          chain_scratch_.push_back(&it->second);
          cost += it->second.size();
        }
        if (a == PathInterner::kTopId) break;
      }
      plan.chain_count = chain_scratch_.size() - plan.chain_begin;
      if (exact) {
        EnsureSorted(di, in);
        const PathInterner::Interval iv = in.IntervalOf(prefix);
        const auto cmp = [](const std::pair<uint32_t, const Bucket*>& a,
                            uint32_t enter) { return a.first < enter; };
        const auto lo = std::lower_bound(di.by_enter.begin(),
                                         di.by_enter.end(), iv.enter, cmp);
        const auto hi = std::lower_bound(di.by_enter.begin(),
                                         di.by_enter.end(), iv.exit, cmp);
        plan.range_begin = static_cast<size_t>(lo - di.by_enter.begin());
        plan.range_end = static_cast<size_t>(hi - di.by_enter.begin());
        // Counting occupied buckets (not entries) underestimates fat
        // buckets, but it is a ranking heuristic only — correctness
        // comes from the post-probe Overlaps verification.
        cost += plan.range_end - plan.range_begin;
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_dim = d;
      }
    }
    // Replay the winning plan from the cached bucket pointers: the
    // prefix's own bucket sits in both the chain and the enter-range,
    // but the visited-epoch dedup makes that harmless.
    const DimProbe& plan = plan_scratch_[best_dim];
    for (size_t c = 0; c < plan.chain_count; ++c) {
      for (uint32_t id : *chain_scratch_[plan.chain_begin + c]) {
        if (MarkVisited(id)) out->push_back(id);
      }
    }
    if (plan.exact) {
      const DimIndex& di = g.dims[best_dim];
      for (size_t r = plan.range_begin; r < plan.range_end; ++r) {
        ++probes;
        for (uint32_t id : *di.by_enter[r].second) {
          if (MarkVisited(id)) out->push_back(id);
        }
      }
    }
  }
  return probes;
}

}  // namespace mqp::catalog
