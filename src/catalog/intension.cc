#include "catalog/intension.h"

#include "common/strings.h"

namespace mqp::catalog {

std::string_view HoldingLevelName(HoldingLevel level) {
  return level == HoldingLevel::kBase ? "base" : "index";
}

std::string HoldingRef::ToString() const {
  std::string out(HoldingLevelName(level));
  out += '[';
  out += area.ToString();
  out += "]@";
  out += server;
  if (delay_minutes != 0) {
    out += '{';
    out += std::to_string(delay_minutes);
    out += '}';
  }
  return out;
}

Result<HoldingRef> HoldingRef::Parse(std::string_view text) {
  HoldingRef ref;
  std::string_view s = mqp::Trim(text);
  if (mqp::StartsWith(s, "base[")) {
    ref.level = HoldingLevel::kBase;
    s.remove_prefix(5);
  } else if (mqp::StartsWith(s, "index[")) {
    ref.level = HoldingLevel::kIndex;
    s.remove_prefix(6);
  } else {
    return Status::ParseError("holding ref must start with base[ or index[: '" +
                              std::string(text) + "'");
  }
  const size_t close = s.rfind("]@");
  if (close == std::string_view::npos) {
    return Status::ParseError("holding ref missing ']@server': '" +
                              std::string(text) + "'");
  }
  MQP_ASSIGN_OR_RETURN(ref.area, ns::InterestArea::Parse(s.substr(0, close)));
  std::string_view rest = s.substr(close + 2);
  const size_t brace = rest.find('{');
  if (brace == std::string_view::npos) {
    ref.server = std::string(mqp::Trim(rest));
  } else {
    ref.server = std::string(mqp::Trim(rest.substr(0, brace)));
    std::string_view delay = rest.substr(brace + 1);
    if (delay.empty() || delay.back() != '}') {
      return Status::ParseError("unterminated delay factor in '" +
                                std::string(text) + "'");
    }
    delay.remove_suffix(1);
    int64_t d = 0;
    if (!mqp::ParseInt64(delay, &d) || d < 0) {
      return Status::ParseError("bad delay factor in '" + std::string(text) +
                                "'");
    }
    ref.delay_minutes = static_cast<int>(d);
  }
  if (ref.server.empty()) {
    return Status::ParseError("holding ref has empty server: '" +
                              std::string(text) + "'");
  }
  return ref;
}

std::string IntensionalStatement::ToString() const {
  std::string out = lhs.ToString();
  out += relation == IntensionRelation::kEquals ? " = " : " >= ";
  for (size_t i = 0; i < rhs.size(); ++i) {
    if (i > 0) out += " + ";
    out += rhs[i].ToString();
  }
  return out;
}

Result<IntensionalStatement> IntensionalStatement::Parse(
    std::string_view text) {
  IntensionalStatement st;
  size_t rel_pos = text.find(">=");
  size_t rel_len = 2;
  if (rel_pos != std::string_view::npos) {
    st.relation = IntensionRelation::kContains;
  } else {
    rel_pos = text.find('=');
    rel_len = 1;
    if (rel_pos == std::string_view::npos) {
      return Status::ParseError("statement missing '=' or '>=': '" +
                                std::string(text) + "'");
    }
    st.relation = IntensionRelation::kEquals;
  }
  MQP_ASSIGN_OR_RETURN(st.lhs, HoldingRef::Parse(text.substr(0, rel_pos)));
  std::string_view rhs_text = text.substr(rel_pos + rel_len);
  // Split on '+' that separates terms. Areas also contain '+', so split on
  // the '+' tokens that appear *between* a term's end (after server or '}')
  // and the next 'base['/'index['. Simplest robust approach: scan for
  // " + base[" / " + index[" separators.
  std::vector<std::string> terms;
  size_t start = 0;
  std::string rhs_str(rhs_text);
  while (true) {
    size_t next = std::string::npos;
    for (const char* sep : {"+ base[", "+ index["}) {
      const size_t p = rhs_str.find(sep, start);
      if (p != std::string::npos && (next == std::string::npos || p < next)) {
        next = p;
      }
    }
    if (next == std::string::npos) {
      terms.push_back(rhs_str.substr(start));
      break;
    }
    terms.push_back(rhs_str.substr(start, next - start));
    start = next + 1;  // skip the '+'
  }
  for (const auto& t : terms) {
    MQP_ASSIGN_OR_RETURN(auto ref, HoldingRef::Parse(t));
    st.rhs.push_back(std::move(ref));
  }
  if (st.rhs.empty()) {
    return Status::ParseError("statement has empty right-hand side");
  }
  return st;
}

}  // namespace mqp::catalog
