// Intensional statements (paper §4.1): coordination-formula-style
// assertions about replication and index coverage between servers, e.g.
//
//   base[Portland, *]@R  =  base[Portland, *]@S
//   base[Portland, *]@R  ⊇  base[Portland, *]@S{30}
//   index[Oregon, GolfClubs]@R = base[Oregon, GolfClubs]@S ∪
//                                base[Oregon, GolfClubs]@T
//
// Text form used by Parse/ToString: ">=" for ⊇, "+" for ∪, "{d}" for the
// delay factor (§4.3), areas in the dotted URN form:
//
//   "base[(USA.OR.Portland,*)]@R >= base[(USA.OR.Portland,*)]@S{30}"
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "ns/interest.h"

namespace mqp::catalog {

/// Whether a holdings reference talks about base data or index entries.
enum class HoldingLevel { kBase, kIndex };

std::string_view HoldingLevelName(HoldingLevel level);

/// \brief One holdings reference: level[area]@server{delay}.
struct HoldingRef {
  HoldingLevel level = HoldingLevel::kBase;
  ns::InterestArea area;
  std::string server;
  int delay_minutes = 0;  ///< §4.3: data may lag the source by this much

  std::string ToString() const;
  static Result<HoldingRef> Parse(std::string_view text);

  bool operator==(const HoldingRef& other) const = default;
};

/// Relation between the two sides of a statement.
enum class IntensionRelation {
  kEquals,    ///< lhs holds exactly the union of the rhs terms
  kContains,  ///< lhs holds everything the rhs does, and possibly more (⊇)
};

/// \brief lhs (= | ⊇) rhs1 ∪ rhs2 ∪ ...
struct IntensionalStatement {
  HoldingRef lhs;
  IntensionRelation relation = IntensionRelation::kEquals;
  std::vector<HoldingRef> rhs;

  std::string ToString() const;
  static Result<IntensionalStatement> Parse(std::string_view text);

  bool operator==(const IntensionalStatement& other) const = default;
};

}  // namespace mqp::catalog
