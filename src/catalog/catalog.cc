#include "catalog/catalog.h"

#include <algorithm>

namespace mqp::catalog {

using algebra::PlanNode;
using algebra::PlanNodePtr;

int BindingAlternative::MaxStaleness() const {
  int max = 0;
  for (const auto& s : sources) {
    max = std::max(max, s.staleness_minutes);
  }
  return max;
}

Binding Binding::WithoutServers(
    const std::function<bool(const std::string& server)>& excluded) const {
  Binding out;
  out.urn = urn;
  out.dimension_fields = dimension_fields;
  for (const BindingAlternative& alt : alternatives) {
    bool touches_excluded = false;
    for (const SourceRef& s : alt.sources) {
      if (excluded(s.server)) {
        touches_excluded = true;
        break;
      }
    }
    if (!touches_excluded) out.alternatives.push_back(alt);
  }
  return out;
}

std::string Binding::ToString() const {
  std::string out;
  for (size_t i = 0; i < alternatives.size(); ++i) {
    if (i > 0) out += " | ";
    const auto& alt = alternatives[i];
    for (size_t j = 0; j < alt.sources.size(); ++j) {
      if (j > 0) out += " + ";
      const SourceRef& s = alt.sources[j];
      out += HoldingLevelName(s.level);
      out += '[';
      out += s.portion.ToString();
      out += "]@";
      out += s.server;
      if (s.staleness_minutes != 0) {
        out += '{';
        out += std::to_string(s.staleness_minutes);
        out += '}';
      }
    }
  }
  return out;
}

algebra::ExprPtr AreaPredicate(const ns::InterestArea& area,
                               const std::vector<std::string>& fields) {
  using algebra::Expr;
  algebra::ExprPtr result;
  for (const auto& cell : area.cells()) {
    algebra::ExprPtr cell_pred;
    for (size_t d = 0; d < cell.coords().size() && d < fields.size(); ++d) {
      const ns::CategoryPath& coord = cell.coord(d);
      if (coord.IsTop()) continue;  // no constraint
      auto test = Expr::Compare(algebra::CompareOp::kHasPrefix,
                                Expr::Field(fields[d]),
                                Expr::Literal(coord.ToString()));
      cell_pred = cell_pred == nullptr
                      ? test
                      : Expr::And(std::move(cell_pred), std::move(test));
    }
    if (cell_pred == nullptr) return nullptr;  // an all-covering cell
    result = result == nullptr
                 ? cell_pred
                 : Expr::Or(std::move(result), std::move(cell_pred));
  }
  return result;
}

PlanNodePtr BindingToPlan(const Binding& binding) {
  auto source_node = [&](const SourceRef& s) -> PlanNodePtr {
    PlanNodePtr node;
    if (s.level == HoldingLevel::kBase) {
      node = PlanNode::Url(s.server, s.xpath);
      if (!binding.dimension_fields.empty()) {
        auto guard = AreaPredicate(s.portion, binding.dimension_fields);
        if (guard != nullptr) {
          auto annotated = node;
          node = PlanNode::Select(std::move(guard), std::move(annotated));
        }
      }
    } else {
      // The MQP must travel to this index/meta server for further binding:
      // keep the (narrowed) URN with a resolver hint.
      node = PlanNode::UrnRef(
          s.portion.empty() ? binding.urn
                            : ns::AreaToUrn(s.portion).ToString(),
          s.server);
    }
    if (s.staleness_minutes != 0) {
      node->annotations().staleness_minutes = s.staleness_minutes;
    }
    return node;
  };
  auto alternative_node = [&](const BindingAlternative& alt) -> PlanNodePtr {
    if (alt.sources.size() == 1) return source_node(alt.sources[0]);
    std::vector<PlanNodePtr> inputs;
    inputs.reserve(alt.sources.size());
    for (const auto& s : alt.sources) {
      inputs.push_back(source_node(s));
    }
    return PlanNode::Union(std::move(inputs), alt.distinct);
  };
  if (binding.alternatives.size() == 1) {
    return alternative_node(binding.alternatives[0]);
  }
  std::vector<PlanNodePtr> alts;
  alts.reserve(binding.alternatives.size());
  for (const auto& alt : binding.alternatives) {
    alts.push_back(alternative_node(alt));
  }
  return PlanNode::Or(std::move(alts));
}

void Catalog::AddNamedMapping(const std::string& urn,
                              const std::string& server,
                              const std::string& xpath) {
  IndexEntry e;
  e.level = HoldingLevel::kBase;
  e.server = server;
  e.xpath = xpath;
  for (const auto& existing : named_[urn]) {
    if (existing == e) return;
  }
  named_[urn].push_back(std::move(e));
}

void Catalog::AddNamedReferral(const std::string& urn,
                               const std::string& server) {
  IndexEntry e;
  e.level = HoldingLevel::kIndex;
  e.server = server;
  for (const auto& existing : named_[urn]) {
    if (existing == e) return;
  }
  named_[urn].push_back(std::move(e));
}

std::string Catalog::EntryKey(const IndexEntry& entry) {
  // Exact identity over every field; '\x1f' never appears in addresses,
  // xpaths or canonical area strings.
  std::string key(HoldingLevelName(entry.level));
  key += '\x1f';
  key += entry.area.ToString();
  key += '\x1f';
  key += entry.server;
  key += '\x1f';
  key += entry.xpath;
  key += '\x1f';
  key += std::to_string(entry.delay_minutes);
  return key;
}

void Catalog::AddEntry(IndexEntry entry) {
  // Idempotent registration: drop exact duplicates.
  std::string key = EntryKey(entry);
  if (entry_keys_.find(key) != entry_keys_.end()) return;
  uint32_t id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
    slots_reused_ = true;
  } else {
    id = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[id];
  slot.entry = std::move(entry);
  slot.seq = next_seq_++;
  slot.live = true;
  entry_keys_.emplace(std::move(key), id);
  by_server_[slot.entry.server].push_back(id);
  area_index_.Add(id, slot.entry.area);
  TouchMutation();
}

std::vector<uint32_t> Catalog::LiveSlotsBySeq() const {
  std::vector<uint32_t> ids;
  ids.reserve(entry_keys_.size());
  for (uint32_t id = 0; id < slots_.size(); ++id) {
    if (slots_[id].live) ids.push_back(id);
  }
  // Only slot *reuse* breaks the id/seq correspondence; an append-only
  // (or append-and-remove) catalog is already in insertion order.
  if (slots_reused_) {
    std::sort(ids.begin(), ids.end(), [this](uint32_t a, uint32_t b) {
      return slots_[a].seq < slots_[b].seq;
    });
  }
  return ids;
}

std::vector<IndexEntry> Catalog::entries() const {
  std::vector<IndexEntry> out;
  out.reserve(entry_keys_.size());
  ForEachEntry([&](const IndexEntry& e) { out.push_back(e); });
  return out;
}

void Catalog::RemoveSlot(uint32_t id) {
  Slot& slot = slots_[id];
  area_index_.Remove(id, slot.entry.area);
  auto sit = by_server_.find(slot.entry.server);
  if (sit != by_server_.end()) {
    std::erase(sit->second, id);
    if (sit->second.empty()) by_server_.erase(sit);
  }
  entry_keys_.erase(EntryKey(slot.entry));
  slot.entry = IndexEntry{};
  slot.live = false;
  free_slots_.push_back(id);
  TouchMutation();
}

void Catalog::RemoveServer(const std::string& server) {
  auto sit = by_server_.find(server);
  if (sit != by_server_.end()) {
    // RemoveSlot edits the by_server_ list; work from a copy.
    const std::vector<uint32_t> ids = sit->second;
    for (uint32_t id : ids) RemoveSlot(id);
  }
  for (auto& [urn, entries] : named_) {
    std::erase_if(entries,
                  [&](const IndexEntry& e) { return e.server == server; });
  }
  // Statements referencing the departed server would keep steering
  // bindings at it (e.g. Example 1 pruning the *live* replica in favor of
  // the dead one): drop them with the entries.
  RemoveStatementsNaming(server);
}

size_t Catalog::RemoveStatementsNaming(const std::string& server) {
  const size_t before = statements_.size();
  std::erase_if(statements_, [&](const IntensionalStatement& st) {
    if (st.lhs.server == server) return true;
    for (const auto& r : st.rhs) {
      if (r.server == server) return true;
    }
    return false;
  });
  if (statements_.size() != before) TouchMutation();
  return before - statements_.size();
}

bool Catalog::RemoveEntry(const IndexEntry& entry) {
  auto it = entry_keys_.find(EntryKey(entry));
  if (it == entry_keys_.end()) return false;
  RemoveSlot(it->second);
  return true;
}

bool Catalog::RemoveNamedEntry(const std::string& urn,
                               const IndexEntry& entry) {
  auto it = named_.find(urn);
  if (it == named_.end()) return false;
  const size_t before = it->second.size();
  std::erase_if(it->second, [&](const IndexEntry& e) {
    return e.level == entry.level && e.server == entry.server &&
           e.xpath == entry.xpath;
  });
  const bool removed = it->second.size() != before;
  if (it->second.empty()) named_.erase(it);
  return removed;
}

void Catalog::AddStatement(IntensionalStatement st) {
  for (const auto& s : statements_) {
    if (s == st) return;
  }
  statements_.push_back(std::move(st));
  TouchMutation();
}

namespace {

void SortSources(std::vector<SourceRef>* sources) {
  std::sort(sources->begin(), sources->end(),
            [](const SourceRef& a, const SourceRef& b) {
              if (a.server != b.server) return a.server < b.server;
              return a.xpath < b.xpath;
            });
}

bool ContainsAlternative(const std::vector<BindingAlternative>& alts,
                         const BindingAlternative& alt) {
  return std::find(alts.begin(), alts.end(), alt) != alts.end();
}

}  // namespace

ns::InterestArea Catalog::ApproximateRequest(
    const ns::InterestArea& request) const {
  if (hierarchies_ == nullptr) return request;
  ns::InterestArea out;
  for (const auto& cell : request.cells()) {
    if (cell.coords().size() != hierarchies_->dimension_count()) {
      out.AddCell(cell);  // arity mismatch: leave untouched
      continue;
    }
    std::vector<ns::CategoryPath> coords;
    coords.reserve(cell.coords().size());
    for (size_t d = 0; d < cell.coords().size(); ++d) {
      const ns::CategoryPath& c = cell.coord(d);
      coords.push_back(hierarchies_->dimension(d).Contains(c)
                           ? c
                           : hierarchies_->dimension(d).Approximate(c));
    }
    out.AddCell(ns::InterestCell(std::move(coords)));
  }
  return out;
}

std::pair<uint64_t, uint64_t> Catalog::CacheEpoch() const {
  return {mutation_stamp_,
          hierarchies_ == nullptr ? 0 : hierarchies_->version()};
}

std::vector<uint32_t> Catalog::CandidateSlots(
    const ns::InterestArea& request) const {
  if (!use_area_index_) {
    // Linear reference mode: every live entry is a candidate.
    return LiveSlotsBySeq();
  }
  std::vector<uint32_t> ids;
  resolve_stats_.resolve_index_probes += area_index_.Candidates(request, &ids);
  // Insertion order (seq), regardless of probe order: the redundancy
  // pass's recency tie-break depends on it.
  std::sort(ids.begin(), ids.end(), [this](uint32_t a, uint32_t b) {
    return slots_[a].seq < slots_[b].seq;
  });
  return ids;
}

std::string Catalog::FirstXPathFor(const std::string& server,
                                   const ns::InterestArea& request) const {
  auto sit = by_server_.find(server);
  if (sit == by_server_.end()) return "";
  for (uint32_t id : sit->second) {
    const IndexEntry& e = slots_[id].entry;
    if (e.area.Overlaps(request)) return e.xpath;
  }
  return "";
}

Binding Catalog::ResolveArea(const ns::InterestArea& raw_request,
                             const std::string& urn_text) const {
  ++resolve_stats_.area_resolves;
  if (!use_binding_cache_) return ResolveAreaUncached(raw_request, urn_text);
  const auto epoch = CacheEpoch();
  if (epoch != binding_cache_epoch_) {
    binding_cache_.clear();
    binding_cache_epoch_ = epoch;
  }
  std::string key = urn_text;
  key += '\x1f';
  key += raw_request.ToString();
  auto it = binding_cache_.find(key);
  if (it != binding_cache_.end()) {
    ++resolve_stats_.binding_cache_hits;
    return it->second;
  }
  ++resolve_stats_.binding_cache_misses;
  Binding binding = ResolveAreaUncached(raw_request, urn_text);
  if (binding_cache_.size() >= kBindingCacheMax) binding_cache_.clear();
  binding_cache_.emplace(std::move(key), binding);
  return binding;
}

Binding Catalog::ResolveAreaUncached(const ns::InterestArea& raw_request,
                                     const std::string& urn_text) const {
  // §3.5: approximate unknown categories by their deepest known ancestor.
  const ns::InterestArea request = ApproximateRequest(raw_request);
  Binding binding;
  binding.urn = urn_text;
  binding.dimension_fields = dimension_fields_;

  // 1. Coverage search: every entry overlapping the request contributes a
  //    source serving the overlapping portion (§3.4). The area index
  //    narrows the walk to the entries whose Euler intervals can overlap
  //    the request's; each candidate is still exactly verified.
  const bool authoritative_for_request =
      authoritative_ && authority_interest_.Covers(request);
  const std::vector<uint32_t> candidates = CandidateSlots(request);
  resolve_stats_.resolve_entries_scanned += candidates.size();
  BindingAlternative base_alt;
  base_alt.sources.reserve(candidates.size());
  for (const uint32_t candidate_id : candidates) {
    const IndexEntry& e = slots_[candidate_id].entry;
    if (!e.area.Overlaps(request)) continue;
    if (e.level == HoldingLevel::kIndex) {
      // Self-referrals (possible once gossip mirrors a peer's own index
      // registration into its own catalog) bind nothing new: this catalog
      // *is* that index.
      if (!owner_.empty() && e.server == owner_) continue;
      // An authoritative owner never defers a covered request to a
      // *strictly coarser* index (§3.3: it knows every server in its
      // area; the coarser index knows at most as much about it).
      if (authoritative_for_request &&
          e.area.Covers(authority_interest_) &&
          !authority_interest_.Covers(e.area)) {
        continue;
      }
    }
    SourceRef s;
    s.level = e.level;
    s.server = e.server;
    s.xpath = e.xpath;
    s.portion = e.area.Intersect(request);
    s.staleness_minutes = e.delay_minutes;
    s.entry_specificity = e.area.Specificity();
    base_alt.sources.push_back(std::move(s));
  }
  if (base_alt.sources.empty()) return binding;  // nothing known here
  // (Sources stay in catalog insertion order through the redundancy pass —
  // the recency tie-break below depends on it; they are sorted afterward.)

  // Redundancy elimination within the union (§4.1: "some of the servers
  // may be wholly or partially redundant with others"). An index referral
  // resolves recursively to everything in its portion, so:
  //  * an index source covered by another index source is redundant
  //    (equal portions: keep the lexicographically first server);
  //  * a base source covered by an index source is redundant too — the
  //    referral will find it again (§3.3 authoritative assumption).
  {
    auto& srcs = base_alt.sources;
    std::vector<bool> drop(srcs.size(), false);
    for (size_t i = 0; i < srcs.size(); ++i) {
      for (size_t j = 0; j < srcs.size(); ++j) {
        if (i == j || drop[j] ||
            srcs[j].level != HoldingLevel::kIndex) {
          continue;
        }
        if (!srcs[j].portion.Covers(srcs[i].portion)) continue;
        if (srcs[i].level == HoldingLevel::kBase) {
          drop[i] = true;
          break;
        }
        const bool equal = srcs[i].portion.Covers(srcs[j].portion);
        if (!equal) {
          drop[i] = true;
          break;
        }
        // Equal portions: keep the more specific server (a state index
        // beats the top meta server), then the most recently learned one
        // (sources arrive in catalog insertion order, and fresher cache
        // entries name binders closer to the data).
        if (srcs[j].entry_specificity > srcs[i].entry_specificity ||
            (srcs[j].entry_specificity == srcs[i].entry_specificity &&
             j > i)) {
          drop[i] = true;
          break;
        }
      }
    }
    std::vector<SourceRef> kept;
    for (size_t i = 0; i < srcs.size(); ++i) {
      if (!drop[i]) kept.push_back(std::move(srcs[i]));
    }
    srcs = std::move(kept);
  }

  // Completeness gate (§4.1): binding from partial knowledge would drop
  // the uncovered remainder of the request. Only answer when the source
  // portions cover the request cellwise, or when the owner is
  // authoritative for it (partial knowledge *is* everything then, §3.3).
  {
    ns::InterestArea covered;
    for (const auto& s : base_alt.sources) {
      covered = covered.Union(s.portion);
    }
    const bool sources_cover = covered.Covers(request);
    if (!sources_cover && !authoritative_for_request) {
      return binding;  // defer to someone who knows more
    }
  }
  SortSources(&base_alt.sources);

  if (!use_statements_) {
    binding.alternatives.push_back(std::move(base_alt));
    return binding;
  }

  std::vector<BindingAlternative> alts;

  // 2. Statement-derived refinements.
  //
  // Redundancy (Example 1): lhs = rhs with both sides covering the
  // request makes the two servers interchangeable — drop one from the
  // default alternative.
  BindingAlternative pruned = base_alt;
  for (const auto& st : statements_) {
    if (st.relation != IntensionRelation::kEquals || st.rhs.size() != 1) {
      continue;
    }
    const HoldingRef& l = st.lhs;
    const HoldingRef& r = st.rhs[0];
    if (l.level != HoldingLevel::kBase || r.level != HoldingLevel::kBase) {
      continue;
    }
    if (!l.area.Covers(request) || !r.area.Covers(request)) continue;
    // Both servers hold identical data for the request: keep the one with
    // the smaller delay (ties: lexicographically smaller server name).
    const std::string& drop =
        (l.delay_minutes < r.delay_minutes ||
         (l.delay_minutes == r.delay_minutes && l.server <= r.server))
            ? r.server
            : l.server;
    std::erase_if(pruned.sources,
                  [&](const SourceRef& s) { return s.server == drop; });
  }
  bool base_alt_superseded = !pruned.sources.empty() &&
                             !(pruned == base_alt);
  if (base_alt_superseded) {
    // When equality statements proved servers redundant, the pruned union
    // *replaces* the full one — the paper's Example 1 binds to "R | S",
    // never "R ∪ S" ("it need not go to both").
    alts.push_back(pruned);
  }

  for (const auto& st : statements_) {
    // Index coverage (Example 2): index[A]@R = base[...]@S ∪ ... — when
    // the index covers the request, routing to R alone suffices; so does
    // contacting all the bases directly.
    if (st.relation == IntensionRelation::kEquals &&
        st.lhs.level == HoldingLevel::kIndex &&
        st.lhs.area.Covers(request)) {
      BindingAlternative via_index;
      SourceRef s;
      s.level = HoldingLevel::kIndex;
      s.server = st.lhs.server;
      s.portion = request;
      s.staleness_minutes = st.lhs.delay_minutes;
      via_index.sources.push_back(std::move(s));
      if (!ContainsAlternative(alts, via_index)) alts.push_back(via_index);

      BindingAlternative direct;
      for (const auto& r : st.rhs) {
        if (!r.area.Overlaps(request)) continue;
        SourceRef d;
        d.level = r.level;
        d.server = r.server;
        d.portion = r.area.Intersect(request);
        d.staleness_minutes = r.delay_minutes;
        direct.sources.push_back(std::move(d));
      }
      if (!direct.sources.empty()) {
        SortSources(&direct.sources);
        if (!ContainsAlternative(alts, direct)) alts.push_back(direct);
      }
    }
    // Containment (Example 3 / §4.3): base[A]@R ⊇ base[A]@S{d} — R alone
    // answers with staleness d; R ∪ S answers current.
    if (st.relation == IntensionRelation::kContains &&
        st.lhs.level == HoldingLevel::kBase && st.rhs.size() == 1 &&
        st.rhs[0].level == HoldingLevel::kBase &&
        st.lhs.area.Covers(request) && st.rhs[0].area.Covers(request)) {
      BindingAlternative via_replica;
      SourceRef s;
      s.level = HoldingLevel::kBase;
      s.server = st.lhs.server;
      s.portion = request;
      s.staleness_minutes =
          std::max(st.lhs.delay_minutes, st.rhs[0].delay_minutes);
      // The replica's own collections for the area, if indexed here.
      s.xpath = FirstXPathFor(st.lhs.server, request);
      via_replica.sources.push_back(std::move(s));
      if (!ContainsAlternative(alts, via_replica)) {
        alts.push_back(via_replica);
      }

      BindingAlternative both = via_replica;
      both.sources[0].staleness_minutes = 0;
      // R and S overlap on the replicated portion: set semantics.
      both.distinct = true;
      SourceRef other;
      other.level = HoldingLevel::kBase;
      other.server = st.rhs[0].server;
      other.portion = request;
      other.xpath = FirstXPathFor(st.rhs[0].server, request);
      both.sources.push_back(std::move(other));
      SortSources(&both.sources);
      if (!ContainsAlternative(alts, both)) alts.push_back(both);
      // The naive R ∪ S union claims staleness 0 for R's replicated
      // data, which the statement contradicts: drop it.
      base_alt_superseded = true;
    }
  }

  if (!base_alt_superseded && !ContainsAlternative(alts, base_alt)) {
    alts.insert(alts.begin(), base_alt);
  }
  binding.alternatives = std::move(alts);
  return binding;
}

Result<Binding> Catalog::Resolve(const std::string& urn_text) const {
  MQP_ASSIGN_OR_RETURN(auto urn, ns::Urn::Parse(urn_text));
  if (urn.IsInterestArea()) {
    MQP_ASSIGN_OR_RETURN(auto area, urn.ToInterestArea());
    return ResolveArea(area, urn_text);
  }
  Binding binding;
  binding.urn = urn_text;
  // Named URNs address whole collections; no area filtering applies.
  auto it = named_.find(urn_text);
  if (it == named_.end() || it->second.empty()) return binding;
  BindingAlternative alt;
  for (const auto& e : it->second) {
    SourceRef s;
    s.level = e.level;
    s.server = e.server;
    s.xpath = e.xpath;
    s.staleness_minutes = e.delay_minutes;
    alt.sources.push_back(std::move(s));
  }
  SortSources(&alt.sources);
  binding.alternatives.push_back(std::move(alt));
  return binding;
}

}  // namespace mqp::catalog
