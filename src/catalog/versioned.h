// Versioned catalog state for dynamic maintenance (src/sync/).
//
// The paper's catalogs are built once at registration time; this module
// makes them *living* objects. Every catalog fact a peer asserts about
// itself — an interest-area entry or a named mapping — becomes a
// VersionedRecord stamped with an (origin, sequence) version, and removal
// is a tombstone rather than a deletion. Records merge with
// last-writer-wins semantics per record key, ordered by sequence with a
// deterministic origin tie-break, which makes CatalogDelta application
// idempotent and commutative: any gossip exchange order converges.
//
// A VersionVector (origin → highest sequence seen) summarizes everything a
// catalog has absorbed; anti-entropy peers exchange vectors as compact
// digests and pull only the records the vector proves missing
// (see sync/gossip.h).
//
// Liveness is TTL-based: each origin periodically re-stamps a tiny
// presence record; a catalog that stops hearing *any* new version from an
// origin for longer than the origin's declared TTL drops that origin's
// entries from the queryable projection (they reappear the moment the
// origin refreshes again). Tombstones are purged only after a long quiet
// period, bounding memory.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"

namespace mqp::catalog {

/// \brief (origin, sequence) stamp. Sequences are per-origin monotonic;
/// cross-origin ties break on the origin string so merges are
/// deterministic regardless of arrival order.
struct EntryVersion {
  std::string origin;    ///< address of the asserting peer
  uint64_t sequence = 0; ///< per-origin monotonic counter

  /// Strictly newer-than, the LWW merge order for one record key.
  bool Newer(const EntryVersion& other) const {
    if (sequence != other.sequence) return sequence > other.sequence;
    return origin > other.origin;
  }

  bool operator==(const EntryVersion& other) const = default;
};

/// \brief origin → highest sequence absorbed from that origin. The digest
/// peers exchange during anti-entropy.
using VersionVector = std::map<std::string, uint64_t>;

/// True iff `a` has absorbed everything `b` has (a[o] >= b[o] for all o).
bool Dominates(const VersionVector& a, const VersionVector& b);

/// Digest wire format: "<digest><v o='addr' s='7'/>...</digest>".
std::string DigestToXml(const VersionVector& vector);
Result<VersionVector> DigestFromXml(const std::string& text);

/// \brief What kind of catalog fact a record carries.
enum class SyncEntryKind {
  kArea,      ///< an interest-area IndexEntry
  kNamed,     ///< a named mapping/referral (urn + IndexEntry)
  kPresence,  ///< origin heartbeat; never projected into the catalog
};

/// \brief One syncable catalog fact.
struct SyncEntry {
  SyncEntryKind kind = SyncEntryKind::kArea;
  std::string urn;  ///< kNamed only
  IndexEntry entry; ///< kArea/kNamed; ignored for kPresence

  bool operator==(const SyncEntry& other) const = default;
};

/// \brief A versioned, possibly-tombstoned catalog fact. Identity is
/// Key(); `version` orders updates to the same key.
struct VersionedRecord {
  EntryVersion version;
  SyncEntry entry;
  bool tombstone = false;
  /// Origin-declared liveness horizon: entries from an origin silent for
  /// longer than this drop out of the projection (0 = never expire).
  double ttl_seconds = 0;
  /// Local bookkeeping only (never gossiped, excluded from equality):
  /// when this version was stamped/applied *here*; tombstone GC uses it.
  double stamped_at = 0;

  /// Stable record identity: origin plus the fact's own identity, so one
  /// origin's tombstone can never clobber another origin's assertion.
  std::string Key() const;

  /// Equality over the gossiped fields only (stamped_at is local).
  bool operator==(const VersionedRecord& other) const {
    return version == other.version && entry == other.entry &&
           tombstone == other.tombstone && ttl_seconds == other.ttl_seconds;
  }
};

/// \brief A set of records in transit: the unit gossip ships. Application
/// through VersionedCatalog::Apply is idempotent and commutative.
struct CatalogDelta {
  std::vector<VersionedRecord> records;
  /// The sender's own version vector, piggybacked so the receiver can
  /// push back what the sender is missing without a digest round-trip
  /// (a small digest would overtake the large delta on a
  /// bandwidth-limited link and trigger a duplicate send). Empty when
  /// not attached.
  VersionVector sender_vector;

  bool empty() const { return records.empty(); }
  size_t size() const { return records.size(); }

  /// "<delta><v .../>...<rec .../>...</delta>".
  std::string ToXml() const;
  static Result<CatalogDelta> FromXml(const std::string& text);
};

/// \brief Versioned overlay over a plain Catalog. Owns the record map and
/// version vector; mirrors live records into the projection catalog (not
/// owned, may be null) so the existing resolution machinery sees exactly
/// the live view.
class VersionedCatalog {
 public:
  /// `self` is this peer's address (its origin id); `projection` receives
  /// live entries and may be null (pure-state uses, tests).
  VersionedCatalog(std::string self, Catalog* projection)
      : self_(std::move(self)), projection_(projection) {}

  const std::string& self() const { return self_; }
  const VersionVector& vector() const { return vector_; }
  const std::map<std::string, VersionedRecord>& records() const {
    return records_;
  }

  // --- local (own-origin) mutations -------------------------------------------

  /// Asserts/updates a fact originated here, stamping the next sequence.
  void UpsertLocal(SyncEntry entry, double ttl_seconds, double now);

  /// Tombstones a fact originated here (graceful withdrawal).
  void TombstoneLocal(const SyncEntry& entry, double now);

  /// Re-stamps the presence heartbeat (and nothing else): the cheap
  /// periodic refresh that keeps this origin's entries alive remotely.
  void BumpPresence(double ttl_seconds, double now);

  /// Re-stamps *all* live own records with fresh sequences. Called on
  /// recovery/rejoin: remote vectors already dominate the old stamps, so
  /// only re-stamped records propagate again.
  void RestampOwn(double now);

  // --- anti-entropy ------------------------------------------------------------

  /// Every record whose version the remote vector has not absorbed.
  CatalogDelta DeltaSince(const VersionVector& remote) const;

  /// Merges `delta`; returns how many records changed. Fresher versions
  /// win per key; stale or duplicate records are no-ops (idempotence).
  size_t Apply(const CatalogDelta& delta, double now);

  // --- liveness ----------------------------------------------------------------

  /// Local time we last absorbed a new version from `origin` (0 = never).
  double LastHeard(const std::string& origin) const;

  /// Drops projection entries of origins whose TTL lapsed; returns the
  /// origins that newly expired. Own records never expire.
  std::vector<std::string> ExpireSilent(double now);

  /// Origins currently considered live here (self included).
  std::vector<std::string> LiveOrigins(double now) const;

  /// Purges tombstoned records older than `min_age`, except each origin's
  /// newest record: that one must stay transferable, because version
  /// vectors only grow through records — without it a peer joining after
  /// the purge could never absorb the origin's final sequence and every
  /// digest exchange would chase the gap forever. Returns the number
  /// purged (memory stays bounded at one record per dead origin).
  size_t PurgeTombstones(double now, double min_age);

 private:
  /// Withdraws the projection of the stored record under `key` when
  /// `rec` is about to replace it with a different fact payload (the key
  /// covers identity fields only — e.g. delay_minutes can change).
  void RetireReplacedProjection(const std::string& key,
                                const VersionedRecord& rec);
  /// Applies one record to the projection catalog (add or remove).
  void Project(const VersionedRecord& rec, double now);
  /// Removes a record's fact from the projection unless another live
  /// record still asserts the identical fact.
  void Unproject(const VersionedRecord& rec);
  /// True when `origin`'s records are currently expired from projection.
  bool OriginExpired(const std::string& origin) const {
    return expired_origins_.count(origin) > 0;
  }
  /// The TTL governing `origin` (max declared over its records).
  double OriginTtl(const std::string& origin) const;

  std::string self_;
  Catalog* projection_;
  std::map<std::string, VersionedRecord> records_;
  VersionVector vector_;
  uint64_t next_sequence_ = 0;
  std::map<std::string, double> last_heard_;
  std::set<std::string> expired_origins_;
};

}  // namespace mqp::catalog
