// AreaIndex: an incremental interval index over interest-area entries.
//
// ResolveArea's coverage search (§3.4) asks "which entries overlap this
// request area?" — per dimension, two cells overlap iff one coordinate
// path is a prefix of the other. Interning every entry coordinate into a
// per-dimension PathInterner turns that into Euler-interval containment,
// and the overlapping candidates for a request coordinate q decompose
// exactly into:
//
//   * entries at an ancestor of q  — the nodes on q's root path (≤ depth+1
//     bucket probes), and
//   * entries at a descendant of q — the ids whose preorder `enter` falls
//     in q's interval [enter(q), exit(q)) (one binary search + k probes).
//
// The index keeps one such structure per dimension (grouped by cell
// dimensionality, since only equal-arity cells can overlap), estimates
// which dimension yields the fewest candidates for each request cell, and
// probes only that one; candidates are then re-verified with the exact
// cellwise Overlaps test by the caller. Maintenance is incremental — the
// gossip projection path (add/remove per record) never rescans.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ns/interest.h"
#include "ns/path_interner.h"

namespace mqp::catalog {

/// \brief Maps caller-chosen entry ids to interest areas and answers
/// "ids possibly overlapping this request" in O(log n + candidates).
class AreaIndex {
 public:
  AreaIndex() = default;
  /// Copies must drop the sorted views: they cache pointers into the
  /// *source's* buckets. Moves keep them (node handles move wholesale).
  AreaIndex(const AreaIndex& other);
  AreaIndex& operator=(const AreaIndex& other);
  AreaIndex(AreaIndex&&) = default;
  AreaIndex& operator=(AreaIndex&&) = default;

  /// Registers `id` under every cell of `area`. Ids must be unique among
  /// live entries; re-adding an id requires removing it first.
  void Add(uint32_t id, const ns::InterestArea& area);

  /// Withdraws `id`; `area` must be the area it was added with.
  void Remove(uint32_t id, const ns::InterestArea& area);

  /// Appends the ids whose areas may overlap `request` — a superset of
  /// the true matches (callers re-verify with InterestArea::Overlaps),
  /// each id at most once, order unspecified. Returns the number of
  /// bucket probes performed (the `resolve_index_probes` counter).
  size_t Candidates(const ns::InterestArea& request,
                    std::vector<uint32_t>* out) const;

  /// Number of (entry, cell) registrations currently held.
  size_t size() const { return indexed_cells_; }

 private:
  using Bucket = std::vector<uint32_t>;

  struct DimIndex {
    /// Interned coordinate → ids of entries with a cell at exactly that
    /// category in this dimension.
    std::unordered_map<ns::PathId, Bucket> buckets;
    /// Non-empty buckets sorted by Euler `enter`, rebuilt lazily
    /// (mutation or interner growth invalidates it). Bucket pointers are
    /// stable: keys are never erased, only drained.
    mutable std::vector<std::pair<uint32_t, const Bucket*>> by_enter;
    mutable bool sorted_dirty = true;
    mutable uint64_t sorted_version = 0;  ///< interner version at rebuild
  };

  /// One dimension's probe plan for one request cell, built during cost
  /// estimation and replayed for the winning dimension — no bucket is
  /// hash-probed twice. Indexes into the reusable scratch below.
  struct DimProbe {
    bool exact = false;
    size_t chain_begin = 0, chain_count = 0;  // into chain_scratch_
    size_t range_begin = 0, range_end = 0;    // into the dim's by_enter
  };

  /// Sub-index for one cell dimensionality (cells of different arity
  /// never overlap, so they never share buckets).
  struct Group {
    std::vector<ns::PathInterner> interners;  // one per dimension
    std::vector<DimIndex> dims;
    std::vector<uint32_t> zero_dim_ids;  // arity-0 cells match each other
  };

  Group& GroupFor(size_t dim_count);
  static void EnsureSorted(const DimIndex& dim, const ns::PathInterner& in);

  /// Marks `id` seen this query; returns true the first time.
  bool MarkVisited(uint32_t id) const;

  std::unordered_map<size_t, Group> groups_;
  size_t indexed_cells_ = 0;

  // Per-query dedup scratch: visited_[id] == epoch_ means already emitted.
  mutable std::vector<uint32_t> visited_;
  mutable uint32_t epoch_ = 0;
  // Per-cell probe scratch, reused across queries (no steady-state
  // allocation on the resolve hot path).
  mutable std::vector<DimProbe> plan_scratch_;
  mutable std::vector<const Bucket*> chain_scratch_;
};

}  // namespace mqp::catalog
