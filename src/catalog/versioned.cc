#include "catalog/versioned.h"

#include <algorithm>

#include "common/strings.h"
#include "xml/token_reader.h"
#include "xml/token_writer.h"

namespace mqp::catalog {

bool Dominates(const VersionVector& a, const VersionVector& b) {
  for (const auto& [origin, seq] : b) {
    auto it = a.find(origin);
    if (it == a.end() || it->second < seq) return false;
  }
  return true;
}

namespace {

// Shared "<v o='addr' s='7'/>" codec for digests and the delta piggyback,
// emitted and consumed as tokens — gossip bodies never build a DOM.
void EmitVectorElements(xml::TokenWriter* w, const VersionVector& vector) {
  for (const auto& [origin, seq] : vector) {
    w->Start("v");
    w->Attr("o", origin);
    w->Attr("s", std::to_string(seq));
    w->End();
  }
}

// Parses one <v .../> whose start token is current; `first` is the token
// ReadAttrs stopped on.
Status ParseVectorElement(xml::TokenReader* r, const xml::AttrList& attrs,
                          const xml::Token& first, VersionVector* vector) {
  const std::string origin = attrs.Get("o");
  int64_t seq = 0;
  if (origin.empty() || !mqp::ParseInt64(attrs.Get("s"), &seq) || seq < 0) {
    return Status::ParseError("malformed version-vector element");
  }
  (*vector)[origin] = static_cast<uint64_t>(seq);
  if (first.type != xml::TokenType::kEndElement) {
    return r->SkipToElementEnd();
  }
  return Status::OK();
}

}  // namespace

std::string DigestToXml(const VersionVector& vector) {
  std::string out;
  xml::TokenWriter w(&out);
  w.Start("digest");
  EmitVectorElements(&w, vector);
  w.End();
  return out;
}

Result<VersionVector> DigestFromXml(const std::string& text) {
  xml::TokenReader r(text);
  MQP_ASSIGN_OR_RETURN(xml::Token t, r.Next());
  if (t.type != xml::TokenType::kStartElement) {
    return r.Error("expected a root element");
  }
  if (t.name != "digest") {
    return Status::ParseError("not a digest: <" + std::string(t.name) + ">");
  }
  xml::AttrList root_attrs;
  MQP_ASSIGN_OR_RETURN(t, r.ReadAttrs(&root_attrs));
  VersionVector vector;
  while (t.type != xml::TokenType::kEndElement) {
    if (t.type == xml::TokenType::kStartElement) {
      if (t.name == "v") {
        xml::AttrList attrs;
        MQP_ASSIGN_OR_RETURN(xml::Token vt, r.ReadAttrs(&attrs));
        MQP_RETURN_IF_ERROR(ParseVectorElement(&r, attrs, vt, &vector));
      } else {
        MQP_RETURN_IF_ERROR(r.SkipToElementEnd());
      }
    }
    MQP_ASSIGN_OR_RETURN(t, r.Next());
  }
  // The DOM path rejected trailing content via Parse's one-root check.
  MQP_ASSIGN_OR_RETURN(t, r.Next());
  if (t.type != xml::TokenType::kEndOfInput) {
    return Status::ParseError("expected exactly one root element, found 2");
  }
  return vector;
}

namespace {

std::string_view KindName(SyncEntryKind kind) {
  switch (kind) {
    case SyncEntryKind::kArea: return "area";
    case SyncEntryKind::kNamed: return "named";
    case SyncEntryKind::kPresence: return "presence";
  }
  return "area";
}

Result<SyncEntryKind> KindFromName(std::string_view name) {
  if (name == "area") return SyncEntryKind::kArea;
  if (name == "named") return SyncEntryKind::kNamed;
  if (name == "presence") return SyncEntryKind::kPresence;
  return Status::ParseError("unknown sync entry kind '" + std::string(name) +
                            "'");
}

}  // namespace

std::string VersionedRecord::Key() const {
  // origin|kind|urn|level|area|server|xpath — none of the identity fields
  // may contain '|' (addresses, URNs and area strings never do).
  std::string key = version.origin;
  key += '|';
  key += KindName(entry.kind);
  if (entry.kind == SyncEntryKind::kPresence) return key;
  key += '|';
  key += entry.urn;
  key += '|';
  key += HoldingLevelName(entry.entry.level);
  key += '|';
  key += entry.entry.area.ToString();
  key += '|';
  key += entry.entry.server;
  key += '|';
  key += entry.entry.xpath;
  return key;
}

std::string CatalogDelta::ToXml() const {
  std::string out;
  xml::TokenWriter w(&out);
  w.Start("delta");
  EmitVectorElements(&w, sender_vector);
  for (const auto& rec : records) {
    w.Start("rec");
    w.Attr("o", rec.version.origin);
    w.Attr("s", std::to_string(rec.version.sequence));
    w.Attr("k", KindName(rec.entry.kind));
    if (rec.tombstone) w.Attr("tomb", "1");
    if (rec.ttl_seconds != 0) {
      w.Attr("ttl", std::to_string(static_cast<int64_t>(rec.ttl_seconds)));
    }
    if (rec.entry.kind != SyncEntryKind::kPresence) {
      if (!rec.entry.urn.empty()) w.Attr("urn", rec.entry.urn);
      w.Attr("level", HoldingLevelName(rec.entry.entry.level));
      w.Attr("area", rec.entry.entry.area.ToString());
      w.Attr("server", rec.entry.entry.server);
      if (!rec.entry.entry.xpath.empty()) {
        w.Attr("xpath", rec.entry.entry.xpath);
      }
      if (rec.entry.entry.delay_minutes != 0) {
        w.Attr("delay", std::to_string(rec.entry.entry.delay_minutes));
      }
    }
    w.End();
  }
  w.End();
  return out;
}

Result<CatalogDelta> CatalogDelta::FromXml(const std::string& text) {
  xml::TokenReader r(text);
  MQP_ASSIGN_OR_RETURN(xml::Token t, r.Next());
  if (t.type != xml::TokenType::kStartElement) {
    return r.Error("expected a root element");
  }
  if (t.name != "delta") {
    return Status::ParseError("not a delta: <" + std::string(t.name) + ">");
  }
  xml::AttrList root_attrs;
  MQP_ASSIGN_OR_RETURN(t, r.ReadAttrs(&root_attrs));
  CatalogDelta delta;
  while (t.type != xml::TokenType::kEndElement) {
    if (t.type == xml::TokenType::kStartElement) {
      if (t.name == "v") {
        xml::AttrList attrs;
        MQP_ASSIGN_OR_RETURN(xml::Token vt, r.ReadAttrs(&attrs));
        MQP_RETURN_IF_ERROR(
            ParseVectorElement(&r, attrs, vt, &delta.sender_vector));
      } else if (t.name == "rec") {
        xml::AttrList attrs;
        MQP_ASSIGN_OR_RETURN(xml::Token rt, r.ReadAttrs(&attrs));
        VersionedRecord rec;
        rec.version.origin = attrs.Get("o");
        int64_t seq = 0;
        if (rec.version.origin.empty() ||
            !mqp::ParseInt64(attrs.Get("s"), &seq) || seq < 0) {
          return Status::ParseError("malformed record version");
        }
        rec.version.sequence = static_cast<uint64_t>(seq);
        MQP_ASSIGN_OR_RETURN(rec.entry.kind,
                             KindFromName(attrs.Get("k", "area")));
        rec.tombstone = attrs.Get("tomb", "0") == "1";
        int64_t ttl = 0;
        (void)mqp::ParseInt64(attrs.Get("ttl", "0"), &ttl);
        rec.ttl_seconds = static_cast<double>(ttl);
        if (rec.entry.kind != SyncEntryKind::kPresence) {
          rec.entry.urn = attrs.Get("urn");
          rec.entry.entry.level = attrs.Get("level", "base") == "index"
                                      ? HoldingLevel::kIndex
                                      : HoldingLevel::kBase;
          auto area = ns::InterestArea::Parse(attrs.Get("area"));
          if (!area.ok()) return area.status();
          rec.entry.entry.area = std::move(area).value();
          rec.entry.entry.server = attrs.Get("server");
          rec.entry.entry.xpath = attrs.Get("xpath");
          int64_t delay = 0;
          (void)mqp::ParseInt64(attrs.Get("delay", "0"), &delay);
          rec.entry.entry.delay_minutes = static_cast<int>(delay);
          if (rec.entry.entry.server.empty()) {
            return Status::ParseError("record missing server");
          }
        }
        delta.records.push_back(std::move(rec));
        if (rt.type != xml::TokenType::kEndElement) {
          MQP_RETURN_IF_ERROR(r.SkipToElementEnd());
        }
      } else {
        MQP_RETURN_IF_ERROR(r.SkipToElementEnd());
      }
    }
    MQP_ASSIGN_OR_RETURN(t, r.Next());
  }
  // The DOM path rejected trailing content via Parse's one-root check.
  MQP_ASSIGN_OR_RETURN(t, r.Next());
  if (t.type != xml::TokenType::kEndOfInput) {
    return Status::ParseError("expected exactly one root element, found 2");
  }
  return delta;
}

// --- VersionedCatalog ----------------------------------------------------------

void VersionedCatalog::UpsertLocal(SyncEntry entry, double ttl_seconds,
                                   double now) {
  VersionedRecord rec;
  rec.version = {self_, ++next_sequence_};
  rec.entry = std::move(entry);
  rec.ttl_seconds = ttl_seconds;
  rec.stamped_at = now;
  vector_[self_] = rec.version.sequence;
  last_heard_[self_] = now;
  const std::string key = rec.Key();
  RetireReplacedProjection(key, rec);
  Project(rec, now);
  records_[key] = std::move(rec);
}

void VersionedCatalog::TombstoneLocal(const SyncEntry& entry, double now) {
  VersionedRecord rec;
  rec.version = {self_, ++next_sequence_};
  rec.entry = entry;
  rec.tombstone = true;
  rec.stamped_at = now;
  vector_[self_] = rec.version.sequence;
  last_heard_[self_] = now;
  const std::string key = rec.Key();
  // Withdraw the *stored* fact (it may differ from `entry` in non-key
  // fields like delay), then the one being tombstoned.
  RetireReplacedProjection(key, rec);
  records_[key] = rec;
  Unproject(rec);
}

void VersionedCatalog::BumpPresence(double ttl_seconds, double now) {
  SyncEntry presence;
  presence.kind = SyncEntryKind::kPresence;
  UpsertLocal(std::move(presence), ttl_seconds, now);
}

void VersionedCatalog::RestampOwn(double now) {
  for (auto& [key, rec] : records_) {
    if (rec.version.origin != self_ || rec.tombstone) continue;
    rec.version.sequence = ++next_sequence_;
    rec.stamped_at = now;
    vector_[self_] = rec.version.sequence;
    // Rejoin also reinstates the projection (a recovering peer republishes
    // its holdings); Project is idempotent for already-present entries.
    Project(rec, now);
  }
  last_heard_[self_] = now;
}

CatalogDelta VersionedCatalog::DeltaSince(const VersionVector& remote) const {
  CatalogDelta delta;
  for (const auto& [key, rec] : records_) {
    auto it = remote.find(rec.version.origin);
    const uint64_t seen = it == remote.end() ? 0 : it->second;
    if (rec.version.sequence > seen) delta.records.push_back(rec);
  }
  return delta;
}

size_t VersionedCatalog::Apply(const CatalogDelta& delta, double now) {
  size_t changed = 0;
  for (const VersionedRecord& incoming : delta.records) {
    const std::string& origin = incoming.version.origin;
    // Absorb the version even when the record itself loses LWW: the
    // vector tracks everything *seen*, not everything *kept*.
    uint64_t& high = vector_[origin];
    const bool fresh = incoming.version.sequence > high;
    if (fresh) {
      high = incoming.version.sequence;
      last_heard_[origin] = now;
      if (origin == self_) {
        // Defensive: never re-issue a sequence an echo proved spent.
        next_sequence_ = std::max(next_sequence_, high);
      }
      if (expired_origins_.count(origin) > 0) {
        // The origin is refreshing again: reinstate its live records.
        expired_origins_.erase(origin);
        for (const auto& [k, rec] : records_) {
          if (rec.version.origin == origin && !rec.tombstone) {
            Project(rec, now);
          }
        }
      }
    }
    const std::string key = incoming.Key();
    auto it = records_.find(key);
    if (it != records_.end() &&
        !incoming.version.Newer(it->second.version)) {
      continue;  // stale or duplicate: idempotence
    }
    VersionedRecord rec = incoming;
    rec.stamped_at = now;
    RetireReplacedProjection(key, rec);
    if (rec.tombstone) {
      Unproject(rec);
    } else {
      Project(rec, now);
    }
    records_[key] = std::move(rec);
    ++changed;
  }
  return changed;
}

double VersionedCatalog::LastHeard(const std::string& origin) const {
  auto it = last_heard_.find(origin);
  return it == last_heard_.end() ? 0 : it->second;
}

double VersionedCatalog::OriginTtl(const std::string& origin) const {
  double ttl = 0;
  for (const auto& [key, rec] : records_) {
    if (rec.version.origin == origin) ttl = std::max(ttl, rec.ttl_seconds);
  }
  return ttl;
}

std::vector<std::string> VersionedCatalog::ExpireSilent(double now) {
  // Single pass for the per-origin TTLs (this runs on every gossip tick).
  std::map<std::string, double> ttls;
  for (const auto& [key, rec] : records_) {
    double& ttl = ttls[rec.version.origin];
    ttl = std::max(ttl, rec.ttl_seconds);
  }
  std::vector<std::string> newly_expired;
  for (const auto& [origin, ttl] : ttls) {
    if (origin == self_ || expired_origins_.count(origin) > 0) continue;
    if (ttl <= 0) continue;
    if (now - LastHeard(origin) <= ttl) continue;
    expired_origins_.insert(origin);
    newly_expired.push_back(origin);
    for (const auto& [key, rec] : records_) {
      if (rec.version.origin == origin && !rec.tombstone) Unproject(rec);
    }
  }
  return newly_expired;
}

std::vector<std::string> VersionedCatalog::LiveOrigins(double now) const {
  std::set<std::string> origins{self_};
  for (const auto& [key, rec] : records_) {
    origins.insert(rec.version.origin);
  }
  std::vector<std::string> live;
  for (const std::string& origin : origins) {
    if (origin != self_) {
      const double ttl = OriginTtl(origin);
      if (ttl > 0 && now - LastHeard(origin) > ttl) continue;
    }
    live.push_back(origin);
  }
  return live;
}

size_t VersionedCatalog::PurgeTombstones(double now, double min_age) {
  // Each origin's highest sequence must stay carried by some record (see
  // the header comment): find the per-origin maxima first.
  std::map<std::string, uint64_t> max_seq;
  for (const auto& [key, rec] : records_) {
    uint64_t& high = max_seq[rec.version.origin];
    high = std::max(high, rec.version.sequence);
  }
  size_t purged = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    const VersionedRecord& rec = it->second;
    if (rec.tombstone && now - rec.stamped_at >= min_age &&
        rec.version.sequence != max_seq[rec.version.origin]) {
      it = records_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  return purged;
}

void VersionedCatalog::RetireReplacedProjection(const std::string& key,
                                                const VersionedRecord& rec) {
  // The record key covers identity fields only; a newer version of the
  // same key may carry a *different* fact payload (delay_minutes is not
  // part of identity). Projection add/remove works on full IndexEntry
  // equality, so the superseded shape must be withdrawn explicitly or it
  // would linger in the catalog forever.
  auto it = records_.find(key);
  if (it == records_.end() || it->second.tombstone) return;
  if (it->second.entry == rec.entry && !rec.tombstone) return;
  Unproject(it->second);
}

void VersionedCatalog::Project(const VersionedRecord& rec, double now) {
  (void)now;
  if (projection_ == nullptr) return;
  if (rec.entry.kind == SyncEntryKind::kPresence) return;
  if (OriginExpired(rec.version.origin)) return;
  if (rec.entry.kind == SyncEntryKind::kArea) {
    projection_->AddEntry(rec.entry.entry);
  } else if (rec.entry.entry.level == HoldingLevel::kBase) {
    projection_->AddNamedMapping(rec.entry.urn, rec.entry.entry.server,
                                 rec.entry.entry.xpath);
  } else {
    projection_->AddNamedReferral(rec.entry.urn, rec.entry.entry.server);
  }
}

void VersionedCatalog::Unproject(const VersionedRecord& rec) {
  if (projection_ == nullptr) return;
  if (rec.entry.kind == SyncEntryKind::kPresence) return;
  // Another live record (different origin) may assert the identical fact;
  // only the last asserter's withdrawal removes it from the projection.
  const std::string& server = rec.entry.entry.server;
  bool server_still_asserted = false;
  for (const auto& [key, other] : records_) {
    if (other.tombstone || other.entry.kind == SyncEntryKind::kPresence) {
      continue;
    }
    if (OriginExpired(other.version.origin)) continue;
    if (other.version.origin == rec.version.origin &&
        other.Key() == rec.Key()) {
      continue;  // the record being withdrawn itself
    }
    if (other.entry.entry.server == server) server_still_asserted = true;
    if (other.version.origin != rec.version.origin &&
        other.entry == rec.entry) {
      return;
    }
  }
  if (rec.entry.kind == SyncEntryKind::kArea) {
    projection_->RemoveEntry(rec.entry.entry);
  } else {
    projection_->RemoveNamedEntry(rec.entry.urn, rec.entry.entry);
  }
  // When the withdrawal/expiry removed the server's last live fact, any
  // intensional statement naming it would keep steering bindings at a
  // gone peer (the same hazard Catalog::RemoveServer guards against) —
  // drop those too. Statements travel by registration, not gossip:
  // Peer::RejoinNetwork re-registers so *its own* statements come back,
  // but third-party statements about the server (e.g. a replica's
  // containment assertion from PullIndexedData) stay dropped until their
  // asserter re-registers or re-pulls.
  if (!server_still_asserted) {
    projection_->RemoveStatementsNaming(server);
  }
}

}  // namespace mqp::catalog
