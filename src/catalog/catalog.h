// The local catalog each peer maintains (paper §2: "we resolve URNs by
// consulting a catalog, which we maintain locally at each peer. A catalog
// contains mappings from URNs to (sets of) URLs, or from URNs to servers
// that know how to resolve them"), extended with the interest-area index
// entries of §3 and the intensional statements of §4.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "catalog/intension.h"
#include "common/result.h"
#include "ns/hierarchy.h"
#include "ns/interest.h"
#include "ns/urn.h"

namespace mqp::catalog {

/// \brief One concrete source inside a binding alternative.
struct SourceRef {
  HoldingLevel level = HoldingLevel::kBase;
  std::string server;        ///< peer address
  std::string xpath;         ///< collection id for base-level sources
  ns::InterestArea portion;  ///< requested ∩ offered (what this source serves)
  int staleness_minutes = 0;

  /// Specificity of the catalog entry's full area — ties between
  /// equally-covering referrals go to the more specific server (e.g. a
  /// state index over the top meta server).
  size_t entry_specificity = 0;

  bool operator==(const SourceRef& other) const = default;
};

/// \brief One alternative of a binding: the *union* of its sources covers
/// the request (as far as this catalog knows).
struct BindingAlternative {
  std::vector<SourceRef> sources;

  /// Set semantics for the union: true when the sources are known
  /// replicas (an intensional statement proved their overlap), so
  /// duplicated items must be collapsed.
  bool distinct = false;

  /// The currency bound of this alternative (max source staleness).
  int MaxStaleness() const;

  bool operator==(const BindingAlternative& other) const = default;
};

/// \brief The result of resolving a URN: alternatives joined by the
/// "conjoint union" operator `|` (§4.2) — any one alternative suffices.
struct Binding {
  std::string urn;
  std::vector<BindingAlternative> alternatives;

  /// Item field names corresponding to the namespace dimensions (e.g.
  /// {"location", "category"}). When non-empty, BindingToPlan guards each
  /// base source with an area predicate over these fields, so collections
  /// broader than the request are filtered down to the requested portion.
  std::vector<std::string> dimension_fields;

  bool empty() const { return alternatives.empty(); }

  /// Renders like the paper, e.g.
  /// "base[(P,CDs)]@R{30} | base[(P,CDs)]@R + base[(P,CDs)]@S".
  std::string ToString() const;
};

/// \brief Converts a binding into the plan fragment that replaces the URN
/// leaf: Or over alternatives, Union over each alternative's sources.
/// Base-level sources become URL leaves (staleness annotated), guarded by
/// an area predicate when dimension_fields is set; index-level sources
/// become URN leaves with a resolver hint (the MQP travels there for
/// further binding).
algebra::PlanNodePtr BindingToPlan(const Binding& binding);

/// \brief Predicate asserting that an item lies inside `area`: an Or over
/// cells of per-dimension kHasPrefix tests against `dimension_fields`.
/// Returns nullptr when the area is all-covering (no filter needed).
algebra::ExprPtr AreaPredicate(const ns::InterestArea& area,
                               const std::vector<std::string>& fields);

/// \brief One catalog/index entry: a server known to hold data (base) or
/// index information (index) for an interest area.
struct IndexEntry {
  HoldingLevel level = HoldingLevel::kBase;
  ns::InterestArea area;
  std::string server;
  std::string xpath;  ///< base entries: the collection id at `server`
  int delay_minutes = 0;

  bool operator==(const IndexEntry& other) const = default;
};

/// \brief A peer's local catalog.
class Catalog {
 public:
  // --- named URNs (urn:ForSale:Portland-CDs style) ----------------------------

  /// Maps `urn` to a collection at `server`. Multiple mappings union.
  void AddNamedMapping(const std::string& urn, const std::string& server,
                       const std::string& xpath);

  /// Records that `server` knows how to resolve `urn`.
  void AddNamedReferral(const std::string& urn, const std::string& server);

  // --- interest-area entries ---------------------------------------------------

  void AddEntry(IndexEntry entry);
  const std::vector<IndexEntry>& entries() const { return entries_; }

  /// Removes every entry naming `server` (peer departure), including
  /// named mappings and any intensional statement referencing it — a
  /// statement about a departed server can no longer be acted on.
  void RemoveServer(const std::string& server);

  /// Removes the exact interest-area entry (sync tombstones/expiry).
  /// Returns true if an entry was removed.
  bool RemoveEntry(const IndexEntry& entry);

  /// Removes every intensional statement whose lhs or rhs names `server`
  /// (it can no longer be acted on once the server is gone). Returns how
  /// many were removed.
  size_t RemoveStatementsNaming(const std::string& server);

  /// Removes the named mapping/referral for `urn` matching `entry`'s
  /// (level, server, xpath). Returns true if one was removed.
  bool RemoveNamedEntry(const std::string& urn, const IndexEntry& entry);

  // --- intensional statements ---------------------------------------------------

  void AddStatement(IntensionalStatement st);
  const std::vector<IntensionalStatement>& statements() const {
    return statements_;
  }

  /// When false, Resolve ignores intensional statements (ablation knob for
  /// bench C3).
  void set_use_statements(bool use) { use_statements_ = use; }

  /// Item fields corresponding to the namespace dimensions, copied into
  /// every binding this catalog produces (see Binding::dimension_fields).
  void set_dimension_fields(std::vector<std::string> fields) {
    dimension_fields_ = std::move(fields);
  }
  const std::vector<std::string>& dimension_fields() const {
    return dimension_fields_;
  }

  /// Declares the catalog owner's authority (§3.3). ResolveArea only
  /// produces a binding when its sources *cover* the request, or when the
  /// owner is authoritative for it — a partial binding would silently
  /// drop the uncovered remainder (§4.1's completeness problem).
  void SetAuthority(ns::InterestArea interest, bool authoritative) {
    authority_interest_ = std::move(interest);
    authoritative_ = authoritative;
  }

  /// The owner's own address. With dynamic maintenance a catalog can
  /// contain referrals to its own peer (gossiped index entries);
  /// ResolveArea must skip those — "travel to myself for more detail" is
  /// a dead end, the owner is already binding with full local knowledge.
  void set_owner(std::string address) { owner_ = std::move(address); }
  const std::string& owner() const { return owner_; }

  /// Attaches the namespace (not owned) for §3.5's approximation: a
  /// requested category unknown to the hierarchies is rewritten to its
  /// deepest known ancestor — "a possible loss of precision, but no loss
  /// of recall" (Walker [W80]).
  void set_hierarchies(const ns::MultiHierarchy* hierarchies) {
    hierarchies_ = hierarchies;
  }

  /// The request after §3.5 approximation (identity when no namespace is
  /// attached or every category is known).
  ns::InterestArea ApproximateRequest(const ns::InterestArea& request) const;

  // --- resolution ---------------------------------------------------------------

  /// Resolves any URN text: interest-area URNs via coverage search +
  /// statements; named URNs via mappings/referrals. An empty binding means
  /// this catalog knows nothing relevant.
  Result<Binding> Resolve(const std::string& urn_text) const;

  /// Interest-area resolution (the paper's §3.4/§4 machinery).
  Binding ResolveArea(const ns::InterestArea& request,
                      const std::string& urn_text) const;

 private:
  std::vector<IndexEntry> entries_;
  std::vector<IntensionalStatement> statements_;
  std::map<std::string, std::vector<IndexEntry>> named_;  // urn → entries
  std::vector<std::string> dimension_fields_;
  std::string owner_;
  ns::InterestArea authority_interest_;
  const ns::MultiHierarchy* hierarchies_ = nullptr;
  bool authoritative_ = false;
  bool use_statements_ = true;
};

}  // namespace mqp::catalog
