// The local catalog each peer maintains (paper §2: "we resolve URNs by
// consulting a catalog, which we maintain locally at each peer. A catalog
// contains mappings from URNs to (sets of) URLs, or from URNs to servers
// that know how to resolve them"), extended with the interest-area index
// entries of §3 and the intensional statements of §4.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/plan.h"
#include "catalog/area_index.h"
#include "catalog/intension.h"
#include "common/result.h"
#include "ns/hierarchy.h"
#include "ns/interest.h"
#include "ns/urn.h"

namespace mqp::catalog {

/// \brief One concrete source inside a binding alternative.
struct SourceRef {
  HoldingLevel level = HoldingLevel::kBase;
  std::string server;        ///< peer address
  std::string xpath;         ///< collection id for base-level sources
  ns::InterestArea portion;  ///< requested ∩ offered (what this source serves)
  int staleness_minutes = 0;

  /// Specificity of the catalog entry's full area — ties between
  /// equally-covering referrals go to the more specific server (e.g. a
  /// state index over the top meta server).
  size_t entry_specificity = 0;

  bool operator==(const SourceRef& other) const = default;
};

/// \brief One alternative of a binding: the *union* of its sources covers
/// the request (as far as this catalog knows).
struct BindingAlternative {
  std::vector<SourceRef> sources;

  /// Set semantics for the union: true when the sources are known
  /// replicas (an intensional statement proved their overlap), so
  /// duplicated items must be collapsed.
  bool distinct = false;

  /// The currency bound of this alternative (max source staleness).
  int MaxStaleness() const;

  bool operator==(const BindingAlternative& other) const = default;
};

/// \brief The result of resolving a URN: alternatives joined by the
/// "conjoint union" operator `|` (§4.2) — any one alternative suffices.
struct Binding {
  std::string urn;
  std::vector<BindingAlternative> alternatives;

  /// Item field names corresponding to the namespace dimensions (e.g.
  /// {"location", "category"}). When non-empty, BindingToPlan guards each
  /// base source with an area predicate over these fields, so collections
  /// broader than the request are filtered down to the requested portion.
  std::vector<std::string> dimension_fields;

  bool empty() const { return alternatives.empty(); }

  /// The binding with every alternative touching an excluded server
  /// removed — the failover step (DESIGN.md §9): a resolving peer drops
  /// alternatives routed through dead or suspect servers and binds via
  /// the next one. An alternative is kept only if *none* of its sources
  /// is excluded (the union of a partial alternative would silently
  /// under-answer). May return an empty binding; callers fall back to
  /// the unfiltered one in that case.
  Binding WithoutServers(
      const std::function<bool(const std::string& server)>& excluded) const;

  /// Renders like the paper, e.g.
  /// "base[(P,CDs)]@R{30} | base[(P,CDs)]@R + base[(P,CDs)]@S".
  std::string ToString() const;
};

/// \brief Converts a binding into the plan fragment that replaces the URN
/// leaf: Or over alternatives, Union over each alternative's sources.
/// Base-level sources become URL leaves (staleness annotated), guarded by
/// an area predicate when dimension_fields is set; index-level sources
/// become URN leaves with a resolver hint (the MQP travels there for
/// further binding).
algebra::PlanNodePtr BindingToPlan(const Binding& binding);

/// \brief Predicate asserting that an item lies inside `area`: an Or over
/// cells of per-dimension kHasPrefix tests against `dimension_fields`.
/// Returns nullptr when the area is all-covering (no filter needed).
algebra::ExprPtr AreaPredicate(const ns::InterestArea& area,
                               const std::vector<std::string>& fields);

/// \brief One catalog/index entry: a server known to hold data (base) or
/// index information (index) for an interest area.
struct IndexEntry {
  HoldingLevel level = HoldingLevel::kBase;
  ns::InterestArea area;
  std::string server;
  std::string xpath;  ///< base entries: the collection id at `server`
  int delay_minutes = 0;

  bool operator==(const IndexEntry& other) const = default;
};

/// \brief Resolution instrumentation (cumulative). Mirrored into
/// peer::PeerCounters and net::NetStats by the peer after each resolve.
struct ResolveStats {
  uint64_t area_resolves = 0;           ///< ResolveArea calls (incl. cache hits)
  uint64_t resolve_index_probes = 0;    ///< AreaIndex bucket probes
  uint64_t resolve_entries_scanned = 0; ///< entries overlap-tested per resolve
  uint64_t binding_cache_hits = 0;
  uint64_t binding_cache_misses = 0;
};

/// \brief A peer's local catalog.
///
/// Interest-area entries live in stable slots indexed by an AreaIndex
/// (coverage search probes O(log n + candidates) instead of scanning) and
/// by server (departure/gossip removal never rescans). Area resolutions
/// are memoized in a binding cache invalidated by a mutation stamp — the
/// same pattern the wire layer uses for cached plan serialization.
class Catalog {
 public:
  // --- named URNs (urn:ForSale:Portland-CDs style) ----------------------------

  /// Maps `urn` to a collection at `server`. Multiple mappings union.
  void AddNamedMapping(const std::string& urn, const std::string& server,
                       const std::string& xpath);

  /// Records that `server` knows how to resolve `urn`.
  void AddNamedReferral(const std::string& urn, const std::string& server);

  // --- interest-area entries ---------------------------------------------------

  void AddEntry(IndexEntry entry);

  /// Snapshot of the live interest-area entries in insertion order.
  /// Copies every entry — fine for tests and joins, not for hot loops;
  /// prefer ForEachEntry for iteration.
  std::vector<IndexEntry> entries() const;

  /// Visits every live entry in insertion order without copying.
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (uint32_t id : LiveSlotsBySeq()) fn(slots_[id].entry);
  }

  /// Number of live interest-area entries.
  size_t entry_count() const { return entry_keys_.size(); }

  /// Removes every entry naming `server` (peer departure), including
  /// named mappings and any intensional statement referencing it — a
  /// statement about a departed server can no longer be acted on.
  void RemoveServer(const std::string& server);

  /// Removes the exact interest-area entry (sync tombstones/expiry).
  /// Returns true if an entry was removed.
  bool RemoveEntry(const IndexEntry& entry);

  /// Removes every intensional statement whose lhs or rhs names `server`
  /// (it can no longer be acted on once the server is gone). Returns how
  /// many were removed.
  size_t RemoveStatementsNaming(const std::string& server);

  /// Removes the named mapping/referral for `urn` matching `entry`'s
  /// (level, server, xpath). Returns true if one was removed.
  bool RemoveNamedEntry(const std::string& urn, const IndexEntry& entry);

  // --- intensional statements ---------------------------------------------------

  void AddStatement(IntensionalStatement st);
  const std::vector<IntensionalStatement>& statements() const {
    return statements_;
  }

  /// When false, Resolve ignores intensional statements (ablation knob for
  /// bench C3).
  void set_use_statements(bool use) {
    use_statements_ = use;
    TouchMutation();
  }

  /// Reference/ablation knob: with the area index off, ResolveArea falls
  /// back to the pre-index linear scan over every entry (identical
  /// results — the equivalence property test and bench C8 rely on it).
  void set_use_area_index(bool use) { use_area_index_ = use; }

  /// Ablation knob for the (urn, request-area) binding cache.
  void set_use_binding_cache(bool use) {
    use_binding_cache_ = use;
    if (!use) binding_cache_.clear();
  }

  const ResolveStats& resolve_stats() const { return resolve_stats_; }
  void ResetResolveStats() { resolve_stats_ = ResolveStats{}; }

  /// Item fields corresponding to the namespace dimensions, copied into
  /// every binding this catalog produces (see Binding::dimension_fields).
  void set_dimension_fields(std::vector<std::string> fields) {
    dimension_fields_ = std::move(fields);
    TouchMutation();
  }
  const std::vector<std::string>& dimension_fields() const {
    return dimension_fields_;
  }

  /// Declares the catalog owner's authority (§3.3). ResolveArea only
  /// produces a binding when its sources *cover* the request, or when the
  /// owner is authoritative for it — a partial binding would silently
  /// drop the uncovered remainder (§4.1's completeness problem).
  void SetAuthority(ns::InterestArea interest, bool authoritative) {
    authority_interest_ = std::move(interest);
    authoritative_ = authoritative;
    TouchMutation();
  }

  /// The owner's own address. With dynamic maintenance a catalog can
  /// contain referrals to its own peer (gossiped index entries);
  /// ResolveArea must skip those — "travel to myself for more detail" is
  /// a dead end, the owner is already binding with full local knowledge.
  void set_owner(std::string address) {
    owner_ = std::move(address);
    TouchMutation();
  }
  const std::string& owner() const { return owner_; }

  /// Attaches the namespace (not owned) for §3.5's approximation: a
  /// requested category unknown to the hierarchies is rewritten to its
  /// deepest known ancestor — "a possible loss of precision, but no loss
  /// of recall" (Walker [W80]).
  void set_hierarchies(const ns::MultiHierarchy* hierarchies) {
    hierarchies_ = hierarchies;
    TouchMutation();
  }

  /// The request after §3.5 approximation (identity when no namespace is
  /// attached or every category is known).
  ns::InterestArea ApproximateRequest(const ns::InterestArea& request) const;

  // --- resolution ---------------------------------------------------------------

  /// Resolves any URN text: interest-area URNs via coverage search +
  /// statements; named URNs via mappings/referrals. An empty binding means
  /// this catalog knows nothing relevant.
  Result<Binding> Resolve(const std::string& urn_text) const;

  /// Interest-area resolution (the paper's §3.4/§4 machinery).
  Binding ResolveArea(const ns::InterestArea& request,
                      const std::string& urn_text) const;

 private:
  /// Stable storage for one interest-area entry. Slots are reused after
  /// removal (free list); `seq` preserves insertion order across reuse —
  /// the redundancy pass's recency tie-break depends on it.
  struct Slot {
    IndexEntry entry;
    uint64_t seq = 0;
    bool live = false;
  };

  /// Exact-identity key for dedup and O(1) removal.
  static std::string EntryKey(const IndexEntry& entry);

  /// Any semantic mutation bumps the stamp; the binding cache is flushed
  /// lazily when the stamp (or the attached namespace) moved.
  void TouchMutation() { ++mutation_stamp_; }

  /// (mutation stamp, namespace version): the binding cache's validity
  /// token. A hierarchy Add after attach changes ApproximateRequest.
  std::pair<uint64_t, uint64_t> CacheEpoch() const;

  /// Frees slot `id`, unhooking it from every index structure.
  void RemoveSlot(uint32_t id);

  /// Live slot ids sorted by insertion sequence.
  std::vector<uint32_t> LiveSlotsBySeq() const;

  /// Live slot ids relevant to `request` in insertion order — via the
  /// area index, or all live slots in the linear reference mode.
  std::vector<uint32_t> CandidateSlots(const ns::InterestArea& request) const;

  /// The xpath of the first (insertion order) live entry at `server`
  /// overlapping `request`; "" when none. Replaces the linear scans in
  /// the containment-statement path.
  std::string FirstXPathFor(const std::string& server,
                            const ns::InterestArea& request) const;

  /// ResolveArea minus the binding cache.
  Binding ResolveAreaUncached(const ns::InterestArea& raw_request,
                              const std::string& urn_text) const;

  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  bool slots_reused_ = false;  ///< a freed slot was re-filled (see LiveSlotsBySeq)
  std::unordered_map<std::string, uint32_t> entry_keys_;  // EntryKey → slot
  std::unordered_map<std::string, std::vector<uint32_t>> by_server_;
  AreaIndex area_index_;
  uint64_t next_seq_ = 0;
  uint64_t mutation_stamp_ = 0;

  std::vector<IntensionalStatement> statements_;
  std::map<std::string, std::vector<IndexEntry>> named_;  // urn → entries
  std::vector<std::string> dimension_fields_;
  std::string owner_;
  ns::InterestArea authority_interest_;
  const ns::MultiHierarchy* hierarchies_ = nullptr;
  bool authoritative_ = false;
  bool use_statements_ = true;
  bool use_area_index_ = true;
  bool use_binding_cache_ = true;

  // Memoized ResolveArea results keyed by (urn, raw request area),
  // flushed when CacheEpoch() moves; bounded by wholesale clear.
  static constexpr size_t kBindingCacheMax = 4096;
  mutable std::unordered_map<std::string, Binding> binding_cache_;
  mutable std::pair<uint64_t, uint64_t> binding_cache_epoch_{0, 0};
  mutable ResolveStats resolve_stats_;
};

}  // namespace mqp::catalog
