#include "xml/node.h"

#include <atomic>

namespace mqp::xml {

namespace {
// The library is single-threaded *per peer*, not per process: under
// runtime::ThreadedRuntime / runtime::TcpTransport many peers run
// concurrently, each confined to one handler thread at a time, while
// shared immutable items are read (and lazily hashed) cross-thread
// (DESIGN.md §8). So the build counter is thread-local (handlers
// snapshot deltas on their own thread) and the mutation epoch — a
// process-wide cache-invalidation stamp — is a relaxed atomic: bumps
// and reads need no ordering beyond the cache fields' own
// acquire/release publication (see node.h).
thread_local uint64_t g_dom_nodes_built = 0;
std::atomic<uint64_t> g_dom_mutation_epoch{1};  // 1: zero-init caches stale
}  // namespace

namespace internal {
void CountNodeBuilt() { ++g_dom_nodes_built; }
void BumpMutationEpoch() {
  g_dom_mutation_epoch.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace internal

uint64_t DomNodesBuilt() { return g_dom_nodes_built; }

uint64_t DomMutationEpoch() {
  return g_dom_mutation_epoch.load(std::memory_order_relaxed);
}

std::unique_ptr<Node> Node::Element(std::string name) {
  auto n = std::unique_ptr<Node>(new Node(NodeType::kElement));
  n->name_ = std::move(name);
  return n;
}

std::unique_ptr<Node> Node::Text(std::string text) {
  auto n = std::unique_ptr<Node>(new Node(NodeType::kText));
  n->text_ = std::move(text);
  return n;
}

std::unique_ptr<Node> Node::ElementWithText(std::string name,
                                            std::string text) {
  auto n = Element(std::move(name));
  n->AddText(std::move(text));
  return n;
}

void Node::SetAttr(std::string_view key, std::string value) {
  if (cache_marked_.load(std::memory_order_relaxed)) {
    internal::BumpMutationEpoch();
  }
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(std::string(key), std::move(value));
}

std::optional<std::string_view> Node::Attr(std::string_view key) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return std::string_view(v);
  }
  return std::nullopt;
}

std::string Node::AttrOr(std::string_view key, std::string fallback) const {
  auto v = Attr(key);
  return v ? std::string(*v) : std::move(fallback);
}

Node* Node::AddChild(std::unique_ptr<Node> child) {
  if (cache_marked_.load(std::memory_order_relaxed)) {
    internal::BumpMutationEpoch();
  }
  children_.push_back(std::move(child));
  return children_.back().get();
}

Node* Node::AddElement(std::string name) {
  return AddChild(Element(std::move(name)));
}

Node* Node::AddElementWithText(std::string name, std::string text) {
  return AddChild(ElementWithText(std::move(name), std::move(text)));
}

Node* Node::AddText(std::string text) {
  return AddChild(Text(std::move(text)));
}

size_t Node::ElementCount() const {
  size_t n = 0;
  for (const auto& c : children_) {
    if (c->is_element()) ++n;
  }
  return n;
}

const Node* Node::Child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->is_element() && c->name_ == name) return c.get();
  }
  return nullptr;
}

Node* Node::Child(std::string_view name) {
  return const_cast<Node*>(static_cast<const Node*>(this)->Child(name));
}

std::vector<const Node*> Node::Children(std::string_view name) const {
  std::vector<const Node*> out;
  for (const auto& c : children_) {
    if (c->is_element() && (name == "*" || c->name_ == name)) {
      out.push_back(c.get());
    }
  }
  return out;
}

std::string Node::ChildText(std::string_view name) const {
  const Node* c = Child(name);
  return c ? c->InnerText() : std::string();
}

std::string Node::InnerText() const {
  if (is_text()) return text_;
  std::string out;
  for (const auto& c : children_) {
    out += c->InnerText();
  }
  return out;
}

std::unique_ptr<Node> Node::RemoveChild(size_t i) {
  if (cache_marked_.load(std::memory_order_relaxed)) {
    internal::BumpMutationEpoch();
  }
  auto out = std::move(children_[i]);
  children_.erase(children_.begin() + static_cast<ptrdiff_t>(i));
  return out;
}

std::unique_ptr<Node> Node::ReplaceChild(size_t i,
                                         std::unique_ptr<Node> child) {
  if (cache_marked_.load(std::memory_order_relaxed)) {
    internal::BumpMutationEpoch();
  }
  auto out = std::move(children_[i]);
  children_[i] = std::move(child);
  return out;
}

std::unique_ptr<Node> Node::Clone() const {
  auto n = std::unique_ptr<Node>(new Node(type_));
  n->name_ = name_;
  n->text_ = text_;
  n->attrs_ = attrs_;
  n->children_.reserve(children_.size());
  for (const auto& c : children_) {
    n->children_.push_back(c->Clone());
  }
  return n;
}

bool Node::StructurallyEquals(const Node& other) const {
  if (this == &other) return true;  // shared items compare constantly
  // When both hashes are cached and differ, the trees cannot be equal.
  {
    const uint64_t epoch = DomMutationEpoch();
    if (hash_epoch_.load(std::memory_order_acquire) == epoch &&
        other.hash_epoch_.load(std::memory_order_acquire) == epoch &&
        cached_hash_.load(std::memory_order_relaxed) !=
            other.cached_hash_.load(std::memory_order_relaxed)) {
      return false;
    }
  }
  if (type_ != other.type_ || name_ != other.name_ || text_ != other.text_ ||
      attrs_ != other.attrs_ || children_.size() != other.children_.size()) {
    return false;
  }
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->StructurallyEquals(*other.children_[i])) return false;
  }
  return true;
}

namespace {

// FNV-1a over bytes, with single-byte tags separating the fields so
// ("ab", "c") and ("a", "bc") cannot collide trivially.
inline uint64_t Fnv(uint64_t h, std::string_view s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

inline uint64_t FnvTag(uint64_t h, unsigned char tag) {
  h ^= tag;
  h *= 0x100000001b3ull;
  return h;
}

inline uint64_t MixHash(uint64_t h, uint64_t v) {
  // splitmix64-style finalizer folded into the running hash: each child's
  // (cached) subtree hash enters as one well-stirred word.
  v += 0x9e3779b97f4a7c15ull;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
  return (h ^ (v ^ (v >> 31))) * 0x100000001b3ull;
}

}  // namespace

uint64_t StructuralHash(const Node& node) {
  const uint64_t epoch = DomMutationEpoch();
  if (node.hash_epoch_.load(std::memory_order_acquire) == epoch) {
    return node.cached_hash_.load(std::memory_order_relaxed);
  }
  uint64_t h = 0xcbf29ce484222325ull;
  h = FnvTag(h, node.is_element() ? 1 : 2);
  h = Fnv(h, node.name());
  h = Fnv(h, node.text());
  for (const auto& [k, v] : node.attrs()) {
    h = FnvTag(h, 3);
    h = Fnv(h, k);
    h = FnvTag(h, 4);
    h = Fnv(h, v);
  }
  for (const auto& c : node.children()) {
    h = MixHash(h, StructuralHash(*c));  // children hit their own caches
  }
  // Value first, epoch last (release): a reader that sees the fresh
  // epoch is guaranteed to see the hash it stamps.
  node.cached_hash_.store(h, std::memory_order_relaxed);
  node.hash_epoch_.store(epoch, std::memory_order_release);
  node.cache_marked_.store(true, std::memory_order_relaxed);  // mutations bump
  return h;
}

}  // namespace mqp::xml
