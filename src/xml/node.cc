#include "xml/node.h"

namespace mqp::xml {

namespace {
// The library is single-threaded per process (discrete-event simulation);
// a plain counter keeps the hot path free of atomics.
uint64_t g_dom_nodes_built = 0;
}  // namespace

namespace internal {
void CountNodeBuilt() { ++g_dom_nodes_built; }
}  // namespace internal

uint64_t DomNodesBuilt() { return g_dom_nodes_built; }

std::unique_ptr<Node> Node::Element(std::string name) {
  auto n = std::unique_ptr<Node>(new Node(NodeType::kElement));
  n->name_ = std::move(name);
  return n;
}

std::unique_ptr<Node> Node::Text(std::string text) {
  auto n = std::unique_ptr<Node>(new Node(NodeType::kText));
  n->text_ = std::move(text);
  return n;
}

std::unique_ptr<Node> Node::ElementWithText(std::string name,
                                            std::string text) {
  auto n = Element(std::move(name));
  n->AddText(std::move(text));
  return n;
}

void Node::SetAttr(std::string_view key, std::string value) {
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(std::string(key), std::move(value));
}

std::optional<std::string_view> Node::Attr(std::string_view key) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return std::string_view(v);
  }
  return std::nullopt;
}

std::string Node::AttrOr(std::string_view key, std::string fallback) const {
  auto v = Attr(key);
  return v ? std::string(*v) : std::move(fallback);
}

Node* Node::AddChild(std::unique_ptr<Node> child) {
  children_.push_back(std::move(child));
  return children_.back().get();
}

Node* Node::AddElement(std::string name) {
  return AddChild(Element(std::move(name)));
}

Node* Node::AddElementWithText(std::string name, std::string text) {
  return AddChild(ElementWithText(std::move(name), std::move(text)));
}

Node* Node::AddText(std::string text) {
  return AddChild(Text(std::move(text)));
}

size_t Node::ElementCount() const {
  size_t n = 0;
  for (const auto& c : children_) {
    if (c->is_element()) ++n;
  }
  return n;
}

const Node* Node::Child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->is_element() && c->name_ == name) return c.get();
  }
  return nullptr;
}

Node* Node::Child(std::string_view name) {
  return const_cast<Node*>(static_cast<const Node*>(this)->Child(name));
}

std::vector<const Node*> Node::Children(std::string_view name) const {
  std::vector<const Node*> out;
  for (const auto& c : children_) {
    if (c->is_element() && (name == "*" || c->name_ == name)) {
      out.push_back(c.get());
    }
  }
  return out;
}

std::string Node::ChildText(std::string_view name) const {
  const Node* c = Child(name);
  return c ? c->InnerText() : std::string();
}

std::string Node::InnerText() const {
  if (is_text()) return text_;
  std::string out;
  for (const auto& c : children_) {
    out += c->InnerText();
  }
  return out;
}

std::unique_ptr<Node> Node::RemoveChild(size_t i) {
  auto out = std::move(children_[i]);
  children_.erase(children_.begin() + static_cast<ptrdiff_t>(i));
  return out;
}

std::unique_ptr<Node> Node::ReplaceChild(size_t i,
                                         std::unique_ptr<Node> child) {
  auto out = std::move(children_[i]);
  children_[i] = std::move(child);
  return out;
}

std::unique_ptr<Node> Node::Clone() const {
  auto n = std::unique_ptr<Node>(new Node(type_));
  n->name_ = name_;
  n->text_ = text_;
  n->attrs_ = attrs_;
  n->children_.reserve(children_.size());
  for (const auto& c : children_) {
    n->children_.push_back(c->Clone());
  }
  return n;
}

bool Node::Equals(const Node& other) const {
  if (type_ != other.type_ || name_ != other.name_ || text_ != other.text_ ||
      attrs_ != other.attrs_ || children_.size() != other.children_.size()) {
    return false;
  }
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

}  // namespace mqp::xml
