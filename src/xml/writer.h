// XML serialization.
#pragma once

#include <string>

#include "xml/node.h"

namespace mqp::xml {

/// Serialization options.
struct WriteOptions {
  /// Pretty-print with 2-space indentation and newlines. Text nodes force
  /// their parent element onto a single line so content round-trips exactly.
  bool indent = false;
};

/// \brief Serializes `node` (and subtree) to XML text.
std::string Serialize(const Node& node, const WriteOptions& opts = {});

/// \brief Serialized size in bytes without materializing the string.
/// Used by the cost model and the network simulator for message sizing.
size_t SerializedSize(const Node& node);

}  // namespace mqp::xml
