// XML serialization.
#pragma once

#include <string>

#include "xml/node.h"

namespace mqp::xml {

/// Serialization options.
struct WriteOptions {
  /// Pretty-print with 2-space indentation and newlines. Text nodes force
  /// their parent element onto a single line so content round-trips exactly.
  bool indent = false;
};

/// \brief Serializes `node` (and subtree) to XML text.
std::string Serialize(const Node& node, const WriteOptions& opts = {});

/// \brief Process-wide count of Serialize() calls. The engine's
/// evaluation path must never serialize items (set semantics key on
/// StructuralHash instead); tests snapshot this around a code path and
/// assert on the delta, the same pattern as DomNodesBuilt().
uint64_t SerializeCalls();

/// \brief Serialized size in bytes without materializing the string.
/// Used by the cost model and the network simulator for message sizing.
/// Cached lazily on the node (per-subtree), invalidated by any DOM
/// mutation in the process (see DomMutationEpoch) — repeated costing of
/// the same immutable items is O(1) after the first call.
size_t SerializedSize(const Node& node);

}  // namespace mqp::xml
