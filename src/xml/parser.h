// Recursive-descent XML parser for the subset used by mqp.
//
// Supported: elements, attributes (single/double quoted), character data,
// the five predefined entities plus decimal/hex character references,
// comments, processing instructions, XML declarations, CDATA sections and
// DOCTYPE (skipped). Namespaces are treated lexically (prefixes kept in
// names). Whitespace-only text runs are dropped (insignificant whitespace),
// so pretty-printed documents re-parse to the same tree. Errors carry a
// byte offset.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/node.h"

namespace mqp::xml {

/// \brief Parses a document with a single root element.
Result<std::unique_ptr<Node>> Parse(std::string_view input);

/// \brief Parses a forest: zero or more sibling elements at top level
/// (used for MQP verbatim data sections).
Result<std::vector<std::unique_ptr<Node>>> ParseForest(std::string_view input);

/// \brief Escapes text content (&, <, >).
std::string EscapeText(std::string_view s);

/// \brief Escapes an attribute value (&, <, >, ", ').
std::string EscapeAttr(std::string_view s);

/// \brief Decodes the entity reference starting at `pos` in `in` (which
/// must point at '&'): the five predefined entities plus decimal/hex
/// character references (emitted as UTF-8). Appends the decoded bytes to
/// `out` and returns the offset just past the ';'. The single source of
/// entity-decoding truth, shared by the DOM parser and the streaming
/// TokenReader; errors carry byte offsets in the parser's format.
Result<size_t> DecodeEntityAt(std::string_view in, size_t pos,
                              std::string* out);

}  // namespace mqp::xml
