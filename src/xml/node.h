// In-memory XML tree: the data model for MQPs and for all data items.
//
// The paper serializes query plans and partial results as XML; this module
// supplies the DOM that the rest of the library builds on. Only the XML
// subset that the system needs is modeled: elements, attributes and text.
// (Comments, PIs and CDATA are accepted by the parser but not retained.)
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mqp::xml {

enum class NodeType { kElement, kText };

namespace internal {
/// Bumps the process-wide node-construction counter (see DomNodesBuilt).
void CountNodeBuilt();
}  // namespace internal

/// \brief Process-wide monotonic count of Node objects ever constructed
/// (elements and text, including clones). The streaming wire codec exists
/// to keep this flat on routing hops: tests and benches snapshot it around
/// a code path and assert on the delta (dom_nodes_built counters in
/// PeerCounters / NetStats are fed from it).
uint64_t DomNodesBuilt();

/// \brief One node of an XML tree (element or text). Elements own their
/// children; attribute order is preserved.
class Node {
 public:
  /// Creates an element node `<name>`.
  static std::unique_ptr<Node> Element(std::string name);

  /// Creates a text node.
  static std::unique_ptr<Node> Text(std::string text);

  /// Creates an element with a single text child: `<name>text</name>`.
  static std::unique_ptr<Node> ElementWithText(std::string name,
                                               std::string text);

  NodeType type() const { return type_; }
  bool is_element() const { return type_ == NodeType::kElement; }
  bool is_text() const { return type_ == NodeType::kText; }

  /// Element tag name (empty for text nodes).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Text content (text nodes only).
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  // --- attributes -----------------------------------------------------------

  /// Sets (or replaces) attribute `key`.
  void SetAttr(std::string_view key, std::string value);

  /// Returns the attribute value, or nullopt if absent.
  std::optional<std::string_view> Attr(std::string_view key) const;

  /// Attribute value or `fallback` when absent.
  std::string AttrOr(std::string_view key, std::string fallback) const;

  const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }

  // --- children -------------------------------------------------------------

  /// Appends `child` and returns a raw pointer to it (owned by this node).
  Node* AddChild(std::unique_ptr<Node> child);

  /// Appends a new element child `<name>` and returns it.
  Node* AddElement(std::string name);

  /// Appends a new element child `<name>text</name>` and returns it.
  Node* AddElementWithText(std::string name, std::string text);

  /// Appends a text child.
  Node* AddText(std::string text);

  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }
  std::vector<std::unique_ptr<Node>>& mutable_children() { return children_; }

  /// Number of element children.
  size_t ElementCount() const;

  /// First element child named `name`, or nullptr.
  const Node* Child(std::string_view name) const;
  Node* Child(std::string_view name);

  /// All element children named `name` (or all element children if
  /// `name == "*"`).
  std::vector<const Node*> Children(std::string_view name) const;

  /// Concatenated text of the first child element `name`, or "" if absent.
  std::string ChildText(std::string_view name) const;

  /// Concatenated text of all descendant text nodes.
  std::string InnerText() const;

  /// Removes and returns the i-th child. Precondition: i < children().size().
  std::unique_ptr<Node> RemoveChild(size_t i);

  /// Replaces the i-th child, returning the old one.
  std::unique_ptr<Node> ReplaceChild(size_t i, std::unique_ptr<Node> child);

  /// Deep copy.
  std::unique_ptr<Node> Clone() const;

  /// Structural equality (name, attrs incl. order, children recursively).
  bool Equals(const Node& other) const;

 private:
  explicit Node(NodeType type) : type_(type) { internal::CountNodeBuilt(); }

  NodeType type_;
  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<std::unique_ptr<Node>> children_;
};

}  // namespace mqp::xml
