// In-memory XML tree: the data model for MQPs and for all data items.
//
// The paper serializes query plans and partial results as XML; this module
// supplies the DOM that the rest of the library builds on. Only the XML
// subset that the system needs is modeled: elements, attributes and text.
// (Comments, PIs and CDATA are accepted by the parser but not retained.)
#pragma once

#include <cstdint>
#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mqp::xml {

enum class NodeType { kElement, kText };

namespace internal {
/// Bumps the process-wide node-construction counter (see DomNodesBuilt).
void CountNodeBuilt();
/// Bumps the process-wide mutation epoch (see DomMutationEpoch).
void BumpMutationEpoch();
}  // namespace internal

/// \brief Process-wide monotonic count of Node objects ever constructed
/// (elements and text, including clones). The streaming wire codec exists
/// to keep this flat on routing hops: tests and benches snapshot it around
/// a code path and assert on the delta (dom_nodes_built counters in
/// PeerCounters / NetStats are fed from it).
uint64_t DomNodesBuilt();

/// \brief Process-wide cache-invalidation epoch. Per-node caches (the
/// lazy SerializedSize and StructuralHash caches) are tagged with the
/// epoch they were computed in and are valid only while it has not
/// moved. The caching walks mark every node of the cached subtree, and
/// only mutations of *marked* nodes bump the epoch — so building fresh
/// trees (wire decode, result materialization) never flushes the caches
/// of stored immutable items, while any mutation that could touch a
/// cached subtree flushes everything (coarse but sound: a node can only
/// enter a cached subtree via AddChild/ReplaceChild on a marked parent,
/// which bumps).
uint64_t DomMutationEpoch();

/// \brief One node of an XML tree (element or text). Elements own their
/// children; attribute order is preserved.
class Node {
 public:
  /// Creates an element node `<name>`.
  static std::unique_ptr<Node> Element(std::string name);

  /// Creates a text node.
  static std::unique_ptr<Node> Text(std::string text);

  /// Creates an element with a single text child: `<name>text</name>`.
  static std::unique_ptr<Node> ElementWithText(std::string name,
                                               std::string text);

  NodeType type() const { return type_; }
  bool is_element() const { return type_ == NodeType::kElement; }
  bool is_text() const { return type_ == NodeType::kText; }

  /// Element tag name (empty for text nodes).
  const std::string& name() const { return name_; }
  void set_name(std::string name) {
    if (cache_marked_.load(std::memory_order_relaxed)) {
      internal::BumpMutationEpoch();
    }
    name_ = std::move(name);
  }

  /// Text content (text nodes only).
  const std::string& text() const { return text_; }
  void set_text(std::string text) {
    if (cache_marked_.load(std::memory_order_relaxed)) {
      internal::BumpMutationEpoch();
    }
    text_ = std::move(text);
  }

  // --- attributes -----------------------------------------------------------

  /// Sets (or replaces) attribute `key`.
  void SetAttr(std::string_view key, std::string value);

  /// Returns the attribute value, or nullopt if absent.
  std::optional<std::string_view> Attr(std::string_view key) const;

  /// Attribute value or `fallback` when absent.
  std::string AttrOr(std::string_view key, std::string fallback) const;

  const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }

  // --- children -------------------------------------------------------------

  /// Appends `child` and returns a raw pointer to it (owned by this node).
  Node* AddChild(std::unique_ptr<Node> child);

  /// Appends a new element child `<name>` and returns it.
  Node* AddElement(std::string name);

  /// Appends a new element child `<name>text</name>` and returns it.
  Node* AddElementWithText(std::string name, std::string text);

  /// Appends a text child.
  Node* AddText(std::string text);

  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }
  std::vector<std::unique_ptr<Node>>& mutable_children() {
    // Conservative: the caller may mutate freely (bump only matters — and
    // only fires — when this node sits inside a cached subtree).
    if (cache_marked_.load(std::memory_order_relaxed)) {
      internal::BumpMutationEpoch();
    }
    return children_;
  }

  /// Number of element children.
  size_t ElementCount() const;

  /// First element child named `name`, or nullptr.
  const Node* Child(std::string_view name) const;
  Node* Child(std::string_view name);

  /// All element children named `name` (or all element children if
  /// `name == "*"`).
  std::vector<const Node*> Children(std::string_view name) const;

  /// Concatenated text of the first child element `name`, or "" if absent.
  std::string ChildText(std::string_view name) const;

  /// Concatenated text of all descendant text nodes.
  std::string InnerText() const;

  /// Removes and returns the i-th child. Precondition: i < children().size().
  std::unique_ptr<Node> RemoveChild(size_t i);

  /// Replaces the i-th child, returning the old one.
  std::unique_ptr<Node> ReplaceChild(size_t i, std::unique_ptr<Node> child);

  /// Deep copy.
  std::unique_ptr<Node> Clone() const;

  /// Structural equality (type, name, text, attrs incl. order, children
  /// recursively). The companion of StructuralHash: two nodes with equal
  /// hashes are verified with this before being treated as duplicates.
  bool StructurallyEquals(const Node& other) const;

  /// Alias retained for existing call sites.
  bool Equals(const Node& other) const { return StructurallyEquals(other); }

 private:
  friend size_t SerializedSize(const Node& node);   // lazy size cache
  friend uint64_t StructuralHash(const Node& node); // lazy hash cache

  explicit Node(NodeType type) : type_(type) { internal::CountNodeBuilt(); }

  NodeType type_;
  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<std::unique_ptr<Node>> children_;
  // Lazy caches, valid while their epoch == DomMutationEpoch().
  // 0 = never computed (the live epoch starts at 1). cache_marked_ is set
  // on every node a caching walk visits; mutators bump the global epoch
  // only for marked nodes, so fresh tree construction leaves the caches
  // of stored items untouched.
  //
  // Thread safety (DESIGN.md §8): a tree is either peer-confined (one
  // thread reads and mutates it, serialized by the transport) or a
  // shared immutable item (many threads read, nobody mutates). The
  // caches must therefore survive concurrent *fills* on shared items:
  // the value is stored first, then the epoch is published with release
  // ordering, and readers load the epoch with acquire before trusting
  // the value. Racing fills write identical bytes (hash and size are
  // pure functions of the immutable tree), so whichever store lands
  // last is as good as the first.
  mutable std::atomic<uint64_t> size_epoch_{0};  // serialized size
  mutable std::atomic<size_t> cached_size_{0};   // (see writer.cc)
  mutable std::atomic<uint64_t> hash_epoch_{0};  // structural hash
  mutable std::atomic<uint64_t> cached_hash_{0};
  mutable std::atomic<bool> cache_marked_{false};
};

/// \brief Deep structural hash over (type, name, text, attrs incl. order,
/// children recursively). Equal trees hash equal; the engine's set
/// semantics (distinct union, difference) key hash tables on it instead
/// of serialized strings, re-verifying candidate matches with
/// Node::StructurallyEquals. Cached per subtree under the DOM mutation
/// epoch (the SerializedSize pattern), so re-hashing a shared immutable
/// item is O(1) after the first computation.
uint64_t StructuralHash(const Node& node);

}  // namespace mqp::xml
