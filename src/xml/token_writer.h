// Streaming XML emitter — the encode half of the streaming codec
// (DESIGN.md §5).
//
// Replaces the build-DOM-then-Serialize pattern on the wire path: callers
// emit Start/Attr/Text/End events and the writer appends the compact
// serialization directly, byte-identical to xml::Serialize of the
// equivalent tree (same escaping, "/>" for childless elements). A writer
// constructed without an output string is a counting sink: it runs the
// same emission logic but only tallies bytes, which is how PlanWireSize
// prices a plan without materializing anything.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "xml/node.h"

namespace mqp::xml {

class TokenWriter {
 public:
  /// Counting sink: size() prices the emission, nothing is materialized.
  TokenWriter() = default;

  /// String sink: appends to `*out` (not owned, must outlive the writer).
  explicit TokenWriter(std::string* out) : out_(out) {}

  /// Opens `<name ...`. The tag stays open for attributes until the first
  /// Text/Start/End.
  void Start(std::string_view name);

  /// Emits ` key="value"` with attribute escaping. Must directly follow
  /// Start or another Attr.
  void Attr(std::string_view key, std::string_view value);

  /// Emits escaped character data. An empty string still closes the open
  /// start tag (mirroring a DOM empty-text child: `<a></a>`, not `<a/>`).
  void Text(std::string_view text);

  /// Closes the innermost open element: "/>" when nothing was emitted
  /// since its Start, "</name>" otherwise.
  void End();

  /// Emits a DOM subtree in compact form — the bridge for data items,
  /// which stay modeled as xml::Node.
  void Write(const Node& node);

  /// Bytes emitted so far (== the output growth for a string sink).
  size_t size() const { return size_; }

  /// True when every Start has been End-ed (sanity checks in tests).
  bool balanced() const { return stack_.empty(); }

 private:
  struct Open {
    std::string name;
    bool has_content = false;
  };

  void CloseStartTag();
  void Emit(std::string_view raw);
  void EmitChar(char c);
  void EmitEscapedText(std::string_view s);
  void EmitEscapedAttr(std::string_view s);

  std::string* out_ = nullptr;
  size_t size_ = 0;
  std::vector<Open> stack_;
};

}  // namespace mqp::xml
