#include "xml/writer.h"

#include <atomic>

#include "xml/parser.h"

namespace mqp::xml {

namespace {

bool HasTextChild(const Node& node) {
  for (const auto& c : node.children()) {
    if (c->is_text()) return true;
  }
  return false;
}

void WriteNode(const Node& node, const WriteOptions& opts, int depth,
               std::string* out) {
  if (node.is_text()) {
    *out += EscapeText(node.text());
    return;
  }
  const bool pretty = opts.indent && !HasTextChild(node);
  auto pad = [&](int d) {
    if (opts.indent) out->append(static_cast<size_t>(d) * 2, ' ');
  };
  pad(depth);
  *out += '<';
  *out += node.name();
  for (const auto& [k, v] : node.attrs()) {
    *out += ' ';
    *out += k;
    *out += "=\"";
    *out += EscapeAttr(v);
    *out += '"';
  }
  if (node.children().empty()) {
    *out += "/>";
    if (opts.indent) *out += '\n';
    return;
  }
  *out += '>';
  if (pretty) *out += '\n';
  for (const auto& c : node.children()) {
    if (pretty) {
      WriteNode(*c, opts, depth + 1, out);
    } else {
      WriteOptions flat;
      flat.indent = false;
      WriteNode(*c, flat, 0, out);
    }
  }
  if (pretty) pad(depth);
  *out += "</";
  *out += node.name();
  *out += '>';
  if (opts.indent) *out += '\n';
}

size_t EscapedTextSize(const std::string& s) {
  size_t n = 0;
  for (char c : s) {
    switch (c) {
      case '&':
        n += 5;
        break;
      case '<':
      case '>':
        n += 4;
        break;
      default:
        ++n;
    }
  }
  return n;
}

size_t EscapedAttrSize(const std::string& s) {
  size_t n = 0;
  for (char c : s) {
    switch (c) {
      case '&':
        n += 5;
        break;
      case '"':
      case '\'':
        n += 6;
        break;
      case '<':
      case '>':
        n += 4;
        break;
      default:
        ++n;
    }
  }
  return n;
}

}  // namespace

namespace {
// Thread-local: each handler thread counts its own serializations (the
// delta-snapshot pattern, same as xml::DomNodesBuilt()).
thread_local uint64_t g_serialize_calls = 0;
}

std::string Serialize(const Node& node, const WriteOptions& opts) {
  ++g_serialize_calls;
  std::string out;
  WriteNode(node, opts, 0, &out);
  return out;
}

uint64_t SerializeCalls() { return g_serialize_calls; }

size_t SerializedSize(const Node& node) {
  const uint64_t epoch = DomMutationEpoch();
  if (node.size_epoch_.load(std::memory_order_acquire) == epoch) {
    return node.cached_size_.load(std::memory_order_relaxed);
  }
  size_t n;
  if (node.is_text()) {
    n = EscapedTextSize(node.text());
  } else {
    n = 1 + node.name().size();  // "<name"
    for (const auto& [k, v] : node.attrs()) {
      n += 1 + k.size() + 2 + EscapedAttrSize(v) + 1;  // ' k="v"'
    }
    if (node.children().empty()) {
      n += 2;  // "/>"
    } else {
      n += 1;  // '>'
      for (const auto& c : node.children()) {
        n += SerializedSize(*c);
      }
      n += 3 + node.name().size();  // "</name>"
    }
  }
  // Value first, epoch last (release) — see the cache notes in node.h.
  node.cached_size_.store(n, std::memory_order_relaxed);
  node.size_epoch_.store(epoch, std::memory_order_release);
  node.cache_marked_.store(true, std::memory_order_relaxed);
  return n;
}

}  // namespace mqp::xml
