#include "xml/xpath.h"

#include <cctype>

#include "common/strings.h"

namespace mqp::xml {

namespace {

bool IsStepChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == ':';
}

// Numeric comparison when both parse, else lexicographic.
int Compare(const std::string& a, const std::string& b) {
  return mqp::CompareNumericAware(a, b);
}

void CollectDescendants(const Node& n, const std::string& name,
                        std::vector<const Node*>* out) {
  for (const auto& c : n.children()) {
    if (!c->is_element()) continue;
    if (name == "*" || c->name() == name) out->push_back(c.get());
    CollectDescendants(*c, name, out);
  }
}

}  // namespace

Result<XPath> XPath::Parse(std::string_view expr) {
  XPath xp;
  xp.text_ = std::string(expr);
  std::string_view s = mqp::Trim(expr);
  if (s.empty()) return Status::ParseError("empty XPath expression");

  size_t pos = 0;
  bool first = true;
  xp.absolute_ = !s.empty() && s[0] == '/';
  while (pos < s.size()) {
    Step step;
    if (s[pos] == '/') {
      ++pos;
      if (pos < s.size() && s[pos] == '/') {
        step.descendant = true;
        ++pos;
      }
    } else if (first) {
      // Relative path: first step has no leading slash.
    } else {
      return Status::ParseError("expected '/' in XPath at offset " +
                                std::to_string(pos));
    }
    first = false;
    if (pos >= s.size()) {
      return Status::ParseError("trailing '/' in XPath");
    }
    if (s[pos] == '@') {
      step.is_attr = true;
      ++pos;
    }
    if (s[pos] == '*') {
      step.name = "*";
      ++pos;
    } else {
      const size_t start = pos;
      while (pos < s.size() && IsStepChar(s[pos])) ++pos;
      if (pos == start) {
        return Status::ParseError("expected step name at offset " +
                                  std::to_string(pos));
      }
      step.name = std::string(s.substr(start, pos - start));
    }
    // Predicates.
    while (pos < s.size() && s[pos] == '[') {
      // Find the closing ']', skipping quoted literals so ids containing
      // ']' survive ("[@id='a]b']"). A quote opens a literal only right
      // after a comparison operator — mirroring the literal parse below —
      // so bare literals containing an apostrophe ("[id=it's]") keep
      // their legacy meaning.
      size_t close = pos + 1;
      bool after_op = false;
      while (close < s.size() && s[close] != ']') {
        const char c = s[close];
        if ((c == '\'' || c == '"') && after_op) {
          const size_t end = s.find(c, close + 1);
          if (end == std::string_view::npos) {
            close = s.size();  // unterminated literal: unterminated predicate
            break;
          }
          close = end + 1;
          after_op = false;
          continue;
        }
        if (c == '=' || c == '<' || c == '>') {
          after_op = true;
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
          after_op = false;
        }
        ++close;
      }
      if (close >= s.size()) {
        return Status::ParseError("unterminated predicate");
      }
      std::string_view body = mqp::Trim(s.substr(pos + 1, close - pos - 1));
      pos = close + 1;
      if (body.empty()) return Status::ParseError("empty predicate");
      Predicate pred;
      // Position predicate: all digits.
      bool all_digits = true;
      for (char c : body) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          all_digits = false;
          break;
        }
      }
      if (all_digits) {
        pred.is_position = true;
        int64_t v = 0;
        mqp::ParseInt64(body, &v);
        if (v < 1) return Status::ParseError("position predicate must be >=1");
        pred.position = static_cast<size_t>(v);
        step.preds.push_back(std::move(pred));
        continue;
      }
      // operand (op literal)?
      size_t i = 0;
      if (body[i] == '@') {
        pred.operand_is_attr = true;
        ++i;
      }
      if (body[i] == '.') {
        pred.operand_is_self = true;
        ++i;
      } else {
        const size_t start = i;
        while (i < body.size() && IsStepChar(body[i])) ++i;
        if (i == start && !pred.operand_is_self) {
          return Status::ParseError("expected predicate operand");
        }
        pred.operand = std::string(body.substr(start, i - start));
      }
      while (i < body.size() &&
             std::isspace(static_cast<unsigned char>(body[i]))) {
        ++i;
      }
      if (i < body.size()) {
        // Comparison operator.
        if (body[i] == '!' && i + 1 < body.size() && body[i + 1] == '=') {
          pred.op = CompareOp::kNe;
          i += 2;
        } else if (body[i] == '<') {
          ++i;
          if (i < body.size() && body[i] == '=') {
            pred.op = CompareOp::kLe;
            ++i;
          } else {
            pred.op = CompareOp::kLt;
          }
        } else if (body[i] == '>') {
          ++i;
          if (i < body.size() && body[i] == '=') {
            pred.op = CompareOp::kGe;
            ++i;
          } else {
            pred.op = CompareOp::kGt;
          }
        } else if (body[i] == '=') {
          pred.op = CompareOp::kEq;
          ++i;
        } else {
          return Status::ParseError("bad predicate operator");
        }
        while (i < body.size() &&
               std::isspace(static_cast<unsigned char>(body[i]))) {
          ++i;
        }
        if (i >= body.size()) {
          return Status::ParseError("missing predicate literal");
        }
        if (body[i] == '\'' || body[i] == '"') {
          const char quote = body[i];
          const size_t end = body.find(quote, i + 1);
          if (end == std::string_view::npos) {
            return Status::ParseError("unterminated string literal");
          }
          pred.literal = std::string(body.substr(i + 1, end - i - 1));
          i = end + 1;
        } else {
          pred.literal = std::string(mqp::Trim(body.substr(i)));
          i = body.size();
        }
      }
      step.preds.push_back(std::move(pred));
    }
    xp.steps_.push_back(std::move(step));
  }
  if (xp.steps_.empty()) return Status::ParseError("no steps in XPath");
  // Attribute steps may only be final.
  for (size_t i = 0; i + 1 < xp.steps_.size(); ++i) {
    if (xp.steps_[i].is_attr) {
      return Status::ParseError("attribute step must be final");
    }
  }
  return xp;
}

bool XPath::selects_attribute() const {
  return !steps_.empty() && steps_.back().is_attr;
}

std::optional<std::string> XPath::StepKeyEqLiteral(size_t i,
                                                   std::string_view key,
                                                   bool* attr_operand) const {
  const Step& step = steps_[i];
  if (step.preds.size() != 1) return std::nullopt;
  const Predicate& p = step.preds[0];
  if (p.is_position || p.operand_is_self || p.op != CompareOp::kEq ||
      p.operand != key) {
    return std::nullopt;
  }
  if (attr_operand != nullptr) *attr_operand = p.operand_is_attr;
  return p.literal;
}

XPath XPath::SuffixFrom(size_t first) const {
  // text_ is left empty: nothing reads it, and this runs per fetch on
  // the store's steady path.
  XPath out;
  out.absolute_ = true;
  out.steps_.assign(steps_.begin() + static_cast<ptrdiff_t>(first),
                    steps_.end());
  return out;
}

bool XPath::LiteralEquals(const std::string& a, const std::string& b) {
  return Compare(a, b) == 0;
}

bool XPath::MatchPredicates(const Node& n,
                            const std::vector<Predicate>& preds,
                            size_t position) const {
  for (const auto& p : preds) {
    if (p.is_position) {
      if (position != p.position) return false;
      continue;
    }
    std::string value;
    bool present = false;
    if (p.operand_is_self) {
      value = n.InnerText();
      present = true;
    } else if (p.operand_is_attr) {
      auto a = n.Attr(p.operand);
      present = a.has_value();
      if (present) value = std::string(*a);
    } else {
      const Node* c = n.Child(p.operand);
      present = c != nullptr;
      if (present) {
        value = c->InnerText();
      } else {
        // Lenient fallback: "[id=245]" also matches an *attribute* named
        // id, so the paper's collection identifiers work verbatim.
        auto a = n.Attr(p.operand);
        present = a.has_value();
        if (present) value = std::string(*a);
      }
    }
    if (p.op == CompareOp::kNone) {
      if (!present) return false;
      continue;
    }
    if (!present) return false;
    const int cmp = Compare(value, p.literal);
    switch (p.op) {
      case CompareOp::kEq:
        if (cmp != 0) return false;
        break;
      case CompareOp::kNe:
        if (cmp == 0) return false;
        break;
      case CompareOp::kLt:
        if (cmp >= 0) return false;
        break;
      case CompareOp::kLe:
        if (cmp > 0) return false;
        break;
      case CompareOp::kGt:
        if (cmp <= 0) return false;
        break;
      case CompareOp::kGe:
        if (cmp < 0) return false;
        break;
      case CompareOp::kNone:
        break;
    }
  }
  return true;
}

std::vector<const Node*> XPath::Eval(const Node& root) const {
  std::vector<const Node*> current;
  // Absolute path: the first step matches the root element itself
  // (document-root semantics), or any descendant for '//'. Relative path:
  // the first step matches the root's children (context-node semantics).
  {
    const Step& s0 = steps_[0];
    std::vector<const Node*> candidates;
    if (s0.is_attr) {
      candidates.push_back(&root);
    } else if (s0.descendant) {
      if (s0.name == "*" || root.name() == s0.name) {
        candidates.push_back(&root);
      }
      CollectDescendants(root, s0.name, &candidates);
    } else if (absolute_) {
      if (s0.name == "*" || root.name() == s0.name) {
        candidates.push_back(&root);
      }
    } else {
      for (const Node* c : root.Children(s0.name)) {
        candidates.push_back(c);
      }
    }
    size_t position = 0;
    for (const Node* c : candidates) {
      ++position;
      if (s0.is_attr) {
        if (c->Attr(s0.name).has_value()) current.push_back(c);
      } else if (MatchPredicates(*c, s0.preds, position)) {
        current.push_back(c);
      }
    }
  }
  for (size_t si = 1; si < steps_.size(); ++si) {
    const Step& step = steps_[si];
    std::vector<const Node*> next;
    for (const Node* ctx : current) {
      if (step.is_attr) {
        if (ctx->Attr(step.name).has_value()) next.push_back(ctx);
        continue;
      }
      std::vector<const Node*> candidates;
      if (step.descendant) {
        CollectDescendants(*ctx, step.name, &candidates);
      } else {
        for (const Node* c : ctx->Children(step.name)) {
          candidates.push_back(c);
        }
      }
      size_t position = 0;
      for (const Node* c : candidates) {
        ++position;
        if (MatchPredicates(*c, step.preds, position)) next.push_back(c);
      }
    }
    current = std::move(next);
  }
  return current;
}

std::vector<std::string> XPath::EvalStrings(const Node& root) const {
  std::vector<std::string> out;
  for (const Node* n : Eval(root)) {
    if (selects_attribute()) {
      auto a = n->Attr(steps_.back().name);
      if (a) out.emplace_back(*a);
    } else {
      out.push_back(n->InnerText());
    }
  }
  return out;
}

std::vector<const Node*> EvalXPath(std::string_view expr, const Node& root) {
  auto xp = XPath::Parse(expr);
  if (!xp.ok()) return {};
  return xp->Eval(root);
}

}  // namespace mqp::xml
