// Pull-mode streaming XML tokenizer — the decode half of the streaming
// codec (DESIGN.md §5).
//
// The DOM parser (xml/parser.h) materializes a full Node tree whose
// strings are all owned copies; on the wire hot path that tree is built
// once per hop and immediately discarded. TokenReader walks the same XML
// subset and hands out a flat token stream instead:
//
//   StartElement(name) Attr(key,value)* (Text | StartElement...)* EndElement
//
// Token string_views are borrowed — either directly from the input buffer
// (the common case: no entities) or from an internal scratch that the next
// Next() call overwrites. Consumers must copy what they keep before
// advancing. Entity decoding happens on demand via the parser's shared
// DecodeEntityAt, and the whitespace rules match the DOM parser exactly
// (whitespace-only text runs are dropped; runs coalesce across comments,
// PIs, entities and CDATA), so a token walk observes the same logical
// document as Parse(). Errors carry byte offsets in the same format.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "xml/node.h"

namespace mqp::xml {

enum class TokenType {
  kStartElement,  ///< name = tag; attributes follow as kAttr tokens
  kAttr,          ///< name = key, value = decoded attribute value
  kText,          ///< value = decoded character data (significant runs only)
  kEndElement,    ///< name = tag (synthesized for self-closing elements)
  kEndOfInput,    ///< document fully consumed
};

/// \brief One token. The views stay valid only until the next Next().
struct Token {
  TokenType type = TokenType::kEndOfInput;
  std::string_view name;   ///< element tag or attribute key
  std::string_view value;  ///< attribute value or text content
};

/// \brief Attribute set collected by TokenReader::ReadAttrs. Linear
/// lookup with last-writer-wins duplicates, mirroring Node::SetAttr.
/// Reset() forgets the entries but keeps the slots (and their string
/// capacity), so decoders can reuse one list per recursion depth and
/// decode whole documents without per-element allocations.
class AttrList {
 public:
  void Add(std::string_view key, std::string_view value);

  /// The value for `key`, or nullptr when absent.
  const std::string* Find(std::string_view key) const;

  /// The value for `key`, or `fallback` (mirrors Node::AttrOr).
  std::string Get(std::string_view key, std::string_view fallback = "") const;

  /// Allocation-free Get for comparisons; the view borrows from the list.
  std::string_view GetView(std::string_view key,
                           std::string_view fallback = "") const {
    const std::string* v = Find(key);
    return v != nullptr ? std::string_view(*v) : fallback;
  }

  bool empty() const { return size_ == 0; }

  /// Forgets the entries, keeping slot and string capacity for reuse.
  void Reset() { size_ = 0; }

 private:
  std::vector<std::pair<std::string, std::string>> items_;
  size_t size_ = 0;  // live prefix of items_
};

/// \brief The pull tokenizer. Create one per document; call Next() until
/// kEndOfInput. Errors are sticky: after a failure every subsequent call
/// returns the same status.
class TokenReader {
 public:
  explicit TokenReader(std::string_view input) : in_(input) {}

  /// Advances to and returns the next token.
  Result<Token> Next();

  /// Advance without Result construction — the hot-loop form. Returns
  /// false on a (sticky) error, see status(); on success current() holds
  /// the new token (kEndOfInput at the end of the document).
  bool Advance();

  /// OK until a scan fails; then the failure, permanently.
  const Status& status() const { return status_; }

  /// The token most recently produced by Next()/Advance().
  const Token& current() const { return current_; }

  /// Current byte offset (for error reporting and diagnostics).
  size_t offset() const { return pos_; }

  /// Number of elements currently open.
  size_t depth() const { return stack_.size(); }

  /// Error in the DOM parser's format: "msg (at byte N)".
  Status Error(std::string msg) const;

  // --- convenience consumers ---------------------------------------------------

  /// Collects the attribute tokens of the just-started element into `out`
  /// (Reset first) and returns the first non-attribute token (text, child
  /// start, or the element's end). Precondition: current() is
  /// kStartElement. Element *names* are always borrowed from the input
  /// buffer (never from scratch), so a name view taken here stays valid
  /// for the reader's lifetime.
  Result<Token> ReadAttrs(AttrList* out);

  /// Consumes the current element (through its matching end tag) into a
  /// DOM subtree — the bridge for verbatim data items, which stay modeled
  /// as xml::Node. Precondition: current() is kStartElement. Returns with
  /// current() == that element's kEndElement.
  Result<std::unique_ptr<Node>> MaterializeSubtree();

  /// Consumes tokens until the innermost open element's end tag. Called
  /// right after a kStartElement it skips that whole element; called
  /// mid-content it finishes the enclosing element. Returns with
  /// current() == the matching kEndElement.
  Status SkipToElementEnd();

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < in_.size() ? in_[pos_ + off] : '\0';
  }

  void SkipWhitespace();
  void SkipUntil(std::string_view end);
  void SkipDoctype();
  void SkipMisc();

  // The scanners set current_ and return true, or set status_ and return
  // false — no per-token Result construction on the hot path.
  bool Fail(std::string msg);
  bool ScanName(std::string_view* out);
  bool ScanInTag();
  bool ScanContent();
  bool ScanTopLevel();
  bool ScanStartTag();
  bool ScanCloseTag();

  std::string_view in_;
  size_t pos_ = 0;
  bool in_tag_ = false;          // between a start tag's name and its '>'
  bool done_ = false;
  std::vector<std::string_view> stack_;  // open element names (views into in_)
  std::string scratch_;          // backing for decoded attr/text values
  Token current_;
  Status status_ = Status::OK();
};

}  // namespace mqp::xml
