#include "xml/token_writer.h"

namespace mqp::xml {

void TokenWriter::Emit(std::string_view raw) {
  size_ += raw.size();
  if (out_ != nullptr) out_->append(raw);
}

void TokenWriter::EmitChar(char c) {
  ++size_;
  if (out_ != nullptr) out_->push_back(c);
}

void TokenWriter::EmitEscapedText(std::string_view s) {
  // Same rules as EscapeText; the counting sink prices without copying.
  for (char c : s) {
    switch (c) {
      case '&':
        Emit("&amp;");
        break;
      case '<':
        Emit("&lt;");
        break;
      case '>':
        Emit("&gt;");
        break;
      default:
        EmitChar(c);
    }
  }
}

void TokenWriter::EmitEscapedAttr(std::string_view s) {
  // Same rules as EscapeAttr.
  for (char c : s) {
    switch (c) {
      case '&':
        Emit("&amp;");
        break;
      case '<':
        Emit("&lt;");
        break;
      case '>':
        Emit("&gt;");
        break;
      case '"':
        Emit("&quot;");
        break;
      case '\'':
        Emit("&apos;");
        break;
      default:
        EmitChar(c);
    }
  }
}

void TokenWriter::CloseStartTag() {
  if (stack_.empty() || stack_.back().has_content) return;
  stack_.back().has_content = true;
  EmitChar('>');
}

void TokenWriter::Start(std::string_view name) {
  CloseStartTag();
  EmitChar('<');
  Emit(name);
  stack_.push_back(Open{std::string(name), false});
}

void TokenWriter::Attr(std::string_view key, std::string_view value) {
  EmitChar(' ');
  Emit(key);
  Emit("=\"");
  EmitEscapedAttr(value);
  EmitChar('"');
}

void TokenWriter::Text(std::string_view text) {
  CloseStartTag();
  EmitEscapedText(text);
}

void TokenWriter::End() {
  const Open open = std::move(stack_.back());
  stack_.pop_back();
  if (!open.has_content) {
    Emit("/>");
    return;
  }
  Emit("</");
  Emit(open.name);
  EmitChar('>');
}

void TokenWriter::Write(const Node& node) {
  if (node.is_text()) {
    Text(node.text());
    return;
  }
  Start(node.name());
  for (const auto& [k, v] : node.attrs()) {
    Attr(k, v);
  }
  for (const auto& c : node.children()) {
    Write(*c);
  }
  End();
}

}  // namespace mqp::xml
