// XPath-lite: the navigation subset index servers use as collection
// identifiers (paper §3.2, e.g. "(http://10.3.4.5, /data[id=245])") and the
// query engine uses for field references.
//
// Grammar (a pragmatic subset of XPath 1.0):
//
//   path      := ('/' | '//')? step (('/' | '//') step)*
//   step      := ('@' NAME) | NAME | '*'   followed by predicate*
//   predicate := '[' operand (op literal)? ']' | '[' INTEGER ']'
//   operand   := NAME | '@' NAME | '.'
//   op        := '=' | '!=' | '<' | '<=' | '>' | '>='
//   literal   := 'str' | "str" | bare-token
//
// Comparisons are numeric when both sides parse as numbers, else string.
// A bare `[5]` predicate is a 1-based position filter. A child-element
// operand that matches no child element falls back to the attribute of the
// same name, so the paper's collection ids ("/data[id=245]") work verbatim.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/node.h"

namespace mqp::xml {

/// \brief A parsed XPath-lite expression. Immutable and reusable.
class XPath {
 public:
  /// Parses `expr`; fails on syntax errors.
  static Result<XPath> Parse(std::string_view expr);

  /// Evaluates against `root`. For an *absolute* path ("/store/data"),
  /// `root` acts as the document root: the first step is matched against
  /// `root` itself. For a *relative* path ("seller/city"), the first step
  /// is matched against `root`'s children (standard context-node
  /// semantics). Returns matching elements (for a final attribute step,
  /// the owning elements).
  std::vector<const Node*> Eval(const Node& root) const;

  /// Like Eval but returns string values: attribute values for a final
  /// `@attr` step, otherwise each element's InnerText().
  std::vector<std::string> EvalStrings(const Node& root) const;

  /// The original expression text.
  const std::string& text() const { return text_; }

  /// True if the final step selects an attribute.
  bool selects_attribute() const;

  // --- step introspection -----------------------------------------------------
  //
  // Used by engine::LocalStore to recognize the paper's collection-id
  // shape ("/data[id=245]", "/data[@id='c0']/cd[price<10]") and answer it
  // from its keyed collection map without materializing a DOM view.

  /// Number of steps.
  size_t StepCount() const { return steps_.size(); }

  /// True if step `i` was reached via '//'.
  bool StepIsDescendant(size_t i) const { return steps_[i].descendant; }

  /// True if step `i` is an '@attr' step.
  bool StepIsAttr(size_t i) const { return steps_[i].is_attr; }

  /// Step `i`'s name ("*" for the wildcard step).
  const std::string& StepName(size_t i) const { return steps_[i].name; }

  /// True if step `i` carries no predicates.
  bool StepHasNoPredicates(size_t i) const { return steps_[i].preds.empty(); }

  /// True if any predicate of step `i` is a positional one ("[2]").
  bool StepHasPositionPredicate(size_t i) const {
    for (const Predicate& p : steps_[i].preds) {
      if (p.is_position) return true;
    }
    return false;
  }

  /// If step `i`'s predicates are exactly one equality test on the
  /// child-or-attribute operand `key`, returns the literal compared
  /// against; nullopt otherwise. `attr_operand` (optional) receives
  /// whether the operand was written '@key' (attribute-only, no
  /// child-element fallback).
  std::optional<std::string> StepKeyEqLiteral(size_t i, std::string_view key,
                                              bool* attr_operand
                                              = nullptr) const;

  /// A new absolute XPath made of the steps from `first` on (text() is
  /// empty — the structural form is the path). Precondition:
  /// first < StepCount().
  XPath SuffixFrom(size_t first) const;

  /// The predicate '=' relation: numeric when both sides parse as
  /// numbers, else exact string comparison. Exposed so callers answering
  /// predicates out-of-band (the store's collection-id match) agree with
  /// Eval byte for byte.
  static bool LiteralEquals(const std::string& a, const std::string& b);

 private:
  enum class CompareOp { kNone, kEq, kNe, kLt, kLe, kGt, kGe };

  struct Predicate {
    bool is_position = false;
    size_t position = 0;           // 1-based
    bool operand_is_attr = false;  // @name vs child element name
    bool operand_is_self = false;  // '.'
    std::string operand;           // element/attribute name
    CompareOp op = CompareOp::kNone;  // kNone => existence test
    std::string literal;
  };

  struct Step {
    bool descendant = false;  // reached via '//'
    bool is_attr = false;     // '@name' step
    std::string name;         // element name or "*"
    std::vector<Predicate> preds;
  };

  XPath() = default;

  bool MatchPredicates(const Node& n, const std::vector<Predicate>& preds,
                       size_t position) const;

  std::string text_;
  bool absolute_ = false;
  std::vector<Step> steps_;
};

/// \brief Convenience: parse + Eval in one call; empty result on parse error.
std::vector<const Node*> EvalXPath(std::string_view expr, const Node& root);

}  // namespace mqp::xml
