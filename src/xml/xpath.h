// XPath-lite: the navigation subset index servers use as collection
// identifiers (paper §3.2, e.g. "(http://10.3.4.5, /data[id=245])") and the
// query engine uses for field references.
//
// Grammar (a pragmatic subset of XPath 1.0):
//
//   path      := ('/' | '//')? step (('/' | '//') step)*
//   step      := ('@' NAME) | NAME | '*'   followed by predicate*
//   predicate := '[' operand (op literal)? ']' | '[' INTEGER ']'
//   operand   := NAME | '@' NAME | '.'
//   op        := '=' | '!=' | '<' | '<=' | '>' | '>='
//   literal   := 'str' | "str" | bare-token
//
// Comparisons are numeric when both sides parse as numbers, else string.
// A bare `[5]` predicate is a 1-based position filter. A child-element
// operand that matches no child element falls back to the attribute of the
// same name, so the paper's collection ids ("/data[id=245]") work verbatim.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/node.h"

namespace mqp::xml {

/// \brief A parsed XPath-lite expression. Immutable and reusable.
class XPath {
 public:
  /// Parses `expr`; fails on syntax errors.
  static Result<XPath> Parse(std::string_view expr);

  /// Evaluates against `root`. For an *absolute* path ("/store/data"),
  /// `root` acts as the document root: the first step is matched against
  /// `root` itself. For a *relative* path ("seller/city"), the first step
  /// is matched against `root`'s children (standard context-node
  /// semantics). Returns matching elements (for a final attribute step,
  /// the owning elements).
  std::vector<const Node*> Eval(const Node& root) const;

  /// Like Eval but returns string values: attribute values for a final
  /// `@attr` step, otherwise each element's InnerText().
  std::vector<std::string> EvalStrings(const Node& root) const;

  /// The original expression text.
  const std::string& text() const { return text_; }

  /// True if the final step selects an attribute.
  bool selects_attribute() const;

 private:
  enum class CompareOp { kNone, kEq, kNe, kLt, kLe, kGt, kGe };

  struct Predicate {
    bool is_position = false;
    size_t position = 0;           // 1-based
    bool operand_is_attr = false;  // @name vs child element name
    bool operand_is_self = false;  // '.'
    std::string operand;           // element/attribute name
    CompareOp op = CompareOp::kNone;  // kNone => existence test
    std::string literal;
  };

  struct Step {
    bool descendant = false;  // reached via '//'
    bool is_attr = false;     // '@name' step
    std::string name;         // element name or "*"
    std::vector<Predicate> preds;
  };

  XPath() = default;

  bool MatchPredicates(const Node& n, const std::vector<Predicate>& preds,
                       size_t position) const;

  std::string text_;
  bool absolute_ = false;
  std::vector<Step> steps_;
};

/// \brief Convenience: parse + Eval in one call; empty result on parse error.
std::vector<const Node*> EvalXPath(std::string_view expr, const Node& root);

}  // namespace mqp::xml
