#include "xml/parser.h"

#include <cctype>
#include <cstdlib>
#include <string>

namespace mqp::xml {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':' || c == '-' || c == '.';
}

class ParserImpl {
 public:
  explicit ParserImpl(std::string_view input) : in_(input) {}

  Result<std::vector<std::unique_ptr<Node>>> ParseTopLevel() {
    std::vector<std::unique_ptr<Node>> roots;
    SkipMisc();
    while (!AtEnd()) {
      if (Peek() != '<') {
        return Err("unexpected character data at top level");
      }
      MQP_ASSIGN_OR_RETURN(auto node, ParseElement());
      roots.push_back(std::move(node));
      SkipMisc();
    }
    return roots;
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < in_.size() ? in_[pos_ + off] : '\0';
  }
  void Advance() { ++pos_; }

  bool ConsumeLiteral(std::string_view lit) {
    if (in_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  // Skips whitespace, comments, PIs, XML declarations and DOCTYPE between
  // top-level constructs.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '<') return;
      if (PeekAt(1) == '?') {
        SkipUntil("?>");
      } else if (PeekAt(1) == '!' && PeekAt(2) == '-' && PeekAt(3) == '-') {
        SkipUntil("-->");
      } else if (PeekAt(1) == '!' &&
                 in_.substr(pos_, 9) == "<!DOCTYPE") {
        SkipDoctype();
      } else {
        return;
      }
    }
  }

  void SkipUntil(std::string_view end) {
    const size_t found = in_.find(end, pos_);
    pos_ = (found == std::string_view::npos) ? in_.size() : found + end.size();
  }

  void SkipDoctype() {
    // Skip to the matching '>' allowing one level of [] internal subset.
    int bracket = 0;
    while (!AtEnd()) {
      const char c = Peek();
      Advance();
      if (c == '[') {
        ++bracket;
      } else if (c == ']') {
        --bracket;
      } else if (c == '>' && bracket <= 0) {
        return;
      }
    }
  }

  Status Err(std::string msg) const {
    return Status::ParseError(msg + " (at byte " + std::to_string(pos_) +
                              ")");
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) {
      return Err("expected name");
    }
    const size_t start = pos_;
    Advance();
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(in_.substr(start, pos_ - start));
  }

  Result<std::string> DecodeEntity() {
    // Precondition: Peek() == '&'.
    std::string out;
    MQP_ASSIGN_OR_RETURN(pos_, DecodeEntityAt(in_, pos_, &out));
    return out;
  }

  Result<std::string> ParseAttrValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Err("expected quoted attribute value");
    }
    const char quote = Peek();
    Advance();
    std::string value;
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '&') {
        MQP_ASSIGN_OR_RETURN(auto decoded, DecodeEntity());
        value += decoded;
      } else {
        value.push_back(Peek());
        Advance();
      }
    }
    if (AtEnd()) return Err("unterminated attribute value");
    Advance();  // closing quote
    return value;
  }

  Result<std::unique_ptr<Node>> ParseElement() {
    // Precondition: Peek() == '<' and this is a start tag.
    Advance();  // '<'
    MQP_ASSIGN_OR_RETURN(auto name, ParseName());
    auto elem = Node::Element(name);
    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Err("unterminated start tag");
      if (Peek() == '>') {
        Advance();
        break;
      }
      if (Peek() == '/' && PeekAt(1) == '>') {
        pos_ += 2;
        return elem;  // empty element
      }
      MQP_ASSIGN_OR_RETURN(auto key, ParseName());
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') return Err("expected '=' after attribute");
      Advance();
      SkipWhitespace();
      MQP_ASSIGN_OR_RETURN(auto value, ParseAttrValue());
      elem->SetAttr(key, std::move(value));
    }
    // Content.
    MQP_RETURN_IF_ERROR(ParseContent(elem.get(), name));
    return elem;
  }

  Status ParseContent(Node* elem, const std::string& name) {
    std::string text;
    bool text_significant = false;  // saw CDATA or non-whitespace
    auto flush_text = [&]() {
      if (!text.empty() && text_significant) {
        elem->AddText(std::move(text));
      }
      text.clear();
      text_significant = false;
    };
    while (true) {
      if (AtEnd()) {
        return Status::ParseError("unterminated element <" + name + ">");
      }
      if (Peek() == '<') {
        if (PeekAt(1) == '/') {
          flush_text();
          pos_ += 2;
          MQP_ASSIGN_OR_RETURN(auto close, ParseName());
          if (close != name) {
            return Err("mismatched close tag </" + close + "> for <" + name +
                       ">");
          }
          SkipWhitespace();
          if (AtEnd() || Peek() != '>') return Err("expected '>'");
          Advance();
          return Status::OK();
        }
        if (PeekAt(1) == '!' && PeekAt(2) == '-' && PeekAt(3) == '-') {
          SkipUntil("-->");
          continue;
        }
        if (ConsumeLiteral("<![CDATA[")) {
          const size_t end = in_.find("]]>", pos_);
          if (end == std::string_view::npos) {
            return Err("unterminated CDATA section");
          }
          text += std::string(in_.substr(pos_, end - pos_));
          text_significant = true;
          pos_ = end + 3;
          continue;
        }
        if (PeekAt(1) == '?') {
          SkipUntil("?>");
          continue;
        }
        flush_text();
        MQP_ASSIGN_OR_RETURN(auto child, ParseElement());
        elem->AddChild(std::move(child));
        continue;
      }
      if (Peek() == '&') {
        MQP_ASSIGN_OR_RETURN(auto decoded, DecodeEntity());
        text += decoded;
        text_significant = true;
        continue;
      }
      if (!std::isspace(static_cast<unsigned char>(Peek()))) {
        text_significant = true;
      }
      text.push_back(Peek());
      Advance();
    }
  }

  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace

Result<size_t> DecodeEntityAt(std::string_view in, size_t pos,
                              std::string* out) {
  auto err = [](std::string msg, size_t at) {
    return Status::ParseError(msg + " (at byte " + std::to_string(at) + ")");
  };
  const size_t semi = in.find(';', pos);
  if (semi == std::string_view::npos || semi - pos > 12) {
    return err("unterminated entity reference", pos);
  }
  const std::string_view ent = in.substr(pos + 1, semi - pos - 1);
  const size_t next = semi + 1;
  if (ent == "amp") {
    *out += '&';
    return next;
  }
  if (ent == "lt") {
    *out += '<';
    return next;
  }
  if (ent == "gt") {
    *out += '>';
    return next;
  }
  if (ent == "quot") {
    *out += '"';
    return next;
  }
  if (ent == "apos") {
    *out += '\'';
    return next;
  }
  if (!ent.empty() && ent[0] == '#') {
    long code;
    if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
      code = std::strtol(std::string(ent.substr(2)).c_str(), nullptr, 16);
    } else {
      code = std::strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
    }
    if (code <= 0 || code > 0x10FFFF) {
      return err("invalid character reference", next);
    }
    // Encode as UTF-8.
    const unsigned long cp = static_cast<unsigned long>(code);
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
    return next;
  }
  return err("unknown entity &" + std::string(ent) + ";", next);
}

Result<std::unique_ptr<Node>> Parse(std::string_view input) {
  ParserImpl p(input);
  MQP_ASSIGN_OR_RETURN(auto roots, p.ParseTopLevel());
  if (roots.size() != 1) {
    return Status::ParseError("expected exactly one root element, found " +
                              std::to_string(roots.size()));
  }
  return std::move(roots[0]);
}

Result<std::vector<std::unique_ptr<Node>>> ParseForest(
    std::string_view input) {
  ParserImpl p(input);
  return p.ParseTopLevel();
}

std::string EscapeText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeAttr(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace mqp::xml
