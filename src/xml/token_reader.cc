#include "xml/token_reader.h"

#include <array>

#include "xml/parser.h"

namespace mqp::xml {

namespace {

// Branch-free character classes (std::isalnum & co. are out-of-line,
// locale-aware calls — too slow for the per-byte hot loop).
struct CharTables {
  std::array<bool, 256> name_start{};
  std::array<bool, 256> name_char{};
  std::array<bool, 256> space{};

  constexpr CharTables() {
    for (int c = 'a'; c <= 'z'; ++c) name_start[c] = true;
    for (int c = 'A'; c <= 'Z'; ++c) name_start[c] = true;
    name_start['_'] = name_start[':'] = true;
    name_char = name_start;
    for (int c = '0'; c <= '9'; ++c) name_char[c] = true;
    name_char['-'] = name_char['.'] = true;
    for (char c : {' ', '\t', '\n', '\r', '\v', '\f'}) {
      space[static_cast<unsigned char>(c)] = true;
    }
  }
};

constexpr CharTables kChars;

bool IsNameStart(char c) {
  return kChars.name_start[static_cast<unsigned char>(c)];
}

bool IsNameChar(char c) {
  return kChars.name_char[static_cast<unsigned char>(c)];
}

bool IsSpace(char c) { return kChars.space[static_cast<unsigned char>(c)]; }

}  // namespace

void AttrList::Add(std::string_view key, std::string_view value) {
  for (size_t i = 0; i < size_; ++i) {
    if (items_[i].first == key) {
      items_[i].second.assign(value);
      return;
    }
  }
  if (size_ < items_.size()) {
    items_[size_].first.assign(key);
    items_[size_].second.assign(value);
  } else {
    if (items_.capacity() == 0) items_.reserve(8);
    items_.emplace_back(std::string(key), std::string(value));
  }
  ++size_;
}

const std::string* AttrList::Find(std::string_view key) const {
  for (size_t i = 0; i < size_; ++i) {
    if (items_[i].first == key) return &items_[i].second;
  }
  return nullptr;
}

std::string AttrList::Get(std::string_view key,
                          std::string_view fallback) const {
  const std::string* v = Find(key);
  return v != nullptr ? *v : std::string(fallback);
}

Status TokenReader::Error(std::string msg) const {
  return Status::ParseError(msg + " (at byte " + std::to_string(pos_) + ")");
}

bool TokenReader::Fail(std::string msg) {
  status_ = Error(std::move(msg));
  return false;
}

void TokenReader::SkipWhitespace() {
  while (!AtEnd() && IsSpace(Peek())) ++pos_;
}

void TokenReader::SkipUntil(std::string_view end) {
  const size_t found = in_.find(end, pos_);
  pos_ = (found == std::string_view::npos) ? in_.size() : found + end.size();
}

void TokenReader::SkipDoctype() {
  // Skip to the matching '>' allowing one level of [] internal subset.
  int bracket = 0;
  while (!AtEnd()) {
    const char c = Peek();
    ++pos_;
    if (c == '[') {
      ++bracket;
    } else if (c == ']') {
      --bracket;
    } else if (c == '>' && bracket <= 0) {
      return;
    }
  }
}

void TokenReader::SkipMisc() {
  while (true) {
    SkipWhitespace();
    if (AtEnd() || Peek() != '<') return;
    if (PeekAt(1) == '?') {
      SkipUntil("?>");
    } else if (PeekAt(1) == '!' && PeekAt(2) == '-' && PeekAt(3) == '-') {
      SkipUntil("-->");
    } else if (PeekAt(1) == '!' && in_.substr(pos_, 9) == "<!DOCTYPE") {
      SkipDoctype();
    } else {
      return;
    }
  }
}

bool TokenReader::ScanName(std::string_view* out) {
  if (AtEnd() || !IsNameStart(Peek())) {
    return Fail("expected name");
  }
  const size_t start = pos_;
  ++pos_;
  while (!AtEnd() && IsNameChar(Peek())) ++pos_;
  *out = in_.substr(start, pos_ - start);
  return true;
}

Result<Token> TokenReader::Next() {
  if (!Advance()) return status_;
  return current_;
}

bool TokenReader::Advance() {
  if (!status_.ok()) return false;
  if (done_) {
    current_ = Token{};
    return true;
  }
  if (in_tag_) return ScanInTag();
  if (stack_.empty()) return ScanTopLevel();
  return ScanContent();
}

bool TokenReader::ScanTopLevel() {
  SkipMisc();
  if (AtEnd()) {
    done_ = true;
    current_ = Token{};
    return true;
  }
  if (Peek() != '<') {
    return Fail("unexpected character data at top level");
  }
  return ScanStartTag();
}

bool TokenReader::ScanStartTag() {
  // Precondition: Peek() == '<' and this is (claimed to be) a start tag.
  ++pos_;
  std::string_view name;
  if (!ScanName(&name)) return false;
  stack_.push_back(name);
  in_tag_ = true;
  current_ = Token{TokenType::kStartElement, name, {}};
  return true;
}

bool TokenReader::ScanInTag() {
  SkipWhitespace();
  if (AtEnd()) return Fail("unterminated start tag");
  if (Peek() == '>') {
    ++pos_;
    in_tag_ = false;
    return ScanContent();
  }
  if (Peek() == '/' && PeekAt(1) == '>') {
    pos_ += 2;
    in_tag_ = false;
    current_ = Token{TokenType::kEndElement, stack_.back(), {}};
    stack_.pop_back();
    return true;
  }
  std::string_view key;
  if (!ScanName(&key)) return false;
  SkipWhitespace();
  if (AtEnd() || Peek() != '=') return Fail("expected '=' after attribute");
  ++pos_;
  SkipWhitespace();
  if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
    return Fail("expected quoted attribute value");
  }
  const char quote = Peek();
  ++pos_;
  const size_t start = pos_;
  const size_t close = in_.find(quote, start);
  if (close == std::string_view::npos) {
    pos_ = in_.size();
    return Fail("unterminated attribute value");
  }
  // Fast path: no entities — the value is a borrowed slice of the input.
  const std::string_view raw = in_.substr(start, close - start);
  const size_t amp_rel = raw.find('&');
  if (amp_rel == std::string_view::npos) {
    current_ = Token{TokenType::kAttr, key, raw};
    pos_ = close + 1;
    return true;
  }
  // Slow path: decode into scratch.
  scratch_.assign(raw.substr(0, amp_rel));
  pos_ = start + amp_rel;
  while (!AtEnd() && Peek() != quote) {
    if (Peek() == '&') {
      auto next = DecodeEntityAt(in_, pos_, &scratch_);
      if (!next.ok()) {
        status_ = next.status();
        return false;
      }
      pos_ = *next;
    } else {
      const size_t stop =
          std::min(in_.find('&', pos_), in_.find(quote, pos_));
      scratch_.append(in_.substr(pos_, stop - pos_));
      pos_ = std::min(stop, in_.size());
    }
  }
  if (AtEnd()) return Fail("unterminated attribute value");
  ++pos_;  // closing quote
  current_ = Token{TokenType::kAttr, key, scratch_};
  return true;
}

bool TokenReader::ScanCloseTag() {
  // Precondition: input at "</".
  pos_ += 2;
  std::string_view close;
  if (!ScanName(&close)) return false;
  const std::string_view open = stack_.back();
  if (close != open) {
    return Fail("mismatched close tag </" + std::string(close) + "> for <" +
                std::string(open) + ">");
  }
  SkipWhitespace();
  if (AtEnd() || Peek() != '>') return Fail("expected '>'");
  ++pos_;
  stack_.pop_back();
  current_ = Token{TokenType::kEndElement, close, {}};
  return true;
}

bool TokenReader::ScanContent() {
  // Accumulate one text run, mirroring the DOM parser: runs coalesce
  // across entities, CDATA, comments and PIs, and are emitted only when
  // they contain CDATA or non-whitespace. `borrowed` tracks whether the
  // run is still a contiguous raw slice of the input.
  bool significant = false;
  bool borrowed = true;
  size_t run_start = pos_;
  scratch_.clear();
  auto have_text = [&]() {
    return borrowed ? pos_ > run_start : !scratch_.empty();
  };
  auto to_scratch = [&]() {
    if (borrowed) {
      scratch_.assign(in_.substr(run_start, pos_ - run_start));
      borrowed = false;
    }
  };
  auto emit_text = [&]() {
    current_ = Token{TokenType::kText, {},
                     borrowed ? in_.substr(run_start, pos_ - run_start)
                              : std::string_view(scratch_)};
    return true;
  };
  while (true) {
    if (AtEnd()) {
      // Same message (and, like the DOM parser, no byte offset) as
      // ParseContent's unterminated-element error.
      status_ = Status::ParseError("unterminated element <" +
                                   std::string(stack_.back()) + ">");
      return false;
    }
    const char c = Peek();
    if (c == '<') {
      if (PeekAt(1) == '/') {
        if (significant && have_text()) return emit_text();
        return ScanCloseTag();
      }
      if (PeekAt(1) == '!' && PeekAt(2) == '-' && PeekAt(3) == '-') {
        to_scratch();
        SkipUntil("-->");
        continue;
      }
      if (in_.substr(pos_, 9) == "<![CDATA[") {
        to_scratch();
        pos_ += 9;
        const size_t end = in_.find("]]>", pos_);
        if (end == std::string_view::npos) {
          return Fail("unterminated CDATA section");
        }
        scratch_ += in_.substr(pos_, end - pos_);
        significant = true;
        pos_ = end + 3;
        continue;
      }
      if (PeekAt(1) == '?') {
        to_scratch();
        SkipUntil("?>");
        continue;
      }
      if (significant && have_text()) return emit_text();
      return ScanStartTag();
    }
    if (c == '&') {
      to_scratch();
      auto next = DecodeEntityAt(in_, pos_, &scratch_);
      if (!next.ok()) {
        status_ = next.status();
        return false;
      }
      pos_ = *next;
      significant = true;
      continue;
    }
    // Raw character chunk: consume through the next markup or entity.
    size_t stop = in_.find_first_of("<&", pos_);
    if (stop == std::string_view::npos) stop = in_.size();
    if (!significant) {
      for (size_t i = pos_; i < stop; ++i) {
        if (!IsSpace(in_[i])) {
          significant = true;
          break;
        }
      }
    }
    if (!borrowed) scratch_.append(in_.substr(pos_, stop - pos_));
    pos_ = stop;
  }
}

Result<Token> TokenReader::ReadAttrs(AttrList* out) {
  out->Reset();
  while (true) {
    if (!Advance()) return status_;
    if (current_.type != TokenType::kAttr) return current_;
    out->Add(current_.name, current_.value);
  }
}

Result<std::unique_ptr<Node>> TokenReader::MaterializeSubtree() {
  auto node = Node::Element(std::string(current_.name));
  while (true) {
    if (!Advance()) return status_;
    switch (current_.type) {
      case TokenType::kAttr:
        node->SetAttr(current_.name, std::string(current_.value));
        break;
      case TokenType::kText:
        node->AddText(std::string(current_.value));
        break;
      case TokenType::kStartElement: {
        MQP_ASSIGN_OR_RETURN(auto child, MaterializeSubtree());
        node->AddChild(std::move(child));
        break;
      }
      case TokenType::kEndElement:
        return node;
      case TokenType::kEndOfInput:
        return Error("unexpected end of input");  // unreachable: scan errors
    }
  }
}

Status TokenReader::SkipToElementEnd() {
  if (stack_.empty()) return Error("no open element to skip");
  const size_t target = stack_.size();
  while (true) {
    if (!Advance()) return status_;
    if (current_.type == TokenType::kEndElement && stack_.size() < target) {
      return Status::OK();
    }
    if (current_.type == TokenType::kEndOfInput) {
      return Error("unexpected end of input");  // unreachable: scan errors
    }
  }
}

}  // namespace mqp::xml
