// The P2P garage sale (paper §2-§3): sellers, state-level index servers,
// a top meta-index server, and a client issuing interest-area queries.
//
// Shows: hierarchical registration, interest-area routing (no broadcast,
// no central index), select pushdown during migration, and how the same
// network answers narrow and wide queries.
//
// Build & run:  ./build/examples/garage_sale
#include <cstdio>

#include "mqp/mqp.h"

using namespace mqp;

namespace {

void RunQuery(net::Simulator* sim, peer::Peer* client,
              const std::string& area_text, algebra::ExprPtr predicate,
              const workload::GarageSaleNetwork& net) {
  auto area = *ns::InterestArea::Parse(area_text);
  size_t ground_truth = 0;
  for (const auto& item : net.all_items) {
    if (workload::GarageSaleGenerator::ItemInArea(*item, area) &&
        (predicate == nullptr || predicate->EvalBool(*item))) {
      ++ground_truth;
    }
  }
  const uint64_t bytes_before = sim->stats().bytes;
  const uint64_t msgs_before = sim->stats().messages;

  peer::QueryOutcome outcome;
  bool done = false;
  client->SubmitQuery(
      workload::MakeAreaQueryPlan(area, predicate),
      [&](const peer::QueryOutcome& o) {
        outcome = o;
        done = true;
      });
  sim->Run();
  if (!done) {
    std::printf("  %-42s -> NO ANSWER\n", area_text.c_str());
    return;
  }
  std::printf(
      "  %-42s -> %3zu items (area holds %3zu), %2zu hops, %5.2fs, "
      "%6llu bytes\n",
      area_text.c_str(), outcome.items.size(), ground_truth,
      outcome.provenance.size(),
      outcome.completed_at - outcome.submitted_at,
      static_cast<unsigned long long>(sim->stats().bytes - bytes_before));
  (void)msgs_before;
}

}  // namespace

int main() {
  net::Simulator sim;
  workload::GarageSaleNetworkParams params;
  params.num_sellers = 40;
  params.items_per_seller = 15;
  params.seed = 2026;
  params.client_template.retain_original = true;  // enables §3.4 caching
  auto net = workload::BuildGarageSaleNetwork(&sim, params);

  std::printf("Built the P2P garage sale:\n");
  std::printf("  1 top meta-index server       %s\n",
              net.top_meta->address().c_str());
  std::printf("  %zu state index servers\n", net.index_servers.size());
  std::printf("  %zu sellers, %zu items total\n", net.sellers.size(),
              net.all_items.size());
  std::printf("  registration traffic: %llu messages, %llu bytes\n\n",
              static_cast<unsigned long long>(sim.stats().messages),
              static_cast<unsigned long long>(sim.stats().bytes));

  std::printf("Seller interest cells (first 8):\n");
  for (size_t i = 0; i < 8 && i < net.seller_specs.size(); ++i) {
    std::printf("  %-10s %s\n", net.seller_specs[i].name.c_str(),
                net.seller_specs[i].cell.ToString().c_str());
  }

  std::printf("\nInterest-area queries (routed by coverage, paper §3.4):\n");
  RunQuery(&sim, net.client, "(USA.OR.Portland,*)", nullptr, net);
  RunQuery(&sim, net.client, "(USA.OR,*)", nullptr, net);
  RunQuery(&sim, net.client, "(USA,Furniture)", nullptr, net);
  RunQuery(&sim, net.client, "(USA,Music.CDs)", nullptr, net);
  RunQuery(&sim, net.client, "(France,*)", nullptr, net);
  RunQuery(&sim, net.client, "(*,*)", nullptr, net);

  std::printf("\nWith a selection (select price < 25 pushed into sellers):\n");
  RunQuery(&sim, net.client, "(USA,*)", algebra::FieldLess("price", "25"),
           net);

  std::printf("\nTop-3 cheapest Oregon items via a topn operator:\n");
  auto area = *ns::InterestArea::Parse("(USA.OR,*)");
  algebra::Plan plan(algebra::PlanNode::Display(
      "", algebra::PlanNode::TopN(
              3, "price", true,
              algebra::PlanNode::UrnRef(ns::AreaToUrn(area).ToString()))));
  peer::QueryOutcome outcome;
  bool done = false;
  net.client->SubmitQuery(std::move(plan),
                          [&](const peer::QueryOutcome& o) {
                            outcome = o;
                            done = true;
                          });
  sim.Run();
  if (done) {
    for (const auto& item : outcome.items) {
      std::printf("  $%-8s %-24s %s\n", item->ChildText("price").c_str(),
                  item->ChildText("name").c_str(),
                  item->ChildText("location").c_str());
    }
  }

  std::printf("\nCaching (§3.4): repeating the Portland query routes past "
              "the meta level:\n");
  RunQuery(&sim, net.client, "(USA.OR.Portland,*)", nullptr, net);
  std::printf("  (the client learned %zu catalog entries from results)\n",
              net.client->catalog().entries().size());
  return 0;
}
