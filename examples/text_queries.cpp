// The query-language front-end (paper §1: general P2P applications
// "require a richer query model ... a full-featured query language").
//
// Text queries compile to mutant query plans and migrate through the same
// garage-sale network the other examples use.
//
// Build & run:  ./build/examples/text_queries
#include <cstdio>

#include "mqp/mqp.h"

using namespace mqp;

namespace {

void RunText(net::Simulator* sim, peer::Peer* client, const char* text) {
  std::printf("\nmqp> %s\n", text);
  auto plan = query::Parse(text);
  if (!plan.ok()) {
    std::printf("  parse error: %s\n", plan.status().ToString().c_str());
    return;
  }
  peer::QueryOutcome outcome;
  bool done = false;
  client->SubmitQuery(std::move(plan).value(),
                      [&](const peer::QueryOutcome& o) {
                        outcome = o;
                        done = true;
                      });
  sim->Run();
  if (!done) {
    std::printf("  (no answer)\n");
    return;
  }
  std::printf("  %zu row(s)%s in %.3fs over %zu hops\n",
              outcome.items.size(), outcome.complete ? "" : " (partial)",
              outcome.completed_at - outcome.submitted_at,
              outcome.provenance.HopCount());
  for (size_t i = 0; i < outcome.items.size() && i < 6; ++i) {
    std::string row = "  | ";
    for (const auto& child : outcome.items[i]->children()) {
      if (!child->is_element()) continue;
      row += child->name() + "=" + child->InnerText() + "  ";
    }
    std::printf("%s\n", row.c_str());
  }
  if (outcome.items.size() > 6) {
    std::printf("  | ... %zu more\n", outcome.items.size() - 6);
  }
}

}  // namespace

int main() {
  net::Simulator sim;
  workload::GarageSaleNetworkParams params;
  params.num_sellers = 30;
  params.items_per_seller = 12;
  params.seed = 99;
  auto net = workload::BuildGarageSaleNetwork(&sim, params);
  std::printf("garage-sale network: %zu sellers, %zu items\n",
              net.sellers.size(), net.all_items.size());

  RunText(&sim, net.client,
          "select name, price, location from area(\"(USA.OR,*)\") "
          "where price < 20 order by price asc limit 5");

  RunText(&sim, net.client,
          "select count(*) from area(\"(USA,*)\") group by category");

  RunText(&sim, net.client,
          "select avg(price) from area(\"(USA.OR.Portland,*)\")");

  RunText(&sim, net.client,
          "select name, condition from area(\"(*,Furniture)\") "
          "where condition = 'like-new' or condition = 'new'");

  RunText(&sim, net.client,
          "select name from area(\"(USA,*)\") "
          "where location within 'USA/WA' and exists(image) "
          "order by name asc limit 4");

  // A parse error is reported, not executed.
  RunText(&sim, net.client, "select from nowhere");
  return 0;
}
