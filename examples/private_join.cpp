// The §5.2 scenario: a law-enforcement agency wants the employees of a
// company whose charitable contributions over $5000 went to suspected
// front organizations. The IRS will not hand raw returns to the agency and
// the State Department will not publish its watch list — but the IRS will
// pass data to the State Department. An MQP routed IRS → State makes the
// query answerable: each agency only discloses what the next hop may see.
//
// Demonstrates: route allowlists and bind-after ordering carried in the
// MQP itself.
//
// Build & run:  ./build/examples/private_join
#include <cstdio>

#include "mqp/mqp.h"

using namespace mqp;

namespace {

algebra::ItemSet MakeReturns() {
  // W-2 + Schedule A extracts: employee, employer, charity, amount.
  struct Row {
    const char* person;
    const char* employer;
    const char* charity;
    const char* amount;
  };
  const Row rows[] = {
      {"alice", "acme", "honest-helpers", "6000"},
      {"bob", "acme", "shady-trust", "7500"},
      {"carol", "acme", "shady-trust", "900"},
      {"dave", "acme", "global-front", "12000"},
      {"erin", "other-co", "shady-trust", "9000"},
      {"frank", "acme", "red-cross", "5200"},
  };
  algebra::ItemSet out;
  for (const auto& r : rows) {
    auto e = xml::Node::Element("return");
    e->AddElementWithText("person", r.person);
    e->AddElementWithText("employer", r.employer);
    e->AddElementWithText("charity", r.charity);
    e->AddElementWithText("amount", r.amount);
    out.push_back(algebra::Item(e.release()));
  }
  return out;
}

algebra::ItemSet MakeWatchlist() {
  algebra::ItemSet out;
  for (const char* org : {"shady-trust", "global-front"}) {
    auto e = xml::Node::Element("front");
    e->AddElementWithText("org", org);
    out.push_back(algebra::Item(e.release()));
  }
  return out;
}

}  // namespace

int main() {
  net::Simulator sim;

  peer::PeerOptions irs_opts;
  irs_opts.name = "irs";
  irs_opts.roles.base = true;
  peer::Peer irs(&sim, irs_opts);
  irs.PublishNamed("urn:IRS:Returns", "returns", MakeReturns());

  peer::PeerOptions state_opts;
  state_opts.name = "state-dept";
  state_opts.roles.base = true;
  peer::Peer state(&sim, state_opts);
  state.PublishNamed("urn:State:FrontOrgs", "fronts", MakeWatchlist());

  peer::PeerOptions agency_opts;
  agency_opts.name = "agency";
  agency_opts.retain_original = true;
  peer::Peer agency(&sim, agency_opts);
  // The agency knows both URN homes out of band; no index tier needed.
  agency.catalog().AddNamedReferral("urn:IRS:Returns", irs.address());
  agency.catalog().AddNamedReferral("urn:State:FrontOrgs", state.address());
  agency.AddBootstrap(irs.address());
  // The IRS knows where the State Department lives, so the plan can be
  // routed onward once the IRS data is bound.
  irs.catalog().AddNamedReferral("urn:State:FrontOrgs", state.address());

  // Plan: π(person)( σ(amount>5000 ∧ employer=acme)(Returns) ⋈ FrontOrgs )
  using algebra::Expr;
  using algebra::PlanNode;
  auto filtered = PlanNode::Select(
      Expr::And(algebra::FieldGreater("amount", "5000"),
                algebra::FieldEquals("employer", "acme")),
      PlanNode::UrnRef("urn:IRS:Returns"));
  auto joined = PlanNode::Join(algebra::JoinEq("charity", "org"), filtered,
                               PlanNode::UrnRef("urn:State:FrontOrgs"));
  auto named = PlanNode::Project({"person"}, joined);
  algebra::Plan plan(PlanNode::Display("", named));

  // §5.2 policies carried by the MQP itself:
  //  * only the IRS, the State Department and the agency may see it;
  //  * the watch list must not be bound before the IRS data (the State
  //    Department reveals matches only against concrete IRS rows).
  plan.policy().route_allow = {irs.address(), state.address(),
                               agency.address()};
  plan.policy().bind_after = {{"urn:IRS:Returns", "urn:State:FrontOrgs"}};

  std::printf("Plan:\n%s\n", plan.root()->ToDebugString().c_str());

  peer::QueryOutcome outcome;
  bool done = false;
  agency.SubmitQuery(std::move(plan), [&](const peer::QueryOutcome& o) {
    outcome = o;
    done = true;
  });
  sim.Run();

  if (!done) {
    std::printf("query never returned!\n");
    return 1;
  }
  std::printf("Suspects (complete=%s):\n", outcome.complete ? "yes" : "no");
  for (const auto& item : outcome.items) {
    std::printf("  %s\n", item->ChildText("person").c_str());
  }

  std::printf("\nThe MQP's route (provenance):\n");
  for (const auto& e : outcome.provenance.entries()) {
    const char* who = e.server == irs.address()     ? "IRS"
                      : e.server == state.address() ? "State Dept"
                                                    : "agency";
    std::printf("  t=%.3fs  %-10s %-12s %s\n", e.time, who,
                std::string(algebra::ProvenanceActionName(e.action)).c_str(),
                e.detail.c_str());
  }
  std::printf(
      "\nNeither agency disclosed its raw data to the requester: the IRS\n"
      "rows traveled only to the State Department, which joined and\n"
      "projected them down to names before the plan returned.\n");
  return 0;
}
