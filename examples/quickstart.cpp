// Quickstart: the paper's Figure-3 query, end to end.
//
// We are looking for CDs for $10 or less in the Portland area. Sellers
// publish for-sale lists; a track-listing service (the CDDB/FreeDB stand-
// in) maps CD titles to songs; our client has a list of favorite songs.
// The query plan joins all three and migrates through the network as a
// mutant query plan.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "mqp/mqp.h"

using namespace mqp;

int main() {
  net::Simulator sim;

  // --- participants ---------------------------------------------------------
  peer::PeerOptions base;
  base.roles.base = true;

  auto mk = [&](const char* name) {
    peer::PeerOptions o = base;
    o.name = name;
    return o;
  };
  peer::Peer seller1(&sim, mk("seller1"));
  peer::Peer seller2(&sim, mk("seller2"));
  peer::Peer cddb(&sim, mk("cddb"));

  peer::PeerOptions ropts;
  ropts.name = "resolver";
  ropts.roles.index = true;
  peer::Peer resolver(&sim, ropts);

  peer::PeerOptions copts;
  copts.name = "client";
  peer::Peer client(&sim, copts);

  // --- data -----------------------------------------------------------------
  workload::CdMarketGenerator gen(/*seed=*/2026);
  auto titles = gen.MakeTitles(50);
  seller1.PublishNamed("urn:ForSale:Portland-CDs", "cds",
                       gen.MakeSellerCds(titles, "seller1", 40));
  seller2.PublishNamed("urn:ForSale:Portland-CDs", "cds",
                       gen.MakeSellerCds(titles, "seller2", 40));
  auto listings = gen.MakeTrackListings(titles, 4);
  cddb.PublishNamed("urn:CD:TrackListings", "listings", listings);
  auto favorites = gen.MakeFavoriteSongs(listings, 12);

  // Everyone registers with the resolver; the client knows only it.
  for (peer::Peer* p : {&seller1, &seller2, &cddb}) {
    p->AddBootstrap(resolver.address());
    p->JoinNetwork();
  }
  sim.Run();
  client.AddBootstrap(resolver.address());

  // --- the Figure-3 plan ------------------------------------------------------
  algebra::Plan plan = workload::MakeFigure3Plan(
      favorites, "urn:ForSale:Portland-CDs", "urn:CD:TrackListings",
      /*target=*/"", /*max_price=*/"10");
  std::printf("Submitting Figure-3 plan:\n%s\n",
              plan.root()->ToDebugString().c_str());

  peer::QueryOutcome outcome;
  bool done = false;
  client.SubmitQuery(std::move(plan), [&](const peer::QueryOutcome& o) {
    outcome = o;
    done = true;
  });
  sim.Run();

  if (!done) {
    std::printf("query never returned!\n");
    return 1;
  }
  std::printf("complete=%s  results=%zu  latency=%.3fs  wire=%zu bytes\n",
              outcome.complete ? "yes" : "no", outcome.items.size(),
              outcome.completed_at - outcome.submitted_at,
              outcome.result_bytes);
  std::printf("\nMatching cheap CDs carrying favorite songs:\n");
  for (size_t i = 0; i < outcome.items.size() && i < 8; ++i) {
    const auto& item = outcome.items[i];
    std::printf("  $%-6s %-28s (%s) via %s\n",
                item->ChildText("price").c_str(),
                item->ChildText("title").c_str(),
                item->ChildText("song").c_str(),
                item->ChildText("seller").c_str());
  }
  if (outcome.items.size() > 8) {
    std::printf("  ... and %zu more\n", outcome.items.size() - 8);
  }

  std::printf("\nProvenance (the MQP's travel diary, paper §5.1):\n");
  for (const auto& e : outcome.provenance.entries()) {
    std::printf("  t=%.3fs  %-18s %-12s %s\n", e.time, e.server.c_str(),
                std::string(algebra::ProvenanceActionName(e.action)).c_str(),
                e.detail.c_str());
  }
  std::printf("\nNetwork totals: %llu messages, %llu bytes\n",
              static_cast<unsigned long long>(sim.stats().messages),
              static_cast<unsigned long long>(sim.stats().bytes));
  return 0;
}
