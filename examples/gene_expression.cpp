// "Of Mice and Men" (paper Figure 1): biomedical research groups host
// gene-expression repositories and describe their holdings with interest
// areas over Organism × CellType hierarchies. A query about cardiac muscle
// cells in mammals is routed to the rodent and human groups and never
// touches the fruit-fly group.
//
// Build & run:  ./build/examples/gene_expression
#include <cstdio>

#include "mqp/mqp.h"

using namespace mqp;

int main() {
  net::Simulator sim;
  workload::GeneExpressionGenerator gen(/*seed=*/7);
  const std::vector<std::string> fields = {"organism", "celltype"};

  // The NIH-style meta-index service (paper §6 envisions government
  // agencies providing meta-index services).
  peer::PeerOptions meta_opts;
  meta_opts.name = "nih-meta";
  meta_opts.roles.meta_index = true;
  meta_opts.roles.index = true;  // groups register here directly
  meta_opts.roles.authoritative = true;
  meta_opts.dimension_fields = fields;
  meta_opts.interest = ns::InterestArea(
      ns::InterestCell({ns::CategoryPath(), ns::CategoryPath()}));
  peer::Peer meta(&sim, meta_opts);

  // A category server managing the two hierarchies (§3.5).
  auto hierarchy = ns::MakeGeneExpressionNamespace();
  peer::PeerOptions cat_opts;
  cat_opts.name = "ontology-server";
  cat_opts.roles.category = true;
  peer::Peer cat_server(&sim, cat_opts);
  cat_server.ServeHierarchies(&hierarchy);

  // The three Figure-1 groups.
  std::vector<std::unique_ptr<peer::Peer>> groups;
  std::printf("Research groups and their interest areas:\n");
  for (const auto& g : gen.FigureOneGroups()) {
    std::printf("  %-12s %s\n", g.name.c_str(), g.area.ToString().c_str());
    peer::PeerOptions o;
    o.name = g.name;
    o.interest = g.area;
    o.roles.base = true;
    o.dimension_fields = fields;
    auto p = std::make_unique<peer::Peer>(&sim, o);
    p->PublishCollection("expr", g.area, gen.MakeExperiments(g, 60));
    p->AddBootstrap(meta.address());
    groups.push_back(std::move(p));
  }
  for (auto& g : groups) g->JoinNetwork();
  sim.Run();

  peer::PeerOptions copts;
  copts.name = "lab-client";
  copts.dimension_fields = fields;
  peer::Peer client(&sim, copts);
  client.AddBootstrap(meta.address());

  // Ask the category server what cardiac subtypes exist (§3.5).
  std::printf("\nCategory query: subcategories of Muscle/Cardiac:\n");
  client.RequestCategories(cat_server.address(), "CellType",
                           "Muscle/Cardiac",
                           [](const std::vector<std::string>& cats) {
                             for (const auto& c : cats) {
                               std::printf("  %s\n", c.c_str());
                             }
                           });
  sim.Run();

  // The paper's query: cardiac muscle cells in mammals.
  auto area = *ns::InterestArea::Parse(
      "(Coelomata.Deuterostomia.Mammalia,Muscle.Cardiac)");
  std::printf("\nQuery area: %s\n", area.ToString().c_str());

  peer::QueryOutcome outcome;
  bool done = false;
  client.SubmitQuery(workload::MakeAreaQueryPlan(area),
                     [&](const peer::QueryOutcome& o) {
                       outcome = o;
                       done = true;
                     });
  sim.Run();
  if (!done) {
    std::printf("query never returned!\n");
    return 1;
  }
  std::printf("results: %zu experiments, complete=%s\n",
              outcome.items.size(), outcome.complete ? "yes" : "no");
  for (size_t i = 0; i < outcome.items.size() && i < 6; ++i) {
    const auto& e = outcome.items[i];
    std::printf("  %-10s %-55s %s\n", e->ChildText("gene").c_str(),
                e->ChildText("organism").c_str(),
                e->ChildText("lab").c_str());
  }

  std::printf("\nCoverage routing (who the MQP visited):\n");
  for (auto& g : groups) {
    std::printf("  %-12s visited=%s\n", g->options().name.c_str(),
                outcome.provenance.Visited(g->address()) ? "yes"
                                                         : "no (pruned)");
  }
  std::printf(
      "\nThe fruit-fly group is pruned: its interest area cannot overlap a "
      "mammalian query.\n");
  return 0;
}
