// C8 — catalog resolution at production scale.
//
// The paper's premise is that query routing lives or dies on catalog
// lookups (§3.4 coverage search, §4.1 redundancy elimination). This bench
// measures ResolveArea against catalogs of 1k/10k/100k interest-area
// entries in three modes:
//   * linear   — the pre-index reference: scan every entry, compare
//                category paths segment-by-segment (set_use_area_index(false)),
//   * indexed  — the AreaIndex: Euler-interval probes, O(log n + k),
//   * cached   — repeated resolution of a hot (urn, area) key served from
//                the mutation-stamped binding cache.
// It also measures the gossip projection path (exact RemoveEntry + AddEntry
// per record) against the old erase_if/dup-scan storage model.
//
// The shape check at the end *requires* the ≥10x indexed-vs-linear speedup
// on the 10k-entry catalog and re-verifies binding equivalence.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "mqp/mqp.h"

using namespace mqp;

namespace {

using catalog::Binding;
using catalog::Catalog;
using catalog::HoldingLevel;
using catalog::IndexEntry;
using ns::InterestArea;

// Synthetic 2-dim namespace: dim0 = states × cities ("s3/c7"), dim1 =
// merchandise groups ("g4"), sized so a city-level request matches a
// small, roughly constant number of entries at every catalog scale.
IndexEntry MakeEntry(size_t i, size_t width) {
  IndexEntry e;
  const size_t state = i % width;
  const size_t city = (i / width) % width;
  std::string area = "(s";
  area += std::to_string(state);
  area += ".c";
  area += std::to_string(city);
  area += ',';
  if (i % 5 == 0) {
    area += '*';
  } else {
    area += 'g';
    area += std::to_string(i % 7);
  }
  area += ')';
  if (i % 10 == 0) {
    // A multi-cell minority keeps the per-cell index paths honest.
    area += "+(s";
    area += std::to_string((state + 1) % width);
    area += ",g";
    area += std::to_string(i % 7);
    area += ')';
  }
  e.level = (i % 11 == 0) ? HoldingLevel::kIndex : HoldingLevel::kBase;
  e.area = *InterestArea::Parse(area);
  e.server = "10.0.0." + std::to_string(i) + ":9020";
  if (e.level == HoldingLevel::kBase) {
    e.xpath = "/data[id=c" + std::to_string(i) + "]";
  }
  return e;
}

size_t WidthFor(size_t n) {
  // width² distinct city paths ≈ n/8 → ~8 same-city entries per request.
  size_t w = 1;
  while (w * w < n / 8 + 1) ++w;
  return w;
}

Catalog MakeCatalog(size_t n, bool use_index) {
  Catalog cat;
  cat.SetAuthority(ns::MakeArea({"*", "*"}), /*authoritative=*/true);
  cat.set_use_area_index(use_index);
  cat.set_use_binding_cache(false);
  cat.set_dimension_fields({"location", "category"});
  const size_t width = WidthFor(n);
  for (size_t i = 0; i < n; ++i) cat.AddEntry(MakeEntry(i, width));
  return cat;
}

std::vector<InterestArea> MakeRequests(size_t n) {
  const size_t width = WidthFor(n);
  std::vector<InterestArea> reqs;
  for (size_t i = 0; i < 16; ++i) {
    std::string loc = "s";
    loc += std::to_string(i % width);
    loc += "/c";
    loc += std::to_string((i * 3) % width);
    std::string merch = "g";
    merch += std::to_string(i % 7);
    reqs.push_back(ns::MakeArea({loc, merch}));
  }
  return reqs;
}

void ResolveLoop(benchmark::State& state, Catalog& cat) {
  const auto reqs = MakeRequests(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    Binding b = cat.ResolveArea(reqs[i++ % reqs.size()], "urn:x-mqp:bench");
    benchmark::DoNotOptimize(b);
  }
  const auto& rs = cat.resolve_stats();
  state.counters["entries_scanned/resolve"] = benchmark::Counter(
      static_cast<double>(rs.resolve_entries_scanned) /
      static_cast<double>(rs.area_resolves));
  state.counters["index_probes/resolve"] = benchmark::Counter(
      static_cast<double>(rs.resolve_index_probes) /
      static_cast<double>(rs.area_resolves));
}

void BM_ResolveAreaLinear(benchmark::State& state) {
  Catalog cat = MakeCatalog(static_cast<size_t>(state.range(0)), false);
  ResolveLoop(state, cat);
}
BENCHMARK(BM_ResolveAreaLinear)->Arg(1024)->Arg(10240)->Arg(102400);

void BM_ResolveAreaIndexed(benchmark::State& state) {
  Catalog cat = MakeCatalog(static_cast<size_t>(state.range(0)), true);
  ResolveLoop(state, cat);
}
BENCHMARK(BM_ResolveAreaIndexed)->Arg(1024)->Arg(10240)->Arg(102400);

void BM_ResolveAreaCachedHot(benchmark::State& state) {
  Catalog cat = MakeCatalog(static_cast<size_t>(state.range(0)), true);
  cat.set_use_binding_cache(true);
  ResolveLoop(state, cat);
  state.counters["cache_hits"] = benchmark::Counter(
      static_cast<double>(cat.resolve_stats().binding_cache_hits));
}
BENCHMARK(BM_ResolveAreaCachedHot)->Arg(10240)->Arg(102400);

// The sync projection path: VersionedCatalog::RetireReplacedProjection →
// Catalog::RemoveEntry, then re-Project → AddEntry, once per applied
// gossip record. Indexed storage does both by key.
void BM_GossipProjectionChurn(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Catalog cat = MakeCatalog(n, true);
  const size_t width = WidthFor(n);
  size_t i = 0;
  for (auto _ : state) {
    IndexEntry e = MakeEntry(i++ % n, width);
    benchmark::DoNotOptimize(cat.RemoveEntry(e));
    cat.AddEntry(e);
  }
}
BENCHMARK(BM_GossipProjectionChurn)->Arg(10240)->Arg(102400);

// Reference model of the pre-index storage (vector + dup-scan add +
// erase_if remove), for the trajectory comparison.
void BM_GossipProjectionChurnLinearRef(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t width = WidthFor(n);
  std::vector<IndexEntry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) entries.push_back(MakeEntry(i, width));
  size_t i = 0;
  for (auto _ : state) {
    IndexEntry e = MakeEntry(i++ % n, width);
    std::erase_if(entries, [&](const IndexEntry& x) { return x == e; });
    bool dup = false;
    for (const auto& x : entries) {
      if (x == e) {
        dup = true;
        break;
      }
    }
    if (!dup) entries.push_back(e);
    benchmark::DoNotOptimize(entries.size());
  }
}
BENCHMARK(BM_GossipProjectionChurnLinearRef)->Arg(10240)->Arg(102400);

// --- shape check ---------------------------------------------------------------

double SecondsPerResolve(Catalog& cat, const std::vector<InterestArea>& reqs,
                         size_t iters) {
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < iters; ++i) {
    Binding b = cat.ResolveArea(reqs[i % reqs.size()], "urn:x-mqp:bench");
    benchmark::DoNotOptimize(b);
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count() / static_cast<double>(iters);
}

int ShapeCheck() {
  const size_t n = 10240;
  Catalog linear = MakeCatalog(n, false);
  Catalog indexed = MakeCatalog(n, true);
  const auto reqs = MakeRequests(n);
  // Equivalence first: same bindings from both modes.
  for (const auto& req : reqs) {
    const Binding a = linear.ResolveArea(req, "urn:x-mqp:bench");
    const Binding b = indexed.ResolveArea(req, "urn:x-mqp:bench");
    if (a.ToString() != b.ToString()) {
      std::printf("FAIL: indexed binding diverges on %s\n  linear:  %s\n"
                  "  indexed: %s\n",
                  req.ToString().c_str(), a.ToString().c_str(),
                  b.ToString().c_str());
      return 1;
    }
  }
  const double warm = SecondsPerResolve(indexed, reqs, 64);  // warm intervals
  (void)warm;
  const double t_linear = SecondsPerResolve(linear, reqs, 256);
  const double t_indexed = SecondsPerResolve(indexed, reqs, 4096);
  const double speedup = t_linear / t_indexed;
  std::printf(
      "\nShape check (ROADMAP: 'as fast as the hardware allows'): on a "
      "%zu-entry catalog\nthe interval-indexed coverage search resolves in "
      "%.1f us vs %.1f us for the\npre-index linear scan — %.1fx faster "
      "(acceptance floor: 10x) with identical\nbindings; the binding cache "
      "then removes the search entirely for hot areas, and\nthe gossip "
      "projection path (RemoveEntry per applied record) is keyed, not "
      "scanned.\n",
      n, t_indexed * 1e6, t_linear * 1e6, speedup);
  if (speedup < 10.0) {
    std::printf("FAIL: speedup %.1fx below the 10x acceptance floor\n",
                speedup);
    return 1;
  }
  std::printf("OK: >=10x indexed speedup, bindings identical\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return ShapeCheck();
}
