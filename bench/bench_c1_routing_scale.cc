// C1 — §1/§3 claim: "Queries are routed efficiently, without depending on
// centralized index servers or query broadcasting."
//
// The same narrow query ([USA/OR/Portland, *]) runs over growing networks
// under three architectures:
//   * mqp        — hierarchical interest-area catalogs (this paper),
//   * napster    — central index + client-side fetch,
//   * gnutella   — flooding with a fixed horizon.
// We report messages, bytes, simulated latency and recall.
#include "net/simulator.h"
#include "bench_util.h"

using namespace mqp;

namespace {

struct Result {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  double latency = 0;
  double recall = 0;
  bool ok = false;
};

ns::InterestArea QueryArea() {
  return *ns::InterestArea::Parse("(USA.OR.Portland,*)");
}

Result RunMqp(size_t sellers, uint64_t seed) {
  net::Simulator sim;
  workload::GarageSaleNetworkParams params;
  params.num_sellers = sellers;
  params.items_per_seller = 10;
  params.seed = seed;
  auto net = workload::BuildGarageSaleNetwork(&sim, params);
  const size_t truth =
      workload::GarageSaleGenerator::CountInArea(net.all_items, QueryArea());
  sim.stats().Clear();
  auto run = bench::RunAreaQuery(&sim, net.client, QueryArea());
  Result r;
  r.ok = run.ok;
  r.messages = run.messages;
  r.bytes = run.bytes;
  if (run.ok) {
    r.latency = run.outcome.completed_at - run.outcome.submitted_at;
    r.recall = truth == 0 ? 1.0
                          : static_cast<double>(run.outcome.items.size()) /
                                static_cast<double>(truth);
  }
  return r;
}

Result RunNapster(size_t sellers, uint64_t seed) {
  net::Simulator sim;
  workload::GarageSaleGenerator gen(seed);
  auto specs = gen.MakeSellers(sellers);
  baseline::CentralIndexServer index(&sim);
  std::vector<std::unique_ptr<peer::Peer>> peers;
  algebra::ItemSet all;
  for (size_t i = 0; i < specs.size(); ++i) {
    peer::PeerOptions o;
    o.name = specs[i].name;
    o.roles.base = true;
    peers.push_back(std::make_unique<peer::Peer>(&sim, o));
    auto items = gen.MakeItems(specs[i], 10);
    all.insert(all.end(), items.begin(), items.end());
    peers.back()->PublishCollection("c", ns::InterestArea(specs[i].cell),
                                    items);
    index.AddEntry(ns::InterestArea(specs[i].cell),
                   peers.back()->address(), "/data[id=c]");
  }
  baseline::CentralIndexClient client(&sim, index.address());
  const size_t truth =
      workload::GarageSaleGenerator::CountInArea(all, QueryArea());
  sim.stats().Clear();
  Result r;
  baseline::CentralIndexClient::Outcome outcome;
  client.Run(workload::MakeAreaQueryPlan(QueryArea()), QueryArea(),
             [&](const baseline::CentralIndexClient::Outcome& o) {
               outcome = o;
               r.ok = true;
             });
  sim.Run();
  r.messages = sim.stats().messages;
  r.bytes = sim.stats().bytes;
  if (r.ok) {
    r.latency = outcome.finished_at - outcome.started_at;
    r.recall = truth == 0 ? 1.0
                          : static_cast<double>(outcome.items.size()) /
                                static_cast<double>(truth);
  }
  return r;
}

Result RunGnutella(size_t sellers, uint64_t seed, int horizon) {
  net::Simulator sim;
  Rng rng(seed * 31 + 1);
  workload::GarageSaleGenerator gen(seed);
  auto specs = gen.MakeSellers(sellers);
  baseline::FloodingClient client(&sim);
  std::vector<std::unique_ptr<baseline::FloodingPeer>> peers;
  std::vector<baseline::FloodingPeer*> all_nodes{&client};
  algebra::ItemSet all;
  for (const auto& s : specs) {
    auto items = gen.MakeItems(s, 10);
    all.insert(all.end(), items.begin(), items.end());
    peers.push_back(std::make_unique<baseline::FloodingPeer>(
        &sim, ns::InterestArea(s.cell), items));
    all_nodes.push_back(peers.back().get());
  }
  baseline::BuildRandomOverlay(all_nodes, 4, &rng);
  const size_t truth =
      workload::GarageSaleGenerator::CountInArea(all, QueryArea());
  sim.stats().Clear();
  client.Query(QueryArea(), horizon);
  sim.Run();
  Result r;
  r.ok = true;
  r.messages = sim.stats().messages;
  r.bytes = sim.stats().bytes;
  r.latency = sim.now();
  r.recall = truth == 0 ? 1.0
                        : static_cast<double>(client.CollectedItems().size()) /
                              static_cast<double>(truth);
  return r;
}

void Print(const char* arch, size_t n, const Result& r) {
  bench::Row("%6zu %-10s %9llu %11llu %9.2fs %8.0f%%", n, arch,
             static_cast<unsigned long long>(r.messages),
             static_cast<unsigned long long>(r.bytes), r.latency,
             100 * r.recall);
}

}  // namespace

int main() {
  bench::Header("C1",
                "routing at scale: hierarchical catalogs vs central index "
                "vs flooding");
  bench::Row("query: everything in [USA/OR/Portland, *]; 10 items/seller");
  bench::Row("%6s %-10s %9s %11s %9s %9s", "peers", "arch", "msgs", "bytes",
             "latency", "recall");
  for (size_t sellers : {16, 64, 256, 1024}) {
    const uint64_t seed = 1000 + sellers;
    Print("mqp", sellers, RunMqp(sellers, seed));
    Print("napster", sellers, RunNapster(sellers, seed));
    Print("gnutella3", sellers, RunGnutella(sellers, seed, 3));
    Print("gnutella6", sellers, RunGnutella(sellers, seed, 6));
    bench::Row("%s", "");
  }
  bench::Row("Shape check (paper §1): flooding messages explode with network "
             "size and the\nsmall horizon loses recall (\"hurts result "
             "quality by limiting the availability\nof rare content\"); the "
             "central index answers with few messages but every query\nloads "
             "one server (and it is a single point of failure); hierarchical "
             "catalog\nrouting touches only the meta/index servers on the "
             "path plus relevant sellers.");
  return 0;
}
