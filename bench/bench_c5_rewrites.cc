// C5 — ablation of the MQP-specific optimizations (§2 and §6):
//   * consolidation/absorption — (A ⋈ X) ⋈ B → (A ⋈ B) ⋈ X when A, B are
//     local and |A ⋈ B| ≤ |A| (ship a small intermediate, not raw inputs);
//   * select pushdown — Figure 4(a)'s select-through-union;
//   * deferment — don't evaluate result-growing operators before routing.
//
// Metric: bytes the migrating plan puts on the wire — the quantity §2 says
// MQP optimization must mind ("their size matters").
#include "net/simulator.h"
#include "bench_util.h"

using namespace mqp;

namespace {

struct Toggles {
  bool pushdown = true;
  bool consolidation = true;
  bool absorption = true;
  bool deferment = true;
};

struct RunStats {
  bool ok = false;
  size_t results = 0;
  uint64_t bytes = 0;
  uint64_t messages = 0;
};

peer::PeerOptions BaseOpts(const std::string& name, const Toggles& t) {
  peer::PeerOptions o;
  o.name = name;
  o.roles.base = true;
  o.enable_select_pushdown = t.pushdown;
  o.enable_consolidation = t.consolidation;
  o.enable_absorption = t.absorption;
  o.policy.enable_deferment = t.deferment;
  return o;
}

algebra::ItemSet PaddedRows(const char* tag, const char* key, size_t n,
                            int key_mod, size_t pad, Rng* rng) {
  algebra::ItemSet out;
  for (size_t i = 0; i < n; ++i) {
    auto e = xml::Node::Element(tag);
    e->AddElementWithText(key,
                          std::to_string(static_cast<int>(i) % key_mod));
    e->AddElementWithText("pad", rng->NextWord(static_cast<int>(pad)));
    out.push_back(algebra::Item(e.release()));
  }
  return out;
}

// Scenario 1: (A ⋈ X) ⋈ B with A (12 wide rows) and B (3 caps) local to
// the submitting peer, X (400 rows) remote. Consolidation/absorption let
// the peer ship the 3-row A ⋈ B instead of A and B raw.
RunStats RunJoinScenario(const Toggles& t) {
  net::Simulator sim;
  Rng rng(42);
  peer::Peer p1(&sim, BaseOpts("p1", t));
  peer::Peer p2(&sim, BaseOpts("p2", t));

  algebra::ItemSet a_items = PaddedRows("want", "k", 12, 1000, 80, &rng);
  algebra::ItemSet b_items;
  for (int i = 0; i < 3; ++i) {
    auto e = xml::Node::Element("cap");
    e->AddElementWithText("bk", std::to_string(i));
    e->AddElementWithText("limit", std::to_string(50 + i));
    b_items.push_back(algebra::Item(e.release()));
  }
  algebra::ItemSet x_items = PaddedRows("inv", "xk", 400, 200, 20, &rng);
  p1.PublishNamed("urn:P1:A", "a", a_items);
  p1.PublishNamed("urn:P1:B", "b", b_items);
  p2.PublishNamed("urn:P2:X", "x", x_items);
  p1.catalog().AddNamedReferral("urn:P2:X", p2.address());

  using algebra::PlanNode;
  auto inner = PlanNode::Join(algebra::JoinEq("k", "xk"),
                              PlanNode::UrnRef("urn:P1:A"),
                              PlanNode::UrnRef("urn:P2:X"));
  auto outer = PlanNode::Join(algebra::JoinEq("k", "bk"), inner,
                              PlanNode::UrnRef("urn:P1:B"));
  algebra::Plan plan(PlanNode::Display("", outer));

  sim.stats().Clear();
  RunStats r;
  p1.SubmitQuery(std::move(plan), [&](const peer::QueryOutcome& o) {
    r.ok = true;
    r.results = o.items.size();
  });
  sim.Run();
  r.bytes = sim.stats().bytes;
  r.messages = sim.stats().messages;
  return r;
}

// Scenario 2: select over a URN resolving to two sellers' collections.
// With pushdown the selects travel to the sellers (Figure 4(a)); without
// it the first seller ships its raw collection onward.
RunStats RunPushdownScenario(const Toggles& t) {
  net::Simulator sim;
  Rng rng(43);
  peer::Peer s1(&sim, BaseOpts("s1", t));
  peer::Peer s2(&sim, BaseOpts("s2", t));
  peer::PeerOptions ropts;
  ropts.name = "resolver";
  ropts.roles.index = true;
  ropts.enable_select_pushdown = t.pushdown;
  peer::Peer resolver(&sim, ropts);
  s1.PublishNamed("urn:Sale:CDs", "c",
                  PaddedRows("cd", "price", 120, 100, 40, &rng));
  s2.PublishNamed("urn:Sale:CDs", "c",
                  PaddedRows("cd", "price", 120, 100, 40, &rng));
  for (peer::Peer* p : {&s1, &s2}) {
    p->AddBootstrap(resolver.address());
    p->JoinNetwork();
  }
  sim.Run();
  peer::PeerOptions copts = BaseOpts("client", t);
  copts.roles.base = false;
  peer::Peer client(&sim, copts);
  client.AddBootstrap(resolver.address());

  using algebra::PlanNode;
  algebra::Plan plan(PlanNode::Display(
      "", PlanNode::Select(algebra::FieldLess("price", "5"),
                           PlanNode::UrnRef("urn:Sale:CDs"))));
  sim.stats().Clear();
  RunStats r;
  client.SubmitQuery(std::move(plan), [&](const peer::QueryOutcome& o) {
    r.ok = true;
    r.results = o.items.size();
  });
  sim.Run();
  r.bytes = sim.stats().bytes;
  r.messages = sim.stats().messages;
  return r;
}

// Scenario 3: join(join(big1, big2), X) where big1 ⋈ big2 fans out 20×.
// Deferment ships the raw inputs (400 rows) instead of the 4000-row join
// result; without it the plan bloats before travelling to X.
RunStats RunDefermentScenario(const Toggles& t) {
  net::Simulator sim;
  Rng rng(44);
  peer::Peer p1(&sim, BaseOpts("p1", t));
  peer::Peer p2(&sim, BaseOpts("p2", t));
  p1.PublishNamed("urn:P1:Big1", "b1",
                  PaddedRows("l", "k", 200, 10, 30, &rng));
  p1.PublishNamed("urn:P1:Big2", "b2",
                  PaddedRows("r", "rk", 200, 10, 30, &rng));
  p2.PublishNamed("urn:P2:X", "x", PaddedRows("inv", "xk", 10, 10, 20, &rng));
  p1.catalog().AddNamedReferral("urn:P2:X", p2.address());

  using algebra::PlanNode;
  auto big_join = PlanNode::Join(algebra::JoinEq("k", "rk"),
                                 PlanNode::UrnRef("urn:P1:Big1"),
                                 PlanNode::UrnRef("urn:P1:Big2"));
  auto outer = PlanNode::Join(algebra::JoinEq("k", "xk"), big_join,
                              PlanNode::UrnRef("urn:P2:X"));
  algebra::Plan plan(PlanNode::Display("", outer));

  sim.stats().Clear();
  RunStats r;
  p1.SubmitQuery(std::move(plan), [&](const peer::QueryOutcome& o) {
    r.ok = true;
    r.results = o.items.size();
  });
  sim.Run();
  r.bytes = sim.stats().bytes;
  r.messages = sim.stats().messages;
  return r;
}

void Print(const char* label, const RunStats& r) {
  if (!r.ok) {
    bench::Row("%-34s  QUERY DID NOT RETURN", label);
    return;
  }
  bench::Row("%-34s %8zu %8llu %9llu", label, r.results,
             static_cast<unsigned long long>(r.messages),
             static_cast<unsigned long long>(r.bytes));
}

}  // namespace

int main() {
  bench::Header("C5", "optimizer rewrite ablation");
  Toggles all;

  bench::Row("\n-- consolidation/absorption: (A JOIN X) JOIN B, A+B local, "
             "X remote --");
  bench::Row("%-34s %8s %8s %9s", "configuration", "results", "msgs",
             "bytes");
  Print("consolidation+absorption on", RunJoinScenario(all));
  {
    Toggles t = all;
    t.consolidation = false;
    t.absorption = false;
    Print("consolidation/absorption off", RunJoinScenario(t));
  }

  bench::Row("\n-- select pushdown: select(price<5) over union of two "
             "sellers --");
  bench::Row("%-34s %8s %8s %9s", "configuration", "results", "msgs",
             "bytes");
  Print("pushdown on", RunPushdownScenario(all));
  {
    Toggles t = all;
    t.pushdown = false;
    Print("pushdown off", RunPushdownScenario(t));
  }

  bench::Row("\n-- deferment: 20x-fanout join local, X remote --");
  bench::Row("%-34s %8s %8s %9s", "configuration", "results", "msgs",
             "bytes");
  Print("deferment on", RunDefermentScenario(all));
  {
    Toggles t = all;
    t.deferment = false;
    Print("deferment off", RunDefermentScenario(t));
  }

  bench::Row(
      "\nShape check (paper §2/§6): consolidation ships the selective local "
      "join\ninstead of raw collections; pushdown filters at the sellers "
      "(Figure 4(a));\ndeferment ships a growing join's inputs, not its "
      "bloated result. Results are\nidentical in every configuration — only "
      "the wire cost moves.");
  return 0;
}
