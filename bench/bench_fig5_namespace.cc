// F5 — Figure 5: the multi-hierarchic namespace machinery itself.
//
// Interest-area cover/overlap/intersection throughput and catalog
// resolution latency as the number of registered areas grows — the paper's
// scalability argument rests on these being cheap.
#include <benchmark/benchmark.h>

#include "mqp/mqp.h"

using namespace mqp;

namespace {

std::vector<ns::InterestCell> RandomCells(size_t n, uint64_t seed) {
  Rng rng(seed);
  auto hierarchy = ns::MakeGarageSaleNamespace();
  auto locs = hierarchy.dimension(0).AllCategories();
  auto cats = hierarchy.dimension(1).AllCategories();
  std::vector<ns::InterestCell> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ns::InterestCell({locs[rng.NextBelow(locs.size())],
                                    cats[rng.NextBelow(cats.size())]}));
  }
  return out;
}

void BM_CellCovers(benchmark::State& state) {
  auto cells = RandomCells(1024, 1);
  size_t i = 0;
  for (auto _ : state) {
    const bool c = cells[i % 1024].Covers(cells[(i * 7 + 3) % 1024]);
    benchmark::DoNotOptimize(c);
    ++i;
  }
}
BENCHMARK(BM_CellCovers);

void BM_CellOverlaps(benchmark::State& state) {
  auto cells = RandomCells(1024, 2);
  size_t i = 0;
  for (auto _ : state) {
    const bool c = cells[i % 1024].Overlaps(cells[(i * 7 + 3) % 1024]);
    benchmark::DoNotOptimize(c);
    ++i;
  }
}
BENCHMARK(BM_CellOverlaps);

void BM_AreaIntersect(benchmark::State& state) {
  auto cells = RandomCells(256, 3);
  std::vector<ns::InterestArea> areas;
  for (size_t i = 0; i + 1 < cells.size(); i += 2) {
    areas.push_back(ns::InterestArea({cells[i], cells[i + 1]}));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto inter =
        areas[i % areas.size()].Intersect(areas[(i * 5 + 1) % areas.size()]);
    benchmark::DoNotOptimize(inter);
    ++i;
  }
}
BENCHMARK(BM_AreaIntersect);

void BM_AreaNormalize(benchmark::State& state) {
  auto cells = RandomCells(static_cast<size_t>(state.range(0)), 4);
  ns::InterestArea area{std::vector<ns::InterestCell>(cells.begin(),
                                                      cells.end())};
  for (auto _ : state) {
    auto norm = area.Normalized();
    benchmark::DoNotOptimize(norm);
  }
}
BENCHMARK(BM_AreaNormalize)->Arg(4)->Arg(16)->Arg(64);

void BM_UrnRoundTrip(benchmark::State& state) {
  auto cells = RandomCells(2, 5);
  ns::InterestArea area{std::vector<ns::InterestCell>(cells.begin(),
                                                      cells.end())};
  const std::string urn = ns::AreaToUrn(area).ToString();
  for (auto _ : state) {
    auto parsed = ns::Urn::Parse(urn);
    auto back = parsed->ToInterestArea();
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_UrnRoundTrip);

// Catalog resolution against K registered areas (the index-server hot
// path). Linear scan today; the measured curve documents the cost.
void BM_CatalogResolveArea(benchmark::State& state) {
  const size_t entries = static_cast<size_t>(state.range(0));
  auto cells = RandomCells(entries, 6);
  catalog::Catalog cat;
  for (size_t i = 0; i < cells.size(); ++i) {
    catalog::IndexEntry e;
    e.level = catalog::HoldingLevel::kBase;
    e.area = ns::InterestArea(cells[i]);
    e.server = "10.0.0." + std::to_string(i % 250) + ":9020";
    e.xpath = "/data[id=c" + std::to_string(i) + "]";
    cat.AddEntry(std::move(e));
  }
  cat.SetAuthority(ns::InterestArea(ns::InterestCell(
                       {ns::CategoryPath(), ns::CategoryPath()})),
                   true);
  auto request = *ns::InterestArea::Parse("(USA.OR,*)");
  for (auto _ : state) {
    auto binding = cat.ResolveArea(request, "urn:InterestArea:(USA.OR,*)");
    benchmark::DoNotOptimize(binding);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(entries));
}
BENCHMARK(BM_CatalogResolveArea)->Arg(100)->Arg(1000)->Arg(10000);

void BM_RegistrationIngest(benchmark::State& state) {
  auto cells = RandomCells(static_cast<size_t>(state.range(0)), 7);
  for (auto _ : state) {
    catalog::Catalog cat;
    for (size_t i = 0; i < cells.size(); ++i) {
      catalog::IndexEntry e;
      e.level = catalog::HoldingLevel::kBase;
      e.area = ns::InterestArea(cells[i]);
      e.server = "10.0.0.9:9020";
      e.xpath = "/data[id=c" + std::to_string(i) + "]";
      cat.AddEntry(std::move(e));
    }
    benchmark::DoNotOptimize(cat);
  }
}
BENCHMARK(BM_RegistrationIngest)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
