// F2 — Figure 2: per-stage cost of the mutant-query-processing loop.
//
// The figure names the stages: parse (XML → plan graph), catalog/resolve
// (URN binding), optimize (rewrites + evaluable-sub-plan detection),
// policy (deferment decisions), query engine (evaluation), and the final
// serialization of the mutated plan. We measure each stage against plan
// data size (items embedded in the plan).
#include <benchmark/benchmark.h>

#include "net/simulator.h"
#include "mqp/mqp.h"

using namespace mqp;

namespace {

algebra::Plan MakePlanWithItems(size_t items) {
  workload::GarageSaleGenerator gen(7);
  auto sellers = gen.MakeSellers(1);
  algebra::ItemSet data = gen.MakeItems(sellers[0], items);
  auto sel = algebra::PlanNode::Select(
      algebra::FieldLess("price", "100"),
      algebra::PlanNode::Union(
          {algebra::PlanNode::XmlData(std::move(data)),
           algebra::PlanNode::UrnRef(
               "urn:InterestArea:(USA.OR.Portland,Music.CDs)")}));
  return algebra::Plan(algebra::PlanNode::Display("client:1", sel));
}

void BM_ParsePlan(benchmark::State& state) {
  const std::string wire =
      algebra::SerializePlan(MakePlanWithItems(state.range(0)));
  for (auto _ : state) {
    auto plan = algebra::ParsePlan(wire);
    benchmark::DoNotOptimize(plan);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_ParsePlan)->Arg(10)->Arg(100)->Arg(1000);

void BM_ResolveUrn(benchmark::State& state) {
  catalog::Catalog cat;
  Rng rng(3);
  workload::GarageSaleGenerator gen(3);
  auto sellers = gen.MakeSellers(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < sellers.size(); ++i) {
    catalog::IndexEntry e;
    e.level = catalog::HoldingLevel::kBase;
    e.area = ns::InterestArea(sellers[i].cell);
    e.server = "10.0.0." + std::to_string(i) + ":9020";
    e.xpath = "/data[id=c" + std::to_string(i) + "]";
    cat.AddEntry(std::move(e));
  }
  cat.SetAuthority(ns::InterestArea(ns::InterestCell(
                       {ns::CategoryPath(), ns::CategoryPath()})),
                   true);
  const std::string urn = "urn:InterestArea:(USA.OR,*)";
  for (auto _ : state) {
    auto binding = cat.Resolve(urn);
    benchmark::DoNotOptimize(binding);
  }
}
BENCHMARK(BM_ResolveUrn)->Arg(10)->Arg(100)->Arg(1000);

void BM_OptimizeRewrites(benchmark::State& state) {
  auto plan = MakePlanWithItems(static_cast<size_t>(state.range(0)));
  optimizer::CostModel cost;
  optimizer::Locality locality;
  for (auto _ : state) {
    auto copy = plan.root()->Clone();
    optimizer::PushSelectThroughUnion(copy.get());
    optimizer::EliminateOrNodes(copy.get(), locality, cost,
                                optimizer::OrPreference::kPreferLocal);
    optimizer::ConsolidateJoins(copy.get(), locality);
    auto subs = optimizer::MaximalEvaluableSubplans(copy.get(), locality);
    benchmark::DoNotOptimize(subs);
  }
}
BENCHMARK(BM_OptimizeRewrites)->Arg(10)->Arg(100)->Arg(1000);

void BM_PolicyDecide(benchmark::State& state) {
  auto plan = MakePlanWithItems(static_cast<size_t>(state.range(0)));
  optimizer::CostModel cost;
  optimizer::Locality locality;
  optimizer::PolicyManager pm;
  auto subs =
      optimizer::MaximalEvaluableSubplans(plan.root().get(), locality);
  for (auto _ : state) {
    auto decisions = pm.Decide(subs, cost);
    benchmark::DoNotOptimize(decisions);
  }
}
BENCHMARK(BM_PolicyDecide)->Arg(100);

void BM_EngineEvaluate(benchmark::State& state) {
  workload::GarageSaleGenerator gen(11);
  auto sellers = gen.MakeSellers(1);
  algebra::ItemSet data =
      gen.MakeItems(sellers[0], static_cast<size_t>(state.range(0)));
  auto plan = algebra::PlanNode::Select(algebra::FieldLess("price", "50"),
                                        algebra::PlanNode::XmlData(data));
  for (auto _ : state) {
    auto items = engine::Evaluate(*plan);
    benchmark::DoNotOptimize(items);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EngineEvaluate)->Arg(10)->Arg(100)->Arg(1000);

void BM_SerializePlan(benchmark::State& state) {
  auto plan = MakePlanWithItems(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::string wire = algebra::SerializePlan(plan);
    benchmark::DoNotOptimize(wire);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(algebra::PlanWireSize(plan)));
}
BENCHMARK(BM_SerializePlan)->Arg(10)->Arg(100)->Arg(1000);

void BM_SerializePlanCached(benchmark::State& state) {
  // The wire-layer fast path: an unchanged plan costs one fingerprint
  // walk, not a serialization. Compare against BM_SerializePlan.
  auto plan = MakePlanWithItems(static_cast<size_t>(state.range(0)));
  (void)wire::SerializePlanShared(plan);  // warm the cache
  for (auto _ : state) {
    auto wire_form = wire::SerializePlanShared(plan);
    benchmark::DoNotOptimize(wire_form);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(algebra::PlanWireSize(plan)));
}
BENCHMARK(BM_SerializePlanCached)->Arg(10)->Arg(100)->Arg(1000);

void BM_PipelinePerQueryWireWork(benchmark::State& state) {
  // End-to-end MQP pipeline: client → relay chain → authoritative base.
  // Reports serializations / parses / reused forwards *per query* next to
  // bytes: the win criterion is serializations strictly below one per
  // plan-carrying hop. range(0) = number of pure-routing relays.
  const size_t relays = static_cast<size_t>(state.range(0));
  net::Simulator sim;
  const auto area = ns::MakeArea({"USA/OR/Portland", "Music/CDs"});

  auto quiet = [](const char* name) {
    peer::PeerOptions o;
    o.name = name;
    o.record_provenance = false;  // pure routing: nothing mutates en route
    o.cache_from_plans = false;
    return o;
  };
  peer::Peer client(&sim, quiet("client"));
  std::vector<std::unique_ptr<peer::Peer>> chain;
  for (size_t i = 0; i < relays; ++i) {
    chain.push_back(std::make_unique<peer::Peer>(
        &sim, quiet(("relay" + std::to_string(i)).c_str())));
  }
  auto ao = quiet("authority");
  ao.roles.base = true;
  ao.roles.index = true;
  ao.roles.authoritative = true;
  ao.interest = ns::MakeArea({"USA/OR", "*"});
  peer::Peer authority(&sim, ao);
  workload::GarageSaleGenerator gen(7);
  auto sellers = gen.MakeSellers(1);
  authority.PublishCollection("c0", area, gen.MakeItems(sellers[0], 100));

  // Bootstrap chain: client → relay0 → … → authority.
  std::string next = authority.address();
  for (size_t i = relays; i-- > 0;) {
    chain[i]->AddBootstrap(next);
    next = chain[i]->address();
  }
  client.AddBootstrap(next);

  for (auto _ : state) {
    sim.stats().Clear();
    bool done = false;
    client.SubmitQuery(workload::MakeAreaQueryPlan(area),
                       [&](const peer::QueryOutcome&) { done = true; });
    sim.Run();
    if (!done) state.SkipWithError("query did not complete");
  }
  const auto& stats = sim.stats();
  auto by_kind = [&stats](const char* kind) -> uint64_t {
    auto it = stats.messages_by_kind.find(kind);
    return it == stats.messages_by_kind.end() ? 0 : it->second;
  };
  state.counters["serializations/query"] = benchmark::Counter(
      static_cast<double>(stats.plan_serializations));
  state.counters["parses/query"] =
      benchmark::Counter(static_cast<double>(stats.plan_parses));
  state.counters["reused_forwards/query"] = benchmark::Counter(
      static_cast<double>(stats.forwards_without_reserialize));
  state.counters["plan_hops/query"] = benchmark::Counter(
      static_cast<double>(by_kind("mqp") + by_kind("result")));
  state.counters["bytes/query"] =
      benchmark::Counter(static_cast<double>(stats.bytes));
  // Streaming-codec visibility: plan decodes via the token reader, and
  // DOM nodes built while decoding (only result items should count —
  // every pure routing hop must contribute zero).
  state.counters["token_decodes/query"] =
      benchmark::Counter(static_cast<double>(stats.token_decodes));
  state.counters["dom_nodes_built/query"] =
      benchmark::Counter(static_cast<double>(stats.dom_nodes_built));
  // Engine visibility (PR 5): items deep-copied during evaluation (zero
  // on the shared-store steady path), compiled-accessor key extractions,
  // and wall-clock evaluation time.
  state.counters["items_cloned/query"] =
      benchmark::Counter(static_cast<double>(stats.items_cloned));
  state.counters["accessor_hits/query"] =
      benchmark::Counter(static_cast<double>(stats.field_accessor_hits));
  state.counters["engine_eval_us/query"] = benchmark::Counter(
      static_cast<double>(stats.engine_eval_ns) / 1e3);
  // Overload visibility (DESIGN.md §11): both must stay zero on this
  // uncongested path — a nonzero here means the defenses or the
  // threaded runtime's backpressure leaked into the reference pipeline.
  state.counters["queries_shed/query"] =
      benchmark::Counter(static_cast<double>(stats.queries_shed));
  state.counters["mailbox_soft_overflows/query"] = benchmark::Counter(
      static_cast<double>(stats.mailbox_soft_overflows));
}
BENCHMARK(BM_PipelinePerQueryWireWork)->Arg(0)->Arg(2)->Arg(6);

void TopKWireBytes(benchmark::State& state, bool distributed) {
  // Per-query bytes-on-wire for a top-k-by-price interest-area query,
  // distributed sessions vs the ship-everything reference (flip the
  // ablation knob). range(0) = k. Compare bytes/query across the two.
  const auto k = static_cast<uint64_t>(state.range(0));
  const bool saved = optimizer::use_distributed_topk();
  optimizer::set_use_distributed_topk(distributed);
  net::Simulator sim;
  workload::GarageSaleNetworkParams params;
  params.num_sellers = 8;
  params.items_per_seller = 200;
  params.seed = 7;
  auto net = workload::BuildGarageSaleNetwork(&sim, params);
  const auto area = *ns::InterestArea::Parse("(USA,*)");

  for (auto _ : state) {
    sim.stats().Clear();
    bool done = false;
    net.client->SubmitQuery(
        workload::MakeTopKQueryPlan(area, "price", /*ascending=*/true, k),
        [&](const peer::QueryOutcome&) { done = true; });
    sim.Run();
    if (!done) state.SkipWithError("query did not complete");
  }
  optimizer::set_use_distributed_topk(saved);

  const auto& stats = sim.stats();
  state.counters["bytes/query"] =
      benchmark::Counter(static_cast<double>(stats.bytes));
  state.counters["topk_batches/query"] =
      benchmark::Counter(static_cast<double>(stats.topk_batches));
  state.counters["rows_pruned/query"] =
      benchmark::Counter(static_cast<double>(stats.topk_rows_pruned));
  state.counters["bytes_saved/query"] =
      benchmark::Counter(static_cast<double>(stats.topk_bytes_saved));
}

void BM_TopKPerQueryWireBytes(benchmark::State& state) {
  TopKWireBytes(state, /*distributed=*/true);
}
BENCHMARK(BM_TopKPerQueryWireBytes)->Arg(1)->Arg(10)->Arg(100);

void BM_TopKPerQueryWireBytesAblated(benchmark::State& state) {
  TopKWireBytes(state, /*distributed=*/false);
}
BENCHMARK(BM_TopKPerQueryWireBytesAblated)->Arg(1)->Arg(10)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
