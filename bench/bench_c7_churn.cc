// C7 — dynamic catalog maintenance under churn (src/sync/).
//
// A garage-sale network runs a seeded churn schedule (crashes with
// recovery, graceful departures, fresh joins — well above 20% of the
// network failing/recovering) while the client keeps querying and every
// peer gossips version-vector digests. We measure:
//   * convergence: rounds of gossip after the churn window until every
//     live catalog holds the identical version vector,
//   * bytes: digest+delta gossip traffic vs. the naive alternative of
//     every peer re-pushing its full catalog state every round,
//   * availability: query success rate while the network churns,
//   * determinism: two runs with the same seed must be bit-identical.
#include "net/simulator.h"
#include "bench_util.h"

using namespace mqp;

namespace {

struct ChurnRun {
  workload::ChurnStats stats;
  size_t peers_at_start = 0;
  int convergence_rounds = -1;  // -1: never converged
  uint64_t gossip_messages = 0;
  uint64_t gossip_bytes = 0;
  uint64_t naive_bytes = 0;  // full re-push every round, same schedule
  uint64_t total_messages = 0;
  uint64_t total_bytes = 0;
  uint64_t queries_shed = 0;
  uint64_t mailbox_soft_overflows = 0;
  std::string fingerprint;
};

ChurnRun RunOnce(uint64_t seed, size_t sellers, bool reliable) {
  net::Simulator sim;
  workload::GarageSaleNetworkParams params;
  params.num_sellers = sellers;
  params.items_per_seller = 4;
  params.seed = seed;
  auto net = workload::BuildGarageSaleNetwork(&sim, params);

  workload::ChurnParams churn;
  churn.reliable_queries = reliable;
  churn.seed = seed;
  churn.duration_seconds = 240;
  churn.event_interval_seconds = 8;
  churn.downtime_seconds = 30;
  churn.query_interval_seconds = 12;
  churn.convergence_tail_seconds = 120;
  churn.sync.gossip_interval_seconds = 5;
  churn.sync.refresh_interval_seconds = 15;
  churn.sync.entry_ttl_seconds = 60;
  // One state's worth of sellers per query: the MQP visits each bound
  // seller sequentially, so a network-wide query would be killed by any
  // single mid-flight crash and measure nothing but plan width.
  churn.query_area = *ns::InterestArea::Parse("(USA.OR,*)");
  workload::ChurnScenario scenario(&sim, &net, churn);
  scenario.EnableSyncEverywhere();

  ChurnRun run;
  run.peers_at_start = sim.size();

  // The naive baseline measured on the same schedule: every gossip round,
  // each live synced peer would re-push its *entire* record set to one
  // partner (registration-style maintenance, no version vectors). The
  // probe serializes that state without sending anything.
  const double step = churn.sync.gossip_interval_seconds;
  for (double t = step; t <= scenario.horizon(); t += step) {
    sim.Schedule(t, [&scenario, &run]() {
      for (peer::Peer* p : scenario.LiveSyncedPeers()) {
        run.naive_bytes +=
            p->sync()->versioned().DeltaSince({}).ToXml().size();
      }
    });
  }

  scenario.Prepare();
  sim.Run(scenario.churn_end());
  // Step gossip-round-sized slices of the quiet tail until every live
  // catalog reports the same version vector.
  const int max_rounds =
      static_cast<int>(churn.convergence_tail_seconds / step);
  for (int r = 0; r <= max_rounds; ++r) {
    if (scenario.VectorsConverged()) {
      run.convergence_rounds = r;
      break;
    }
    sim.Run(scenario.churn_end() + (r + 1) * step);
  }
  sim.Run();  // drain the rest of the tail
  if (run.convergence_rounds < 0 && scenario.VectorsConverged()) {
    run.convergence_rounds = max_rounds;
  }

  run.stats = scenario.stats();
  run.fingerprint = scenario.VectorFingerprint();
  const auto& st = sim.stats();
  auto by_kind = [&](const char* kind) -> uint64_t {
    auto it = st.bytes_by_kind.find(kind);
    return it == st.bytes_by_kind.end() ? 0 : it->second;
  };
  auto msgs_by_kind = [&](const char* kind) -> uint64_t {
    auto it = st.messages_by_kind.find(kind);
    return it == st.messages_by_kind.end() ? 0 : it->second;
  };
  run.gossip_bytes =
      by_kind(wire::kSyncDigestKind) + by_kind(wire::kSyncDeltaKind);
  run.gossip_messages =
      msgs_by_kind(wire::kSyncDigestKind) + msgs_by_kind(wire::kSyncDeltaKind);
  run.total_messages = st.messages;
  run.total_bytes = st.bytes;
  run.queries_shed = st.queries_shed;
  run.mailbox_soft_overflows = st.mailbox_soft_overflows;
  return run;
}

}  // namespace

int main() {
  bench::Header("C7", "catalog convergence and query availability under "
                      "churn (gossip/anti-entropy vs full re-registration)");
  for (size_t sellers : {12, 24, 48}) {
    const uint64_t seed = 7000 + sellers;
    ChurnRun a = RunOnce(seed, sellers, /*reliable=*/false);
    ChurnRun b = RunOnce(seed, sellers, /*reliable=*/false);
    ChurnRun rel = RunOnce(seed, sellers, /*reliable=*/true);
    const bool identical = a.fingerprint == b.fingerprint &&
                           !a.fingerprint.empty() &&
                           a.total_messages == b.total_messages &&
                           a.total_bytes == b.total_bytes;
    const double fail_frac =
        static_cast<double>(a.stats.fails + a.stats.departs) /
        static_cast<double>(a.peers_at_start);
    bench::Row("%zu sellers (%zu peers): churn events fail=%zu recover=%zu "
               "depart=%zu join=%zu (%.0f%% of peers failed/departed)",
               sellers, a.peers_at_start, a.stats.fails, a.stats.recovers,
               a.stats.departs, a.stats.joins, 100 * fail_frac);
    auto success = [](const ChurnRun& r) {
      return r.stats.queries_submitted == 0
                 ? 0.0
                 : 100.0 * static_cast<double>(r.stats.queries_complete) /
                       static_cast<double>(r.stats.queries_submitted);
    };
    bench::Row("  queries (retries OFF): %zu submitted, %zu returned, "
               "%zu complete (%.0f%% success under churn)",
               a.stats.queries_submitted, a.stats.queries_returned,
               a.stats.queries_complete, success(a));
    bench::Row("  queries (retries ON):  %zu submitted, %zu returned, "
               "%zu complete (%.0f%% success), %zu retries, %zu partial, "
               "%zu timed out",
               rel.stats.queries_submitted, rel.stats.queries_returned,
               rel.stats.queries_complete, success(rel),
               rel.stats.query_retries, rel.stats.queries_partial,
               rel.stats.queries_timed_out);
    bench::Row("  convergence: %d gossip round(s) after the churn window",
               a.convergence_rounds);
    bench::Row("  overload: %llu queries shed, %llu mailbox soft "
               "overflows (churn is a fault workload, not a flash crowd "
               "— both should stay 0)",
               static_cast<unsigned long long>(rel.queries_shed),
               static_cast<unsigned long long>(rel.mailbox_soft_overflows));
    bench::Row("  gossip traffic: %llu msgs, %llu bytes; naive full "
               "re-push on the same schedule: %llu bytes (%.1fx more)",
               static_cast<unsigned long long>(a.gossip_messages),
               static_cast<unsigned long long>(a.gossip_bytes),
               static_cast<unsigned long long>(a.naive_bytes),
               a.gossip_bytes == 0
                   ? 0.0
                   : static_cast<double>(a.naive_bytes) /
                         static_cast<double>(a.gossip_bytes));
    bench::Row("  deterministic across two same-seed runs: %s",
               identical ? "yes" : "NO");
    bench::Row("%s", "");
  }
  bench::Row("Shape check: gossip converges within a handful of rounds and "
             "ships far fewer\nbytes than naive full re-registration "
             "(digests are vector-sized; deltas carry\nonly missing "
             "records); runs are bit-identical per seed.");
  return 0;
}
