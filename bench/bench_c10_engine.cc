// C10 — the zero-copy query engine vs the cloning/serializing reference.
//
// PR 5 rebased LocalStore onto shared immutable items, rekeyed set
// semantics from xml::Serialize strings to StructuralHash+equality,
// compiled field accessors for key extraction, and bounded-heap top-N.
// This experiment prices each kernel against the behavior it replaced:
//   * fetch      — shared refs vs the cloning reference
//                  (set_use_shared_store(false)),
//   * distinct / difference — hash-keyed vs the old serialize-keyed
//                  dedup (reference implemented here, as the engine
//                  no longer contains a serializing path),
//   * top-N      — bounded heap with decorated keys vs the old
//                  materialize / stable_sort (keys re-extracted per
//                  comparison) / truncate,
// at 1k/10k/100k items. The shape check enforces the acceptance floor:
// >=5x on the fetch+distinct path at 10k items, with both pipelines
// producing identical result sets and the shared pipeline performing
// zero item clones and zero xml::Serialize calls.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "mqp/mqp.h"

using namespace mqp;

namespace {

using algebra::Item;
using algebra::ItemSet;
using algebra::PlanNode;

// `distinct_fraction` of the items are unique; the rest are structural
// duplicates of earlier ones (fresh nodes, equal content).
ItemSet MakeItems(size_t n, double distinct_fraction) {
  workload::GarageSaleGenerator gen(7);
  auto sellers = gen.MakeSellers(1);
  const size_t distinct = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(n) * distinct_fraction));
  ItemSet base = gen.MakeItems(sellers[0], distinct);
  Rng rng(11);
  ItemSet out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (i < base.size()) {
      out.push_back(base[i]);
    } else {
      out.push_back(algebra::MakeItem(*rng.Pick(base)));
    }
  }
  rng.Shuffle(&out);
  return out;
}

engine::LocalStore& StoreWith(size_t n) {
  // One store per size, reused across benchmark iterations (rebuilding
  // 100k items per iteration would swamp the fetch being measured).
  static std::unordered_map<size_t, engine::LocalStore> stores;
  auto it = stores.find(n);
  if (it == stores.end()) {
    it = stores.emplace(n, engine::LocalStore()).first;
    it->second.AddCollection("c0", MakeItems(n, 1.0));
  }
  return it->second;
}

const std::string kCollection = engine::LocalStore::CollectionXPath("c0");

void BM_FetchCloning(benchmark::State& state) {
  engine::LocalStore& store = StoreWith(static_cast<size_t>(state.range(0)));
  engine::set_use_shared_store(false);
  (void)store.Fetch("", kCollection);  // build the DOM view once
  for (auto _ : state) {
    auto items = store.Fetch("", kCollection);
    benchmark::DoNotOptimize(items);
  }
  engine::set_use_shared_store(true);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FetchCloning)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_FetchShared(benchmark::State& state) {
  engine::LocalStore& store = StoreWith(static_cast<size_t>(state.range(0)));
  engine::set_use_shared_store(true);
  for (auto _ : state) {
    auto items = store.Fetch("", kCollection);
    benchmark::DoNotOptimize(items);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FetchShared)->Arg(1000)->Arg(10000)->Arg(100000);

// The old set semantics, preserved here as the reference: serialize every
// item, dedup on the string.
ItemSet SerializeKeyedDistinct(const ItemSet& items) {
  ItemSet out;
  std::unordered_set<std::string> seen;
  for (const Item& item : items) {
    if (seen.insert(xml::Serialize(*item)).second) out.push_back(item);
  }
  return out;
}

void BM_DistinctSerializeReference(benchmark::State& state) {
  const ItemSet items = MakeItems(static_cast<size_t>(state.range(0)), 0.5);
  for (auto _ : state) {
    auto out = SerializeKeyedDistinct(items);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DistinctSerializeReference)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DistinctHash(benchmark::State& state) {
  const ItemSet items = MakeItems(static_cast<size_t>(state.range(0)), 0.5);
  auto plan = PlanNode::Union({PlanNode::XmlData(items)}, /*distinct=*/true);
  for (auto _ : state) {
    auto out = engine::Evaluate(*plan);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DistinctHash)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DifferenceSerializeReference(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ItemSet left = MakeItems(n, 0.5);
  const ItemSet right(left.begin(), left.begin() + static_cast<long>(n / 2));
  for (auto _ : state) {
    std::unordered_map<std::string, int> counts;
    for (const Item& item : right) counts[xml::Serialize(*item)]++;
    ItemSet out;
    for (const Item& item : left) {
      auto it = counts.find(xml::Serialize(*item));
      if (it != counts.end() && it->second > 0) {
        --it->second;
        continue;
      }
      out.push_back(item);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DifferenceSerializeReference)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DifferenceHash(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ItemSet left = MakeItems(n, 0.5);
  const ItemSet right(left.begin(), left.begin() + static_cast<long>(n / 2));
  auto plan = PlanNode::Difference(PlanNode::XmlData(left),
                                   PlanNode::XmlData(right));
  for (auto _ : state) {
    auto out = engine::Evaluate(*plan);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DifferenceHash)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TopNSortReference(benchmark::State& state) {
  // The old top-N: materialize everything, stable_sort with the key
  // re-extracted on every comparison, truncate to n.
  const ItemSet items = MakeItems(static_cast<size_t>(state.range(0)), 1.0);
  auto key = [](const Item& item) {
    const xml::Node* c = item->Child("price");
    return algebra::Value{c != nullptr ? c->InnerText() : std::string()};
  };
  for (auto _ : state) {
    ItemSet sorted = items;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&](const Item& a, const Item& b) {
                       return key(a).Compare(key(b)) < 0;
                     });
    if (sorted.size() > 10) sorted.resize(10);
    benchmark::DoNotOptimize(sorted);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TopNSortReference)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TopNHeap(benchmark::State& state) {
  const ItemSet items = MakeItems(static_cast<size_t>(state.range(0)), 1.0);
  auto plan =
      PlanNode::TopN(10, "price", true, PlanNode::XmlData(items));
  for (auto _ : state) {
    auto out = engine::Evaluate(*plan);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TopNHeap)->Arg(1000)->Arg(10000)->Arg(100000);

// --- the fetch+distinct pipeline (shape-check path) ----------------------------
//
// Two collections with a 50% overlap, fetched and unioned with set
// semantics — the replica-union query shape. The reference runs the old
// engine behavior end to end: cloning fetch + serialize-keyed dedup.

struct PipelineFixture {
  engine::LocalStore store;
  algebra::PlanNodePtr plan;

  explicit PipelineFixture(size_t n) {
    ItemSet base = MakeItems(n, 1.0);
    ItemSet a(base.begin(), base.begin() + static_cast<long>(n * 3 / 4));
    ItemSet b(base.begin() + static_cast<long>(n / 4), base.end());
    store.AddCollection("a", a);
    store.AddCollection("b", b);
    plan = PlanNode::Union(
        {PlanNode::Url("local:9020", engine::LocalStore::CollectionXPath("a")),
         PlanNode::Url("local:9020",
                       engine::LocalStore::CollectionXPath("b"))},
        /*distinct=*/true);
  }

  ItemSet RunReference() {
    engine::set_use_shared_store(false);
    auto a = store.Fetch("", engine::LocalStore::CollectionXPath("a"));
    auto b = store.Fetch("", engine::LocalStore::CollectionXPath("b"));
    ItemSet all = std::move(a).value();
    ItemSet bs = std::move(b).value();
    all.insert(all.end(), bs.begin(), bs.end());
    auto out = SerializeKeyedDistinct(all);
    engine::set_use_shared_store(true);
    return out;
  }

  ItemSet RunShared() {
    return engine::Evaluate(*plan, &store).value();
  }
};

void BM_FetchDistinctReference(benchmark::State& state) {
  PipelineFixture fx(static_cast<size_t>(state.range(0)));
  (void)fx.RunReference();  // build the DOM view once
  for (auto _ : state) {
    auto out = fx.RunReference();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FetchDistinctReference)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_FetchDistinctShared(benchmark::State& state) {
  PipelineFixture fx(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto out = fx.RunShared();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FetchDistinctShared)->Arg(1000)->Arg(10000)->Arg(100000);

// --- shape check ---------------------------------------------------------------

double SecondsPerRun(PipelineFixture* fx, bool shared, size_t iters) {
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < iters; ++i) {
    auto out = shared ? fx->RunShared() : fx->RunReference();
    benchmark::DoNotOptimize(out);
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count() / static_cast<double>(iters);
}

int ShapeCheck() {
  PipelineFixture fx(10000);
  // Equivalence first: identical result sequences, and the shared run
  // performs zero item clones and zero xml::Serialize calls.
  ItemSet reference = fx.RunReference();
  const uint64_t cloned_before = engine::Stats().items_cloned;
  const uint64_t serializes_before = xml::SerializeCalls();
  ItemSet shared = fx.RunShared();
  const uint64_t cloned = engine::Stats().items_cloned - cloned_before;
  const uint64_t serialized = xml::SerializeCalls() - serializes_before;
  if (cloned != 0 || serialized != 0) {
    std::printf("FAIL: shared fetch+distinct cloned %llu items / made %llu "
                "Serialize calls (want 0/0)\n",
                static_cast<unsigned long long>(cloned),
                static_cast<unsigned long long>(serialized));
    return 1;
  }
  if (reference.size() != shared.size()) {
    std::printf("FAIL: pipelines diverge: %zu vs %zu items\n",
                reference.size(), shared.size());
    return 1;
  }
  for (size_t i = 0; i < reference.size(); ++i) {
    if (!reference[i]->StructurallyEquals(*shared[i])) {
      std::printf("FAIL: pipelines diverge at item %zu\n", i);
      return 1;
    }
  }
  // Interleaved min-of-5 (scheduler noise on shared CI runners).
  (void)SecondsPerRun(&fx, true, 4);  // warm
  (void)SecondsPerRun(&fx, false, 4);
  double t_ref = 1e9, t_shared = 1e9;
  for (int round = 0; round < 5; ++round) {
    t_ref = std::min(t_ref, SecondsPerRun(&fx, false, 8));
    t_shared = std::min(t_shared, SecondsPerRun(&fx, true, 8));
  }
  const double speedup = t_ref / t_shared;
  std::printf(
      "Shape check: fetch+distinct over 10k items %.2f ms shared vs %.2f ms "
      "cloning/serializing reference — %.1fx (acceptance floor: 5x), "
      "identical results, 0 clones, 0 Serialize calls.\n",
      t_shared * 1e3, t_ref * 1e3, speedup);
  if (speedup < 5.0) {
    std::printf("FAIL: speedup %.1fx below the 5x acceptance floor\n",
                speedup);
    return 1;
  }
  std::printf("OK: >=5x on the fetch+distinct path at 10k items\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return ShapeCheck();
}
