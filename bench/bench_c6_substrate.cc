// C6 — substrate microbenchmarks: the XML engine standing in for NIAGARA
// (see DESIGN.md substitutions) and the physical operators.
#include <benchmark/benchmark.h>

#include "mqp/mqp.h"

using namespace mqp;

namespace {

std::string BigDocument(size_t items) {
  workload::GarageSaleGenerator gen(5);
  auto sellers = gen.MakeSellers(1);
  auto data = gen.MakeItems(sellers[0], items);
  auto root = xml::Node::Element("data");
  for (const auto& item : data) {
    root->AddChild(item->Clone());
  }
  return xml::Serialize(*root);
}

void BM_XmlParse(benchmark::State& state) {
  const std::string doc = BigDocument(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto parsed = xml::Parse(doc);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_XmlParse)->Arg(100)->Arg(1000);

void BM_XmlSerialize(benchmark::State& state) {
  const std::string doc = BigDocument(static_cast<size_t>(state.range(0)));
  auto tree = std::move(xml::Parse(doc)).value();
  for (auto _ : state) {
    std::string out = xml::Serialize(*tree);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_XmlSerialize)->Arg(100)->Arg(1000);

void BM_XPathEval(benchmark::State& state) {
  auto tree = std::move(xml::Parse(BigDocument(1000))).value();
  auto xp = *xml::XPath::Parse("/data/item[price<50]");
  for (auto _ : state) {
    auto matches = xp.Eval(*tree);
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_XPathEval);

algebra::ItemSet Items(size_t n, uint64_t seed) {
  workload::GarageSaleGenerator gen(seed);
  auto sellers = gen.MakeSellers(1);
  return gen.MakeItems(sellers[0], n);
}

void BM_EngineSelect(benchmark::State& state) {
  auto data = Items(static_cast<size_t>(state.range(0)), 1);
  auto plan = algebra::PlanNode::Select(algebra::FieldLess("price", "50"),
                                        algebra::PlanNode::XmlData(data));
  for (auto _ : state) {
    auto r = engine::Evaluate(*plan);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EngineSelect)->Arg(1000)->Arg(10000);

void BM_EngineHashJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  algebra::ItemSet left, right;
  for (size_t i = 0; i < n; ++i) {
    auto l = xml::Node::Element("l");
    l->AddElementWithText("k", std::to_string(i % (n / 4 + 1)));
    left.push_back(algebra::Item(l.release()));
    auto r = xml::Node::Element("r");
    r->AddElementWithText("rk", std::to_string(i % (n / 4 + 1)));
    right.push_back(algebra::Item(r.release()));
  }
  auto plan = algebra::PlanNode::Join(algebra::JoinEq("k", "rk"),
                                      algebra::PlanNode::XmlData(left),
                                      algebra::PlanNode::XmlData(right));
  for (auto _ : state) {
    auto r = engine::Evaluate(*plan);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 2);
}
BENCHMARK(BM_EngineHashJoin)->Arg(256)->Arg(2048);

void BM_EngineTopN(benchmark::State& state) {
  auto data = Items(static_cast<size_t>(state.range(0)), 2);
  auto plan =
      algebra::PlanNode::TopN(10, "price", true,
                              algebra::PlanNode::XmlData(data));
  for (auto _ : state) {
    auto r = engine::Evaluate(*plan);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EngineTopN)->Arg(1000)->Arg(10000);

void BM_EngineAggregate(benchmark::State& state) {
  auto data = Items(static_cast<size_t>(state.range(0)), 3);
  auto plan = algebra::PlanNode::Aggregate(
      algebra::AggFunc::kAvg, "price", "category",
      algebra::PlanNode::XmlData(data));
  for (auto _ : state) {
    auto r = engine::Evaluate(*plan);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EngineAggregate)->Arg(1000)->Arg(10000);

void BM_LocalStoreFetch(benchmark::State& state) {
  engine::LocalStore store;
  store.AddCollection("245", Items(static_cast<size_t>(state.range(0)), 4));
  for (auto _ : state) {
    auto r = store.Fetch("", "/data[id=245]");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_LocalStoreFetch)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
