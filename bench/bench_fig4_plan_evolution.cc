// F4 — Figure 4: two steps in the evaluation of a mutant query —
// (a) resolution and rewriting, (b) reduction.
//
// We trace the actual wire size of the MQP after every hop of the Figure-3
// query: the URN resolution step grows the plan slightly (URLs + pushed
// selects), each reduction substitutes data for sub-plans (growing the
// plan with partial results), and the final reduction collapses it to the
// result. The per-hop series is the quantity MQP optimization reasons
// about ("their size matters", §2).
#include "net/simulator.h"
#include "bench_util.h"

using namespace mqp;

int main() {
  bench::Header("F4", "Figure 4 plan evolution: wire size after each hop");

  net::Simulator sim;
  workload::CdMarketGenerator gen(2026);
  auto titles = gen.MakeTitles(40);

  peer::PeerOptions idx_opts;
  idx_opts.name = "resolver";
  idx_opts.roles.index = true;
  peer::Peer resolver(&sim, idx_opts);

  peer::PeerOptions s1_opts;
  s1_opts.name = "seller1";
  s1_opts.roles.base = true;
  peer::Peer seller1(&sim, s1_opts);
  seller1.PublishNamed("urn:ForSale:Portland-CDs", "cds",
                       gen.MakeSellerCds(titles, "seller1", 30));
  peer::PeerOptions s2_opts;
  s2_opts.name = "seller2";
  s2_opts.roles.base = true;
  peer::Peer seller2(&sim, s2_opts);
  seller2.PublishNamed("urn:ForSale:Portland-CDs", "cds",
                       gen.MakeSellerCds(titles, "seller2", 30));
  peer::PeerOptions tl_opts;
  tl_opts.name = "cddb";
  tl_opts.roles.base = true;
  peer::Peer tracklist(&sim, tl_opts);
  auto listings = gen.MakeTrackListings(titles, 4);
  tracklist.PublishNamed("urn:CD:TrackListings", "listings", listings);
  for (peer::Peer* p : {&seller1, &seller2, &tracklist}) {
    p->AddBootstrap(resolver.address());
    p->JoinNetwork();
  }
  sim.Run();

  peer::PeerOptions copts;
  copts.name = "client";
  peer::Peer client(&sim, copts);
  client.AddBootstrap(resolver.address());

  // Trace every mqp/result transfer.
  struct HopRecord {
    std::string kind;
    net::PeerId from, to;
    size_t bytes;
  };
  std::vector<HopRecord> hops;
  sim.set_on_send([&](const net::Message& m) {
    if (m.kind == peer::kMqpKind || m.kind == peer::kResultKind) {
      hops.push_back({m.kind, m.from, m.to, m.size_bytes});
    }
  });

  auto favorites = gen.MakeFavoriteSongs(listings, 12);
  auto plan = workload::MakeFigure3Plan(favorites, "urn:ForSale:Portland-CDs",
                                        "urn:CD:TrackListings", "", "10");
  const size_t initial = algebra::PlanWireSize(plan);

  bool done = false;
  size_t results = 0;
  client.SubmitQuery(std::move(plan), [&](const peer::QueryOutcome& o) {
    results = o.items.size();
    done = true;
  });
  sim.Run();

  auto name_of = [&](net::PeerId id) -> std::string {
    for (peer::Peer* p :
         {&resolver, &seller1, &seller2, &tracklist, &client}) {
      if (p->id() == id) return p->options().name;
    }
    return "?";
  };

  bench::Row("%5s %-10s %-10s %-8s %10s %9s", "hop", "from", "to", "kind",
             "bytes", "delta");
  bench::Row("%5s %-10s %-10s %-8s %10zu %9s", "0", "client", "client",
             "submit", initial, "-");
  size_t prev = initial;
  for (size_t i = 0; i < hops.size(); ++i) {
    bench::Row("%5zu %-10s %-10s %-8s %10zu %+9lld", i + 1,
               name_of(hops[i].from).c_str(), name_of(hops[i].to).c_str(),
               hops[i].kind.c_str(), hops[i].bytes,
               static_cast<long long>(hops[i].bytes) -
                   static_cast<long long>(prev));
    prev = hops[i].bytes;
  }
  bench::Row("\nquery %s, %zu results", done ? "completed" : "DID NOT RETURN",
             results);
  bench::Row("\nShape check (paper Figure 4): the resolution hop swaps the "
             "URN for seller URLs\nwith the select pushed through the union "
             "(a); each seller/service visit reduces\nits sub-plan to "
             "verbatim data, so the plan carries partial results until the\n"
             "final reduction collapses it (b).");
  return 0;
}
