// C9 — streaming vs DOM plan codec on the wire hot path.
//
// Every hop re-examines the MQP's XML; PR 1 removed re-*serialization*
// from routing hops, this experiment prices the remaining decode (and the
// first-time encode) in both codec modes:
//   * dom       — the reference: xml::Parse → Node tree → PlanFromXml
//                 (decode), PlanToXml → xml::Serialize (encode),
//   * streaming — the token codec: bytes → PlanNodes directly, and
//                 PlanNodes → bytes through the emitting sink.
// Plans are measured at operator depths 2/8/32, with and without inline
// <data> items (the one structure that legitimately materializes DOM
// nodes). dom_nodes/decode counters make the waste visible.
//
// The shape check requires the ≥2x streaming-vs-DOM decode speedup at
// depth 8 and 32 (no inline items) and re-verifies that both decoders
// produce byte-identical re-serializations.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "mqp/mqp.h"

using namespace mqp;

namespace {

using algebra::Plan;
using algebra::PlanNode;
using algebra::PlanNodePtr;

// A depth-`d` operator chain with a union kink every 4 levels (breadth +
// shared-leaf variety), annotated like a travelled plan: cardinalities
// plus the §5.1 histograms AnnotateLocalUrls attaches, and a multi-visit
// provenance trail.
Plan MakePlan(int depth, size_t items_per_leaf) {
  workload::GarageSaleGenerator gen(7);
  auto sellers = gen.MakeSellers(1);
  PlanNodePtr node;
  if (items_per_leaf > 0) {
    node = PlanNode::XmlData(gen.MakeItems(sellers[0], items_per_leaf));
  } else {
    node = PlanNode::UrnRef("urn:InterestArea:(USA.OR.Portland,Music.CDs)");
  }
  for (int i = 0; i < depth; ++i) {
    if (i % 4 == 3) {
      auto extra =
          PlanNode::UrnRef("urn:InterestArea:(USA.WA,*)", "10.0.0.9:9020");
      node = PlanNode::Union({std::move(node), std::move(extra)});
    } else {
      node = PlanNode::Select(
          algebra::FieldLess("price", std::to_string(10 + i)),
          std::move(node));
    }
    if (i % 3 == 0) {
      node->annotations().cardinality = 100 + static_cast<uint64_t>(i);
      algebra::FieldHistogram h;
      h.field = "price";
      h.min = 1;
      h.max = 500;
      h.total = 100;
      for (int b = 0; b < 8; ++b) {
        h.counts.push_back(static_cast<uint64_t>(b) * 3);
      }
      node->annotations().histograms.push_back(std::move(h));
    }
  }
  Plan plan(PlanNode::Display("10.0.0.1:9020", std::move(node)));
  plan.set_query_id("bench-c9");
  for (int v = 0; v < 4; ++v) {
    plan.provenance().Add({"10.0.0." + std::to_string(v) + ":9020", 1.5 * v,
                           algebra::ProvenanceAction::kForwarded, "relay",
                           0});
  }
  return plan;
}

void DecodeLoop(benchmark::State& state, bool streaming,
                size_t items_per_leaf) {
  algebra::set_use_streaming_plan_codec(true);
  const std::string wire =
      algebra::SerializePlan(MakePlan(static_cast<int>(state.range(0)),
                                      items_per_leaf));
  algebra::set_use_streaming_plan_codec(streaming);
  const uint64_t nodes_before = xml::DomNodesBuilt();
  uint64_t decodes = 0;
  for (auto _ : state) {
    auto plan = algebra::ParsePlan(wire);
    benchmark::DoNotOptimize(plan);
    ++decodes;
  }
  algebra::set_use_streaming_plan_codec(true);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wire.size()));
  state.counters["dom_nodes/decode"] = benchmark::Counter(
      static_cast<double>(xml::DomNodesBuilt() - nodes_before) /
      static_cast<double>(decodes == 0 ? 1 : decodes));
}

void BM_DecodePlanDom(benchmark::State& state) {
  DecodeLoop(state, /*streaming=*/false, /*items_per_leaf=*/0);
}
BENCHMARK(BM_DecodePlanDom)->Arg(2)->Arg(8)->Arg(32);

void BM_DecodePlanStreaming(benchmark::State& state) {
  DecodeLoop(state, /*streaming=*/true, /*items_per_leaf=*/0);
}
BENCHMARK(BM_DecodePlanStreaming)->Arg(2)->Arg(8)->Arg(32);

void BM_DecodePlanDomWithData(benchmark::State& state) {
  DecodeLoop(state, /*streaming=*/false, /*items_per_leaf=*/20);
}
BENCHMARK(BM_DecodePlanDomWithData)->Arg(2)->Arg(8)->Arg(32);

void BM_DecodePlanStreamingWithData(benchmark::State& state) {
  DecodeLoop(state, /*streaming=*/true, /*items_per_leaf=*/20);
}
BENCHMARK(BM_DecodePlanStreamingWithData)->Arg(2)->Arg(8)->Arg(32);

void EncodeLoop(benchmark::State& state, bool streaming,
                size_t items_per_leaf) {
  const Plan plan =
      MakePlan(static_cast<int>(state.range(0)), items_per_leaf);
  algebra::set_use_streaming_plan_codec(streaming);
  size_t bytes = 0;
  for (auto _ : state) {
    std::string wire = algebra::SerializePlan(plan);
    bytes = wire.size();
    benchmark::DoNotOptimize(wire);
  }
  algebra::set_use_streaming_plan_codec(true);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}

void BM_EncodePlanDom(benchmark::State& state) {
  EncodeLoop(state, /*streaming=*/false, /*items_per_leaf=*/0);
}
BENCHMARK(BM_EncodePlanDom)->Arg(2)->Arg(8)->Arg(32);

void BM_EncodePlanStreaming(benchmark::State& state) {
  EncodeLoop(state, /*streaming=*/true, /*items_per_leaf=*/0);
}
BENCHMARK(BM_EncodePlanStreaming)->Arg(2)->Arg(8)->Arg(32);

void BM_EncodePlanDomWithData(benchmark::State& state) {
  EncodeLoop(state, /*streaming=*/false, /*items_per_leaf=*/20);
}
BENCHMARK(BM_EncodePlanDomWithData)->Arg(8);

void BM_EncodePlanStreamingWithData(benchmark::State& state) {
  EncodeLoop(state, /*streaming=*/true, /*items_per_leaf=*/20);
}
BENCHMARK(BM_EncodePlanStreamingWithData)->Arg(8);

void BM_PlanWireSizeStreaming(benchmark::State& state) {
  // The counting sink: pricing a plan without materializing bytes.
  const Plan plan = MakePlan(static_cast<int>(state.range(0)), 20);
  for (auto _ : state) {
    size_t n = algebra::PlanWireSize(plan);
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_PlanWireSizeStreaming)->Arg(8);

// --- shape check ---------------------------------------------------------------

double SecondsPerDecode(const std::string& wire, bool streaming,
                        size_t iters) {
  algebra::set_use_streaming_plan_codec(streaming);
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < iters; ++i) {
    auto plan = algebra::ParsePlan(wire);
    benchmark::DoNotOptimize(plan);
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  algebra::set_use_streaming_plan_codec(true);
  return elapsed.count() / static_cast<double>(iters);
}

int ShapeCheck() {
  for (const int depth : {8, 32}) {
    const Plan plan = MakePlan(depth, 0);
    const std::string wire = algebra::SerializePlan(plan);
    // Equivalence: both decoders reproduce the same canonical bytes, and
    // the streaming decode builds zero DOM nodes on an item-free plan.
    algebra::set_use_streaming_plan_codec(true);
    const uint64_t nodes_before = xml::DomNodesBuilt();
    auto via_stream = algebra::ParsePlan(wire);
    const uint64_t stream_nodes = xml::DomNodesBuilt() - nodes_before;
    algebra::set_use_streaming_plan_codec(false);
    auto via_dom = algebra::ParsePlan(wire);
    algebra::set_use_streaming_plan_codec(true);
    if (!via_stream.ok() || !via_dom.ok() ||
        algebra::SerializePlan(*via_stream) !=
            algebra::SerializePlan(*via_dom)) {
      std::printf("FAIL: codec paths diverge at depth %d\n", depth);
      return 1;
    }
    if (stream_nodes != 0) {
      std::printf("FAIL: streaming decode built %llu DOM nodes at depth %d\n",
                  static_cast<unsigned long long>(stream_nodes), depth);
      return 1;
    }
    // Interleaved min-of-5: a single pass per mode is at the mercy of
    // scheduler noise on shared CI runners.
    (void)SecondsPerDecode(wire, true, 128);  // warm
    (void)SecondsPerDecode(wire, false, 128);
    double t_dom = 1e9, t_stream = 1e9;
    for (int round = 0; round < 5; ++round) {
      t_dom = std::min(t_dom, SecondsPerDecode(wire, false, 512));
      t_stream = std::min(t_stream, SecondsPerDecode(wire, true, 512));
    }
    const double speedup = t_dom / t_stream;
    std::printf(
        "Shape check: depth-%d plan decode %.2f us streaming vs %.2f us DOM "
        "— %.1fx (acceptance floor at depth >= 8: 2x), zero DOM nodes "
        "built, identical plans.\n",
        depth, t_stream * 1e6, t_dom * 1e6, speedup);
    if (speedup < 2.0) {
      std::printf("FAIL: speedup %.1fx below the 2x acceptance floor\n",
                  speedup);
      return 1;
    }
  }
  std::printf("OK: >=2x streaming decode speedup at depth 8 and 32\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return ShapeCheck();
}
