// F1 — Figure 1 "Of Mice and Men": interest-area coverage routing over
// gene-expression repositories.
//
// The paper's claim: a query about cardiac muscle cells in mammals can be
// routed to the rodent and human groups "but can ignore the first site
// (where it surely will not [find relevant data])". We scale the number of
// research groups and compare coverage routing against Gnutella-style
// flooding: servers contacted, precision (contacted servers that were
// relevant), recall (items found / items that exist), and messages.
#include "net/simulator.h"
#include "bench_util.h"

using namespace mqp;

namespace {

struct Scenario {
  net::Simulator sim;
  std::vector<std::unique_ptr<peer::Peer>> peers;
  peer::Peer* meta = nullptr;
  peer::Peer* client = nullptr;
  std::vector<workload::ResearchGroup> groups;
  size_t relevant_groups = 0;
  size_t relevant_items = 0;
};

const char* kQueryArea = "(Coelomata.Deuterostomia.Mammalia,Muscle.Cardiac)";

std::unique_ptr<Scenario> Build(size_t extra_groups, uint64_t seed) {
  auto s = std::make_unique<Scenario>();
  workload::GeneExpressionGenerator gen(seed);
  const std::vector<std::string> fields = {"organism", "celltype"};

  peer::PeerOptions meta_opts;
  meta_opts.name = "meta";
  meta_opts.roles.meta_index = true;
  meta_opts.roles.index = true;
  meta_opts.roles.authoritative = true;
  meta_opts.dimension_fields = fields;
  meta_opts.interest = ns::InterestArea(
      ns::InterestCell({ns::CategoryPath(), ns::CategoryPath()}));
  s->peers.push_back(std::make_unique<peer::Peer>(&s->sim, meta_opts));
  s->meta = s->peers.back().get();

  s->groups = gen.FigureOneGroups();
  auto extra = gen.RandomGroups(extra_groups);
  s->groups.insert(s->groups.end(), extra.begin(), extra.end());

  auto query_area = *ns::InterestArea::Parse(kQueryArea);
  for (const auto& g : s->groups) {
    peer::PeerOptions o;
    o.name = g.name;
    o.interest = g.area;
    o.roles.base = true;
    o.dimension_fields = fields;
    s->peers.push_back(std::make_unique<peer::Peer>(&s->sim, o));
    peer::Peer* p = s->peers.back().get();
    auto items = gen.MakeExperiments(g, 30);
    for (const auto& item : items) {
      auto org = ns::CategoryPath::Parse(item->ChildText("organism"));
      auto cell = ns::CategoryPath::Parse(item->ChildText("celltype"));
      if (org.ok() && cell.ok()) {
        ns::InterestCell c({*org, *cell});
        for (const auto& qc : query_area.cells()) {
          if (qc.Covers(c)) {
            ++s->relevant_items;
            break;
          }
        }
      }
    }
    if (g.area.Overlaps(query_area)) ++s->relevant_groups;
    p->PublishCollection("expr", g.area, items);
    p->AddBootstrap(s->meta->address());
    p->JoinNetwork();
  }
  s->sim.Run();

  peer::PeerOptions copts;
  copts.name = "client";
  copts.dimension_fields = fields;
  s->peers.push_back(std::make_unique<peer::Peer>(&s->sim, copts));
  s->client = s->peers.back().get();
  s->client->AddBootstrap(s->meta->address());
  return s;
}

}  // namespace

int main() {
  bench::Header("F1", "Figure 1 gene-expression coverage routing");
  bench::Row("%8s %8s %9s %9s %9s %8s %9s | %12s %9s",
             "groups", "relevant", "visited", "precision", "recall",
             "msgs", "bytes", "flood-msgs", "flood-ovh");
  for (size_t extra : {0, 7, 27, 97}) {
    auto s = Build(extra, /*seed=*/2026 + extra);
    s->sim.stats().Clear();
    auto area = *ns::InterestArea::Parse(kQueryArea);
    auto run = bench::RunAreaQuery(&s->sim, s->client, area);
    if (!run.ok) {
      bench::Row("%8zu  QUERY DID NOT RETURN", s->groups.size());
      continue;
    }
    // Which base groups did the MQP visit?
    size_t visited = 0, visited_relevant = 0;
    for (size_t i = 0; i < s->groups.size(); ++i) {
      const std::string addr = s->peers[i + 1]->address();  // peers[0]=meta
      if (run.outcome.provenance.Visited(addr)) {
        ++visited;
        if (s->groups[i].area.Overlaps(area)) ++visited_relevant;
      }
    }
    const double precision =
        visited == 0 ? 1.0
                     : static_cast<double>(visited_relevant) / visited;
    const double recall =
        s->relevant_items == 0
            ? 1.0
            : static_cast<double>(run.outcome.items.size()) /
                  s->relevant_items;

    // Flooding comparison: every group forwards to every neighbor up to
    // the horizon; count messages needed for the same recall.
    net::Simulator fsim;
    Rng rng(99);
    baseline::FloodingClient fclient(&fsim);
    std::vector<std::unique_ptr<baseline::FloodingPeer>> fpeers;
    std::vector<baseline::FloodingPeer*> all{&fclient};
    workload::GeneExpressionGenerator fgen(2026 + extra);
    auto fgroups = fgen.FigureOneGroups();
    auto fextra = fgen.RandomGroups(extra);
    fgroups.insert(fgroups.end(), fextra.begin(), fextra.end());
    for (const auto& g : fgroups) {
      fpeers.push_back(std::make_unique<baseline::FloodingPeer>(
          &fsim, g.area, fgen.MakeExperiments(g, 30)));
      all.push_back(fpeers.back().get());
    }
    baseline::BuildRandomOverlay(all, 4, &rng);
    fclient.Query(area, /*horizon=*/8);
    fsim.Run();
    const double flood_overhead =
        s->groups.size() == 0
            ? 0
            : static_cast<double>(fsim.stats().messages) /
                  static_cast<double>(run.messages);

    bench::Row("%8zu %8zu %9zu %8.0f%% %8.0f%% %8llu %9llu | %12llu %8.1fx",
               s->groups.size(), s->relevant_groups, visited,
               100 * precision, 100 * recall,
               static_cast<unsigned long long>(run.messages),
               static_cast<unsigned long long>(run.bytes),
               static_cast<unsigned long long>(fsim.stats().messages),
               flood_overhead);
  }
  bench::Row("\nShape check (paper): visited servers track the relevant "
             "groups, not the network size;\nflooding message cost grows "
             "with network size while precision stays low.");
  return 0;
}
