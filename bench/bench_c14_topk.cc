// C14 — adaptive distributed top-k (DESIGN.md §10).
//
// A garage-sale network answers top-k-by-price interest-area queries
// twice per cell: once with the bounded, score-ordered, batched protocol
// (the distributed top-k sessions behind RouteOrDeliver) and once with
// the ablation knob off (the ship-everything reference, which forwards
// every in-area row through the plan). The sweep is
// k x collection-size x peer-count; each cell reports bytes on the wire
// during the query phase and rows shipped from the sources, distributed
// vs ablated — with result equality between the two runs gated in every
// cell (a top-k answer is a ranking, so the ordered rows must match
// bit-for-bit).
//
// Rows shipped is derived from the pruning counters: the protocol's
// accounting is exhaustive (server-side terminal slices credit the rows
// they prove dead, the coordinator credits the remainder of
// early-terminated streams), so shipped = in-area total - pruned. The
// ablated reference ships the whole in-area total by construction.
//
// Shape checks (enforced, nonzero exit on failure):
//   * >= 10x bytes-on-wire reduction vs ablated at k=10, N=10k per peer,
//   * result equality distributed vs ablated in every cell,
//   * topk_rows_pruned > 0 wherever the collections outnumber k,
//   * the ablated reference never touches the top-k machinery (all four
//     topk counters zero),
//   * zero decode failures / unmatched replies on this fault-free path.
//
// Flags: --ci shrinks the sweep for a CI smoke slot (the k=10, N=10k
// shape cell always runs); --json=PATH writes BENCH_topk.json.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "net/simulator.h"
#include "optimizer/rewrites.h"
#include "bench_util.h"

using namespace mqp;

namespace {

struct Cell {
  size_t sellers = 0;
  size_t items_per_seller = 0;
  uint64_t k = 0;
  bool distributed = false;

  bool complete = false;
  std::vector<std::string> rows;  // ordered "name|price" result ranking
  uint64_t in_area_total = 0;     // ground-truth rows inside the area
  uint64_t query_bytes = 0;       // wire bytes after the network build
  uint64_t rows_shipped = 0;
  uint64_t batches = 0;
  uint64_t pruned = 0;
  uint64_t bytes_saved = 0;
  uint64_t early_terminations = 0;
  uint64_t decode_failures = 0;
  uint64_t unmatched = 0;
};

Cell RunCell(size_t sellers, size_t items_per_seller, uint64_t k,
             bool distributed, uint64_t seed) {
  Cell cell;
  cell.sellers = sellers;
  cell.items_per_seller = items_per_seller;
  cell.k = k;
  cell.distributed = distributed;

  const bool saved_knob = optimizer::use_distributed_topk();
  optimizer::set_use_distributed_topk(distributed);

  net::Simulator sim;
  workload::GarageSaleNetworkParams params;
  params.num_sellers = sellers;
  params.items_per_seller = items_per_seller;
  params.seed = seed;
  auto net = workload::BuildGarageSaleNetwork(&sim, params);
  const auto area = *ns::InterestArea::Parse("(USA,*)");
  cell.in_area_total =
      workload::GarageSaleGenerator::CountInArea(net.all_items, area);
  const uint64_t bytes_after_build = sim.stats().bytes;

  net.client->SubmitQuery(
      workload::MakeTopKQueryPlan(area, "price", /*ascending=*/true, k),
      [&](const peer::QueryOutcome& o) {
        cell.complete = o.complete;
        for (const auto& item : o.items) {
          cell.rows.push_back(item->ChildText("name") + "|" +
                              item->ChildText("price"));
        }
      });
  sim.Run();
  optimizer::set_use_distributed_topk(saved_knob);

  const net::NetStats& st = sim.stats();
  cell.query_bytes = st.bytes - bytes_after_build;
  cell.batches = st.topk_batches;
  cell.pruned = st.topk_rows_pruned;
  cell.bytes_saved = st.topk_bytes_saved;
  cell.early_terminations = st.topk_early_terminations;
  cell.decode_failures = st.reply_decode_failures;
  cell.unmatched = st.unmatched_replies;
  cell.rows_shipped = distributed ? cell.in_area_total - cell.pruned
                                  : cell.in_area_total;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bool ci = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ci") == 0) ci = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  bench::Header("C14", "adaptive distributed top-k: bounded batched "
                       "fetches vs the ship-everything reference");

  const uint64_t seed = 1400;
  std::vector<size_t> seller_counts = ci ? std::vector<size_t>{4}
                                         : std::vector<size_t>{4, 8};
  std::vector<size_t> sizes = {1000, 10000};
  std::vector<uint64_t> ks = {1, 10, 100};

  bench::Row("sweep: sellers x items/seller x k, top-k by price over "
             "(USA,*), distributed vs ablated, seed %llu",
             static_cast<unsigned long long>(seed));
  bench::Row("  %-7s %-9s %5s %12s %12s %8s %9s %8s %7s %7s",
             "sellers", "items", "k", "bytes_dist", "bytes_ref", "ratio",
             "shipped", "pruned", "batch", "early");

  bool shape_ok = true;
  bool saw_10x_cell = false;
  struct Pair {
    Cell dist;
    Cell ref;
  };
  std::vector<Pair> pairs;

  for (size_t sellers : seller_counts) {
    for (size_t items : sizes) {
      for (uint64_t k : ks) {
        Pair p;
        p.dist = RunCell(sellers, items, k, /*distributed=*/true, seed);
        p.ref = RunCell(sellers, items, k, /*distributed=*/false, seed);

        // Result equality is the gate everything else stands on.
        if (!p.dist.complete || !p.ref.complete) {
          bench::Row("SHAPE FAIL: incomplete query at sellers=%zu "
                     "items=%zu k=%llu",
                     sellers, items, static_cast<unsigned long long>(k));
          shape_ok = false;
        }
        if (p.dist.rows != p.ref.rows) {
          bench::Row("SHAPE FAIL: ranking mismatch vs ablated at "
                     "sellers=%zu items=%zu k=%llu",
                     sellers, items, static_cast<unsigned long long>(k));
          shape_ok = false;
        }
        // The ablated reference must never touch the top-k machinery.
        if (p.ref.batches != 0 || p.ref.pruned != 0 ||
            p.ref.bytes_saved != 0 || p.ref.early_terminations != 0) {
          bench::Row("SHAPE FAIL: ablated run touched top-k counters at "
                     "sellers=%zu items=%zu k=%llu",
                     sellers, items, static_cast<unsigned long long>(k));
          shape_ok = false;
        }
        if (p.dist.decode_failures != 0 || p.dist.unmatched != 0 ||
            p.ref.decode_failures != 0 || p.ref.unmatched != 0) {
          bench::Row("SHAPE FAIL: decode failures / unmatched replies on "
                     "the fault-free path");
          shape_ok = false;
        }
        // Wherever the sources hold far more than k rows, pruning must
        // actually fire.
        if (p.dist.in_area_total > 10 * k && p.dist.pruned == 0) {
          bench::Row("SHAPE FAIL: no rows pruned at sellers=%zu items=%zu "
                     "k=%llu (in-area total %llu)",
                     sellers, items, static_cast<unsigned long long>(k),
                     static_cast<unsigned long long>(p.dist.in_area_total));
          shape_ok = false;
        }
        // The headline claim: >= 10x fewer bytes at k=10, N=10k/peer.
        if (k == 10 && items == 10000) {
          saw_10x_cell = true;
          if (p.dist.query_bytes * 10 > p.ref.query_bytes) {
            bench::Row("SHAPE FAIL: only %.1fx bytes reduction at k=10, "
                       "N=10k/peer (need >= 10x)",
                       p.dist.query_bytes == 0
                           ? 0.0
                           : static_cast<double>(p.ref.query_bytes) /
                                 static_cast<double>(p.dist.query_bytes));
            shape_ok = false;
          }
        }

        const double ratio =
            p.dist.query_bytes == 0
                ? 0.0
                : static_cast<double>(p.ref.query_bytes) /
                      static_cast<double>(p.dist.query_bytes);
        bench::Row("  %-7zu %-9zu %5llu %12llu %12llu %7.1fx %4llu/%-4llu "
                   "%8llu %7llu %7llu",
                   sellers, items, static_cast<unsigned long long>(k),
                   static_cast<unsigned long long>(p.dist.query_bytes),
                   static_cast<unsigned long long>(p.ref.query_bytes), ratio,
                   static_cast<unsigned long long>(p.dist.rows_shipped),
                   static_cast<unsigned long long>(p.ref.rows_shipped),
                   static_cast<unsigned long long>(p.dist.pruned),
                   static_cast<unsigned long long>(p.dist.batches),
                   static_cast<unsigned long long>(p.dist.early_terminations));
        pairs.push_back(std::move(p));
      }
    }
  }
  if (!saw_10x_cell) {
    bench::Row("SHAPE FAIL: sweep never ran the k=10, N=10k shape cell");
    shape_ok = false;
  }

  bench::Row("");
  bench::Row("shape check: %s", shape_ok ? "OK" : "FAIL");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f) {
      std::fprintf(f, "{\n  \"bench\": \"c14_topk\",\n");
      std::fprintf(f, "  \"ci\": %s,\n", ci ? "true" : "false");
      std::fprintf(f, "  \"cells\": [\n");
      for (size_t i = 0; i < pairs.size(); ++i) {
        const auto& p = pairs[i];
        const double ratio =
            p.dist.query_bytes == 0
                ? 0.0
                : static_cast<double>(p.ref.query_bytes) /
                      static_cast<double>(p.dist.query_bytes);
        std::fprintf(
            f,
            "    {\"sellers\": %zu, \"items_per_seller\": %zu, \"k\": %llu, "
            "\"in_area_total\": %llu, "
            "\"bytes_distributed\": %llu, \"bytes_ablated\": %llu, "
            "\"bytes_ratio\": %.2f, "
            "\"rows_shipped_distributed\": %llu, "
            "\"rows_shipped_ablated\": %llu, "
            "\"topk_batches\": %llu, \"topk_rows_pruned\": %llu, "
            "\"topk_bytes_saved\": %llu, "
            "\"topk_early_terminations\": %llu, "
            "\"results_equal\": %s}%s\n",
            p.dist.sellers, p.dist.items_per_seller,
            static_cast<unsigned long long>(p.dist.k),
            static_cast<unsigned long long>(p.dist.in_area_total),
            static_cast<unsigned long long>(p.dist.query_bytes),
            static_cast<unsigned long long>(p.ref.query_bytes), ratio,
            static_cast<unsigned long long>(p.dist.rows_shipped),
            static_cast<unsigned long long>(p.ref.rows_shipped),
            static_cast<unsigned long long>(p.dist.batches),
            static_cast<unsigned long long>(p.dist.pruned),
            static_cast<unsigned long long>(p.dist.bytes_saved),
            static_cast<unsigned long long>(p.dist.early_terminations),
            p.dist.rows == p.ref.rows ? "true" : "false",
            i + 1 < pairs.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n");
      std::fprintf(f, "  \"shape_ok\": %s\n}\n", shape_ok ? "true" : "false");
      std::fclose(f);
      bench::Row("wrote %s", json_path.c_str());
    } else {
      bench::Row("could not open %s", json_path.c_str());
    }
  }
  return shape_ok ? 0 : 1;
}
